# Empty dependencies file for bench_fig11_isolation.
# This may be replaced when dependencies are built.
