file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_isolation.dir/bench/bench_fig11_isolation.cpp.o"
  "CMakeFiles/bench_fig11_isolation.dir/bench/bench_fig11_isolation.cpp.o.d"
  "bench/bench_fig11_isolation"
  "bench/bench_fig11_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
