# Empty dependencies file for slice_configuration.
# This may be replaced when dependencies are built.
