file(REMOVE_RECURSE
  "CMakeFiles/slice_configuration.dir/examples/slice_configuration.cpp.o"
  "CMakeFiles/slice_configuration.dir/examples/slice_configuration.cpp.o.d"
  "examples/slice_configuration"
  "examples/slice_configuration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slice_configuration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
