file(REMOVE_RECURSE
  "CMakeFiles/atlas_stage1_test.dir/tests/atlas_stage1_test.cpp.o"
  "CMakeFiles/atlas_stage1_test.dir/tests/atlas_stage1_test.cpp.o.d"
  "tests/atlas_stage1_test"
  "tests/atlas_stage1_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlas_stage1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
