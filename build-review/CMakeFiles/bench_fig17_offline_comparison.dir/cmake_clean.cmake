file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_offline_comparison.dir/bench/bench_fig17_offline_comparison.cpp.o"
  "CMakeFiles/bench_fig17_offline_comparison.dir/bench/bench_fig17_offline_comparison.cpp.o.d"
  "bench/bench_fig17_offline_comparison"
  "bench/bench_fig17_offline_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_offline_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
