# Empty dependencies file for bench_fig17_offline_comparison.
# This may be replaced when dependencies are built.
