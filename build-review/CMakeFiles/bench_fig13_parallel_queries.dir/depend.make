# Empty dependencies file for bench_fig13_parallel_queries.
# This may be replaced when dependencies are built.
