file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_parallel_queries.dir/bench/bench_fig13_parallel_queries.cpp.o"
  "CMakeFiles/bench_fig13_parallel_queries.dir/bench/bench_fig13_parallel_queries.cpp.o.d"
  "bench/bench_fig13_parallel_queries"
  "bench/bench_fig13_parallel_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_parallel_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
