file(REMOVE_RECURSE
  "CMakeFiles/math_test.dir/tests/math_test.cpp.o"
  "CMakeFiles/math_test.dir/tests/math_test.cpp.o.d"
  "tests/math_test"
  "tests/math_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/math_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
