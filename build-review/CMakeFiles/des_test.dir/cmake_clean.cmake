file(REMOVE_RECURSE
  "CMakeFiles/des_test.dir/tests/des_test.cpp.o"
  "CMakeFiles/des_test.dir/tests/des_test.cpp.o.d"
  "tests/des_test"
  "tests/des_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/des_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
