file(REMOVE_RECURSE
  "CMakeFiles/bo_test.dir/tests/bo_test.cpp.o"
  "CMakeFiles/bo_test.dir/tests/bo_test.cpp.o.d"
  "tests/bo_test"
  "tests/bo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
