file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_network_perf.dir/bench/bench_table1_network_perf.cpp.o"
  "CMakeFiles/bench_table1_network_perf.dir/bench/bench_table1_network_perf.cpp.o.d"
  "bench/bench_table1_network_perf"
  "bench/bench_table1_network_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_network_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
