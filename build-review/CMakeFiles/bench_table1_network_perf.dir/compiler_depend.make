# Empty compiler generated dependencies file for bench_table1_network_perf.
# This may be replaced when dependencies are built.
