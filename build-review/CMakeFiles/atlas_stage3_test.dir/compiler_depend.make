# Empty compiler generated dependencies file for atlas_stage3_test.
# This may be replaced when dependencies are built.
