file(REMOVE_RECURSE
  "CMakeFiles/latency_breakdown.dir/examples/latency_breakdown.cpp.o"
  "CMakeFiles/latency_breakdown.dir/examples/latency_breakdown.cpp.o.d"
  "examples/latency_breakdown"
  "examples/latency_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
