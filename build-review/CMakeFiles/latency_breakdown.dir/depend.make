# Empty dependencies file for latency_breakdown.
# This may be replaced when dependencies are built.
