file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_offline_progress.dir/bench/bench_fig16_offline_progress.cpp.o"
  "CMakeFiles/bench_fig16_offline_progress.dir/bench/bench_fig16_offline_progress.cpp.o.d"
  "bench/bench_fig16_offline_progress"
  "bench/bench_fig16_offline_progress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_offline_progress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
