# Empty compiler generated dependencies file for bench_fig16_offline_progress.
# This may be replaced when dependencies are built.
