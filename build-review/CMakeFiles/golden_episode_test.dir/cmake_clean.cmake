file(REMOVE_RECURSE
  "CMakeFiles/golden_episode_test.dir/tests/golden_episode_test.cpp.o"
  "CMakeFiles/golden_episode_test.dir/tests/golden_episode_test.cpp.o.d"
  "tests/golden_episode_test"
  "tests/golden_episode_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_episode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
