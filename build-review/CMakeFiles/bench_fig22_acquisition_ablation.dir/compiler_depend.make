# Empty compiler generated dependencies file for bench_fig22_acquisition_ablation.
# This may be replaced when dependencies are built.
