file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_acquisition_ablation.dir/bench/bench_fig22_acquisition_ablation.cpp.o"
  "CMakeFiles/bench_fig22_acquisition_ablation.dir/bench/bench_fig22_acquisition_ablation.cpp.o.d"
  "bench/bench_fig22_acquisition_ablation"
  "bench/bench_fig22_acquisition_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_acquisition_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
