file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_motivation_footprint.dir/bench/bench_fig05_motivation_footprint.cpp.o"
  "CMakeFiles/bench_fig05_motivation_footprint.dir/bench/bench_fig05_motivation_footprint.cpp.o.d"
  "bench/bench_fig05_motivation_footprint"
  "bench/bench_fig05_motivation_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_motivation_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
