# Empty compiler generated dependencies file for bench_fig05_motivation_footprint.
# This may be replaced when dependencies are built.
