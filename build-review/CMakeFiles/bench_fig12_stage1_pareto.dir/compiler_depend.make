# Empty compiler generated dependencies file for bench_fig12_stage1_pareto.
# This may be replaced when dependencies are built.
