file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_stage1_pareto.dir/bench/bench_fig12_stage1_pareto.cpp.o"
  "CMakeFiles/bench_fig12_stage1_pareto.dir/bench/bench_fig12_stage1_pareto.cpp.o.d"
  "bench/bench_fig12_stage1_pareto"
  "bench/bench_fig12_stage1_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_stage1_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
