file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_calibrated_cdf.dir/bench/bench_fig09_calibrated_cdf.cpp.o"
  "CMakeFiles/bench_fig09_calibrated_cdf.dir/bench/bench_fig09_calibrated_cdf.cpp.o.d"
  "bench/bench_fig09_calibrated_cdf"
  "bench/bench_fig09_calibrated_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_calibrated_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
