file(REMOVE_RECURSE
  "CMakeFiles/gp_test.dir/tests/gp_test.cpp.o"
  "CMakeFiles/gp_test.dir/tests/gp_test.cpp.o.d"
  "tests/gp_test"
  "tests/gp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
