file(REMOVE_RECURSE
  "CMakeFiles/bo_minimizer_test.dir/tests/bo_minimizer_test.cpp.o"
  "CMakeFiles/bo_minimizer_test.dir/tests/bo_minimizer_test.cpp.o.d"
  "tests/bo_minimizer_test"
  "tests/bo_minimizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bo_minimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
