# Empty dependencies file for bo_minimizer_test.
# This may be replaced when dependencies are built.
