# Empty dependencies file for kl_test.
# This may be replaced when dependencies are built.
