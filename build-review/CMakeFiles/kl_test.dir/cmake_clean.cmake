file(REMOVE_RECURSE
  "CMakeFiles/kl_test.dir/tests/kl_test.cpp.o"
  "CMakeFiles/kl_test.dir/tests/kl_test.cpp.o.d"
  "tests/kl_test"
  "tests/kl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
