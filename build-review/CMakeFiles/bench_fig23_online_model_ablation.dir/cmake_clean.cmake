file(REMOVE_RECURSE
  "CMakeFiles/bench_fig23_online_model_ablation.dir/bench/bench_fig23_online_model_ablation.cpp.o"
  "CMakeFiles/bench_fig23_online_model_ablation.dir/bench/bench_fig23_online_model_ablation.cpp.o.d"
  "bench/bench_fig23_online_model_ablation"
  "bench/bench_fig23_online_model_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_online_model_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
