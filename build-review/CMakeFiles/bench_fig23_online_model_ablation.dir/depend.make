# Empty dependencies file for bench_fig23_online_model_ablation.
# This may be replaced when dependencies are built.
