file(REMOVE_RECURSE
  "CMakeFiles/env_test.dir/tests/env_test.cpp.o"
  "CMakeFiles/env_test.dir/tests/env_test.cpp.o.d"
  "tests/env_test"
  "tests/env_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/env_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
