# Empty dependencies file for bench_episode_engine.
# This may be replaced when dependencies are built.
