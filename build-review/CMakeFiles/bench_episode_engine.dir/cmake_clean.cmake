file(REMOVE_RECURSE
  "CMakeFiles/bench_episode_engine.dir/bench/bench_episode_engine.cpp.o"
  "CMakeFiles/bench_episode_engine.dir/bench/bench_episode_engine.cpp.o.d"
  "bench/bench_episode_engine"
  "bench/bench_episode_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_episode_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
