file(REMOVE_RECURSE
  "CMakeFiles/bench_envservice_batching.dir/bench/bench_envservice_batching.cpp.o"
  "CMakeFiles/bench_envservice_batching.dir/bench/bench_envservice_batching.cpp.o.d"
  "bench/bench_envservice_batching"
  "bench/bench_envservice_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_envservice_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
