# Empty dependencies file for bench_envservice_batching.
# This may be replaced when dependencies are built.
