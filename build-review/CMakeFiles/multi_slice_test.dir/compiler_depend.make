# Empty compiler generated dependencies file for multi_slice_test.
# This may be replaced when dependencies are built.
