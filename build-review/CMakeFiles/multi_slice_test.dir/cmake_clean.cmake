file(REMOVE_RECURSE
  "CMakeFiles/multi_slice_test.dir/tests/multi_slice_test.cpp.o"
  "CMakeFiles/multi_slice_test.dir/tests/multi_slice_test.cpp.o.d"
  "tests/multi_slice_test"
  "tests/multi_slice_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_slice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
