# Empty compiler generated dependencies file for bnn_test.
# This may be replaced when dependencies are built.
