file(REMOVE_RECURSE
  "CMakeFiles/bnn_test.dir/tests/bnn_test.cpp.o"
  "CMakeFiles/bnn_test.dir/tests/bnn_test.cpp.o.d"
  "tests/bnn_test"
  "tests/bnn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bnn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
