# Empty dependencies file for bench_fig19_threshold_sweep.
# This may be replaced when dependencies are built.
