file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_threshold_sweep.dir/bench/bench_fig19_threshold_sweep.cpp.o"
  "CMakeFiles/bench_fig19_threshold_sweep.dir/bench/bench_fig19_threshold_sweep.cpp.o.d"
  "bench/bench_fig19_threshold_sweep"
  "bench/bench_fig19_threshold_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_threshold_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
