file(REMOVE_RECURSE
  "libatlas_core.a"
)
