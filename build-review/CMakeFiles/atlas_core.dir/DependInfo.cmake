
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/frame_app.cpp" "CMakeFiles/atlas_core.dir/src/app/frame_app.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/app/frame_app.cpp.o.d"
  "/root/repo/src/app/qoe.cpp" "CMakeFiles/atlas_core.dir/src/app/qoe.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/app/qoe.cpp.o.d"
  "/root/repo/src/atlas/calibrator.cpp" "CMakeFiles/atlas_core.dir/src/atlas/calibrator.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/atlas/calibrator.cpp.o.d"
  "/root/repo/src/atlas/offline_trainer.cpp" "CMakeFiles/atlas_core.dir/src/atlas/offline_trainer.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/atlas/offline_trainer.cpp.o.d"
  "/root/repo/src/atlas/online_learner.cpp" "CMakeFiles/atlas_core.dir/src/atlas/online_learner.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/atlas/online_learner.cpp.o.d"
  "/root/repo/src/atlas/oracle.cpp" "CMakeFiles/atlas_core.dir/src/atlas/oracle.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/atlas/oracle.cpp.o.d"
  "/root/repo/src/atlas/pipeline.cpp" "CMakeFiles/atlas_core.dir/src/atlas/pipeline.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/atlas/pipeline.cpp.o.d"
  "/root/repo/src/baselines/dlda.cpp" "CMakeFiles/atlas_core.dir/src/baselines/dlda.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/baselines/dlda.cpp.o.d"
  "/root/repo/src/baselines/gp_baseline.cpp" "CMakeFiles/atlas_core.dir/src/baselines/gp_baseline.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/baselines/gp_baseline.cpp.o.d"
  "/root/repo/src/baselines/virtual_edge.cpp" "CMakeFiles/atlas_core.dir/src/baselines/virtual_edge.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/baselines/virtual_edge.cpp.o.d"
  "/root/repo/src/bo/acquisition.cpp" "CMakeFiles/atlas_core.dir/src/bo/acquisition.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/bo/acquisition.cpp.o.d"
  "/root/repo/src/bo/gp_bo.cpp" "CMakeFiles/atlas_core.dir/src/bo/gp_bo.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/bo/gp_bo.cpp.o.d"
  "/root/repo/src/bo/space.cpp" "CMakeFiles/atlas_core.dir/src/bo/space.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/bo/space.cpp.o.d"
  "/root/repo/src/common/log.cpp" "CMakeFiles/atlas_core.dir/src/common/log.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/common/log.cpp.o.d"
  "/root/repo/src/common/options.cpp" "CMakeFiles/atlas_core.dir/src/common/options.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/common/options.cpp.o.d"
  "/root/repo/src/common/table.cpp" "CMakeFiles/atlas_core.dir/src/common/table.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/common/table.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "CMakeFiles/atlas_core.dir/src/common/thread_pool.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/common/thread_pool.cpp.o.d"
  "/root/repo/src/des/event_queue.cpp" "CMakeFiles/atlas_core.dir/src/des/event_queue.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/des/event_queue.cpp.o.d"
  "/root/repo/src/env/env_service.cpp" "CMakeFiles/atlas_core.dir/src/env/env_service.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/env/env_service.cpp.o.d"
  "/root/repo/src/env/environment.cpp" "CMakeFiles/atlas_core.dir/src/env/environment.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/env/environment.cpp.o.d"
  "/root/repo/src/env/episode.cpp" "CMakeFiles/atlas_core.dir/src/env/episode.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/env/episode.cpp.o.d"
  "/root/repo/src/env/multi_slice.cpp" "CMakeFiles/atlas_core.dir/src/env/multi_slice.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/env/multi_slice.cpp.o.d"
  "/root/repo/src/env/profile.cpp" "CMakeFiles/atlas_core.dir/src/env/profile.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/env/profile.cpp.o.d"
  "/root/repo/src/env/shard_router.cpp" "CMakeFiles/atlas_core.dir/src/env/shard_router.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/env/shard_router.cpp.o.d"
  "/root/repo/src/env/sim_params.cpp" "CMakeFiles/atlas_core.dir/src/env/sim_params.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/env/sim_params.cpp.o.d"
  "/root/repo/src/env/slice_config.cpp" "CMakeFiles/atlas_core.dir/src/env/slice_config.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/env/slice_config.cpp.o.d"
  "/root/repo/src/env/trace.cpp" "CMakeFiles/atlas_core.dir/src/env/trace.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/env/trace.cpp.o.d"
  "/root/repo/src/gp/gaussian_process.cpp" "CMakeFiles/atlas_core.dir/src/gp/gaussian_process.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/gp/gaussian_process.cpp.o.d"
  "/root/repo/src/gp/kernel.cpp" "CMakeFiles/atlas_core.dir/src/gp/kernel.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/gp/kernel.cpp.o.d"
  "/root/repo/src/lte/mac.cpp" "CMakeFiles/atlas_core.dir/src/lte/mac.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/lte/mac.cpp.o.d"
  "/root/repo/src/lte/phy.cpp" "CMakeFiles/atlas_core.dir/src/lte/phy.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/lte/phy.cpp.o.d"
  "/root/repo/src/math/halton.cpp" "CMakeFiles/atlas_core.dir/src/math/halton.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/math/halton.cpp.o.d"
  "/root/repo/src/math/kl.cpp" "CMakeFiles/atlas_core.dir/src/math/kl.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/math/kl.cpp.o.d"
  "/root/repo/src/math/linalg.cpp" "CMakeFiles/atlas_core.dir/src/math/linalg.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/math/linalg.cpp.o.d"
  "/root/repo/src/math/matrix.cpp" "CMakeFiles/atlas_core.dir/src/math/matrix.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/math/matrix.cpp.o.d"
  "/root/repo/src/math/rng.cpp" "CMakeFiles/atlas_core.dir/src/math/rng.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/math/rng.cpp.o.d"
  "/root/repo/src/math/stats.cpp" "CMakeFiles/atlas_core.dir/src/math/stats.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/math/stats.cpp.o.d"
  "/root/repo/src/net/backhaul.cpp" "CMakeFiles/atlas_core.dir/src/net/backhaul.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/net/backhaul.cpp.o.d"
  "/root/repo/src/net/edge.cpp" "CMakeFiles/atlas_core.dir/src/net/edge.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/net/edge.cpp.o.d"
  "/root/repo/src/nn/bnn.cpp" "CMakeFiles/atlas_core.dir/src/nn/bnn.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/nn/bnn.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "CMakeFiles/atlas_core.dir/src/nn/mlp.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/nn/mlp.cpp.o.d"
  "/root/repo/src/nn/optim.cpp" "CMakeFiles/atlas_core.dir/src/nn/optim.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/nn/optim.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "CMakeFiles/atlas_core.dir/src/nn/serialize.cpp.o" "gcc" "CMakeFiles/atlas_core.dir/src/nn/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
