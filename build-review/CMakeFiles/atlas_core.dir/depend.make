# Empty dependencies file for atlas_core.
# This may be replaced when dependencies are built.
