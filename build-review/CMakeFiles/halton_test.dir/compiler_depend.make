# Empty compiler generated dependencies file for halton_test.
# This may be replaced when dependencies are built.
