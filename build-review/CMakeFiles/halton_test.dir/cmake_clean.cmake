file(REMOVE_RECURSE
  "CMakeFiles/halton_test.dir/tests/halton_test.cpp.o"
  "CMakeFiles/halton_test.dir/tests/halton_test.cpp.o.d"
  "tests/halton_test"
  "tests/halton_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halton_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
