file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_21_table5_online.dir/bench/bench_fig20_21_table5_online.cpp.o"
  "CMakeFiles/bench_fig20_21_table5_online.dir/bench/bench_fig20_21_table5_online.cpp.o.d"
  "bench/bench_fig20_21_table5_online"
  "bench/bench_fig20_21_table5_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_21_table5_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
