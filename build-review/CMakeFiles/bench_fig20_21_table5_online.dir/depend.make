# Empty dependencies file for bench_fig20_21_table5_online.
# This may be replaced when dependencies are built.
