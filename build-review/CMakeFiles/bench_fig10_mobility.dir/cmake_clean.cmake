file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_mobility.dir/bench/bench_fig10_mobility.cpp.o"
  "CMakeFiles/bench_fig10_mobility.dir/bench/bench_fig10_mobility.cpp.o.d"
  "bench/bench_fig10_mobility"
  "bench/bench_fig10_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
