# Empty compiler generated dependencies file for bench_fig24_stage_ablation.
# This may be replaced when dependencies are built.
