# Empty dependencies file for bench_fig08_table4_stage1_search.
# This may be replaced when dependencies are built.
