file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_table4_stage1_search.dir/bench/bench_fig08_table4_stage1_search.cpp.o"
  "CMakeFiles/bench_fig08_table4_stage1_search.dir/bench/bench_fig08_table4_stage1_search.cpp.o.d"
  "bench/bench_fig08_table4_stage1_search"
  "bench/bench_fig08_table4_stage1_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_table4_stage1_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
