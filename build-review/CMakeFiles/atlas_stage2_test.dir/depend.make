# Empty dependencies file for atlas_stage2_test.
# This may be replaced when dependencies are built.
