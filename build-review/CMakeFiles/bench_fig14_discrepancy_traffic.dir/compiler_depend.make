# Empty compiler generated dependencies file for bench_fig14_discrepancy_traffic.
# This may be replaced when dependencies are built.
