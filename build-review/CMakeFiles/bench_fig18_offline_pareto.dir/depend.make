# Empty dependencies file for bench_fig18_offline_pareto.
# This may be replaced when dependencies are built.
