file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_offline_pareto.dir/bench/bench_fig18_offline_pareto.cpp.o"
  "CMakeFiles/bench_fig18_offline_pareto.dir/bench/bench_fig18_offline_pareto.cpp.o.d"
  "bench/bench_fig18_offline_pareto"
  "bench/bench_fig18_offline_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_offline_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
