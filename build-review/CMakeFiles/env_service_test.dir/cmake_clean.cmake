file(REMOVE_RECURSE
  "CMakeFiles/env_service_test.dir/tests/env_service_test.cpp.o"
  "CMakeFiles/env_service_test.dir/tests/env_service_test.cpp.o.d"
  "tests/env_service_test"
  "tests/env_service_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/env_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
