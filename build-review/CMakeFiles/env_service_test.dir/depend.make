# Empty dependencies file for env_service_test.
# This may be replaced when dependencies are built.
