file(REMOVE_RECURSE
  "CMakeFiles/bench_fig25_26_dynamic_traffic.dir/bench/bench_fig25_26_dynamic_traffic.cpp.o"
  "CMakeFiles/bench_fig25_26_dynamic_traffic.dir/bench/bench_fig25_26_dynamic_traffic.cpp.o.d"
  "bench/bench_fig25_26_dynamic_traffic"
  "bench/bench_fig25_26_dynamic_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig25_26_dynamic_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
