# Empty dependencies file for bench_fig25_26_dynamic_traffic.
# This may be replaced when dependencies are built.
