file(REMOVE_RECURSE
  "CMakeFiles/app_test.dir/tests/app_test.cpp.o"
  "CMakeFiles/app_test.dir/tests/app_test.cpp.o.d"
  "tests/app_test"
  "tests/app_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
