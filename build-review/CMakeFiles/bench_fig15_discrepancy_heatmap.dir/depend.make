# Empty dependencies file for bench_fig15_discrepancy_heatmap.
# This may be replaced when dependencies are built.
