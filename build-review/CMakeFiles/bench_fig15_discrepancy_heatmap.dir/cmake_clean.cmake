file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_discrepancy_heatmap.dir/bench/bench_fig15_discrepancy_heatmap.cpp.o"
  "CMakeFiles/bench_fig15_discrepancy_heatmap.dir/bench/bench_fig15_discrepancy_heatmap.cpp.o.d"
  "bench/bench_fig15_discrepancy_heatmap"
  "bench/bench_fig15_discrepancy_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_discrepancy_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
