# Empty dependencies file for bench_fig03_traffic_latency.
# This may be replaced when dependencies are built.
