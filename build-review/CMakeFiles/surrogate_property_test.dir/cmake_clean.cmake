file(REMOVE_RECURSE
  "CMakeFiles/surrogate_property_test.dir/tests/surrogate_property_test.cpp.o"
  "CMakeFiles/surrogate_property_test.dir/tests/surrogate_property_test.cpp.o.d"
  "tests/surrogate_property_test"
  "tests/surrogate_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surrogate_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
