# Empty dependencies file for surrogate_property_test.
# This may be replaced when dependencies are built.
