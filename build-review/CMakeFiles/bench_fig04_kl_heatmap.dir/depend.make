# Empty dependencies file for bench_fig04_kl_heatmap.
# This may be replaced when dependencies are built.
