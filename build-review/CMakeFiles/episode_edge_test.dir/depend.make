# Empty dependencies file for episode_edge_test.
# This may be replaced when dependencies are built.
