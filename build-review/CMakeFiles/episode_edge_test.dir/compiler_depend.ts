# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for episode_edge_test.
