file(REMOVE_RECURSE
  "CMakeFiles/episode_edge_test.dir/tests/episode_edge_test.cpp.o"
  "CMakeFiles/episode_edge_test.dir/tests/episode_edge_test.cpp.o.d"
  "tests/episode_edge_test"
  "tests/episode_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/episode_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
