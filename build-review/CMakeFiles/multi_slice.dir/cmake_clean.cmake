file(REMOVE_RECURSE
  "CMakeFiles/multi_slice.dir/examples/multi_slice.cpp.o"
  "CMakeFiles/multi_slice.dir/examples/multi_slice.cpp.o.d"
  "examples/multi_slice"
  "examples/multi_slice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_slice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
