# Empty dependencies file for multi_slice.
# This may be replaced when dependencies are built.
