file(REMOVE_RECURSE
  "CMakeFiles/slice_calibration.dir/examples/slice_calibration.cpp.o"
  "CMakeFiles/slice_calibration.dir/examples/slice_calibration.cpp.o.d"
  "examples/slice_calibration"
  "examples/slice_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slice_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
