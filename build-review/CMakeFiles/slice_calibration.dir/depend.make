# Empty dependencies file for slice_calibration.
# This may be replaced when dependencies are built.
