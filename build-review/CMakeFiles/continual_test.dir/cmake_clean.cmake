file(REMOVE_RECURSE
  "CMakeFiles/continual_test.dir/tests/continual_test.cpp.o"
  "CMakeFiles/continual_test.dir/tests/continual_test.cpp.o.d"
  "tests/continual_test"
  "tests/continual_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continual_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
