# Empty dependencies file for continual_test.
# This may be replaced when dependencies are built.
