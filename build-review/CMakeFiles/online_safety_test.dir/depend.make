# Empty dependencies file for online_safety_test.
# This may be replaced when dependencies are built.
