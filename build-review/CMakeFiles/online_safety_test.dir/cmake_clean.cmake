file(REMOVE_RECURSE
  "CMakeFiles/online_safety_test.dir/tests/online_safety_test.cpp.o"
  "CMakeFiles/online_safety_test.dir/tests/online_safety_test.cpp.o.d"
  "tests/online_safety_test"
  "tests/online_safety_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_safety_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
