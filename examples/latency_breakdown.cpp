/// Where does the latency — and the sim-to-real gap — actually live?
///
/// Demonstrates the per-frame tracer (paper §7.2): every completed frame
/// records timestamps at each pipeline hop, so the end-to-end latency
/// decomposes into loading / uplink / transport / queueing / compute /
/// downlink segments. Comparing simulator vs real network per segment shows
/// exactly which mechanisms Stage 1's seven knobs can compensate and which
/// residual effects Stage 3 must learn online.

#include <iostream>

#include "common/table.hpp"
#include "env/env_service.hpp"
#include "env/trace.hpp"

int main() {
  using namespace atlas;

  env::EnvService service;
  const auto sim = service.add_simulator();  // spec defaults
  const auto calibrated = service.add_simulator(env::oracle_calibration(), "calibrated");
  const auto real = service.add_real_network();

  env::Workload wl;
  wl.duration_ms = 30000.0;
  wl.collect_traces = true;  // tracing episodes bypass the service cache
  wl.seed = 42;

  auto breakdown = [&](env::BackendId net, const env::SliceConfig& config) {
    env::EnvQuery q;
    q.backend = net;
    q.config = config;
    q.workload = wl;
    return env::summarize_traces(service.run(q).traces);
  };

  auto print_comparison = [&](const env::SliceConfig& config, const std::string& title) {
    const auto bs = breakdown(sim, config);
    const auto bc = breakdown(calibrated, config);
    const auto br = breakdown(real, config);
    common::Table t({"segment", "simulator (ms)", "calibrated (ms)", "real (ms)"});
    auto row = [&](const std::string& name, double a, double b, double c) {
      t.add_row({name, common::fmt(a, 1), common::fmt(b, 1), common::fmt(c, 1)});
    };
    row("UE loading", bs.loading, bc.loading, br.loading);
    row("uplink radio (incl. SR)", bs.uplink, bc.uplink, br.uplink);
    row("transport + core (UL)", bs.transport_ul, bc.transport_ul, br.transport_ul);
    row("edge queueing", bs.queueing, bc.queueing, br.queueing);
    row("edge compute", bs.compute, bc.compute, br.compute);
    row("downlink path", bs.downlink, bc.downlink, br.downlink);
    row("TOTAL", bs.total, bc.total, br.total);
    std::cout << title << " (" << br.frames << " frames traced on the real network):\n";
    t.print(std::cout);
    std::cout << "\n";
  };

  std::cout << "Latency decomposition, simulator vs calibrated simulator vs real\n\n";
  print_comparison(env::SliceConfig{}, "Full resources");

  env::SliceConfig tight;
  tight.bandwidth_ul = 9;
  tight.bandwidth_dl = 3;
  tight.backhaul_mbps = 6.2;
  tight.cpu_ratio = 0.8;
  print_comparison(tight, "Tight configuration (the paper's offline optimum)");

  std::cout << "Reading: calibration closes the loading/transport/compute means;\n"
               "the residual real-vs-calibrated gap (fading, stall tails, CFS\n"
               "throttling) is exactly what Stage 3's online GP learns.\n";
  return 0;
}
