/// Multiple tenants, one network: per-slice isolation in action.
///
/// Demonstrates the multi-slice episode runner (paper footnote 4 and the
/// §10 scalability argument): three tenants with different SLAs and traffic
/// share the carrier; because PRB caps, per-slice meters, and per-slice edge
/// containers isolate them, each slice's QoE depends only on its own
/// configuration — which is why one Atlas instance per slice suffices.

#include <iostream>

#include "common/table.hpp"
#include "env/env_service.hpp"
#include "env/multi_slice.hpp"

int main() {
  using namespace atlas;

  // Tenant A: latency-critical AR offload, small but guaranteed.
  env::SliceSpec ar;
  ar.config.bandwidth_ul = 12;
  ar.config.bandwidth_dl = 6;
  ar.config.backhaul_mbps = 10;
  ar.config.cpu_ratio = 0.9;
  ar.traffic = 1;

  // Tenant B: video analytics, heavier traffic, moderate deadline.
  env::SliceSpec video;
  video.config.bandwidth_ul = 24;
  video.config.bandwidth_dl = 10;
  video.config.backhaul_mbps = 25;
  video.config.cpu_ratio = 0.7;
  video.traffic = 3;

  // Tenant C: best-effort telemetry on leftovers.
  env::SliceSpec telemetry;
  telemetry.config.bandwidth_ul = 8;
  telemetry.config.bandwidth_dl = 4;
  telemetry.config.backhaul_mbps = 5;
  telemetry.config.cpu_ratio = 0.25;
  telemetry.traffic = 2;

  std::cout << "Three slices sharing one real network for 60 s...\n\n";
  const auto result = env::run_multi_slice_episode(env::real_network_profile(),
                                                   {ar, video, telemetry}, 60000.0, 11);

  const char* names[] = {"AR offload", "video analytics", "telemetry"};
  const double thresholds[] = {300.0, 500.0, 800.0};
  common::Table t({"slice", "usage", "frames", "mean latency (ms)", "p95 (ms)",
                   "QoE @ own SLA"});
  const env::SliceSpec* specs[] = {&ar, &video, &telemetry};
  for (std::size_t s = 0; s < result.per_slice.size(); ++s) {
    const auto& r = result.per_slice[s];
    const auto summary = r.latency_summary();
    const double p95 =
        r.latencies_ms.empty() ? 0.0 : atlas::math::quantile(r.latencies_ms, 0.95);
    t.add_row({names[s], common::fmt_pct(specs[s]->config.resource_usage()),
               std::to_string(r.frames_completed), common::fmt(summary.mean, 0),
               common::fmt(p95, 0), common::fmt(r.qoe(thresholds[s]))});
  }
  t.print(std::cout);

  // The same deployment behind the EnvService backend registry: tenant A is
  // the target slice an Atlas instance would tune, B and C ride along as
  // fixed background tenants. One backend handle type covers single-slice
  // simulators, the real network, and multi-slice episodes alike — so the
  // stages need no special-casing to train per-slice policies.
  env::EnvService service;
  const auto tenant_a =
      service.add_multi_slice(env::real_network_profile(), {video, telemetry}, "tenant-A",
                              env::BackendKind::kOnline);  // real carrier: metered
  env::EnvQuery q;
  q.backend = tenant_a;
  q.config = ar.config;
  q.workload.traffic = ar.traffic;
  q.workload.duration_ms = 60000.0;
  q.workload.seed = 11;
  std::cout << "\nTenant A queried through the EnvService backend registry: QoE(300 ms) = "
            << common::fmt(service.run(q).qoe(300.0))
            << " (online interactions metered: " << service.backend_stats(tenant_a).queries
            << ")\n";

  std::cout << "\nEach slice meets or misses its SLA based on its OWN configuration;\n"
               "re-run with different per-slice settings and only that slice moves.\n";
  return 0;
}
