/// Quickstart: run the full Atlas pipeline end to end on a small budget.
///
/// The three stages mirror the paper: (1) calibrate the simulator against
/// the "real" network's logged latencies, (2) train a configuration policy
/// offline in the augmented simulator, (3) learn the residual online, safely.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <iostream>

#include "env/env_service.hpp"
#include "atlas/pipeline.hpp"
#include "common/table.hpp"

int main() {
  using namespace atlas;

  // The EnvService owns the environments, the thread pool, the episode
  // cache, and the per-backend query accounting. The real network is a
  // metered (online) backend: treat it as a black box.
  env::EnvService service;
  const auto real = service.add_real_network();

  core::PipelineOptions options;
  // Small budgets so this example finishes in ~1-2 minutes; raise them for
  // paper-scale runs (stage1: 500 iters, stage2: 1000, stage3: 100).
  options.stage1.iterations = 40;
  options.stage1.init_iterations = 12;
  options.stage1.parallel = 4;
  options.stage1.candidates = 600;
  options.stage1.workload.duration_ms = 10000.0;
  options.stage2.iterations = 60;
  options.stage2.init_iterations = 15;
  options.stage2.parallel = 4;
  options.stage2.candidates = 800;
  options.stage2.workload.duration_ms = 10000.0;
  options.stage3.iterations = 20;
  options.stage3.inner_updates = 5;
  options.stage3.candidates = 800;
  options.stage3.workload.duration_ms = 10000.0;

  std::cout << "Atlas quickstart: three-stage learn-to-configure\n\n";
  core::AtlasPipeline pipeline(service, real, options);
  const auto stage_name = [](core::PipelineStage s) {
    switch (s) {
      case core::PipelineStage::kCalibration: return "stage 1 (calibration)";
      case core::PipelineStage::kOfflineTraining: return "stage 2 (offline training)";
      default: return "stage 3 (online learning)";
    }
  };
  const auto result = pipeline.run([&](const core::PipelineProgress& p) {
    std::cout << "[pipeline] " << stage_name(p.stage)
              << (p.skipped ? " skipped" : (p.finished ? " done" : " starting"))
              << " — online interactions so far: " << p.env_stats.online_queries << "\n";
  });

  common::Table stage1({"metric", "value"});
  stage1.add_row({"original sim-to-real KL", common::fmt(result.calibration.original_kl)});
  stage1.add_row({"calibrated KL", common::fmt(result.calibration.best_kl)});
  stage1.add_row({"parameter distance", common::fmt(result.calibration.best_distance)});
  std::cout << "Stage 1 - learning-based simulator:\n";
  stage1.print(std::cout);

  const auto& policy = result.offline.policy;
  common::Table stage2({"metric", "value"});
  stage2.add_row({"offline best usage", common::fmt_pct(policy.best_usage)});
  stage2.add_row({"offline best QoE (simulator)", common::fmt(policy.best_qoe)});
  stage2.add_row({"final dual multiplier", common::fmt(policy.final_lambda)});
  std::cout << "\nStage 2 - offline training:\n";
  stage2.print(std::cout);

  double final_usage = 0.0;
  double final_qoe = 0.0;
  const std::size_t tail = std::min<std::size_t>(5, result.online.history.size());
  for (std::size_t i = result.online.history.size() - tail; i < result.online.history.size();
       ++i) {
    final_usage += result.online.history[i].usage / static_cast<double>(tail);
    final_qoe += result.online.history[i].qoe_real / static_cast<double>(tail);
  }
  common::Table stage3({"metric", "value"});
  stage3.add_row({"online iterations", std::to_string(result.online.history.size())});
  stage3.add_row({"avg usage (last 5)", common::fmt_pct(final_usage)});
  stage3.add_row({"avg real QoE (last 5)", common::fmt(final_qoe)});
  std::cout << "\nStage 3 - online learning (QoE requirement 0.9):\n";
  stage3.print(std::cout);

  common::Table accounting({"backend", "kind", "queries", "cache hits"});
  for (const auto& b : result.env_stats.backends) {
    accounting.add_row({b.name, b.kind == env::BackendKind::kOnline ? "online" : "offline",
                        std::to_string(b.queries), std::to_string(b.cache_hits)});
  }
  std::cout << "\nEnvService accounting (offline queries are free; online ones are\n"
               "SLA exposure — the paper's sample-efficiency bookkeeping):\n";
  accounting.print(std::cout);

  std::cout << "\nDone. See examples/slice_*.cpp for per-stage deep dives.\n";
  return 0;
}
