/// Remote farm: one ShardRouter mixing an in-process simulator shard with a
/// RemoteBackend shard served over the episode-RPC — the paper's "simulator,
/// real network, and testbed farm are interchangeable query targets that
/// differ only in cost" made literal.
///
/// For a self-contained example the "remote host" is an EpisodeRpcServer in
/// this process listening on 127.0.0.1; point RemoteBackendOptions at
/// another machine running `atlas_episode_worker` and nothing else changes:
///
///   ./build/tools/atlas_episode_worker --port 7001 &
///   (options.host = "farm-host"; options.port = 7001)
///
/// Build & run:
///   cmake -B build && cmake --build build
///   ./build/examples/remote_farm

#include <iostream>
#include <memory>
#include <vector>

#include "env/env_service.hpp"
#include "common/table.hpp"
#include "env/shard_router.hpp"
#include "rpc/remote_backend.hpp"
#include "rpc/server.hpp"

int main() {
  using namespace atlas;

  // ---- the "remote host": an EnvService behind the episode-RPC ------------
  // (exactly what the atlas_episode_worker binary runs).
  env::EnvService worker_service(env::EnvServiceOptions{.threads = 2});
  worker_service.add_simulator();  // worker-side backend id 0
  rpc::EpisodeRpcServer server(worker_service, rpc::RpcServerOptions{.port = 0});
  std::cout << "episode worker listening on 127.0.0.1:" << server.port() << "\n\n";

  // ---- the client: a router mixing local and remote shards ----------------
  env::ShardRouter router(2, env::EnvServiceOptions{.threads = 2});
  const auto local = router.add_simulator(env::SimParams::defaults(), "local-sim");

  rpc::RemoteBackendOptions options;
  options.host = "127.0.0.1";
  options.port = server.port();
  options.name = "remote-sim";
  options.timeout_ms = 30000.0;
  options.max_retries = 2;
  const auto remote = router.register_backend(std::make_shared<rpc::RemoteBackend>(options));

  // A Stage-1-style sweep, split across the two shards: even slots run
  // locally, odd slots ride the RPC. Same seeds -> the pairs must agree
  // bit for bit (the codec ships raw IEEE-754 bits).
  std::vector<env::EnvQuery> batch;
  for (std::uint64_t i = 0; i < 12; ++i) {
    env::EnvQuery q;
    q.backend = i % 2 == 0 ? local : remote;
    q.config.bandwidth_ul = 15.0 + 5.0 * static_cast<double>(i / 2 % 3);
    q.workload.duration_ms = 5000.0;
    q.workload.seed = 100 + i / 2;
    env::SimParams params;
    params.compute_time_ms = 2.0 * static_cast<double>(i / 2 % 2);
    q.sim_params = params;  // per-query Table 3 override, forwarded remotely
    batch.push_back(q);
  }
  const auto results = router.run_batch(batch);

  std::size_t identical = 0;
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    if (results[i].latencies_ms == results[i + 1].latencies_ms) ++identical;
  }
  std::cout << "local/remote result pairs bit-identical: " << identical << "/"
            << results.size() / 2 << "\n\n";

  // One coherent serving report — counters, RPC retries/failures, and the
  // remote round-trip quantiles — instead of a hand-rolled column subset.
  std::cout << "router accounting (remote episodes cost ~1000x to recompute,\n"
               "so cost-aware eviction keeps them memoized longest):\n";
  router.stats().summary().print(std::cout);

  std::cout << "\nworker-side accounting (its own EnvService meters the same episodes):\n";
  worker_service.stats().summary().print(std::cout);

  server.stop();
  return 0;
}
