/// Stage-3 deep dive: safe online learning in the real network, compared
/// against the unsafe GP-EI baseline on the same budget.
///
/// Demonstrates: OnlineLearner with cRGP-UCB + offline acceleration, the
/// regret accounting of Eqs. 10-11, and per-iteration SLA exposure.

#include <iostream>

#include "env/env_service.hpp"
#include "atlas/offline_trainer.hpp"
#include "atlas/online_learner.hpp"
#include "atlas/oracle.hpp"
#include "baselines/gp_baseline.hpp"
#include "common/table.hpp"

int main() {
  using namespace atlas;

  env::EnvService service;
  const auto simulator = service.add_simulator(env::oracle_calibration(), "augmented");
  const auto real = service.add_real_network();

  // A quick offline policy to start from (see slice_configuration.cpp).
  core::OfflineOptions offline_opts;
  offline_opts.iterations = 60;
  offline_opts.init_iterations = 15;
  offline_opts.parallel = 4;
  offline_opts.candidates = 800;
  offline_opts.workload.duration_ms = 10000.0;
  std::cout << "Training the offline policy first...\n";
  core::OfflineTrainer trainer(service, simulator, offline_opts);
  const auto offline = trainer.train();

  core::OnlineOptions online_opts;
  online_opts.iterations = 30;
  online_opts.inner_updates = 8;
  online_opts.candidates = 1000;
  online_opts.workload.duration_ms = 10000.0;
  std::cout << "Online learning (30 iterations, cRGP-UCB, offline acceleration)...\n";
  core::OnlineLearner learner(&offline.policy, service, simulator, real, online_opts);
  const auto atlas_run = learner.learn();

  baselines::GpBaselineOptions base_opts;
  base_opts.iterations = 30;
  base_opts.workload.duration_ms = 10000.0;
  std::cout << "Baseline: GP-EI learning online directly...\n";
  baselines::GpBaseline baseline(service, real, base_opts);
  const auto base_run = baseline.learn();

  // Reference optimum for regret accounting.
  env::Workload oracle_wl;
  oracle_wl.duration_ms = 10000.0;
  const auto oracle =
      core::find_optimal_config(service, real, online_opts.sla, oracle_wl, 80, 7);

  const auto atlas_regret = core::compute_regret(atlas_run.history, oracle);
  const auto base_regret = core::compute_regret(base_run.usage, base_run.qoe, oracle);

  std::size_t atlas_violations = 0;
  for (const auto& s : atlas_run.history) {
    if (s.qoe_real < online_opts.sla.availability) ++atlas_violations;
  }
  std::size_t base_violations = 0;
  for (double q : base_run.qoe) {
    if (q < base_opts.sla.availability) ++base_violations;
  }

  common::Table table({"method", "avg usage regret", "avg QoE regret", "SLA violations"});
  table.add_row({"Atlas (ours)", common::fmt_pct(atlas_regret.avg_usage_regret),
                 common::fmt(atlas_regret.avg_qoe_regret, 3),
                 std::to_string(atlas_violations) + "/30"});
  table.add_row({"GP-EI baseline", common::fmt_pct(base_regret.avg_usage_regret),
                 common::fmt(base_regret.avg_qoe_regret, 3),
                 std::to_string(base_violations) + "/30"});
  std::cout << "\nOnline learning on the real network (phi*: usage "
            << common::fmt_pct(oracle.usage) << ", QoE " << common::fmt(oracle.qoe) << "):\n";
  table.print(std::cout);

  std::cout << "\nEvery baseline exploration step was served to real slice users;\n"
               "Atlas's conservative acquisition keeps QoE near the requirement.\n";
  return 0;
}
