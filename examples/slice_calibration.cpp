/// Stage-1 deep dive: calibrate the NS-3-surrogate simulator against the
/// real network and inspect what the search found.
///
/// Demonstrates: SimCalibrator, the weighted-discrepancy objective
/// (KL + alpha * parameter distance), and per-parameter explainability —
/// how far each Table 3 knob moved from its specification default.

#include <iostream>

#include "env/env_service.hpp"
#include "atlas/calibrator.hpp"
#include "common/table.hpp"

int main() {
  using namespace atlas;

  env::EnvService service;
  const auto real = service.add_real_network();

  core::CalibrationOptions options;
  options.iterations = 60;
  options.init_iterations = 15;
  options.parallel = 4;
  options.candidates = 800;
  options.alpha = 2.0;
  options.workload.duration_ms = 12000.0;
  options.seed = 21;

  std::cout << "Calibrating simulation parameters (alpha=" << options.alpha << ")...\n\n";
  core::SimCalibrator calibrator(service, real, options);
  const auto result = calibrator.calibrate();

  common::Table summary({"metric", "original", "calibrated"});
  summary.add_row({"sim-to-real KL", common::fmt(result.original_kl),
                   common::fmt(result.best_kl)});
  summary.add_row({"parameter distance", "0.000", common::fmt(result.best_distance)});
  summary.print(std::cout);

  const auto space = env::SimParams::space();
  const auto x_hat = env::SimParams::defaults().to_vec();
  const auto best = result.best_params.to_vec();
  common::Table params({"parameter", "default", "calibrated"});
  for (std::size_t i = 0; i < space.dim(); ++i) {
    params.add_row({space.names()[i], common::fmt(x_hat[i], 2), common::fmt(best[i], 2)});
  }
  std::cout << "\nBest simulation parameters (cf. paper Table 4):\n";
  params.print(std::cout);

  std::cout << "\nSearch progress (avg weighted discrepancy per iteration):\n";
  for (std::size_t i = 0; i < result.avg_weighted_per_iter.size(); i += 10) {
    std::cout << "  iter " << i << ": " << common::fmt(result.avg_weighted_per_iter[i]) << "\n";
  }
  std::cout << "\nThe augmented simulator (best parameters) is what Stage 2 trains in.\n";
  return 0;
}
