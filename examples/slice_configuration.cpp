/// Stage-2 deep dive: train the offline configuration policy for a latency
/// SLA (Y = 300 ms at 90% availability) and inspect the learned trade-off.
///
/// Demonstrates: OfflineTrainer with the adaptive Lagrangian, the learned
/// QoE surrogate, and how the policy reacts to a different SLA threshold.

#include <iostream>

#include "env/env_service.hpp"
#include "atlas/offline_trainer.hpp"
#include "common/table.hpp"

int main() {
  using namespace atlas;

  // Offline training runs in the augmented simulator; here we use the oracle
  // calibration for brevity (run slice_calibration for the learned one).
  env::EnvService service;
  const auto simulator = service.add_simulator(env::oracle_calibration(), "augmented");

  core::OfflineOptions options;
  options.iterations = 80;
  options.init_iterations = 20;
  options.parallel = 4;
  options.candidates = 1200;
  options.workload.duration_ms = 12000.0;
  options.seed = 31;

  std::cout << "Offline training: minimize resource usage s.t. QoE >= "
            << options.sla.availability << " at Y = " << options.sla.latency_threshold_ms
            << " ms\n\n";
  core::OfflineTrainer trainer(service, simulator, options);
  const auto result = trainer.train();

  const auto& best = result.policy.best_config;
  common::Table config({"knob", "value", "range"});
  config.add_row({"bandwidth_ul (PRBs)", common::fmt(best.bandwidth_ul, 1), "[0, 50]"});
  config.add_row({"bandwidth_dl (PRBs)", common::fmt(best.bandwidth_dl, 1), "[0, 50]"});
  config.add_row({"mcs_offset_ul", common::fmt(best.mcs_offset_ul, 1), "[0, 10]"});
  config.add_row({"mcs_offset_dl", common::fmt(best.mcs_offset_dl, 1), "[0, 10]"});
  config.add_row({"backhaul (Mbps)", common::fmt(best.backhaul_mbps, 1), "[0, 100]"});
  config.add_row({"cpu_ratio", common::fmt(best.cpu_ratio, 2), "[0, 1]"});
  std::cout << "Best offline configuration (usage " << common::fmt_pct(result.policy.best_usage)
            << ", QoE " << common::fmt(result.policy.best_qoe) << "):\n";
  config.print(std::cout);

  std::cout << "\nTraining progress:\n";
  common::Table progress({"iteration", "avg usage", "avg QoE", "lambda"});
  for (std::size_t i = 0; i < result.trace.avg_usage.size(); i += 10) {
    progress.add_row({std::to_string(i), common::fmt_pct(result.trace.avg_usage[i]),
                      common::fmt(result.trace.avg_qoe[i]), common::fmt(result.trace.lambda[i])});
  }
  progress.print(std::cout);

  // The policy generalizes over configurations: probe its QoE estimates.
  env::SliceConfig probe = best;
  probe.cpu_ratio = best.cpu_ratio * 0.5;
  std::cout << "\nPolicy QoE estimate at the optimum: "
            << common::fmt(result.policy.predict_qoe(best))
            << "; with half the CPU: " << common::fmt(result.policy.predict_qoe(probe)) << "\n";
  return 0;
}
