#include <gtest/gtest.h>

#include <vector>

#include "des/event_queue.hpp"

namespace ad = atlas::des;

TEST(EventQueue, RunsEventsInTimeOrder) {
  ad::EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, FifoTieBreakAtSameTime) {
  ad::EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  ad::EventQueue q;
  int count = 0;
  q.schedule_at(1.0, [&] { ++count; });
  q.schedule_at(2.0, [&] { ++count; });
  q.schedule_at(2.0001, [&] { ++count; });
  q.run_until(2.0);  // inclusive boundary
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  ad::EventQueue q;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (ticks < 5) q.schedule_in(1.0, tick);
  };
  q.schedule_in(1.0, tick);
  q.run_until(100.0);
  EXPECT_EQ(ticks, 5);
}

TEST(EventQueue, SelfReschedulingEventStopsAtHorizon) {
  ad::EventQueue q;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    q.schedule_in(1.0, tick);  // re-arms forever, like the TTI loop
  };
  q.schedule_in(1.0, tick);
  q.run_until(10.0);
  EXPECT_EQ(ticks, 10);
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueue, RejectsPastAndNegative) {
  ad::EventQueue q;
  q.schedule_at(5.0, [] {});
  q.run_until(5.0);
  EXPECT_THROW(q.schedule_at(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, RunUntilAdvancesClockWithoutEvents) {
  ad::EventQueue q;
  q.run_until(42.0);
  EXPECT_DOUBLE_EQ(q.now(), 42.0);
}
