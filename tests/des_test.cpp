#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "des/event_queue.hpp"

namespace ad = atlas::des;

TEST(EventQueue, RunsEventsInTimeOrder) {
  ad::EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, FifoTieBreakAtSameTime) {
  ad::EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  ad::EventQueue q;
  int count = 0;
  q.schedule_at(1.0, [&] { ++count; });
  q.schedule_at(2.0, [&] { ++count; });
  q.schedule_at(2.0001, [&] { ++count; });
  q.run_until(2.0);  // inclusive boundary
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  ad::EventQueue q;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (ticks < 5) q.schedule_in(1.0, tick);
  };
  q.schedule_in(1.0, tick);
  q.run_until(100.0);
  EXPECT_EQ(ticks, 5);
}

TEST(EventQueue, SelfReschedulingEventStopsAtHorizon) {
  ad::EventQueue q;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    q.schedule_in(1.0, tick);  // re-arms forever, like the TTI loop
  };
  q.schedule_in(1.0, tick);
  q.run_until(10.0);
  EXPECT_EQ(ticks, 10);
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueue, RejectsPastAndNegative) {
  ad::EventQueue q;
  q.schedule_at(5.0, [] {});
  q.run_until(5.0);
  EXPECT_THROW(q.schedule_at(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, RunUntilAdvancesClockWithoutEvents) {
  ad::EventQueue q;
  q.run_until(42.0);
  EXPECT_DOUBLE_EQ(q.now(), 42.0);
}

TEST(EventQueue, ScheduleFromInsideCallbackAtSameInstantRunsAfter) {
  // An event scheduled from inside a callback for the *current* instant must
  // run at that same instant, after the scheduling event (FIFO by seq) —
  // the frame-send path relies on this when loading time is zero.
  ad::EventQueue q;
  std::vector<int> order;
  q.schedule_at(5.0, [&] {
    order.push_back(1);
    q.schedule_at(5.0, [&] { order.push_back(3); });
    order.push_back(2);
  });
  q.schedule_at(6.0, [&] { order.push_back(4); });
  q.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueue, LargeAndNonTrivialCallablesStillWork) {
  // Callables beyond the inline budget (or non-trivially-copyable, like a
  // recursive std::function) take the boxed fallback transparently.
  ad::EventQueue q;
  struct Big {
    double pad[16];  // 128 bytes > kInlineEventBytes
  };
  Big big{};
  big.pad[7] = 7.5;
  double seen = 0.0;
  q.schedule_at(1.0, [big, &seen] { seen = big.pad[7]; });
  std::vector<int> tail;
  std::function<void()> fn = [&] { tail.push_back(9); };
  q.schedule_at(2.0, fn);
  q.run_all();
  EXPECT_DOUBLE_EQ(seen, 7.5);
  EXPECT_EQ(tail, (std::vector<int>{9}));
}

TEST(EventQueue, UnrunBoxedEventsAreReleasedOnDestruction) {
  // A shared_ptr captured by a boxed event scheduled beyond the horizon must
  // be freed when the queue dies (the drop hook runs exactly once).
  auto token = std::make_shared<int>(1);
  {
    ad::EventQueue q;
    struct Big {
      std::shared_ptr<int> keep;
      double pad[16];
    };
    q.schedule_at(100.0, [b = Big{token, {}}] { (void)b; });
    q.run_until(1.0);
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(EventQueue, StepperFiresAtFixedCadence) {
  ad::EventQueue q;
  std::vector<double> fire_times;
  q.add_stepper(1.0, [&] { fire_times.push_back(q.now()); });
  q.run_until(5.0);
  ASSERT_EQ(fire_times.size(), 5u);  // fires at 1..5 inclusive
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(fire_times[static_cast<std::size_t>(i)], i + 1.0);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
  q.run_until(7.0);  // stays armed across run_until calls
  EXPECT_EQ(fire_times.size(), 7u);
}

TEST(EventQueue, StepperBoundarySemanticsMatchEvents) {
  // A stepper due exactly at `until` still fires — same inclusive boundary
  // as one-shot events.
  ad::EventQueue q;
  int fires = 0;
  q.add_stepper(2.0, [&] { ++fires; });
  q.run_until(4.0);
  EXPECT_EQ(fires, 2);
  q.run_until(5.9999);
  EXPECT_EQ(fires, 2);
  q.run_until(6.0);
  EXPECT_EQ(fires, 3);
}

TEST(EventQueue, StepperInterleavesWithEventsLikeSelfRescheduling) {
  // The stepper contract: ordering against heap events is bit-identical to
  // an event that re-arms itself with schedule_in at the end of its
  // callback. Run both formulations against the same one-shot events and
  // compare the full interleaving.
  auto drive = [](bool use_stepper) {
    ad::EventQueue q;
    std::vector<std::pair<double, int>> log;  // (time, source): 0 = tick, 1..n = events
    std::function<void()> tick;  // outlives run_until: the queued copy re-arms it by reference
    // One-shot events placed on and off the tick cadence, including exact
    // collisions scheduled before and after the tick is armed.
    q.schedule_at(2.0, [&] { log.emplace_back(q.now(), 1); });
    if (use_stepper) {
      q.add_stepper(1.0, [&] {
        log.emplace_back(q.now(), 0);
        if (log.size() == 3) q.schedule_at(q.now(), [&] { log.emplace_back(q.now(), 2); });
      });
    } else {
      tick = [&] {
        log.emplace_back(q.now(), 0);
        if (log.size() == 3) q.schedule_at(q.now(), [&] { log.emplace_back(q.now(), 2); });
        q.schedule_in(1.0, tick);
      };
      q.schedule_in(1.0, tick);
    }
    q.schedule_at(3.0, [&] { log.emplace_back(q.now(), 3); });
    q.schedule_at(3.5, [&] { log.emplace_back(q.now(), 4); });
    q.run_until(6.0);
    return log;
  };
  const auto with_stepper = drive(true);
  const auto with_events = drive(false);
  EXPECT_EQ(with_stepper, with_events);
}

TEST(EventQueue, TwoSteppersPreserveRegistrationOrderAtCollisions) {
  // Steppers colliding at a common multiple (mobility at 100 ms vs TTI at
  // 1 ms) must run in registration order — the earlier-armed stepper holds
  // the older sequence number, exactly like the self-rescheduling events it
  // replaces.
  ad::EventQueue q;
  std::vector<int> order;
  q.add_stepper(2.0, [&] { order.push_back(1); });  // fires at 2, 4
  q.add_stepper(1.0, [&] { order.push_back(2); });  // fires at 1, 2, 3, 4
  q.run_until(4.0);
  EXPECT_EQ(order, (std::vector<int>{2, 1, 2, 2, 1, 2}));
}

TEST(EventQueue, StepperCanRegisterStepperMidFire) {
  // Registering a stepper from inside a stepper callback must not invalidate
  // the currently-executing callable (steppers live in a deque, not a
  // reallocating vector); the new stepper arms at now + period.
  ad::EventQueue q;
  int outer = 0;
  int inner = 0;
  bool registered = false;
  q.add_stepper(1.0, [&] {
    ++outer;
    if (!registered) {
      registered = true;
      q.add_stepper(1.0, [&] { ++inner; });
    }
  });
  q.run_until(5.0);
  EXPECT_EQ(outer, 5);  // fires at 1..5
  EXPECT_EQ(inner, 4);  // registered at 1, fires at 2..5
}

TEST(EventQueue, PendingCountsEventsAndSteppers) {
  ad::EventQueue q;
  EXPECT_EQ(q.pending(), 0u);
  q.schedule_at(1.0, [] {});
  q.add_stepper(1.0, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.run_until(10.0);
  EXPECT_EQ(q.pending(), 1u);  // the stepper stays armed
}

TEST(EventQueue, ManySameInstantEventsKeepFifoUnderHeapChurn) {
  // Stress the vector-heap tie-break: hundreds of same-instant events pushed
  // between pops must still drain in submission order.
  ad::EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 200; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
    q.schedule_at(2.0, [&order, i] { order.push_back(1000 + i); });
  }
  q.run_all();
  ASSERT_EQ(order.size(), 400u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(order[static_cast<std::size_t>(200 + i)], 1000 + i);
  }
}
