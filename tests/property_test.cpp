#include <gtest/gtest.h>

#include <cmath>

#include "bo/acquisition.hpp"
#include "env/environment.hpp"
#include "lte/phy.hpp"
#include "math/kl.hpp"
#include "math/rng.hpp"

namespace ab = atlas::bo;
namespace ae = atlas::env;
namespace al = atlas::lte;
namespace am = atlas::math;

// ---------------------------------------------------------------------------
// Property sweep: for ANY random slice configuration, an episode yields a QoE
// in [0,1], positive latencies, and a resource usage in [0,1].
class RandomConfigEpisode : public ::testing::TestWithParam<int> {};

TEST_P(RandomConfigEpisode, InvariantsHold) {
  am::Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 5);
  const auto space = ae::SliceConfig::space();
  const auto config = ae::SliceConfig::from_vec(space.sample(rng));
  EXPECT_GE(config.resource_usage(), 0.0);
  EXPECT_LE(config.resource_usage(), 1.0);

  ae::Simulator sim;
  ae::Workload wl;
  wl.duration_ms = 4000.0;
  wl.seed = static_cast<std::uint64_t>(GetParam());
  wl.traffic = 1 + GetParam() % 4;
  const auto result = sim.run(config, wl);
  const double qoe = result.qoe(300.0);
  EXPECT_GE(qoe, 0.0);
  EXPECT_LE(qoe, 1.0);
  for (double l : result.latencies_ms) {
    ASSERT_GT(l, 0.0);
    ASSERT_TRUE(std::isfinite(l));
  }
}

INSTANTIATE_TEST_SUITE_P(ConfigSweep, RandomConfigEpisode, ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Property sweep: TBS monotonicity across the whole MCS/PRB lattice.
class TbsLattice : public ::testing::TestWithParam<int> {};

TEST_P(TbsLattice, MonotoneInBothArguments) {
  const int mcs = GetParam();
  for (int prbs = 1; prbs <= 50; prbs += 7) {
    ASSERT_GT(al::tbs_bits(mcs, prbs + 1), al::tbs_bits(mcs, prbs));
    if (mcs > 0) {
      ASSERT_GT(al::tbs_bits(mcs, prbs), al::tbs_bits(mcs - 1, prbs));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(McsSweep, TbsLattice, ::testing::Range(0, 29));

// ---------------------------------------------------------------------------
// Property sweep: BLER in [0,1] and monotone in SINR for every MCS.
class BlerCurve : public ::testing::TestWithParam<int> {};

TEST_P(BlerCurve, BoundedAndMonotone) {
  const int mcs = GetParam();
  double prev = 1.0;
  for (double sinr = -20.0; sinr <= 40.0; sinr += 1.0) {
    const double b = al::bler(mcs, sinr);
    ASSERT_GE(b, 0.0);
    ASSERT_LE(b, 1.0);
    ASSERT_LE(b, prev + 1e-12);
    prev = b;
  }
}

INSTANTIATE_TEST_SUITE_P(McsSweep, BlerCurve, ::testing::Range(0, 29));

// ---------------------------------------------------------------------------
// Property sweep: KL >= 0 and asymmetry-safe for arbitrary sample pairs.
class KlPairs : public ::testing::TestWithParam<int> {};

TEST_P(KlPairs, NonNegativeAndFinite) {
  am::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 3);
  am::Vec p(300);
  am::Vec q(300);
  const double mu_p = rng.uniform(50, 400);
  const double mu_q = rng.uniform(50, 400);
  const double s_p = rng.uniform(5, 80);
  const double s_q = rng.uniform(5, 80);
  for (std::size_t i = 0; i < 300; ++i) {
    p[i] = rng.normal(mu_p, s_p);
    q[i] = rng.normal(mu_q, s_q);
  }
  const double kl = am::kl_divergence(p, q);
  ASSERT_GE(kl, 0.0);
  ASSERT_TRUE(std::isfinite(kl));
}

INSTANTIATE_TEST_SUITE_P(RandomPairs, KlPairs, ::testing::Range(0, 16));

// ---------------------------------------------------------------------------
// Property sweep: the cRGP-UCB draw is clipped at every iteration count and
// every rho in the sweep.
struct BetaParams {
  std::size_t n;
  double rho;
};

class BetaClip : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(BetaClip, AlwaysInsideClipRange) {
  const auto n = static_cast<std::size_t>(std::get<0>(GetParam()));
  const double rho = std::get<1>(GetParam());
  am::Rng rng(n * 7 + 1);
  for (int i = 0; i < 200; ++i) {
    const double beta = ab::crgp_ucb_beta(n, rho, 10.0, rng);
    ASSERT_GE(beta, 0.0);
    ASSERT_LE(beta, 10.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Schedules, BetaClip,
                         ::testing::Combine(::testing::Values(1, 5, 25, 100, 400),
                                            ::testing::Values(0.05, 0.1, 0.5, 2.0)));

// ---------------------------------------------------------------------------
// Property sweep: episode determinism for every traffic level.
class DeterminismSweep : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismSweep, SameSeedSameLatencies) {
  ae::RealNetwork real;
  ae::Workload wl;
  wl.traffic = GetParam();
  wl.duration_ms = 3000.0;
  wl.seed = 77;
  const auto a = real.run(ae::SliceConfig{}, wl);
  const auto b = real.run(ae::SliceConfig{}, wl);
  ASSERT_EQ(a.latencies_ms, b.latencies_ms);
  ASSERT_EQ(a.ul_tb_err, b.ul_tb_err);
}

INSTANTIATE_TEST_SUITE_P(TrafficSweep, DeterminismSweep, ::testing::Range(1, 5));

// ---------------------------------------------------------------------------
// Property sweep: select_mcs never exceeds cap and offset is exactly
// subtractive until the floor.
class McsSelection : public ::testing::TestWithParam<int> {};

TEST_P(McsSelection, OffsetAndCapRespected) {
  const int offset = GetParam();
  for (double sinr = -10.0; sinr <= 40.0; sinr += 2.5) {
    const int with = al::select_mcs(sinr, 3.5, offset, 24);
    const int without = al::select_mcs(sinr, 3.5, 0, 24);
    ASSERT_LE(with, 24);
    ASSERT_GE(with, 0);
    ASSERT_EQ(with, std::max(0, without - offset));
  }
}

INSTANTIATE_TEST_SUITE_P(OffsetSweep, McsSelection, ::testing::Range(0, 11));
