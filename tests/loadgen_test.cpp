// Open-loop load generator: plan determinism (fixed seed => byte-identical
// query mix), mix fractions and Poisson arrivals, and a small in-process
// run_load_point exercising CRN revisit reuse end to end.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "env/env_service.hpp"
#include "env/fault_injection.hpp"
#include "env/loadgen.hpp"
#include "rpc/codec.hpp"

namespace env = atlas::env;

namespace {

env::LoadPlanOptions small_options() {
  env::LoadPlanOptions options;
  options.qps = 500.0;
  options.duration_s = 1.0;
  options.seed = 11;
  options.episode_ms = 2.0;
  options.incumbents = 8;
  options.offline_backend = 0;
  options.online_backend = 1;
  options.has_online = true;
  return options;
}

}  // namespace

TEST(LoadPlan, DeterministicForFixedSeed) {
  const env::LoadPlan a = env::build_load_plan(small_options());
  const env::LoadPlan b = env::build_load_plan(small_options());
  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_GT(a.events.size(), 100u);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.events[i].arrival_s, b.events[i].arrival_s);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    // EnvQuery has no operator==; the wire codec is bit-exact, so identical
    // encodings mean identical queries down to the last double.
    EXPECT_EQ(atlas::rpc::encode_query(0, a.events[i].query),
              atlas::rpc::encode_query(0, b.events[i].query));
  }
}

TEST(LoadPlan, SeedChangesThePlan) {
  env::LoadPlanOptions options = small_options();
  const env::LoadPlan a = env::build_load_plan(options);
  options.seed += 1;
  const env::LoadPlan b = env::build_load_plan(options);
  bool any_difference = a.events.size() != b.events.size();
  for (std::size_t i = 0; !any_difference && i < a.events.size(); ++i) {
    any_difference = atlas::rpc::encode_query(0, a.events[i].query) !=
                     atlas::rpc::encode_query(0, b.events[i].query);
  }
  EXPECT_TRUE(any_difference);
}

TEST(LoadPlan, MixFractionsAndArrivalsMatchTheOptions) {
  env::LoadPlanOptions options = small_options();
  options.qps = 2000.0;
  options.duration_s = 10.0;  // ~20k events: binomial noise ~0.4% per share
  const env::LoadPlan plan = env::build_load_plan(options);
  const auto n = static_cast<double>(plan.events.size());
  ASSERT_GT(n, 15000.0);
  EXPECT_NEAR(static_cast<double>(plan.revisits) / n, options.mix.revisit, 0.02);
  EXPECT_NEAR(static_cast<double>(plan.online) / n, options.mix.online, 0.02);
  EXPECT_NEAR(static_cast<double>(plan.traces) / n, options.mix.trace, 0.02);
  EXPECT_EQ(plan.revisits + plan.online + plan.traces + plan.fresh, plan.events.size());

  // Poisson arrivals: ~qps * duration events, sorted, mean gap ~1/qps.
  EXPECT_NEAR(n, options.qps * options.duration_s, 0.05 * options.qps * options.duration_s);
  double previous = 0.0;
  for (const env::LoadEvent& event : plan.events) {
    EXPECT_GE(event.arrival_s, previous);
    EXPECT_LT(event.arrival_s, options.duration_s);
    previous = event.arrival_s;
  }

  // Per-kind invariants.
  for (const env::LoadEvent& event : plan.events) {
    switch (event.kind) {
      case env::LoadKind::kRevisit:
        EXPECT_TRUE(event.query.crn);
        EXPECT_EQ(event.query.backend, options.offline_backend);
        break;
      case env::LoadKind::kOnline:
        EXPECT_EQ(event.query.backend, options.online_backend);
        break;
      case env::LoadKind::kTrace:
        EXPECT_TRUE(event.query.workload.collect_traces);
        break;
      case env::LoadKind::kFresh:
        EXPECT_FALSE(event.query.crn);
        break;
    }
  }
}

TEST(LoadPlan, OnlineShareFallsBackToFreshWithoutAnOnlineBackend) {
  env::LoadPlanOptions options = small_options();
  options.has_online = false;
  const env::LoadPlan plan = env::build_load_plan(options);
  EXPECT_EQ(plan.online, 0u);
  for (const env::LoadEvent& event : plan.events) {
    EXPECT_EQ(event.query.backend, options.offline_backend);
  }
}

TEST(LoadPlan, ExtraUsersRideOnEveryScheduledEpisode) {
  env::LoadPlanOptions options = small_options();
  options.extra_users = 16;
  const env::LoadPlan plan = env::build_load_plan(options);
  ASSERT_FALSE(plan.events.empty());
  for (const env::LoadEvent& event : plan.events) {
    EXPECT_EQ(event.query.workload.extra_users, 16);  // revisits included
  }
}

TEST(LoadPlan, RejectsBadOptions) {
  env::LoadPlanOptions options = small_options();
  options.qps = 0.0;
  EXPECT_THROW(env::build_load_plan(options), std::invalid_argument);
  options = small_options();
  options.mix.revisit = 0.9;
  options.mix.trace = 0.3;  // sums past 1
  EXPECT_THROW(env::build_load_plan(options), std::invalid_argument);
  options = small_options();
  options.incumbents = 0;
  EXPECT_THROW(env::build_load_plan(options), std::invalid_argument);
}

TEST(LoadPoint, RunsAPlanAgainstAServiceAndMetersReuse) {
  env::EnvServiceOptions service_options;
  service_options.threads = 2;
  env::EnvService service(service_options);
  const env::BackendId sim = service.add_simulator();
  const env::BackendId real = service.add_real_network();

  env::LoadPlanOptions plan_options = small_options();
  plan_options.qps = 400.0;
  plan_options.duration_s = 0.5;
  plan_options.offline_backend = sim;
  plan_options.online_backend = real;
  const env::LoadPlan plan = env::build_load_plan(plan_options);
  ASSERT_GT(plan.events.size(), 50u);
  ASSERT_GT(plan.revisits, plan_options.incumbents);

  env::LoadRunOptions run_options;
  run_options.workers = 8;
  const env::LoadPointResult result = env::run_load_point(service, plan, run_options);

  EXPECT_EQ(result.scheduled, plan.events.size());
  EXPECT_EQ(result.completed + result.failed, result.scheduled);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.latency_ns.count(), result.completed);
  EXPECT_GT(result.achieved_qps, 0.0);
  EXPECT_GT(result.wall_s, 0.0);

  // More revisits than incumbents => some (config, seed) pair repeated, and
  // every repeat is a CRN-tagged cache hit.
  EXPECT_GT(result.stats.crn_hits, 0u);
  EXPECT_EQ(result.stats.total_queries(),
            static_cast<std::uint64_t>(result.completed));
  EXPECT_EQ(result.stats.online_queries, static_cast<std::uint64_t>(plan.online));
  // The service's own telemetry saw every query too.
  EXPECT_EQ(result.stats.query_latency_ns.count(),
            static_cast<std::uint64_t>(result.completed));
}

TEST(LoadPoint, TypedRejectionsAreCountedApartFromGoodputAndFailures) {
  // shed_hard_watermark = 1: depth counts the probing query itself, so EVERY
  // offline query sheds — deterministically — while online (metered) queries
  // are untouchable. Splits the result three ways with no timing dependence.
  env::EnvServiceOptions service_options;
  service_options.threads = 2;
  service_options.shed_watermark = 1;
  service_options.shed_hard_watermark = 1;
  env::EnvService service(service_options);
  const env::BackendId sim = service.add_simulator();
  const env::BackendId real = service.add_real_network();

  env::LoadPlanOptions plan_options = small_options();
  plan_options.qps = 400.0;
  plan_options.duration_s = 0.5;
  plan_options.offline_backend = sim;
  plan_options.online_backend = real;
  const env::LoadPlan plan = env::build_load_plan(plan_options);
  ASSERT_GT(plan.online, 0u);

  env::LoadRunOptions run_options;
  run_options.workers = 8;
  const env::LoadPointResult result = env::run_load_point(service, plan, run_options);

  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.completed + result.failed + result.rejected, result.scheduled);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.completed, plan.online);                        // goodput = metered only
  EXPECT_EQ(result.rejected, result.scheduled - plan.online);      // everything offline shed
  // Rejections are fast by design: recording them would flatter the tail.
  EXPECT_EQ(result.latency_ns.count(), result.completed);
  EXPECT_EQ(result.stats.shed_total, static_cast<std::uint64_t>(result.rejected));
}

TEST(LoadPoint, WallGuardAbortsAHungPointAndAccountsEveryEvent) {
  // Every query hangs "forever" (duration 0). Without the wall guard this
  // point would park its workers for an hour; with it, the watchdog fires at
  // 0.3 s, on_abort releases the hangs (they fail fast), still-queued and
  // undispatched events are failed wholesale, and the run returns promptly.
  const auto injector = std::make_shared<env::FaultInjector>(env::FaultPlan::parse("hang=1", 3));
  env::EnvServiceOptions service_options;
  service_options.threads = 2;
  env::EnvService service(service_options);
  const env::BackendId faulty = service.register_backend(
      std::make_shared<env::FaultInjectingBackend>(
          std::make_shared<env::LocalBackend>(std::make_shared<env::Simulator>(), "sim-0",
                                              env::BackendKind::kOffline),
          injector));

  env::LoadPlanOptions plan_options = small_options();
  plan_options.qps = 100.0;
  plan_options.duration_s = 2.0;
  plan_options.offline_backend = faulty;
  plan_options.online_backend = faulty;
  const env::LoadPlan plan = env::build_load_plan(plan_options);

  env::LoadRunOptions run_options;
  run_options.workers = 4;
  run_options.wall_limit_s = 0.3;
  run_options.on_abort = [&] { injector->release_hangs(); };

  const auto start = std::chrono::steady_clock::now();
  const env::LoadPointResult result = env::run_load_point(service, plan, run_options);
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  EXPECT_TRUE(result.aborted);
  EXPECT_EQ(result.completed, 0u);  // every dispatched query hung, then failed
  EXPECT_EQ(result.completed + result.failed + result.rejected, result.scheduled);
  EXPECT_GT(result.failed, 0u);
  // The guard bounded the point: well under the 2 s plan horizon (generous
  // slack for join latency on a loaded CI box).
  EXPECT_LT(elapsed_s, 1.5);
}
