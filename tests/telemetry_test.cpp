// Serving-telemetry primitives: log-scale histogram exactness against a
// sorted-vector reference (including shard merges and edge cases), striped
// counter behavior under concurrency (TSan covers the data-race side), the
// named-metric registry, and the JSON report writer.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "math/rng.hpp"
#include "telemetry/counter.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/report.hpp"

namespace telemetry = atlas::telemetry;

namespace {

/// The reference quantile under the same rank rule the histogram documents:
/// the value at cumulative rank ceil(q * n), clamped into [1, n].
std::uint64_t reference_quantile(std::vector<std::uint64_t> sorted, double q) {
  const auto n = sorted.size();
  auto rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
  rank = std::min(std::max<std::size_t>(rank, 1), n);
  return sorted[rank - 1];
}

/// The histogram reports a bucket upper bound: never below the true sample
/// quantile, and at most one sub-bucket width (2^-kSubBucketBits relative,
/// +1 for integer truncation) above it.
void expect_quantile_close(std::uint64_t hist_q, std::uint64_t ref_q) {
  EXPECT_GE(hist_q, ref_q);
  EXPECT_LE(hist_q, ref_q + (ref_q >> telemetry::kSubBucketBits) + 1);
}

const double kQuantiles[] = {0.0, 0.5, 0.9, 0.99, 0.999, 1.0};

}  // namespace

TEST(HistogramBuckets, BoundsContainTheirValues) {
  std::vector<std::uint64_t> values;
  for (std::uint64_t v = 0; v < 2048; ++v) values.push_back(v);
  for (int p = 6; p < 41; ++p) {
    const std::uint64_t pow2 = 1ull << p;
    values.insert(values.end(), {pow2 - 1, pow2, pow2 + 1});
  }
  values.push_back(telemetry::kMaxTrackable);
  for (const std::uint64_t v : values) {
    const std::size_t index = telemetry::bucket_index(v);
    ASSERT_LT(index, telemetry::kBucketCount);
    const std::uint64_t ub = telemetry::bucket_upper_bound(index);
    EXPECT_GE(ub, v) << "value " << v;
    EXPECT_LE(ub, v + (v >> telemetry::kSubBucketBits) + 1) << "value " << v;
  }
}

TEST(HistogramBuckets, LinearRegionIsExact) {
  for (std::uint64_t v = 0; v < telemetry::kSubBuckets; ++v) {
    EXPECT_EQ(telemetry::bucket_upper_bound(telemetry::bucket_index(v)), v);
  }
}

TEST(HistogramBuckets, SaturatesBeyondMaxTrackable) {
  const std::size_t last = telemetry::kBucketCount - 1;
  EXPECT_EQ(telemetry::bucket_index(telemetry::kMaxTrackable * 2), last);
  EXPECT_EQ(telemetry::bucket_index(~0ull), last);
  EXPECT_GE(telemetry::bucket_upper_bound(last), telemetry::kMaxTrackable);
}

TEST(HistogramData, QuantilesMatchSortedReference) {
  // Log-uniform values spanning the exact linear region through many octaves,
  // like a latency distribution with a long tail.
  atlas::math::Rng rng(42);
  std::vector<std::uint64_t> values;
  telemetry::HistogramData hist;
  for (int i = 0; i < 20000; ++i) {
    const double log_value = rng.uniform(0.0, 30.0);
    const auto v = static_cast<std::uint64_t>(std::exp2(log_value));
    values.push_back(v);
    hist.record(v);
  }
  std::sort(values.begin(), values.end());
  ASSERT_EQ(hist.count(), values.size());
  for (const double q : kQuantiles) {
    expect_quantile_close(hist.quantile(q), reference_quantile(values, q));
  }
  EXPECT_GE(hist.max(), values.back());
  EXPECT_LE(hist.min(), values.front());
}

TEST(HistogramData, MergeAcrossShardsEqualsOneHistogram) {
  // Three "shards" record disjoint slices; the merged histogram must be
  // bucket-identical to recording everything into one (merge is exact).
  atlas::math::Rng rng(7);
  telemetry::HistogramData whole;
  telemetry::HistogramData shards[3];
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 9000; ++i) {
    const auto v = static_cast<std::uint64_t>(rng.exponential(50000.0));
    values.push_back(v);
    whole.record(v);
    shards[i % 3].record(v);
  }
  telemetry::HistogramData merged;
  for (const auto& shard : shards) merged.merge(shard);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_EQ(merged.sum(), whole.sum());
  EXPECT_EQ(merged.counts(), whole.counts());
  std::sort(values.begin(), values.end());
  for (const double q : kQuantiles) {
    EXPECT_EQ(merged.quantile(q), whole.quantile(q));
    expect_quantile_close(merged.quantile(q), reference_quantile(values, q));
  }
}

TEST(HistogramData, EmptyAndOneSampleEdges) {
  telemetry::HistogramData empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.quantile(0.5), 0u);
  EXPECT_EQ(empty.min(), 0u);
  EXPECT_EQ(empty.max(), 0u);
  EXPECT_EQ(empty.mean(), 0.0);

  telemetry::HistogramData one;
  one.record(12345);
  EXPECT_EQ(one.count(), 1u);
  for (const double q : kQuantiles) {
    expect_quantile_close(one.quantile(q), 12345);
  }
  EXPECT_EQ(one.mean(), 12345.0);
}

TEST(HistogramData, SubtractYieldsIntervalDelta) {
  telemetry::HistogramData hist;
  for (int i = 0; i < 100; ++i) hist.record(1000);
  const telemetry::HistogramData start = hist;  // phase boundary snapshot
  for (int i = 0; i < 50; ++i) hist.record(9000);
  telemetry::HistogramData delta = hist;
  delta.subtract(start);
  EXPECT_EQ(delta.count(), 50u);
  expect_quantile_close(delta.quantile(0.5), 9000);
  // Subtracting a SUPERSET clamps instead of underflowing.
  telemetry::HistogramData over = start;
  over.subtract(hist);
  EXPECT_EQ(over.count(), 0u);
}

TEST(HistogramData, FromCountsRoundTrip) {
  telemetry::HistogramData hist;
  for (std::uint64_t v : {0ull, 31ull, 32ull, 1000ull, 123456789ull}) hist.record(v);
  const telemetry::HistogramData back =
      telemetry::HistogramData::from_counts(hist.counts(), hist.sum());
  EXPECT_EQ(back.count(), hist.count());
  EXPECT_EQ(back.sum(), hist.sum());
  EXPECT_EQ(back.counts(), hist.counts());
}

TEST(HistogramAtomic, ConcurrentRecordsAllLand) {
  telemetry::Histogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.record(static_cast<std::uint64_t>(t) * 1000 + 100);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const telemetry::HistogramData snap = hist.snapshot();
  EXPECT_EQ(snap.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  hist.reset();
  EXPECT_EQ(hist.snapshot().count(), 0u);
}

TEST(Counter, ConcurrentIncrementsSumExactly) {
  telemetry::Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
  counter.add(5);
  EXPECT_EQ(counter.value(), 5u);
}

TEST(Registry, StableReferencesAndSortedSnapshot) {
  telemetry::MetricRegistry registry;
  telemetry::Counter& a = registry.counter("zebra");
  telemetry::Counter& b = registry.counter("apple");
  EXPECT_EQ(&a, &registry.counter("zebra"));  // create-or-get, stable ref
  a.add(3);
  b.add(1);
  registry.histogram("latency_ns").record(500);

  const telemetry::MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "apple");  // sorted by name
  EXPECT_EQ(snap.counters[1].first, "zebra");
  EXPECT_EQ(snap.counter("zebra"), 3u);
  EXPECT_EQ(snap.counter("missing"), 0u);
  ASSERT_NE(snap.histogram("latency_ns"), nullptr);
  EXPECT_EQ(snap.histogram("latency_ns")->count(), 1u);
  EXPECT_EQ(snap.histogram("missing"), nullptr);

  registry.reset();
  EXPECT_EQ(registry.snapshot().counter("zebra"), 0u);
}

TEST(Registry, SnapshotMergeSumsByName) {
  telemetry::MetricRegistry a;
  telemetry::MetricRegistry b;
  a.counter("queries").add(10);
  b.counter("queries").add(5);
  b.counter("only_b").add(1);
  a.histogram("lat").record(100);
  b.histogram("lat").record(300);

  telemetry::MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.counter("queries"), 15u);
  EXPECT_EQ(merged.counter("only_b"), 1u);
  ASSERT_NE(merged.histogram("lat"), nullptr);
  EXPECT_EQ(merged.histogram("lat")->count(), 2u);
}

TEST(Registry, ConcurrentRecordersAgainstSnapshot) {
  telemetry::MetricRegistry registry;
  telemetry::Counter& hits = registry.counter("hits");
  telemetry::Histogram& lat = registry.histogram("lat_ns");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        hits.increment();
        lat.record(1000);
      }
    });
  }
  // Snapshots race with the recorders on purpose: each must be internally
  // consistent enough to not crash and to never over-count.
  for (int i = 0; i < 50; ++i) {
    const telemetry::MetricsSnapshot snap = registry.snapshot();
    EXPECT_LE(snap.counter("hits"), 40000u);
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.snapshot().counter("hits"), 40000u);
  EXPECT_EQ(registry.snapshot().histogram("lat_ns")->count(), 40000u);
}

TEST(JsonReport, WellFormedAndEscaped) {
  std::ostringstream os;
  telemetry::JsonWriter json(os);
  json.begin_object();
  json.field("name", "quo\"te\\back\nline");
  json.field("count", std::uint64_t{3});
  json.field("ratio", 0.25);
  json.key("list");
  json.begin_array();
  json.value(1);
  json.value(2);
  json.end_array();
  json.end_object();
  const std::string text = os.str();
  EXPECT_EQ(text,
            "{\"name\": \"quo\\\"te\\\\back\\nline\", \"count\": 3, "
            "\"ratio\": 0.25, \"list\": [1, 2]}");
}

TEST(JsonReport, SnapshotReportHasMillisecondView) {
  telemetry::MetricRegistry registry;
  registry.counter("env.queries").add(2);
  registry.histogram("env.query_latency_ns").record(2'000'000);  // 2 ms
  std::ostringstream os;
  telemetry::write_report(os, registry.snapshot());
  const std::string text = os.str();
  EXPECT_NE(text.find("\"env.queries\": 2"), std::string::npos) << text;
  EXPECT_NE(text.find("env.query_latency_ms"), std::string::npos) << text;
  // Balanced braces — cheap well-formedness check without a JSON parser.
  EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
            std::count(text.begin(), text.end(), '}'));
}
