#include <gtest/gtest.h>

#include <cmath>

#include "lte/mac.hpp"
#include "lte/phy.hpp"
#include "math/rng.hpp"
#include "math/stats.hpp"

namespace al = atlas::lte;
namespace am = atlas::math;

TEST(Phy, EfficiencyMonotoneInMcs) {
  for (int m = 1; m <= al::kMaxMcs; ++m) {
    EXPECT_GT(al::mcs_efficiency(m), al::mcs_efficiency(m - 1));
  }
  EXPECT_THROW(al::mcs_efficiency(-1), std::invalid_argument);
  EXPECT_THROW(al::mcs_efficiency(29), std::invalid_argument);
}

TEST(Phy, ThresholdMonotoneInMcs) {
  for (int m = 1; m <= al::kMaxMcs; ++m) {
    EXPECT_GT(al::mcs_sinr_threshold_db(m), al::mcs_sinr_threshold_db(m - 1));
  }
}

TEST(Phy, TbsScalesWithPrbsAndMcs) {
  EXPECT_DOUBLE_EQ(al::tbs_bits(10, 0), 0.0);
  EXPECT_GT(al::tbs_bits(10, 20), al::tbs_bits(10, 10));
  EXPECT_GT(al::tbs_bits(20, 10), al::tbs_bits(10, 10));
  EXPECT_NEAR(al::tbs_bits(10, 10) * 2.0, al::tbs_bits(10, 20), 1e-9);
  EXPECT_THROW(al::tbs_bits(5, -1), std::invalid_argument);
}

TEST(Phy, FullCarrierThroughputMatchesTable1) {
  // Simulator operating points from DESIGN.md: UL MCS 23 @ 0.55 derate,
  // DL MCS 27 @ 0.675 -> Table 1's 19.87 / 32.37 Mbps within ~10%.
  const double ul_mbps = al::tbs_bits(23, 50, 0.55) / 1e3;  // bits per TTI -> Mbps
  const double dl_mbps = al::tbs_bits(27, 50, 0.675) / 1e3;
  EXPECT_NEAR(ul_mbps, 19.87, 2.0);
  EXPECT_NEAR(dl_mbps, 32.37, 2.0);
}

TEST(Phy, BlerWaterfall) {
  // Far above threshold: ~0; far below: ~1; at threshold: 1/2.
  EXPECT_LT(al::bler(10, al::mcs_sinr_threshold_db(10) + 10.0), 1e-5);
  EXPECT_GT(al::bler(10, al::mcs_sinr_threshold_db(10) - 10.0), 1.0 - 1e-5);
  EXPECT_NEAR(al::bler(10, al::mcs_sinr_threshold_db(10)), 0.5, 1e-12);
  // Monotone decreasing in SINR.
  EXPECT_GT(al::bler(10, 3.0), al::bler(10, 5.0));
}

TEST(Phy, SelectMcsRespectsMarginOffsetCap) {
  // Plenty of SINR: capped.
  EXPECT_EQ(al::select_mcs(50.0, 3.5, 0, 20), 20);
  // Offset subtracts.
  EXPECT_EQ(al::select_mcs(50.0, 3.5, 5, 20), 15);
  // Offset floors at zero.
  EXPECT_EQ(al::select_mcs(-20.0, 3.5, 8, 20), 0);
  // Higher margin -> more conservative.
  EXPECT_LE(al::select_mcs(10.0, 6.0, 0, 28), al::select_mcs(10.0, 2.0, 0, 28));
}

TEST(Phy, SelectMcsClosedFormMatchesLinearScan) {
  // The closed-form link adaptation must be bit-identical to the reference
  // linear threshold scan — including exactly at threshold boundaries, where
  // the floating floor is most likely to land one step off.
  auto reference = [](double sinr, double margin, int offset, int cap) {
    cap = std::clamp(cap, 0, al::kMaxMcs);
    int mcs = 0;
    for (int m = cap; m >= 0; --m) {
      if (al::mcs_sinr_threshold_db(m) + margin <= sinr) {
        mcs = m;
        break;
      }
    }
    return std::max(0, mcs - std::max(0, offset));
  };
  for (const double margin : {0.0, 2.0, 3.5, 6.0}) {
    for (const int offset : {0, 3, 10}) {
      for (const int cap : {0, 5, 24, 28}) {
        for (double sinr = -12.0; sinr <= 35.0; sinr += 0.01) {
          ASSERT_EQ(al::select_mcs(sinr, margin, offset, cap),
                    reference(sinr, margin, offset, cap))
              << "sinr=" << sinr << " margin=" << margin << " offset=" << offset
              << " cap=" << cap;
        }
        for (int m = 0; m <= al::kMaxMcs; ++m) {
          // Exact boundary: threshold(m) + margin.
          const double sinr = al::mcs_sinr_threshold_db(m) + margin;
          ASSERT_EQ(al::select_mcs(sinr, margin, offset, cap),
                    reference(sinr, margin, offset, cap));
        }
      }
    }
  }
}

TEST(Phy, CachedSinrMatchesDirectComputation) {
  // sinr_db_cached with precomputed pathloss/floor terms must reproduce
  // sinr_db bit-for-bit (the UE caches these per direction and invalidates
  // only on set_distance).
  al::LinkBudget b;
  b.interference_dbm = -110.0;
  for (double d = 0.3; d < 13.0; d += 0.37) {
    const double pl = al::pathloss_db(d, b.baseline_loss_db, b.pathloss_exponent);
    const double floor_db = al::noise_interference_floor_db(b);
    for (double fading = -8.0; fading <= 8.0; fading += 1.7) {
      const double direct = al::sinr_db(b, d, fading);
      const double cached = al::sinr_db_cached(b, pl, floor_db, fading);
      EXPECT_EQ(direct, cached);  // bitwise, not NEAR
    }
  }
}

TEST(Phy, PathlossLogDistance) {
  EXPECT_NEAR(al::pathloss_db(1.0, 38.57, 3.0), 38.57, 1e-12);
  EXPECT_NEAR(al::pathloss_db(10.0, 38.57, 3.0), 68.57, 1e-12);
  // Steeper exponent decays faster.
  EXPECT_GT(al::pathloss_db(10.0, 38.57, 3.35), al::pathloss_db(10.0, 38.57, 3.0));
}

TEST(Phy, SinrDecreasesWithDistanceAndNoiseFigure) {
  al::LinkBudget b;
  const double near = al::sinr_db(b, 1.0, 0.0);
  const double far = al::sinr_db(b, 5.0, 0.0);
  EXPECT_GT(near, far);
  al::LinkBudget hot = b;
  hot.noise_figure_db += 3.0;
  // The (disabled) interference floor still contributes ~1e-8 dB, so the
  // comparison is near-exact rather than bit-exact.
  EXPECT_NEAR(al::sinr_db(b, 2.0, 0.0) - al::sinr_db(hot, 2.0, 0.0), 3.0, 1e-6);
}

TEST(Phy, SinrCapApplies) {
  al::LinkBudget b;
  b.sinr_cap_db = 20.0;
  b.tx_psd_dbm_per_prb = 30.0;  // absurdly strong
  EXPECT_DOUBLE_EQ(al::sinr_db(b, 1.0, 0.0), 20.0);
}

TEST(Phy, FadingProcessStationaryStatistics) {
  al::FadingProcess fading(2.5, 0.9);
  am::Rng rng(1);
  am::RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(fading.step(rng));
  EXPECT_NEAR(stats.mean(), 0.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.5, 0.15);
}

TEST(Phy, DisabledFadingStaysZero) {
  al::FadingProcess fading(0.0, 0.9);
  am::Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(fading.step(rng), 0.0);
  EXPECT_FALSE(fading.enabled());
}

TEST(RadioQueue, SrAccessGatesFirstData) {
  al::RadioQueue q;
  q.push(1, 1000.0, /*now=*/10.0, /*access=*/13.0);
  EXPECT_FALSE(q.has_data(10.0));
  EXPECT_FALSE(q.has_data(22.9));
  EXPECT_TRUE(q.has_data(23.0));
  // Arrivals into a NON-empty queue are not re-gated.
  q.push(2, 500.0, 24.0, 13.0);
  EXPECT_TRUE(q.has_data(24.0));
}

TEST(RadioQueue, DrainCompletesSdusInOrder) {
  al::RadioQueue q;
  q.push(1, 1000.0, 0.0, 0.0);
  q.push(2, 500.0, 0.0, 0.0);
  auto done = q.drain(999.0);
  EXPECT_TRUE(done.empty());
  EXPECT_DOUBLE_EQ(q.queued_bits(), 501.0);
  done = q.drain(1.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 1u);
  done = q.drain(10000.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 2u);
}

TEST(RadioQueue, FullBufferAlwaysHasData) {
  al::RadioQueue q;
  q.set_full_buffer(true);
  EXPECT_TRUE(q.has_data(0.0));
}

TEST(RadioQueue, IncrementalTotalTracksPushesAndPartialDrains) {
  // queued_bits() is now an O(1) running total; it must track any sequence
  // of pushes and full/partial drains (the debug build additionally asserts
  // it against the recomputed sum inside push/drain).
  al::RadioQueue q;
  EXPECT_DOUBLE_EQ(q.queued_bits(), 0.0);
  std::vector<std::uint64_t> done;
  double expected = 0.0;
  for (int i = 0; i < 50; ++i) {
    const double bits = 100.0 + 7.0 * i;
    q.push(static_cast<std::uint64_t>(i), bits, 0.0, 0.0);
    expected += bits;
  }
  EXPECT_DOUBLE_EQ(q.queued_bits(), expected);
  q.drain_into(33.5, done);  // partial head drain
  EXPECT_NEAR(q.queued_bits(), expected - 33.5, 1e-9);
  q.drain_into(1000.0, done);
  EXPECT_NEAR(q.queued_bits(), expected - 1033.5, 1e-9);
  q.drain_into(1e9, done);  // drain everything
  EXPECT_DOUBLE_EQ(q.queued_bits(), 0.0);
  EXPECT_EQ(done.size(), 50u);
}

TEST(RadioQueue, DrainIntoAppendsWithoutClearing) {
  al::RadioQueue q;
  q.push(1, 10.0, 0.0, 0.0);
  q.push(2, 10.0, 0.0, 0.0);
  std::vector<std::uint64_t> done{99};
  q.drain_into(100.0, done);
  EXPECT_EQ(done, (std::vector<std::uint64_t>{99, 1, 2}));
}

namespace {

al::RadioParams ideal_radio() {
  al::RadioParams p;
  p.budget.tx_psd_dbm_per_prb = -57.0;
  p.mcs_cap = 24;
  p.tbs_overhead = 0.55;
  return p;
}

}  // namespace

TEST(UeRadio, FullBufferTtiDeliversTbs) {
  am::Rng rng(3);
  al::UeRadio ue(ideal_radio(), ideal_radio(), 1.0, 0.0, 0.9);
  ue.ul_queue().set_full_buffer(true);
  const auto out = ue.run_tti(true, 0.0, 50, 0, rng);
  EXPECT_EQ(out.tb_total, 1);
  if (out.tb_err == 0) {
    EXPECT_NEAR(out.delivered_bits, al::tbs_bits(out.mcs, 50, 0.55), 1e-9);
  }
}

TEST(UeRadio, NoGrantNoTransmission) {
  am::Rng rng(4);
  al::UeRadio ue(ideal_radio(), ideal_radio(), 1.0, 0.0, 0.9);
  ue.ul_queue().set_full_buffer(true);
  const auto out = ue.run_tti(true, 0.0, 0, 0, rng);
  EXPECT_EQ(out.tb_total, 0);
  EXPECT_DOUBLE_EQ(out.delivered_bits, 0.0);
}

TEST(UeRadio, McsOffsetLowersRate) {
  am::Rng rng(5);
  al::UeRadio a(ideal_radio(), ideal_radio(), 1.0, 0.0, 0.9);
  al::UeRadio b(ideal_radio(), ideal_radio(), 1.0, 0.0, 0.9);
  a.ul_queue().set_full_buffer(true);
  b.ul_queue().set_full_buffer(true);
  const auto out_a = a.run_tti(true, 0.0, 25, 0, rng);
  const auto out_b = b.run_tti(true, 0.0, 25, 5, rng);
  EXPECT_EQ(out_b.mcs, out_a.mcs - 5);
}

TEST(UeRadio, HarqBlocksAfterError) {
  am::Rng rng(6);
  al::RadioParams weak = ideal_radio();
  weak.budget.baseline_loss_db = 80.0;  // hopeless link: every TB errors
  weak.harq_rtt_ttis = 3;
  al::UeRadio ue(weak, weak, 1.0, 0.0, 0.9);
  ue.ul_queue().set_full_buffer(true);
  const auto first = ue.run_tti(true, 0.0, 25, 0, rng);
  EXPECT_EQ(first.tb_err, 1);
  // Blocked during the HARQ round trip.
  EXPECT_EQ(ue.run_tti(true, 1.0, 25, 0, rng).tb_total, 0);
  EXPECT_EQ(ue.run_tti(true, 2.0, 25, 0, rng).tb_total, 0);
  EXPECT_EQ(ue.run_tti(true, 3.0, 25, 0, rng).tb_total, 1);
}

TEST(Scheduler, RespectsSliceCaps) {
  am::Rng rng(7);
  al::UeRadio ue1(ideal_radio(), ideal_radio(), 1.0, 0.0, 0.9);
  al::UeRadio ue2(ideal_radio(), ideal_radio(), 1.0, 0.0, 0.9);
  ue1.ul_queue().set_full_buffer(true);
  ue2.ul_queue().set_full_buffer(true);
  std::vector<al::SliceRadioShare> slices(2);
  slices[0].prb_cap_ul = 10;
  slices[0].ues = {&ue1};
  slices[1].prb_cap_ul = 40;
  slices[1].ues = {&ue2};
  const auto out = al::run_direction_tti(slices, true, 0.0, rng);
  // Slice 1 gets at most 10 PRBs worth; slice 2 the rest. Compare via total.
  double expected = 0.0;
  expected += al::tbs_bits(23, 10, 0.55);
  expected += al::tbs_bits(23, 40, 0.55);
  if (out.tb_err == 0) {
    EXPECT_NEAR(out.delivered_bits, expected, expected * 0.01);
  }
}

TEST(Scheduler, SplitsPrbsWithinSlice) {
  am::Rng rng(8);
  al::UeRadio ue1(ideal_radio(), ideal_radio(), 1.0, 0.0, 0.9);
  al::UeRadio ue2(ideal_radio(), ideal_radio(), 1.0, 0.0, 0.9);
  ue1.ul_queue().set_full_buffer(true);
  ue2.ul_queue().set_full_buffer(true);
  std::vector<al::SliceRadioShare> slices(1);
  slices[0].prb_cap_ul = 20;
  slices[0].ues = {&ue1, &ue2};
  const auto out = al::run_direction_tti(slices, true, 0.0, rng);
  EXPECT_EQ(out.tb_total, 2);  // both UEs served 10 PRBs each
}

TEST(Scheduler, IdleSliceConsumesNothing) {
  am::Rng rng(9);
  al::UeRadio ue(ideal_radio(), ideal_radio(), 1.0, 0.0, 0.9);
  std::vector<al::SliceRadioShare> slices(1);
  slices[0].ues = {&ue};
  const auto out = al::run_direction_tti(slices, true, 0.0, rng);
  EXPECT_EQ(out.tb_total, 0);
  EXPECT_TRUE(out.completed.empty());
}

TEST(Scheduler, TotalGrantsNeverExceedCarrier) {
  am::Rng rng(10);
  al::UeRadio ue1(ideal_radio(), ideal_radio(), 1.0, 0.0, 0.9);
  al::UeRadio ue2(ideal_radio(), ideal_radio(), 1.0, 0.0, 0.9);
  ue1.ul_queue().set_full_buffer(true);
  ue2.ul_queue().set_full_buffer(true);
  std::vector<al::SliceRadioShare> slices(2);
  slices[0].prb_cap_ul = 40;
  slices[0].ues = {&ue1};
  slices[1].prb_cap_ul = 40;  // sum of caps exceeds 50
  slices[1].ues = {&ue2};
  const auto out = al::run_direction_tti(slices, true, 0.0, rng);
  // Second slice gets only the 10 remaining PRBs.
  const double max_bits = al::tbs_bits(24, 40, 0.55) + al::tbs_bits(24, 10, 0.55);
  EXPECT_LE(out.delivered_bits, max_bits + 1e-9);
}

TEST(Scheduler, ScratchFormMatchesAllocatingForm) {
  // The zero-allocation run_direction_tti must produce exactly what the
  // allocating convenience form reports: same aggregates, same per-UE
  // completion spans in the same order, same RNG consumption.
  auto build = [] {
    std::vector<al::UeRadio> ues;
    ues.reserve(3);
    for (int i = 0; i < 3; ++i) ues.emplace_back(ideal_radio(), ideal_radio(), 1.0, 2.0, 0.9);
    return ues;
  };
  auto load = [](std::vector<al::UeRadio>& ues) {
    ues[0].ul_queue().push(10, 5000.0, 0.0, 0.0);
    ues[0].ul_queue().push(11, 50.0, 0.0, 0.0);
    ues[1].ul_queue().push(20, 80.0, 0.0, 0.0);
    // ues[2] idle.
  };
  auto shares = [](std::vector<al::UeRadio>& ues) {
    std::vector<al::SliceRadioShare> slices(2);
    slices[0].prb_cap_ul = 30;
    slices[0].ues = {&ues[0], &ues[2]};
    slices[1].prb_cap_ul = 20;
    slices[1].ues = {&ues[1]};
    return slices;
  };

  auto a_ues = build();
  load(a_ues);
  auto a_slices = shares(a_ues);
  am::Rng a_rng(77);
  std::vector<al::DirectionTti> allocating;
  for (int t = 0; t < 40; ++t) {
    for (auto& ue : a_ues) ue.step_fading(a_rng);
    allocating.push_back(al::run_direction_tti(a_slices, true, static_cast<double>(t), a_rng));
  }

  auto b_ues = build();
  load(b_ues);
  auto b_slices = shares(b_ues);
  am::Rng b_rng(77);
  al::TtiScratch scratch;
  for (int t = 0; t < 40; ++t) {
    for (auto& ue : b_ues) ue.step_fading(b_rng);
    al::run_direction_tti(b_slices, true, static_cast<double>(t), b_rng, scratch);
    const auto& ref = allocating[static_cast<std::size_t>(t)];
    ASSERT_EQ(scratch.delivered_bits, ref.delivered_bits) << "tti " << t;
    ASSERT_EQ(scratch.tb_total, ref.tb_total);
    ASSERT_EQ(scratch.tb_err, ref.tb_err);
    ASSERT_EQ(scratch.completed.size(), ref.completed.size());
    for (std::size_t s = 0; s < ref.completed.size(); ++s) {
      // Same UE by position (a_ues and b_ues are parallel arrays).
      const auto a_idx = ref.completed[s].first - &a_ues[0];
      const auto b_idx = scratch.completed[s].ue - &b_ues[0];
      ASSERT_EQ(a_idx, b_idx);
      const auto& span = scratch.completed[s];
      ASSERT_EQ(span.count, ref.completed[s].second.size());
      for (std::uint32_t i = 0; i < span.count; ++i) {
        ASSERT_EQ(scratch.ids[span.begin + i], ref.completed[s].second[i]);
      }
    }
  }
}

TEST(UeRadio, SetDistanceRefreshesCachedLinkBudget) {
  // The cached pathloss must follow mobility: after set_distance the TTI
  // outcome must match a fresh UE constructed at the new distance.
  am::Rng rng_a(21), rng_b(21);
  al::UeRadio moved(ideal_radio(), ideal_radio(), 1.0, 0.0, 0.9);
  al::UeRadio fresh(ideal_radio(), ideal_radio(), 9.0, 0.0, 0.9);
  moved.ul_queue().set_full_buffer(true);
  fresh.ul_queue().set_full_buffer(true);
  moved.set_distance(9.0);
  const auto out_moved = moved.run_tti(true, 0.0, 25, 0, rng_a);
  const auto out_fresh = fresh.run_tti(true, 0.0, 25, 0, rng_b);
  EXPECT_EQ(out_moved.mcs, out_fresh.mcs);
  EXPECT_EQ(out_moved.sinr_db, out_fresh.sinr_db);  // bitwise
  EXPECT_EQ(out_moved.delivered_bits, out_fresh.delivered_bits);
}

TEST(StaleCqi, RaisesErrorRateUnderFading) {
  // With ideal CQI the error rate sits near the LA margin's design point;
  // with a stale CQI under fading it rises (Table 1's real-vs-sim PER gap).
  auto measure_per = [](int lag) {
    am::Rng rng(11);
    al::UeRadio ue(ideal_radio(), ideal_radio(), 1.0, 2.5, 0.9, lag);
    ue.ul_queue().set_full_buffer(true);
    int err = 0;
    int total = 0;
    for (int t = 0; t < 30000; ++t) {
      ue.step_fading(rng);
      const auto out = ue.run_tti(true, static_cast<double>(t), 25, 0, rng);
      err += out.tb_err;
      total += out.tb_total;
    }
    return static_cast<double>(err) / static_cast<double>(total);
  };
  EXPECT_GT(measure_per(4), measure_per(0));
}
