#include <gtest/gtest.h>

#include <cmath>

#include "lte/mac.hpp"
#include "lte/phy.hpp"
#include "math/rng.hpp"
#include "math/stats.hpp"

namespace al = atlas::lte;
namespace am = atlas::math;

TEST(Phy, EfficiencyMonotoneInMcs) {
  for (int m = 1; m <= al::kMaxMcs; ++m) {
    EXPECT_GT(al::mcs_efficiency(m), al::mcs_efficiency(m - 1));
  }
  EXPECT_THROW(al::mcs_efficiency(-1), std::invalid_argument);
  EXPECT_THROW(al::mcs_efficiency(29), std::invalid_argument);
}

TEST(Phy, ThresholdMonotoneInMcs) {
  for (int m = 1; m <= al::kMaxMcs; ++m) {
    EXPECT_GT(al::mcs_sinr_threshold_db(m), al::mcs_sinr_threshold_db(m - 1));
  }
}

TEST(Phy, TbsScalesWithPrbsAndMcs) {
  EXPECT_DOUBLE_EQ(al::tbs_bits(10, 0), 0.0);
  EXPECT_GT(al::tbs_bits(10, 20), al::tbs_bits(10, 10));
  EXPECT_GT(al::tbs_bits(20, 10), al::tbs_bits(10, 10));
  EXPECT_NEAR(al::tbs_bits(10, 10) * 2.0, al::tbs_bits(10, 20), 1e-9);
  EXPECT_THROW(al::tbs_bits(5, -1), std::invalid_argument);
}

TEST(Phy, FullCarrierThroughputMatchesTable1) {
  // Simulator operating points from DESIGN.md: UL MCS 23 @ 0.55 derate,
  // DL MCS 27 @ 0.675 -> Table 1's 19.87 / 32.37 Mbps within ~10%.
  const double ul_mbps = al::tbs_bits(23, 50, 0.55) / 1e3;  // bits per TTI -> Mbps
  const double dl_mbps = al::tbs_bits(27, 50, 0.675) / 1e3;
  EXPECT_NEAR(ul_mbps, 19.87, 2.0);
  EXPECT_NEAR(dl_mbps, 32.37, 2.0);
}

TEST(Phy, BlerWaterfall) {
  // Far above threshold: ~0; far below: ~1; at threshold: 1/2.
  EXPECT_LT(al::bler(10, al::mcs_sinr_threshold_db(10) + 10.0), 1e-5);
  EXPECT_GT(al::bler(10, al::mcs_sinr_threshold_db(10) - 10.0), 1.0 - 1e-5);
  EXPECT_NEAR(al::bler(10, al::mcs_sinr_threshold_db(10)), 0.5, 1e-12);
  // Monotone decreasing in SINR.
  EXPECT_GT(al::bler(10, 3.0), al::bler(10, 5.0));
}

TEST(Phy, SelectMcsRespectsMarginOffsetCap) {
  // Plenty of SINR: capped.
  EXPECT_EQ(al::select_mcs(50.0, 3.5, 0, 20), 20);
  // Offset subtracts.
  EXPECT_EQ(al::select_mcs(50.0, 3.5, 5, 20), 15);
  // Offset floors at zero.
  EXPECT_EQ(al::select_mcs(-20.0, 3.5, 8, 20), 0);
  // Higher margin -> more conservative.
  EXPECT_LE(al::select_mcs(10.0, 6.0, 0, 28), al::select_mcs(10.0, 2.0, 0, 28));
}

TEST(Phy, PathlossLogDistance) {
  EXPECT_NEAR(al::pathloss_db(1.0, 38.57, 3.0), 38.57, 1e-12);
  EXPECT_NEAR(al::pathloss_db(10.0, 38.57, 3.0), 68.57, 1e-12);
  // Steeper exponent decays faster.
  EXPECT_GT(al::pathloss_db(10.0, 38.57, 3.35), al::pathloss_db(10.0, 38.57, 3.0));
}

TEST(Phy, SinrDecreasesWithDistanceAndNoiseFigure) {
  al::LinkBudget b;
  const double near = al::sinr_db(b, 1.0, 0.0);
  const double far = al::sinr_db(b, 5.0, 0.0);
  EXPECT_GT(near, far);
  al::LinkBudget hot = b;
  hot.noise_figure_db += 3.0;
  // The (disabled) interference floor still contributes ~1e-8 dB, so the
  // comparison is near-exact rather than bit-exact.
  EXPECT_NEAR(al::sinr_db(b, 2.0, 0.0) - al::sinr_db(hot, 2.0, 0.0), 3.0, 1e-6);
}

TEST(Phy, SinrCapApplies) {
  al::LinkBudget b;
  b.sinr_cap_db = 20.0;
  b.tx_psd_dbm_per_prb = 30.0;  // absurdly strong
  EXPECT_DOUBLE_EQ(al::sinr_db(b, 1.0, 0.0), 20.0);
}

TEST(Phy, FadingProcessStationaryStatistics) {
  al::FadingProcess fading(2.5, 0.9);
  am::Rng rng(1);
  am::RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(fading.step(rng));
  EXPECT_NEAR(stats.mean(), 0.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.5, 0.15);
}

TEST(Phy, DisabledFadingStaysZero) {
  al::FadingProcess fading(0.0, 0.9);
  am::Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(fading.step(rng), 0.0);
  EXPECT_FALSE(fading.enabled());
}

TEST(RadioQueue, SrAccessGatesFirstData) {
  al::RadioQueue q;
  q.push(1, 1000.0, /*now=*/10.0, /*access=*/13.0);
  EXPECT_FALSE(q.has_data(10.0));
  EXPECT_FALSE(q.has_data(22.9));
  EXPECT_TRUE(q.has_data(23.0));
  // Arrivals into a NON-empty queue are not re-gated.
  q.push(2, 500.0, 24.0, 13.0);
  EXPECT_TRUE(q.has_data(24.0));
}

TEST(RadioQueue, DrainCompletesSdusInOrder) {
  al::RadioQueue q;
  q.push(1, 1000.0, 0.0, 0.0);
  q.push(2, 500.0, 0.0, 0.0);
  auto done = q.drain(999.0);
  EXPECT_TRUE(done.empty());
  EXPECT_DOUBLE_EQ(q.queued_bits(), 501.0);
  done = q.drain(1.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 1u);
  done = q.drain(10000.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 2u);
}

TEST(RadioQueue, FullBufferAlwaysHasData) {
  al::RadioQueue q;
  q.set_full_buffer(true);
  EXPECT_TRUE(q.has_data(0.0));
}

namespace {

al::RadioParams ideal_radio() {
  al::RadioParams p;
  p.budget.tx_psd_dbm_per_prb = -57.0;
  p.mcs_cap = 24;
  p.tbs_overhead = 0.55;
  return p;
}

}  // namespace

TEST(UeRadio, FullBufferTtiDeliversTbs) {
  am::Rng rng(3);
  al::UeRadio ue(ideal_radio(), ideal_radio(), 1.0, 0.0, 0.9);
  ue.ul_queue().set_full_buffer(true);
  const auto out = ue.run_tti(true, 0.0, 50, 0, rng);
  EXPECT_EQ(out.tb_total, 1);
  if (out.tb_err == 0) {
    EXPECT_NEAR(out.delivered_bits, al::tbs_bits(out.mcs, 50, 0.55), 1e-9);
  }
}

TEST(UeRadio, NoGrantNoTransmission) {
  am::Rng rng(4);
  al::UeRadio ue(ideal_radio(), ideal_radio(), 1.0, 0.0, 0.9);
  ue.ul_queue().set_full_buffer(true);
  const auto out = ue.run_tti(true, 0.0, 0, 0, rng);
  EXPECT_EQ(out.tb_total, 0);
  EXPECT_DOUBLE_EQ(out.delivered_bits, 0.0);
}

TEST(UeRadio, McsOffsetLowersRate) {
  am::Rng rng(5);
  al::UeRadio a(ideal_radio(), ideal_radio(), 1.0, 0.0, 0.9);
  al::UeRadio b(ideal_radio(), ideal_radio(), 1.0, 0.0, 0.9);
  a.ul_queue().set_full_buffer(true);
  b.ul_queue().set_full_buffer(true);
  const auto out_a = a.run_tti(true, 0.0, 25, 0, rng);
  const auto out_b = b.run_tti(true, 0.0, 25, 5, rng);
  EXPECT_EQ(out_b.mcs, out_a.mcs - 5);
}

TEST(UeRadio, HarqBlocksAfterError) {
  am::Rng rng(6);
  al::RadioParams weak = ideal_radio();
  weak.budget.baseline_loss_db = 80.0;  // hopeless link: every TB errors
  weak.harq_rtt_ttis = 3;
  al::UeRadio ue(weak, weak, 1.0, 0.0, 0.9);
  ue.ul_queue().set_full_buffer(true);
  const auto first = ue.run_tti(true, 0.0, 25, 0, rng);
  EXPECT_EQ(first.tb_err, 1);
  // Blocked during the HARQ round trip.
  EXPECT_EQ(ue.run_tti(true, 1.0, 25, 0, rng).tb_total, 0);
  EXPECT_EQ(ue.run_tti(true, 2.0, 25, 0, rng).tb_total, 0);
  EXPECT_EQ(ue.run_tti(true, 3.0, 25, 0, rng).tb_total, 1);
}

TEST(Scheduler, RespectsSliceCaps) {
  am::Rng rng(7);
  al::UeRadio ue1(ideal_radio(), ideal_radio(), 1.0, 0.0, 0.9);
  al::UeRadio ue2(ideal_radio(), ideal_radio(), 1.0, 0.0, 0.9);
  ue1.ul_queue().set_full_buffer(true);
  ue2.ul_queue().set_full_buffer(true);
  std::vector<al::SliceRadioShare> slices(2);
  slices[0].prb_cap_ul = 10;
  slices[0].ues = {&ue1};
  slices[1].prb_cap_ul = 40;
  slices[1].ues = {&ue2};
  const auto out = al::run_direction_tti(slices, true, 0.0, rng);
  // Slice 1 gets at most 10 PRBs worth; slice 2 the rest. Compare via total.
  double expected = 0.0;
  expected += al::tbs_bits(23, 10, 0.55);
  expected += al::tbs_bits(23, 40, 0.55);
  if (out.tb_err == 0) {
    EXPECT_NEAR(out.delivered_bits, expected, expected * 0.01);
  }
}

TEST(Scheduler, SplitsPrbsWithinSlice) {
  am::Rng rng(8);
  al::UeRadio ue1(ideal_radio(), ideal_radio(), 1.0, 0.0, 0.9);
  al::UeRadio ue2(ideal_radio(), ideal_radio(), 1.0, 0.0, 0.9);
  ue1.ul_queue().set_full_buffer(true);
  ue2.ul_queue().set_full_buffer(true);
  std::vector<al::SliceRadioShare> slices(1);
  slices[0].prb_cap_ul = 20;
  slices[0].ues = {&ue1, &ue2};
  const auto out = al::run_direction_tti(slices, true, 0.0, rng);
  EXPECT_EQ(out.tb_total, 2);  // both UEs served 10 PRBs each
}

TEST(Scheduler, IdleSliceConsumesNothing) {
  am::Rng rng(9);
  al::UeRadio ue(ideal_radio(), ideal_radio(), 1.0, 0.0, 0.9);
  std::vector<al::SliceRadioShare> slices(1);
  slices[0].ues = {&ue};
  const auto out = al::run_direction_tti(slices, true, 0.0, rng);
  EXPECT_EQ(out.tb_total, 0);
  EXPECT_TRUE(out.completed.empty());
}

TEST(Scheduler, TotalGrantsNeverExceedCarrier) {
  am::Rng rng(10);
  al::UeRadio ue1(ideal_radio(), ideal_radio(), 1.0, 0.0, 0.9);
  al::UeRadio ue2(ideal_radio(), ideal_radio(), 1.0, 0.0, 0.9);
  ue1.ul_queue().set_full_buffer(true);
  ue2.ul_queue().set_full_buffer(true);
  std::vector<al::SliceRadioShare> slices(2);
  slices[0].prb_cap_ul = 40;
  slices[0].ues = {&ue1};
  slices[1].prb_cap_ul = 40;  // sum of caps exceeds 50
  slices[1].ues = {&ue2};
  const auto out = al::run_direction_tti(slices, true, 0.0, rng);
  // Second slice gets only the 10 remaining PRBs.
  const double max_bits = al::tbs_bits(24, 40, 0.55) + al::tbs_bits(24, 10, 0.55);
  EXPECT_LE(out.delivered_bits, max_bits + 1e-9);
}

TEST(StaleCqi, RaisesErrorRateUnderFading) {
  // With ideal CQI the error rate sits near the LA margin's design point;
  // with a stale CQI under fading it rises (Table 1's real-vs-sim PER gap).
  auto measure_per = [](int lag) {
    am::Rng rng(11);
    al::UeRadio ue(ideal_radio(), ideal_radio(), 1.0, 2.5, 0.9, lag);
    ue.ul_queue().set_full_buffer(true);
    int err = 0;
    int total = 0;
    for (int t = 0; t < 30000; ++t) {
      ue.step_fading(rng);
      const auto out = ue.run_tti(true, static_cast<double>(t), 25, 0, rng);
      err += out.tb_err;
      total += out.tb_total;
    }
    return static_cast<double>(err) / static_cast<double>(total);
  };
  EXPECT_GT(measure_per(4), measure_per(0));
}
