#include <gtest/gtest.h>

#include "env/env_service.hpp"
#include "atlas/calibrator.hpp"
#include "atlas/offline_trainer.hpp"

namespace ac = atlas::core;
namespace ae = atlas::env;

// Tests for the paper's §10 (Scalability / Adaptability) features:
// continual recalibration around a previous optimum and experience replay.

namespace {

ac::CalibrationOptions tiny_calibration() {
  ac::CalibrationOptions opts;
  opts.iterations = 10;
  opts.init_iterations = 4;
  opts.parallel = 3;
  opts.candidates = 200;
  opts.real_episodes = 1;
  opts.workload.duration_ms = 5000.0;
  opts.bnn.sizes = {7, 24, 24, 1};
  opts.train_epochs = 3;
  opts.seed = 19;
  return opts;
}

}  // namespace

TEST(Continual, SearchCenterFocusesCandidates) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto real = service.add_real_network();
  auto opts = tiny_calibration();
  opts.ball_radius = 0.1;  // tight ball: every query must hug the center
  opts.search_center = ae::oracle_calibration();
  ac::SimCalibrator calibrator(service, real, opts);
  const auto result = calibrator.calibrate();
  const auto center = *opts.search_center;
  const auto space = ae::SimParams::space();
  for (const auto& step : result.history) {
    ASSERT_LE(space.distance(step.params.to_vec(), center.to_vec()), 0.1 + 1e-9);
  }
  // Distance in the result is still measured to the SPEC defaults (Eq. 2).
  EXPECT_GT(result.best_distance, 0.1);
}

TEST(Continual, WarmStartFindsLowerDiscrepancyThanColdOnTinyBudget) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto real = service.add_real_network();
  auto cold = tiny_calibration();
  cold.ball_radius = 0.45;
  ac::SimCalibrator cold_cal(service, real, cold);
  const auto cold_result = cold_cal.calibrate();

  auto warm = cold;
  warm.search_center = ae::oracle_calibration();
  warm.ball_radius = 0.12;
  ac::SimCalibrator warm_cal(service, real, warm);
  const auto warm_result = warm_cal.calibrate();

  // Starting near the previous optimum must not be worse on this budget.
  EXPECT_LE(warm_result.best_kl, cold_result.best_kl + 0.1);
}

TEST(Continual, HaltonSamplerRuns) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto real = service.add_real_network();
  auto opts = tiny_calibration();
  opts.sampler = ac::CandidateSampler::kHalton;
  ac::SimCalibrator calibrator(service, real, opts);
  const auto result = calibrator.calibrate();
  EXPECT_EQ(result.avg_weighted_per_iter.size(), opts.iterations);
  const auto x_hat = ae::SimParams::defaults();
  for (const auto& step : result.history) {
    ASSERT_LE(step.params.distance_to(x_hat), opts.ball_radius + 1e-9);
  }
}

TEST(Replay, SeedsSurrogateDataset) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator(ae::oracle_calibration());
  // Build a replay buffer with a clear resource->QoE trend.
  std::vector<std::pair<ae::SliceConfig, double>> replay;
  for (int i = 0; i <= 10; ++i) {
    ae::SliceConfig c;
    const double level = static_cast<double>(i) / 10.0;
    c.bandwidth_ul = 6.0 + 44.0 * level;
    c.cpu_ratio = 0.05 + 0.95 * level;
    c.backhaul_mbps = 100.0 * level;
    replay.emplace_back(c, level);  // synthetic: QoE proportional to resources
  }
  ac::OfflineOptions opts;
  opts.iterations = 8;
  opts.init_iterations = 3;
  opts.parallel = 3;
  opts.candidates = 300;
  opts.workload.duration_ms = 5000.0;
  opts.bnn.sizes = {8, 24, 24, 1};
  opts.train_epochs = 6;
  opts.seed = 23;
  opts.replay = replay;
  ac::OfflineTrainer trainer(service, sim, opts);
  const auto result = trainer.train();
  // With the replayed trend in the dataset, the model must rank a rich
  // configuration above a starved one even after this tiny budget.
  ae::SliceConfig rich;
  ae::SliceConfig starved;
  starved.bandwidth_ul = 6;
  starved.cpu_ratio = 0.05;
  starved.backhaul_mbps = 1.0;
  EXPECT_GT(result.policy.predict_qoe(rich), result.policy.predict_qoe(starved));
}

TEST(Replay, EmptyReplayIsDefault) {
  ac::OfflineOptions opts;
  EXPECT_TRUE(opts.replay.empty());
}
