#include <gtest/gtest.h>

#include <cmath>

#include "math/kl.hpp"
#include "math/rng.hpp"

namespace am = atlas::math;

namespace {

am::Vec gaussian_samples(double mu, double sigma, std::size_t n, std::uint64_t seed) {
  am::Rng rng(seed);
  am::Vec out(n);
  for (auto& v : out) v = rng.normal(mu, sigma);
  return out;
}

}  // namespace

TEST(KlDiscrete, ZeroForIdenticalDistributions) {
  const am::Vec p{0.2, 0.3, 0.5};
  EXPECT_NEAR(am::kl_discrete(p, p), 0.0, 1e-12);
}

TEST(KlDiscrete, PositiveForDifferentDistributions) {
  EXPECT_GT(am::kl_discrete({0.9, 0.1}, {0.1, 0.9}), 0.5);
}

TEST(KlDiscrete, Asymmetric) {
  const am::Vec p{0.8, 0.2};
  const am::Vec q{0.4, 0.6};
  EXPECT_NE(am::kl_discrete(p, q), am::kl_discrete(q, p));
}

TEST(KlDiscrete, RejectsZeroMassInQ) {
  EXPECT_THROW(am::kl_discrete({0.5, 0.5}, {1.0, 0.0}), std::invalid_argument);
}

TEST(KlGaussian, AnalyticValues) {
  EXPECT_NEAR(am::kl_gaussian(0, 1, 0, 1), 0.0, 1e-12);
  // KL(N(1,1) || N(0,1)) = 0.5.
  EXPECT_NEAR(am::kl_gaussian(1, 1, 0, 1), 0.5, 1e-12);
  // Scale-only: KL(N(0,2) || N(0,1)) = -ln2 + 2 - 0.5.
  EXPECT_NEAR(am::kl_gaussian(0, 2, 0, 1), -std::log(2.0) + 1.5, 1e-12);
  EXPECT_THROW(am::kl_gaussian(0, 0, 0, 1), std::invalid_argument);
}

TEST(KlHistogram, NearZeroForSameDistribution) {
  am::KlOptions opts;
  opts.lo = 0.0;
  opts.hi = 400.0;
  const auto p = gaussian_samples(150, 30, 4000, 1);
  const auto q = gaussian_samples(150, 30, 4000, 2);
  EXPECT_LT(am::kl_divergence(p, q, opts), 0.1);
}

TEST(KlHistogram, TracksAnalyticGaussianKl) {
  am::KlOptions opts;
  opts.lo = 0.0;
  opts.hi = 400.0;
  opts.bins = 64;
  const auto p = gaussian_samples(200, 30, 20000, 3);
  const auto q = gaussian_samples(150, 30, 20000, 4);
  const double analytic = am::kl_gaussian(200, 30, 150, 30);  // ~1.39
  const double est = am::kl_divergence(p, q, opts);
  EXPECT_NEAR(est, analytic, 0.35 * analytic);
}

TEST(KlHistogram, MoreSeparationMeansMoreKl) {
  am::KlOptions opts;
  opts.lo = 0.0;
  opts.hi = 500.0;
  const auto base = gaussian_samples(150, 30, 5000, 5);
  const double near = am::kl_divergence(gaussian_samples(160, 30, 5000, 6), base, opts);
  const double far = am::kl_divergence(gaussian_samples(250, 30, 5000, 7), base, opts);
  EXPECT_GT(far, near);
}

TEST(KlHistogram, FiniteWithDisjointSupports) {
  am::KlOptions opts;
  opts.lo = 0.0;
  opts.hi = 100.0;
  const am::Vec p{10, 11, 12, 13};
  const am::Vec q{90, 91, 92, 93};
  const double kl = am::kl_divergence(p, q, opts);
  EXPECT_TRUE(std::isfinite(kl));
  EXPECT_GT(kl, 1.0);
}

TEST(KlHistogram, EmptySampleThrows) {
  EXPECT_THROW(am::kl_divergence({}, {1.0}), std::invalid_argument);
}

TEST(KlKnn, NearZeroForSameDistribution) {
  const auto p = gaussian_samples(0, 1, 3000, 8);
  const auto q = gaussian_samples(0, 1, 3000, 9);
  EXPECT_NEAR(am::kl_knn_1d(p, q), 0.0, 0.15);
}

TEST(KlKnn, ApproximatesAnalyticGaussianKl) {
  const auto p = gaussian_samples(1, 1, 4000, 10);
  const auto q = gaussian_samples(0, 1, 4000, 11);
  EXPECT_NEAR(am::kl_knn_1d(p, q), 0.5, 0.2);
}

TEST(KlKnn, AgreesWithHistogramOrdering) {
  // Both estimators must order a near pair below a far pair.
  const auto base = gaussian_samples(100, 20, 3000, 12);
  const auto near = gaussian_samples(110, 20, 3000, 13);
  const auto far = gaussian_samples(180, 20, 3000, 14);
  EXPECT_GT(am::kl_knn_1d(far, base), am::kl_knn_1d(near, base));
  am::KlOptions opts;
  opts.lo = 0.0;
  opts.hi = 300.0;
  EXPECT_GT(am::kl_divergence(far, base, opts), am::kl_divergence(near, base, opts));
}

TEST(KlKnn, SmallSampleThrows) {
  EXPECT_THROW(am::kl_knn_1d({1, 2, 3}, {1, 2, 3}, 5), std::invalid_argument);
}
