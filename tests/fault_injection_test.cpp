// Chaos-harness primitives (src/env/fault_injection.hpp): the FaultPlan
// grammar, the deterministic decision stream, and the two injection points —
// FaultInjectingBackend (query-level faults) and FlakyTransport (frame-level
// faults). The load-bearing property throughout is DETERMINISM: a fault
// draw is a pure function of (plan seed, stream key, rule index), so two
// same-seed runs inject the identical fault sequence regardless of thread
// interleaving. Every test here is single-run deterministic — no flake
// tolerance, no retries.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "env/fault_injection.hpp"
#include "rpc/transport.hpp"

namespace ae = atlas::env;
namespace ar = atlas::rpc;

namespace {

ae::EnvQuery query_with_seed(std::uint64_t seed) {
  ae::EnvQuery q;
  q.workload.duration_ms = 500.0;
  q.workload.seed = seed;
  return q;
}

/// Inner backend whose result is a pure function of the workload seed, so
/// tests can tell "executed normally" from "perturbed" byte-for-byte.
class SeedEchoBackend final : public ae::EnvBackend {
 public:
  ae::EpisodeResult execute(const ae::EnvQuery& q) const override {
    ae::EpisodeResult result;
    result.latencies_ms = {static_cast<double>(q.workload.seed), 2.0};
    result.frames_completed = static_cast<std::size_t>(q.workload.seed);
    return result;
  }
  ae::BackendKind kind() const noexcept override { return ae::BackendKind::kOffline; }
  const std::string& name() const noexcept override { return name_; }
  double cost_hint() const noexcept override { return 7.0; }

 private:
  std::string name_ = "seed-echo";
};

/// Counts frames instead of moving them — lets drop tests assert the frame
/// never reached the wire.
class CountingTransport final : public ar::Transport {
 public:
  void send(std::span<const std::uint8_t> frame) override {
    ++sends;
    last_frame.assign(frame.begin(), frame.end());
  }
  bool recv(std::vector<std::uint8_t>&) override { return false; }
  void close() override { ++closes; }

  int sends = 0;
  int closes = 0;
  std::vector<std::uint8_t> last_frame;
};

ae::FaultPlan plan_of(const std::string& spec, std::uint64_t seed) {
  return ae::FaultPlan::parse(spec, seed);
}

}  // namespace

TEST(FaultPlan, ParsesTheFullGrammar) {
  const auto plan = plan_of("error=0.2,delay=0.1:50ms,hang=0.05:2s,corrupt=0.1@100,drop=1", 9);
  ASSERT_EQ(plan.rules.size(), 5u);
  EXPECT_EQ(plan.seed, 9u);

  EXPECT_EQ(plan.rules[0].kind, ae::FaultKind::kError);
  EXPECT_DOUBLE_EQ(plan.rules[0].probability, 0.2);
  EXPECT_DOUBLE_EQ(plan.rules[0].duration_ms, 0.0);
  EXPECT_EQ(plan.rules[0].after, 0u);

  EXPECT_EQ(plan.rules[1].kind, ae::FaultKind::kDelay);
  EXPECT_DOUBLE_EQ(plan.rules[1].duration_ms, 50.0);

  // "2s" is a unit suffix, not a typo'd 2 ms.
  EXPECT_EQ(plan.rules[2].kind, ae::FaultKind::kHang);
  EXPECT_DOUBLE_EQ(plan.rules[2].duration_ms, 2000.0);

  EXPECT_EQ(plan.rules[3].kind, ae::FaultKind::kCorrupt);
  EXPECT_EQ(plan.rules[3].after, 100u);

  EXPECT_EQ(plan.rules[4].kind, ae::FaultKind::kDrop);
  EXPECT_DOUBLE_EQ(plan.rules[4].probability, 1.0);
}

TEST(FaultPlan, ToStringRoundTripsThroughParse) {
  const auto plan = plan_of("error=0.2,delay=0.1:50ms,hang=0.05:2s,corrupt=0.1@100", 3);
  const auto replayed = ae::FaultPlan::parse(plan.to_string(), plan.seed);
  ASSERT_EQ(replayed.rules.size(), plan.rules.size());
  for (std::size_t i = 0; i < plan.rules.size(); ++i) {
    EXPECT_EQ(replayed.rules[i].kind, plan.rules[i].kind) << "rule " << i;
    EXPECT_DOUBLE_EQ(replayed.rules[i].probability, plan.rules[i].probability) << "rule " << i;
    EXPECT_DOUBLE_EQ(replayed.rules[i].duration_ms, plan.rules[i].duration_ms) << "rule " << i;
    EXPECT_EQ(replayed.rules[i].after, plan.rules[i].after) << "rule " << i;
  }
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  const char* bad[] = {
      "explode=0.5",     // unknown kind
      "error",           // no '='
      "error=1.5",       // probability out of range
      "error=-0.1",      // negative probability
      "error=zebra",     // garbage probability
      "delay=0.1:oops",  // garbage duration
      "delay=0.1:-5ms",  // negative duration
      "error=0.1@x",     // garbage @after
  };
  for (const char* spec : bad) {
    EXPECT_THROW((void)ae::FaultPlan::parse(spec, 1), std::invalid_argument) << spec;
  }
  // An empty spec is a valid (empty) plan, not an error — callers gate on it.
  EXPECT_TRUE(ae::FaultPlan::parse("", 1).empty());
}

TEST(FaultInjector, DecisionsAreAPureFunctionOfSeedAndStreamKey) {
  const auto plan = plan_of("error=0.25,delay=0.25:5ms", 42);
  ae::FaultInjector a(plan);
  ae::FaultInjector b(plan);

  int fired = 0;
  for (std::uint64_t key = 0; key < 2000; ++key) {
    const auto fa = a.decide(key);
    const auto fb = b.decide(key);
    ASSERT_EQ(fa.has_value(), fb.has_value()) << "key " << key;
    if (fa) {
      EXPECT_EQ(fa->kind, fb->kind) << "key " << key;
      EXPECT_DOUBLE_EQ(fa->duration_ms, fb->duration_ms) << "key " << key;
      ++fired;
    }
  }
  // The hash draw is actually uniform-ish: ~44% of keys should trip one of
  // the two 25% rules. Wide bounds — this guards against a broken mixer
  // (everything fires / nothing fires), not statistical perfection.
  EXPECT_GT(fired, 2000 * 0.30);
  EXPECT_LT(fired, 2000 * 0.60);

  // Different seed, same keys: a different (but still deterministic) pattern.
  ae::FaultInjector c(plan_of("error=0.25,delay=0.25:5ms", 43));
  int diverged = 0;
  ae::FaultInjector a2(plan);
  for (std::uint64_t key = 0; key < 2000; ++key) {
    if (a2.decide(key).has_value() != c.decide(key).has_value()) ++diverged;
  }
  EXPECT_GT(diverged, 0);
}

TEST(FaultInjector, AfterGateArmsOnTheSharedDecisionCounter) {
  // Probability 1 but armed only after 5 decisions: the first 5 pass clean.
  ae::FaultInjector injector(plan_of("error=1@5", 7));
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(injector.decide(1000 + static_cast<std::uint64_t>(i))) << "decision " << i;
  }
  for (int i = 0; i < 10; ++i) {
    const auto fault = injector.decide(2000 + static_cast<std::uint64_t>(i));
    ASSERT_TRUE(fault) << "decision " << (5 + i);
    EXPECT_EQ(fault->kind, ae::FaultKind::kError);
  }
  EXPECT_EQ(injector.counters().errors, 10u);
}

TEST(FaultInjector, ResetReplaysTheIdenticalSchedule) {
  ae::FaultInjector injector(plan_of("error=0.4,corrupt=0.3@10", 11));
  std::vector<bool> first_run;
  for (std::uint64_t key = 0; key < 200; ++key) first_run.push_back(injector.decide(key).has_value());
  const auto first_counters = injector.counters();

  injector.reset();
  std::vector<bool> second_run;
  for (std::uint64_t key = 0; key < 200; ++key) second_run.push_back(injector.decide(key).has_value());
  const auto second_counters = injector.counters();

  EXPECT_EQ(first_run, second_run);
  EXPECT_EQ(first_counters.errors, second_counters.errors);
  EXPECT_EQ(first_counters.corruptions, second_counters.corruptions);
  EXPECT_EQ(first_counters.total(), second_counters.total());
}

TEST(FaultInjectingBackend, ErrorFaultThrowsTypedErrorAndCounts) {
  const auto injector = std::make_shared<ae::FaultInjector>(plan_of("error=1", 5));
  ae::FaultInjectingBackend faulty(std::make_shared<SeedEchoBackend>(), injector);

  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    EXPECT_THROW((void)faulty.execute(query_with_seed(seed)), ae::FaultInjectedError);
  }
  EXPECT_EQ(injector->counters().errors, 4u);
  EXPECT_EQ(injector->counters().total(), 4u);
}

TEST(FaultInjectingBackend, ForwardsIdentityAndExecutesCleanWithEmptyPlan) {
  const auto injector = std::make_shared<ae::FaultInjector>(ae::FaultPlan{});
  const auto inner = std::make_shared<SeedEchoBackend>();
  ae::FaultInjectingBackend faulty(inner, injector);

  // The decorator is invisible to the farm's equivalence digest: identity
  // metadata forwards verbatim.
  EXPECT_EQ(faulty.name(), inner->name());
  EXPECT_EQ(faulty.kind(), inner->kind());
  EXPECT_DOUBLE_EQ(faulty.cost_hint(), inner->cost_hint());
  EXPECT_EQ(faulty.accepts_sim_params(), inner->accepts_sim_params());

  const auto result = faulty.execute(query_with_seed(17));
  EXPECT_EQ(result.latencies_ms, inner->execute(query_with_seed(17)).latencies_ms);
  EXPECT_EQ(injector->counters().total(), 0u);
}

TEST(FaultInjectingBackend, DelayIsABrownOutNotAFailure) {
  const auto injector = std::make_shared<ae::FaultInjector>(plan_of("delay=1:1ms", 5));
  ae::FaultInjectingBackend faulty(std::make_shared<SeedEchoBackend>(), injector);

  const auto result = faulty.execute(query_with_seed(23));
  EXPECT_EQ(result.frames_completed, 23u);  // slower, not wrong
  EXPECT_EQ(injector->counters().delays, 1u);
}

TEST(FaultInjectingBackend, CorruptionIsDeterministicAndBitIdenticalAcrossRuns) {
  const auto make_result = [](std::uint64_t seed) {
    const auto injector = std::make_shared<ae::FaultInjector>(plan_of("corrupt=1", 5));
    ae::FaultInjectingBackend faulty(std::make_shared<SeedEchoBackend>(), injector);
    return faulty.execute(query_with_seed(seed));
  };

  const auto clean = SeedEchoBackend().execute(query_with_seed(31));
  const auto corrupted = make_result(31);
  // Perturbed — plausible-looking but wrong numbers.
  EXPECT_EQ(corrupted.frames_completed, clean.frames_completed + 1);
  EXPECT_EQ(corrupted.ul_tb_err, clean.ul_tb_err + 1);
  EXPECT_DOUBLE_EQ(corrupted.latencies_ms.front(), clean.latencies_ms.front() + 1000.0);
  // ...and deterministically so: a second same-seed run corrupts identically.
  const auto corrupted_again = make_result(31);
  EXPECT_EQ(corrupted.latencies_ms, corrupted_again.latencies_ms);
  EXPECT_EQ(corrupted.frames_completed, corrupted_again.frames_completed);
}

TEST(FaultInjectingBackend, HangIsUnblockedByReleaseHangs) {
  const auto injector = std::make_shared<ae::FaultInjector>(plan_of("hang=1", 5));
  ae::FaultInjectingBackend faulty(std::make_shared<SeedEchoBackend>(), injector);

  // Duration 0 = "forever": without release_hangs() this thread would park
  // for an hour. The wall-guard contract is that release makes it fail fast.
  std::atomic<bool> threw{false};
  std::thread hung([&] {
    try {
      (void)faulty.execute(query_with_seed(41));
    } catch (const ae::FaultInjectedError&) {
      threw.store(true, std::memory_order_release);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(threw.load(std::memory_order_acquire));  // still parked
  injector->release_hangs();
  hung.join();
  EXPECT_TRUE(threw.load(std::memory_order_acquire));
  EXPECT_EQ(injector->counters().hangs, 1u);
}

TEST(FaultInjectingBackend, HangIsUnblockedByCancellation) {
  const auto injector = std::make_shared<ae::FaultInjector>(plan_of("hang=1", 5));
  ae::FaultInjectingBackend faulty(std::make_shared<SeedEchoBackend>(), injector);

  // A cancelled hang is a hedge loser, not a fault: EpisodeCancelled, so the
  // breaker/health machinery upstream leaves the replica alone.
  ae::CancelToken cancel{false};
  std::atomic<bool> cancelled{false};
  std::thread hung([&] {
    try {
      (void)faulty.execute_cancellable(query_with_seed(43), cancel);
    } catch (const ae::EpisodeCancelled&) {
      cancelled.store(true, std::memory_order_release);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  cancel.store(true, std::memory_order_release);
  hung.join();
  EXPECT_TRUE(cancelled.load(std::memory_order_acquire));
}

TEST(FlakyTransport, ErrorFaultThrowsTransportError) {
  const auto injector = std::make_shared<ae::FaultInjector>(plan_of("error=1", 5));
  auto counting = std::make_unique<CountingTransport>();
  CountingTransport* inner = counting.get();
  ae::FlakyTransport flaky(std::move(counting), injector);

  const std::vector<std::uint8_t> frame(32, 0xAB);
  EXPECT_THROW(flaky.send(frame), ar::TransportError);
  EXPECT_EQ(inner->sends, 0);
}

TEST(FlakyTransport, DropSwallowsTheFrameSilently) {
  const auto injector = std::make_shared<ae::FaultInjector>(plan_of("drop=1", 5));
  auto counting = std::make_unique<CountingTransport>();
  CountingTransport* inner = counting.get();
  ae::FlakyTransport flaky(std::move(counting), injector);

  const std::vector<std::uint8_t> frame(32, 0xAB);
  EXPECT_NO_THROW(flaky.send(frame));  // caller believes it sent
  EXPECT_EQ(inner->sends, 0);          // the wire never saw it
  EXPECT_EQ(injector->counters().drops, 1u);
}

TEST(FlakyTransport, CorruptFlipsOneBodyByteAndForwards) {
  const auto injector = std::make_shared<ae::FaultInjector>(plan_of("corrupt=1", 5));
  auto counting = std::make_unique<CountingTransport>();
  CountingTransport* inner = counting.get();
  ae::FlakyTransport flaky(std::move(counting), injector);

  const std::vector<std::uint8_t> frame(32, 0xAB);
  flaky.send(frame);
  ASSERT_EQ(inner->sends, 1);
  ASSERT_EQ(inner->last_frame.size(), frame.size());
  // Exactly one byte differs (byte 16: past the header, so the peer sees a
  // well-framed message with a poisoned body).
  int flipped = 0;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    if (inner->last_frame[i] != frame[i]) {
      ++flipped;
      EXPECT_EQ(i, 16u);
    }
  }
  EXPECT_EQ(flipped, 1);
}

TEST(FlakyTransport, EmptyPlanForwardsEverythingUntouched) {
  const auto injector = std::make_shared<ae::FaultInjector>(ae::FaultPlan{});
  auto counting = std::make_unique<CountingTransport>();
  CountingTransport* inner = counting.get();
  ae::FlakyTransport flaky(std::move(counting), injector);

  const std::vector<std::uint8_t> frame = {1, 2, 3, 4};
  flaky.send(frame);
  ASSERT_EQ(inner->sends, 1);
  EXPECT_EQ(inner->last_frame, frame);
  flaky.close();
  EXPECT_EQ(inner->closes, 1);
  EXPECT_EQ(injector->counters().total(), 0u);
}
