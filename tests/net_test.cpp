#include <gtest/gtest.h>

#include "math/rng.hpp"
#include "math/stats.hpp"
#include "net/backhaul.hpp"
#include "net/edge.hpp"

namespace am = atlas::math;
namespace an = atlas::net;

TEST(TransportLink, SerializationDelayMatchesRate) {
  an::TransportLink link(10.0, 1.0);  // 10 Mbps, 1 ms propagation
  am::Rng rng(1);
  // 10 Mbps == 10 kbit per ms: a 100 kbit frame takes 10 ms + 1 ms delay.
  const double arrival = link.send(0.0, 100e3, rng);
  EXPECT_NEAR(arrival, 11.0, 1e-9);
}

TEST(TransportLink, FifoQueueingBackToBack) {
  an::TransportLink link(10.0, 1.0);
  am::Rng rng(2);
  const double a1 = link.send(0.0, 100e3, rng);   // busy until 10
  const double a2 = link.send(0.0, 100e3, rng);   // starts at 10 -> 20 + 1
  EXPECT_NEAR(a1, 11.0, 1e-9);
  EXPECT_NEAR(a2, 21.0, 1e-9);
}

TEST(TransportLink, IdleGapResetsQueue) {
  an::TransportLink link(10.0, 1.0);
  am::Rng rng(3);
  link.send(0.0, 100e3, rng);  // busy until 10
  const double a = link.send(50.0, 100e3, rng);
  EXPECT_NEAR(a, 61.0, 1e-9);
}

TEST(TransportLink, ZeroRateFallsBackToTrickle) {
  an::TransportLink link(0.0, 1.0);
  EXPECT_GT(link.rate_mbps(), 0.0);
}

TEST(TransportJitter, SizeDependentComponent) {
  an::TransportJitter jitter;
  jitter.per_mbit_ms = 80.0;
  am::Rng rng(4);
  // 64-byte ping: negligible; mean frame (230.4 kbit): ~18.4 ms.
  EXPECT_NEAR(jitter.sample(512.0, rng), 0.041, 1e-3);
  EXPECT_NEAR(jitter.sample(230.4e3, rng), 18.43, 0.1);
}

TEST(TransportJitter, ExponentialTailMean) {
  an::TransportJitter jitter;
  jitter.exp_mean_ms = 5.0;
  am::Rng rng(5);
  am::RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(jitter.sample(0.0, rng));
  EXPECT_NEAR(stats.mean(), 5.0, 0.2);
}

TEST(CoreHop, FixedForwardingDelay) {
  an::CoreHop core(0.5);
  EXPECT_DOUBLE_EQ(core.forward(10.0), 10.5);
}

TEST(ComputeModel, MeanScalesWithCpuRatio) {
  an::ComputeModel model;
  am::Rng rng(6);
  am::RunningStats full;
  am::RunningStats half;
  for (int i = 0; i < 20000; ++i) {
    full.add(model.sample(1.0, rng));
    half.add(model.sample(0.5, rng));
  }
  EXPECT_NEAR(full.mean(), 81.0, 2.0);
  EXPECT_NEAR(half.mean() / full.mean(), 2.0, 0.1);
}

TEST(ComputeModel, OverheadAdditiveBeforeScaling) {
  an::ComputeModel model;
  model.std_ms = 1e-6;  // de-noise
  model.mean_ms = 80.0;
  model.min_ms = 79.0;
  model.max_ms = 81.0;
  model.overhead_ms = 20.0;
  am::Rng rng(7);
  EXPECT_NEAR(model.sample(0.5, rng), (80.0 + 20.0) / 0.5, 1.0);
}

TEST(ComputeModel, TailIncreasesMeanAndVariance) {
  an::ComputeModel base;
  an::ComputeModel tailed = base;
  tailed.tail_prob = 0.1;
  tailed.tail_mean_ms = 70.0;
  am::Rng rng(8);
  am::RunningStats b;
  am::RunningStats t;
  for (int i = 0; i < 30000; ++i) {
    b.add(base.sample(1.0, rng));
    t.add(tailed.sample(1.0, rng));
  }
  EXPECT_NEAR(t.mean() - b.mean(), 7.0, 1.0);
  EXPECT_GT(t.variance(), b.variance());
}

TEST(ComputeModel, CpuExponentPenalizesFractionalShares) {
  an::ComputeModel cfs;
  cfs.cpu_exponent = 1.25;
  an::ComputeModel linear;
  am::Rng rng(9);
  am::RunningStats cfs_stats;
  am::RunningStats lin_stats;
  for (int i = 0; i < 20000; ++i) {
    cfs_stats.add(cfs.sample(0.5, rng));
    lin_stats.add(linear.sample(0.5, rng));
  }
  EXPECT_GT(cfs_stats.mean(), lin_stats.mean());
  // At full CPU the exponent is invisible.
  am::RunningStats cfs_full;
  am::RunningStats lin_full;
  for (int i = 0; i < 20000; ++i) {
    cfs_full.add(cfs.sample(1.0, rng));
    lin_full.add(linear.sample(1.0, rng));
  }
  EXPECT_NEAR(cfs_full.mean(), lin_full.mean(), 1.5);
}

TEST(ComputeQueue, FifoBusyServer) {
  an::ComputeModel model;
  model.std_ms = 1e-6;
  model.mean_ms = 100.0;
  model.min_ms = 99.0;
  model.max_ms = 101.0;
  an::ComputeQueue queue(model, 1.0);
  am::Rng rng(10);
  const double t1 = queue.process(0.0, rng);
  const double t2 = queue.process(0.0, rng);  // queued behind the first
  EXPECT_NEAR(t1, 100.0, 1.5);
  EXPECT_NEAR(t2, 200.0, 3.0);
  EXPECT_EQ(queue.processed(), 2u);
}

TEST(ComputeQueue, UtilizationLawHolds) {
  // M/G/1 sanity: at arrival rate well under service rate the queue drains;
  // completion times grow linearly with arrivals, not superlinearly.
  an::ComputeModel model;  // ~81 ms mean
  an::ComputeQueue queue(model, 1.0);
  am::Rng rng(11);
  double now = 0.0;
  double last_done = 0.0;
  for (int i = 0; i < 500; ++i) {
    now += 200.0;  // one arrival per 200 ms >> 81 ms service
    last_done = queue.process(now, rng);
  }
  EXPECT_LT(last_done - now, 500.0);  // no runaway backlog
}
