#include <gtest/gtest.h>

#include <cmath>

#include "bo/gp_bo.hpp"
#include "math/rng.hpp"

namespace ab = atlas::bo;
namespace am = atlas::math;

// Behavioral coverage of the generic ask/tell minimizer across every
// acquisition path (the stage-1 GP comparison and the online "Baseline"
// both ride on this class).

namespace {

ab::BoxSpace unit_box(std::size_t d) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < d; ++i) names.push_back("x" + std::to_string(i));
  return ab::BoxSpace(names, am::Vec(d, 0.0), am::Vec(d, 1.0));
}

double bowl(const am::Vec& x) {
  double acc = 0.0;
  for (double v : x) acc += (v - 0.6) * (v - 0.6);
  return acc;
}

}  // namespace

class AcquisitionPathSweep : public ::testing::TestWithParam<ab::AcquisitionKind> {};

TEST_P(AcquisitionPathSweep, EveryAcquisitionImprovesOnWarmup) {
  ab::GpBoOptions opts;
  opts.acquisition = GetParam();
  opts.init_samples = 6;
  opts.candidates = 300;
  ab::GpBoMinimizer bo(unit_box(2), opts);
  am::Rng rng(3);

  // Warmup phase value.
  double warmup_best = 1e18;
  for (std::size_t i = 0; i < opts.init_samples; ++i) {
    const am::Vec x = bo.ask(rng);
    const double y = bowl(x);
    warmup_best = std::min(warmup_best, y);
    bo.tell(x, y);
  }
  for (int i = 0; i < 25; ++i) {
    const am::Vec x = bo.ask(rng);
    bo.tell(x, bowl(x));
  }
  EXPECT_LE(bo.result().best_y, warmup_best);
  EXPECT_LT(bo.result().best_y, 0.08);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AcquisitionPathSweep,
                         ::testing::Values(ab::AcquisitionKind::kEi, ab::AcquisitionKind::kPi,
                                           ab::AcquisitionKind::kUcb,
                                           ab::AcquisitionKind::kGpUcb,
                                           ab::AcquisitionKind::kCrgpUcb,
                                           ab::AcquisitionKind::kThompson));

TEST(GpBoMinimizer, WarmupIsPureExploration) {
  ab::GpBoOptions opts;
  opts.init_samples = 10;
  ab::GpBoMinimizer bo(unit_box(3), opts);
  am::Rng rng(5);
  // Before any tell, asks are random samples inside the box.
  for (int i = 0; i < 10; ++i) {
    const am::Vec x = bo.ask(rng);
    for (double v : x) {
      ASSERT_GE(v, 0.0);
      ASSERT_LT(v, 1.0);
    }
    bo.tell(x, 1.0);
  }
  EXPECT_EQ(bo.observations(), 10u);
}

TEST(GpBoMinimizer, BestTracksMinimumOfTells) {
  ab::GpBoMinimizer bo(unit_box(1));
  bo.tell({0.2}, 5.0);
  bo.tell({0.4}, 2.0);
  bo.tell({0.9}, 7.0);
  EXPECT_DOUBLE_EQ(bo.result().best_y, 2.0);
  EXPECT_DOUBLE_EQ(bo.result().best_x[0], 0.4);
  EXPECT_EQ(bo.result().history.size(), 3u);
}

TEST(GpBoMinimizer, OutOfBoxTellIsClampedForTheSurrogate) {
  // The surrogate sees normalized coordinates; a raw point outside the box
  // must not corrupt the fit (it is clamped), and the recorded best keeps
  // the caller's raw value.
  ab::GpBoMinimizer bo(unit_box(1));
  bo.tell({1.7}, 0.5);
  EXPECT_DOUBLE_EQ(bo.result().best_x[0], 1.7);
  am::Rng rng(7);
  EXPECT_NO_THROW(bo.ask(rng));
}

TEST(GpBoMinimizer, ConvergesOnAnisotropicValley) {
  // A narrow valley: f = (x0-0.3)^2 + 25 (x1-0.3)^2. The surrogate's
  // isotropic kernel still has to find the basin.
  ab::GpBoOptions opts;
  opts.init_samples = 8;
  opts.candidates = 500;
  ab::GpBoMinimizer bo(unit_box(2), opts);
  am::Rng rng(11);
  const auto result = bo.minimize(
      [](const am::Vec& x) {
        return (x[0] - 0.3) * (x[0] - 0.3) + 25.0 * (x[1] - 0.3) * (x[1] - 0.3);
      },
      45, rng);
  EXPECT_LT(result.best_y, 0.15);
  EXPECT_NEAR(result.best_x[1], 0.3, 0.15);  // the steep direction is found first
}

TEST(GpBoMinimizer, HandlesConstantObjective) {
  // Degenerate y (zero variance after normalization) must not crash the GP.
  ab::GpBoOptions opts;
  opts.init_samples = 4;
  opts.candidates = 100;
  ab::GpBoMinimizer bo(unit_box(2), opts);
  am::Rng rng(13);
  EXPECT_NO_THROW(bo.minimize([](const am::Vec&) { return 1.0; }, 12, rng));
  EXPECT_DOUBLE_EQ(bo.result().best_y, 1.0);
}

TEST(GpBoMinimizer, NoisyObjectiveStillImproves) {
  ab::GpBoOptions opts;
  opts.init_samples = 8;
  opts.candidates = 300;
  opts.gp.noise_variance = 1e-2;  // tell the surrogate about the noise
  ab::GpBoMinimizer bo(unit_box(2), opts);
  am::Rng rng(17);
  am::Rng noise(18);
  const auto result = bo.minimize(
      [&](const am::Vec& x) { return bowl(x) + noise.normal(0.0, 0.05); }, 40, rng);
  // The best observed value can go slightly negative from noise; the point
  // itself must be near the basin.
  EXPECT_LT(bowl(result.best_x), 0.2);
}
