#include <gtest/gtest.h>

#include <cmath>

#include "env/environment.hpp"
#include "math/kl.hpp"

namespace ae = atlas::env;
namespace am = atlas::math;

namespace {

ae::Workload short_workload(int traffic = 1, std::uint64_t seed = 1) {
  ae::Workload wl;
  wl.traffic = traffic;
  wl.duration_ms = 8000.0;
  wl.seed = seed;
  return wl;
}

}  // namespace

TEST(SliceConfig, VecRoundTrip) {
  ae::SliceConfig c;
  c.bandwidth_ul = 9;
  c.backhaul_mbps = 6.2;
  c.cpu_ratio = 0.8;
  const auto v = c.to_vec();
  const auto back = ae::SliceConfig::from_vec(v);
  EXPECT_DOUBLE_EQ(back.bandwidth_ul, 9.0);
  EXPECT_DOUBLE_EQ(back.backhaul_mbps, 6.2);
  EXPECT_DOUBLE_EQ(back.cpu_ratio, 0.8);
  EXPECT_THROW(ae::SliceConfig::from_vec({1.0, 2.0}), std::invalid_argument);
}

TEST(SliceConfig, ResourceUsageMatchesPaperFormula) {
  // The paper's best config (§8.2): 9/3 PRBs, 6.2 Mbps, 0.8 CPU -> ~18-20%.
  ae::SliceConfig c;
  c.bandwidth_ul = 9;
  c.bandwidth_dl = 3;
  c.mcs_offset_ul = 0;
  c.mcs_offset_dl = 0;
  c.backhaul_mbps = 6.2;
  c.cpu_ratio = 0.8;
  EXPECT_NEAR(c.resource_usage(), 0.184, 1e-3);
  // Full configuration uses everything except the MCS offsets.
  EXPECT_NEAR(ae::SliceConfig{}.resource_usage(), 4.0 / 6.0, 1e-9);
}

TEST(SliceConfig, ClampEnforcesConnectivityFloor) {
  ae::SliceConfig c;
  c.bandwidth_ul = 0;
  c.bandwidth_dl = 0;
  c.cpu_ratio = 5.0;
  const auto clamped = c.clamped();
  EXPECT_DOUBLE_EQ(clamped.bandwidth_ul, ae::kMinUlPrbs);
  EXPECT_DOUBLE_EQ(clamped.bandwidth_dl, ae::kMinDlPrbs);
  EXPECT_DOUBLE_EQ(clamped.cpu_ratio, 1.0);
}

TEST(SimParams, VecRoundTripAndDistance) {
  ae::SimParams p;
  p.backhaul_delay_ms = 10.0;
  const auto back = ae::SimParams::from_vec(p.to_vec());
  EXPECT_DOUBLE_EQ(back.backhaul_delay_ms, 10.0);
  EXPECT_DOUBLE_EQ(ae::SimParams::defaults().distance_to(ae::SimParams::defaults()), 0.0);
  EXPECT_GT(p.distance_to(ae::SimParams::defaults()), 0.0);
}

TEST(Episode, DeterministicPerSeed) {
  ae::Simulator sim;
  const auto a = sim.run(ae::SliceConfig{}, short_workload(1, 42));
  const auto b = sim.run(ae::SliceConfig{}, short_workload(1, 42));
  ASSERT_EQ(a.latencies_ms.size(), b.latencies_ms.size());
  for (std::size_t i = 0; i < a.latencies_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.latencies_ms[i], b.latencies_ms[i]);
  }
  const auto c = sim.run(ae::SliceConfig{}, short_workload(1, 43));
  EXPECT_NE(a.latencies_ms, c.latencies_ms);
}

TEST(Episode, ProducesFramesAndValidQoe) {
  ae::Simulator sim;
  const auto r = sim.run(ae::SliceConfig{}, short_workload());
  EXPECT_GT(r.frames_completed, 20u);
  const double q = r.qoe(300.0);
  EXPECT_GE(q, 0.0);
  EXPECT_LE(q, 1.0);
  for (double l : r.latencies_ms) ASSERT_GT(l, 0.0);
}

TEST(Episode, MoreCpuMeansLowerLatency) {
  ae::Simulator sim;
  ae::SliceConfig low;
  low.cpu_ratio = 0.3;
  ae::SliceConfig high;
  high.cpu_ratio = 1.0;
  const double mean_low = sim.run(low, short_workload()).latency_summary().mean;
  const double mean_high = sim.run(high, short_workload()).latency_summary().mean;
  EXPECT_GT(mean_low, mean_high);
}

TEST(Episode, MoreUplinkPrbsMeansLowerLatency) {
  ae::Simulator sim;
  ae::SliceConfig narrow;
  narrow.bandwidth_ul = 6;
  ae::SliceConfig wide;
  wide.bandwidth_ul = 50;
  const double mean_narrow = sim.run(narrow, short_workload()).latency_summary().mean;
  const double mean_wide = sim.run(wide, short_workload()).latency_summary().mean;
  EXPECT_GT(mean_narrow, mean_wide);
}

TEST(Episode, ThrottledBackhaulDegradesQoe) {
  ae::Simulator sim;
  ae::SliceConfig throttled;
  throttled.backhaul_mbps = 1.0;
  ae::SliceConfig open;
  open.backhaul_mbps = 100.0;
  EXPECT_LT(sim.run(throttled, short_workload()).qoe(300.0),
            sim.run(open, short_workload()).qoe(300.0));
}

TEST(Episode, LatencyGrowsWithTraffic) {
  ae::Simulator sim;
  double prev = 0.0;
  for (int traffic = 1; traffic <= 4; ++traffic) {
    const double mean =
        sim.run(ae::SliceConfig{}, short_workload(traffic, 5)).latency_summary().mean;
    EXPECT_GT(mean, prev);
    prev = mean;
  }
}

TEST(Episode, SliceIsolationUnderBackgroundUsers) {
  // Fig. 11: extra users with full-buffer traffic must not disturb the slice.
  ae::RealNetwork real;
  ae::SliceConfig config;
  config.bandwidth_ul = 20;
  config.bandwidth_dl = 20;
  ae::Workload alone = short_workload(1, 9);
  ae::Workload crowded = alone;
  crowded.extra_users = 2;
  const double mean_alone = real.run(config, alone).latency_summary().mean;
  const double mean_crowded = real.run(config, crowded).latency_summary().mean;
  EXPECT_NEAR(mean_crowded / mean_alone, 1.0, 0.12);
}

TEST(Episode, MobilityDegradesRealNetwork) {
  ae::RealNetwork real;
  ae::Workload near = short_workload(1, 11);
  ae::Workload far = near;
  far.distance_m = 10.0;
  EXPECT_GT(real.run(ae::SliceConfig{}, far).latency_summary().mean,
            real.run(ae::SliceConfig{}, near).latency_summary().mean);
}

TEST(SimToReal, RealIsSlowerThanDefaultSimulator) {
  // Fig. 2: the system's latency distribution sits right of the simulator's.
  ae::Simulator sim;
  ae::RealNetwork real;
  const auto ws = short_workload(1, 13);
  EXPECT_GT(real.run(ae::SliceConfig{}, ws).latency_summary().mean,
            sim.run(ae::SliceConfig{}, ws).latency_summary().mean * 1.1);
}

TEST(SimToReal, OracleCalibrationShrinksDiscrepancy) {
  ae::Simulator original;
  ae::Simulator calibrated(ae::oracle_calibration());
  ae::RealNetwork real;
  ae::Workload wl = short_workload(1, 17);
  wl.duration_ms = 20000.0;
  const auto real_lat = real.run(ae::SliceConfig{}, wl).latencies_ms;
  wl.seed = 18;
  const double kl_orig =
      am::kl_divergence(real_lat, original.run(ae::SliceConfig{}, wl).latencies_ms);
  const double kl_cal =
      am::kl_divergence(real_lat, calibrated.run(ae::SliceConfig{}, wl).latencies_ms);
  EXPECT_LT(kl_cal, kl_orig * 0.5);
}

TEST(SimParamsKnobs, ComputeTimeKnobRaisesLatency) {
  ae::SimParams slow;
  slow.compute_time_ms = 25.0;
  ae::Simulator sim_default;
  ae::Simulator sim_slow(slow);
  EXPECT_GT(sim_slow.run(ae::SliceConfig{}, short_workload()).latency_summary().mean,
            sim_default.run(ae::SliceConfig{}, short_workload()).latency_summary().mean);
}

TEST(SimParamsKnobs, BackhaulDelayKnobRaisesLatency) {
  ae::SimParams slow;
  slow.backhaul_delay_ms = 20.0;
  ae::Simulator sim_default;
  ae::Simulator sim_slow(slow);
  EXPECT_GT(sim_slow.run(ae::SliceConfig{}, short_workload()).latency_summary().mean,
            sim_default.run(ae::SliceConfig{}, short_workload()).latency_summary().mean);
}

TEST(Probes, Table1DirectionsHold) {
  const auto sim = ae::measure_network_performance(ae::simulator_profile(), 8000.0, 3);
  const auto real = ae::measure_network_performance(ae::real_network_profile(), 8000.0, 3);
  // Real throughput lower, PER higher, ping slightly higher — Table 1.
  EXPECT_LT(real.ul_mbps, sim.ul_mbps);
  EXPECT_LT(real.dl_mbps, sim.dl_mbps);
  EXPECT_GT(real.ul_per, sim.ul_per);
  EXPECT_GT(real.dl_per, sim.dl_per);
  EXPECT_GT(real.ping_ms, sim.ping_ms - 1.0);
  // Magnitudes in the paper's ballpark.
  EXPECT_NEAR(sim.ul_mbps, 19.87, 3.0);
  EXPECT_NEAR(sim.dl_mbps, 32.37, 3.0);
  EXPECT_NEAR(sim.ping_ms, 34.0, 5.0);
}

TEST(Environment, MeasureQoeMatchesEpisodeQoe) {
  ae::Simulator sim;
  const auto wl = short_workload(1, 21);
  const double direct = sim.run(ae::SliceConfig{}, wl).qoe(300.0);
  const double via_helper = sim.measure_qoe(ae::SliceConfig{}, wl, 300.0);
  EXPECT_DOUBLE_EQ(direct, via_helper);
}
