// Golden-episode determinism tests: pin the exact bit-level behavior of the
// episode engine across a grid of seeds, configs, profiles, and workload
// features. The expected hashes were captured from the pre-rewrite engine
// (std::priority_queue-of-std::function DES, allocating MAC scheduler,
// uncached link budget); the zero-allocation engine must reproduce every one
// of them exactly — the RNG draw order, event ordering, and floating-point
// expression shapes are all part of the contract.
//
// To (re)capture after an *intentional* behavior change, run with
// ATLAS_GOLDEN_PRINT=1 and paste the emitted table over kGolden below.
//
// The pinned hashes are toolchain-anchored: a different libm (glibc
// version) or FP contraction policy can legitimately shift a latency by an
// ULP and flip every hash without any behavioral regression. Environments
// that build with a different toolchain than the capture machine (e.g. the
// GitHub CI image) set ATLAS_GOLDEN_TOOLCHAIN_LENIENT=1, which swaps the
// pinned-hash assertion for a cross-run determinism assertion (same episode
// run twice must hash identically) — still a real engine property, minus
// the toolchain anchoring.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "env/episode.hpp"
#include "env/multi_slice.hpp"
#include "env/profile.hpp"

namespace ae = atlas::env;

namespace {

/// FNV-1a over raw 64-bit patterns: stable, order-sensitive, and exact —
/// any single-ULP drift in any latency or trace field changes the hash.
struct Fnv {
  std::uint64_t h = 1469598103934665603ULL;
  void add_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  void add_double(double d) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    add_u64(bits);
  }
};

std::uint64_t hash_result(const ae::EpisodeResult& r) {
  Fnv f;
  f.add_u64(r.frames_completed);
  f.add_u64(static_cast<std::uint64_t>(r.ul_tb_total));
  f.add_u64(static_cast<std::uint64_t>(r.ul_tb_err));
  f.add_u64(static_cast<std::uint64_t>(r.dl_tb_total));
  f.add_u64(static_cast<std::uint64_t>(r.dl_tb_err));
  for (double v : r.latencies_ms) f.add_double(v);
  f.add_u64(r.traces.size());
  for (const auto& t : r.traces) {
    f.add_u64(t.id);
    f.add_double(t.created_ms);
    f.add_double(t.sent_ms);
    f.add_double(t.ul_done_ms);
    f.add_double(t.edge_in_ms);
    f.add_double(t.compute_start_ms);
    f.add_double(t.compute_done_ms);
    f.add_double(t.enb_dl_ms);
    f.add_double(t.completed_ms);
  }
  return f.h;
}

struct GoldenCase {
  const char* name;
  bool real_profile;
  double bandwidth_ul, bandwidth_dl, mcs_offset_ul, mcs_offset_dl, backhaul, cpu;
  int traffic;
  double duration_ms;
  bool traces;
  bool random_walk;
  int extra_users;
  std::uint64_t seed;
  std::uint64_t expected;
};

// Captured from the pre-rewrite engine (seed commit d0b89e3) on this
// container; regenerate with ATLAS_GOLDEN_PRINT=1.
const GoldenCase kGolden[] = {
    {"sim_default_t1", false, 50, 50, 0, 0, 100, 1.0, 1, 5000, false, false, 0, 1, 0xa398b7e6c15a3eafULL},
    {"sim_default_t3", false, 50, 50, 0, 0, 100, 1.0, 3, 5000, false, false, 0, 42, 0xf381e324c6d46a55ULL},
    {"sim_tight_t2", false, 12, 10, 2, 1, 25, 0.4, 2, 5000, false, false, 0, 7, 0x720da458ecdab99dULL},
    {"sim_traces_t2", false, 50, 50, 0, 0, 100, 1.0, 2, 5000, true, false, 0, 9, 0x35050b28d5acccd6ULL},
    {"sim_bg4_t2", false, 30, 30, 0, 0, 100, 1.0, 2, 5000, false, false, 4, 11, 0x5fdaa959281bf09aULL},
    {"sim_walk_t2", false, 50, 50, 0, 0, 100, 1.0, 2, 5000, false, true, 0, 13, 0x1deb1e2e8b6e94abULL},
    {"real_default_t2", true, 50, 50, 0, 0, 100, 1.0, 2, 5000, false, false, 0, 17, 0x832d8e93a5564aa8ULL},
    {"real_traces_walk_bg4", true, 40, 40, 1, 0, 60, 0.8, 2, 5000, true, true, 4, 19, 0x49d77f616811ff68ULL},
    {"real_tight_t4", true, 10, 8, 3, 2, 15, 0.25, 4, 5000, false, false, 0, 23, 0x44f4ea8490524e49ULL},
    // Background-tier guard cases, captured from the scalar per-UE engine
    // immediately BEFORE the vectorized SoA background tier landed: the
    // batched sweep must reproduce the per-UE DES bit-for-bit at every UE
    // count. sim_bg16 pins the full-grant fast path, sim_bg64 pins the
    // partial-grant path (20 background PRBs across 64 UEs: only the first
    // 20 draw), real_bg16 pins fading + stale CQI + HARQ blocking.
    {"sim_bg16_t2", false, 30, 30, 0, 0, 100, 1.0, 2, 5000, false, false, 16, 29, 0xdca8c07238cd8555ULL},
    {"sim_bg64_t2", false, 30, 30, 0, 0, 100, 1.0, 2, 5000, false, false, 64, 37, 0x01e699f761d4dfbbULL},
    {"real_bg16_t2", true, 30, 30, 0, 0, 100, 1.0, 2, 5000, false, false, 16, 31, 0xbc9efe162451db01ULL},
};

ae::EpisodeResult run_case(const GoldenCase& c) {
  const ae::NetworkProfile profile =
      c.real_profile ? ae::real_network_profile() : ae::simulator_profile();
  ae::SliceConfig config;
  config.bandwidth_ul = c.bandwidth_ul;
  config.bandwidth_dl = c.bandwidth_dl;
  config.mcs_offset_ul = c.mcs_offset_ul;
  config.mcs_offset_dl = c.mcs_offset_dl;
  config.backhaul_mbps = c.backhaul;
  config.cpu_ratio = c.cpu;
  ae::Workload wl;
  wl.traffic = c.traffic;
  wl.duration_ms = c.duration_ms;
  wl.collect_traces = c.traces;
  wl.random_walk = c.random_walk;
  wl.extra_users = c.extra_users;
  wl.seed = c.seed;
  return ae::run_episode(profile, config, wl);
}

bool print_mode() { return std::getenv("ATLAS_GOLDEN_PRINT") != nullptr; }
bool lenient_mode() { return std::getenv("ATLAS_GOLDEN_TOOLCHAIN_LENIENT") != nullptr; }

}  // namespace

TEST(GoldenEpisode, BitIdenticalAcrossEngineRewrites) {
  for (const auto& c : kGolden) {
    const std::uint64_t h = hash_result(run_case(c));
    if (print_mode()) {
      std::printf("single %-22s 0x%016llx\n", c.name,
                  static_cast<unsigned long long>(h));
      continue;
    }
    if (lenient_mode()) {
      EXPECT_EQ(h, hash_result(run_case(c))) << c.name << " (cross-run determinism)";
      continue;
    }
    EXPECT_EQ(h, c.expected) << c.name;
  }
}

// The shared-carrier multi-slice runner goes through the same DES + MAC hot
// path with its own RNG forking discipline; pin it too.
TEST(GoldenEpisode, MultiSliceBitIdentical) {
  const struct {
    const char* name;
    bool real_profile;
    std::uint64_t seed;
    std::uint64_t expected;
  } cases[] = {
      {"ms_sim", false, 5, 0x6b6b045e5b5186beULL},
      {"ms_real", true, 6, 0x9cff266e60e7e045ULL},
  };
  for (const auto& c : cases) {
    const ae::NetworkProfile profile =
        c.real_profile ? ae::real_network_profile() : ae::simulator_profile();
    std::vector<ae::SliceSpec> specs(3);
    specs[0].config.bandwidth_ul = 20;
    specs[0].config.bandwidth_dl = 20;
    specs[0].traffic = 2;
    specs[1].config.bandwidth_ul = 15;
    specs[1].config.bandwidth_dl = 15;
    specs[1].config.cpu_ratio = 0.5;
    specs[1].traffic = 1;
    specs[1].distance_m = 4.0;
    specs[2].config.bandwidth_ul = 15;
    specs[2].config.bandwidth_dl = 15;
    specs[2].config.backhaul_mbps = 30;
    specs[2].traffic = 3;
    specs[2].distance_m = 2.0;
    auto hash_once = [&] {
      const auto out = ae::run_multi_slice_episode(profile, specs, 5000.0, c.seed);
      Fnv f;
      for (const auto& r : out.per_slice) f.add_u64(hash_result(r));
      return f.h;
    };
    const std::uint64_t h = hash_once();
    if (print_mode()) {
      std::printf("multi  %-22s 0x%016llx\n", c.name,
                  static_cast<unsigned long long>(h));
      continue;
    }
    if (lenient_mode()) {
      EXPECT_EQ(h, hash_once()) << c.name << " (cross-run determinism)";
      continue;
    }
    EXPECT_EQ(h, c.expected) << c.name;
  }
}
