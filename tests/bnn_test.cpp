#include <gtest/gtest.h>

#include <cmath>

#include "math/rng.hpp"
#include "math/stats.hpp"
#include "nn/bnn.hpp"
#include "nn/optim.hpp"

namespace am = atlas::math;
namespace an = atlas::nn;

namespace {

an::BnnConfig small_config() {
  an::BnnConfig cfg;
  cfg.sizes = {1, 24, 24, 1};
  cfg.noise_sigma = 0.05;
  return cfg;
}

}  // namespace

TEST(Bnn, RejectsBadArchitectures) {
  am::Rng rng(1);
  an::BnnConfig cfg;
  cfg.sizes = {3};
  EXPECT_THROW(an::Bnn(cfg, rng), std::invalid_argument);
  cfg.sizes = {3, 8, 2};  // output must be scalar
  EXPECT_THROW(an::Bnn(cfg, rng), std::invalid_argument);
}

TEST(Bnn, KlToPriorPositiveAndShrinksTowardPrior) {
  am::Rng rng(2);
  an::BnnConfig cfg = small_config();
  an::Bnn bnn(cfg, rng);
  const double kl = bnn.kl_to_prior();
  EXPECT_GT(kl, 0.0);
  EXPECT_TRUE(std::isfinite(kl));
}

TEST(Bnn, ThompsonSamplesDiffer) {
  am::Rng rng(3);
  an::Bnn bnn(small_config(), rng);
  const auto s1 = bnn.thompson(rng);
  const auto s2 = bnn.thompson(rng);
  EXPECT_NE(s1.predict({0.5}), s2.predict({0.5}));
}

TEST(Bnn, BatchPredictMatchesScalarPredict) {
  am::Rng rng(4);
  an::Bnn bnn(small_config(), rng);
  const auto s = bnn.thompson(rng);
  am::Matrix x(3, 1);
  x(0, 0) = -0.5;
  x(1, 0) = 0.0;
  x(2, 0) = 0.7;
  const am::Vec batch = s.predict_batch(x);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(batch[i], s.predict(x.row(i)), 1e-12);
  }
}

TEST(Bnn, FitsSmoothFunction) {
  am::Rng rng(5);
  an::Bnn bnn(small_config(), rng);
  const std::size_t n = 200;
  am::Matrix x(n, 1);
  am::Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(i) / n;
    x(i, 0) = v;
    y[i] = std::sin(4.0 * v);
  }
  an::Adadelta opt(1.0);
  an::StepLr sched(opt, 1, 0.999);
  bnn.train(x, y, 400, 32, opt, &sched, rng);
  // Posterior-mean prediction should be close on the training range.
  double err = 0.0;
  for (std::size_t i = 0; i < n; i += 10) {
    err += std::fabs(bnn.predict_at_mean(x.row(i)) - y[i]);
  }
  EXPECT_LT(err / 20.0, 0.15);
}

TEST(Bnn, PredictMeanStdReasonable) {
  am::Rng rng(6);
  an::Bnn bnn(small_config(), rng);
  am::Matrix x(50, 1);
  am::Vec y(50);
  for (std::size_t i = 0; i < 50; ++i) {
    x(i, 0) = static_cast<double>(i) / 50.0;
    y[i] = 0.5;
  }
  an::Adadelta opt(1.0);
  bnn.train(x, y, 200, 25, opt, nullptr, rng);
  const auto ms = bnn.predict({0.5}, 32, rng);
  EXPECT_NEAR(ms.mean, 0.5, 0.15);
  EXPECT_GE(ms.std, 0.0);
}

TEST(Bnn, TrainingReducesLoss) {
  am::Rng rng(7);
  an::Bnn bnn(small_config(), rng);
  const std::size_t n = 128;
  am::Matrix x(n, 1);
  am::Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = static_cast<double>(i) / n;
    y[i] = 0.3 + 0.4 * x(i, 0);
  }
  an::Adadelta opt(1.0);
  const double first = bnn.train(x, y, 5, 32, opt, nullptr, rng);
  const double later = bnn.train(x, y, 200, 32, opt, nullptr, rng);
  EXPECT_LT(later, first);
}

TEST(Bnn, ScaleMixturePriorTrains) {
  am::Rng rng(8);
  an::BnnConfig cfg = small_config();
  cfg.prior = an::BnnPrior::kScaleMixtureMc;
  an::Bnn bnn(cfg, rng);
  am::Matrix x(64, 1);
  am::Vec y(64);
  for (std::size_t i = 0; i < 64; ++i) {
    x(i, 0) = static_cast<double>(i) / 64.0;
    y[i] = x(i, 0);
  }
  an::Adadelta opt(1.0);
  const double first = bnn.train(x, y, 5, 32, opt, nullptr, rng);
  const double later = bnn.train(x, y, 150, 32, opt, nullptr, rng);
  EXPECT_LT(later, first);
  // Analytic KL is undefined for the mixture prior.
  EXPECT_THROW(bnn.kl_to_prior(), std::logic_error);
}

TEST(Bnn, UncertaintyHigherAwayFromData) {
  am::Rng rng(9);
  an::BnnConfig cfg = small_config();
  an::Bnn bnn(cfg, rng);
  // Train only on x in [0, 0.3].
  const std::size_t n = 150;
  am::Matrix x(n, 1);
  am::Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = 0.3 * static_cast<double>(i) / n;
    y[i] = x(i, 0);
  }
  an::Adadelta opt(1.0);
  bnn.train(x, y, 300, 32, opt, nullptr, rng);
  const auto in_region = bnn.predict({0.15}, 48, rng);
  const auto out_region = bnn.predict({3.0}, 48, rng);
  EXPECT_GT(out_region.std, in_region.std);
}
