#include <gtest/gtest.h>

#include "env/env_service.hpp"
#include "atlas/offline_trainer.hpp"

namespace ac = atlas::core;
namespace ae = atlas::env;

namespace {

ac::OfflineOptions fast_options() {
  ac::OfflineOptions opts;
  opts.iterations = 30;
  opts.init_iterations = 10;
  opts.parallel = 4;
  opts.candidates = 400;
  opts.workload.duration_ms = 6000.0;
  opts.bnn.sizes = {8, 32, 32, 1};
  opts.bnn.noise_sigma = 0.07;
  opts.train_epochs = 4;
  opts.seed = 7;
  return opts;
}

}  // namespace

TEST(Stage2, FindsCheaperFeasibleConfiguration) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator(ae::oracle_calibration());
  ac::OfflineTrainer trainer(service, sim, fast_options());
  const auto result = trainer.train();
  // Must find something meeting the QoE requirement cheaper than full usage.
  EXPECT_GE(result.policy.best_qoe, 0.9);
  EXPECT_LT(result.policy.best_usage, ae::SliceConfig{}.resource_usage());
  EXPECT_TRUE(result.policy.qoe_model != nullptr);
  EXPECT_GE(result.policy.final_lambda, 0.0);
}

TEST(Stage2, TraceShapesAndRanges) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator();
  auto opts = fast_options();
  opts.iterations = 12;
  ac::OfflineTrainer trainer(service, sim, opts);
  const auto result = trainer.train();
  EXPECT_EQ(result.trace.avg_usage.size(), 12u);
  EXPECT_EQ(result.trace.avg_qoe.size(), 12u);
  EXPECT_EQ(result.trace.lambda.size(), 12u);
  for (std::size_t i = 0; i < 12; ++i) {
    ASSERT_GE(result.trace.avg_qoe[i], 0.0);
    ASSERT_LE(result.trace.avg_qoe[i], 1.0);
    ASSERT_GE(result.trace.avg_usage[i], 0.0);
    ASSERT_LE(result.trace.avg_usage[i], 1.0);
    ASSERT_GE(result.trace.lambda[i], 0.0);  // dual feasibility
  }
  EXPECT_EQ(result.history.size(), 12u * 4u);
}

TEST(Stage2, PolicyPredictsQoeInUnitInterval) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator();
  auto opts = fast_options();
  opts.iterations = 15;
  ac::OfflineTrainer trainer(service, sim, opts);
  const auto result = trainer.train();
  atlas::math::Rng rng(3);
  const auto space = ae::SliceConfig::space();
  for (int i = 0; i < 50; ++i) {
    const double q = result.policy.predict_qoe(ae::SliceConfig::from_vec(space.sample(rng)));
    ASSERT_GE(q, 0.0);
    ASSERT_LE(q, 1.0);
  }
}

TEST(Stage2, PolicyModelLearnsResourceQoeTrend) {
  // After training, the BNN should rate the full configuration clearly above
  // a starved one.
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator(ae::oracle_calibration());
  auto opts = fast_options();
  opts.iterations = 40;
  ac::OfflineTrainer trainer(service, sim, opts);
  const auto result = trainer.train();
  ae::SliceConfig starved;
  starved.bandwidth_ul = 6;
  starved.cpu_ratio = 0.05;
  starved.backhaul_mbps = 1.0;
  EXPECT_GT(result.policy.predict_qoe(ae::SliceConfig{}),
            result.policy.predict_qoe(starved));
}

TEST(Stage2, GpSurrogateVariantsRun) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator();
  for (auto surrogate :
       {ac::OfflineSurrogate::kGpEi, ac::OfflineSurrogate::kGpPi, ac::OfflineSurrogate::kGpUcb}) {
    auto opts = fast_options();
    opts.surrogate = surrogate;
    opts.iterations = 14;
    opts.init_iterations = 8;
    ac::OfflineTrainer trainer(service, sim, opts);
    const auto result = trainer.train();
    EXPECT_EQ(result.history.size(), 14u);  // sequential
    EXPECT_GT(result.policy.best_qoe, 0.0);
  }
}

TEST(Stage2, LambdaRisesWhileInfeasible) {
  // With an impossible SLA (QoE >= 1.01) the dual variable must keep rising.
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator();
  auto opts = fast_options();
  opts.iterations = 10;
  opts.sla.availability = 1.01;
  ac::OfflineTrainer trainer(service, sim, opts);
  const auto result = trainer.train();
  for (std::size_t i = 1; i < result.trace.lambda.size(); ++i) {
    ASSERT_GE(result.trace.lambda[i], result.trace.lambda[i - 1]);
  }
}
