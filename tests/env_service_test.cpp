#include <gtest/gtest.h>

#include <latch>
#include <stdexcept>
#include <thread>
#include <vector>

#include "atlas/online_learner.hpp"
#include "env/env_service.hpp"
#include "env/seed_plan.hpp"
#include "env/shard_router.hpp"

namespace ae = atlas::env;
namespace ac = atlas::core;

namespace {

ae::Workload short_workload(std::uint64_t seed) {
  ae::Workload wl;
  wl.duration_ms = 3000.0;
  wl.seed = seed;
  return wl;
}

ae::EnvQuery query(ae::BackendId backend, std::uint64_t seed,
                   ae::SliceConfig config = ae::SliceConfig{}) {
  ae::EnvQuery q;
  q.backend = backend;
  q.config = config;
  q.workload = short_workload(seed);
  return q;
}

/// A simulator behind the polymorphic EnvBackend interface with a custom
/// cost hint — stands in for a remote farm in eviction tests.
class CostlyBackend final : public ae::EnvBackend {
 public:
  explicit CostlyBackend(double cost, std::string name = "costly")
      : name_(std::move(name)), cost_(cost) {}

  ae::EpisodeResult execute(const ae::EnvQuery& q) const override {
    return sim_.run(q.config, q.workload);
  }
  ae::BackendKind kind() const noexcept override { return ae::BackendKind::kOffline; }
  const std::string& name() const noexcept override { return name_; }
  double cost_hint() const noexcept override { return cost_; }

 private:
  ae::Simulator sim_;
  std::string name_;
  double cost_;
};

/// Parks every execute() until released — makes a shard look loaded so the
/// router's least-loaded placement has something to avoid.
class BlockingBackend final : public ae::EnvBackend {
 public:
  ae::EpisodeResult execute(const ae::EnvQuery&) const override {
    started_.fetch_add(1, std::memory_order_relaxed);
    release_.wait(false);  // std::atomic<bool>::wait
    return {};
  }
  ae::BackendKind kind() const noexcept override { return ae::BackendKind::kOnline; }
  const std::string& name() const noexcept override { return name_; }

  int started() const noexcept { return started_.load(std::memory_order_relaxed); }
  void release() {
    release_.store(true, std::memory_order_release);
    release_.notify_all();
  }

 private:
  std::string name_ = "blocking";
  mutable std::atomic<int> started_{0};
  mutable std::atomic<bool> release_{false};
};

}  // namespace

TEST(EnvService, BatchReturnsResultsInSubmissionOrder) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 4});
  const auto sim = service.add_simulator();

  // Ground truth from a directly-owned environment, one seed per slot.
  ae::Simulator direct;
  std::vector<ae::EnvQuery> batch;
  std::vector<ae::EpisodeResult> expected;
  for (std::uint64_t i = 0; i < 12; ++i) {
    ae::SliceConfig config;
    config.bandwidth_ul = 10.0 + 3.0 * static_cast<double>(i);
    batch.push_back(query(sim, 100 + i, config));
    expected.push_back(direct.run(config, short_workload(100 + i)));
  }

  const auto results = service.run_batch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_EQ(results[i].latencies_ms, expected[i].latencies_ms) << "slot " << i;
  }
}

TEST(EnvService, SubmitReturnsWorkingHandle) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator();

  auto handle = service.submit(query(sim, 7));
  ASSERT_TRUE(handle.valid());
  EXPECT_GT(handle.id(), 0u);
  const auto result = handle.get();

  ae::Simulator direct;
  EXPECT_EQ(result.latencies_ms, direct.run(ae::SliceConfig{}, short_workload(7)).latencies_ms);
}

TEST(EnvService, CacheHitsAreDeterministicAndCounted) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator();

  const auto first = service.run(query(sim, 42));
  const auto second = service.run(query(sim, 42));
  EXPECT_EQ(first.latencies_ms, second.latencies_ms);

  const auto stats = service.backend_stats(sim);
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.episodes, 1u);  // the episode actually ran only once
  EXPECT_EQ(service.cache_size(), 1u);

  // A different seed is a different episode.
  (void)service.run(query(sim, 43));
  EXPECT_EQ(service.backend_stats(sim).episodes, 2u);
}

TEST(EnvService, OnlineBackendsAreNeverCached) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto real = service.add_real_network();

  (void)service.run(query(real, 5));
  (void)service.run(query(real, 5));
  const auto stats = service.backend_stats(real);
  EXPECT_EQ(stats.kind, ae::BackendKind::kOnline);
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.episodes, 2u);  // metered: every query hit the network
  EXPECT_EQ(service.cache_size(), 0u);
}

TEST(EnvService, SimParamsOverrideRunsAndCaches) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator();

  auto q = query(sim, 9);
  q.sim_params = ae::oracle_calibration();
  const auto overridden = service.run(q);
  const auto cached = service.run(q);
  EXPECT_EQ(overridden.latencies_ms, cached.latencies_ms);
  EXPECT_EQ(service.backend_stats(sim).episodes, 1u);

  // The override must match an ephemeral simulator with those parameters...
  ae::Simulator direct(ae::oracle_calibration());
  EXPECT_EQ(overridden.latencies_ms,
            direct.run(ae::SliceConfig{}, short_workload(9)).latencies_ms);
  // ...and must key the cache separately from the backend's own parameters.
  const auto defaults = service.run(query(sim, 9));
  EXPECT_NE(defaults.latencies_ms, overridden.latencies_ms);
}

TEST(EnvService, SimParamsOverrideRejectedOffSimulatorBackends) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  // Metered backends must not be faked by an offline override...
  const auto real = service.add_real_network();
  auto q = query(real, 1);
  q.sim_params = ae::SimParams::defaults();
  EXPECT_THROW((void)service.run(q), std::invalid_argument);
  // ...and non-Simulator offline backends (multi-slice) would silently lose
  // their semantics under an override, so they are rejected too.
  const auto shared = service.add_multi_slice(ae::simulator_profile(), {ae::SliceSpec{}});
  auto mq = query(shared, 1);
  mq.sim_params = ae::SimParams::defaults();
  EXPECT_THROW((void)service.run(mq), std::invalid_argument);
}

TEST(EnvService, MultiSliceBackendRejectsUnsupportedWorkloadFields) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto shared = service.add_multi_slice(ae::simulator_profile(), {ae::SliceSpec{}});
  auto q = query(shared, 1);
  q.workload.extra_users = 2;  // the shared-carrier runner cannot express this
  EXPECT_THROW((void)service.run(q), std::invalid_argument);
}

TEST(EnvService, UnknownBackendThrows) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  EXPECT_THROW((void)service.run(query(99, 1)), std::out_of_range);
  EXPECT_THROW((void)service.submit(query(99, 1)), std::out_of_range);
}

TEST(EnvService, LruEvictionBoundsTheCache) {
  ae::EnvServiceOptions options;
  options.threads = 1;
  options.cache_capacity = 2;
  ae::EnvService service(options);
  const auto sim = service.add_simulator();

  (void)service.run(query(sim, 1));  // A
  (void)service.run(query(sim, 2));  // B
  (void)service.run(query(sim, 3));  // C evicts A (least recently used)
  EXPECT_EQ(service.cache_size(), 2u);
  (void)service.run(query(sim, 1));  // A must re-execute
  EXPECT_EQ(service.backend_stats(sim).episodes, 4u);
}

TEST(EnvService, LruEvictionKeepsRecentlyTouchedEntries) {
  // A hit refreshes recency: unlike the old FIFO, a hot entry survives
  // churn that would have aged it out by insertion order.
  ae::EnvServiceOptions options;
  options.threads = 1;
  options.cache_capacity = 2;
  ae::EnvService service(options);
  const auto sim = service.add_simulator();

  (void)service.run(query(sim, 1));  // A
  (void)service.run(query(sim, 2));  // B
  (void)service.run(query(sim, 1));  // touch A: B is now the LRU entry
  (void)service.run(query(sim, 3));  // C evicts B, not A
  (void)service.run(query(sim, 1));  // A still cached
  const auto stats = service.backend_stats(sim);
  EXPECT_EQ(stats.episodes, 3u) << "A must never re-execute";
  (void)service.run(query(sim, 2));  // B was evicted: re-executes
  EXPECT_EQ(service.backend_stats(sim).episodes, 4u);
}

TEST(EnvService, MeasureQoeMatchesEpisodeQoe) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator();
  const auto episode = service.run(query(sim, 11));
  EXPECT_DOUBLE_EQ(service.measure_qoe(query(sim, 11), 300.0), episode.qoe(300.0));
}

TEST(EnvService, StatsSplitOfflineFromOnline) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator();
  const auto real = service.add_real_network();

  std::vector<ae::EnvQuery> batch{query(sim, 1), query(sim, 2), query(real, 3)};
  (void)service.run_batch(batch);

  const auto stats = service.stats();
  EXPECT_EQ(stats.offline_queries, 2u);
  EXPECT_EQ(stats.online_queries, 1u);
  EXPECT_EQ(stats.total_queries(), 3u);
  ASSERT_EQ(stats.backends.size(), 2u);
  EXPECT_EQ(stats.backends[sim].name, "simulator");
  EXPECT_EQ(stats.backends[real].name, "real");

  service.reset_stats();
  EXPECT_EQ(service.stats().total_queries(), 0u);
}

TEST(QueryHandle, InvalidHandleIsSafeNotUB) {
  ae::QueryHandle handle;  // default-constructed: no shared state
  EXPECT_FALSE(handle.valid());
  EXPECT_NO_THROW(handle.wait());                 // no-op, not UB
  EXPECT_THROW((void)handle.get(), std::logic_error);

  // A consumed handle behaves the same: get() is one-shot.
  ae::EnvService service(ae::EnvServiceOptions{.threads = 1});
  const auto sim = service.add_simulator();
  auto live = service.submit(query(sim, 3));
  (void)live.get();
  EXPECT_FALSE(live.valid());
  EXPECT_NO_THROW(live.wait());
  EXPECT_THROW((void)live.get(), std::logic_error);
}

TEST(EnvService, SingleFlightCoalescesRacingThreads) {
  // N threads hammer ONE cacheable query. Single-flight must collapse them
  // onto a single episode execution with exact accounting: the leader counts
  // the miss, every coalesced/late arrival counts a hit.
  constexpr std::size_t kThreads = 8;
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator();

  std::latch start(kThreads);
  std::vector<std::thread> threads;
  std::vector<ae::EpisodeResult> results(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      results[t] = service.run(query(sim, 42));
    });
  }
  for (auto& th : threads) th.join();

  const auto stats = service.backend_stats(sim);
  EXPECT_EQ(stats.episodes, 1u) << "duplicates must coalesce onto one execution";
  EXPECT_EQ(stats.queries, kThreads);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, kThreads - 1);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.queries);
  for (const auto& r : results) {
    EXPECT_EQ(r.latencies_ms, results[0].latencies_ms);  // shared result
  }
}

TEST(EnvService, DuplicateQueriesInOneBatchExecuteOnce) {
  // Duplicates INSIDE one run_batch used to race past the memo table and all
  // execute; single-flight dedups them batch-internally too.
  ae::EnvService service(ae::EnvServiceOptions{.threads = 4});
  const auto sim = service.add_simulator();

  std::vector<ae::EnvQuery> batch;
  for (int rep = 0; rep < 8; ++rep) {
    batch.push_back(query(sim, 1));
    batch.push_back(query(sim, 2));
  }
  const auto results = service.run_batch(batch);

  const auto stats = service.backend_stats(sim);
  EXPECT_EQ(stats.episodes, 2u);  // two unique keys -> two executions
  EXPECT_EQ(stats.queries, batch.size());
  EXPECT_EQ(stats.cache_misses, 2u);
  EXPECT_EQ(stats.cache_hits, batch.size() - 2);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].latencies_ms, results[i % 2].latencies_ms) << "slot " << i;
  }
}

TEST(EnvService, CrnPolicyReusesEpisodesAcrossStage2Iterations) {
  // Stage-2 shape: two BO iterations evaluate the SAME candidate set (an
  // incumbent neighborhood being re-scored). Under the `crn` seed policy the
  // second iteration replays the first's (config, seed) keys, so the memo
  // table serves it without running a single episode — visible as crn_hits.
  // Under `fresh` every query draws a new seed and hits nothing.
  constexpr std::size_t kCandidates = 6;
  constexpr std::size_t kIterations = 2;

  auto run_policy = [&](ae::SeedPolicy policy) {
    ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
    const auto sim = service.add_simulator();
    ae::SeedPlanOptions plan_options;
    plan_options.policy = policy;
    plan_options.replicates = 2;  // a 2-seed CRN block per iteration
    const ae::SeedStream seeds =
        ae::SeedPlan(5, plan_options).stream(ae::SeedDomain::kStage2Query, kCandidates);

    for (std::size_t iter = 0; iter < kIterations; ++iter) {
      for (std::size_t c = 0; c < kCandidates; ++c) {
        ae::SliceConfig config;
        config.bandwidth_ul = 10.0 + 4.0 * static_cast<double>(c);
        ae::EnvQuery q = query(sim, 0, config);
        seeds.apply(q, iter, c);
        (void)service.run(q);
      }
    }
    return service.backend_stats(sim);
  };

  const auto fresh = run_policy(ae::SeedPolicy::kFresh);
  const auto crn = run_policy(ae::SeedPolicy::kCrn);

  // Identical query counts: the policy changes seeds, not the workload.
  EXPECT_EQ(fresh.queries, kIterations * kCandidates);
  EXPECT_EQ(crn.queries, fresh.queries);

  // fresh: every (config, seed) key is unique — no reuse, full price.
  EXPECT_EQ(fresh.cache_hits, 0u);
  EXPECT_EQ(fresh.crn_hits, 0u);
  EXPECT_EQ(fresh.episodes, kIterations * kCandidates);

  // crn: the second iteration is served entirely from the memo table.
  EXPECT_GT(crn.cache_hits, 0u);
  EXPECT_GT(crn.crn_hits, 0u);
  EXPECT_EQ(crn.crn_hits, kCandidates);
  EXPECT_LT(crn.episodes, fresh.episodes);
  EXPECT_EQ(crn.episodes, kCandidates);
}

TEST(EnvService, CrnHitsAggregateThroughServiceAndRouterStats) {
  // crn_hits must survive both aggregation paths: EnvService::stats() and
  // ShardRouter::stats() (per-backend and service-wide totals).
  ae::ShardRouter router(2, ae::EnvServiceOptions{.threads = 1});
  const auto sim = router.add_simulator();

  ae::EnvQuery q = query(sim, 77);
  q.crn = true;
  (void)router.run(q);  // miss
  (void)router.run(q);  // crn hit
  (void)router.run(q);  // crn hit

  const auto backend = router.backend_stats(sim);
  EXPECT_EQ(backend.cache_hits, 2u);
  EXPECT_EQ(backend.crn_hits, 2u);
  const auto totals = router.stats();
  EXPECT_EQ(totals.crn_hits, 2u);
  EXPECT_EQ(totals.cache_hits, 2u);

  // A plain (untagged) hit is NOT a crn hit.
  ae::EnvQuery plain = query(sim, 77);
  (void)router.run(plain);
  EXPECT_EQ(router.backend_stats(sim).cache_hits, 3u);
  EXPECT_EQ(router.backend_stats(sim).crn_hits, 2u);

  router.reset_stats();
  EXPECT_EQ(router.stats().crn_hits, 0u);
}

TEST(EnvService, NestedBatchInsideWorkerDoesNotDeadlock) {
  // A follow-up batch issued from inside a pool worker (e.g. a progress
  // callback) must not deadlock the fixed-size pool: with one worker the
  // nested parallel_for relies on the caller-runs fallback.
  ae::EnvService service(ae::EnvServiceOptions{.threads = 1});
  const auto sim = service.add_simulator();

  auto outer = service.pool().submit([&] {
    std::vector<ae::EnvQuery> inner{query(sim, 70), query(sim, 71), query(sim, 72)};
    return service.run_batch(inner).size();
  });
  EXPECT_EQ(outer.get(), 3u);
  EXPECT_EQ(service.backend_stats(sim).episodes, 3u);
}

TEST(EnvService, DestructionWithAbandonedHandlesIsSafe) {
  // Submitted-but-never-harvested queries may still be queued when the
  // service dies; the pool (last member) must drain them while the registry
  // and cache shards are still alive.
  for (int rep = 0; rep < 4; ++rep) {
    ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
    const auto sim = service.add_simulator();
    for (std::uint64_t i = 0; i < 8; ++i) {
      (void)service.submit(query(sim, 900 + i));  // handle dropped immediately
    }
    // ~EnvService runs here with tasks likely still in flight.
  }
  SUCCEED();
}

TEST(ShardRouter, NestedBatchInsideShardWorkerDoesNotDeadlock) {
  // A router batch issued from inside an owning shard's (single) pool worker
  // must run same-shard queries inline instead of parking the worker on its
  // own queue.
  ae::ShardRouter router(2, ae::EnvServiceOptions{.threads = 1});
  const auto sim_a = router.add_simulator();  // shard 0
  const auto sim_b = router.add_simulator();  // shard 1

  auto outer = router.shard(0).pool().submit([&] {
    std::vector<ae::EnvQuery> inner{query(sim_a, 80), query(sim_b, 81), query(sim_a, 82)};
    return router.run_batch(inner).size();
  });
  EXPECT_EQ(outer.get(), 3u);
  EXPECT_EQ(router.backend_stats(sim_a).episodes, 2u);
  EXPECT_EQ(router.backend_stats(sim_b).episodes, 1u);
}

TEST(EnvService, CacheCapacityZeroDisablesCachingEndToEnd) {
  ae::EnvServiceOptions options;
  options.threads = 1;
  options.cache_capacity = 0;
  ae::EnvService service(options);
  EXPECT_FALSE(service.caching_enabled());
  const auto sim = service.add_simulator();

  (void)service.run(query(sim, 5));
  (void)service.run(query(sim, 5));  // same key: re-executes, no phantom miss
  const auto stats = service.backend_stats(sim);
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.episodes, 2u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u) << "capacity 0 means disabled, not always-missing";
  EXPECT_EQ(service.cache_size(), 0u);
}

TEST(EnvService, CacheShardCountAdaptsToCapacity) {
  // Tiny caches keep one stripe (exact global FIFO); the default capacity
  // stripes out; an explicit cache_shards is honored but never exceeds the
  // capacity.
  ae::EnvServiceOptions tiny;
  tiny.threads = 1;
  tiny.cache_capacity = 2;
  EXPECT_EQ(ae::EnvService(tiny).cache_shard_count(), 1u);

  ae::EnvServiceOptions dflt;
  dflt.threads = 1;
  EXPECT_EQ(ae::EnvService(dflt).cache_shard_count(), 16u);

  ae::EnvServiceOptions manual;
  manual.threads = 1;
  manual.cache_shards = 4;
  EXPECT_EQ(ae::EnvService(manual).cache_shard_count(), 4u);

  ae::EnvServiceOptions clamped;
  clamped.threads = 1;
  clamped.cache_capacity = 3;
  clamped.cache_shards = 64;
  EXPECT_EQ(ae::EnvService(clamped).cache_shard_count(), 3u);
}

TEST(EnvService, CostAwareEvictionPrefersCheapVictims) {
  // Capacity 2, one stripe. An expensive (remote-priced) entry inserted
  // FIRST — i.e. the least recently used — must survive eviction while the
  // cheap simulator entry goes, because recomputing it costs 1000x.
  ae::EnvServiceOptions options;
  options.threads = 1;
  options.cache_capacity = 2;
  ae::EnvService service(options);
  const auto costly = service.register_backend(std::make_shared<CostlyBackend>(1000.0));
  const auto sim = service.add_simulator();

  (void)service.run(query(costly, 1));  // expensive entry (oldest)
  (void)service.run(query(sim, 2));     // cheap entry
  (void)service.run(query(sim, 3));     // overflow: evicts the CHEAP entry
  EXPECT_EQ(service.cache_size(), 2u);

  (void)service.run(query(costly, 1));  // still memoized: no new episode
  EXPECT_EQ(service.backend_stats(costly).episodes, 1u)
      << "the expensive entry must outlive cheap ones in the eviction scan";
  (void)service.run(query(sim, 2));  // was evicted: re-executes
  EXPECT_EQ(service.backend_stats(sim).episodes, 3u);
}

TEST(EnvService, JustInsertedEntryIsNotItsOwnEvictionVictim) {
  // A stripe full of expensive entries must not turn cheap backends into
  // cache-never citizens: the eviction scan excludes the entry the current
  // insert just added, so the cheap episode displaces the coldest expensive
  // one instead of evicting itself.
  ae::EnvServiceOptions options;
  options.threads = 1;
  options.cache_capacity = 2;
  ae::EnvService service(options);
  const auto costly = service.register_backend(std::make_shared<CostlyBackend>(1000.0));
  const auto sim = service.add_simulator();

  (void)service.run(query(costly, 1));  // expensive, coldest
  (void)service.run(query(costly, 2));  // expensive
  (void)service.run(query(sim, 3));     // cheap insert: evicts costly seed 1, NOT itself
  (void)service.run(query(sim, 3));     // must be a hit
  const auto stats = service.backend_stats(sim);
  EXPECT_EQ(stats.cache_hits, 1u) << "the just-inserted cheap entry must survive";
  EXPECT_EQ(stats.episodes, 1u);
  (void)service.run(query(costly, 2));  // newer expensive entry survived
  EXPECT_EQ(service.backend_stats(costly).episodes, 2u);
}

TEST(EnvService, CustomBackendRegistersWithOwnNameKindAndCost) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 1});
  const auto id =
      service.register_backend(std::make_shared<CostlyBackend>(250.0, "ns3-farm"));
  EXPECT_EQ(service.backend_name(id), "ns3-farm");
  EXPECT_EQ(service.backend_kind(id), ae::BackendKind::kOffline);

  (void)service.run(query(id, 5));
  const auto stats = service.backend_stats(id);
  EXPECT_EQ(stats.name, "ns3-farm");
  EXPECT_DOUBLE_EQ(stats.cost_hint, 250.0);
  EXPECT_EQ(stats.episodes, 1u);
  EXPECT_EQ(stats.rpc_failures, 0u);  // fill_stats default: no rpc surface

  EXPECT_THROW((void)service.register_backend(std::shared_ptr<const ae::EnvBackend>{}),
               std::invalid_argument);
}

TEST(EnvService, SubmitCountsOutstandingQueries) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 1});
  auto blocking = std::make_shared<BlockingBackend>();
  const auto id = service.register_backend(blocking);
  EXPECT_EQ(service.outstanding_queries(), 0u);

  std::vector<ae::QueryHandle> handles;
  for (std::uint64_t i = 0; i < 3; ++i) handles.push_back(service.submit(query(id, i)));
  while (blocking->started() < 1) std::this_thread::yield();
  EXPECT_EQ(service.outstanding_queries(), 3u);  // 1 executing + 2 queued

  blocking->release();
  for (auto& h : handles) (void)h.get();
  EXPECT_EQ(service.outstanding_queries(), 0u);
}

TEST(ShardRouter, PlacementAvoidsLoadedShards) {
  // Registration-time least-loaded placement: while shard 0 is drowning in
  // outstanding queries, newly registered backends must land on shard 1
  // (the old blind round-robin would have alternated).
  ae::ShardRouter router(2, ae::EnvServiceOptions{.threads = 1});
  auto blocking = std::make_shared<BlockingBackend>();
  const auto busy = router.register_backend(blocking);  // idle tie-break: shard 0
  EXPECT_EQ(&router.service_for(busy), &router.shard(0));

  std::vector<ae::QueryHandle> handles;
  for (std::uint64_t i = 0; i < 3; ++i) handles.push_back(router.submit(query(busy, i)));
  while (blocking->started() < 1) std::this_thread::yield();

  const auto sim_a = router.add_simulator(ae::SimParams::defaults(), "sim-a");
  const auto sim_b = router.add_simulator(ae::SimParams::defaults(), "sim-b");
  EXPECT_EQ(&router.service_for(sim_a), &router.shard(1));
  EXPECT_EQ(&router.service_for(sim_b), &router.shard(1))
      << "shard 0 still has outstanding queries; placement must keep avoiding it";

  blocking->release();
  for (auto& h : handles) (void)h.get();

  // With the load drained, ties fall back to backend counts: shard 0 (1
  // backend) beats shard 1 (2 backends).
  const auto sim_c = router.add_simulator(ae::SimParams::defaults(), "sim-c");
  EXPECT_EQ(&router.service_for(sim_c), &router.shard(0));
}

TEST(ShardRouter, IdlePlacementSpreadsLikeRoundRobinAndAggregatesStats) {
  ae::ShardRouter router(2, ae::EnvServiceOptions{.threads = 1});
  ASSERT_EQ(router.shard_count(), 2u);
  const auto sim_a = router.add_simulator(ae::SimParams::defaults(), "sim-a");  // shard 0
  const auto real = router.add_real_network("real-b");                          // shard 1
  const auto sim_c = router.add_simulator(ae::SimParams::defaults(), "sim-c");  // shard 0
  EXPECT_EQ(router.backend_count(), 3u);
  EXPECT_EQ(router.backend_name(sim_a), "sim-a");
  EXPECT_EQ(router.backend_name(real), "real-b");
  EXPECT_EQ(router.backend_kind(real), ae::BackendKind::kOnline);
  EXPECT_EQ(&router.service_for(sim_a), &router.shard(0));
  EXPECT_EQ(&router.service_for(real), &router.shard(1));
  EXPECT_EQ(&router.service_for(sim_c), &router.shard(0));

  (void)router.run(query(sim_a, 1));
  (void)router.run(query(sim_a, 1));  // cache hit on shard 0
  (void)router.run(query(real, 2));
  (void)router.run(query(sim_c, 3));

  // Per-backend stats route through; the aggregate is ordered by GLOBAL id
  // and sums hit/miss/offline/online across shards.
  EXPECT_EQ(router.backend_stats(sim_a).cache_hits, 1u);
  const auto stats = router.stats();
  ASSERT_EQ(stats.backends.size(), 3u);
  EXPECT_EQ(stats.backends[0].name, "sim-a");
  EXPECT_EQ(stats.backends[1].name, "real-b");
  EXPECT_EQ(stats.backends[2].name, "sim-c");
  EXPECT_EQ(stats.offline_queries, 3u);
  EXPECT_EQ(stats.online_queries, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 2u);
  EXPECT_EQ(router.cache_size(), 2u);  // sim_a seed 1 + sim_c seed 3

  router.reset_stats();
  EXPECT_EQ(router.stats().total_queries(), 0u);
  router.clear_cache();
  EXPECT_EQ(router.cache_size(), 0u);

  EXPECT_THROW((void)router.run(query(99, 1)), std::out_of_range);
}

TEST(ShardRouter, BatchFansOutAcrossShardsInOrder) {
  ae::ShardRouter router(3, ae::EnvServiceOptions{.threads = 1});
  std::vector<ae::BackendId> sims;
  for (int i = 0; i < 3; ++i) sims.push_back(router.add_simulator());

  // Ground truth from a directly-owned simulator: all shards run the same
  // default parameters, so only the per-slot seed differentiates results.
  ae::Simulator direct;
  std::vector<ae::EnvQuery> batch;
  std::vector<ae::EpisodeResult> expected;
  for (std::uint64_t i = 0; i < 9; ++i) {
    batch.push_back(query(sims[i % 3], 500 + i));
    expected.push_back(direct.run(ae::SliceConfig{}, short_workload(500 + i)));
  }

  const auto results = router.run_batch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].latencies_ms, expected[i].latencies_ms) << "slot " << i;
  }
  // Each shard saw exactly its own slice of the batch.
  for (int i = 0; i < 3; ++i) EXPECT_EQ(router.backend_stats(sims[i]).queries, 3u);
}

TEST(EnvService, OnlineAccountingMatchesOnlineHistoryLength) {
  // The paper's sample-efficiency bookkeeping for free: after a stage-3 run,
  // the metered backend's query count IS the number of online interactions.
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator(ae::oracle_calibration());
  const auto real = service.add_real_network();

  ac::OnlineOptions opts;
  opts.iterations = 6;
  opts.inner_updates = 2;
  opts.candidates = 200;
  opts.workload.duration_ms = 3000.0;
  opts.model = ac::OnlineModel::kGpWhole;  // no offline policy needed
  ac::OnlineLearner learner(nullptr, service, sim, real, opts);
  const auto run = learner.learn();

  EXPECT_EQ(run.history.size(), 6u);
  EXPECT_EQ(service.backend_stats(real).queries, run.history.size());
  EXPECT_EQ(service.backend_stats(real).episodes, run.history.size());
  EXPECT_EQ(service.stats().online_queries, run.history.size());
}
