#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "atlas/online_learner.hpp"
#include "env/env_service.hpp"

namespace ae = atlas::env;
namespace ac = atlas::core;

namespace {

ae::Workload short_workload(std::uint64_t seed) {
  ae::Workload wl;
  wl.duration_ms = 3000.0;
  wl.seed = seed;
  return wl;
}

ae::EnvQuery query(ae::BackendId backend, std::uint64_t seed,
                   ae::SliceConfig config = ae::SliceConfig{}) {
  ae::EnvQuery q;
  q.backend = backend;
  q.config = config;
  q.workload = short_workload(seed);
  return q;
}

}  // namespace

TEST(EnvService, BatchReturnsResultsInSubmissionOrder) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 4});
  const auto sim = service.add_simulator();

  // Ground truth from a directly-owned environment, one seed per slot.
  ae::Simulator direct;
  std::vector<ae::EnvQuery> batch;
  std::vector<ae::EpisodeResult> expected;
  for (std::uint64_t i = 0; i < 12; ++i) {
    ae::SliceConfig config;
    config.bandwidth_ul = 10.0 + 3.0 * static_cast<double>(i);
    batch.push_back(query(sim, 100 + i, config));
    expected.push_back(direct.run(config, short_workload(100 + i)));
  }

  const auto results = service.run_batch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_EQ(results[i].latencies_ms, expected[i].latencies_ms) << "slot " << i;
  }
}

TEST(EnvService, SubmitReturnsWorkingHandle) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator();

  auto handle = service.submit(query(sim, 7));
  ASSERT_TRUE(handle.valid());
  EXPECT_GT(handle.id(), 0u);
  const auto result = handle.get();

  ae::Simulator direct;
  EXPECT_EQ(result.latencies_ms, direct.run(ae::SliceConfig{}, short_workload(7)).latencies_ms);
}

TEST(EnvService, CacheHitsAreDeterministicAndCounted) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator();

  const auto first = service.run(query(sim, 42));
  const auto second = service.run(query(sim, 42));
  EXPECT_EQ(first.latencies_ms, second.latencies_ms);

  const auto stats = service.backend_stats(sim);
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.episodes, 1u);  // the episode actually ran only once
  EXPECT_EQ(service.cache_size(), 1u);

  // A different seed is a different episode.
  (void)service.run(query(sim, 43));
  EXPECT_EQ(service.backend_stats(sim).episodes, 2u);
}

TEST(EnvService, OnlineBackendsAreNeverCached) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto real = service.add_real_network();

  (void)service.run(query(real, 5));
  (void)service.run(query(real, 5));
  const auto stats = service.backend_stats(real);
  EXPECT_EQ(stats.kind, ae::BackendKind::kOnline);
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.episodes, 2u);  // metered: every query hit the network
  EXPECT_EQ(service.cache_size(), 0u);
}

TEST(EnvService, SimParamsOverrideRunsAndCaches) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator();

  auto q = query(sim, 9);
  q.sim_params = ae::oracle_calibration();
  const auto overridden = service.run(q);
  const auto cached = service.run(q);
  EXPECT_EQ(overridden.latencies_ms, cached.latencies_ms);
  EXPECT_EQ(service.backend_stats(sim).episodes, 1u);

  // The override must match an ephemeral simulator with those parameters...
  ae::Simulator direct(ae::oracle_calibration());
  EXPECT_EQ(overridden.latencies_ms,
            direct.run(ae::SliceConfig{}, short_workload(9)).latencies_ms);
  // ...and must key the cache separately from the backend's own parameters.
  const auto defaults = service.run(query(sim, 9));
  EXPECT_NE(defaults.latencies_ms, overridden.latencies_ms);
}

TEST(EnvService, SimParamsOverrideRejectedOffSimulatorBackends) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  // Metered backends must not be faked by an offline override...
  const auto real = service.add_real_network();
  auto q = query(real, 1);
  q.sim_params = ae::SimParams::defaults();
  EXPECT_THROW((void)service.run(q), std::invalid_argument);
  // ...and non-Simulator offline backends (multi-slice) would silently lose
  // their semantics under an override, so they are rejected too.
  const auto shared = service.add_multi_slice(ae::simulator_profile(), {ae::SliceSpec{}});
  auto mq = query(shared, 1);
  mq.sim_params = ae::SimParams::defaults();
  EXPECT_THROW((void)service.run(mq), std::invalid_argument);
}

TEST(EnvService, MultiSliceBackendRejectsUnsupportedWorkloadFields) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto shared = service.add_multi_slice(ae::simulator_profile(), {ae::SliceSpec{}});
  auto q = query(shared, 1);
  q.workload.extra_users = 2;  // the shared-carrier runner cannot express this
  EXPECT_THROW((void)service.run(q), std::invalid_argument);
}

TEST(EnvService, UnknownBackendThrows) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  EXPECT_THROW((void)service.run(query(99, 1)), std::out_of_range);
  EXPECT_THROW((void)service.submit(query(99, 1)), std::out_of_range);
}

TEST(EnvService, FifoEvictionBoundsTheCache) {
  ae::EnvServiceOptions options;
  options.threads = 1;
  options.cache_capacity = 2;
  ae::EnvService service(options);
  const auto sim = service.add_simulator();

  (void)service.run(query(sim, 1));  // A
  (void)service.run(query(sim, 2));  // B
  (void)service.run(query(sim, 3));  // C evicts A
  EXPECT_EQ(service.cache_size(), 2u);
  (void)service.run(query(sim, 1));  // A must re-execute
  EXPECT_EQ(service.backend_stats(sim).episodes, 4u);
}

TEST(EnvService, MeasureQoeMatchesEpisodeQoe) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator();
  const auto episode = service.run(query(sim, 11));
  EXPECT_DOUBLE_EQ(service.measure_qoe(query(sim, 11), 300.0), episode.qoe(300.0));
}

TEST(EnvService, StatsSplitOfflineFromOnline) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator();
  const auto real = service.add_real_network();

  std::vector<ae::EnvQuery> batch{query(sim, 1), query(sim, 2), query(real, 3)};
  (void)service.run_batch(batch);

  const auto stats = service.stats();
  EXPECT_EQ(stats.offline_queries, 2u);
  EXPECT_EQ(stats.online_queries, 1u);
  EXPECT_EQ(stats.total_queries(), 3u);
  ASSERT_EQ(stats.backends.size(), 2u);
  EXPECT_EQ(stats.backends[sim].name, "simulator");
  EXPECT_EQ(stats.backends[real].name, "real");

  service.reset_stats();
  EXPECT_EQ(service.stats().total_queries(), 0u);
}

TEST(EnvService, OnlineAccountingMatchesOnlineHistoryLength) {
  // The paper's sample-efficiency bookkeeping for free: after a stage-3 run,
  // the metered backend's query count IS the number of online interactions.
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator(ae::oracle_calibration());
  const auto real = service.add_real_network();

  ac::OnlineOptions opts;
  opts.iterations = 6;
  opts.inner_updates = 2;
  opts.candidates = 200;
  opts.workload.duration_ms = 3000.0;
  opts.model = ac::OnlineModel::kGpWhole;  // no offline policy needed
  ac::OnlineLearner learner(nullptr, service, sim, real, opts);
  const auto run = learner.learn();

  EXPECT_EQ(run.history.size(), 6u);
  EXPECT_EQ(service.backend_stats(real).queries, run.history.size());
  EXPECT_EQ(service.backend_stats(real).episodes, run.history.size());
  EXPECT_EQ(service.stats().online_queries, run.history.size());
}
