// End-to-end acceptance test for the remote farm: spawn a real
// atlas_episode_worker process, put a RemoteBackend shard next to a local
// one inside a ShardRouter, run a Stage-1-style batch, and demand
// bit-identical results and matching BackendStats accounting versus the
// same batch run fully in-process.
//
// The worker binary path comes from ATLAS_WORKER_BIN (set by CMake on the
// ctest entry). Alternatively ATLAS_WORKER_ADDR=host:port points at an
// already-running worker (used by the CI job that starts one explicitly);
// with neither set the suite is skipped.

#include <gtest/gtest.h>

#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "env/env_service.hpp"
#include "env/shard_router.hpp"
#include "rpc/codec.hpp"
#include "rpc/remote_backend.hpp"

namespace ae = atlas::env;
namespace ar = atlas::rpc;

extern char** environ;

namespace {

/// Spawns (or attaches to) a worker; kills the spawned process on teardown.
class WorkerProcess {
 public:
  bool start() {
    if (const char* addr = std::getenv("ATLAS_WORKER_ADDR")) {
      const std::string s = addr;
      const auto colon = s.rfind(':');
      if (colon == std::string::npos) return false;
      host_ = s.substr(0, colon);
      port_ = static_cast<std::uint16_t>(std::stoi(s.substr(colon + 1)));
      return true;
    }
    const char* bin = std::getenv("ATLAS_WORKER_BIN");
    if (bin == nullptr) return false;

    port_file_ = "atlas_worker_port." + std::to_string(::getpid());
    std::remove(port_file_.c_str());
    std::vector<std::string> args = {bin,          "--port",      "0",
                                     "--port-file", port_file_,   "--threads",
                                     "2",          "--quiet"};
    std::vector<char*> argv;
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    if (posix_spawn(&pid_, bin, nullptr, nullptr, argv.data(), environ) != 0) {
      return false;
    }

    // Poll for the atomically-renamed port file (worker prints it when the
    // listener is live, so a successful read implies readiness).
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (std::chrono::steady_clock::now() < deadline) {
      std::ifstream in(port_file_);
      int port = 0;
      if (in >> port && port > 0) {
        port_ = static_cast<std::uint16_t>(port);
        return true;
      }
      int status = 0;
      if (::waitpid(pid_, &status, WNOHANG) == pid_) {
        pid_ = -1;
        return false;  // worker died during startup
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  ~WorkerProcess() {
    if (pid_ > 0) {
      ::kill(pid_, SIGTERM);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
    if (!port_file_.empty()) std::remove(port_file_.c_str());
  }

  const std::string& host() const { return host_; }
  std::uint16_t port() const { return port_; }

 private:
  pid_t pid_ = -1;
  std::string host_ = "127.0.0.1";
  std::uint16_t port_ = 0;
  std::string port_file_;
};

/// Stage-1-style batch: per-query SimParams overrides (the calibration
/// sweep's shape) plus plain-config queries, with deliberate duplicates so
/// cache accounting is exercised.
std::vector<ae::EnvQuery> stage1_batch(ae::BackendId backend) {
  std::vector<ae::EnvQuery> batch;
  for (std::uint64_t i = 0; i < 6; ++i) {
    ae::EnvQuery q;
    q.backend = backend;
    q.config.bandwidth_ul = 20.0 + 5.0 * static_cast<double>(i % 3);
    q.workload.duration_ms = 3000.0;
    q.workload.seed = 1000 + i;
    ae::SimParams params;
    params.backhaul_delay_ms = 2.0 * static_cast<double>(i % 2);
    params.compute_time_ms = 5.0 + static_cast<double>(i);
    q.sim_params = params;
    batch.push_back(q);
  }
  for (std::uint64_t i = 0; i < 4; ++i) {
    ae::EnvQuery q;
    q.backend = backend;
    q.workload.duration_ms = 3000.0;
    q.workload.seed = 2000 + i / 2;  // duplicates: seeds 2000, 2000, 2001, 2001
    batch.push_back(q);
  }
  return batch;
}

}  // namespace

TEST(RemoteIntegration, ShardRouterBatchMatchesInProcessBitIdentically) {
  WorkerProcess worker;
  if (!worker.start()) {
    GTEST_SKIP() << "set ATLAS_WORKER_BIN (or ATLAS_WORKER_ADDR) to run the remote farm test";
  }

  // Remote path: a ShardRouter mixing one local simulator shard with one
  // RemoteBackend shard served by the spawned worker.
  ae::ShardRouter router(2, ae::EnvServiceOptions{.threads = 2});
  const auto local = router.add_simulator(ae::SimParams::defaults(), "local-sim");
  ar::RemoteBackendOptions options;
  options.host = worker.host();
  options.port = worker.port();
  options.name = "remote-sim";
  const auto remote = router.register_backend(std::make_shared<ar::RemoteBackend>(options));
  ASSERT_NE(&router.service_for(local), &router.service_for(remote))
      << "local and remote backends should land on different shards";

  // In-process reference: identical batch against a plain EnvService.
  ae::EnvService reference(ae::EnvServiceOptions{.threads = 2});
  const auto ref_sim = reference.add_simulator();

  const auto remote_batch = stage1_batch(remote);
  const auto local_batch = stage1_batch(local);
  const auto ref_batch = stage1_batch(ref_sim);

  const auto remote_results = router.run_batch(remote_batch);
  const auto local_results = router.run_batch(local_batch);
  const auto ref_results = reference.run_batch(ref_batch);

  ASSERT_EQ(remote_results.size(), ref_results.size());
  for (std::size_t i = 0; i < ref_results.size(); ++i) {
    // Bit-identical across process boundaries: same seeds, same engine,
    // raw-bits codec.
    EXPECT_EQ(remote_results[i].latencies_ms, ref_results[i].latencies_ms) << "slot " << i;
    EXPECT_EQ(local_results[i].latencies_ms, ref_results[i].latencies_ms) << "slot " << i;
    EXPECT_EQ(remote_results[i].frames_completed, ref_results[i].frames_completed);
    EXPECT_EQ(remote_results[i].ul_tb_total, ref_results[i].ul_tb_total);
    EXPECT_EQ(remote_results[i].ul_tb_err, ref_results[i].ul_tb_err);
    EXPECT_EQ(remote_results[i].dl_tb_total, ref_results[i].dl_tb_total);
    EXPECT_EQ(remote_results[i].dl_tb_err, ref_results[i].dl_tb_err);
  }

  // Accounting parity: the remote path must meter exactly like the local
  // ones — the duplicate seeds coalesce/hit the memo identically.
  const auto remote_stats = router.backend_stats(remote);
  const auto local_stats = router.backend_stats(local);
  const auto ref_stats = reference.backend_stats(ref_sim);
  EXPECT_EQ(remote_stats.queries, ref_stats.queries);
  EXPECT_EQ(remote_stats.cache_hits, ref_stats.cache_hits);
  EXPECT_EQ(remote_stats.cache_misses, ref_stats.cache_misses);
  EXPECT_EQ(remote_stats.episodes, ref_stats.episodes);
  EXPECT_EQ(local_stats.queries, ref_stats.queries);
  EXPECT_EQ(local_stats.episodes, ref_stats.episodes);
  EXPECT_EQ(remote_stats.rpc_failures, 0u);

  // Replay: every result now comes from the client-side memo (no new
  // episodes), remote or not.
  const auto before = router.backend_stats(remote).episodes;
  const auto replay = router.run_batch(remote_batch);
  for (std::size_t i = 0; i < replay.size(); ++i) {
    EXPECT_EQ(replay[i].latencies_ms, ref_results[i].latencies_ms);
  }
  EXPECT_EQ(router.backend_stats(remote).episodes, before);
}

TEST(RemoteIntegration, SimParamsRejectionCrossesTheWire) {
  WorkerProcess worker;
  if (!worker.start()) {
    GTEST_SKIP() << "set ATLAS_WORKER_BIN (or ATLAS_WORKER_ADDR) to run the remote farm test";
  }
  // A query the WORKER must reject (unknown worker-side backend id): the
  // error crosses the wire as an error frame and surfaces as RpcError.
  ar::RemoteBackendOptions options;
  options.host = worker.host();
  options.port = worker.port();
  options.remote_backend = 42;  // worker registered only backend 0
  ar::RemoteBackend backend(options);
  ae::EnvQuery q;
  q.workload.duration_ms = 1000.0;
  EXPECT_THROW((void)backend.execute(q), ar::RpcError);
  EXPECT_EQ(backend.rpc_failures(), 1u);
}
