// Farm failover acceptance test: two real atlas_episode_worker processes
// behind one FarmController-managed ShardRouter, SIGKILL one mid-run_batch,
// and demand (a) the batch completes with results bit-identical to a pure
// in-process run, (b) every re-dispatched episode is counted, (c) the memo
// still serves revisits as hits, and (d) the heartbeat sweep declares the
// killed worker dead.
//
// Needs ATLAS_WORKER_BIN (set by CMake on the ctest entry); skipped without
// it. ATLAS_WORKER_ADDR is deliberately ignored — this suite must own the
// worker's lifetime to be allowed to kill it.

#include <gtest/gtest.h>

#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "env/env_service.hpp"
#include "env/farm_controller.hpp"
#include "env/shard_router.hpp"
#include "rpc/worker_control.hpp"

namespace ae = atlas::env;
namespace ar = atlas::rpc;

extern char** environ;

namespace {

/// Spawns one worker process this test is free to SIGKILL.
class OwnedWorker {
 public:
  bool start(int index) {
    const char* bin = std::getenv("ATLAS_WORKER_BIN");
    if (bin == nullptr) return false;
    port_file_ = "atlas_farm_port." + std::to_string(::getpid()) + "." + std::to_string(index);
    std::remove(port_file_.c_str());
    std::vector<std::string> args = {bin,          "--port",      "0",
                                     "--port-file", port_file_,   "--threads",
                                     "2",          "--quiet"};
    std::vector<char*> argv;
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    if (posix_spawn(&pid_, bin, nullptr, nullptr, argv.data(), environ) != 0) return false;
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (std::chrono::steady_clock::now() < deadline) {
      std::ifstream in(port_file_);
      int port = 0;
      if (in >> port && port > 0) {
        port_ = static_cast<std::uint16_t>(port);
        return true;
      }
      int status = 0;
      if (::waitpid(pid_, &status, WNOHANG) == pid_) {
        pid_ = -1;
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  void kill_hard() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
      pid_ = -1;
    }
  }

  ~OwnedWorker() {
    if (pid_ > 0) {
      ::kill(pid_, SIGTERM);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
    if (!port_file_.empty()) std::remove(port_file_.c_str());
  }

  std::uint16_t port() const { return port_; }

 private:
  pid_t pid_ = -1;
  std::uint16_t port_ = 0;
  std::string port_file_;
};

std::vector<ae::EnvQuery> batch_with_seeds(ae::BackendId backend, std::size_t n) {
  std::vector<ae::EnvQuery> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ae::EnvQuery q;
    q.backend = backend;
    q.config.bandwidth_ul = 20.0 + 5.0 * static_cast<double>(i % 3);
    q.workload.duration_ms = 3000.0;
    q.workload.seed = 5000 + i;  // distinct seeds: no cache help on first pass
    batch.push_back(q);
  }
  return batch;
}

std::shared_ptr<ar::RemoteWorkerControl> control_for(std::uint16_t port) {
  ar::RemoteWorkerOptions options;
  options.port = port;
  options.timeout_ms = 10000.0;
  options.control_timeout_ms = 1000.0;
  return std::make_shared<ar::RemoteWorkerControl>(options);
}

}  // namespace

TEST(FarmFailover, KilledWorkerMidBatchRedispatchesBitIdentically) {
  OwnedWorker a;
  OwnedWorker b;
  if (!a.start(0) || !b.start(1)) {
    GTEST_SKIP() << "set ATLAS_WORKER_BIN to run the farm failover test";
  }

  ae::ShardRouter router(2, ae::EnvServiceOptions{.threads = 4});
  ae::FarmControllerOptions farm_options;
  farm_options.suspect_after_misses = 1;
  farm_options.dead_after_misses = 2;
  ae::FarmController controller(router, farm_options);
  const auto wa = controller.add_worker(control_for(a.port()));
  const auto wb = controller.add_worker(control_for(b.port()));
  ASSERT_EQ(router.backend_count(), 1u)
      << "both workers announce the same default simulator digest";
  const ae::BackendId sim = controller.worker_backends(wa).at(0);

  constexpr std::size_t kBatch = 240;
  const auto batch = batch_with_seeds(sim, kBatch);

  // In-process reference for bit-identity, computed up front.
  ae::EnvService reference(ae::EnvServiceOptions{.threads = 4});
  const auto ref_results = reference.run_batch(batch_with_seeds(reference.add_simulator(), kBatch));

  // Fire the batch, then SIGKILL worker A once episodes are demonstrably in
  // flight — queries already bound to A's connection fault and re-dispatch.
  auto results_future = std::async(std::launch::async, [&] { return router.run_batch(batch); });
  const auto kill_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (router.backend_stats(sim).episodes < kBatch / 16 &&
         std::chrono::steady_clock::now() < kill_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  a.kill_hard();
  const auto results = results_future.get();

  // (a) every slot completed, bit-identical to the in-process run: episodes
  // are deterministic per seed, so the survivor reproduces exactly what the
  // killed worker would have returned.
  ASSERT_EQ(results.size(), ref_results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].latencies_ms, ref_results[i].latencies_ms) << "slot " << i;
    EXPECT_EQ(results[i].frames_completed, ref_results[i].frames_completed);
    EXPECT_EQ(results[i].ul_tb_total, ref_results[i].ul_tb_total);
    EXPECT_EQ(results[i].ul_tb_err, ref_results[i].ul_tb_err);
    EXPECT_EQ(results[i].dl_tb_total, ref_results[i].dl_tb_total);
    EXPECT_EQ(results[i].dl_tb_err, ref_results[i].dl_tb_err);
  }

  // (b) exact episode accounting: every query became exactly one episode
  // (re-dispatch re-runs inside the FailoverBackend, invisible to the
  // service's meters), and every episode that faulted over is counted.
  const auto stats = router.backend_stats(sim);
  EXPECT_EQ(stats.queries, kBatch);
  EXPECT_EQ(stats.episodes, kBatch);
  const auto farm_view = router.stats().farm;
  EXPECT_GE(farm_view.episodes_redispatched, 1u) << "the kill landed mid-batch";
  EXPECT_LE(farm_view.episodes_redispatched, kBatch);
  EXPECT_EQ(farm_view.workers_joined, 2u);

  // (c) the client-side memo holds every episode under the STABLE global id:
  // a full revisit is pure cache hits, no new episodes — worker loss did not
  // orphan a single entry.
  const auto replay = router.run_batch(batch);
  for (std::size_t i = 0; i < replay.size(); ++i) {
    EXPECT_EQ(replay[i].latencies_ms, ref_results[i].latencies_ms) << "slot " << i;
  }
  const auto after = router.backend_stats(sim);
  EXPECT_EQ(after.episodes, kBatch);
  EXPECT_EQ(after.cache_hits, kBatch);

  // (d) the heartbeat sweep confirms the death: suspect after one miss, dead
  // after two, and the farm view says one worker lost, one still serving.
  controller.poll_once();
  controller.poll_once();
  EXPECT_EQ(controller.worker_state(wa), ae::WorkerState::kDead);
  EXPECT_EQ(controller.worker_state(wb), ae::WorkerState::kServing);
  const auto final_view = router.stats().farm;
  EXPECT_EQ(final_view.workers_lost, 1u);
  EXPECT_EQ(final_view.workers_serving, 1u);
}

TEST(FarmFailover, DrainMigratesWorkerMemoAcrossProcesses) {
  OwnedWorker a;
  OwnedWorker b;
  if (!a.start(0) || !b.start(1)) {
    GTEST_SKIP() << "set ATLAS_WORKER_BIN to run the farm failover test";
  }

  ae::ShardRouter router(2, ae::EnvServiceOptions{.threads = 2});
  ae::FarmController controller(router);
  const auto wa = controller.add_worker(control_for(a.port()));
  controller.add_worker(control_for(b.port()));
  const ae::BackendId sim = controller.worker_backends(wa).at(0);

  // Warm A's worker-side memo. With B admitted later, round-robin spreads
  // the batch, but every episode that LANDED on A is memoized there.
  const auto batch = batch_with_seeds(sim, 24);
  (void)router.run_batch(batch);

  controller.drain_worker(wa);
  const auto view = router.stats().farm;
  EXPECT_EQ(view.workers_drained, 1u);
  EXPECT_EQ(controller.worker_state(wa), ae::WorkerState::kDead);
  // A executed at least one episode, so at least one entry crossed over.
  EXPECT_GE(view.backends_migrated, 1u);
  EXPECT_GE(view.memo_entries_migrated, 1u);

  // The farm still serves the same address space bit-identically.
  const auto replay = router.run_batch(batch);
  ae::EnvService reference(ae::EnvServiceOptions{.threads = 2});
  const auto ref_results = reference.run_batch(batch_with_seeds(reference.add_simulator(), 24));
  for (std::size_t i = 0; i < replay.size(); ++i) {
    EXPECT_EQ(replay[i].latencies_ms, ref_results[i].latencies_ms) << "slot " << i;
  }
}
