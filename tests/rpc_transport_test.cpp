#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <latch>
#include <memory>
#include <thread>
#include <vector>

#include "env/env_service.hpp"
#include "env/seed_plan.hpp"
#include "env/shard_router.hpp"
#include "rpc/codec.hpp"
#include "rpc/remote_backend.hpp"
#include "rpc/server.hpp"
#include "rpc/transport.hpp"

namespace ae = atlas::env;
namespace ar = atlas::rpc;

namespace {

ae::EnvQuery query(ae::BackendId backend, std::uint64_t seed) {
  ae::EnvQuery q;
  q.backend = backend;
  q.workload.duration_ms = 3000.0;
  q.workload.seed = seed;
  return q;
}

/// A worker (EnvService + EpisodeRpcServer) whose RemoteBackends connect via
/// in-process loopback channels: the full RPC path — codec, framing,
/// multiplexing, server dispatch — without sockets.
struct LoopbackWorker {
  explicit LoopbackWorker(std::size_t threads = 2)
      : service(ae::EnvServiceOptions{.threads = threads}), server(service) {
    sim = service.add_simulator();
  }

  ~LoopbackWorker() {
    disconnect_all();
    for (auto& t : serve_threads) t.join();
    server.stop();
  }

  /// transport_factory for RemoteBackendOptions: each (re)connect builds a
  /// fresh loopback pair whose far end is served by a dedicated thread.
  std::function<std::unique_ptr<ar::Transport>()> factory() {
    return [this] {
      auto [client_end, server_end] = ar::make_loopback_pair();
      std::shared_ptr<ar::Transport> remote{std::move(server_end)};
      {
        std::scoped_lock lock(mutex);
        server_ends.push_back(remote);
        serve_threads.emplace_back([this, remote] { server.serve(*remote); });
      }
      return std::move(client_end);
    };
  }

  /// Close every server-side endpoint (simulates the worker dying).
  void disconnect_all() {
    std::scoped_lock lock(mutex);
    for (auto& t : server_ends) t->close();
  }

  ae::EnvService service;
  ar::EpisodeRpcServer server;
  ae::BackendId sim = 0;
  std::mutex mutex;
  std::vector<std::shared_ptr<ar::Transport>> server_ends;
  std::vector<std::thread> serve_threads;
};

}  // namespace

TEST(RpcLoopback, RemoteEpisodeMatchesLocalBitIdentically) {
  LoopbackWorker worker;

  ae::EnvService client(ae::EnvServiceOptions{.threads = 2});
  ar::RemoteBackendOptions options;
  options.name = "loopback-sim";
  options.transport_factory = worker.factory();
  const auto remote = client.register_backend(std::make_shared<ar::RemoteBackend>(options));

  ae::Simulator direct;
  const auto got = client.run(query(remote, 42));
  const auto want = direct.run(ae::SliceConfig{}, query(remote, 42).workload);
  EXPECT_EQ(got.latencies_ms, want.latencies_ms);
  EXPECT_EQ(got.frames_completed, want.frames_completed);
  EXPECT_EQ(got.ul_tb_total, want.ul_tb_total);
  EXPECT_EQ(got.dl_tb_total, want.dl_tb_total);

  const auto stats = client.backend_stats(remote);
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_EQ(stats.episodes, 1u);
  EXPECT_EQ(stats.rpc_retries, 0u);
  EXPECT_EQ(stats.rpc_failures, 0u);
  EXPECT_DOUBLE_EQ(stats.cost_hint, options.cost_hint);
}

TEST(RpcLoopback, RttHistogramAndWorkerStatsScrape) {
  LoopbackWorker worker;

  ae::EnvService client(ae::EnvServiceOptions{.threads = 2});
  ar::RemoteBackendOptions options;
  options.transport_factory = worker.factory();
  auto backend = std::make_shared<ar::RemoteBackend>(options);
  const auto remote = client.register_backend(backend);

  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    (void)client.run(query(remote, seed));
  }

  // Client side: every successful RPC landed in the round-trip histogram,
  // and the histogram rides along in BackendStats.
  const ae::BackendStats stats = client.backend_stats(remote);
  EXPECT_EQ(stats.rpc_rtt_ns.count(), 4u);
  EXPECT_GT(stats.rpc_rtt_ns.quantile(0.5), 0u);

  // Worker side: the wire-v3 stats scrape reports the worker's OWN metering —
  // per-backend counters plus the server's service-time histogram.
  const ae::EnvServiceStats scraped = backend->fetch_worker_stats();
  ASSERT_EQ(scraped.backends.size(), 1u);
  EXPECT_EQ(scraped.backends[0].queries, 4u);
  EXPECT_EQ(scraped.backends[0].episodes, 4u);
  EXPECT_EQ(scraped.rpc_service_ns.count(), 4u);
  EXPECT_EQ(scraped.query_latency_ns.count(), 4u);
  EXPECT_EQ(scraped.total_queries(), 4u);

  // reset_stats clears the backend-owned histogram with the counters.
  client.reset_stats();
  EXPECT_EQ(client.backend_stats(remote).rpc_rtt_ns.count(), 0u);
}

TEST(RpcLoopback, SingleFlightCoalescesConcurrentRemoteQueries) {
  // The memoization/single-flight invariants must hold with an RPC in the
  // middle: N racing threads on one key -> ONE remote episode, exact
  // hit/miss accounting on the client, one execution on the worker.
  constexpr std::size_t kThreads = 8;
  LoopbackWorker worker;

  ae::EnvService client(ae::EnvServiceOptions{.threads = 2});
  ar::RemoteBackendOptions options;
  options.transport_factory = worker.factory();
  const auto remote = client.register_backend(std::make_shared<ar::RemoteBackend>(options));

  std::latch start(kThreads);
  std::vector<std::thread> threads;
  std::vector<ae::EpisodeResult> results(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      results[t] = client.run(query(remote, 7));
    });
  }
  for (auto& th : threads) th.join();

  const auto stats = client.backend_stats(remote);
  EXPECT_EQ(stats.queries, kThreads);
  EXPECT_EQ(stats.episodes, 1u) << "racing remote queries must coalesce onto one RPC";
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, kThreads - 1);
  for (const auto& r : results) EXPECT_EQ(r.latencies_ms, results[0].latencies_ms);

  // The worker executed exactly one episode too.
  EXPECT_EQ(worker.service.backend_stats(worker.sim).episodes, 1u);
}

TEST(RpcLoopback, CrnCoalescedQueriesExecuteOneRemoteEpisode) {
  // CRN-planned duplicates racing against a RemoteBackend must behave like
  // local ones: single-flight collapses them onto EXACTLY one remote episode,
  // and every coalesced/memoized duplicate is attributed as a crn hit. The
  // rpc_* counters ride the same BackendStats snapshot, so both families
  // survive the wire round-trip together.
  constexpr std::size_t kThreads = 6;
  LoopbackWorker worker;

  ae::EnvService client(ae::EnvServiceOptions{.threads = 2});
  ar::RemoteBackendOptions options;
  options.transport_factory = worker.factory();
  const auto remote = client.register_backend(std::make_shared<ar::RemoteBackend>(options));

  // One CRN plan, replicates=1: every iteration re-draws the same seed.
  ae::SeedPlanOptions plan_options;
  plan_options.policy = ae::SeedPolicy::kCrn;
  plan_options.replicates = 1;
  const ae::SeedStream seeds =
      ae::SeedPlan(21, plan_options).stream(ae::SeedDomain::kStage2Query, 1);

  auto crn_query = [&](std::uint64_t iteration) {
    ae::EnvQuery q = query(remote, 0);
    seeds.apply(q, iteration, 0);
    EXPECT_TRUE(q.crn);
    return q;
  };

  std::latch start(kThreads);
  std::vector<std::thread> threads;
  std::vector<ae::EpisodeResult> results(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      results[t] = client.run(crn_query(/*iteration=*/t));  // same seed every iter
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& r : results) EXPECT_EQ(r.latencies_ms, results[0].latencies_ms);

  const auto stats = client.backend_stats(remote);
  EXPECT_EQ(stats.queries, kThreads);
  EXPECT_EQ(stats.episodes, 1u) << "CRN duplicates must coalesce onto one RPC";
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, kThreads - 1);
  EXPECT_EQ(stats.crn_hits, kThreads - 1)
      << "every coalesced CRN duplicate counts as cross-iteration reuse";
  EXPECT_EQ(stats.rpc_retries, 0u);
  EXPECT_EQ(stats.rpc_failures, 0u);
  EXPECT_EQ(worker.service.backend_stats(worker.sim).episodes, 1u);

  // The crn TAG itself must cross the wire: a second client sending the same
  // CRN query makes the WORKER-side cache serve it, and the worker attributes
  // the hit as CRN reuse — provable only if the flag survived encoding.
  ar::RemoteBackendOptions second;
  second.transport_factory = worker.factory();
  ar::RemoteBackend direct(second);
  const auto replay = direct.execute(crn_query(/*iteration=*/99));
  EXPECT_EQ(replay.latencies_ms, results[0].latencies_ms);
  const auto worker_stats = worker.service.backend_stats(worker.sim);
  EXPECT_EQ(worker_stats.episodes, 1u);
  EXPECT_EQ(worker_stats.crn_hits, 1u) << "the crn tag must survive the codec round-trip";

  // reset_stats clears the crn accounting alongside the rpc counters.
  client.reset_stats();
  const auto cleared = client.backend_stats(remote);
  EXPECT_EQ(cleared.crn_hits, 0u);
  EXPECT_EQ(cleared.rpc_retries, 0u);
}

TEST(RpcLoopback, WorkerErrorsSurfaceAsRpcErrorWithoutRetry) {
  LoopbackWorker worker;

  ae::EnvService client(ae::EnvServiceOptions{.threads = 1});
  ar::RemoteBackendOptions options;
  options.remote_backend = 99;  // not registered on the worker
  options.transport_factory = worker.factory();
  auto backend = std::make_shared<ar::RemoteBackend>(options);
  const auto remote = client.register_backend(backend);

  EXPECT_THROW((void)client.run(query(remote, 1)), ar::RpcError);
  EXPECT_EQ(backend->rpc_retries(), 0u) << "semantic errors are deterministic: no retry";
  EXPECT_EQ(backend->rpc_failures(), 1u);
  EXPECT_EQ(client.backend_stats(remote).rpc_failures, 1u) << "failures surface in stats";

  client.reset_stats();
  EXPECT_EQ(client.backend_stats(remote).rpc_failures, 0u)
      << "reset_stats must clear backend-owned counters too";
}

TEST(RpcLoopback, TimeoutsRetryThenFailWithAccounting) {
  // A black-hole transport: requests go nowhere, so every attempt times out.
  auto black_hole = [] {
    auto [client_end, server_end] = ar::make_loopback_pair();
    // Keep the far end alive but never serve it (leak into a shared_ptr the
    // lambda owns) — the channel stays open, the request just never answers.
    static std::vector<std::shared_ptr<ar::Transport>> graveyard;
    graveyard.emplace_back(std::move(server_end));
    return std::move(client_end);
  };

  ar::RemoteBackendOptions options;
  options.timeout_ms = 50.0;
  options.max_retries = 2;
  options.transport_factory = black_hole;
  ar::RemoteBackend backend(options);

  EXPECT_THROW((void)backend.execute(query(0, 1)), ar::RpcError);
  EXPECT_EQ(backend.rpc_retries(), 2u);  // attempts 2 and 3
  EXPECT_EQ(backend.rpc_failures(), 1u);

  // A METERED backend must be at-most-once: the sent query may already be
  // running a real interaction on the worker, so a timeout fails immediately
  // instead of re-running it.
  options.kind = ae::BackendKind::kOnline;
  ar::RemoteBackend metered(options);
  EXPECT_THROW((void)metered.execute(query(0, 2)), ar::RpcError);
  EXPECT_EQ(metered.rpc_retries(), 0u) << "no retry once a metered query is on the wire";
  EXPECT_EQ(metered.rpc_failures(), 1u);
}

TEST(RpcLoopback, DeadlineExpiringDuringReconnectBackoffIsATypedRejection) {
  // Regression: the wire encodes deadline_ms = 0 as "no deadline", and the
  // remaining budget used to be computed BEFORE connection() — which sleeps
  // through reconnect backoff. A deadline that expired during that sleep was
  // then encoded as a stale positive budget (or, at exactly zero, as the
  // unlimited sentinel) and the worker served a full episode for a caller
  // whose budget was already gone. The budget must be re-measured after
  // connection() returns and an exhausted one rejected as a typed
  // kDeadlineExceeded — never silently served.
  LoopbackWorker worker;

  // First connect attempt fails (arming the backoff), later ones serve.
  std::atomic<int> connect_calls{0};
  auto live = worker.factory();
  ar::RemoteBackendOptions options;
  options.max_retries = 2;
  options.backoff_base_ms = 200.0;  // jitter >= 0.5 => the retry sleeps >= 100 ms
  options.transport_factory = [&]() -> std::unique_ptr<ar::Transport> {
    if (connect_calls.fetch_add(1) == 0) {
      throw ar::TransportError("injected: first connect refused");
    }
    return live();
  };
  ar::RemoteBackend backend(options);

  ae::EnvQuery q = query(0, 123);
  q.deadline_ms = 60.0;  // alive at the retry's start, dead after the backoff
  const auto result = backend.execute(q);
  ASSERT_TRUE(result.is_rejected());
  EXPECT_EQ(result.rejected, ae::RejectReason::kDeadlineExceeded);
  EXPECT_TRUE(result.latencies_ms.empty()) << "no episode may be served past the deadline";
  EXPECT_EQ(backend.rpc_failures(), 0u) << "an exhausted budget is typed, not a fault";
  EXPECT_GE(connect_calls.load(), 2) << "the retry must actually have reconnected";

  // Control: the same backend still serves once a fresh budget is granted —
  // the rejection above came from the expired deadline, not a broken path.
  ae::EnvQuery fresh = query(0, 124);
  fresh.deadline_ms = 60000.0;
  EXPECT_FALSE(backend.execute(fresh).is_rejected());
}

TEST(RpcLoopback, ReconnectsAfterConnectionLoss) {
  LoopbackWorker worker;

  ar::RemoteBackendOptions options;
  options.max_retries = 1;
  options.transport_factory = worker.factory();
  ar::RemoteBackend backend(options);

  // Warm the connection, then kill the server side of every channel.
  (void)backend.execute(query(0, 11));
  worker.disconnect_all();
  for (auto& t : worker.serve_threads) t.join();
  worker.serve_threads.clear();

  // Depending on who notices first, either the dead connection is replaced
  // up front (no retry) or the first attempt faults and the retry opens a
  // fresh channel — both must converge to a served episode, not a failure.
  const auto result = backend.execute(query(0, 12));
  ae::Simulator direct;
  EXPECT_EQ(result.latencies_ms, direct.run(ae::SliceConfig{}, query(0, 12).workload).latencies_ms);
  EXPECT_EQ(backend.rpc_failures(), 0u);
}

TEST(RpcTcp, FramesCrossRealSockets) {
  ae::EnvService worker_service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = worker_service.add_simulator();
  (void)sim;
  ar::EpisodeRpcServer server(worker_service, ar::RpcServerOptions{.port = 0});
  ASSERT_GT(server.port(), 0);

  ar::RemoteBackendOptions options;
  options.host = "127.0.0.1";
  options.port = server.port();
  ar::RemoteBackend backend(options);

  ae::Simulator direct;
  const auto result = backend.execute(query(0, 99));
  EXPECT_EQ(result.latencies_ms, direct.run(ae::SliceConfig{}, query(0, 99).workload).latencies_ms);
  server.stop();
}

TEST(RpcTcp, ImplausibleLengthPrefixPoisonsTheStream) {
  // Hand-feed a garbage length prefix to a raw client socket: the transport
  // must reject it as corruption instead of allocating 4 GB.
  ar::TcpListener listener(0);

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(listener.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  auto accepted = listener.accept();
  ASSERT_NE(accepted, nullptr);

  const std::uint8_t bogus[4] = {0xFF, 0xFF, 0xFF, 0xFF};  // 4 GB "frame"
  ASSERT_EQ(::send(fd, bogus, sizeof(bogus), 0), 4);

  std::vector<std::uint8_t> frame;
  EXPECT_THROW((void)accepted->recv(frame), ar::TransportError);

  // A frame cut off mid-payload must also throw (not return a short frame).
  const std::uint8_t truncated[6] = {0x10, 0x00, 0x00, 0x00, 0xAA, 0xBB};  // claims 16 bytes
  ASSERT_EQ(::send(fd, truncated, sizeof(truncated), 0), 6);
  ::close(fd);
  EXPECT_THROW((void)accepted->recv(frame), ar::TransportError);
}

TEST(RpcShardRouter, MixesLocalAndRemoteShards) {
  // The tentpole end-state: one router, one BackendId space, a local
  // simulator next to a remote one — results bit-identical per seed.
  LoopbackWorker worker;

  ae::ShardRouter router(2, ae::EnvServiceOptions{.threads = 1});
  const auto local = router.add_simulator(ae::SimParams::defaults(), "local-sim");
  ar::RemoteBackendOptions options;
  options.name = "remote-sim";
  options.transport_factory = worker.factory();
  const auto remote = router.register_backend(std::make_shared<ar::RemoteBackend>(options));

  std::vector<ae::EnvQuery> batch;
  for (std::uint64_t i = 0; i < 8; ++i) {
    batch.push_back(query(i % 2 == 0 ? local : remote, 300 + i / 2));
  }
  const auto results = router.run_batch(batch);
  ASSERT_EQ(results.size(), batch.size());
  // Pairs (2i, 2i+1) share a seed across the local/remote split.
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    EXPECT_EQ(results[i].latencies_ms, results[i + 1].latencies_ms) << "pair " << i / 2;
  }

  const auto stats = router.stats();
  ASSERT_EQ(stats.backends.size(), 2u);
  EXPECT_EQ(stats.backends[0].name, "local-sim");
  EXPECT_EQ(stats.backends[1].name, "remote-sim");
  EXPECT_EQ(stats.backends[0].queries, 4u);
  EXPECT_EQ(stats.backends[1].queries, 4u);
  EXPECT_EQ(stats.backends[1].rpc_failures, 0u);
}

// ---- wire v4: farm control plane over the full RPC path ---------------------

TEST(RpcLoopback, ControlPlaneHelloHeartbeatAndMemoExport) {
  LoopbackWorker worker;
  worker.server.set_backend_digest(0, 0xFEEDu);

  ar::RemoteBackendOptions options;
  options.transport_factory = worker.factory();
  ar::RemoteBackend backend(options);

  // hello(): capacity + the registered simulator with its digest.
  const ae::WorkerAnnounce announce = backend.hello();
  EXPECT_EQ(announce.wire_version, ar::kWireVersion);
  ASSERT_EQ(announce.backends.size(), 1u);
  EXPECT_EQ(announce.backends[0].name, "simulator");
  EXPECT_EQ(announce.backends[0].kind, ae::BackendKind::kOffline);
  EXPECT_TRUE(announce.backends[0].accepts_sim_params);
  EXPECT_EQ(announce.backends[0].params_digest, 0xFEEDu);

  // heartbeat(): gauges move with executed episodes.
  EXPECT_EQ(backend.heartbeat().episodes, 0u);
  (void)backend.execute(query(0, 21));
  const ae::WorkerHealth health = backend.heartbeat();
  EXPECT_EQ(health.episodes, 1u);
  EXPECT_EQ(health.cache_entries, 1u);

  // export_memo(): the memoized episode comes back with its key prefixed by
  // the worker-local backend id.
  const auto memo = backend.export_memo(0);
  ASSERT_EQ(memo.size(), 1u);
  ASSERT_FALSE(memo[0].key.empty());
  EXPECT_EQ(memo[0].key[0], 0.0);
  ae::Simulator direct;
  EXPECT_EQ(memo[0].result.latencies_ms,
            direct.run(ae::SliceConfig{}, query(0, 21).workload).latencies_ms);

  // Liveness reflects the successful round-trips.
  const ar::RemoteLiveness live = backend.liveness();
  EXPECT_TRUE(live.connected);
  EXPECT_EQ(live.consecutive_timeouts, 0u);
  EXPECT_GE(live.since_last_success_ms, 0.0);
}

TEST(RpcLoopback, MemoMigrationSkipsRecomputationOnTheTargetWorker) {
  // The acceptance property behind drain: entries exported from worker A and
  // installed into worker B serve B's future queries as CACHE HITS — the
  // episode is never recomputed.
  LoopbackWorker a;
  LoopbackWorker b;

  ar::RemoteBackendOptions options_a;
  options_a.transport_factory = a.factory();
  ar::RemoteBackend backend_a(options_a);
  ar::RemoteBackendOptions options_b;
  options_b.transport_factory = b.factory();
  ar::RemoteBackend backend_b(options_b);

  (void)backend_a.execute(query(0, 33));
  (void)backend_a.execute(query(0, 34));
  const auto memo = backend_a.export_memo(0);
  ASSERT_EQ(memo.size(), 2u);

  ae::BackendInstallRequest request;
  request.target_backend = 0;  // memo-merge into b's existing simulator
  request.memo = memo;
  const ae::InstallResult installed = backend_b.install_backend(request);
  EXPECT_EQ(installed.backend, 0u);
  EXPECT_EQ(installed.imported, 2u);

  const auto result = backend_b.execute(query(0, 33));
  ae::Simulator direct;
  EXPECT_EQ(result.latencies_ms, direct.run(ae::SliceConfig{}, query(0, 33).workload).latencies_ms);
  const auto stats = b.service.backend_stats(0);
  EXPECT_EQ(stats.cache_hits, 1u) << "the migrated entry must serve the revisit";
  EXPECT_EQ(stats.episodes, 0u) << "no recomputation on the target worker";
}

TEST(RpcLoopback, RuntimeInstallRegistersAFreshBackend) {
  LoopbackWorker worker;

  ar::RemoteBackendOptions options;
  options.transport_factory = worker.factory();
  ar::RemoteBackend control(options);

  ae::BackendInstallRequest request;
  request.target_backend = -1;
  request.descriptor.name = "sim-pushed";
  request.descriptor.kind = ae::BackendKind::kOffline;
  request.descriptor.accepts_sim_params = true;
  request.descriptor.params_digest = 0xD1Du;
  request.sim_params = ae::SimParams::defaults();
  const ae::InstallResult installed = control.install_backend(request);
  EXPECT_EQ(installed.backend, 1u) << "first runtime install lands after the boot simulator";
  EXPECT_EQ(worker.server.installs_total(), 1u);

  // The pushed backend answers episodes under its new worker-local id, and
  // the next announce advertises it with the digest the install carried.
  ar::RemoteBackendOptions pushed_options;
  pushed_options.transport_factory = worker.factory();
  pushed_options.remote_backend = installed.backend;
  ar::RemoteBackend pushed(pushed_options);
  ae::Simulator direct;
  const auto result = pushed.execute(query(installed.backend, 55));
  EXPECT_EQ(result.latencies_ms, direct.run(ae::SliceConfig{}, query(0, 55).workload).latencies_ms);
  const ae::WorkerAnnounce announce = control.hello();
  ASSERT_EQ(announce.backends.size(), 2u);
  EXPECT_EQ(announce.backends[1].name, "sim-pushed");
  EXPECT_EQ(announce.backends[1].params_digest, 0xD1Du);
}

TEST(RpcLoopback, CancelledRequestIsDroppedWithoutAResponse) {
  // Drive the server with a raw loopback endpoint: a kCancel for a request
  // id followed by the kQuery with that id must produce NO response (the
  // episode is skipped), while other ids keep flowing.
  LoopbackWorker worker;
  auto [client_end, server_end] = ar::make_loopback_pair();
  std::shared_ptr<ar::Transport> remote{std::move(server_end)};
  std::thread serve([&worker, remote] { worker.server.serve(*remote); });

  client_end->send(ar::encode_cancel(7));
  client_end->send(ar::encode_query(7, query(0, 70)));
  client_end->send(ar::encode_query(8, query(0, 80)));

  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(client_end->recv(frame));
  ar::WireReader reader(frame);
  const auto header = ar::decode_header(reader);
  EXPECT_EQ(header.request_id, 8u) << "request 7 was cancelled before execution";
  EXPECT_EQ(header.type, ar::MsgType::kResult);

  client_end->close();
  serve.join();
  EXPECT_EQ(worker.server.cancelled_total(), 1u);
  EXPECT_EQ(worker.service.backend_stats(0).episodes, 1u) << "only request 8 executed";
}
