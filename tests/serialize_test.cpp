#include <gtest/gtest.h>

#include <sstream>

#include "math/rng.hpp"
#include "nn/optim.hpp"
#include "nn/serialize.hpp"

namespace am = atlas::math;
namespace an = atlas::nn;

namespace {

an::Mlp trained_mlp(std::uint64_t seed) {
  am::Rng rng(seed);
  an::Mlp mlp({3, 16, 8, 1}, rng);
  am::Matrix x(64, 3);
  am::Vec y(64);
  for (std::size_t i = 0; i < 64; ++i) {
    for (std::size_t j = 0; j < 3; ++j) x(i, j) = rng.uniform(-1, 1);
    y[i] = x(i, 0) * 0.5 - x(i, 2);
  }
  an::Adam opt(1e-2);
  for (int e = 0; e < 40; ++e) mlp.train_epoch_mse(x, y, opt, 16, rng);
  return mlp;
}

an::Bnn trained_bnn(std::uint64_t seed) {
  am::Rng rng(seed);
  an::BnnConfig cfg;
  cfg.sizes = {2, 12, 1};
  an::Bnn bnn(cfg, rng);
  am::Matrix x(32, 2);
  am::Vec y(32);
  for (std::size_t i = 0; i < 32; ++i) {
    x(i, 0) = rng.uniform(0, 1);
    x(i, 1) = rng.uniform(0, 1);
    y[i] = x(i, 0);
  }
  an::Adadelta opt(1.0);
  bnn.train(x, y, 30, 16, opt, nullptr, rng);
  return bnn;
}

}  // namespace

TEST(SerializeMlp, RoundTripIsBitExact) {
  const an::Mlp original = trained_mlp(5);
  std::stringstream buffer;
  an::save_mlp(original, buffer);
  const an::Mlp restored = an::load_mlp(buffer);
  am::Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    const am::Vec x{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    ASSERT_DOUBLE_EQ(restored.predict_scalar(x), original.predict_scalar(x));
  }
}

TEST(SerializeMlp, PreservesArchitecture) {
  const an::Mlp original = trained_mlp(6);
  std::stringstream buffer;
  an::save_mlp(original, buffer);
  const an::Mlp restored = an::load_mlp(buffer);
  EXPECT_EQ(restored.layer_count(), original.layer_count());
  EXPECT_EQ(restored.input_dim(), 3u);
  EXPECT_EQ(restored.output_dim(), 1u);
}

TEST(SerializeMlp, RejectsGarbage) {
  std::stringstream buffer("not-a-model 1\n");
  EXPECT_THROW(an::load_mlp(buffer), std::runtime_error);
  std::stringstream truncated("atlas-mlp 1\n2\n4 3\n0.1 0.2\n");
  EXPECT_THROW(an::load_mlp(truncated), std::runtime_error);
}

TEST(SerializeBnn, PosteriorMeanRoundTrips) {
  const an::Bnn original = trained_bnn(7);
  std::stringstream buffer;
  original.save(buffer);
  const an::Bnn restored = an::Bnn::load(buffer);
  am::Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const am::Vec x{rng.uniform(0, 1), rng.uniform(0, 1)};
    ASSERT_DOUBLE_EQ(restored.predict_at_mean(x), original.predict_at_mean(x));
  }
  // Variational widths round-trip too (same analytic KL).
  EXPECT_DOUBLE_EQ(restored.kl_to_prior(), original.kl_to_prior());
}

TEST(SerializeBnn, ConfigRoundTrips) {
  am::Rng rng(13);
  an::BnnConfig cfg;
  cfg.sizes = {4, 8, 1};
  cfg.prior = an::BnnPrior::kScaleMixtureMc;
  cfg.noise_sigma = 0.123;
  cfg.kl_scale = 0.456;
  an::Bnn original(cfg, rng);
  std::stringstream buffer;
  original.save(buffer);
  const an::Bnn restored = an::Bnn::load(buffer);
  EXPECT_EQ(restored.config().prior, an::BnnPrior::kScaleMixtureMc);
  EXPECT_DOUBLE_EQ(restored.config().noise_sigma, 0.123);
  EXPECT_DOUBLE_EQ(restored.config().kl_scale, 0.456);
  EXPECT_EQ(restored.input_dim(), 4u);
}

TEST(SerializeBnn, ThompsonSamplingStillWorksAfterLoad) {
  const an::Bnn original = trained_bnn(17);
  std::stringstream buffer;
  original.save(buffer);
  an::Bnn restored = an::Bnn::load(buffer);
  am::Rng rng(19);
  const auto a = restored.thompson(rng);
  const auto b = restored.thompson(rng);
  EXPECT_NE(a.predict({0.5, 0.5}), b.predict({0.5, 0.5}));
}

TEST(SerializeFiles, FileRoundTripAndMissingPath) {
  const an::Mlp original = trained_mlp(21);
  const std::string path = "/tmp/atlas_serialize_test_model.txt";
  an::save_mlp_file(original, path);
  const an::Mlp restored = an::load_mlp_file(path);
  EXPECT_DOUBLE_EQ(restored.predict_scalar({0.1, 0.2, 0.3}),
                   original.predict_scalar({0.1, 0.2, 0.3}));
  EXPECT_THROW(an::load_mlp_file("/nonexistent/dir/model.txt"), std::runtime_error);
}
