#include <gtest/gtest.h>

#include "env/env_service.hpp"
#include "atlas/offline_trainer.hpp"
#include "atlas/online_learner.hpp"
#include "atlas/oracle.hpp"

namespace ac = atlas::core;
namespace ae = atlas::env;

namespace {

/// Shared fixture: one quick offline policy reused by the online tests.
class Stage3Test : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    service_ = new ae::EnvService(ae::EnvServiceOptions{.threads = 2});
    sim_ = service_->add_simulator(ae::oracle_calibration());
    real_ = service_->add_real_network();
    ac::OfflineOptions opts;
    opts.iterations = 30;
    opts.init_iterations = 10;
    opts.parallel = 4;
    opts.candidates = 400;
    opts.workload.duration_ms = 6000.0;
    opts.bnn.sizes = {8, 32, 32, 1};
    opts.train_epochs = 4;
    opts.seed = 11;
    ac::OfflineTrainer trainer(*service_, sim_, opts);
    offline_ = new ac::OfflineResult(trainer.train());
  }
  static void TearDownTestSuite() {
    delete offline_;
    delete service_;
  }

  static ac::OnlineOptions fast_online() {
    ac::OnlineOptions opts;
    opts.iterations = 10;
    opts.inner_updates = 4;
    opts.candidates = 300;
    opts.workload.duration_ms = 6000.0;
    opts.seed = 13;
    return opts;
  }

  static ae::EnvService* service_;
  static ae::BackendId sim_;
  static ae::BackendId real_;
  static ac::OfflineResult* offline_;
};

ae::EnvService* Stage3Test::service_ = nullptr;
ae::BackendId Stage3Test::sim_ = 0;
ae::BackendId Stage3Test::real_ = 0;
ac::OfflineResult* Stage3Test::offline_ = nullptr;

}  // namespace

TEST_F(Stage3Test, RunsAndRecordsValidSteps) {
  ac::OnlineLearner learner(&offline_->policy, *service_, sim_, real_, fast_online());
  const auto result = learner.learn();
  ASSERT_EQ(result.history.size(), 10u);
  for (const auto& step : result.history) {
    ASSERT_GE(step.qoe_real, 0.0);
    ASSERT_LE(step.qoe_real, 1.0);
    ASSERT_GE(step.usage, 0.0);
    ASSERT_LE(step.usage, 1.0);
    ASSERT_GE(step.lambda, 0.0);
    ASSERT_GE(step.beta, 0.0);
    ASSERT_LE(step.beta, 10.0);  // clipped at B
  }
  EXPECT_GE(result.final_lambda, 0.0);
}

TEST_F(Stage3Test, FirstActionIsOfflineOptimum) {
  ac::OnlineLearner learner(&offline_->policy, *service_, sim_, real_, fast_online());
  const auto result = learner.learn();
  const auto expected = offline_->policy.best_config.to_vec();
  const auto got = result.history.front().config.to_vec();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_DOUBLE_EQ(got[i], expected[i]);
  }
}

TEST_F(Stage3Test, AblationsRun) {
  for (auto model : {ac::OnlineModel::kBnnResidual, ac::OnlineModel::kBnnContinued}) {
    auto opts = fast_online();
    opts.iterations = 4;
    opts.model = model;
    ac::OnlineLearner learner(&offline_->policy, *service_, sim_, real_, opts);
    EXPECT_EQ(learner.learn().history.size(), 4u);
  }
  // kGpWhole with no offline policy ("no stage 2").
  auto opts = fast_online();
  opts.iterations = 4;
  opts.model = ac::OnlineModel::kGpWhole;
  ac::OnlineLearner learner(nullptr, *service_, sim_, real_, opts);
  EXPECT_EQ(learner.learn().history.size(), 4u);
}

TEST_F(Stage3Test, RequiresPolicyUnlessGpWhole) {
  EXPECT_THROW(ac::OnlineLearner(nullptr, *service_, sim_, real_, fast_online()),
               std::invalid_argument);
}

TEST_F(Stage3Test, AcquisitionAblationsRun) {
  for (auto acq : {atlas::bo::AcquisitionKind::kEi, atlas::bo::AcquisitionKind::kPi,
                   atlas::bo::AcquisitionKind::kGpUcb}) {
    auto opts = fast_online();
    opts.iterations = 4;
    opts.acquisition = acq;
    ac::OnlineLearner learner(&offline_->policy, *service_, sim_, real_, opts);
    EXPECT_EQ(learner.learn().history.size(), 4u);
  }
}

TEST_F(Stage3Test, NoOfflineAccelerationStillLearns) {
  auto opts = fast_online();
  opts.offline_acceleration = false;
  ac::OnlineLearner learner(&offline_->policy, *service_, sim_, real_, opts);
  EXPECT_EQ(learner.learn().history.size(), opts.iterations);
}

TEST(Oracle, FindsFeasibleCheapConfig) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto real = service.add_real_network();
  atlas::app::Sla sla;
  ae::Workload wl;
  wl.duration_ms = 5000.0;
  const auto oracle = ac::find_optimal_config(service, real, sla, wl, 60, 3, 2);
  EXPECT_GE(oracle.qoe, sla.availability);
  EXPECT_LE(oracle.usage, ae::SliceConfig{}.resource_usage());
}

TEST(Oracle, RegretComputationMatchesDefinition) {
  ac::OracleOptimum oracle;
  oracle.usage = 0.2;
  oracle.qoe = 0.9;
  const std::vector<double> usage{0.5, 0.3, 0.2};
  const std::vector<double> qoe{0.6, 0.95, 0.9};
  const auto regret = ac::compute_regret(usage, qoe, oracle);
  // g_u = (0.3) + (0.1) + (0.0) = 0.4 cumulative.
  EXPECT_NEAR(regret.cumulative_usage.back(), 0.4, 1e-12);
  // g_p = 0.3 + 0 + 0 = 0.3.
  EXPECT_NEAR(regret.cumulative_qoe.back(), 0.3, 1e-12);
  EXPECT_NEAR(regret.avg_usage_regret, 0.4 / 3.0, 1e-12);
  EXPECT_NEAR(regret.avg_qoe_regret, 0.1, 1e-12);
  // Cumulative sequences are monotone for the QoE regret (max(...,0) terms).
  for (std::size_t i = 1; i < regret.cumulative_qoe.size(); ++i) {
    ASSERT_GE(regret.cumulative_qoe[i], regret.cumulative_qoe[i - 1]);
  }
}
