#include <gtest/gtest.h>

#include "env/env_service.hpp"
#include "atlas/calibrator.hpp"

namespace ac = atlas::core;
namespace ae = atlas::env;

namespace {

ac::CalibrationOptions fast_options() {
  ac::CalibrationOptions opts;
  opts.iterations = 24;
  opts.init_iterations = 8;
  opts.parallel = 4;
  opts.candidates = 300;
  opts.real_episodes = 1;
  opts.workload.duration_ms = 6000.0;
  opts.bnn.sizes = {7, 32, 32, 1};
  opts.bnn.noise_sigma = 0.1;
  opts.train_epochs = 4;
  opts.seed = 5;
  return opts;
}

}  // namespace

TEST(Stage1, ReducesWeightedDiscrepancy) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto real = service.add_real_network();
  ac::SimCalibrator calibrator(service, real, fast_options());
  const auto result = calibrator.calibrate();
  // Even a tiny budget must beat the spec-default simulator.
  EXPECT_LT(result.best_kl, result.original_kl);
  EXPECT_GT(result.original_kl, 0.3);
  EXPECT_FALSE(result.history.empty());
  EXPECT_EQ(result.avg_weighted_per_iter.size(), 24u);
}

TEST(Stage1, RespectsParameterBall) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto real = service.add_real_network();
  auto opts = fast_options();
  opts.ball_radius = 0.2;
  opts.iterations = 10;
  ac::SimCalibrator calibrator(service, real, opts);
  const auto result = calibrator.calibrate();
  const auto x_hat = ae::SimParams::defaults();
  for (const auto& step : result.history) {
    ASSERT_LE(step.params.distance_to(x_hat), 0.2 + 1e-9);
  }
}

TEST(Stage1, WeightedObjectiveConsistent) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto real = service.add_real_network();
  auto opts = fast_options();
  opts.iterations = 6;
  ac::SimCalibrator calibrator(service, real, opts);
  const auto result = calibrator.calibrate();
  for (const auto& step : result.history) {
    ASSERT_NEAR(step.weighted, step.kl + opts.alpha * step.distance, 1e-9);
    ASSERT_GE(step.kl, 0.0);
    ASSERT_GE(step.distance, 0.0);
  }
  EXPECT_NEAR(result.best_weighted,
              result.best_kl + opts.alpha * result.best_distance, 1e-9);
}

TEST(Stage1, GpSurrogateVariantRuns) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto real = service.add_real_network();
  auto opts = fast_options();
  opts.surrogate = ac::CalibratorSurrogate::kGpEi;
  opts.iterations = 16;
  opts.init_iterations = 8;
  ac::SimCalibrator calibrator(service, real, opts);
  const auto result = calibrator.calibrate();
  EXPECT_EQ(result.history.size(), 16u);  // sequential: one query per iteration
  EXPECT_LE(result.best_kl, result.original_kl);
}

TEST(Stage1, DiscrepancyOfIsDeterministicPerSeed) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto real = service.add_real_network();
  auto opts = fast_options();
  opts.iterations = 1;
  opts.init_iterations = 1;
  ac::SimCalibrator calibrator(service, real, opts);
  const double a = calibrator.discrepancy_of(ae::SimParams::defaults(), 99);
  const double b = calibrator.discrepancy_of(ae::SimParams::defaults(), 99);
  EXPECT_DOUBLE_EQ(a, b);
}
