#include <gtest/gtest.h>

#include "env/env_service.hpp"
#include "baselines/dlda.hpp"
#include "baselines/gp_baseline.hpp"
#include "baselines/virtual_edge.hpp"

namespace ab = atlas::baselines;
namespace ae = atlas::env;

TEST(GpBaselineOnline, ProducesFullTrace) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto real = service.add_real_network();
  ab::GpBaselineOptions opts;
  opts.iterations = 12;
  opts.init_samples = 5;
  opts.candidates = 300;
  opts.workload.duration_ms = 5000.0;
  ab::GpBaseline baseline(service, real, opts);
  const auto trace = baseline.learn();
  ASSERT_EQ(trace.usage.size(), 12u);
  ASSERT_EQ(trace.qoe.size(), 12u);
  for (std::size_t i = 0; i < trace.qoe.size(); ++i) {
    ASSERT_GE(trace.qoe[i], 0.0);
    ASSERT_LE(trace.qoe[i], 1.0);
    ASSERT_GE(trace.usage[i], 0.0);
    ASSERT_LE(trace.usage[i], 1.0);
  }
}

TEST(Dlda, GridDatasetSizeAndTeacherFit) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator();
  ab::DldaOptions opts;
  opts.grid_per_dim = 2;  // 2^6 = 64 episodes: CI-friendly
  opts.teacher_epochs = 150;
  opts.workload.duration_ms = 4000.0;
  ab::Dlda dlda(service, sim, opts);
  const double mse = dlda.train_offline();
  EXPECT_EQ(dlda.dataset_size(), 64u);
  EXPECT_LT(mse, 0.05);  // teacher fits its own grid
}

TEST(Dlda, SelectionPrefersPredictedFeasibleMinUsage) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator(ae::oracle_calibration());
  ab::DldaOptions opts;
  opts.grid_per_dim = 3;
  opts.select_samples = 1500;
  opts.workload.duration_ms = 4000.0;
  ab::Dlda dlda(service, sim, opts);
  dlda.train_offline();
  atlas::math::Rng rng(1);
  const auto config = dlda.select_offline(rng);
  // The selected configuration must be predicted feasible (or best effort),
  // and predicted-feasible picks must undercut the full configuration.
  const double predicted = dlda.predict_qoe(config);
  if (predicted >= opts.sla.availability) {
    EXPECT_LT(config.resource_usage(), ae::SliceConfig{}.resource_usage());
  }
}

TEST(Dlda, RequiresOfflineTrainingFirst) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator();
  ab::Dlda dlda(service, sim, ab::DldaOptions{});
  atlas::math::Rng rng(2);
  EXPECT_THROW(dlda.select_offline(rng), std::logic_error);
  EXPECT_THROW(dlda.predict_qoe(ae::SliceConfig{}), std::logic_error);
}

TEST(Dlda, OnlineTransferRuns) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator();
  const auto real = service.add_real_network();
  ab::DldaOptions opts;
  opts.grid_per_dim = 2;
  opts.teacher_epochs = 80;
  opts.online_iterations = 6;
  opts.select_samples = 500;
  opts.student_epochs_per_step = 10;
  opts.workload.duration_ms = 4000.0;
  ab::Dlda dlda(service, sim, opts);
  dlda.train_offline();
  const auto trace = dlda.learn_online(real);
  EXPECT_EQ(trace.usage.size(), 6u);
}

TEST(VirtualEdge, DescendsFromFullConfiguration) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto real = service.add_real_network();
  ab::VirtualEdgeOptions opts;
  opts.iterations = 12;
  opts.workload.duration_ms = 5000.0;
  ab::VirtualEdge ve(service, real, opts);
  const auto trace = ve.learn();
  ASSERT_EQ(trace.usage.size(), 12u);
  // Starts near the full configuration...
  EXPECT_NEAR(trace.usage.front(), ae::SliceConfig{}.resource_usage(), 0.08);
  // ...and the gradient steps reduce resource usage over the run.
  EXPECT_LT(trace.usage.back(), trace.usage.front());
}
