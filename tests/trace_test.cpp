#include <gtest/gtest.h>

#include "env/environment.hpp"
#include "env/trace.hpp"

namespace ae = atlas::env;

namespace {

ae::EpisodeResult traced_episode(const ae::NetworkEnvironment& net, int traffic = 1,
                                 std::uint64_t seed = 3) {
  ae::Workload wl;
  wl.traffic = traffic;
  wl.duration_ms = 10000.0;
  wl.collect_traces = true;
  wl.seed = seed;
  return net.run(ae::SliceConfig{}, wl);
}

}  // namespace

TEST(Trace, DisabledByDefault) {
  ae::Simulator sim;
  ae::Workload wl;
  wl.duration_ms = 3000.0;
  EXPECT_TRUE(sim.run(ae::SliceConfig{}, wl).traces.empty());
}

TEST(Trace, OneTracePerCompletedFrame) {
  ae::Simulator sim;
  const auto result = traced_episode(sim);
  EXPECT_EQ(result.traces.size(), result.frames_completed);
}

TEST(Trace, TimestampsAreMonotonePerFrame) {
  ae::RealNetwork real;
  const auto result = traced_episode(real);
  ASSERT_FALSE(result.traces.empty());
  for (const auto& t : result.traces) {
    ASSERT_LE(t.created_ms, t.sent_ms);
    ASSERT_LE(t.sent_ms, t.ul_done_ms);
    ASSERT_LE(t.ul_done_ms, t.edge_in_ms);
    ASSERT_LE(t.edge_in_ms, t.compute_start_ms);
    ASSERT_LT(t.compute_start_ms, t.compute_done_ms);
    ASSERT_LE(t.compute_done_ms, t.enb_dl_ms);
    ASSERT_LT(t.enb_dl_ms, t.completed_ms);
  }
}

TEST(Trace, ComponentsSumToTotal) {
  ae::Simulator sim;
  const auto result = traced_episode(sim);
  for (const auto& t : result.traces) {
    const double sum = t.loading() + t.uplink() + t.transport_ul() + t.queueing() +
                       t.compute() + t.downlink();
    ASSERT_NEAR(sum, t.total(), 1e-9);
  }
}

TEST(Trace, TotalsMatchReportedLatencies) {
  ae::Simulator sim;
  const auto result = traced_episode(sim);
  ASSERT_EQ(result.traces.size(), result.latencies_ms.size());
  // Traces complete in the same order latencies are recorded.
  for (std::size_t i = 0; i < result.traces.size(); ++i) {
    ASSERT_NEAR(result.traces[i].total(), result.latencies_ms[i], 1e-9);
  }
}

TEST(Trace, ComputeMatchesServiceModel) {
  // At full CPU the mean compute segment must track the N(81, 35) model.
  ae::Simulator sim;
  const auto result = traced_episode(sim, 1, 11);
  const auto b = ae::summarize_traces(result.traces);
  EXPECT_NEAR(b.compute, 81.0, 8.0);
  EXPECT_GT(b.frames, 30u);
}

TEST(Trace, QueueingGrowsWithTraffic) {
  ae::Simulator sim;
  const auto light = ae::summarize_traces(traced_episode(sim, 1).traces);
  const auto heavy = ae::summarize_traces(traced_episode(sim, 4).traces);
  EXPECT_GT(heavy.queueing, light.queueing + 20.0);
}

TEST(Trace, RealNetworkAddsLoadingAndTransport) {
  // The decomposition localizes the sim-to-real gap: the real network's
  // loading and UL transport segments are visibly larger.
  ae::Simulator sim;
  ae::RealNetwork real;
  const auto bs = ae::summarize_traces(traced_episode(sim, 1, 17).traces);
  const auto br = ae::summarize_traces(traced_episode(real, 1, 17).traces);
  EXPECT_GT(br.loading, bs.loading + 2.0);
  EXPECT_GT(br.transport_ul, bs.transport_ul + 5.0);
  EXPECT_GT(br.total, bs.total);
}

TEST(Trace, BreakdownOfEmptySetIsZero) {
  const auto b = ae::summarize_traces({});
  EXPECT_EQ(b.frames, 0u);
  EXPECT_DOUBLE_EQ(b.total, 0.0);
}
