// Overload-protection behavior under deterministic pressure: watermark load
// shedding, deadline admission, hedged dispatch, and per-replica circuit
// breakers. Companion to fault_injection_test.cpp in the `chaos` ctest
// label; every scenario here is engineered to be schedule-independent (gated
// backends, one-sided races, huge cooldowns), and the reproducibility tests
// run each scenario twice and require IDENTICAL counters — that is the
// chaos harness's acceptance bar.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "env/env_service.hpp"
#include "env/farm_controller.hpp"
#include "env/fault_injection.hpp"

namespace ae = atlas::env;

namespace {

ae::EnvQuery query(ae::BackendId backend, std::uint64_t seed,
                   ae::QueryPriority priority = ae::QueryPriority::kNormal) {
  ae::EnvQuery q;
  q.backend = backend;
  q.workload.duration_ms = 500.0;
  q.workload.seed = seed;
  q.priority = priority;
  return q;
}

/// Offline backend that parks every execute() until released — the knob that
/// holds outstanding_queries() at an exact depth while admission decisions
/// are made. (env_service_test.cpp has an online twin; shedding is
/// offline-only, so this one must report kOffline.)
class GatedBackend final : public ae::EnvBackend {
 public:
  ae::EpisodeResult execute(const ae::EnvQuery&) const override {
    started_.fetch_add(1, std::memory_order_relaxed);
    release_.wait(false);  // std::atomic<bool>::wait
    return {};
  }
  ae::BackendKind kind() const noexcept override { return ae::BackendKind::kOffline; }
  const std::string& name() const noexcept override { return name_; }

  int started() const noexcept { return started_.load(std::memory_order_relaxed); }
  void release() {
    release_.store(true, std::memory_order_release);
    release_.notify_all();
  }

 private:
  std::string name_ = "gated";
  mutable std::atomic<int> started_{0};
  mutable std::atomic<bool> release_{false};
};

/// Replica fake whose result identifies which replica answered.
class TaggedBackend final : public ae::EnvBackend {
 public:
  explicit TaggedBackend(double tag) : tag_(tag) {}

  ae::EpisodeResult execute(const ae::EnvQuery&) const override {
    ae::EpisodeResult result;
    result.latencies_ms = {tag_};
    result.frames_completed = static_cast<std::size_t>(tag_);
    return result;
  }
  ae::BackendKind kind() const noexcept override { return ae::BackendKind::kOffline; }
  const std::string& name() const noexcept override { return name_; }

 private:
  std::string name_ = "tagged";
  double tag_;
};

/// Replica fake that never answers on its own: execute_cancellable polls the
/// token and throws EpisodeCancelled once the hedge winner cancels it. The
/// bounded fallback keeps a broken test from parking forever.
class ParkedBackend final : public ae::EnvBackend {
 public:
  ae::EpisodeResult execute(const ae::EnvQuery& q) const override {
    ae::CancelToken never{false};
    return execute_cancellable(q, never);
  }
  ae::EpisodeResult execute_cancellable(const ae::EnvQuery&,
                                        const ae::CancelToken& cancel) const override {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      if (cancel.load(std::memory_order_acquire)) throw ae::EpisodeCancelled();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return {};  // test failure path: the hedge never fired
  }
  ae::BackendKind kind() const noexcept override { return ae::BackendKind::kOffline; }
  const std::string& name() const noexcept override { return name_; }

 private:
  std::string name_ = "parked";
};

/// Replica fake that always fails — drives the circuit breaker.
class FailingBackend final : public ae::EnvBackend {
 public:
  ae::EpisodeResult execute(const ae::EnvQuery&) const override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    throw std::runtime_error("replica down");
  }
  ae::BackendKind kind() const noexcept override { return ae::BackendKind::kOffline; }
  const std::string& name() const noexcept override { return name_; }

  int calls() const noexcept { return calls_.load(std::memory_order_relaxed); }

 private:
  std::string name_ = "failing";
  mutable std::atomic<int> calls_{0};
};

std::shared_ptr<std::atomic<int>> serving_health() {
  return std::make_shared<std::atomic<int>>(static_cast<int>(ae::WorkerState::kServing));
}

ae::WorkerBackendInfo sim_descriptor() {
  ae::WorkerBackendInfo info;
  info.name = "sim-pool";
  info.kind = ae::BackendKind::kOffline;
  return info;
}

}  // namespace

// ---- watermark shedding ----------------------------------------------------

TEST(OverloadShedding, SpeculativeShedsAtSoftWatermarkNormalAtHard) {
  // Soft watermark 2, hard 4 (the 2x default). Depth counts the probing
  // query itself, so with two gated queries parked the service sits at
  // depth 3 during a sync run().
  ae::EnvServiceOptions options;
  options.threads = 2;
  options.shed_watermark = 2;
  ae::EnvService service(options);
  const auto gated_backend = std::make_shared<GatedBackend>();
  const auto gate = service.register_backend(gated_backend);
  const auto sim = service.add_simulator();

  auto h1 = service.submit(query(gate, 1));
  auto h2 = service.submit(query(gate, 2));
  while (gated_backend->started() < 2) std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // Depth 3 >= soft(2): speculative work sheds; >= hard(4) is not reached,
  // so normal-priority work still runs.
  const auto shed = service.run(query(sim, 100, ae::QueryPriority::kSpeculative));
  EXPECT_TRUE(shed.is_rejected());
  EXPECT_EQ(shed.rejected, ae::RejectReason::kShedded);
  EXPECT_TRUE(shed.latencies_ms.empty());  // a rejection carries no measurements

  const auto ran = service.run(query(sim, 101, ae::QueryPriority::kNormal));
  EXPECT_FALSE(ran.is_rejected());

  // Park a third query: depth 4 >= hard(4) sheds EVERYTHING offline.
  auto h3 = service.submit(query(gate, 3));
  while (gated_backend->started() < 2 || service.outstanding_queries() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto hard_shed = service.run(query(sim, 102, ae::QueryPriority::kNormal));
  EXPECT_TRUE(hard_shed.is_rejected());
  EXPECT_EQ(hard_shed.rejected, ae::RejectReason::kShedded);

  gated_backend->release();
  (void)h1.get();
  (void)h2.get();
  (void)h3.get();

  // Accounting: rejections are counted per backend and in the service
  // totals, and the exact invariant extends to hits+misses+rejected==queries.
  const auto sim_stats = service.backend_stats(sim);
  EXPECT_EQ(sim_stats.shedded, 2u);
  EXPECT_EQ(sim_stats.queries, 3u);
  EXPECT_EQ(sim_stats.cache_hits + sim_stats.cache_misses + sim_stats.rejected(),
            sim_stats.queries);
  EXPECT_EQ(sim_stats.episodes, 1u);  // only the admitted query ran

  // The same invariant at SUMMARY level: totals must balance exactly, and
  // the farm fold must count each watermark shed once (it used to fold
  // rejected() = shed + deadline on top of the dedicated totals, so one
  // rejection showed up under two telemetry names).
  const auto totals = service.stats();
  EXPECT_EQ(totals.shed_total, 2u);
  EXPECT_EQ(totals.cache_hits + totals.cache_misses + totals.shed_total +
                totals.deadline_rejected + totals.cancelled_total,
            totals.total_queries());
  EXPECT_EQ(totals.farm.shed_total, totals.shed_total);

  // Rejected queries release their outstanding slot: the gauge returns to 0,
  // so placement does not see phantom load.
  EXPECT_EQ(service.outstanding_queries(), 0u);
}

TEST(OverloadShedding, RejectionsAreNeverMemoized) {
  ae::EnvServiceOptions options;
  options.threads = 2;
  options.shed_watermark = 1;  // depth counts self: every offline query >= 1
  ae::EnvService service(options);
  const auto sim = service.add_simulator();

  // With watermark 1 a lone speculative query sheds on its own footprint.
  const auto shed = service.run(query(sim, 500, ae::QueryPriority::kSpeculative));
  ASSERT_EQ(shed.rejected, ae::RejectReason::kShedded);
  EXPECT_EQ(service.cache_size(), 0u);  // the rejection did NOT enter the memo

  // The same (config, seed) later, under no pressure: a genuine execution —
  // a cached rejection would have been returned as a phantom "hit" here.
  const auto ran = service.run(query(sim, 500, ae::QueryPriority::kNormal));
  EXPECT_FALSE(ran.is_rejected());
  ae::Simulator direct;
  ae::Workload wl;
  wl.duration_ms = 500.0;
  wl.seed = 500;
  EXPECT_EQ(ran.latencies_ms, direct.run(ae::SliceConfig{}, wl).latencies_ms);

  const auto stats = service.backend_stats(sim);
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.shedded, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.episodes, 1u);
}

TEST(OverloadShedding, CapacityZeroKeepsRejectionAccountingExact) {
  // No memo table at all: the uncached invariant episodes+rejected==queries
  // must hold instead of the hit/miss one.
  ae::EnvServiceOptions options;
  options.threads = 2;
  options.cache_capacity = 0;
  options.shed_watermark = 1;
  ae::EnvService service(options);
  const auto sim = service.add_simulator();

  const auto shed = service.run(query(sim, 1, ae::QueryPriority::kSpeculative));
  EXPECT_EQ(shed.rejected, ae::RejectReason::kShedded);
  const auto ran = service.run(query(sim, 2, ae::QueryPriority::kNormal));
  EXPECT_FALSE(ran.is_rejected());

  const auto stats = service.backend_stats(sim);
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.episodes + stats.rejected(), stats.queries);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
  EXPECT_EQ(service.outstanding_queries(), 0u);
}

TEST(OverloadShedding, OnlineQueriesAreNeverShed) {
  // Metered queries were deliberately spent; the watermark must not touch
  // them even at absurd depth (watermark 1 sheds every offline query).
  ae::EnvServiceOptions options;
  options.threads = 2;
  options.shed_watermark = 1;
  ae::EnvService service(options);
  const auto real = service.add_real_network();

  const auto result = service.run(query(real, 9, ae::QueryPriority::kSpeculative));
  EXPECT_FALSE(result.is_rejected());
  EXPECT_EQ(service.backend_stats(real).shedded, 0u);
}

// ---- deadlines -------------------------------------------------------------

TEST(OverloadDeadlines, QueueWaitPastDeadlineRejectsBeforeExecution) {
  // One pool thread, held by a gated query: anything submitted behind it
  // waits in the queue. A 1 ms deadline + a 15 ms hold is deterministic —
  // the waiter cannot start before the gate opens.
  ae::EnvServiceOptions options;
  options.threads = 1;
  ae::EnvService service(options);
  const auto gated_backend = std::make_shared<GatedBackend>();
  const auto gate = service.register_backend(gated_backend);
  const auto sim = service.add_simulator();

  auto blocker = service.submit(query(gate, 1));
  while (gated_backend->started() < 1) std::this_thread::sleep_for(std::chrono::milliseconds(1));

  auto doomed_query = query(sim, 77);
  doomed_query.deadline_ms = 1.0;
  auto doomed = service.submit(doomed_query);

  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  gated_backend->release();
  (void)blocker.get();

  const auto result = doomed.get();
  EXPECT_TRUE(result.is_rejected());
  EXPECT_EQ(result.rejected, ae::RejectReason::kDeadlineExceeded);

  const auto stats = service.backend_stats(sim);
  EXPECT_EQ(stats.deadline_rejected, 1u);
  EXPECT_EQ(stats.episodes, 0u);  // never executed
  EXPECT_EQ(service.stats().deadline_rejected, 1u);
  EXPECT_EQ(service.outstanding_queries(), 0u);

  // The same query with a sane budget runs normally.
  auto fine_query = query(sim, 77);
  fine_query.deadline_ms = 60000.0;
  EXPECT_FALSE(service.run(fine_query).is_rejected());
}

TEST(OverloadDeadlines, ZeroDeadlineMeansNoDeadline) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 1});
  const auto sim = service.add_simulator();
  auto q = query(sim, 3);
  q.deadline_ms = 0.0;  // the default: existing callers see no change
  EXPECT_FALSE(service.run(q).is_rejected());
  EXPECT_EQ(service.backend_stats(sim).deadline_rejected, 0u);
}

TEST(OverloadDeadlines, ShedAndDeadlineRejectionsStayInTheirOwnTotals) {
  // Regression: the farm fold in stats() used to add rejected() (= shedded +
  // deadline_rejected) into farm.shed_total, which ALREADY sums the shedded
  // counters — every deadline rejection was double-reported as a shed, and
  // sheds were counted twice across the two telemetry names. Each rejection
  // must appear exactly once, under its own name.
  ae::EnvServiceOptions options;
  options.threads = 1;
  options.shed_watermark = 2;
  ae::EnvService service(options);
  const auto gated_backend = std::make_shared<GatedBackend>();
  const auto gate = service.register_backend(gated_backend);
  const auto sim = service.add_simulator();

  auto blocker = service.submit(query(gate, 1));
  while (gated_backend->started() < 1) std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // Depth 2 >= soft(2): one speculative shed.
  EXPECT_EQ(service.run(query(sim, 10, ae::QueryPriority::kSpeculative)).rejected,
            ae::RejectReason::kShedded);
  // One deadline rejection: queued behind the gate with a 1 ms budget.
  auto doomed_query = query(sim, 11);
  doomed_query.deadline_ms = 1.0;
  auto doomed = service.submit(doomed_query);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  gated_backend->release();
  (void)blocker.get();
  EXPECT_EQ(doomed.get().rejected, ae::RejectReason::kDeadlineExceeded);

  const auto stats = service.stats();
  EXPECT_EQ(stats.shed_total, 1u);
  EXPECT_EQ(stats.deadline_rejected, 1u);
  EXPECT_EQ(stats.farm.shed_total, 1u) << "a deadline rejection is not a shed";
  std::uint64_t rejected_sum = 0;
  for (const auto& b : stats.backends) rejected_sum += b.rejected();
  EXPECT_EQ(rejected_sum, stats.shed_total + stats.deadline_rejected + stats.cancelled_total);
}

// ---- hedged dispatch -------------------------------------------------------

TEST(OverloadHedging, SlowPrimaryIsHedgedAndTheLoserCancelled) {
  const auto farm = std::make_shared<ae::FarmState>();
  ae::HedgePolicy hedge;
  hedge.enabled = true;
  hedge.fallback_delay_ms = 5.0;  // no RTT samples yet: hedge after 5 ms
  ae::FailoverBackend backend(sim_descriptor(), farm, hedge, ae::BreakerPolicy{});
  backend.add_replica(std::make_shared<ParkedBackend>(), 0, serving_health());
  backend.add_replica(std::make_shared<TaggedBackend>(2.0), 1, serving_health());

  EXPECT_DOUBLE_EQ(backend.hedge_delay_ms(), 5.0);

  // Round-robin starts at replica 0 (the parked one). It outlives the hedge
  // delay, the secondary answers, the primary is cancelled — and a
  // cancellation is NOT a fault: breakers stay closed, nothing redispatched.
  const auto result = backend.execute(query(0, 11));
  ASSERT_EQ(result.latencies_ms.size(), 1u);
  EXPECT_DOUBLE_EQ(result.latencies_ms[0], 2.0);  // the secondary's tag

  EXPECT_EQ(farm->hedges.load(), 1u);
  EXPECT_EQ(farm->hedge_wins.load(), 1u);
  EXPECT_EQ(farm->episodes_redispatched.load(), 0u);
  EXPECT_EQ(farm->breaker_trips.load(), 0u);
  EXPECT_EQ(backend.breaker_state(0), 0);  // closed
  EXPECT_EQ(backend.breaker_state(1), 0);
}

namespace {

/// Replica fake with a caller-scripted RTT distribution: hedge_delay_ms()
/// learns its quantile from fill_stats, so the test controls exactly what
/// the hedge policy believes the farm's RTT regime is.
class ScriptedRttBackend final : public ae::EnvBackend {
 public:
  ae::EpisodeResult execute(const ae::EnvQuery&) const override { return {}; }
  ae::BackendKind kind() const noexcept override { return ae::BackendKind::kOffline; }
  const std::string& name() const noexcept override { return name_; }
  void fill_stats(ae::BackendStats& stats) const override { stats.rpc_rtt_ns.merge(rtt_); }

  void record_rtt_ms(double ms, std::uint64_t samples) {
    rtt_.record(static_cast<std::uint64_t>(ms * 1e6), samples);
  }

 private:
  std::string name_ = "scripted-rtt";
  atlas::telemetry::HistogramData rtt_;
};

}  // namespace

TEST(OverloadHedging, IdleFarmRefreshesAStaleHedgeDelayByWallClock) {
  // Regression: the hedge delay cache refreshed only every 64th CALL, so a
  // farm that idled across an RTT regime change kept hedging (or not) on the
  // pre-idle quantile for up to 63 post-idle episodes — exactly when the
  // regime is most likely to have shifted. Wall-clock staleness is now the
  // primary trigger: the first call after an idle period must recompute.
  const auto farm = std::make_shared<ae::FarmState>();
  ae::HedgePolicy hedge;
  hedge.enabled = true;
  hedge.fallback_delay_ms = 5.0;
  hedge.min_samples = 4;
  hedge.refresh_interval_ms = 20.0;  // "idle" is cheap to reach in a test
  ae::FailoverBackend backend(sim_descriptor(), farm, hedge, ae::BreakerPolicy{});
  const auto replica = std::make_shared<ScriptedRttBackend>();
  backend.add_replica(replica, 0, serving_health());

  // Call 0 (call-count trigger): no RTT samples yet -> the fallback delay.
  EXPECT_DOUBLE_EQ(backend.hedge_delay_ms(), 5.0);

  // The farm observes genuinely slow episodes, then goes idle.
  replica->record_rtt_ms(80.0, 8);
  std::this_thread::sleep_for(std::chrono::milliseconds(25));

  // First post-idle call: 1 % 64 != 0, so the old call-count-only cadence
  // would have served the stale 5 ms fallback. The wall-clock trigger must
  // recompute from the recorded distribution instead.
  const double refreshed = backend.hedge_delay_ms();
  EXPECT_GT(refreshed, 50.0) << "first post-idle hedge delay must reflect the slow RTTs";
  EXPECT_LE(refreshed, hedge.max_delay_ms);

  // Within the staleness window the cache serves without rescanning: the
  // regime shifts again but the interval has not elapsed and the call count
  // has not rolled over, so the cached value holds (cheap steady-state path).
  replica->record_rtt_ms(1.0, 1024);
  EXPECT_DOUBLE_EQ(backend.hedge_delay_ms(), refreshed);
}

TEST(OverloadHedging, FastPrimaryNeverHedges) {
  const auto farm = std::make_shared<ae::FarmState>();
  ae::HedgePolicy hedge;
  hedge.enabled = true;
  hedge.fallback_delay_ms = 200.0;  // far longer than an instant reply
  ae::FailoverBackend backend(sim_descriptor(), farm, hedge, ae::BreakerPolicy{});
  backend.add_replica(std::make_shared<TaggedBackend>(1.0), 0, serving_health());
  backend.add_replica(std::make_shared<TaggedBackend>(2.0), 1, serving_health());

  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    EXPECT_FALSE(backend.execute(query(0, seed)).is_rejected());
  }
  EXPECT_EQ(farm->hedges.load(), 0u);
  EXPECT_EQ(farm->hedge_wins.load(), 0u);
}

// ---- circuit breakers ------------------------------------------------------

namespace {

struct BreakerOutcome {
  std::uint64_t trips = 0;
  std::uint64_t redispatched = 0;
  int primary_calls = 0;
  int primary_state = -2;
  int secondary_state = -2;
  std::size_t completed = 0;

  bool operator==(const BreakerOutcome&) const = default;
};

/// One full breaker scenario: a dead-on-arrival primary behind a healthy
/// secondary, hedging off, cooldown far past the test horizon (no half-open
/// nondeterminism). Returns every observable counter so the reproducibility
/// test can compare two runs wholesale.
BreakerOutcome run_breaker_scenario() {
  const auto farm = std::make_shared<ae::FarmState>();
  ae::BreakerPolicy breaker;
  breaker.failure_threshold = 3;
  breaker.cooldown_ms = 60000.0;
  ae::FailoverBackend backend(sim_descriptor(), farm, ae::HedgePolicy{}, breaker);
  const auto failing = std::make_shared<FailingBackend>();
  backend.add_replica(failing, 0, serving_health());
  backend.add_replica(std::make_shared<TaggedBackend>(2.0), 1, serving_health());

  BreakerOutcome outcome;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto result = backend.execute(query(0, seed));
    if (result.latencies_ms.size() == 1 && result.latencies_ms[0] == 2.0) ++outcome.completed;
  }
  outcome.trips = farm->breaker_trips.load();
  outcome.redispatched = farm->episodes_redispatched.load();
  outcome.primary_calls = failing->calls();
  outcome.primary_state = backend.breaker_state(0);
  outcome.secondary_state = backend.breaker_state(1);
  return outcome;
}

}  // namespace

TEST(OverloadBreakers, ConsecutiveFailuresOpenTheBreakerAndTrafficRoutesAround) {
  const auto outcome = run_breaker_scenario();

  // Round-robin alternates which replica leads. The primary leads on calls
  // 1/3/5 and fails each time; the third failure trips the breaker open, and
  // from then on candidate selection skips it entirely.
  EXPECT_EQ(outcome.completed, 10u);      // every episode still succeeded
  EXPECT_EQ(outcome.trips, 1u);           // opened exactly once
  EXPECT_EQ(outcome.primary_calls, 3);    // never probed again (cooldown 60 s)
  EXPECT_EQ(outcome.redispatched, 3u);    // one redispatch per primary failure
  EXPECT_EQ(outcome.primary_state, 1);    // open
  EXPECT_EQ(outcome.secondary_state, 0);  // closed
}

TEST(OverloadBreakers, HalfOpenProbeClosesTheBreakerOnSuccess) {
  const auto farm = std::make_shared<ae::FarmState>();
  ae::BreakerPolicy breaker;
  breaker.failure_threshold = 1;  // one failure trips it
  breaker.cooldown_ms = 5.0;      // probe slot arms quickly
  ae::FailoverBackend backend(sim_descriptor(), farm, ae::HedgePolicy{}, breaker);

  // The "flaky" primary: fails once, then recovers. Modeled as a replica
  // whose health cell we leave serving while the breaker does the shunning.
  class RecoveringBackend final : public ae::EnvBackend {
   public:
    ae::EpisodeResult execute(const ae::EnvQuery&) const override {
      if (calls_.fetch_add(1, std::memory_order_relaxed) == 0) {
        throw std::runtime_error("transient failure");
      }
      ae::EpisodeResult result;
      result.latencies_ms = {1.0};
      return result;
    }
    ae::BackendKind kind() const noexcept override { return ae::BackendKind::kOffline; }
    const std::string& name() const noexcept override { return name_; }

   private:
    std::string name_ = "recovering";
    mutable std::atomic<int> calls_{0};
  };
  backend.add_replica(std::make_shared<RecoveringBackend>(), 0, serving_health());
  backend.add_replica(std::make_shared<TaggedBackend>(2.0), 1, serving_health());

  (void)backend.execute(query(0, 1));  // primary fails -> trips -> secondary answers
  ASSERT_EQ(backend.breaker_state(0), 1);
  EXPECT_EQ(farm->breaker_trips.load(), 1u);

  std::this_thread::sleep_for(std::chrono::milliseconds(10));  // cooldown elapses

  // Round-robin leads with the SECONDARY on this call, so replica 0 merely
  // wins the half-open CAS (it becomes a candidate, but the secondary
  // answers first and its probe never runs — the claimed-probe case).
  (void)backend.execute(query(0, 2));
  EXPECT_EQ(backend.breaker_state(0), 2);  // half-open, probe still owed

  std::this_thread::sleep_for(std::chrono::milliseconds(10));  // probe window re-arms

  // Now replica 0 leads: the stale half-open cell re-arms, the probe
  // actually executes, succeeds, and the breaker closes.
  (void)backend.execute(query(0, 3));
  EXPECT_EQ(backend.breaker_state(0), 0);
  EXPECT_EQ(farm->breaker_trips.load(), 1u);  // recovery is not another trip
}

// ---- golden guard: idle features change nothing ----------------------------

namespace {

/// FNV-1a over the result's raw f64/u64 bit patterns (same construction as
/// the golden_episode suite): a single-ULP drift anywhere flips the hash.
std::uint64_t hash_result(const ae::EpisodeResult& r) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto add_u64 = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  add_u64(static_cast<std::uint64_t>(r.rejected));
  add_u64(r.frames_completed);
  add_u64(static_cast<std::uint64_t>(r.ul_tb_total));
  add_u64(static_cast<std::uint64_t>(r.ul_tb_err));
  add_u64(static_cast<std::uint64_t>(r.dl_tb_total));
  add_u64(static_cast<std::uint64_t>(r.dl_tb_err));
  for (const double latency : r.latencies_ms) {
    std::uint64_t bits;
    __builtin_memcpy(&bits, &latency, sizeof(bits));
    add_u64(bits);
  }
  return h;
}

std::vector<ae::EnvQuery> golden_queries(ae::BackendId backend) {
  std::vector<ae::EnvQuery> queries;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ae::EnvQuery q = query(backend, seed);
    q.config.bandwidth_ul = 5.0 + 4.0 * static_cast<double>(seed);
    q.config.cpu_ratio = 0.1 * static_cast<double>(seed % 9);
    queries.push_back(q);
  }
  return queries;
}

}  // namespace

TEST(OverloadGolden, IdleFeaturesLeaveEpisodeResultsBitIdentical) {
  // The whole overload layer — watermarks armed, deadlines stamped, hedging
  // and breakers enabled — must be invisible when nothing triggers: every
  // result bit-identical to a plain service's. This is the guard that lets
  // deployments enable the features without re-validating their science.

  // Baseline: a bare service, no overload features.
  std::vector<std::uint64_t> baseline;
  {
    ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
    const auto sim = service.add_simulator();
    for (const auto& q : golden_queries(sim)) baseline.push_back(hash_result(service.run(q)));
  }

  // Armed-but-idle watermarks + generous deadlines on every query.
  {
    ae::EnvServiceOptions options;
    options.threads = 2;
    options.shed_watermark = 1000;  // never reached by 8 sequential queries
    ae::EnvService service(options);
    const auto sim = service.add_simulator();
    std::size_t i = 0;
    for (auto q : golden_queries(sim)) {
      q.deadline_ms = 60000.0;
      q.priority = (i % 2 == 0) ? ae::QueryPriority::kSpeculative : ae::QueryPriority::kNormal;
      EXPECT_EQ(hash_result(service.run(q)), baseline[i]) << "query " << i;
      ++i;
    }
  }

  // Hedging + breakers over two healthy same-params replicas: episodes are
  // deterministic per seed, so WHICH replica answers cannot matter, and a
  // hedge delay far past a local episode's runtime means none ever fires.
  {
    const auto farm = std::make_shared<ae::FarmState>();
    ae::HedgePolicy hedge;
    hedge.enabled = true;
    hedge.fallback_delay_ms = 1000.0;
    ae::FailoverBackend failover(sim_descriptor(), farm, hedge, ae::BreakerPolicy{});
    const auto make_sim = [] {
      return std::make_shared<ae::LocalBackend>(std::make_shared<ae::Simulator>(), "sim-0",
                                                ae::BackendKind::kOffline);
    };
    failover.add_replica(make_sim(), 0, serving_health());
    failover.add_replica(make_sim(), 1, serving_health());

    std::size_t i = 0;
    for (const auto& q : golden_queries(0)) {
      EXPECT_EQ(hash_result(failover.execute(q)), baseline[i]) << "query " << i;
      ++i;
    }
    EXPECT_EQ(farm->hedges.load(), 0u);
    EXPECT_EQ(farm->breaker_trips.load(), 0u);
  }
}

// ---- same-seed reproducibility (the chaos acceptance bar) ------------------

TEST(ChaosReproducibility, BreakerScenarioProducesIdenticalCountersTwice) {
  const auto first = run_breaker_scenario();
  const auto second = run_breaker_scenario();
  EXPECT_EQ(first, second);
}

TEST(ChaosReproducibility, FaultedServiceRunsProduceIdenticalOutcomes) {
  // End to end: an EnvService fronting a fault-injected simulator. Which
  // queries fail is a pure function of (plan seed, workload seed), so two
  // fresh same-seed services agree on the exact failure set and counters —
  // across different thread pools and interleavings.
  const auto run_once = [](std::set<std::uint64_t>& failed_seeds) {
    const auto injector =
        std::make_shared<ae::FaultInjector>(ae::FaultPlan::parse("error=0.3", 77));
    ae::EnvServiceOptions options;
    options.threads = 4;
    ae::EnvService service(options);
    const auto faulty = service.register_backend(std::make_shared<ae::FaultInjectingBackend>(
        std::make_shared<ae::LocalBackend>(std::make_shared<ae::Simulator>(), "sim-0",
                                           ae::BackendKind::kOffline),
        injector));
    for (std::uint64_t seed = 1; seed <= 60; ++seed) {
      try {
        (void)service.run(query(faulty, seed));
      } catch (const ae::FaultInjectedError&) {
        failed_seeds.insert(seed);
      }
    }
    return injector->counters().errors;
  };

  std::set<std::uint64_t> first_failed;
  std::set<std::uint64_t> second_failed;
  const auto first_errors = run_once(first_failed);
  const auto second_errors = run_once(second_failed);

  EXPECT_FALSE(first_failed.empty());             // the plan actually bites
  EXPECT_LT(first_failed.size(), 60u);            // ...but not everything
  EXPECT_EQ(first_failed, second_failed);         // identical failure SET
  EXPECT_EQ(first_errors, second_errors);         // identical injector counters
  EXPECT_EQ(first_errors, first_failed.size());
}
