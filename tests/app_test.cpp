#include <gtest/gtest.h>

#include "app/frame_app.hpp"
#include "app/qoe.hpp"
#include "des/event_queue.hpp"
#include "math/rng.hpp"

namespace aa = atlas::app;
namespace ad = atlas::des;
namespace am = atlas::math;

TEST(Qoe, FractionBelowThreshold) {
  EXPECT_DOUBLE_EQ(aa::qoe_from_latencies({100, 200, 300, 400}, 300.0), 0.75);
  EXPECT_DOUBLE_EQ(aa::qoe_from_latencies({100}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(aa::qoe_from_latencies({}, 300.0), 0.0);  // outage counts as 0
}

TEST(Sla, SatisfactionCheck) {
  aa::Sla sla;  // Y=300, E=0.9
  EXPECT_TRUE(sla.satisfied_by(0.95));
  EXPECT_TRUE(sla.satisfied_by(0.9));
  EXPECT_FALSE(sla.satisfied_by(0.89));
}

TEST(FrameApp, WindowLimitsInFlight) {
  am::Rng rng(1);
  ad::EventQueue events;
  aa::AppTrafficModel model;
  aa::FrameApp app(model, 3, rng);
  std::vector<std::uint64_t> sent;
  app.start(events, [&](std::uint64_t id, double) { sent.push_back(id); });
  events.run_until(10.0);
  EXPECT_EQ(app.in_flight(), 3);
  EXPECT_EQ(sent.size(), 3u);
}

TEST(FrameApp, ResultCompletesAndRefills) {
  am::Rng rng(2);
  ad::EventQueue events;
  aa::AppTrafficModel model;
  aa::FrameApp app(model, 1, rng);
  std::vector<std::uint64_t> sent;
  app.start(events, [&](std::uint64_t id, double) { sent.push_back(id); });
  events.run_until(1.0);
  ASSERT_EQ(sent.size(), 1u);
  events.schedule_at(50.0, [&] { app.on_result(0); });
  events.run_until(60.0);
  ASSERT_EQ(app.latencies().size(), 1u);
  EXPECT_NEAR(app.latencies()[0], 50.0, 1e-9);  // created at t=0
  EXPECT_EQ(sent.size(), 2u);                   // slot refilled
  EXPECT_EQ(app.in_flight(), 1);
}

TEST(FrameApp, LoadingDelayDefersSend) {
  am::Rng rng(3);
  ad::EventQueue events;
  aa::AppTrafficModel model;
  model.loading_base_ms = 10.0;
  aa::FrameApp app(model, 1, rng);
  double sent_at = -1.0;
  app.start(events, [&](std::uint64_t, double) { sent_at = events.now(); });
  events.run_until(5.0);
  EXPECT_DOUBLE_EQ(sent_at, -1.0);  // still loading
  events.run_until(20.0);
  EXPECT_NEAR(sent_at, 10.0, 1e-9);
}

TEST(FrameApp, FrameSizesWithinTruncationBounds) {
  am::Rng rng(4);
  aa::AppTrafficModel model;
  for (int i = 0; i < 5000; ++i) {
    const double bits = model.sample_frame_bits(rng);
    ASSERT_GE(bits, model.frame_kbits_min * 1e3);
    ASSERT_LE(bits, model.frame_kbits_max * 1e3);
  }
}

TEST(FrameApp, UnknownResultThrows) {
  am::Rng rng(5);
  ad::EventQueue events;
  aa::FrameApp app(aa::AppTrafficModel{}, 1, rng);
  app.start(events, [](std::uint64_t, double) {});
  events.run_until(1.0);
  EXPECT_THROW(app.on_result(99), std::logic_error);
}

TEST(FrameApp, RejectsNonPositiveWindow) {
  am::Rng rng(6);
  EXPECT_THROW(aa::FrameApp(aa::AppTrafficModel{}, 0, rng), std::invalid_argument);
}
