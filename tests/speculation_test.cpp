// Speculative episode prefetching (env/speculation.hpp): exact accounting of
// the launched == hits + cancelled + wasted invariant, the
// cancellation-never-memoizes guarantee, single-counting of shed speculative
// queries, and the budget rule against outstanding work. The bit-identity
// half of the contract lives in golden_stage_test.cpp.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "env/env_service.hpp"
#include "env/shard_router.hpp"
#include "env/speculation.hpp"

namespace ae = atlas::env;

namespace {

ae::EnvQuery query(ae::BackendId backend, std::uint64_t seed) {
  ae::EnvQuery q;
  q.backend = backend;
  q.workload.duration_ms = 500.0;
  q.workload.seed = seed;
  return q;
}

/// Offline backend that parks every execute() until released (same knob as
/// overload_test's): holds the pool busy so queued speculations stay queued.
class GatedBackend final : public ae::EnvBackend {
 public:
  ae::EpisodeResult execute(const ae::EnvQuery&) const override {
    started_.fetch_add(1, std::memory_order_relaxed);
    release_.wait(false);
    return {};
  }
  ae::BackendKind kind() const noexcept override { return ae::BackendKind::kOffline; }
  const std::string& name() const noexcept override { return name_; }

  int started() const noexcept { return started_.load(std::memory_order_relaxed); }
  void release() {
    release_.store(true, std::memory_order_release);
    release_.notify_all();
  }

 private:
  std::string name_ = "gated";
  mutable std::atomic<int> started_{0};
  mutable std::atomic<bool> release_{false};
};

}  // namespace

TEST(Speculation, CommittedSpeculationIsAHitAndTheEpisodeRunsOnce) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator();
  ae::SpeculationPlanner prefetch(service, ae::SpeculationOptions{.top_k = 2});

  // Mid-"scan": the eventual winner is speculated; the commit then submits
  // the identical query, which coalesces onto (or is memoized by) the
  // speculative episode — one execution total.
  EXPECT_TRUE(prefetch.speculate(query(sim, 7)));
  EXPECT_FALSE(prefetch.speculate(query(sim, 7))) << "identical episode dedups";
  prefetch.note_commit(query(sim, 7));
  const auto committed = service.run(query(sim, 7));
  EXPECT_FALSE(committed.is_rejected());
  prefetch.close_iteration();

  const auto view = prefetch.view();
  EXPECT_EQ(view.launched, 1u);
  EXPECT_EQ(view.hits, 1u);
  EXPECT_EQ(view.cancelled, 0u);
  EXPECT_EQ(view.wasted, 0u);
  EXPECT_DOUBLE_EQ(view.hit_rate(), 1.0);

  // Service accounting: two queries (speculative + committed), ONE episode.
  const auto stats = service.backend_stats(sim);
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.episodes, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);

  // The planner's counter block rides stats() like the farm's does.
  const auto service_stats = service.stats();
  EXPECT_TRUE(service_stats.speculation.active);
  EXPECT_EQ(service_stats.speculation.launched, 1u);
  EXPECT_EQ(service_stats.speculation.hits, 1u);
}

TEST(Speculation, UncommittedCompletedSpeculationIsWastedButWarmsTheCache) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator();
  ae::SpeculationPlanner prefetch(service, ae::SpeculationOptions{.top_k = 2});

  ASSERT_TRUE(prefetch.speculate(query(sim, 11)));
  // Let the misprediction actually execute before the iteration closes.
  while (service.backend_stats(sim).episodes < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  prefetch.close_iteration();

  const auto view = prefetch.view();
  EXPECT_EQ(view.launched, 1u);
  EXPECT_EQ(view.wasted, 1u);
  EXPECT_EQ(view.hits + view.cancelled, 0u);

  // "Wasted" still bought something: the entry is memoized, so a later
  // revisit of the same episode is a pure cache hit.
  EXPECT_EQ(service.cache_size(), 1u);
  EXPECT_FALSE(service.run(query(sim, 11)).is_rejected());
  const auto stats = service.backend_stats(sim);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.episodes, 1u) << "the revisit must not recompute";
}

TEST(Speculation, CancelledSpeculationsNeverMemoizeAndCountOnce) {
  // One pool thread held by a gated blocker: the speculation stays QUEUED
  // until after close_iteration() flips its token, so admission sees the
  // cancel and resolves it as a typed kCancelled rejection.
  ae::EnvService service(ae::EnvServiceOptions{.threads = 1});
  const auto gated_backend = std::make_shared<GatedBackend>();
  const auto gate = service.register_backend(gated_backend);
  const auto sim = service.add_simulator();
  ae::SpeculationPlanner prefetch(service, ae::SpeculationOptions{.top_k = 2});

  auto blocker = service.submit(query(gate, 1));
  while (gated_backend->started() < 1) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(prefetch.speculate(query(sim, 21)));

  // close_iteration() flips the token first, then blocks harvesting the
  // future — release the gate from the side so the queued task can run its
  // admission check and observe the cancel.
  std::thread closer([&] { prefetch.close_iteration(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  gated_backend->release();
  closer.join();
  (void)blocker.get();

  const auto view = prefetch.view();
  EXPECT_EQ(view.launched, 1u);
  EXPECT_EQ(view.cancelled, 1u);
  EXPECT_EQ(view.hits + view.wasted, 0u);

  // The cancelled speculation never produced an episode and never memoized:
  // counted exactly once (as cancelled), and a later identical query is a
  // genuine miss that executes for real.
  auto stats = service.backend_stats(sim);
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.episodes, 0u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, 0u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses + stats.rejected(), stats.queries);

  EXPECT_FALSE(service.run(query(sim, 21)).is_rejected());
  stats = service.backend_stats(sim);
  EXPECT_EQ(stats.cache_misses, 1u) << "a cancelled speculation must not fake a memo entry";
  EXPECT_EQ(stats.episodes, 1u);
  EXPECT_EQ(service.stats().cancelled_total, 1u);
}

TEST(Speculation, ShedSpeculativeQueryIsCountedExactlyOnce) {
  // Watermark 1: a lone speculative query sheds on its own footprint. The
  // planner buckets it as cancelled (no usable episode), the service as a
  // shed — one rejection, one name each, never both shed AND cancelled.
  ae::EnvServiceOptions options;
  options.threads = 2;
  options.shed_watermark = 1;
  ae::EnvService service(options);
  const auto sim = service.add_simulator();
  ae::SpeculationPlanner prefetch(service, ae::SpeculationOptions{.top_k = 2});

  ASSERT_TRUE(prefetch.speculate(query(sim, 31)));
  // Outstanding counts from submission, so the lone speculation sheds on its
  // own footprint — wait for admission so close_iteration() can't win the
  // race and turn the shed into a token cancellation.
  while (service.backend_stats(sim).shedded < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  prefetch.close_iteration();

  const auto view = prefetch.view();
  EXPECT_EQ(view.launched, 1u);
  EXPECT_EQ(view.cancelled, 1u);
  EXPECT_EQ(view.hits + view.wasted, 0u);

  const auto stats = service.backend_stats(sim);
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_EQ(stats.shedded, 1u);
  EXPECT_EQ(stats.cancelled, 0u) << "shed at admission, not token-cancelled";
  EXPECT_EQ(stats.rejected(), 1u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses + stats.rejected(), stats.queries);
  const auto totals = service.stats();
  EXPECT_EQ(totals.shed_total, 1u);
  EXPECT_EQ(totals.cancelled_total, 0u);
}

TEST(Speculation, BudgetRespectsDepthOutstandingWorkAndWatermark) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 1});
  const auto gated_backend = std::make_shared<GatedBackend>();
  const auto gate = service.register_backend(gated_backend);
  const auto sim = service.add_simulator();

  // Budget = prefetch depth when the service is idle.
  ae::SpeculationOptions options;
  options.top_k = 3;
  options.max_outstanding = 4;
  ae::SpeculationPlanner prefetch(service, options);
  EXPECT_EQ(prefetch.budget(), 3u);

  // Committed work in flight eats the idle headroom: 4 - 3 outstanding = 1.
  auto h1 = service.submit(query(gate, 1));
  auto h2 = service.submit(query(gate, 2));
  auto h3 = service.submit(query(gate, 3));
  while (service.outstanding_queries() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(prefetch.budget(), 1u);

  // A soft shed watermark caps harder: a speculation that would be shed on
  // arrival is never worth launching.
  ae::SpeculationOptions capped = options;
  capped.shed_watermark = 3;
  ae::SpeculationPlanner throttled(service, capped);
  EXPECT_EQ(throttled.budget(), 0u);
  EXPECT_FALSE(throttled.speculate(query(sim, 41)));
  EXPECT_EQ(throttled.view().launched, 0u);

  gated_backend->release();
  (void)h1.get();
  (void)h2.get();
  (void)h3.get();
}

TEST(Speculation, InvariantHoldsUnderConcurrentIterations) {
  // Two planner loops (one per shard-routed simulator) churn concurrently:
  // speculate a few keys per iteration, commit one, close — with foreground
  // load racing on the same service. Every launch must settle into exactly
  // one bucket: launched == hits + cancelled + wasted on each planner, and
  // the service's own hit/miss/rejection accounting stays exact.
  ae::ShardRouter router(2, ae::EnvServiceOptions{.threads = 2});
  const auto sim_a = router.add_simulator(ae::SimParams::defaults(), "sim-a");
  const auto sim_b = router.add_simulator(ae::SimParams::defaults(), "sim-b");

  constexpr std::size_t kIterations = 25;
  auto loop = [&](ae::BackendId sim, std::uint64_t base, ae::SpeculationPlanner& prefetch) {
    for (std::size_t iter = 0; iter < kIterations; ++iter) {
      const std::uint64_t seed = base + iter;
      (void)prefetch.speculate(query(sim, seed));
      (void)prefetch.speculate(query(sim, seed + 1000));  // usually mispredicted
      prefetch.note_commit(query(sim, seed));
      (void)router.run(query(sim, seed));  // the commit
      prefetch.close_iteration();
    }
  };

  ae::SpeculationPlanner prefetch_a(router, ae::SpeculationOptions{.top_k = 4});
  ae::SpeculationPlanner prefetch_b(router, ae::SpeculationOptions{.top_k = 4});
  std::thread worker_a([&] { loop(sim_a, 100, prefetch_a); });
  std::thread worker_b([&] { loop(sim_b, 5000, prefetch_b); });
  // Foreground noise: unrelated queries racing the speculative traffic.
  std::thread noise([&] {
    for (std::uint64_t seed = 0; seed < 50; ++seed) (void)router.run(query(sim_a, 90000 + seed));
  });
  worker_a.join();
  worker_b.join();
  noise.join();

  for (const auto* prefetch : {&prefetch_a, &prefetch_b}) {
    const auto view = prefetch->view();
    EXPECT_EQ(view.launched, view.hits + view.cancelled + view.wasted)
        << "every launch settles into exactly one bucket";
    EXPECT_GT(view.launched, 0u);
    EXPECT_EQ(view.hits, kIterations) << "every committed key was speculated first";
  }
  const auto stats = router.stats();
  for (const auto& b : stats.backends) {
    if (b.kind != ae::BackendKind::kOffline) continue;
    EXPECT_EQ(b.cache_hits + b.cache_misses + b.rejected(), b.queries) << b.name;
  }
}
