#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "math/halton.hpp"
#include "math/rng.hpp"

namespace am = atlas::math;

TEST(Halton, PointsInsideUnitBox) {
  am::Rng rng(1);
  am::HaltonSequence seq(7, rng);
  for (int i = 0; i < 2000; ++i) {
    const am::Vec p = seq.next();
    ASSERT_EQ(p.size(), 7u);
    for (double v : p) {
      ASSERT_GE(v, 0.0);
      ASSERT_LT(v, 1.0);
    }
  }
}

TEST(Halton, DeterministicPerSeed) {
  am::Rng r1(5);
  am::Rng r2(5);
  am::HaltonSequence a(4, r1);
  am::HaltonSequence b(4, r2);
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Halton, ScramblingVariesWithSeed) {
  am::Rng r1(5);
  am::Rng r2(6);
  am::HaltonSequence a(4, r1);
  am::HaltonSequence b(4, r2);
  // Skip a few: early points can coincide on small bases.
  bool differs = false;
  for (int i = 0; i < 20; ++i) {
    if (a.next() != b.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Halton, DimensionValidation) {
  am::Rng rng(1);
  EXPECT_THROW(am::HaltonSequence(0, rng), std::invalid_argument);
  EXPECT_THROW(am::HaltonSequence(17, rng), std::invalid_argument);
  EXPECT_NO_THROW(am::HaltonSequence(16, rng));
}

TEST(Halton, BatchMatchesSequentialNext) {
  am::Rng r1(9);
  am::Rng r2(9);
  am::HaltonSequence a(3, r1);
  am::HaltonSequence b(3, r2);
  const am::Matrix batch = a.batch(10);
  for (std::size_t i = 0; i < 10; ++i) {
    ASSERT_EQ(batch.row(i), b.next());
  }
}

TEST(Halton, LowerDiscrepancyThanUniform) {
  // Proxy for star discrepancy: the largest gap between consecutive sorted
  // values in each 1-D projection. Halton's gaps must be tighter than
  // i.i.d. uniform's on the same budget.
  const std::size_t n = 512;
  am::Rng rng(13);
  am::HaltonSequence seq(5, rng);
  const am::Matrix hp = seq.batch(n);
  am::Rng urng(13);

  auto max_gap = [&](const std::vector<double>& v) {
    std::vector<double> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    double gap = sorted.front();
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      gap = std::max(gap, sorted[i] - sorted[i - 1]);
    }
    return std::max(gap, 1.0 - sorted.back());
  };

  for (std::size_t d = 0; d < 5; ++d) {
    std::vector<double> hv(n);
    std::vector<double> uv(n);
    for (std::size_t i = 0; i < n; ++i) {
      hv[i] = hp(i, d);
      uv[i] = urng.uniform();
    }
    EXPECT_LT(max_gap(hv), max_gap(uv)) << "dimension " << d;
  }
}
