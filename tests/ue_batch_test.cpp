// UeBatch equivalence suite: the vectorized background-UE tier must be a
// drop-in replacement for N scalar UeRadio objects behind one shared RNG.
// Every comparison here is BITWISE — the golden-episode hashes depend on the
// batch reproducing the scalar engine's draws and arithmetic exactly, so
// "close" is a failure.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/arena.hpp"
#include "env/episode.hpp"
#include "env/profile.hpp"
#include "lte/mac.hpp"
#include "lte/ue_batch.hpp"

namespace {

using atlas::common::Arena;
using atlas::common::ArenaScope;
using atlas::math::Rng;
namespace lte = atlas::lte;

/// The scalar reference: N full-buffer downlink UeRadio objects in one
/// background slice, swept by the per-UE scheduler — exactly what the
/// episode engine did before the SoA tier.
struct ScalarBackground {
  std::vector<std::unique_ptr<lte::UeRadio>> ues;
  std::vector<lte::SliceRadioShare> slices;
  lte::TtiScratch scratch;

  ScalarBackground(std::size_t n, const lte::RadioParams& ul, const lte::RadioParams& dl,
                   double distance_m, double sigma, double rho, int cqi_lag, int budget_prbs) {
    lte::SliceRadioShare share;
    share.prb_cap_dl = budget_prbs;
    for (std::size_t i = 0; i < n; ++i) {
      auto ue = std::make_unique<lte::UeRadio>(ul, dl, distance_m, sigma, rho, cqi_lag);
      ue->dl_queue().set_full_buffer(true);
      share.ues.push_back(ue.get());
      ues.push_back(std::move(ue));
    }
    slices.push_back(share);
  }

  void step_fading(Rng& rng) {
    for (auto& ue : ues) ue->step_fading(rng);
  }

  lte::BatchTtiStats run_dl_tti(double now, Rng& rng) {
    lte::run_direction_tti(slices, /*uplink=*/false, now, rng, scratch);
    return {scratch.delivered_bits, scratch.tb_total, scratch.tb_err};
  }
};

struct ChannelSpec {
  double sigma = 0.0;
  double rho = 0.9;
  int cqi_lag = 0;
  int harq_rtt = 1;
};

/// Drive batch and scalar populations TTI by TTI off two identically-seeded
/// RNGs and demand bitwise-equal outcomes at every step.
void expect_equivalent(std::size_t n, int budget_prbs, const ChannelSpec& ch,
                       int mcs_offset, int ttis, std::uint64_t seed) {
  const atlas::env::NetworkProfile profile = atlas::env::simulator_profile();
  lte::RadioParams dl = profile.dl;
  dl.harq_rtt_ttis = ch.harq_rtt;
  lte::RadioParams ul = profile.ul;

  Arena arena;
  const ArenaScope scope(arena);
  lte::UeBatch batch(arena, n, dl, 2.0, ch.sigma, ch.rho, ch.cqi_lag);
  ScalarBackground scalar(n, ul, dl, 2.0, ch.sigma, ch.rho, ch.cqi_lag, budget_prbs);

  Rng batch_rng(seed);
  Rng scalar_rng(seed);
  // The scheduler grants at most kTotalPrbs; mirror the cap the scalar
  // scheduler applies so both sides see the same budget.
  const int budget = std::min(budget_prbs, lte::kTotalPrbs);
  lte::BatchTtiStats got;
  for (int t = 0; t < ttis; ++t) {
    const double now = static_cast<double>(t) * lte::kTtiMs;
    batch.step_fading(batch_rng);
    scalar.step_fading(scalar_rng);
    // mcs_offset rides on the batch call; give the scalar slice the same.
    scalar.slices[0].mcs_offset_dl = mcs_offset;
    batch.run_dl_tti(now, budget, mcs_offset, batch_rng, got);
    const lte::BatchTtiStats want = scalar.run_dl_tti(now, scalar_rng);
    ASSERT_EQ(got.tb_total, want.tb_total) << "tti " << t;
    ASSERT_EQ(got.tb_err, want.tb_err) << "tti " << t;
    // Bitwise: the batch accumulates delivered bits in the scalar's
    // left-to-right order, so even the rounding must agree.
    ASSERT_EQ(got.delivered_bits, want.delivered_bits) << "tti " << t;
  }
  // After the walk the two RNGs must be in the same state: the batch drew
  // exactly the scalar engine's sequence, no more, no fewer.
  ASSERT_EQ(batch_rng.next_u64(), scalar_rng.next_u64());
}

TEST(UeBatch, StaticChannelFullGrantMatchesScalar) {
  // 16 UEs on 50 PRBs: everyone granted (per_ue=3, extra=2), fading off —
  // the simulator profile's steady-state fast path.
  expect_equivalent(16, 50, {}, 0, 2000, 11);
}

TEST(UeBatch, StaticChannelPartialGrantMatchesScalar) {
  // 64 UEs on 20 PRBs: only the first 20 get a grant (per_ue=0), the rest
  // must not draw — the bg64/bg256 scheduling shape.
  expect_equivalent(64, 20, {}, 0, 2000, 13);
}

TEST(UeBatch, FadingCqiLagHarqMatchesScalar) {
  // The real-network channel: AR(1) fading, 2-TTI-stale CQI, 3-TTI HARQ
  // round trip — exercises the per-TTI refresh and the blocked slow path.
  expect_equivalent(64, 30, {2.5, 0.9, 2, 3}, 0, 1500, 17);
}

TEST(UeBatch, McsOffsetAndSmallBudgetMatchScalar) {
  expect_equivalent(8, 5, {2.5, 0.9, 1, 2}, 3, 1000, 19);
}

TEST(UeBatch, SingleUeMatchesScalar) { expect_equivalent(1, 50, {2.5, 0.9, 2, 3}, 0, 1000, 23); }

TEST(UeBatch, FadingStateMatchesScalarBitwise) {
  // Fading trajectories themselves (not just scheduler outcomes) must be
  // bit-identical per UE per TTI. Reference: N standalone FadingProcess
  // objects stepped in ascending-UE order, the scalar engine's exact walk.
  const atlas::env::NetworkProfile profile = atlas::env::simulator_profile();
  Arena arena;
  const ArenaScope scope(arena);
  const std::size_t n = 32;
  lte::UeBatch batch(arena, n, profile.dl, 2.0, 2.5, 0.9, 2);
  std::vector<lte::FadingProcess> reference(n, lte::FadingProcess(2.5, 0.9));
  Rng a(99), b(99);
  for (int t = 0; t < 500; ++t) {
    batch.step_fading(a);
    for (auto& f : reference) f.step(b);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(batch.fading_db(i), reference[i].value()) << "tti " << t << " ue " << i;
    }
  }
  ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(UeBatch, EmptyBatchDrawsNothing) {
  Arena arena;
  const ArenaScope scope(arena);
  lte::UeBatch batch;  // default-constructed: no UEs, no arena
  Rng rng(7), untouched(7);
  batch.step_fading(rng);
  lte::BatchTtiStats out;
  batch.run_dl_tti(0.0, 50, 0, rng, out);
  EXPECT_EQ(out.tb_total, 0);
  EXPECT_EQ(out.tb_err, 0);
  EXPECT_EQ(out.delivered_bits, 0.0);
  EXPECT_EQ(rng.next_u64(), untouched.next_u64());  // no hidden draws
}

TEST(UeBatch, ZeroBudgetDrawsNothing) {
  const atlas::env::NetworkProfile profile = atlas::env::simulator_profile();
  Arena arena;
  const ArenaScope scope(arena);
  lte::UeBatch batch(arena, 8, profile.dl, 2.0, 0.0, 0.9, 0);
  Rng rng(7), untouched(7);
  lte::BatchTtiStats out;
  batch.run_dl_tti(0.0, 0, 0, rng, out);
  EXPECT_EQ(out.tb_total, 0);
  EXPECT_EQ(rng.next_u64(), untouched.next_u64());
}

TEST(UeBatch, ArenaResetReuseIsBitIdentical) {
  // Episode-after-episode on one worker arena: build, sweep, reset, build
  // again — the second pass reuses the recycled slab and must reproduce the
  // first bit-for-bit (and without growing the arena).
  const atlas::env::NetworkProfile profile = atlas::env::simulator_profile();
  Arena arena;
  auto sweep = [&] {
    const ArenaScope scope(arena);
    lte::UeBatch batch(arena, 64, profile.dl, 2.0, 2.5, 0.9, 2);
    Rng rng(41);
    lte::BatchTtiStats out;
    double delivered = 0.0;
    int tb = 0, err = 0;
    for (int t = 0; t < 400; ++t) {
      batch.step_fading(rng);
      batch.run_dl_tti(static_cast<double>(t) * lte::kTtiMs, 30, 0, rng, out);
      delivered += out.delivered_bits;
      tb += out.tb_total;
      err += out.tb_err;
    }
    return std::tuple{delivered, tb, err, rng.next_u64()};
  };
  const auto first = sweep();
  const std::size_t warm_capacity = arena.capacity();
  EXPECT_EQ(arena.bytes_in_use(), 0u) << "scope exit must reset the arena";
  const auto second = sweep();
  EXPECT_EQ(first, second);
  EXPECT_EQ(arena.capacity(), warm_capacity) << "warm arena must not grow";
}

TEST(UeBatch, ArenaGrowsAndResetsToLargestSlab) {
  Arena arena;
  void* a = arena.allocate(100, 8);
  ASSERT_NE(a, nullptr);
  EXPECT_GE(arena.capacity(), 100u);
  // Force growth past the first slab.
  (void)arena.allocate(3 * 1024 * 1024, 8);
  const std::size_t grown = arena.capacity();
  EXPECT_GE(grown, 3 * 1024 * 1024 + 100u);
  EXPECT_GE(arena.high_water(), 3 * 1024 * 1024 + 100u);
  arena.reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_LT(arena.capacity(), grown);  // only the largest slab survives
  EXPECT_GE(arena.capacity(), 3 * 1024 * 1024u);
  // And the surviving slab serves the same demand without growing again.
  (void)arena.allocate(3 * 1024 * 1024, 8);
  EXPECT_GE(arena.capacity(), 3 * 1024 * 1024u);
}

TEST(UeBatch, EpisodeWithBackgroundTierIsDeterministic) {
  // End to end through run_episode: repeated executions (fresh thread-local
  // arena state vs warm) must agree exactly — the property the golden-hash
  // suite pins against the pre-rewrite capture.
  atlas::env::SliceConfig config;
  config.bandwidth_ul = 30;
  config.bandwidth_dl = 30;
  atlas::env::Workload wl;
  wl.traffic = 2;
  wl.duration_ms = 3000.0;
  wl.extra_users = 16;
  wl.seed = 77;
  const auto profile = atlas::env::simulator_profile();
  const auto first = atlas::env::run_episode(profile, config, wl);
  const auto second = atlas::env::run_episode(profile, config, wl);
  ASSERT_EQ(first.latencies_ms.size(), second.latencies_ms.size());
  for (std::size_t i = 0; i < first.latencies_ms.size(); ++i) {
    ASSERT_EQ(first.latencies_ms[i], second.latencies_ms[i]);
  }
  EXPECT_EQ(first.dl_tb_total, second.dl_tb_total);
  EXPECT_EQ(first.dl_tb_err, second.dl_tb_err);
  EXPECT_GT(first.dl_tb_total, 0);
}

}  // namespace
