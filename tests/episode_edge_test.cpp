#include <gtest/gtest.h>

#include <cmath>

#include "env/environment.hpp"

namespace ae = atlas::env;

// Edge-of-envelope episodes: the simulator must stay well-defined (no hangs,
// no NaNs, sane accounting) at the extremes of the configuration and
// workload spaces that Bayesian optimization will inevitably probe.

TEST(EpisodeEdge, MinimalConfigurationStillRuns) {
  ae::Simulator sim;
  ae::SliceConfig starved;
  starved.bandwidth_ul = 0;     // clamped to the 6-PRB connectivity floor
  starved.bandwidth_dl = 0;     // clamped to 3
  starved.mcs_offset_ul = 10;   // maximally conservative MCS
  starved.mcs_offset_dl = 10;
  starved.backhaul_mbps = 0;    // residual meter trickle
  starved.cpu_ratio = 0;        // residual docker share
  ae::Workload wl;
  wl.duration_ms = 20000.0;
  wl.seed = 2;
  const auto result = sim.run(starved, wl);
  // The slice crawls but must not wedge: QoE is (very) low, not undefined.
  EXPECT_LE(result.qoe(300.0), 0.3);
  for (double l : result.latencies_ms) {
    ASSERT_GT(l, 0.0);
    ASSERT_TRUE(std::isfinite(l));
  }
}

TEST(EpisodeEdge, VeryShortEpisodeCompletesNothingGracefully) {
  ae::Simulator sim;
  ae::Workload wl;
  wl.duration_ms = 5.0;  // shorter than any frame's pipeline
  const auto result = sim.run(ae::SliceConfig{}, wl);
  EXPECT_EQ(result.frames_completed, 0u);
  EXPECT_DOUBLE_EQ(result.qoe(300.0), 0.0);  // outage semantics
}

TEST(EpisodeEdge, UplinkTransportBlocksAtLeastOnePerFrame) {
  ae::Simulator sim;
  ae::Workload wl;
  wl.duration_ms = 10000.0;
  wl.seed = 5;
  const auto result = sim.run(ae::SliceConfig{}, wl);
  EXPECT_GE(result.ul_tb_total, static_cast<int>(result.frames_completed));
  EXPECT_GE(result.dl_tb_total, static_cast<int>(result.frames_completed));
  EXPECT_LE(result.ul_tb_err, result.ul_tb_total);
}

TEST(EpisodeEdge, ExtremeDistanceDegradesButStaysAlive) {
  ae::RealNetwork real;
  ae::Workload wl;
  wl.duration_ms = 20000.0;
  wl.distance_m = 10.0;
  wl.seed = 7;
  const auto result = real.run(ae::SliceConfig{}, wl);
  // At 10 m the real link crawls, but frames still complete (paper Fig. 10
  // measures discrepancy there, so both sides must produce samples).
  EXPECT_GT(result.frames_completed, 5u);
}

TEST(EpisodeEdge, RandomWalkMobilityRuns) {
  ae::RealNetwork real;
  ae::Workload wl;
  wl.duration_ms = 10000.0;
  wl.random_walk = true;
  wl.seed = 11;
  const auto result = real.run(ae::SliceConfig{}, wl);
  EXPECT_GT(result.frames_completed, 10u);
}

TEST(EpisodeEdge, TracingUnderHeavyTraffic) {
  ae::RealNetwork real;
  ae::Workload wl;
  wl.duration_ms = 10000.0;
  wl.traffic = 4;
  wl.collect_traces = true;
  wl.seed = 13;
  const auto result = real.run(ae::SliceConfig{}, wl);
  ASSERT_EQ(result.traces.size(), result.frames_completed);
  for (const auto& t : result.traces) {
    ASSERT_GE(t.queueing(), -1e-9);
    ASSERT_GT(t.compute(), 0.0);
  }
}

TEST(EpisodeEdge, MaxMcsOffsetsOnlySlowTheSlice) {
  ae::Simulator sim;
  ae::SliceConfig plain;
  ae::SliceConfig offset = plain;
  offset.mcs_offset_ul = 10;
  offset.mcs_offset_dl = 10;
  ae::Workload wl;
  wl.duration_ms = 10000.0;
  wl.seed = 17;
  EXPECT_GT(sim.run(offset, wl).latency_summary().mean,
            sim.run(plain, wl).latency_summary().mean);
}

TEST(EpisodeEdge, FractionalPrbConfigsRound) {
  ae::Simulator sim;
  ae::SliceConfig frac;
  frac.bandwidth_ul = 9.4;   // rounds to 9
  frac.bandwidth_dl = 3.6;   // rounds to 4
  frac.mcs_offset_ul = 0.49; // rounds to 0
  ae::Workload wl;
  wl.duration_ms = 6000.0;
  EXPECT_GT(sim.run(frac, wl).frames_completed, 10u);
}
