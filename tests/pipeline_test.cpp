#include <gtest/gtest.h>

#include "atlas/pipeline.hpp"
#include "common/thread_pool.hpp"

namespace ac = atlas::core;
namespace ae = atlas::env;

namespace {

ac::PipelineOptions tiny_pipeline() {
  ac::PipelineOptions po;
  po.stage1.iterations = 8;
  po.stage1.init_iterations = 3;
  po.stage1.parallel = 3;
  po.stage1.candidates = 150;
  po.stage1.real_episodes = 1;
  po.stage1.workload.duration_ms = 4000.0;
  po.stage1.bnn.sizes = {7, 16, 16, 1};
  po.stage1.train_epochs = 2;
  po.stage2.iterations = 10;
  po.stage2.init_iterations = 4;
  po.stage2.parallel = 3;
  po.stage2.candidates = 200;
  po.stage2.workload.duration_ms = 4000.0;
  po.stage2.bnn.sizes = {8, 16, 16, 1};
  po.stage2.train_epochs = 2;
  po.stage3.iterations = 5;
  po.stage3.inner_updates = 2;
  po.stage3.candidates = 150;
  po.stage3.workload.duration_ms = 4000.0;
  return po;
}

}  // namespace

TEST(Pipeline, FullRunProducesAllTraces) {
  ae::RealNetwork real;
  atlas::common::ThreadPool pool(2);
  ac::AtlasPipeline pipeline(real, tiny_pipeline(), &pool);
  const auto result = pipeline.run();
  EXPECT_FALSE(result.calibration.history.empty());
  EXPECT_FALSE(result.offline.history.empty());
  EXPECT_EQ(result.online.history.size(), 5u);
  // The calibrated simulator must not be worse than the original.
  EXPECT_LE(result.calibration.best_kl, result.calibration.original_kl);
}

TEST(Pipeline, NoStage1SkipsCalibration) {
  ae::RealNetwork real;
  auto po = tiny_pipeline();
  po.run_stage1 = false;
  ac::AtlasPipeline pipeline(real, po);
  const auto result = pipeline.run();
  EXPECT_TRUE(result.calibration.history.empty());
  EXPECT_FALSE(result.offline.history.empty());
  EXPECT_EQ(result.online.history.size(), 5u);
}

TEST(Pipeline, NoStage2UsesGpWholeOnline) {
  ae::RealNetwork real;
  auto po = tiny_pipeline();
  po.run_stage2 = false;
  ac::AtlasPipeline pipeline(real, po);
  const auto result = pipeline.run();
  EXPECT_TRUE(result.offline.history.empty());
  EXPECT_EQ(result.online.history.size(), 5u);
}

TEST(Pipeline, NoStage3RepeatsOfflineOptimum) {
  ae::RealNetwork real;
  auto po = tiny_pipeline();
  po.run_stage3 = false;
  ac::AtlasPipeline pipeline(real, po);
  const auto result = pipeline.run();
  ASSERT_EQ(result.online.history.size(), po.stage3.iterations);
  const auto expected = result.offline.policy.best_config.to_vec();
  for (const auto& step : result.online.history) {
    const auto got = step.config.to_vec();
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_DOUBLE_EQ(got[i], expected[i]);
    }
  }
}
