#include <gtest/gtest.h>

#include "env/env_service.hpp"
#include "atlas/pipeline.hpp"

namespace ac = atlas::core;
namespace ae = atlas::env;

namespace {

ac::PipelineOptions tiny_pipeline() {
  ac::PipelineOptions po;
  po.stage1.iterations = 8;
  po.stage1.init_iterations = 3;
  po.stage1.parallel = 3;
  po.stage1.candidates = 150;
  po.stage1.real_episodes = 1;
  po.stage1.workload.duration_ms = 4000.0;
  po.stage1.bnn.sizes = {7, 16, 16, 1};
  po.stage1.train_epochs = 2;
  po.stage2.iterations = 10;
  po.stage2.init_iterations = 4;
  po.stage2.parallel = 3;
  po.stage2.candidates = 200;
  po.stage2.workload.duration_ms = 4000.0;
  po.stage2.bnn.sizes = {8, 16, 16, 1};
  po.stage2.train_epochs = 2;
  po.stage3.iterations = 5;
  po.stage3.inner_updates = 2;
  po.stage3.candidates = 150;
  po.stage3.workload.duration_ms = 4000.0;
  return po;
}

}  // namespace

TEST(Pipeline, FullRunProducesAllTraces) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto real = service.add_real_network();
  ac::AtlasPipeline pipeline(service, real, tiny_pipeline());
  const auto result = pipeline.run();
  EXPECT_FALSE(result.calibration.history.empty());
  EXPECT_FALSE(result.offline.history.empty());
  EXPECT_EQ(result.online.history.size(), 5u);
  // The calibrated simulator must not be worse than the original.
  EXPECT_LE(result.calibration.best_kl, result.calibration.original_kl);
  // EnvService accounting is observable from the result: the only metered
  // interactions are D_r collection (1 episode) plus stage 3's loop.
  EXPECT_EQ(result.env_stats.online_queries, 1u + result.online.history.size());
  EXPECT_GT(result.env_stats.offline_queries, 0u);
}

TEST(Pipeline, RepeatedRunsReportPerRunStats) {
  // Pipelines share long-lived services; env_stats must cover one run only.
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto real = service.add_real_network();
  auto po = tiny_pipeline();
  po.run_stage1 = false;
  po.run_stage2 = false;  // keep the re-run cheap: stage 3 only (kGpWhole)
  ac::AtlasPipeline pipeline(service, real, po);
  const auto first = pipeline.run();
  const auto second = pipeline.run();
  EXPECT_EQ(first.env_stats.online_queries, first.online.history.size());
  EXPECT_EQ(second.env_stats.online_queries, second.online.history.size());
}

TEST(Pipeline, ProgressCallbackSeesEveryStage) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto real = service.add_real_network();
  auto po = tiny_pipeline();
  po.run_stage1 = false;  // skipped stages emit a single skipped event
  ac::AtlasPipeline pipeline(service, real, po);
  std::vector<ac::PipelineProgress> events;
  pipeline.run([&](const ac::PipelineProgress& p) { events.push_back(p); });
  // stage1 skipped (1 event) + stage2 start/finish + stage3 start/finish.
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].stage, ac::PipelineStage::kCalibration);
  EXPECT_TRUE(events[0].skipped);
  EXPECT_EQ(events[1].stage, ac::PipelineStage::kOfflineTraining);
  EXPECT_FALSE(events[1].finished);
  EXPECT_TRUE(events[2].finished);
  EXPECT_EQ(events[3].stage, ac::PipelineStage::kOnlineLearning);
  // Online exposure only accumulates once stage 3 runs.
  EXPECT_EQ(events[3].env_stats.online_queries, 0u);
  EXPECT_EQ(events[4].env_stats.online_queries, po.stage3.iterations);
}

TEST(Pipeline, NoStage1SkipsCalibration) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto real = service.add_real_network();
  auto po = tiny_pipeline();
  po.run_stage1 = false;
  ac::AtlasPipeline pipeline(service, real, po);
  const auto result = pipeline.run();
  EXPECT_TRUE(result.calibration.history.empty());
  EXPECT_FALSE(result.offline.history.empty());
  EXPECT_EQ(result.online.history.size(), 5u);
}

TEST(Pipeline, NoStage2UsesGpWholeOnline) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto real = service.add_real_network();
  auto po = tiny_pipeline();
  po.run_stage2 = false;
  ac::AtlasPipeline pipeline(service, real, po);
  const auto result = pipeline.run();
  EXPECT_TRUE(result.offline.history.empty());
  EXPECT_EQ(result.online.history.size(), 5u);
}

TEST(Pipeline, NoStage3RepeatsOfflineOptimum) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto real = service.add_real_network();
  auto po = tiny_pipeline();
  po.run_stage3 = false;
  ac::AtlasPipeline pipeline(service, real, po);
  const auto result = pipeline.run();
  ASSERT_EQ(result.online.history.size(), po.stage3.iterations);
  const auto expected = result.offline.policy.best_config.to_vec();
  for (const auto& step : result.online.history) {
    const auto got = step.config.to_vec();
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_DOUBLE_EQ(got[i], expected[i]);
    }
  }
}
