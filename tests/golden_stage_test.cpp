// Golden-stage determinism tests: pin the exact bit-level RESULTS of the
// three Atlas stages and the baselines under the default (`fresh`) seed
// policy. The seed-planning subsystem (src/env/seed_plan.hpp) rewired every
// stage's episode seeding through a SeedPlan; these hashes were captured
// from the pre-SeedPlan ad-hoc counters, so they prove the `fresh` policy is
// bit-identical to the historical behavior — common random numbers are
// strictly opt-in.
//
// To (re)capture after an *intentional* behavior change, run with
// ATLAS_GOLDEN_PRINT=1 and paste the emitted table over the expected hashes.
//
// Like golden_episode_test, the pinned hashes are toolchain-anchored;
// ATLAS_GOLDEN_TOOLCHAIN_LENIENT=1 swaps the pinned-hash assertion for a
// cross-run determinism assertion (the same stage run twice from a fresh
// service must hash identically).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "atlas/calibrator.hpp"
#include "atlas/offline_trainer.hpp"
#include "atlas/online_learner.hpp"
#include "baselines/dlda.hpp"
#include "baselines/gp_baseline.hpp"
#include "baselines/virtual_edge.hpp"
#include "env/env_service.hpp"

namespace ae = atlas::env;
namespace ac = atlas::core;
namespace ab = atlas::baselines;

namespace {

struct Fnv {
  std::uint64_t h = 1469598103934665603ULL;
  void add_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  void add_double(double d) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    add_u64(bits);
  }
  void add_vec(const atlas::math::Vec& v) {
    add_u64(v.size());
    for (double x : v) add_double(x);
  }
};

ae::Workload short_workload() {
  ae::Workload wl;
  wl.duration_ms = 2500.0;
  wl.seed = 1;
  return wl;
}

ac::CalibrationOptions stage1_options() {
  ac::CalibrationOptions o;
  o.iterations = 5;
  o.init_iterations = 2;
  o.parallel = 3;
  o.candidates = 120;
  o.real_episodes = 1;
  o.workload = short_workload();
  o.bnn.sizes = {7, 12, 12, 1};
  o.train_epochs = 2;
  return o;
}

ac::OfflineOptions stage2_options() {
  ac::OfflineOptions o;
  o.iterations = 6;
  o.init_iterations = 3;
  o.parallel = 3;
  o.candidates = 120;
  o.workload = short_workload();
  o.bnn.sizes = {8, 12, 12, 1};
  o.train_epochs = 2;
  return o;
}

ac::OnlineOptions stage3_options() {
  ac::OnlineOptions o;
  o.iterations = 4;
  o.inner_updates = 2;
  o.candidates = 120;
  o.workload = short_workload();
  return o;
}

std::uint64_t hash_stage1() {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto real = service.add_real_network();
  ac::SimCalibrator calibrator(service, real, stage1_options());
  const auto result = calibrator.calibrate();

  Fnv f;
  f.add_double(result.original_kl);
  f.add_double(result.best_kl);
  f.add_double(result.best_distance);
  f.add_double(result.best_weighted);
  f.add_vec(result.best_params.to_vec());
  f.add_u64(result.history.size());
  for (const auto& step : result.history) {
    f.add_vec(step.params.to_vec());
    f.add_double(step.kl);
    f.add_double(step.distance);
    f.add_double(step.weighted);
  }
  f.add_vec(result.avg_weighted_per_iter);
  return f.h;
}

std::uint64_t hash_stage2_with(std::size_t speculate_top_k) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator();
  ac::OfflineOptions options = stage2_options();
  options.speculate_top_k = speculate_top_k;
  ac::OfflineTrainer trainer(service, sim, options);
  const auto result = trainer.train();

  Fnv f;
  f.add_vec(result.policy.best_config.to_vec());
  f.add_double(result.policy.best_usage);
  f.add_double(result.policy.best_qoe);
  f.add_double(result.policy.final_lambda);
  f.add_u64(result.history.size());
  for (const auto& step : result.history) {
    f.add_vec(step.config.to_vec());
    f.add_double(step.usage);
    f.add_double(step.qoe);
    f.add_double(step.lambda);
  }
  f.add_vec(result.trace.avg_usage);
  f.add_vec(result.trace.avg_qoe);
  f.add_vec(result.trace.lambda);
  return f.h;
}

std::uint64_t hash_stage2() { return hash_stage2_with(0); }

std::uint64_t hash_stage3_with(std::size_t speculate_top_k) {
  // A micro stage-2 run supplies the offline policy (kGpResidual needs one),
  // then the online learner runs with offline acceleration so the real, the
  // residual-sim, and the inner-update seed streams are all exercised.
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator();
  const auto real = service.add_real_network();
  ac::OfflineOptions offline = stage2_options();
  offline.iterations = 4;
  offline.speculate_top_k = speculate_top_k;
  ac::OfflineTrainer trainer(service, sim, offline);
  const auto offline_result = trainer.train();

  ac::OnlineOptions online = stage3_options();
  online.speculate_top_k = speculate_top_k;
  ac::OnlineLearner learner(&offline_result.policy, service, sim, real, online);
  const auto result = learner.learn();

  Fnv f;
  f.add_double(result.final_lambda);
  f.add_u64(result.history.size());
  for (const auto& step : result.history) {
    f.add_vec(step.config.to_vec());
    f.add_double(step.usage);
    f.add_double(step.qoe_real);
    f.add_double(step.qoe_sim);
    f.add_double(step.lambda);
    f.add_double(step.beta);
  }
  return f.h;
}

std::uint64_t hash_stage3() { return hash_stage3_with(0); }

std::uint64_t hash_trace(const ab::OnlineTrace& trace) {
  Fnv f;
  f.add_u64(trace.configs.size());
  for (const auto& c : trace.configs) f.add_vec(c.to_vec());
  f.add_vec(trace.usage);
  f.add_vec(trace.qoe);
  return f.h;
}

std::uint64_t hash_gp_baseline() {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto real = service.add_real_network();
  ab::GpBaselineOptions o;
  o.iterations = 5;
  o.init_samples = 3;
  o.candidates = 150;
  o.workload = short_workload();
  ab::GpBaseline baseline(service, real, o);
  return hash_trace(baseline.learn());
}

std::uint64_t hash_virtual_edge() {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto real = service.add_real_network();
  ab::VirtualEdgeOptions o;
  o.iterations = 5;
  o.workload = short_workload();
  ab::VirtualEdge baseline(service, real, o);
  return hash_trace(baseline.learn());
}

std::uint64_t hash_dlda() {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator();
  const auto real = service.add_real_network();
  ab::DldaOptions o;
  o.grid_per_dim = 2;
  o.hidden = {16, 16};
  o.teacher_epochs = 30;
  o.select_samples = 300;
  o.online_iterations = 3;
  o.workload = short_workload();
  ab::Dlda dlda(service, sim, o);
  (void)dlda.train_offline();
  Fnv f;
  f.add_u64(hash_trace(dlda.learn_online(real)));
  atlas::math::Rng rng(3);
  f.add_vec(dlda.select_offline(rng).to_vec());
  return f.h;
}

struct StageCase {
  const char* name;
  std::uint64_t (*run)();
  std::uint64_t expected;
};

// Captured from the pre-SeedPlan stages (commit de8df1f) on this container;
// regenerate with ATLAS_GOLDEN_PRINT=1.
const StageCase kGolden[] = {
    {"stage1_calibration", &hash_stage1, 0xc60b74d074a0bc4cULL},
    {"stage2_offline", &hash_stage2, 0x1488495bbbca603fULL},
    {"stage3_online", &hash_stage3, 0x58f683cdc46d9a7cULL},
    {"baseline_gp", &hash_gp_baseline, 0xb18f17099f7d3329ULL},
    {"baseline_virtual_edge", &hash_virtual_edge, 0x6c8b0c645db9a0e0ULL},
    {"baseline_dlda", &hash_dlda, 0xa9dcd426e33fd7a8ULL},
};

bool print_mode() { return std::getenv("ATLAS_GOLDEN_PRINT") != nullptr; }
bool lenient_mode() { return std::getenv("ATLAS_GOLDEN_TOOLCHAIN_LENIENT") != nullptr; }

}  // namespace

TEST(GoldenStage, FreshPolicyBitIdenticalToPreSeedPlanStages) {
  for (const auto& c : kGolden) {
    const std::uint64_t h = c.run();
    if (print_mode()) {
      std::printf("stage %-24s 0x%016llx\n", c.name, static_cast<unsigned long long>(h));
      continue;
    }
    if (lenient_mode()) {
      EXPECT_EQ(h, c.run()) << c.name << " (cross-run determinism)";
      continue;
    }
    EXPECT_EQ(h, c.expected) << c.name;
  }
}

TEST(GoldenStage, SpeculativePrefetchingIsBitIdenticalOnAndOff) {
  // The tentpole's determinism contract, both directions: with speculation
  // OFF the stages hash to today's pinned values (covered above — the TopK
  // refactor of the acquisition scans changed no result), and with
  // speculation ON every stage result is bit-identical to OFF. Speculation
  // only moves episode execution EARLIER under the same seed plan; it never
  // touches the optimizer's RNG, and cancelled speculations never enter the
  // memo table. Computed-vs-computed, so this holds under the lenient
  // toolchain mode too.
  if (print_mode()) GTEST_SKIP() << "hash-capture run";
  EXPECT_EQ(hash_stage2_with(4), hash_stage2_with(0)) << "stage2 speculation must be invisible";
  EXPECT_EQ(hash_stage3_with(4), hash_stage3_with(0)) << "stage3 speculation must be invisible";
}
