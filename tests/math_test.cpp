#include <gtest/gtest.h>

#include <cmath>

#include "math/linalg.hpp"
#include "math/matrix.hpp"
#include "math/rng.hpp"
#include "math/stats.hpp"

namespace am = atlas::math;

TEST(Matrix, ConstructionAndIndexing) {
  am::Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, InitializerListAndTranspose) {
  am::Matrix m{{1, 2, 3}, {4, 5, 6}};
  const am::Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((am::Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, MatmulMatchesHandComputation) {
  am::Matrix a{{1, 2}, {3, 4}};
  am::Matrix b{{5, 6}, {7, 8}};
  const am::Matrix c = am::matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatvecAndTransposeMatvec) {
  am::Matrix a{{1, 2, 3}, {4, 5, 6}};
  const am::Vec y = am::matvec(a, {1, 1, 1});
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
  const am::Vec z = am::matvec_t(a, {1, 1});
  EXPECT_DOUBLE_EQ(z[0], 5.0);
  EXPECT_DOUBLE_EQ(z[2], 9.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  am::Matrix a(2, 3);
  am::Matrix b(2, 3);
  EXPECT_THROW(am::matmul(a, b), std::invalid_argument);
  EXPECT_THROW(am::matvec(a, {1.0, 2.0}), std::invalid_argument);
}

TEST(Linalg, CholeskyRoundTrip) {
  // A = L0 L0^T with a known L0.
  am::Matrix l0{{2, 0, 0}, {1, 3, 0}, {0.5, -1, 1.5}};
  const am::Matrix a = am::matmul(l0, l0.transposed());
  const am::Matrix l = am::cholesky(a);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      EXPECT_NEAR(l(i, j), l0(i, j), 1e-12);
    }
  }
}

TEST(Linalg, CholeskyRejectsIndefinite) {
  am::Matrix a{{1, 2}, {2, 1}};  // eigenvalues 3, -1
  EXPECT_THROW(am::cholesky(a), std::runtime_error);
}

TEST(Linalg, JitteredCholeskyRepairsNearSingular) {
  am::Matrix a{{1, 1}, {1, 1}};  // PSD but singular
  const am::Matrix l = am::cholesky_jittered(a);
  EXPECT_GT(l(0, 0), 0.0);
  EXPECT_GT(l(1, 1), 0.0);
}

TEST(Linalg, CholeskySolveMatchesDirect) {
  am::Matrix l0{{1.5, 0}, {0.3, 2.0}};
  const am::Matrix a = am::matmul(l0, l0.transposed());
  const am::Vec b{1.0, -2.0};
  const am::Vec x = am::cholesky_solve(am::cholesky(a), b);
  const am::Vec back = am::matvec(a, x);
  EXPECT_NEAR(back[0], b[0], 1e-10);
  EXPECT_NEAR(back[1], b[1], 1e-10);
}

TEST(Linalg, LogDetFromCholesky) {
  am::Matrix a{{4, 0}, {0, 9}};
  EXPECT_NEAR(am::log_det_from_cholesky(am::cholesky(a)), std::log(36.0), 1e-12);
}

TEST(Linalg, GaussianEliminationSolves) {
  am::Matrix a{{0, 2, 1}, {3, -1, 2}, {1, 1, 1}};  // needs pivoting (a00 = 0)
  const am::Vec b{4, 5, 6};
  const am::Vec x = am::solve_linear(a, b);
  const am::Vec back = am::matvec(am::Matrix{{0, 2, 1}, {3, -1, 2}, {1, 1, 1}}, x);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(back[i], b[i], 1e-9);
}

TEST(Linalg, SingularSystemThrows) {
  am::Matrix a{{1, 2}, {2, 4}};
  EXPECT_THROW(am::solve_linear(a, {1.0, 2.0}), std::runtime_error);
}

TEST(Rng, Determinism) {
  am::Rng a(42);
  am::Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkIndependence) {
  am::Rng parent(42);
  am::Rng c1 = parent.fork(1);
  am::Rng c2 = parent.fork(2);
  // Children with different salts produce different streams.
  EXPECT_NE(c1.next_u64(), c2.next_u64());
  // Forking is deterministic.
  am::Rng c1b = parent.fork(1);
  c1 = parent.fork(1);
  EXPECT_EQ(c1.next_u64(), c1b.next_u64());
}

TEST(Rng, UniformRangeAndMean) {
  am::Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform(2.0, 4.0);
    ASSERT_GE(u, 2.0);
    ASSERT_LT(u, 4.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 3.0, 0.02);
}

TEST(Rng, NormalMoments) {
  am::Rng rng(11);
  am::RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, GammaMoments) {
  am::Rng rng(13);
  // Gamma(k, theta): mean k*theta, var k*theta^2.
  const double k = 3.0;
  const double theta = 2.0;
  am::RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.gamma(k, theta));
  EXPECT_NEAR(stats.mean(), k * theta, 0.1);
  EXPECT_NEAR(stats.variance(), k * theta * theta, 0.5);
}

TEST(Rng, GammaSmallShape) {
  am::Rng rng(17);
  am::RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    const double g = rng.gamma(0.5, 1.0);
    ASSERT_GE(g, 0.0);
    stats.add(g);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.03);
}

TEST(Rng, ExponentialMean) {
  am::Rng rng(19);
  am::RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(7.0));
  EXPECT_NEAR(stats.mean(), 7.0, 0.15);
}

TEST(Rng, TruncatedNormalRespectsBounds) {
  am::Rng rng(23);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.truncated_normal(81.0, 35.0, 10.0, 400.0);
    ASSERT_GE(v, 10.0);
    ASSERT_LE(v, 400.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  am::Rng rng(29);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(3, 5);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 5);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, PermutationIsBijection) {
  am::Rng rng(31);
  const auto p = rng.permutation(100);
  std::vector<bool> seen(100, false);
  for (auto idx : p) {
    ASSERT_LT(idx, 100u);
    ASSERT_FALSE(seen[idx]);
    seen[idx] = true;
  }
}

TEST(Stats, SummaryBasics) {
  const auto s = am::summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.variance, 5.0 / 3.0, 1e-12);
}

TEST(Stats, EmptySummaryIsZero) {
  const auto s = am::summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, QuantileInterpolation) {
  EXPECT_DOUBLE_EQ(am::quantile({1, 2, 3, 4}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(am::quantile({4, 1, 3, 2}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(am::quantile({4, 1, 3, 2}, 1.0), 4.0);
  EXPECT_THROW(am::quantile({}, 0.5), std::invalid_argument);
}

TEST(Stats, EmpiricalCdf) {
  const am::Vec v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(am::empirical_cdf_at(v, 25), 0.5);
  EXPECT_DOUBLE_EQ(am::empirical_cdf_at(v, 5), 0.0);
  EXPECT_DOUBLE_EQ(am::empirical_cdf_at(v, 100), 1.0);
}

TEST(Stats, HistogramConservesMassWithClamping) {
  // Bins of width 0.5 over [0,2): half-open binning puts 0.5 into bin 1.
  const auto h = am::make_histogram({-5.0, 0.5, 1.5, 99.0}, 0.0, 2.0, 4);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
  EXPECT_DOUBLE_EQ(h.counts.front(), 1.0);  // -5 clamped into bin 0
  EXPECT_DOUBLE_EQ(h.counts[1], 1.0);       // 0.5
  EXPECT_DOUBLE_EQ(h.counts.back(), 2.0);   // 1.5 and 99 (clamped)
}

TEST(Stats, HistogramProbabilitiesSumToOne) {
  const auto h = am::make_histogram({1, 2, 3}, 0.0, 4.0, 8);
  const auto p = h.probabilities(0.5);
  double sum = 0.0;
  for (double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Stats, RunningStatsMatchesBatch) {
  am::Rng rng(37);
  am::Vec data;
  am::RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 1.5);
    data.push_back(v);
    rs.add(v);
  }
  const auto s = am::summarize(data);
  EXPECT_NEAR(rs.mean(), s.mean, 1e-10);
  EXPECT_NEAR(rs.variance(), s.variance, 1e-8);
}

TEST(VecOps, DotNormDistance) {
  EXPECT_DOUBLE_EQ(am::dot({1, 2}, {3, 4}), 11.0);
  EXPECT_DOUBLE_EQ(am::norm2({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(am::squared_distance({1, 1}, {4, 5}), 25.0);
  EXPECT_THROW(am::dot({1.0}, {1.0, 2.0}), std::invalid_argument);
}
