#include <gtest/gtest.h>

#include "env/multi_slice.hpp"

namespace ae = atlas::env;

namespace {

ae::SliceSpec make_slice(double ul_prbs, double dl_prbs, double cpu, int traffic = 1) {
  ae::SliceSpec spec;
  spec.config.bandwidth_ul = ul_prbs;
  spec.config.bandwidth_dl = dl_prbs;
  spec.config.cpu_ratio = cpu;
  spec.config.backhaul_mbps = 50.0;
  spec.traffic = traffic;
  return spec;
}

}  // namespace

TEST(MultiSlice, PerSliceResults) {
  const auto result = ae::run_multi_slice_episode(
      ae::simulator_profile(), {make_slice(25, 25, 1.0), make_slice(25, 25, 1.0)}, 8000.0, 1);
  ASSERT_EQ(result.per_slice.size(), 2u);
  for (const auto& r : result.per_slice) {
    EXPECT_GT(r.frames_completed, 10u);
    EXPECT_GE(r.qoe(300.0), 0.0);
    EXPECT_LE(r.qoe(300.0), 1.0);
  }
}

TEST(MultiSlice, DeterministicPerSeed) {
  const std::vector<ae::SliceSpec> specs{make_slice(20, 20, 0.8), make_slice(20, 20, 0.5, 2)};
  const auto a = ae::run_multi_slice_episode(ae::real_network_profile(), specs, 6000.0, 9);
  const auto b = ae::run_multi_slice_episode(ae::real_network_profile(), specs, 6000.0, 9);
  ASSERT_EQ(a.per_slice.size(), b.per_slice.size());
  for (std::size_t s = 0; s < a.per_slice.size(); ++s) {
    ASSERT_EQ(a.per_slice[s].latencies_ms, b.per_slice[s].latencies_ms);
  }
}

TEST(MultiSlice, IsolationAcrossTenants) {
  // Slice 0's latency must be (nearly) unaffected by slice 1 going from idle
  // to heavy traffic, because PRB caps partition the carrier and each slice
  // owns its meter and edge container.
  const auto calm = ae::run_multi_slice_episode(
      ae::simulator_profile(), {make_slice(20, 20, 1.0), make_slice(20, 20, 1.0, 1)}, 10000.0,
      5);
  const auto busy = ae::run_multi_slice_episode(
      ae::simulator_profile(), {make_slice(20, 20, 1.0), make_slice(20, 20, 1.0, 4)}, 10000.0,
      5);
  const double mean_calm = calm.per_slice[0].latency_summary().mean;
  const double mean_busy = busy.per_slice[0].latency_summary().mean;
  EXPECT_NEAR(mean_busy / mean_calm, 1.0, 0.10);
  // While slice 1 itself does degrade under its own load.
  EXPECT_GT(busy.per_slice[1].latency_summary().mean,
            calm.per_slice[1].latency_summary().mean);
}

TEST(MultiSlice, EarlierSliceHasPriorityWhenOversubscribed) {
  // Caps sum to 80 UL PRBs > 50: the first slice keeps its grant.
  const auto result = ae::run_multi_slice_episode(
      ae::simulator_profile(), {make_slice(40, 40, 1.0, 4), make_slice(40, 40, 1.0, 4)},
      10000.0, 7);
  EXPECT_LT(result.per_slice[0].latency_summary().mean,
            result.per_slice[1].latency_summary().mean);
}

TEST(MultiSlice, ThreeTenantsWithDistinctConfigs) {
  const auto result = ae::run_multi_slice_episode(
      ae::real_network_profile(),
      {make_slice(10, 5, 0.9), make_slice(15, 10, 0.6, 2), make_slice(12, 8, 0.3, 1)},
      8000.0, 3);
  ASSERT_EQ(result.per_slice.size(), 3u);
  // The CPU-starved third slice is the slowest.
  EXPECT_GT(result.per_slice[2].latency_summary().mean,
            result.per_slice[0].latency_summary().mean);
}

TEST(MultiSliceEnvironment, AdapterMatchesTargetSliceOfRawEpisode) {
  // The NetworkEnvironment adapter must reproduce slice 0 of the raw
  // multi-slice runner bit-for-bit (same profile, same seed).
  const ae::SliceSpec target = make_slice(18, 12, 0.7, 2);
  const std::vector<ae::SliceSpec> background{make_slice(15, 10, 0.5)};

  std::vector<ae::SliceSpec> all{target};
  all.insert(all.end(), background.begin(), background.end());
  const auto raw = ae::run_multi_slice_episode(ae::simulator_profile(), all, 6000.0, 21);

  const ae::MultiSliceEnvironment adapter(ae::simulator_profile(), background);
  ae::Workload wl;
  wl.traffic = target.traffic;
  wl.distance_m = target.distance_m;
  wl.duration_ms = 6000.0;
  wl.seed = 21;
  const auto adapted = adapter.run(target.config, wl);

  EXPECT_EQ(adapted.latencies_ms, raw.per_slice[0].latencies_ms);
  EXPECT_EQ(adapted.frames_completed, raw.per_slice[0].frames_completed);
  EXPECT_EQ(adapter.tenant_count(), 2u);
}
