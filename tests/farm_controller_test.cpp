// FarmController unit suite: registry grouping, heartbeat-driven state
// transitions, data-plane failover/redispatch, memo migration on drain, and
// the farm view in router stats — all driven through in-process fake
// WorkerControls (no sockets), with poll_once() stepped manually so every
// transition is deterministic.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <string>
#include <utility>
#include <vector>

#include "env/farm_controller.hpp"
#include "env/shard_router.hpp"

namespace ae = atlas::env;

namespace {

/// Deterministic fake data plane: the "episode" is derived from the query
/// seed, and the whole worker can be switched to failing (execute throws)
/// via the shared flag — the same flag its heartbeats honor.
class FakeBackend final : public ae::EnvBackend {
 public:
  FakeBackend(std::string name, std::shared_ptr<std::atomic<bool>> failing,
              std::shared_ptr<std::atomic<std::uint64_t>> executed)
      : name_(std::move(name)), failing_(std::move(failing)), executed_(std::move(executed)) {}

  ae::EpisodeResult execute(const ae::EnvQuery& query) const override {
    if (failing_->load()) throw std::runtime_error(name_ + ": worker down");
    executed_->fetch_add(1);
    ae::EpisodeResult result;
    result.latencies_ms = {static_cast<double>(query.workload.seed)};
    result.frames_completed = 1;
    return result;
  }
  ae::BackendKind kind() const noexcept override { return ae::BackendKind::kOffline; }
  const std::string& name() const noexcept override { return name_; }
  bool accepts_sim_params() const noexcept override { return true; }

 private:
  std::string name_;
  std::shared_ptr<std::atomic<bool>> failing_;
  std::shared_ptr<std::atomic<std::uint64_t>> executed_;
};

class FakeWorker final : public ae::WorkerControl {
 public:
  explicit FakeWorker(std::string address, std::vector<ae::WorkerBackendInfo> backends)
      : address_(std::move(address)) {
    announce_.build = "fake-worker";
    announce_.wire_version = 4;
    announce_.backends = std::move(backends);
  }

  const std::string& address() const noexcept override { return address_; }

  ae::WorkerAnnounce hello() override {
    if (failing->load()) throw std::runtime_error(address_ + ": hello failed");
    ++hellos;
    return announce_;
  }

  ae::WorkerHealth heartbeat() override {
    ++heartbeats;
    if (failing->load()) throw std::runtime_error(address_ + ": heartbeat timeout");
    ae::WorkerHealth health;
    health.episodes = executed->load();
    return health;
  }

  std::vector<ae::MemoEntrySnapshot> export_memo(ae::BackendId remote_backend) override {
    if (failing->load()) throw std::runtime_error(address_ + ": export failed");
    exported_from.push_back(remote_backend);
    return memo;
  }

  ae::InstallResult install_backend(const ae::BackendInstallRequest& request) override {
    if (failing->load()) throw std::runtime_error(address_ + ": install failed");
    installs.push_back(request);
    ae::InstallResult result;
    result.backend = request.target_backend >= 0
                         ? static_cast<std::uint32_t>(request.target_backend)
                         : static_cast<std::uint32_t>(announce_.backends.size());
    result.imported = request.memo.size();
    return result;
  }

  std::shared_ptr<const ae::EnvBackend> make_backend(const ae::WorkerBackendInfo& info,
                                                     ae::BackendId remote_backend) override {
    return std::make_shared<FakeBackend>(info.name + "@" + address_ + "#" +
                                             std::to_string(remote_backend),
                                         failing, executed);
  }

  std::shared_ptr<std::atomic<bool>> failing = std::make_shared<std::atomic<bool>>(false);
  std::shared_ptr<std::atomic<std::uint64_t>> executed =
      std::make_shared<std::atomic<std::uint64_t>>(0);
  std::vector<ae::MemoEntrySnapshot> memo;  ///< what export_memo returns
  std::vector<ae::BackendInstallRequest> installs;
  std::vector<ae::BackendId> exported_from;
  int hellos = 0;
  int heartbeats = 0;

 private:
  std::string address_;
  ae::WorkerAnnounce announce_;
};

ae::WorkerBackendInfo sim_info(std::uint64_t digest) {
  ae::WorkerBackendInfo info;
  info.name = "sim-0";
  info.kind = ae::BackendKind::kOffline;
  info.accepts_sim_params = true;
  info.params_digest = digest;
  return info;
}

ae::EnvQuery query_with_seed(ae::BackendId backend, std::uint64_t seed) {
  ae::EnvQuery q;
  q.backend = backend;
  q.workload.duration_ms = 1000.0;
  q.workload.seed = seed;
  return q;
}

ae::MemoEntrySnapshot memo_entry(double backend, double seed) {
  ae::MemoEntrySnapshot entry;
  entry.key = {backend, seed};
  entry.result.latencies_ms = {seed};
  entry.result.frames_completed = 1;
  return entry;
}

struct Farm {
  ae::ShardRouter router{2};
  ae::FarmController controller;

  explicit Farm(ae::FarmControllerOptions options = {}) : controller(router, options) {}
};

}  // namespace

TEST(FarmController, EquivalentBackendsGroupIntoOneFailoverBackend) {
  Farm farm;
  auto a = std::make_shared<FakeWorker>("a:1", std::vector{sim_info(7)});
  auto b = std::make_shared<FakeWorker>("b:2", std::vector{sim_info(7)});
  const auto wa = farm.controller.add_worker(a);
  const auto wb = farm.controller.add_worker(b);

  // Same equivalence key -> same global id; the BackendId space grew by ONE.
  EXPECT_EQ(farm.controller.worker_backends(wa), farm.controller.worker_backends(wb));
  EXPECT_EQ(farm.router.backend_count(), 1u);
  EXPECT_EQ(a->hellos, 1);
  EXPECT_EQ(farm.controller.worker_state(wa), ae::WorkerState::kServing);
  EXPECT_EQ(farm.controller.worker_state(wb), ae::WorkerState::kServing);

  // A different digest is NOT interchangeable: new global id.
  auto c = std::make_shared<FakeWorker>("c:3", std::vector{sim_info(8)});
  farm.controller.add_worker(c);
  EXPECT_EQ(farm.router.backend_count(), 2u);

  const auto view = farm.router.stats().farm;
  EXPECT_TRUE(view.active);
  EXPECT_EQ(view.workers_joined, 3u);
  EXPECT_EQ(view.workers_serving, 3u);
}

TEST(FarmController, LateJoinerExtendsTheLiveBackendIdSpace) {
  Farm farm;
  // A local backend registered BEFORE any worker keeps its id.
  const auto local = farm.router.add_simulator();
  auto a = std::make_shared<FakeWorker>("a:1", std::vector{sim_info(7)});
  const auto wa = farm.controller.add_worker(a);
  const auto remote = farm.controller.worker_backends(wa).at(0);
  EXPECT_NE(local, remote);
  EXPECT_EQ(farm.router.backend_count(), 2u);

  // Both address spaces serve: the local simulator and the farm backend.
  const auto r = farm.router.run(query_with_seed(remote, 42));
  EXPECT_EQ(r.latencies_ms, std::vector<double>{42.0});
  (void)farm.router.run(query_with_seed(local, 1));
}

TEST(FarmController, MissedHeartbeatsEscalateSuspectThenDead) {
  ae::FarmControllerOptions options;
  options.suspect_after_misses = 1;
  options.dead_after_misses = 3;
  Farm farm(options);
  auto a = std::make_shared<FakeWorker>("a:1", std::vector{sim_info(7)});
  auto b = std::make_shared<FakeWorker>("b:2", std::vector{sim_info(7)});
  const auto wa = farm.controller.add_worker(a);
  const auto wb = farm.controller.add_worker(b);

  a->failing->store(true);
  farm.controller.poll_once();
  EXPECT_EQ(farm.controller.worker_state(wa), ae::WorkerState::kSuspect);
  EXPECT_EQ(farm.controller.worker_state(wb), ae::WorkerState::kServing);

  // Recovery clears the suspicion (and the miss counter).
  a->failing->store(false);
  farm.controller.poll_once();
  EXPECT_EQ(farm.controller.worker_state(wa), ae::WorkerState::kServing);

  a->failing->store(true);
  farm.controller.poll_once();
  farm.controller.poll_once();
  EXPECT_EQ(farm.controller.worker_state(wa), ae::WorkerState::kSuspect);
  farm.controller.poll_once();
  EXPECT_EQ(farm.controller.worker_state(wa), ae::WorkerState::kDead);

  const auto view = farm.router.stats().farm;
  EXPECT_EQ(view.workers_lost, 1u);
  EXPECT_EQ(view.workers_serving, 1u);
  EXPECT_EQ(view.workers_suspect, 0u);
  EXPECT_EQ(view.heartbeats_missed, 4u);

  // Dead workers stop being heartbeated and stop serving: episodes all land
  // on the survivor.
  const int before = a->heartbeats;
  farm.controller.poll_once();
  EXPECT_EQ(a->heartbeats, before);
  const auto backend = farm.controller.worker_backends(wb).at(0);
  (void)farm.router.run(query_with_seed(backend, 5));
  EXPECT_EQ(b->executed->load(), 1u);
  EXPECT_EQ(a->executed->load(), 0u);
}

TEST(FarmController, FaultedEpisodeRedispatchesAndMarksWorkerSuspect) {
  Farm farm;
  auto a = std::make_shared<FakeWorker>("a:1", std::vector{sim_info(7)});
  auto b = std::make_shared<FakeWorker>("b:2", std::vector{sim_info(7)});
  const auto wa = farm.controller.add_worker(a);
  const auto wb = farm.controller.add_worker(b);
  const auto backend = farm.controller.worker_backends(wa).at(0);

  a->failing->store(true);
  // Every query either lands on b directly or faults on a and re-dispatches
  // to b — never fails, and the results are the ones a would have produced.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto result = farm.router.run(query_with_seed(backend, 100 + seed));
    EXPECT_EQ(result.latencies_ms, std::vector<double>{static_cast<double>(100 + seed)});
  }
  const auto view = farm.router.stats().farm;
  EXPECT_GE(view.episodes_redispatched, 1u);
  EXPECT_EQ(b->executed->load(), 8u);
  // The data-plane fault demoted the worker without waiting for a heartbeat.
  EXPECT_EQ(farm.controller.worker_state(wa), ae::WorkerState::kSuspect);
  EXPECT_EQ(farm.controller.worker_state(wb), ae::WorkerState::kServing);
}

TEST(FarmController, DrainMigratesMemoToAnEquivalentReplica) {
  Farm farm;
  auto a = std::make_shared<FakeWorker>("a:1", std::vector{sim_info(7)});
  auto b = std::make_shared<FakeWorker>("b:2", std::vector{sim_info(7)});
  const auto wa = farm.controller.add_worker(a);
  const auto wb = farm.controller.add_worker(b);
  a->memo = {memo_entry(0.0, 11.0), memo_entry(0.0, 12.0), memo_entry(0.0, 13.0)};

  farm.controller.drain_worker(wa);

  // a's memo was exported from its local backend 0 and installed into b's
  // equivalent local backend (memo-merge: target_backend >= 0).
  ASSERT_EQ(a->exported_from.size(), 1u);
  EXPECT_EQ(a->exported_from[0], 0u);
  ASSERT_EQ(b->installs.size(), 1u);
  EXPECT_EQ(b->installs[0].target_backend, 0);
  EXPECT_EQ(b->installs[0].memo.size(), 3u);

  EXPECT_EQ(farm.controller.worker_state(wa), ae::WorkerState::kDead);
  const auto view = farm.router.stats().farm;
  EXPECT_EQ(view.workers_drained, 1u);
  EXPECT_EQ(view.workers_lost, 0u);  // graceful, not lost
  EXPECT_EQ(view.memo_entries_migrated, 3u);
  EXPECT_EQ(view.backends_migrated, 1u);

  // The drained worker serves nothing; b carries the backend alone.
  const auto backend = farm.controller.worker_backends(wa).at(0);
  (void)farm.router.run(query_with_seed(backend, 9));
  EXPECT_EQ(a->executed->load(), 0u);
  EXPECT_EQ(b->executed->load(), 1u);

  // Draining again is a no-op (idempotent on a dead worker).
  farm.controller.drain_worker(wa);
  EXPECT_EQ(a->exported_from.size(), 1u);
}

TEST(FarmController, DrainWithoutAnEquivalentHomeDropsTheMemo) {
  Farm farm;
  auto a = std::make_shared<FakeWorker>("a:1", std::vector{sim_info(7)});
  const auto wa = farm.controller.add_worker(a);
  a->memo = {memo_entry(0.0, 11.0)};

  farm.controller.drain_worker(wa);  // nowhere to put it: best-effort no-op
  const auto view = farm.router.stats().farm;
  EXPECT_EQ(view.workers_drained, 1u);
  EXPECT_EQ(view.memo_entries_migrated, 0u);
  EXPECT_EQ(view.backends_migrated, 0u);
}

TEST(FarmController, FarmCountersSurviveControllerDestruction) {
  ae::ShardRouter router(2);
  {
    ae::FarmController controller(router);
    auto a = std::make_shared<FakeWorker>("a:1", std::vector{sim_info(7)});
    controller.add_worker(a);
  }
  // The controller is gone; the router still reports the farm's history.
  const auto view = router.stats().farm;
  EXPECT_TRUE(view.active);
  EXPECT_EQ(view.workers_joined, 1u);
}

TEST(FarmController, MetricsRegistryMirrorsFarmCounters) {
  atlas::telemetry::MetricRegistry metrics;
  ae::FarmControllerOptions options;
  options.metrics = &metrics;
  ae::ShardRouter router(2);
  ae::FarmController controller(router, options);
  auto a = std::make_shared<FakeWorker>("a:1", std::vector{sim_info(7)});
  auto b = std::make_shared<FakeWorker>("b:2", std::vector{sim_info(7)});
  controller.add_worker(a);
  controller.add_worker(b);
  EXPECT_EQ(metrics.counter("farm.workers_joined").value(), 2u);
  EXPECT_EQ(metrics.counter("farm.workers_serving").value(), 2u);

  b->failing->store(true);
  controller.poll_once();
  EXPECT_EQ(metrics.counter("farm.workers_suspect").value(), 1u);
  EXPECT_EQ(metrics.counter("farm.heartbeats_missed").value(), 1u);
}

TEST(FarmController, AdmissionFailureRejectsTheWorker) {
  Farm farm;
  auto a = std::make_shared<FakeWorker>("a:1", std::vector{sim_info(7)});
  a->failing->store(true);
  EXPECT_THROW(farm.controller.add_worker(a), std::runtime_error);
  EXPECT_EQ(farm.controller.worker_count(), 0u);
  EXPECT_EQ(farm.router.stats().farm.workers_joined, 0u);
}

TEST(FarmController, MonitorThreadDrivesTransitions) {
  ae::FarmControllerOptions options;
  options.heartbeat_interval_ms = 10;
  options.suspect_after_misses = 1;
  options.dead_after_misses = 2;
  Farm farm(options);
  auto a = std::make_shared<FakeWorker>("a:1", std::vector{sim_info(7)});
  const auto wa = farm.controller.add_worker(a);

  farm.controller.start();
  a->failing->store(true);
  // The monitor thread needs two failed sweeps at 10ms cadence.
  for (int i = 0; i < 500; ++i) {
    if (farm.controller.worker_state(wa) == ae::WorkerState::kDead) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  farm.controller.stop();
  EXPECT_EQ(farm.controller.worker_state(wa), ae::WorkerState::kDead);
  EXPECT_GE(farm.router.stats().farm.heartbeats_missed, 2u);
}
