#include <gtest/gtest.h>

#include "env/env_service.hpp"
#include "atlas/offline_trainer.hpp"
#include "atlas/online_learner.hpp"

namespace ac = atlas::core;
namespace ae = atlas::env;

// Safety-oriented integration checks on Stage 3: the conservative
// acquisition must keep intermediate SLA exposure bounded. Everything here
// is fully deterministic (fixed seeds), so assertions are exact replays,
// not statistical gambles.

namespace {

class OnlineSafetyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    service_ = new ae::EnvService(ae::EnvServiceOptions{.threads = 2});
    sim_ = service_->add_simulator(ae::oracle_calibration());
    real_ = service_->add_real_network();
    ac::OfflineOptions opts;
    opts.iterations = 50;
    opts.init_iterations = 12;
    opts.parallel = 4;
    opts.candidates = 600;
    opts.workload.duration_ms = 10000.0;
    opts.bnn.sizes = {8, 32, 32, 1};
    opts.train_epochs = 5;
    opts.seed = 29;
    ac::OfflineTrainer trainer(*service_, sim_, opts);
    offline_ = new ac::OfflineResult(trainer.train());
  }
  static void TearDownTestSuite() {
    delete offline_;
    delete service_;
  }

  static ac::OnlineOptions online_options() {
    ac::OnlineOptions o;
    o.iterations = 25;
    o.inner_updates = 8;
    o.candidates = 800;
    o.workload.duration_ms = 10000.0;
    o.clip_b = 2.5;              // conservative clip (see bench_util.hpp note)
    o.gp.noise_variance = 2e-3;  // episode-level QoE sampling noise
    o.seed = 31;
    return o;
  }

  static std::size_t violations(const ac::OnlineResult& run, double e = 0.9) {
    std::size_t n = 0;
    for (const auto& s : run.history) {
      if (s.qoe_real < e) ++n;
    }
    return n;
  }

  static ae::EnvService* service_;
  static ae::BackendId sim_;
  static ae::BackendId real_;
  static ac::OfflineResult* offline_;
};

ae::EnvService* OnlineSafetyTest::service_ = nullptr;
ae::BackendId OnlineSafetyTest::sim_ = 0;
ae::BackendId OnlineSafetyTest::real_ = 0;
ac::OfflineResult* OnlineSafetyTest::offline_ = nullptr;

}  // namespace

TEST_F(OnlineSafetyTest, MajorityOfOnlineActionsMeetTheSla) {
  ac::OnlineLearner learner(&offline_->policy, *service_, sim_, real_, online_options());
  const auto run = learner.learn();
  // Conservative exploration: most online actions satisfy QoE >= E - noise.
  std::size_t hard_violations = 0;
  for (const auto& s : run.history) {
    if (s.qoe_real < 0.75) ++hard_violations;  // deep violations
  }
  EXPECT_LE(hard_violations, run.history.size() / 4);
}

TEST_F(OnlineSafetyTest, LateIterationsHoverAtTheRequirement) {
  ac::OnlineLearner learner(&offline_->policy, *service_, sim_, real_, online_options());
  const auto run = learner.learn();
  double tail_qoe = 0.0;
  const std::size_t tail = 8;
  for (std::size_t i = run.history.size() - tail; i < run.history.size(); ++i) {
    tail_qoe += run.history[i].qoe_real / static_cast<double>(tail);
  }
  EXPECT_GT(tail_qoe, 0.8);
}

TEST_F(OnlineSafetyTest, BetaNeverExceedsClip) {
  auto opts = online_options();
  opts.clip_b = 1.5;
  ac::OnlineLearner learner(&offline_->policy, *service_, sim_, real_, opts);
  const auto run = learner.learn();
  for (const auto& s : run.history) {
    ASSERT_LE(s.beta, 1.5);
    ASSERT_GE(s.beta, 0.0);
  }
}

TEST_F(OnlineSafetyTest, ConservativeClipIsSaferThanTheoreticalGpUcb) {
  auto ours_opts = online_options();
  ac::OnlineLearner ours(&offline_->policy, *service_, sim_, real_, ours_opts);
  const auto ours_run = ours.learn();

  auto ucb_opts = online_options();
  ucb_opts.acquisition = atlas::bo::AcquisitionKind::kGpUcb;
  ac::OnlineLearner ucb(&offline_->policy, *service_, sim_, real_, ucb_opts);
  const auto ucb_run = ucb.learn();

  // Fixed seeds -> deterministic replay. The theoretically-scheduled GP-UCB
  // explores harder; our clipped schedule must not violate the SLA more
  // often (paper Fig. 22's safety argument), with a 2-step determinism slack.
  EXPECT_LE(violations(ours_run), violations(ucb_run) + 2);
}

TEST_F(OnlineSafetyTest, LambdaStaysNonNegativeAndBounded) {
  ac::OnlineLearner learner(&offline_->policy, *service_, sim_, real_, online_options());
  const auto run = learner.learn();
  for (const auto& s : run.history) {
    ASSERT_GE(s.lambda, 0.0);
    ASSERT_LT(s.lambda, 100.0);  // dual variable must not blow up
  }
  EXPECT_GE(run.final_lambda, 0.0);
}
