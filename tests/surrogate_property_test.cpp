#include <gtest/gtest.h>

#include <cmath>

#include "atlas/offline_trainer.hpp"
#include "env/environment.hpp"
#include "gp/gaussian_process.hpp"
#include "math/rng.hpp"

namespace ac = atlas::core;
namespace ae = atlas::env;
namespace ag = atlas::gp;
namespace am = atlas::math;

// ---------------------------------------------------------------------------
// GP posterior properties must hold for EVERY kernel family.
class GpKernelSweep : public ::testing::TestWithParam<ag::KernelKind> {};

TEST_P(GpKernelSweep, InterpolatesAndShrinksUncertainty) {
  ag::GpConfig cfg;
  cfg.kernel = GetParam();
  cfg.noise_variance = 1e-8;
  cfg.optimize_hyperparams = false;
  // A short length scale keeps the noiseless Gram well-conditioned for every
  // kernel family (RBF at scale 1 over this cluster is near-singular).
  cfg.initial_length_scale = 0.15;
  ag::GaussianProcess gp(cfg);
  am::Matrix x(6, 1);
  am::Vec y{0.1, 0.5, 0.9, 0.4, 0.2, 0.7};
  for (std::size_t i = 0; i < 6; ++i) x(i, 0) = static_cast<double>(i) / 6.0;
  gp.fit(x, y);
  for (std::size_t i = 0; i < 6; ++i) {
    const auto p = gp.predict(x.row(i));
    ASSERT_NEAR(p.mean, y[i], 5e-3);
    ASSERT_LT(p.std, 0.05);
  }
  ASSERT_GT(gp.predict({5.0}).std, gp.predict({0.3}).std);
}

INSTANTIATE_TEST_SUITE_P(Kernels, GpKernelSweep,
                         ::testing::Values(ag::KernelKind::kRbf, ag::KernelKind::kMatern12,
                                           ag::KernelKind::kMatern32,
                                           ag::KernelKind::kMatern52));

// ---------------------------------------------------------------------------
// Policy-input layout must be stable across traffic levels and thresholds.
class PolicyInputSweep : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(PolicyInputSweep, LayoutAndNormalization) {
  const int traffic = std::get<0>(GetParam());
  const double threshold = std::get<1>(GetParam());
  const am::Vec config_norm(6, 0.5);
  const am::Vec in = ac::OfflinePolicy::input(traffic, threshold, config_norm);
  ASSERT_EQ(in.size(), 8u);
  ASSERT_DOUBLE_EQ(in[0], traffic / 4.0);
  ASSERT_DOUBLE_EQ(in[1], threshold / 600.0);
  for (std::size_t i = 2; i < 8; ++i) ASSERT_DOUBLE_EQ(in[i], 0.5);
}

INSTANTIATE_TEST_SUITE_P(States, PolicyInputSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(300.0, 400.0, 500.0)));

// ---------------------------------------------------------------------------
// Every latency-additive Table 3 knob must raise (never lower) the simulated
// mean latency when cranked up, with everything else at spec.
struct KnobCase {
  const char* name;
  std::size_t index;  // position in SimParams::to_vec()
  double high;
};

class SimKnobSweep : public ::testing::TestWithParam<KnobCase> {};

TEST_P(SimKnobSweep, KnobIncreasesLatency) {
  const auto& knob = GetParam();
  ae::Workload wl;
  wl.duration_ms = 8000.0;
  wl.seed = 31;
  ae::Simulator base;
  auto vec = ae::SimParams::defaults().to_vec();
  vec[knob.index] = knob.high;
  ae::Simulator raised(ae::SimParams::from_vec(vec));
  const double mean_base = base.run(ae::SliceConfig{}, wl).latency_summary().mean;
  const double mean_raised = raised.run(ae::SliceConfig{}, wl).latency_summary().mean;
  EXPECT_GT(mean_raised, mean_base - 2.0) << knob.name;  // 2 ms noise slack
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, SimKnobSweep,
    ::testing::Values(KnobCase{"baseline_loss", 0, 44.0}, KnobCase{"enb_noise_figure", 1, 10.0},
                      KnobCase{"backhaul_delay", 4, 25.0}, KnobCase{"compute_time", 5, 25.0},
                      KnobCase{"loading_time", 6, 12.0}),
    [](const ::testing::TestParamInfo<KnobCase>& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// The backhaul-bandwidth knob moves latency the other way (more rate ->
// faster frames) — checked at a throttled slice configuration.
TEST(SimKnob, BackhaulBandwidthKnobLowersLatencyWhenThrottled) {
  ae::Workload wl;
  wl.duration_ms = 8000.0;
  wl.seed = 37;
  ae::SliceConfig throttled;
  throttled.backhaul_mbps = 3.0;
  ae::Simulator base;
  auto vec = ae::SimParams::defaults().to_vec();
  vec[3] = 15.0;  // +15 Mbps headroom
  ae::Simulator boosted(ae::SimParams::from_vec(vec));
  EXPECT_LT(boosted.run(throttled, wl).latency_summary().mean,
            base.run(throttled, wl).latency_summary().mean);
}

// ---------------------------------------------------------------------------
// QoE is monotone in the threshold for any fixed episode.
class QoeThresholdSweep : public ::testing::TestWithParam<int> {};

TEST_P(QoeThresholdSweep, MonotoneInThreshold) {
  ae::Simulator sim;
  ae::Workload wl;
  wl.duration_ms = 6000.0;
  wl.seed = static_cast<std::uint64_t>(GetParam());
  wl.traffic = 1 + GetParam() % 4;
  const auto result = sim.run(ae::SliceConfig{}, wl);
  double prev = 0.0;
  for (double y = 100.0; y <= 900.0; y += 100.0) {
    const double q = result.qoe(y);
    ASSERT_GE(q, prev);
    prev = q;
  }
}

INSTANTIATE_TEST_SUITE_P(Episodes, QoeThresholdSweep, ::testing::Range(0, 6));
