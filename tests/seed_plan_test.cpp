// SeedPlan unit tests: the plan is a pure function of (master seed, options,
// domain, iteration, replicate) — these pin its determinism, the policy
// boundaries (fresh / crn / crn_rotating, online domains), and the rotation
// schedule, so the golden_stage_test's bit-identity guarantee rests on a
// stable contract rather than on luck.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "env/seed_plan.hpp"

namespace ae = atlas::env;

namespace {

ae::SeedPlanOptions crn(std::size_t replicates, std::size_t rotation = 25,
                        ae::SeedPolicy policy = ae::SeedPolicy::kCrn) {
  ae::SeedPlanOptions o;
  o.policy = policy;
  o.replicates = replicates;
  o.rotation_period = rotation;
  return o;
}

}  // namespace

TEST(SeedPlan, IsAPureFunctionOfItsInputs) {
  const ae::SeedPlan a(42, crn(4, 10, ae::SeedPolicy::kCrnRotating));
  const ae::SeedPlan b(42, crn(4, 10, ae::SeedPolicy::kCrnRotating));
  for (std::uint64_t iter = 0; iter < 30; ++iter) {
    for (std::uint64_t rep = 0; rep < 6; ++rep) {
      EXPECT_EQ(a.episode_seed(ae::SeedDomain::kStage2Query, iter, rep, 6),
                b.episode_seed(ae::SeedDomain::kStage2Query, iter, rep, 6));
    }
  }
}

TEST(SeedPlan, FreshReproducesTheHistoricalCounters) {
  // The pre-SeedPlan stages seeded as `master * prime + linear_counter`;
  // fresh must reproduce those sequences exactly (golden_stage_test pins the
  // downstream results, this pins the formula itself).
  const std::uint64_t master = 7;
  const ae::SeedPlan plan(master);  // default policy: fresh

  // Stage 2: seed * 15485863 + (iter * batch + slot), batch = 3.
  const ae::SeedStream stage2 = plan.stream(ae::SeedDomain::kStage2Query, 3);
  std::uint64_t counter = 0;
  for (std::uint64_t iter = 0; iter < 4; ++iter) {
    for (std::uint64_t q = 0; q < 3; ++q) {
      EXPECT_EQ(stage2.seed(iter, q), master * 15485863ULL + counter++);
    }
  }

  // Stage 1 main loop: seed * 104729 + counter.
  EXPECT_EQ(plan.episode_seed(ae::SeedDomain::kStage1Query, 2, 1, 8),
            master * 104729ULL + 2 * 8 + 1);
  // Stage 1 reference probe historically started at seed * 13 + 1.
  EXPECT_EQ(plan.episode_seed(ae::SeedDomain::kStage1Reference, 0, 0, 1), master * 13ULL + 1);
  // Stage 3's simulator stream pre-incremented: first seed is base + 1.
  EXPECT_EQ(plan.episode_seed(ae::SeedDomain::kStage3Sim, 0, 0, 3), master * 32452843ULL + 1);
  // Online streams.
  EXPECT_EQ(plan.episode_seed(ae::SeedDomain::kStage3RealOnline, 5, 0, 1),
            master * 49979687ULL + 5);
  EXPECT_EQ(plan.episode_seed(ae::SeedDomain::kBaselineGpOnline, 9, 0, 1),
            master * 7177162611ULL + 9);
}

TEST(SeedPlan, FreshNeverRepeatsASeedWithinADomain) {
  const ae::SeedPlan plan(11);
  const ae::SeedStream seeds = plan.stream(ae::SeedDomain::kStage1Query, 5);
  std::set<std::uint64_t> seen;
  for (std::uint64_t iter = 0; iter < 40; ++iter) {
    for (std::uint64_t rep = 0; rep < 5; ++rep) {
      EXPECT_TRUE(seen.insert(seeds.seed(iter, rep)).second)
          << "iter " << iter << " rep " << rep;
    }
  }
  EXPECT_FALSE(seeds.crn_active());
}

TEST(SeedPlan, CrnReusesTheSameBlockEveryIteration) {
  const ae::SeedPlan plan(5, crn(/*replicates=*/3));
  const ae::SeedStream seeds = plan.stream(ae::SeedDomain::kStage2Query, 8);
  EXPECT_TRUE(seeds.crn_active());

  // The block has exactly `replicates` distinct seeds...
  std::set<std::uint64_t> block;
  for (std::uint64_t rep = 0; rep < 8; ++rep) block.insert(seeds.seed(0, rep));
  EXPECT_EQ(block.size(), 3u);

  // ...replicate slots wrap modulo the block...
  EXPECT_EQ(seeds.seed(0, 0), seeds.seed(0, 3));
  EXPECT_EQ(seeds.seed(0, 2), seeds.seed(0, 5));

  // ...and every iteration sees the identical block (the CRN pairing).
  for (std::uint64_t iter = 1; iter < 50; ++iter) {
    for (std::uint64_t rep = 0; rep < 3; ++rep) {
      EXPECT_EQ(seeds.seed(iter, rep), seeds.seed(0, rep));
    }
  }
}

TEST(SeedPlan, RotatingBlocksChangeExactlyAtThePeriodBoundary) {
  const std::size_t kPeriod = 4;
  const std::size_t kReplicates = 2;
  const ae::SeedPlan plan(3, crn(kReplicates, kPeriod, ae::SeedPolicy::kCrnRotating));
  const ae::SeedStream seeds = plan.stream(ae::SeedDomain::kStage2Query, kReplicates);
  EXPECT_TRUE(seeds.crn_active());

  for (std::uint64_t iter = 0; iter < 20; ++iter) {
    for (std::uint64_t rep = 0; rep < kReplicates; ++rep) {
      // Identical to the first iteration of the same block...
      const std::uint64_t block_start = (iter / kPeriod) * kPeriod;
      EXPECT_EQ(seeds.seed(iter, rep), seeds.seed(block_start, rep));
      // ...and different from the previous block's same slot.
      if (iter >= kPeriod) {
        EXPECT_NE(seeds.seed(iter, rep), seeds.seed(iter - kPeriod, rep));
      }
    }
  }

  // Consecutive blocks cover disjoint seed spans.
  std::set<std::uint64_t> all;
  for (std::uint64_t block = 0; block < 5; ++block) {
    for (std::uint64_t rep = 0; rep < kReplicates; ++rep) {
      EXPECT_TRUE(all.insert(seeds.seed(block * kPeriod, rep)).second);
    }
  }
}

TEST(SeedPlan, OnlineDomainsAreImmuneToThePolicy) {
  // A metered live network cannot replay randomness: whatever the policy,
  // online domains sequence fresh and never get the crn tag.
  const ae::SeedPlan fresh(9);
  const ae::SeedPlan crn_plan(9, crn(1));
  for (const auto domain :
       {ae::SeedDomain::kStage1RealCollectOnline, ae::SeedDomain::kStage3RealOnline,
        ae::SeedDomain::kBaselineGpOnline, ae::SeedDomain::kBaselineDldaOnline,
        ae::SeedDomain::kBaselineVirtualEdgeOnline}) {
    EXPECT_FALSE(crn_plan.crn_active(domain));
    for (std::uint64_t iter = 0; iter < 10; ++iter) {
      EXPECT_EQ(crn_plan.episode_seed(domain, iter, 0, 1),
                fresh.episode_seed(domain, iter, 0, 1));
    }
  }
  // Offline domains DO follow the policy.
  EXPECT_TRUE(crn_plan.crn_active(ae::SeedDomain::kStage2Query));
  EXPECT_TRUE(crn_plan.crn_active(ae::SeedDomain::kBaselineDldaGrid));
  EXPECT_FALSE(fresh.crn_active(ae::SeedDomain::kStage2Query));
}

TEST(SeedPlan, ApplyTagsOnlyCrnPlannedOfflineQueries) {
  ae::EnvQuery q;
  const ae::SeedPlan crn_plan(2, crn(1));

  crn_plan.stream(ae::SeedDomain::kStage2Query, 4).apply(q, 3, 1);
  EXPECT_TRUE(q.crn);
  EXPECT_EQ(q.workload.seed, crn_plan.episode_seed(ae::SeedDomain::kStage2Query, 3, 1, 4));

  crn_plan.stream(ae::SeedDomain::kStage3RealOnline, 1).apply(q, 3, 0);
  EXPECT_FALSE(q.crn) << "online queries must never carry the crn tag";

  const ae::SeedPlan fresh(2);
  fresh.stream(ae::SeedDomain::kStage2Query, 4).apply(q, 3, 1);
  EXPECT_FALSE(q.crn) << "fresh-planned queries must never carry the crn tag";
}

TEST(SeedPlan, DegenerateOptionsAreNormalized) {
  // replicates/rotation_period of 0 would divide by zero; the plan floors
  // them to 1 instead of making callers guard.
  ae::SeedPlanOptions zero;
  zero.policy = ae::SeedPolicy::kCrnRotating;
  zero.replicates = 0;
  zero.rotation_period = 0;
  const ae::SeedPlan plan(1, zero);
  EXPECT_EQ(plan.options().replicates, 1u);
  EXPECT_EQ(plan.options().rotation_period, 1u);
  // rotation 1 + block 1: every iteration is its own block -> fresh-like
  // sequence of one seed per iteration, no crash.
  EXPECT_NE(plan.episode_seed(ae::SeedDomain::kStage2Query, 0, 0, 1),
            plan.episode_seed(ae::SeedDomain::kStage2Query, 1, 0, 1));
}

TEST(SeedPlan, PolicyNamesRoundTrip) {
  for (const auto policy :
       {ae::SeedPolicy::kFresh, ae::SeedPolicy::kCrn, ae::SeedPolicy::kCrnRotating}) {
    const auto parsed = ae::parse_seed_policy(ae::seed_policy_name(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(ae::parse_seed_policy("").has_value());
  EXPECT_FALSE(ae::parse_seed_policy("coupon-collector").has_value());
}
