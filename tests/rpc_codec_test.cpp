#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "rpc/codec.hpp"

namespace ar = atlas::rpc;
namespace ae = atlas::env;

namespace {

// Bit-level equality (0.0 vs -0.0 differ; values from different code paths
// must match EXACTLY for memoization to treat remote and local episodes as
// interchangeable).
bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// NaN-free doubles spanning the interesting range: extremes, denormals,
/// negative zero, and ordinary values.
double random_double(std::mt19937_64& rng) {
  switch (rng() % 8) {
    case 0: return 0.0;
    case 1: return -0.0;
    case 2: return std::numeric_limits<double>::max();
    case 3: return std::numeric_limits<double>::lowest();
    case 4: return std::numeric_limits<double>::denorm_min();
    case 5: return std::numeric_limits<double>::infinity();
    default: {
      std::uniform_real_distribution<double> dist(-1e6, 1e6);
      return dist(rng);
    }
  }
}

ae::EnvQuery random_query(std::mt19937_64& rng) {
  ae::EnvQuery q;
  q.backend = static_cast<ae::BackendId>(rng() % 1024);
  q.config.bandwidth_ul = random_double(rng);
  q.config.bandwidth_dl = random_double(rng);
  q.config.mcs_offset_ul = random_double(rng);
  q.config.mcs_offset_dl = random_double(rng);
  q.config.backhaul_mbps = random_double(rng);
  q.config.cpu_ratio = random_double(rng);
  q.workload.traffic = static_cast<int>(rng() % 4) + 1;
  q.workload.duration_ms = random_double(rng);
  q.workload.distance_m = random_double(rng);
  q.workload.random_walk = (rng() % 2) == 0;
  q.workload.extra_users = static_cast<int>(rng() % 7) - 1;
  q.workload.collect_traces = (rng() % 2) == 0;
  q.crn = (rng() % 2) == 0;
  q.workload.seed = rng();  // full 64-bit range, incl. > 2^53
  if (rng() % 2 == 0) {
    ae::SimParams p;
    p.baseline_loss_db = random_double(rng);
    p.enb_noise_figure_db = random_double(rng);
    p.ue_noise_figure_db = random_double(rng);
    p.backhaul_bw_mbps = random_double(rng);
    p.backhaul_delay_ms = random_double(rng);
    p.compute_time_ms = random_double(rng);
    p.loading_time_ms = random_double(rng);
    q.sim_params = p;
  }
  return q;
}

ae::EpisodeResult random_result(std::mt19937_64& rng) {
  ae::EpisodeResult r;
  const std::size_t latencies = rng() % 64;  // often empty
  for (std::size_t i = 0; i < latencies; ++i) r.latencies_ms.push_back(random_double(rng));
  r.frames_completed = static_cast<std::size_t>(rng() % 100000);
  r.ul_tb_total = static_cast<int>(rng() % 1000000);
  r.ul_tb_err = static_cast<int>(rng() % 10000);
  r.dl_tb_total = static_cast<int>(rng() % 1000000);
  r.dl_tb_err = static_cast<int>(rng() % 10000);
  const std::size_t traces = rng() % 2 == 0 ? 0 : rng() % 16;  // empty half the time
  for (std::size_t i = 0; i < traces; ++i) {
    ae::FrameTrace t;
    t.id = rng();
    t.created_ms = random_double(rng);
    t.sent_ms = random_double(rng);
    t.ul_done_ms = random_double(rng);
    t.edge_in_ms = random_double(rng);
    t.compute_start_ms = random_double(rng);
    t.compute_done_ms = random_double(rng);
    t.enb_dl_ms = random_double(rng);
    t.completed_ms = random_double(rng);
    r.traces.push_back(t);
  }
  return r;
}

ae::EnvQuery roundtrip_query(const ae::EnvQuery& q, std::uint64_t id) {
  const auto frame = ar::encode_query(id, q);
  ar::WireReader reader(frame);
  const auto header = ar::decode_header(reader);
  EXPECT_EQ(header.type, ar::MsgType::kQuery);
  EXPECT_EQ(header.request_id, id);
  return ar::decode_query_body(reader);
}

ae::EpisodeResult roundtrip_result(const ae::EpisodeResult& r, std::uint64_t id) {
  const auto frame = ar::encode_result(id, r);
  ar::WireReader reader(frame);
  const auto header = ar::decode_header(reader);
  EXPECT_EQ(header.type, ar::MsgType::kResult);
  EXPECT_EQ(header.request_id, id);
  return ar::decode_result_body(reader);
}

}  // namespace

TEST(RpcCodec, QueryRoundTripsBitIdentically) {
  std::mt19937_64 rng(0xA71A5u);
  for (int rep = 0; rep < 500; ++rep) {
    const ae::EnvQuery q = random_query(rng);
    const ae::EnvQuery back = roundtrip_query(q, rng());

    EXPECT_EQ(back.backend, q.backend);
    const auto cv = q.config.to_vec();
    const auto bv = back.config.to_vec();
    ASSERT_EQ(cv.size(), bv.size());
    for (std::size_t i = 0; i < cv.size(); ++i) {
      EXPECT_TRUE(same_bits(cv[i], bv[i])) << "config dim " << i;
    }
    EXPECT_EQ(back.workload.traffic, q.workload.traffic);
    EXPECT_TRUE(same_bits(back.workload.duration_ms, q.workload.duration_ms));
    EXPECT_TRUE(same_bits(back.workload.distance_m, q.workload.distance_m));
    EXPECT_EQ(back.workload.random_walk, q.workload.random_walk);
    EXPECT_EQ(back.workload.extra_users, q.workload.extra_users);
    EXPECT_EQ(back.workload.collect_traces, q.workload.collect_traces);
    EXPECT_EQ(back.workload.seed, q.workload.seed);
    EXPECT_EQ(back.crn, q.crn);
    ASSERT_EQ(back.sim_params.has_value(), q.sim_params.has_value());
    if (q.sim_params) {
      const auto pv = q.sim_params->to_vec();
      const auto qv = back.sim_params->to_vec();
      ASSERT_EQ(pv.size(), qv.size());
      for (std::size_t i = 0; i < pv.size(); ++i) {
        EXPECT_TRUE(same_bits(pv[i], qv[i])) << "sim param " << i;
      }
    }
  }
}

TEST(RpcCodec, ResultRoundTripsBitIdentically) {
  std::mt19937_64 rng(0xEC0DECu);
  for (int rep = 0; rep < 500; ++rep) {
    const ae::EpisodeResult r = random_result(rng);
    const ae::EpisodeResult back = roundtrip_result(r, rng());

    ASSERT_EQ(back.latencies_ms.size(), r.latencies_ms.size());
    for (std::size_t i = 0; i < r.latencies_ms.size(); ++i) {
      EXPECT_TRUE(same_bits(back.latencies_ms[i], r.latencies_ms[i])) << "latency " << i;
    }
    EXPECT_EQ(back.frames_completed, r.frames_completed);
    EXPECT_EQ(back.ul_tb_total, r.ul_tb_total);
    EXPECT_EQ(back.ul_tb_err, r.ul_tb_err);
    EXPECT_EQ(back.dl_tb_total, r.dl_tb_total);
    EXPECT_EQ(back.dl_tb_err, r.dl_tb_err);
    ASSERT_EQ(back.traces.size(), r.traces.size());
    for (std::size_t i = 0; i < r.traces.size(); ++i) {
      EXPECT_EQ(back.traces[i].id, r.traces[i].id);
      EXPECT_TRUE(same_bits(back.traces[i].created_ms, r.traces[i].created_ms));
      EXPECT_TRUE(same_bits(back.traces[i].completed_ms, r.traces[i].completed_ms));
      EXPECT_TRUE(same_bits(back.traces[i].compute_start_ms, r.traces[i].compute_start_ms));
    }
  }
}

TEST(RpcCodec, ErrorRoundTrips) {
  const auto frame = ar::encode_error(77, "no such backend");
  ar::WireReader reader(frame);
  const auto header = ar::decode_header(reader);
  EXPECT_EQ(header.type, ar::MsgType::kError);
  EXPECT_EQ(header.request_id, 77u);
  EXPECT_EQ(ar::decode_error_body(reader), "no such backend");
}

TEST(RpcCodec, TruncatedFramesAreRejected) {
  std::mt19937_64 rng(3);
  const auto frame = ar::encode_query(1, random_query(rng));
  // Every proper prefix must throw, never read past the end or misdecode.
  for (std::size_t keep = 0; keep < frame.size(); ++keep) {
    std::vector<std::uint8_t> cut(frame.begin(), frame.begin() + keep);
    ar::WireReader reader(cut);
    EXPECT_THROW(
        {
          const auto header = ar::decode_header(reader);
          if (header.type == ar::MsgType::kQuery) (void)ar::decode_query_body(reader);
        },
        ar::CodecError)
        << "prefix of " << keep << " bytes";
  }
}

TEST(RpcCodec, CorruptedHeadersAreRejected) {
  std::mt19937_64 rng(4);
  const auto good = ar::encode_result(9, random_result(rng));

  {  // flipped magic
    auto bad = good;
    bad[0] ^= 0xFF;
    ar::WireReader reader(bad);
    EXPECT_THROW((void)ar::decode_header(reader), ar::CodecError);
  }
  {  // future wire version
    auto bad = good;
    bad[4] = 0x7F;
    ar::WireReader reader(bad);
    EXPECT_THROW((void)ar::decode_header(reader), ar::CodecError);
  }
  {  // unknown message type
    auto bad = good;
    bad[6] = 0x63;
    ar::WireReader reader(bad);
    EXPECT_THROW((void)ar::decode_header(reader), ar::CodecError);
  }
}

TEST(RpcCodec, TrailingGarbageIsRejected) {
  std::mt19937_64 rng(5);
  auto frame = ar::encode_query(2, random_query(rng));
  frame.push_back(0xAB);
  ar::WireReader reader(frame);
  (void)ar::decode_header(reader);
  EXPECT_THROW((void)ar::decode_query_body(reader), ar::CodecError);
}

TEST(RpcCodec, StatsSnapshotRoundTrips) {
  // Wire v3: a worker's EnvServiceStats — counters, per-backend rows, and the
  // sparse-encoded serving histograms — must survive the trip exactly.
  ae::EnvServiceStats stats;
  stats.offline_queries = 120;
  stats.online_queries = 7;
  stats.cache_hits = 60;
  stats.cache_misses = 67;
  stats.crn_hits = 41;
  for (int i = 0; i < 3; ++i) {
    ae::BackendStats b;
    b.name = "backend-" + std::to_string(i);
    b.kind = i == 2 ? ae::BackendKind::kOnline : ae::BackendKind::kOffline;
    b.queries = 40 + static_cast<std::uint64_t>(i);
    b.cache_hits = 20;
    b.cache_misses = 20;
    b.crn_hits = 13;
    b.episodes = 27;
    b.cost_hint = i == 0 ? 1.0 : 1000.0;
    b.rpc_retries = static_cast<std::uint64_t>(i);
    b.rpc_failures = 0;
    if (i == 1) {
      for (int s = 0; s < 50; ++s) b.rpc_rtt_ns.record(100000 + s * 7919);
    }
    stats.backends.push_back(std::move(b));
  }
  for (int s = 0; s < 200; ++s) stats.query_latency_ns.record(1000 + s * 997);
  for (int s = 0; s < 40; ++s) stats.queue_depth.record(static_cast<std::uint64_t>(s % 5));
  for (int s = 0; s < 30; ++s) stats.rpc_service_ns.record(500000 + s);

  const auto frame = ar::encode_stats_snapshot(42, stats);
  ar::WireReader reader(frame);
  const auto header = ar::decode_header(reader);
  EXPECT_EQ(header.type, ar::MsgType::kStatsSnapshot);
  EXPECT_EQ(header.request_id, 42u);
  const ae::EnvServiceStats back = ar::decode_stats_snapshot_body(reader);

  EXPECT_EQ(back.offline_queries, stats.offline_queries);
  EXPECT_EQ(back.online_queries, stats.online_queries);
  EXPECT_EQ(back.cache_hits, stats.cache_hits);
  EXPECT_EQ(back.cache_misses, stats.cache_misses);
  EXPECT_EQ(back.crn_hits, stats.crn_hits);
  ASSERT_EQ(back.backends.size(), stats.backends.size());
  for (std::size_t i = 0; i < stats.backends.size(); ++i) {
    EXPECT_EQ(back.backends[i].name, stats.backends[i].name);
    EXPECT_EQ(back.backends[i].kind, stats.backends[i].kind);
    EXPECT_EQ(back.backends[i].queries, stats.backends[i].queries);
    EXPECT_EQ(back.backends[i].crn_hits, stats.backends[i].crn_hits);
    EXPECT_EQ(back.backends[i].episodes, stats.backends[i].episodes);
    EXPECT_TRUE(same_bits(back.backends[i].cost_hint, stats.backends[i].cost_hint));
    EXPECT_EQ(back.backends[i].rpc_retries, stats.backends[i].rpc_retries);
    EXPECT_EQ(back.backends[i].rpc_rtt_ns.counts(), stats.backends[i].rpc_rtt_ns.counts());
    EXPECT_EQ(back.backends[i].rpc_rtt_ns.sum(), stats.backends[i].rpc_rtt_ns.sum());
  }
  EXPECT_EQ(back.query_latency_ns.counts(), stats.query_latency_ns.counts());
  EXPECT_EQ(back.query_latency_ns.sum(), stats.query_latency_ns.sum());
  EXPECT_EQ(back.queue_depth.counts(), stats.queue_depth.counts());
  EXPECT_EQ(back.rpc_service_ns.counts(), stats.rpc_service_ns.counts());
}

TEST(RpcCodec, EmptyStatsSnapshotRoundTrips) {
  const auto frame = ar::encode_stats_snapshot(1, ae::EnvServiceStats{});
  ar::WireReader reader(frame);
  EXPECT_EQ(ar::decode_header(reader).type, ar::MsgType::kStatsSnapshot);
  const ae::EnvServiceStats back = ar::decode_stats_snapshot_body(reader);
  EXPECT_TRUE(back.backends.empty());
  EXPECT_TRUE(back.query_latency_ns.empty());
  EXPECT_EQ(back.total_queries(), 0u);
}

TEST(RpcCodec, StatsRequestIsHeaderOnly) {
  const auto frame = ar::encode_stats_request(9);
  ar::WireReader reader(frame);
  const auto header = ar::decode_header(reader);
  EXPECT_EQ(header.type, ar::MsgType::kStatsRequest);
  EXPECT_EQ(header.request_id, 9u);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(RpcCodec, ImplausibleElementCountsAreRejectedNotAllocated) {
  // A corrupted latency count must throw before the decoder tries to
  // reserve terabytes.
  ar::WireWriter w;
  w.u32(ar::kWireMagic);
  w.u16(ar::kWireVersion);
  w.u16(static_cast<std::uint16_t>(ar::MsgType::kResult));
  w.u64(1);                        // request id
  w.u64(0xFFFFFFFFFFFFFFFFull);    // latency count
  const auto frame = w.take();
  ar::WireReader reader(frame);
  (void)ar::decode_header(reader);
  EXPECT_THROW((void)ar::decode_result_body(reader), ar::CodecError);
}
