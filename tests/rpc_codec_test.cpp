#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "rpc/codec.hpp"

namespace ar = atlas::rpc;
namespace ae = atlas::env;

namespace {

// Bit-level equality (0.0 vs -0.0 differ; values from different code paths
// must match EXACTLY for memoization to treat remote and local episodes as
// interchangeable).
bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// NaN-free doubles spanning the interesting range: extremes, denormals,
/// negative zero, and ordinary values.
double random_double(std::mt19937_64& rng) {
  switch (rng() % 8) {
    case 0: return 0.0;
    case 1: return -0.0;
    case 2: return std::numeric_limits<double>::max();
    case 3: return std::numeric_limits<double>::lowest();
    case 4: return std::numeric_limits<double>::denorm_min();
    case 5: return std::numeric_limits<double>::infinity();
    default: {
      std::uniform_real_distribution<double> dist(-1e6, 1e6);
      return dist(rng);
    }
  }
}

ae::EnvQuery random_query(std::mt19937_64& rng) {
  ae::EnvQuery q;
  q.backend = static_cast<ae::BackendId>(rng() % 1024);
  q.config.bandwidth_ul = random_double(rng);
  q.config.bandwidth_dl = random_double(rng);
  q.config.mcs_offset_ul = random_double(rng);
  q.config.mcs_offset_dl = random_double(rng);
  q.config.backhaul_mbps = random_double(rng);
  q.config.cpu_ratio = random_double(rng);
  q.workload.traffic = static_cast<int>(rng() % 4) + 1;
  q.workload.duration_ms = random_double(rng);
  q.workload.distance_m = random_double(rng);
  q.workload.random_walk = (rng() % 2) == 0;
  q.workload.extra_users = static_cast<int>(rng() % 7) - 1;
  q.workload.collect_traces = (rng() % 2) == 0;
  q.crn = (rng() % 2) == 0;
  q.workload.seed = rng();  // full 64-bit range, incl. > 2^53
  if (rng() % 2 == 0) {
    ae::SimParams p;
    p.baseline_loss_db = random_double(rng);
    p.enb_noise_figure_db = random_double(rng);
    p.ue_noise_figure_db = random_double(rng);
    p.backhaul_bw_mbps = random_double(rng);
    p.backhaul_delay_ms = random_double(rng);
    p.compute_time_ms = random_double(rng);
    p.loading_time_ms = random_double(rng);
    q.sim_params = p;
  }
  return q;
}

ae::EpisodeResult random_result(std::mt19937_64& rng) {
  ae::EpisodeResult r;
  const std::size_t latencies = rng() % 64;  // often empty
  for (std::size_t i = 0; i < latencies; ++i) r.latencies_ms.push_back(random_double(rng));
  r.frames_completed = static_cast<std::size_t>(rng() % 100000);
  r.ul_tb_total = static_cast<int>(rng() % 1000000);
  r.ul_tb_err = static_cast<int>(rng() % 10000);
  r.dl_tb_total = static_cast<int>(rng() % 1000000);
  r.dl_tb_err = static_cast<int>(rng() % 10000);
  const std::size_t traces = rng() % 2 == 0 ? 0 : rng() % 16;  // empty half the time
  for (std::size_t i = 0; i < traces; ++i) {
    ae::FrameTrace t;
    t.id = rng();
    t.created_ms = random_double(rng);
    t.sent_ms = random_double(rng);
    t.ul_done_ms = random_double(rng);
    t.edge_in_ms = random_double(rng);
    t.compute_start_ms = random_double(rng);
    t.compute_done_ms = random_double(rng);
    t.enb_dl_ms = random_double(rng);
    t.completed_ms = random_double(rng);
    r.traces.push_back(t);
  }
  return r;
}

ae::EnvQuery roundtrip_query(const ae::EnvQuery& q, std::uint64_t id) {
  const auto frame = ar::encode_query(id, q);
  ar::WireReader reader(frame);
  const auto header = ar::decode_header(reader);
  EXPECT_EQ(header.type, ar::MsgType::kQuery);
  EXPECT_EQ(header.request_id, id);
  return ar::decode_query_body(reader);
}

ae::EpisodeResult roundtrip_result(const ae::EpisodeResult& r, std::uint64_t id) {
  const auto frame = ar::encode_result(id, r);
  ar::WireReader reader(frame);
  const auto header = ar::decode_header(reader);
  EXPECT_EQ(header.type, ar::MsgType::kResult);
  EXPECT_EQ(header.request_id, id);
  return ar::decode_result_body(reader);
}

}  // namespace

TEST(RpcCodec, QueryRoundTripsBitIdentically) {
  std::mt19937_64 rng(0xA71A5u);
  for (int rep = 0; rep < 500; ++rep) {
    const ae::EnvQuery q = random_query(rng);
    const ae::EnvQuery back = roundtrip_query(q, rng());

    EXPECT_EQ(back.backend, q.backend);
    const auto cv = q.config.to_vec();
    const auto bv = back.config.to_vec();
    ASSERT_EQ(cv.size(), bv.size());
    for (std::size_t i = 0; i < cv.size(); ++i) {
      EXPECT_TRUE(same_bits(cv[i], bv[i])) << "config dim " << i;
    }
    EXPECT_EQ(back.workload.traffic, q.workload.traffic);
    EXPECT_TRUE(same_bits(back.workload.duration_ms, q.workload.duration_ms));
    EXPECT_TRUE(same_bits(back.workload.distance_m, q.workload.distance_m));
    EXPECT_EQ(back.workload.random_walk, q.workload.random_walk);
    EXPECT_EQ(back.workload.extra_users, q.workload.extra_users);
    EXPECT_EQ(back.workload.collect_traces, q.workload.collect_traces);
    EXPECT_EQ(back.workload.seed, q.workload.seed);
    EXPECT_EQ(back.crn, q.crn);
    ASSERT_EQ(back.sim_params.has_value(), q.sim_params.has_value());
    if (q.sim_params) {
      const auto pv = q.sim_params->to_vec();
      const auto qv = back.sim_params->to_vec();
      ASSERT_EQ(pv.size(), qv.size());
      for (std::size_t i = 0; i < pv.size(); ++i) {
        EXPECT_TRUE(same_bits(pv[i], qv[i])) << "sim param " << i;
      }
    }
  }
}

TEST(RpcCodec, ResultRoundTripsBitIdentically) {
  std::mt19937_64 rng(0xEC0DECu);
  for (int rep = 0; rep < 500; ++rep) {
    const ae::EpisodeResult r = random_result(rng);
    const ae::EpisodeResult back = roundtrip_result(r, rng());

    ASSERT_EQ(back.latencies_ms.size(), r.latencies_ms.size());
    for (std::size_t i = 0; i < r.latencies_ms.size(); ++i) {
      EXPECT_TRUE(same_bits(back.latencies_ms[i], r.latencies_ms[i])) << "latency " << i;
    }
    EXPECT_EQ(back.frames_completed, r.frames_completed);
    EXPECT_EQ(back.ul_tb_total, r.ul_tb_total);
    EXPECT_EQ(back.ul_tb_err, r.ul_tb_err);
    EXPECT_EQ(back.dl_tb_total, r.dl_tb_total);
    EXPECT_EQ(back.dl_tb_err, r.dl_tb_err);
    ASSERT_EQ(back.traces.size(), r.traces.size());
    for (std::size_t i = 0; i < r.traces.size(); ++i) {
      EXPECT_EQ(back.traces[i].id, r.traces[i].id);
      EXPECT_TRUE(same_bits(back.traces[i].created_ms, r.traces[i].created_ms));
      EXPECT_TRUE(same_bits(back.traces[i].completed_ms, r.traces[i].completed_ms));
      EXPECT_TRUE(same_bits(back.traces[i].compute_start_ms, r.traces[i].compute_start_ms));
    }
  }
}

TEST(RpcCodec, ErrorRoundTrips) {
  const auto frame = ar::encode_error(77, "no such backend");
  ar::WireReader reader(frame);
  const auto header = ar::decode_header(reader);
  EXPECT_EQ(header.type, ar::MsgType::kError);
  EXPECT_EQ(header.request_id, 77u);
  EXPECT_EQ(ar::decode_error_body(reader), "no such backend");
}

TEST(RpcCodec, TruncatedFramesAreRejected) {
  std::mt19937_64 rng(3);
  const auto frame = ar::encode_query(1, random_query(rng));
  // Every proper prefix must throw, never read past the end or misdecode.
  for (std::size_t keep = 0; keep < frame.size(); ++keep) {
    std::vector<std::uint8_t> cut(frame.begin(), frame.begin() + keep);
    ar::WireReader reader(cut);
    EXPECT_THROW(
        {
          const auto header = ar::decode_header(reader);
          if (header.type == ar::MsgType::kQuery) (void)ar::decode_query_body(reader);
        },
        ar::CodecError)
        << "prefix of " << keep << " bytes";
  }
}

TEST(RpcCodec, CorruptedHeadersAreRejected) {
  std::mt19937_64 rng(4);
  const auto good = ar::encode_result(9, random_result(rng));

  {  // flipped magic
    auto bad = good;
    bad[0] ^= 0xFF;
    ar::WireReader reader(bad);
    EXPECT_THROW((void)ar::decode_header(reader), ar::CodecError);
  }
  {  // future wire version
    auto bad = good;
    bad[4] = 0x7F;
    ar::WireReader reader(bad);
    EXPECT_THROW((void)ar::decode_header(reader), ar::CodecError);
  }
  {  // unknown message type
    auto bad = good;
    bad[6] = 0x63;
    ar::WireReader reader(bad);
    EXPECT_THROW((void)ar::decode_header(reader), ar::CodecError);
  }
}

TEST(RpcCodec, TrailingGarbageIsRejected) {
  std::mt19937_64 rng(5);
  auto frame = ar::encode_query(2, random_query(rng));
  frame.push_back(0xAB);
  ar::WireReader reader(frame);
  (void)ar::decode_header(reader);
  EXPECT_THROW((void)ar::decode_query_body(reader), ar::CodecError);
}

TEST(RpcCodec, StatsSnapshotRoundTrips) {
  // Wire v3: a worker's EnvServiceStats — counters, per-backend rows, and the
  // sparse-encoded serving histograms — must survive the trip exactly.
  ae::EnvServiceStats stats;
  stats.offline_queries = 120;
  stats.online_queries = 7;
  stats.cache_hits = 60;
  stats.cache_misses = 67;
  stats.crn_hits = 41;
  for (int i = 0; i < 3; ++i) {
    ae::BackendStats b;
    b.name = "backend-" + std::to_string(i);
    b.kind = i == 2 ? ae::BackendKind::kOnline : ae::BackendKind::kOffline;
    b.queries = 40 + static_cast<std::uint64_t>(i);
    b.cache_hits = 20;
    b.cache_misses = 20;
    b.crn_hits = 13;
    b.episodes = 27;
    b.cost_hint = i == 0 ? 1.0 : 1000.0;
    b.rpc_retries = static_cast<std::uint64_t>(i);
    b.rpc_failures = 0;
    if (i == 1) {
      for (int s = 0; s < 50; ++s) b.rpc_rtt_ns.record(100000 + s * 7919);
    }
    stats.backends.push_back(std::move(b));
  }
  for (int s = 0; s < 200; ++s) stats.query_latency_ns.record(1000 + s * 997);
  for (int s = 0; s < 40; ++s) stats.queue_depth.record(static_cast<std::uint64_t>(s % 5));
  for (int s = 0; s < 30; ++s) stats.rpc_service_ns.record(500000 + s);

  const auto frame = ar::encode_stats_snapshot(42, stats);
  ar::WireReader reader(frame);
  const auto header = ar::decode_header(reader);
  EXPECT_EQ(header.type, ar::MsgType::kStatsSnapshot);
  EXPECT_EQ(header.request_id, 42u);
  const ae::EnvServiceStats back = ar::decode_stats_snapshot_body(reader);

  EXPECT_EQ(back.offline_queries, stats.offline_queries);
  EXPECT_EQ(back.online_queries, stats.online_queries);
  EXPECT_EQ(back.cache_hits, stats.cache_hits);
  EXPECT_EQ(back.cache_misses, stats.cache_misses);
  EXPECT_EQ(back.crn_hits, stats.crn_hits);
  ASSERT_EQ(back.backends.size(), stats.backends.size());
  for (std::size_t i = 0; i < stats.backends.size(); ++i) {
    EXPECT_EQ(back.backends[i].name, stats.backends[i].name);
    EXPECT_EQ(back.backends[i].kind, stats.backends[i].kind);
    EXPECT_EQ(back.backends[i].queries, stats.backends[i].queries);
    EXPECT_EQ(back.backends[i].crn_hits, stats.backends[i].crn_hits);
    EXPECT_EQ(back.backends[i].episodes, stats.backends[i].episodes);
    EXPECT_TRUE(same_bits(back.backends[i].cost_hint, stats.backends[i].cost_hint));
    EXPECT_EQ(back.backends[i].rpc_retries, stats.backends[i].rpc_retries);
    EXPECT_EQ(back.backends[i].rpc_rtt_ns.counts(), stats.backends[i].rpc_rtt_ns.counts());
    EXPECT_EQ(back.backends[i].rpc_rtt_ns.sum(), stats.backends[i].rpc_rtt_ns.sum());
  }
  EXPECT_EQ(back.query_latency_ns.counts(), stats.query_latency_ns.counts());
  EXPECT_EQ(back.query_latency_ns.sum(), stats.query_latency_ns.sum());
  EXPECT_EQ(back.queue_depth.counts(), stats.queue_depth.counts());
  EXPECT_EQ(back.rpc_service_ns.counts(), stats.rpc_service_ns.counts());
}

TEST(RpcCodec, EmptyStatsSnapshotRoundTrips) {
  const auto frame = ar::encode_stats_snapshot(1, ae::EnvServiceStats{});
  ar::WireReader reader(frame);
  EXPECT_EQ(ar::decode_header(reader).type, ar::MsgType::kStatsSnapshot);
  const ae::EnvServiceStats back = ar::decode_stats_snapshot_body(reader);
  EXPECT_TRUE(back.backends.empty());
  EXPECT_TRUE(back.query_latency_ns.empty());
  EXPECT_EQ(back.total_queries(), 0u);
}

TEST(RpcCodec, StatsRequestIsHeaderOnly) {
  const auto frame = ar::encode_stats_request(9);
  ar::WireReader reader(frame);
  const auto header = ar::decode_header(reader);
  EXPECT_EQ(header.type, ar::MsgType::kStatsRequest);
  EXPECT_EQ(header.request_id, 9u);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(RpcCodec, ImplausibleElementCountsAreRejectedNotAllocated) {
  // A corrupted latency count must throw before the decoder tries to
  // reserve terabytes.
  ar::WireWriter w;
  w.u32(ar::kWireMagic);
  w.u16(ar::kWireVersion);
  w.u16(static_cast<std::uint16_t>(ar::MsgType::kResult));
  w.u64(1);                        // request id
  w.u64(0xFFFFFFFFFFFFFFFFull);    // latency count
  const auto frame = w.take();
  ar::WireReader reader(frame);
  (void)ar::decode_header(reader);
  EXPECT_THROW((void)ar::decode_result_body(reader), ar::CodecError);
}

// ---- wire v4: cross-version compatibility -----------------------------------

TEST(RpcCodec, V3StampedFramesStillDecodeOnAV4Build) {
  // A v3 peer's frames must decode unchanged: the v3 bodies are a strict
  // subset of v4 (and of v5), and decode_header surfaces the sender's
  // version so a server can echo it on the reply AND hand it to the body
  // decoder (the v5 fields exist only at v5).
  std::mt19937_64 rng(0x33u);
  const ae::EnvQuery q = random_query(rng);
  const auto frame = ar::encode_query(17, q, /*version=*/3);
  ar::WireReader reader(frame);
  const auto header = ar::decode_header(reader);
  EXPECT_EQ(header.version, 3u);
  EXPECT_EQ(header.type, ar::MsgType::kQuery);
  const ae::EnvQuery back = ar::decode_query_body(reader, header.version);
  EXPECT_EQ(back.workload.seed, q.workload.seed);
  // A v3 body carries no overload fields; they come back as the defaults.
  EXPECT_EQ(back.deadline_ms, 0.0);
  EXPECT_EQ(back.priority, ae::QueryPriority::kNormal);

  const ae::EpisodeResult r = random_result(rng);
  const auto reply = ar::encode_result(17, r, /*version=*/3);  // server echoes v3
  ar::WireReader reply_reader(reply);
  const auto reply_header = ar::decode_header(reply_reader);
  EXPECT_EQ(reply_header.version, 3u);
  const ae::EpisodeResult back_r = ar::decode_result_body(reply_reader, reply_header.version);
  ASSERT_EQ(back_r.latencies_ms.size(), r.latencies_ms.size());
  for (std::size_t i = 0; i < r.latencies_ms.size(); ++i) {
    EXPECT_TRUE(same_bits(back_r.latencies_ms[i], r.latencies_ms[i]));
  }
  EXPECT_FALSE(back_r.is_rejected());
}

TEST(RpcCodec, V4OnlyMessageTypesAreRejectedOnV3Frames) {
  // A farm-control frame stamped v3 is a protocol violation: the message
  // type does not exist at that version.
  for (const auto& frame : {ar::encode_hello(1), ar::encode_heartbeat(2), ar::encode_cancel(3),
                            ar::encode_memo_export(4, 0)}) {
    auto bad = frame;
    bad[4] = 3;  // version u16 lives after the u32 magic
    bad[5] = 0;
    ar::WireReader reader(bad);
    EXPECT_THROW((void)ar::decode_header(reader), ar::CodecError);
  }
  // The same frames decode fine with their native v4 stamp.
  const auto good = ar::encode_hello(1);
  ar::WireReader reader(good);
  const auto header = ar::decode_header(reader);
  EXPECT_EQ(header.type, ar::MsgType::kHello);
  EXPECT_EQ(header.version, ar::kWireVersion);
}

TEST(RpcCodec, VersionsBelowTheCompatibilityWindowAreRejected) {
  std::mt19937_64 rng(0x22u);
  auto frame = ar::encode_query(5, random_query(rng));
  frame[4] = static_cast<std::uint8_t>(ar::kMinWireVersion - 1);
  frame[5] = 0;
  ar::WireReader reader(frame);
  EXPECT_THROW((void)ar::decode_header(reader), ar::CodecError);
}

TEST(RpcCodec, AnnounceRoundTrips) {
  ae::WorkerAnnounce announce;
  announce.build = "atlas-episode-worker";
  announce.wire_version = ar::kWireVersion;
  announce.threads = 8;
  announce.cache_capacity = 65536;
  ae::WorkerBackendInfo sim;
  sim.name = "sim-0";
  sim.kind = ae::BackendKind::kOffline;
  sim.cost_hint = 1000.0;
  sim.accepts_sim_params = true;
  sim.params_digest = 0xDEADBEEFCAFEF00Dull;
  ae::WorkerBackendInfo real;
  real.name = "real-0";
  real.kind = ae::BackendKind::kOnline;
  announce.backends = {sim, real};

  const auto frame = ar::encode_announce(42, announce);
  ar::WireReader reader(frame);
  const auto header = ar::decode_header(reader);
  EXPECT_EQ(header.type, ar::MsgType::kAnnounce);
  EXPECT_EQ(header.request_id, 42u);
  const ae::WorkerAnnounce back = ar::decode_announce_body(reader);
  EXPECT_EQ(back.build, announce.build);
  EXPECT_EQ(back.wire_version, announce.wire_version);
  EXPECT_EQ(back.threads, announce.threads);
  EXPECT_EQ(back.cache_capacity, announce.cache_capacity);
  ASSERT_EQ(back.backends.size(), 2u);
  EXPECT_EQ(back.backends[0].name, "sim-0");
  EXPECT_EQ(back.backends[0].kind, ae::BackendKind::kOffline);
  EXPECT_TRUE(same_bits(back.backends[0].cost_hint, 1000.0));
  EXPECT_TRUE(back.backends[0].accepts_sim_params);
  EXPECT_EQ(back.backends[0].params_digest, sim.params_digest);
  EXPECT_EQ(back.backends[0].equivalence_key(), sim.equivalence_key());
  EXPECT_EQ(back.backends[1].kind, ae::BackendKind::kOnline);
}

TEST(RpcCodec, HeartbeatAckRoundTrips) {
  ae::WorkerHealth health;
  health.outstanding = 3;
  health.cache_entries = 1234;
  health.episodes = 98765;
  const auto frame = ar::encode_heartbeat_ack(7, health);
  ar::WireReader reader(frame);
  EXPECT_EQ(ar::decode_header(reader).type, ar::MsgType::kHeartbeatAck);
  const ae::WorkerHealth back = ar::decode_heartbeat_ack_body(reader);
  EXPECT_EQ(back.outstanding, 3u);
  EXPECT_EQ(back.cache_entries, 1234u);
  EXPECT_EQ(back.episodes, 98765u);
}

TEST(RpcCodec, MemoSnapshotRoundTripsBitIdentically) {
  // Migrated memo entries must survive the trip EXACTLY — a migrated entry
  // that differs by one bit would break result determinism on revisit.
  std::mt19937_64 rng(0x4444u);
  std::vector<ae::MemoEntrySnapshot> memo;
  for (int i = 0; i < 16; ++i) {
    ae::MemoEntrySnapshot entry;
    const std::size_t keys = 1 + rng() % 12;
    for (std::size_t k = 0; k < keys; ++k) entry.key.push_back(random_double(rng));
    entry.result = random_result(rng);
    entry.cost = random_double(rng);
    memo.push_back(std::move(entry));
  }

  const auto frame = ar::encode_memo_snapshot(9, memo);
  ar::WireReader reader(frame);
  EXPECT_EQ(ar::decode_header(reader).type, ar::MsgType::kMemoSnapshot);
  const auto back = ar::decode_memo_snapshot_body(reader);
  ASSERT_EQ(back.size(), memo.size());
  for (std::size_t i = 0; i < memo.size(); ++i) {
    ASSERT_EQ(back[i].key.size(), memo[i].key.size());
    for (std::size_t k = 0; k < memo[i].key.size(); ++k) {
      EXPECT_TRUE(same_bits(back[i].key[k], memo[i].key[k])) << "entry " << i << " key " << k;
    }
    EXPECT_TRUE(same_bits(back[i].cost, memo[i].cost));
    ASSERT_EQ(back[i].result.latencies_ms.size(), memo[i].result.latencies_ms.size());
    for (std::size_t k = 0; k < memo[i].result.latencies_ms.size(); ++k) {
      EXPECT_TRUE(same_bits(back[i].result.latencies_ms[k], memo[i].result.latencies_ms[k]));
    }
    EXPECT_EQ(back[i].result.frames_completed, memo[i].result.frames_completed);
    EXPECT_EQ(back[i].result.traces.size(), memo[i].result.traces.size());
  }
}

TEST(RpcCodec, InstallBackendRoundTrips) {
  std::mt19937_64 rng(0x5555u);
  ae::BackendInstallRequest request;
  request.target_backend = -1;  // fresh install, not a memo-merge
  request.descriptor.name = "sim-migrated";
  request.descriptor.kind = ae::BackendKind::kOffline;
  request.descriptor.accepts_sim_params = true;
  request.descriptor.params_digest = 77;
  ae::SimParams params;
  params.backhaul_delay_ms = random_double(rng);
  params.compute_time_ms = random_double(rng);
  request.sim_params = params;
  ae::MemoEntrySnapshot entry;
  entry.key = {0.0, random_double(rng)};
  entry.result = random_result(rng);
  request.memo.push_back(std::move(entry));

  const auto frame = ar::encode_install_backend(11, request);
  ar::WireReader reader(frame);
  EXPECT_EQ(ar::decode_header(reader).type, ar::MsgType::kInstallBackend);
  const ae::BackendInstallRequest back = ar::decode_install_backend_body(reader);
  EXPECT_EQ(back.target_backend, -1);
  EXPECT_EQ(back.descriptor.name, "sim-migrated");
  EXPECT_EQ(back.descriptor.params_digest, 77u);
  ASSERT_TRUE(back.sim_params.has_value());
  EXPECT_TRUE(same_bits(back.sim_params->backhaul_delay_ms, params.backhaul_delay_ms));
  EXPECT_TRUE(same_bits(back.sim_params->compute_time_ms, params.compute_time_ms));
  ASSERT_EQ(back.memo.size(), 1u);
  EXPECT_TRUE(same_bits(back.memo[0].key[1], request.memo[0].key[1]));

  // Memo-merge form: target >= 0, no params.
  ae::BackendInstallRequest merge;
  merge.target_backend = 2;
  const auto merge_frame = ar::encode_install_backend(12, merge);
  ar::WireReader merge_reader(merge_frame);
  (void)ar::decode_header(merge_reader);
  const auto merge_back = ar::decode_install_backend_body(merge_reader);
  EXPECT_EQ(merge_back.target_backend, 2);
  EXPECT_FALSE(merge_back.sim_params.has_value());
  EXPECT_TRUE(merge_back.memo.empty());
}

TEST(RpcCodec, InstallAckAndMemoExportRoundTrip) {
  const auto ack = ar::encode_install_ack(3, ae::InstallResult{.backend = 5, .imported = 999});
  ar::WireReader ack_reader(ack);
  EXPECT_EQ(ar::decode_header(ack_reader).type, ar::MsgType::kInstallAck);
  const ae::InstallResult back = ar::decode_install_ack_body(ack_reader);
  EXPECT_EQ(back.backend, 5u);
  EXPECT_EQ(back.imported, 999u);

  const auto exp = ar::encode_memo_export(4, 9);
  ar::WireReader exp_reader(exp);
  EXPECT_EQ(ar::decode_header(exp_reader).type, ar::MsgType::kMemoExport);
  EXPECT_EQ(ar::decode_memo_export_body(exp_reader), 9u);
}

// ---- wire v5: overload-protection fields ------------------------------------

TEST(RpcCodec, V5QueryCarriesDeadlineAndPriority) {
  std::mt19937_64 rng(0x5005u);
  for (int rep = 0; rep < 100; ++rep) {
    ae::EnvQuery q = random_query(rng);
    q.deadline_ms = rng() % 2 == 0 ? 0.0 : random_double(rng);
    q.priority = rng() % 2 == 0 ? ae::QueryPriority::kSpeculative : ae::QueryPriority::kNormal;
    const ae::EnvQuery back = roundtrip_query(q, rng());
    EXPECT_TRUE(same_bits(back.deadline_ms, q.deadline_ms));
    EXPECT_EQ(back.priority, q.priority);
  }
}

TEST(RpcCodec, V5ResultCarriesRejectReason) {
  std::mt19937_64 rng(0x5105u);
  for (const auto reason : {ae::RejectReason::kNone, ae::RejectReason::kShedded,
                            ae::RejectReason::kDeadlineExceeded}) {
    ae::EpisodeResult r;  // a rejection carries no measurements
    r.rejected = reason;
    const ae::EpisodeResult back = roundtrip_result(r, rng());
    EXPECT_EQ(back.rejected, reason);
  }
  // An out-of-range reject reason byte is a protocol violation, not UB.
  ae::EpisodeResult r;
  auto frame = ar::encode_result(3, r);
  frame.back() = 0x7F;  // the reject-reason u8 is the final body byte at v5
  ar::WireReader reader(frame);
  (void)ar::decode_header(reader);
  EXPECT_THROW((void)ar::decode_result_body(reader), ar::CodecError);
}

TEST(RpcCodec, V4StampedFramesDecodeWithDefaultOverloadFields) {
  // A v4 peer (previous release) sends shorter bodies; a v5 build must
  // decode them with the overload fields defaulted, and must emit
  // v4-truncated bodies when echoing that peer's version.
  std::mt19937_64 rng(0x4455u);
  ae::EnvQuery q = random_query(rng);
  q.deadline_ms = 1234.5;                       // must NOT survive a v4 trip
  q.priority = ae::QueryPriority::kSpeculative;  // ditto
  const auto frame = ar::encode_query(21, q, /*version=*/4);
  ar::WireReader reader(frame);
  const auto header = ar::decode_header(reader);
  EXPECT_EQ(header.version, 4u);
  const ae::EnvQuery back = ar::decode_query_body(reader, header.version);
  EXPECT_EQ(back.workload.seed, q.workload.seed);
  EXPECT_EQ(back.deadline_ms, 0.0);
  EXPECT_EQ(back.priority, ae::QueryPriority::kNormal);

  const ae::EpisodeResult r = random_result(rng);
  const auto reply = ar::encode_result(21, r, /*version=*/4);
  ar::WireReader reply_reader(reply);
  const auto reply_header = ar::decode_header(reply_reader);
  const ae::EpisodeResult back_r = ar::decode_result_body(reply_reader, reply_header.version);
  EXPECT_EQ(back_r.frames_completed, r.frames_completed);
  EXPECT_FALSE(back_r.is_rejected());
}

TEST(RpcCodec, V5StatsSnapshotCarriesOverloadCounters) {
  ae::EnvServiceStats stats;
  stats.offline_queries = 10;
  stats.shed_total = 4;
  stats.deadline_rejected = 2;
  ae::BackendStats b;
  b.name = "sim-0";
  b.queries = 10;
  b.shedded = 3;
  b.deadline_rejected = 1;
  b.rpc_reconnects = 7;
  stats.backends.push_back(std::move(b));

  const auto frame = ar::encode_stats_snapshot(8, stats);
  ar::WireReader reader(frame);
  const auto header = ar::decode_header(reader);
  const ae::EnvServiceStats back = ar::decode_stats_snapshot_body(reader, header.version);
  EXPECT_EQ(back.shed_total, 4u);
  EXPECT_EQ(back.deadline_rejected, 2u);
  ASSERT_EQ(back.backends.size(), 1u);
  EXPECT_EQ(back.backends[0].shedded, 3u);
  EXPECT_EQ(back.backends[0].deadline_rejected, 1u);
  EXPECT_EQ(back.backends[0].rpc_reconnects, 7u);
  EXPECT_EQ(back.backends[0].rejected(), 4u);

  // The same snapshot at v4 drops the counters (shorter body, no garbage).
  const auto v4_frame = ar::encode_stats_snapshot(8, stats, /*version=*/4);
  ar::WireReader v4_reader(v4_frame);
  const auto v4_header = ar::decode_header(v4_reader);
  const ae::EnvServiceStats v4_back = ar::decode_stats_snapshot_body(v4_reader, v4_header.version);
  EXPECT_EQ(v4_back.shed_total, 0u);
  EXPECT_EQ(v4_back.backends[0].shedded, 0u);
  EXPECT_EQ(v4_back.backends[0].queries, 10u);
}

TEST(RpcCodec, CancelIsHeaderOnly) {
  const auto frame = ar::encode_cancel(0xABCDEF);
  ar::WireReader reader(frame);
  const auto header = ar::decode_header(reader);
  EXPECT_EQ(header.type, ar::MsgType::kCancel);
  EXPECT_EQ(header.request_id, 0xABCDEFu);
  EXPECT_EQ(reader.remaining(), 0u);
}
