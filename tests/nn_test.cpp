#include <gtest/gtest.h>

#include <cmath>

#include "math/rng.hpp"
#include "nn/mlp.hpp"
#include "nn/optim.hpp"

namespace am = atlas::math;
namespace an = atlas::nn;

namespace {

/// Finite-difference gradient check of a scalar loss over all parameters.
double mse_loss(an::Mlp& mlp, const am::Matrix& x, const am::Vec& y) {
  const am::Matrix out = mlp.forward_const(x);
  double loss = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double e = out(i, 0) - y[i];
    loss += e * e;
  }
  return loss / static_cast<double>(x.rows());
}

}  // namespace

TEST(Mlp, ForwardShapes) {
  am::Rng rng(1);
  an::Mlp mlp({3, 8, 1}, rng);
  EXPECT_EQ(mlp.input_dim(), 3u);
  EXPECT_EQ(mlp.output_dim(), 1u);
  am::Matrix x(5, 3, 0.5);
  EXPECT_EQ(mlp.forward_const(x).rows(), 5u);
}

TEST(Mlp, GradientMatchesFiniteDifferences) {
  am::Rng rng(2);
  an::Mlp mlp({2, 6, 5, 1}, rng);
  am::Matrix x(4, 2);
  am::Vec y(4);
  for (std::size_t i = 0; i < 4; ++i) {
    x(i, 0) = rng.uniform(-1, 1);
    x(i, 1) = rng.uniform(-1, 1);
    y[i] = rng.uniform(-1, 1);
  }
  // Analytic gradients.
  mlp.zero_grad();
  const am::Matrix out = mlp.forward(x);
  am::Matrix dloss(4, 1);
  for (std::size_t i = 0; i < 4; ++i) dloss(i, 0) = 2.0 * (out(i, 0) - y[i]) / 4.0;
  mlp.backward(dloss);

  const double eps = 1e-6;
  std::size_t checked = 0;
  for (auto& view : mlp.params()) {
    for (std::size_t j = 0; j < view.size; j += 7) {  // sample every 7th weight
      const double orig = view.value[j];
      view.value[j] = orig + eps;
      const double up = mse_loss(mlp, x, y);
      view.value[j] = orig - eps;
      const double down = mse_loss(mlp, x, y);
      view.value[j] = orig;
      const double fd = (up - down) / (2.0 * eps);
      EXPECT_NEAR(view.grad[j], fd, 1e-4 * std::max(1.0, std::fabs(fd)))
          << "param index " << j;
      ++checked;
    }
  }
  EXPECT_GT(checked, 10u);
}

TEST(Mlp, LearnsQuadratic) {
  am::Rng rng(3);
  an::Mlp mlp({1, 32, 32, 1}, rng);
  const std::size_t n = 256;
  am::Matrix x(n, 1);
  am::Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = rng.uniform(-1.0, 1.0);
    x(i, 0) = v;
    y[i] = v * v;
  }
  an::Adam opt(3e-3);
  double loss = 0.0;
  for (int e = 0; e < 300; ++e) loss = mlp.train_epoch_mse(x, y, opt, 32, rng);
  EXPECT_LT(loss, 5e-3);
  EXPECT_NEAR(mlp.predict_scalar({0.5}), 0.25, 0.08);
}

TEST(Mlp, CopyIsIndependent) {
  am::Rng rng(4);
  an::Mlp a({1, 8, 1}, rng);
  an::Mlp b = a;  // DLDA's teacher -> student transfer relies on deep copy
  const double before = b.predict_scalar({0.3});
  am::Matrix x(16, 1, 0.3);
  am::Vec y(16, 5.0);
  an::Adam opt(1e-2);
  for (int e = 0; e < 50; ++e) a.train_epoch_mse(x, y, opt, 8, rng);
  EXPECT_DOUBLE_EQ(b.predict_scalar({0.3}), before);
  EXPECT_NE(a.predict_scalar({0.3}), before);
}

TEST(Optim, SgdDescendsQuadratic) {
  // One parameter, loss (w-3)^2: gradient 2(w-3).
  double w = 0.0;
  double g = 0.0;
  std::vector<an::ParamView> views{{&w, &g, 1}};
  an::Sgd opt(0.1, 0.0);
  for (int i = 0; i < 200; ++i) {
    g = 2.0 * (w - 3.0);
    opt.step(views);
  }
  EXPECT_NEAR(w, 3.0, 1e-6);
}

TEST(Optim, AdamDescendsQuadratic) {
  double w = 0.0;
  double g = 0.0;
  std::vector<an::ParamView> views{{&w, &g, 1}};
  an::Adam opt(0.05);
  for (int i = 0; i < 500; ++i) {
    g = 2.0 * (w - 3.0);
    opt.step(views);
  }
  EXPECT_NEAR(w, 3.0, 1e-3);
}

TEST(Optim, AdadeltaDescendsQuadratic) {
  double w = 0.0;
  double g = 0.0;
  std::vector<an::ParamView> views{{&w, &g, 1}};
  an::Adadelta opt(1.0);  // the paper's configuration: lr 1.0
  for (int i = 0; i < 4000; ++i) {
    g = 2.0 * (w - 3.0);
    opt.step(views);
  }
  EXPECT_NEAR(w, 3.0, 0.05);
}

TEST(Optim, StepLrDecaysGeometrically) {
  an::Sgd opt(1.0);
  an::StepLr sched(opt, 1, 0.999);  // paper: gamma 0.999 per step
  for (int i = 0; i < 100; ++i) sched.step();
  EXPECT_NEAR(opt.learning_rate(), std::pow(0.999, 100), 1e-12);
}

TEST(Optim, StepLrStepSizeRespected) {
  an::Sgd opt(1.0);
  an::StepLr sched(opt, 10, 0.5);
  for (int i = 0; i < 9; ++i) sched.step();
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 1.0);
  sched.step();
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.5);
}
