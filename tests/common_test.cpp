#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "common/options.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace ac = atlas::common;

TEST(Table, RejectsArityMismatch) {
  ac::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, AlignedOutputContainsAllCells) {
  ac::Table t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"a-much-longer-name", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("a-much-longer-name"), std::string::npos);
  EXPECT_NE(s.find("| name"), std::string::npos);
}

TEST(Table, CsvOutput) {
  ac::Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Formatting, FixedAndPercent) {
  EXPECT_EQ(ac::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(ac::fmt(2.0, 0), "2");
  EXPECT_EQ(ac::fmt_pct(0.1981), "19.8%");
  EXPECT_EQ(ac::fmt_pct(1.0, 0), "100%");
}

TEST(BenchOptions, ScalesIterationsWithFloor) {
  ac::BenchOptions opts;
  opts.scale = 0.1;
  EXPECT_EQ(opts.iters(100, 20), 20u);  // floor applies
  opts.scale = 2.0;
  EXPECT_EQ(opts.iters(100, 20), 200u);
}

TEST(BenchOptions, EpisodeSecondsBounded) {
  ac::BenchOptions opts;
  opts.scale = 0.05;
  EXPECT_GE(opts.episode_seconds(60.0), 4.0);
  opts.scale = 10.0;
  EXPECT_LE(opts.episode_seconds(60.0), 60.0);  // never above the base
}

TEST(BenchOptions, EnvParsing) {
  setenv("ATLAS_TEST_DOUBLE", "2.5", 1);
  EXPECT_DOUBLE_EQ(ac::env_double("ATLAS_TEST_DOUBLE", 1.0), 2.5);
  EXPECT_DOUBLE_EQ(ac::env_double("ATLAS_TEST_MISSING", 1.0), 1.0);
  setenv("ATLAS_TEST_BAD", "not-a-number", 1);
  EXPECT_DOUBLE_EQ(ac::env_double("ATLAS_TEST_BAD", 3.0), 3.0);
  unsetenv("ATLAS_TEST_DOUBLE");
  unsetenv("ATLAS_TEST_BAD");
}

TEST(ThreadPool, DefaultThreadCountNeverZero) {
  // The 0-argument fallback must request a real level of parallelism even
  // when hardware_concurrency() is unknown (it returns 0 on some platforms).
  EXPECT_GE(ac::ThreadPool::default_thread_count(), 1u);
  ac::ThreadPool pool;
  EXPECT_EQ(pool.size(), ac::ThreadPool::default_thread_count());
}

TEST(ThreadPool, RunsAllTasks) {
  ac::ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> count{0};
  pool.parallel_for(100, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ac::ThreadPool pool(2);
  auto f = pool.submit([] { return 42; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ExceptionsPropagateThroughParallelFor) {
  ac::ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(4,
                        [](std::size_t i) {
                          if (i == 2) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ReportsWorkerThreadMembership) {
  ac::ThreadPool pool(2);
  ac::ThreadPool other(1);
  EXPECT_FALSE(pool.on_worker_thread());  // the test thread is not a worker
  auto mine = pool.submit([&] { return pool.on_worker_thread(); });
  auto foreign = pool.submit([&] { return other.on_worker_thread(); });
  EXPECT_TRUE(mine.get());
  EXPECT_FALSE(foreign.get());  // membership is per pool, not "any pool"
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // A task that issues its own parallel_for occupies the only worker slot;
  // without the caller-runs fallback its subtasks would wait behind it in
  // the queue forever.
  ac::ThreadPool pool(1);
  std::atomic<int> count{0};
  auto outer = pool.submit([&] {
    pool.parallel_for(8, [&](std::size_t) { ++count; });
    return count.load();
  });
  EXPECT_EQ(outer.get(), 8);
}

TEST(ThreadPool, DeeplyNestedParallelForCompletes) {
  // Two levels of nesting (batch inside a batch inside a worker) exercise
  // recursive caller-runs draining.
  ac::ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) { ++count; });
  });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, NestedExceptionsStillPropagate) {
  ac::ThreadPool pool(1);
  auto outer = pool.submit([&] {
    pool.parallel_for(3, [](std::size_t i) {
      if (i == 1) throw std::runtime_error("nested boom");
    });
  });
  EXPECT_THROW(outer.get(), std::runtime_error);
}

TEST(ThreadPool, NestedTasksAreStolenByIdleWorkers) {
  // Work submitted from inside a worker lands on that worker's own deque.
  // The outer task then blocks both nested tasks on a 2-party rendezvous:
  // via the caller-runs fallback it executes one of them inline, which can
  // only ever complete if ANOTHER worker steals the second task from the
  // submitting worker's deque. A pool without stealing (the old shared
  // queue drained only through caller-runs here) would hang this test, and
  // the recorded thread ids must show two distinct workers.
  ac::ThreadPool pool(2);
  std::mutex m;
  std::condition_variable cv;
  int arrived = 0;
  std::set<std::thread::id> runners;
  auto outer = pool.submit([&] {
    pool.parallel_for(2, [&](std::size_t) {
      std::unique_lock lock(m);
      runners.insert(std::this_thread::get_id());
      ++arrived;
      cv.notify_all();
      cv.wait(lock, [&] { return arrived == 2; });
    });
  });
  outer.get();
  EXPECT_EQ(runners.size(), 2u);
}

TEST(ThreadPool, StealKeepsDeepNestingParallel) {
  // Head-of-line regression guard: a deep nested fan-out from one worker
  // must still spread across the pool instead of serializing behind the
  // nested caller. With 4 workers and 64 sleepy subtasks, at least one
  // other worker must have stolen some of them.
  ac::ThreadPool pool(4);
  std::mutex m;
  std::set<std::thread::id> runners;
  auto outer = pool.submit([&] {
    pool.parallel_for(64, [&](std::size_t) {
      {
        std::scoped_lock lock(m);
        runners.insert(std::this_thread::get_id());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
  });
  outer.get();
  EXPECT_GE(runners.size(), 2u);
}

TEST(ThreadPool, ParallelResultsMatchSerial) {
  // The deterministic-seeding contract: parallel evaluation with per-index
  // seeds must produce the same values regardless of scheduling.
  ac::ThreadPool pool(4);
  std::vector<double> parallel_out(64, 0.0);
  pool.parallel_for(64, [&](std::size_t i) {
    parallel_out[i] = static_cast<double>(i) * 1.5;
  });
  for (std::size_t i = 0; i < 64; ++i) {
    ASSERT_DOUBLE_EQ(parallel_out[i], static_cast<double>(i) * 1.5);
  }
}
