#include <gtest/gtest.h>

#include <cmath>

#include "gp/gaussian_process.hpp"
#include "gp/kernel.hpp"
#include "math/linalg.hpp"
#include "math/rng.hpp"

namespace am = atlas::math;
namespace ag = atlas::gp;

TEST(Kernel, ValueAtZeroDistanceIsVariance) {
  for (auto kind : {ag::KernelKind::kRbf, ag::KernelKind::kMatern12, ag::KernelKind::kMatern32,
                    ag::KernelKind::kMatern52}) {
    ag::Kernel k;
    k.kind = kind;
    k.variance = 2.5;
    EXPECT_NEAR(k.at_distance(0.0), 2.5, 1e-12);
  }
}

TEST(Kernel, MonotoneDecreasingInDistance) {
  for (auto kind : {ag::KernelKind::kRbf, ag::KernelKind::kMatern12, ag::KernelKind::kMatern32,
                    ag::KernelKind::kMatern52}) {
    ag::Kernel k;
    k.kind = kind;
    double prev = k.at_distance(0.0);
    for (double r = 0.1; r < 5.0; r += 0.1) {
      const double v = k.at_distance(r);
      ASSERT_LT(v, prev) << "kind " << static_cast<int>(kind) << " r " << r;
      prev = v;
    }
  }
}

TEST(Kernel, Matern52GeneralizesRbfAtLargeLength) {
  // As nu -> inf Matern approaches RBF; 5/2 is already close for small r.
  ag::Kernel m52{ag::KernelKind::kMatern52, 1.0, 1.0};
  ag::Kernel rbf{ag::KernelKind::kRbf, 1.0, 1.0};
  EXPECT_NEAR(m52.at_distance(0.1), rbf.at_distance(0.1), 0.01);
}

TEST(Kernel, GramIsSymmetricPsd) {
  am::Rng rng(1);
  am::Matrix x(12, 3);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 3; ++j) x(i, j) = rng.uniform(0, 1);
  }
  ag::Kernel k{ag::KernelKind::kMatern52, 1.0, 0.5};
  am::Matrix g = ag::gram(k, x);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 12; ++j) EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
    g(i, i) += 1e-9;
  }
  EXPECT_NO_THROW(am::cholesky_jittered(g));
}

TEST(Gp, InterpolatesNoiselessTrainingPoints) {
  ag::GpConfig cfg;
  cfg.noise_variance = 1e-8;
  cfg.optimize_hyperparams = false;
  ag::GaussianProcess gp(cfg);
  am::Matrix x(5, 1);
  am::Vec y{0.0, 0.8, 0.9, 0.2, -0.5};
  for (std::size_t i = 0; i < 5; ++i) x(i, 0) = static_cast<double>(i) / 5.0;
  gp.fit(x, y);
  for (std::size_t i = 0; i < 5; ++i) {
    const auto p = gp.predict(x.row(i));
    EXPECT_NEAR(p.mean, y[i], 1e-4);
    EXPECT_LT(p.std, 0.02);
  }
}

TEST(Gp, UncertaintyGrowsAwayFromData) {
  ag::GaussianProcess gp;
  am::Matrix x(4, 1);
  am::Vec y{0.1, 0.2, 0.15, 0.3};
  for (std::size_t i = 0; i < 4; ++i) x(i, 0) = 0.2 + 0.05 * static_cast<double>(i);
  gp.fit(x, y);
  EXPECT_GT(gp.predict({3.0}).std, gp.predict({0.25}).std);
}

TEST(Gp, PriorBeforeFit) {
  ag::GaussianProcess gp;
  EXPECT_FALSE(gp.fitted());
  const auto p = gp.predict({0.5});
  EXPECT_DOUBLE_EQ(p.mean, 0.0);
  EXPECT_GT(p.std, 0.0);
}

TEST(Gp, HyperparameterFitImprovesLml) {
  am::Rng rng(2);
  const std::size_t n = 40;
  am::Matrix x(n, 1);
  am::Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = static_cast<double>(i) / n;
    y[i] = std::sin(8.0 * x(i, 0)) + rng.normal(0.0, 0.05);
  }
  ag::GpConfig fixed;
  fixed.optimize_hyperparams = false;
  ag::GaussianProcess gp_fixed(fixed);
  gp_fixed.fit(x, y);

  ag::GpConfig tuned;
  tuned.optimize_hyperparams = true;
  ag::GaussianProcess gp_tuned(tuned);
  gp_tuned.fit(x, y);
  EXPECT_GE(gp_tuned.log_marginal_likelihood(), gp_fixed.log_marginal_likelihood());
}

TEST(Gp, NormalizationHandlesLargeOffsets) {
  // Targets around 1000 with small variation: normalize_y must keep the
  // posterior honest.
  ag::GaussianProcess gp;
  am::Matrix x(6, 1);
  am::Vec y{1000.0, 1001.0, 1002.0, 1001.5, 1000.5, 1002.5};
  for (std::size_t i = 0; i < 6; ++i) x(i, 0) = static_cast<double>(i) / 6.0;
  gp.fit(x, y);
  const auto p = gp.predict({0.25});
  EXPECT_NEAR(p.mean, 1001.0, 2.0);
}

TEST(Gp, RecoversSmoothFunction) {
  am::Rng rng(3);
  const std::size_t n = 60;
  am::Matrix x(n, 1);
  am::Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = static_cast<double>(i) / n;
    y[i] = 0.3 * std::sin(6.0 * x(i, 0)) + 0.5;
  }
  ag::GaussianProcess gp;
  gp.fit(x, y);
  double err = 0.0;
  for (double v = 0.05; v < 0.95; v += 0.1) {
    err += std::fabs(gp.predict({v}).mean - (0.3 * std::sin(6.0 * v) + 0.5));
  }
  EXPECT_LT(err / 9.0, 0.03);
}

TEST(Gp, BatchPredictMatchesScalar) {
  ag::GaussianProcess gp;
  am::Matrix x(5, 2);
  am::Vec y{1, 2, 3, 2, 1};
  am::Rng rng(4);
  for (std::size_t i = 0; i < 5; ++i) {
    x(i, 0) = rng.uniform(0, 1);
    x(i, 1) = rng.uniform(0, 1);
  }
  gp.fit(x, y);
  am::Matrix q(3, 2, 0.4);
  q(1, 0) = 0.1;
  q(2, 1) = 0.9;
  const auto batch = gp.predict_batch(q);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto p = gp.predict(q.row(i));
    EXPECT_DOUBLE_EQ(batch[i].mean, p.mean);
    EXPECT_DOUBLE_EQ(batch[i].std, p.std);
  }
}

TEST(Gp, FitValidatesInput) {
  ag::GaussianProcess gp;
  am::Matrix x(2, 1);
  EXPECT_THROW(gp.fit(x, {1.0}), std::invalid_argument);
  EXPECT_THROW(gp.fit(am::Matrix(0, 1), {}), std::invalid_argument);
}
