// The statistical harness behind the CRN seed plan: paired-vs-independent
// QoE comparisons at EQUAL episode budget, asserting the paired estimator's
// sample variance is lower by a real margin. Everything is seeded through
// the SeedPlan itself, so the test is fully deterministic — the asserted
// margins were measured at roughly half the observed variance-reduction
// ratio, not at flaky knife-edges.
//
// Where the pairing pays off in THIS engine: one RNG stream drives a whole
// episode in draw order, so two configurations stay synchronized under a
// common seed only while they consume draws identically. Comparisons along
// the transport/compute dimensions (cpu_ratio, backhaul) leave the RAN draw
// sequence aligned and inherit strong correlation (the textbook CRN win
// demonstrated here); comparisons that change the RAN allocation desync the
// stream and degenerate to independent sampling — which is why the plan
// also keeps the *revisit* case (same configuration across iterations),
// where the pairing is exact, the noise vanishes entirely, and the memo
// table serves the episode for free.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "env/env_service.hpp"
#include "env/seed_plan.hpp"
#include "math/stats.hpp"

namespace ae = atlas::env;

namespace {

constexpr double kThresholdMs = 300.0;
constexpr std::size_t kReplicates = 32;

ae::SliceConfig config(double bw, double cpu, double backhaul) {
  ae::SliceConfig c;
  c.bandwidth_ul = bw;
  c.bandwidth_dl = bw;
  c.cpu_ratio = cpu;
  c.backhaul_mbps = backhaul;
  return c;
}

ae::Workload workload(std::uint64_t seed) {
  ae::Workload wl;
  wl.traffic = 2;
  wl.duration_ms = 3000.0;
  wl.seed = seed;
  return wl;
}

/// Estimate Delta = QoE(a) - QoE(b) from `kReplicates` paired draws, seeding
/// config `a` as BO iteration 0 and config `b` as iteration 1 of the plan.
/// Under a CRN plan both iterations draw the identical seed block (paired
/// comparisons); under a fresh plan every episode gets its own seed
/// (independent comparisons). Either way the budget is exactly
/// 2 * kReplicates episodes — the plan changes the pairing, never the cost.
struct DiffEstimate {
  std::vector<double> diffs;
  std::uint64_t episodes = 0;
  std::uint64_t crn_hits = 0;

  double variance() const { return atlas::math::variance(diffs); }
  double mean() const { return atlas::math::mean(diffs); }
};

DiffEstimate estimate_difference(const ae::SliceConfig& a, const ae::SliceConfig& b,
                                 const ae::SeedPlanOptions& plan_options) {
  ae::EnvService service(ae::EnvServiceOptions{.threads = 2});
  const auto sim = service.add_simulator();
  const ae::SeedStream seeds =
      ae::SeedPlan(101, plan_options).stream(ae::SeedDomain::kStage2Query, kReplicates);

  auto run = [&](const ae::SliceConfig& c, std::uint64_t iteration, std::uint64_t replicate) {
    ae::EnvQuery q;
    q.backend = sim;
    q.config = c;
    q.workload = workload(0);
    seeds.apply(q, iteration, replicate);
    return service.run(q).qoe(kThresholdMs);
  };

  DiffEstimate est;
  for (std::uint64_t r = 0; r < kReplicates; ++r) {
    est.diffs.push_back(run(a, 0, r) - run(b, 1, r));
  }
  const auto stats = service.backend_stats(sim);
  est.episodes = stats.episodes;
  est.crn_hits = stats.crn_hits;
  return est;
}

ae::SeedPlanOptions crn_plan() {
  ae::SeedPlanOptions o;
  o.policy = ae::SeedPolicy::kCrn;
  o.replicates = kReplicates;
  return o;
}

}  // namespace

TEST(CrnVariance, PairedComparisonHasLowerVarianceAtEqualBudget) {
  // Two comparisons a BO iteration actually makes: trimming the edge-compute
  // share, and trimming the backhaul allocation, both at a fixed RAN share.
  const struct {
    const char* name;
    ae::SliceConfig a, b;
    double min_ratio;  ///< Asserted variance ratio; ~half the measured win.
  } cases[] = {
      // Measured ratios on the capture toolchain: 3.4x and 6.2x.
      {"cpu 0.5 vs 0.6", config(25, 0.5, 60), config(25, 0.6, 60), 1.6},
      {"backhaul 40 vs 50", config(25, 0.6, 40), config(25, 0.6, 50), 2.0},
  };

  for (const auto& c : cases) {
    const DiffEstimate indep = estimate_difference(c.a, c.b, ae::SeedPlanOptions{});
    const DiffEstimate paired = estimate_difference(c.a, c.b, crn_plan());

    // Equal episode budget: the plan never changes what a comparison costs.
    EXPECT_EQ(indep.episodes, 2 * kReplicates) << c.name;
    EXPECT_EQ(paired.episodes, 2 * kReplicates) << c.name;

    // Both estimators target the same quantity...
    EXPECT_NEAR(indep.mean(), paired.mean(), 0.1) << c.name;

    // ...but the paired one is strictly tighter, with margin.
    const double var_indep = indep.variance();
    const double var_paired = paired.variance();
    ASSERT_GT(var_paired, 0.0) << c.name;
    EXPECT_LT(var_paired, var_indep) << c.name;
    // The ratio margin is anchored to the capture toolchain's episode draws;
    // like the golden suites, a different libm/FP regime keeps the ordering
    // (asserted above) but not the exact ratio — CI's lenient mode skips the
    // margin the same way it skips pinned hashes.
    if (std::getenv("ATLAS_GOLDEN_TOOLCHAIN_LENIENT") == nullptr) {
      EXPECT_GE(var_indep / var_paired, c.min_ratio)
          << c.name << ": var_indep=" << var_indep << " var_paired=" << var_paired;
    }
  }
}

TEST(CrnVariance, RevisitedConfigurationIsNoiseFreeAndCostsNoEpisodes) {
  // The BO-revisit case (re-evaluating an incumbent in a later iteration):
  // under CRN the pairing is exact, so the iteration-over-iteration QoE
  // difference has zero variance — and the memo table serves the repeat for
  // free. Independent seeding pays full price for pure noise.
  const ae::SliceConfig incumbent = config(20, 0.6, 60);

  const DiffEstimate indep = estimate_difference(incumbent, incumbent, ae::SeedPlanOptions{});
  const DiffEstimate paired = estimate_difference(incumbent, incumbent, crn_plan());

  // Fresh: 2R distinct seeds -> 2R episodes, nonzero comparison noise.
  EXPECT_EQ(indep.episodes, 2 * kReplicates);
  EXPECT_EQ(indep.crn_hits, 0u);
  EXPECT_GT(indep.variance(), 0.0);

  // CRN: iteration 1 replays iteration 0's (config, seed) keys exactly.
  EXPECT_EQ(paired.episodes, kReplicates) << "the revisit must be served from the memo table";
  EXPECT_EQ(paired.crn_hits, kReplicates);
  EXPECT_EQ(paired.variance(), 0.0);
  for (double d : paired.diffs) EXPECT_EQ(d, 0.0);
}

TEST(CrnVariance, HarnessIsDeterministic) {
  // Fixed seeds end to end: the measured variances themselves must be
  // bit-stable across runs, or the margins above would be theater.
  const ae::SliceConfig a = config(25, 0.5, 60);
  const ae::SliceConfig b = config(25, 0.6, 60);
  const DiffEstimate once = estimate_difference(a, b, crn_plan());
  const DiffEstimate twice = estimate_difference(a, b, crn_plan());
  ASSERT_EQ(once.diffs.size(), twice.diffs.size());
  for (std::size_t i = 0; i < once.diffs.size(); ++i) {
    EXPECT_EQ(once.diffs[i], twice.diffs[i]);
  }
}
