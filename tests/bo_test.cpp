#include <gtest/gtest.h>

#include <cmath>

#include "bo/acquisition.hpp"
#include "bo/gp_bo.hpp"
#include "bo/space.hpp"
#include "math/rng.hpp"
#include "math/stats.hpp"

namespace am = atlas::math;
namespace ab = atlas::bo;

namespace {

ab::BoxSpace unit_box(std::size_t d) {
  std::vector<std::string> names;
  am::Vec lo(d, 0.0);
  am::Vec hi(d, 1.0);
  for (std::size_t i = 0; i < d; ++i) names.push_back("x" + std::to_string(i));
  return ab::BoxSpace(names, lo, hi);
}

}  // namespace

TEST(BoxSpace, NormalizeDenormalizeRoundTrip) {
  ab::BoxSpace space({"a", "b"}, {0.0, -5.0}, {50.0, 5.0});
  const am::Vec x{25.0, 0.0};
  const am::Vec u = space.normalize(x);
  EXPECT_DOUBLE_EQ(u[0], 0.5);
  EXPECT_DOUBLE_EQ(u[1], 0.5);
  const am::Vec back = space.denormalize(u);
  EXPECT_DOUBLE_EQ(back[0], x[0]);
  EXPECT_DOUBLE_EQ(back[1], x[1]);
}

TEST(BoxSpace, ClampAndValidation) {
  ab::BoxSpace space({"a"}, {0.0}, {10.0});
  EXPECT_DOUBLE_EQ(space.clamp({-3.0})[0], 0.0);
  EXPECT_DOUBLE_EQ(space.clamp({30.0})[0], 10.0);
  EXPECT_THROW(ab::BoxSpace({"a"}, {1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(space.normalize({1.0, 2.0}), std::invalid_argument);
}

TEST(BoxSpace, SamplesInsideBox) {
  ab::BoxSpace space({"a", "b"}, {2.0, -1.0}, {4.0, 1.0});
  am::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const am::Vec x = space.sample(rng);
    ASSERT_GE(x[0], 2.0);
    ASSERT_LT(x[0], 4.0);
    ASSERT_GE(x[1], -1.0);
    ASSERT_LT(x[1], 1.0);
  }
}

TEST(BoxSpace, DistanceIsNormalizedAndSymmetric) {
  ab::BoxSpace space({"a", "b"}, {0.0, 0.0}, {100.0, 1.0});
  const am::Vec x{0.0, 0.0};
  const am::Vec y{100.0, 1.0};
  // Corner-to-corner: sqrt(2)/sqrt(2) = 1 under the /sqrt(d) convention.
  EXPECT_NEAR(space.distance(x, y), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(space.distance(x, y), space.distance(y, x));
  EXPECT_DOUBLE_EQ(space.distance(x, x), 0.0);
}

TEST(BoxSpace, BallSamplingRespectsRadius) {
  const auto space = unit_box(4);
  am::Rng rng(2);
  const am::Vec center(4, 0.5);
  for (int i = 0; i < 500; ++i) {
    const am::Vec x = space.sample_in_ball(center, 0.2, rng);
    ASSERT_LE(space.distance(x, center), 0.2 + 1e-9);
  }
}

TEST(Acquisition, NormalCdfPdfSanity) {
  EXPECT_NEAR(ab::normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(ab::normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(ab::normal_pdf(0.0), 0.39894, 1e-4);
}

TEST(Acquisition, ExpectedImprovementProperties) {
  // Nonnegative; zero std reduces to max(best - mean, 0).
  EXPECT_GE(ab::expected_improvement(0.5, 0.1, 0.4), 0.0);
  EXPECT_DOUBLE_EQ(ab::expected_improvement(0.3, 0.0, 0.5), 0.2);
  EXPECT_DOUBLE_EQ(ab::expected_improvement(0.7, 0.0, 0.5), 0.0);
  // More uncertainty -> more EI at equal mean.
  EXPECT_GT(ab::expected_improvement(0.5, 0.3, 0.5), ab::expected_improvement(0.5, 0.1, 0.5));
}

TEST(Acquisition, ProbabilityOfImprovementMonotone) {
  // Lower mean -> higher probability of improving a minimization incumbent.
  EXPECT_GT(ab::probability_of_improvement(0.2, 0.1, 0.5),
            ab::probability_of_improvement(0.4, 0.1, 0.5));
  EXPECT_DOUBLE_EQ(ab::probability_of_improvement(0.2, 0.0, 0.5), 1.0);
}

TEST(Acquisition, ConfidenceBounds) {
  EXPECT_DOUBLE_EQ(ab::lower_confidence_bound(1.0, 0.5, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(ab::upper_confidence_bound(1.0, 0.5, 4.0), 2.0);
  // Negative beta treated as zero exploration.
  EXPECT_DOUBLE_EQ(ab::lower_confidence_bound(1.0, 0.5, -1.0), 1.0);
}

TEST(Acquisition, GpUcbBetaGrowsLogarithmically) {
  const double b1 = ab::gp_ucb_beta(1, 1000);
  const double b10 = ab::gp_ucb_beta(10, 1000);
  const double b100 = ab::gp_ucb_beta(100, 1000);
  EXPECT_GT(b10, b1);
  EXPECT_GT(b100, b10);
  // Log growth: increments shrink.
  EXPECT_LT(b100 - b10, 3.0 * (b10 - b1));
  // The theoretical schedule is large — the over-exploration Atlas avoids.
  EXPECT_GT(b100, 20.0);
}

TEST(Acquisition, CrgpUcbClipsAtB) {
  am::Rng rng(3);
  for (std::size_t n : {1u, 10u, 100u}) {
    for (int i = 0; i < 500; ++i) {
      const double beta = ab::crgp_ucb_beta(n, 0.1, 10.0, rng);
      ASSERT_GE(beta, 0.0);
      ASSERT_LE(beta, 10.0);
    }
  }
}

TEST(Acquisition, CrgpUcbConservativeVsGpUcb) {
  // The clipped randomized schedule stays well under the theoretical GP-UCB
  // beta — the conservatism argument of paper §6.2.
  am::Rng rng(4);
  am::RunningStats stats;
  for (int i = 0; i < 2000; ++i) stats.add(ab::crgp_ucb_beta(50, 0.1, 10.0, rng));
  EXPECT_LT(stats.mean(), ab::gp_ucb_beta(50, 2000));
}

TEST(Acquisition, RgpUcbGammaMeanMatchesTheory) {
  // Gamma(kappa, rho) has mean kappa * rho (Eq. 13's construction).
  am::Rng rng(5);
  const std::size_t n = 20;
  const double rho = 0.1;
  const double kappa =
      std::log((static_cast<double>(n * n) + 1.0) / std::sqrt(2.0 * M_PI)) /
      std::log(1.0 + rho / 2.0);
  am::RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(ab::rgp_ucb_beta(n, rho, rng));
  EXPECT_NEAR(stats.mean(), kappa * rho, 0.2);
}

TEST(GpBo, MinimizesQuadraticBowl) {
  const auto space = unit_box(2);
  ab::GpBoOptions opts;
  opts.init_samples = 6;
  opts.candidates = 400;
  ab::GpBoMinimizer bo(space, opts);
  am::Rng rng(6);
  const auto result = bo.minimize(
      [](const am::Vec& x) {
        return (x[0] - 0.3) * (x[0] - 0.3) + (x[1] - 0.7) * (x[1] - 0.7);
      },
      40, rng);
  EXPECT_LT(result.best_y, 0.02);
  EXPECT_NEAR(result.best_x[0], 0.3, 0.2);
  EXPECT_NEAR(result.best_x[1], 0.7, 0.2);
}

TEST(GpBo, BeatsRandomSearchOnSameBudget) {
  const auto space = unit_box(3);
  auto objective = [](const am::Vec& x) {
    double acc = 0.0;
    for (double v : x) acc += (v - 0.5) * (v - 0.5);
    return acc;
  };
  ab::GpBoOptions opts;
  opts.init_samples = 8;
  opts.candidates = 300;
  ab::GpBoMinimizer bo(space, opts);
  am::Rng rng(7);
  const double bo_best = bo.minimize(objective, 35, rng).best_y;

  am::Rng rrng(7);
  double random_best = 1e9;
  for (int i = 0; i < 35; ++i) random_best = std::min(random_best, objective(space.sample(rrng)));
  EXPECT_LE(bo_best, random_best);
}

TEST(GpBo, HistoryAndTellValidation) {
  const auto space = unit_box(1);
  ab::GpBoMinimizer bo(space);
  bo.tell({0.5}, 1.0);
  EXPECT_EQ(bo.observations(), 1u);
  EXPECT_THROW(bo.tell({0.1, 0.2}, 1.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(bo.result().best_y, 1.0);
}
