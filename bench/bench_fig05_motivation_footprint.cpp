/// Fig. 5 — Footprint of state-of-the-art online learning methods (DLDA and
/// GP-BO) in the (resource usage, QoE) plane: most explored configurations
/// miss the QoE requirement of 0.9 — the motivation for safe exploration.

#include "env/env_service.hpp"
#include "baselines/dlda.hpp"
#include "baselines/gp_baseline.hpp"
#include "bench_util.hpp"

int main() {
  using namespace atlas;
  const auto opts = common::bench_options();
  bench::banner("Figure 5: footprint of DLDA and BO during online learning",
                "paper Fig. 5 — most explored actions violate the 0.9 QoE requirement");

  env::EnvService service;
  const auto real = service.add_real_network();
  const std::size_t iters = opts.iters(40, 12);

  // BO (GP-EI) exploring the real network directly.
  baselines::GpBaselineOptions bo_opts;
  bo_opts.iterations = iters;
  bo_opts.workload = bench::workload(opts, 15.0);
  bo_opts.seed = opts.seed;
  const auto bo_trace = baselines::GpBaseline(service, real, bo_opts).learn();

  // DLDA: offline grid on the (uncalibrated) simulator, then online transfer.
  const auto sim = service.add_simulator();
  baselines::DldaOptions dlda_opts;
  dlda_opts.grid_per_dim = 3;  // keep the motivation figure light
  dlda_opts.online_iterations = iters;
  dlda_opts.workload = bench::workload(opts, 15.0);
  dlda_opts.seed = opts.seed + 5;
  baselines::Dlda dlda(service, sim, dlda_opts);
  dlda.train_offline();
  const auto dlda_trace = dlda.learn_online(real);

  auto summarize = [&](const baselines::OnlineTrace& trace, const std::string& name,
                       common::Table& t) {
    std::size_t violations = 0;
    double usage_sum = 0.0;
    for (std::size_t i = 0; i < trace.qoe.size(); ++i) {
      if (trace.qoe[i] < 0.9) ++violations;
      usage_sum += trace.usage[i];
    }
    t.add_row({name, std::to_string(trace.qoe.size()), std::to_string(violations),
               common::fmt_pct(static_cast<double>(violations) /
                               static_cast<double>(trace.qoe.size())),
               common::fmt_pct(usage_sum / static_cast<double>(trace.usage.size()))});
  };

  common::Table t({"method", "explored actions", "QoE<0.9", "violation rate", "avg usage"});
  summarize(bo_trace, "BO (GP-EI)", t);
  summarize(dlda_trace, "DLDA", t);
  bench::emit(t, opts);

  common::Table scatter({"method", "usage", "qoe"});
  for (std::size_t i = 0; i < bo_trace.qoe.size(); i += 2) {
    scatter.add_row({"BO", common::fmt(bo_trace.usage[i]), common::fmt(bo_trace.qoe[i])});
  }
  for (std::size_t i = 0; i < dlda_trace.qoe.size(); i += 2) {
    scatter.add_row({"DLDA", common::fmt(dlda_trace.usage[i]), common::fmt(dlda_trace.qoe[i])});
  }
  std::cout << "Footprint scatter (every 2nd point):\n";
  bench::emit(scatter, opts);
  return 0;
}
