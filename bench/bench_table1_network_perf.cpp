/// Table 1 — Network performance comparison (10 MHz LTE): ping delay, UL/DL
/// throughput, UL/DL packet error rate, simulator vs real network.

#include <sstream>

#include "bench_util.hpp"

int main() {
  using namespace atlas;
  const auto opts = common::bench_options();
  bench::banner("Table 1: network performance, simulator vs real network",
                "paper Table 1 — sim: 34 ms / 19.87 / 32.37 Mbps / 4.16e-3 / 2.05e-3; "
                "real: 34.6 ms / 17.53 / 31.12 Mbps / 9.17e-3 / 5.15e-3");

  const double duration = opts.episode_seconds(40.0) * 1e3;
  const auto sim = env::measure_network_performance(env::simulator_profile(), duration, opts.seed);
  const auto real =
      env::measure_network_performance(env::real_network_profile(), duration, opts.seed);

  auto sci = [](double v) {
    std::ostringstream ss;
    ss.precision(2);
    ss << std::scientific << v;
    return ss.str();
  };

  common::Table t({"performance metric", "simulator", "real network", "paper sim", "paper real"});
  t.add_row({"Average Ping Delay (ms)", common::fmt(sim.ping_ms, 1), common::fmt(real.ping_ms, 1),
             "34", "34.6"});
  t.add_row({"UL Throughput (Mbps)", common::fmt(sim.ul_mbps, 2), common::fmt(real.ul_mbps, 2),
             "19.87", "17.53"});
  t.add_row({"DL Throughput (Mbps)", common::fmt(sim.dl_mbps, 2), common::fmt(real.dl_mbps, 2),
             "32.37", "31.12"});
  t.add_row({"UL Packet Error Rate", sci(sim.ul_per), sci(real.ul_per), "4.16e-03", "9.17e-03"});
  t.add_row({"DL Packet Error Rate", sci(sim.dl_per), sci(real.dl_per), "2.05e-03", "5.15e-03"});
  bench::emit(t, opts);
  return 0;
}
