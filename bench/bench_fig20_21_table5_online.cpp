/// Figs. 20-21 + Table 5 — Online learning in the real network: per-iteration
/// average resource usage and slice QoE for Baseline (GP-EI), VirtualEdge,
/// DLDA and Ours, plus the average regrets of Eqs. 10-11.
/// Paper Table 5: usage regret 35.83 / 16.06 / 8.79 / 3.17 %; QoE regret
/// 0.31 / 0.34 / 0.54 / 0.077; ours uses 20x100 offline queries.

#include "env/env_service.hpp"
#include "baselines/dlda.hpp"
#include "baselines/gp_baseline.hpp"
#include "baselines/virtual_edge.hpp"
#include "atlas/oracle.hpp"
#include "bench_util.hpp"

int main() {
  using namespace atlas;
  const auto opts = common::bench_options();
  bench::banner("Figures 20-21 + Table 5: online learning, all methods",
                "paper — regrets: Baseline 35.83%/0.31, VirtualEdge 16.06%/0.34, "
                "DLDA 8.79%/0.54, Ours 3.17%/0.077");

  env::EnvService service;
  const auto real = service.add_real_network();
  const auto online_wl = bench::workload(opts, 25.0);
  const std::size_t online_iters = bench::stage3_options(opts).iterations;

  // ---- Atlas: stages 1 + 2 + 3 ---------------------------------------------
  const auto calibration = bench::run_stage1(opts, service, real);
  const auto augmented = service.add_simulator(calibration.best_params, "augmented");
  core::OfflineTrainer trainer(service, augmented, bench::stage2_options(opts));
  const auto offline = trainer.train();
  auto s3 = bench::stage3_options(opts);
  s3.workload = online_wl;
  core::OnlineLearner learner(&offline.policy, service, augmented, real, s3);
  const auto atlas_run = learner.learn();

  // ---- Baseline: GP-EI directly online --------------------------------------
  baselines::GpBaselineOptions base_opts;
  base_opts.iterations = online_iters;
  base_opts.workload = online_wl;
  base_opts.seed = opts.seed + 11;
  const auto base_trace = baselines::GpBaseline(service, real, base_opts).learn();

  // ---- VirtualEdge ------------------------------------------------------------
  baselines::VirtualEdgeOptions ve_opts;
  ve_opts.iterations = online_iters;
  ve_opts.workload = online_wl;
  ve_opts.seed = opts.seed + 13;
  const auto ve_trace = baselines::VirtualEdge(service, real, ve_opts).learn();

  // ---- DLDA (offline grid on the ORIGINAL simulator, as in the paper) -------
  const auto original = service.add_simulator();
  baselines::DldaOptions dlda_opts;
  dlda_opts.grid_per_dim = 4;
  dlda_opts.online_iterations = online_iters;
  dlda_opts.workload = online_wl;
  dlda_opts.seed = opts.seed + 17;
  baselines::Dlda dlda(service, original, dlda_opts);
  dlda.train_offline();
  const auto dlda_trace = dlda.learn_online(real);

  // ---- phi* for regret accounting --------------------------------------------
  const auto oracle = core::find_optimal_config(service, real, s3.sla, online_wl,
                                                opts.iters(100, 40), opts.seed + 19);

  // ---- Figs. 20-21: training progress ----------------------------------------
  auto window_avg = [](const std::vector<double>& v, std::size_t i) {
    const std::size_t w = 5;
    const std::size_t lo = i >= w ? i - w : 0;
    double acc = 0.0;
    for (std::size_t j = lo; j <= i; ++j) acc += v[j];
    return acc / static_cast<double>(i - lo + 1);
  };
  std::vector<double> atlas_usage;
  std::vector<double> atlas_qoe;
  for (const auto& h : atlas_run.history) {
    atlas_usage.push_back(h.usage);
    atlas_qoe.push_back(h.qoe_real);
  }
  common::Table progress({"iter", "Baseline usage", "VirtualEdge usage", "DLDA usage",
                          "Ours usage", "Baseline QoE", "VirtualEdge QoE", "DLDA QoE",
                          "Ours QoE"});
  for (std::size_t i = 0; i < online_iters; i += std::max<std::size_t>(1, online_iters / 10)) {
    progress.add_row({std::to_string(i), common::fmt_pct(window_avg(base_trace.usage, i)),
                      common::fmt_pct(window_avg(ve_trace.usage, i)),
                      common::fmt_pct(window_avg(dlda_trace.usage, i)),
                      common::fmt_pct(window_avg(atlas_usage, i)),
                      common::fmt(window_avg(base_trace.qoe, i)),
                      common::fmt(window_avg(ve_trace.qoe, i)),
                      common::fmt(window_avg(dlda_trace.qoe, i)),
                      common::fmt(window_avg(atlas_qoe, i))});
  }
  std::cout << "Training progress, rolling mean of 6 (Figs. 20-21):\n";
  bench::emit(progress, opts);

  // ---- Table 5: regrets -------------------------------------------------------
  const auto base_regret = core::compute_regret(base_trace.usage, base_trace.qoe, oracle);
  const auto ve_regret = core::compute_regret(ve_trace.usage, ve_trace.qoe, oracle);
  const auto dlda_regret = core::compute_regret(dlda_trace.usage, dlda_trace.qoe, oracle);
  const auto atlas_regret = core::compute_regret(atlas_run.history, oracle);

  common::Table table5({"method", "avg usage regret (%)", "avg QoE regret", "offline queries",
                        "paper usage/qoe regret"});
  auto pct = [](double v) { return atlas::common::fmt(v * 100.0, 2); };
  table5.add_row({"Baseline", pct(base_regret.avg_usage_regret),
                  common::fmt(base_regret.avg_qoe_regret, 3), "0", "35.83 / 0.31"});
  table5.add_row({"VirtualEdge", pct(ve_regret.avg_usage_regret),
                  common::fmt(ve_regret.avg_qoe_regret, 3), "0", "16.06 / 0.34"});
  table5.add_row({"DLDA", pct(dlda_regret.avg_usage_regret),
                  common::fmt(dlda_regret.avg_qoe_regret, 3),
                  std::to_string(dlda.dataset_size()), "8.79 / 0.54"});
  table5.add_row({"Ours", pct(atlas_regret.avg_usage_regret),
                  common::fmt(atlas_regret.avg_qoe_regret, 3),
                  std::to_string(s3.inner_updates) + "x" + std::to_string(online_iters),
                  "3.17 / 0.077"});
  std::cout << "Online learning regrets (Table 5), phi*: usage "
            << common::fmt_pct(oracle.usage) << " QoE " << common::fmt(oracle.qoe) << ":\n";
  bench::emit(table5, opts);
  return 0;
}
