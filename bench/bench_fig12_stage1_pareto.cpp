/// Fig. 12 — Pareto boundary of the augmented simulator: sweeping the weight
/// alpha trades sim-to-real discrepancy against parameter distance.

#include "env/env_service.hpp"
#include "bench_util.hpp"

int main() {
  using namespace atlas;
  const auto opts = common::bench_options();
  bench::banner("Figure 12: Pareto boundary, discrepancy vs parameter distance",
                "paper Fig. 12 — alpha sweeps the (0.21..0.4) x (0.1..0.3) frontier");

  env::EnvService service;
  const auto real = service.add_real_network();

  common::Table t({"alpha", "sim-to-real discrepancy", "parameter distance"});
  for (double alpha : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    auto o = bench::stage1_options(opts);
    o.alpha = alpha;
    o.iterations = opts.iters(60, 15);  // sweep is 5 searches; keep each lighter
    o.seed = opts.seed + static_cast<std::uint64_t>(alpha * 10.0);
    core::SimCalibrator calibrator(service, real, o);
    const auto result = calibrator.calibrate();
    t.add_row({common::fmt(alpha, 1), common::fmt(result.best_kl, 3),
               common::fmt(result.best_distance, 3)});
  }
  bench::emit(t, opts);
  std::cout << "Higher alpha -> smaller parameter distance at higher discrepancy\n"
               "(the explainability trade-off of paper §4.2).\n";
  return 0;
}
