/// Fig. 15 — Discrepancy-reduction heatmap over (CPU, UL bandwidth) usage:
/// the calibrated simulator cuts discrepancy across almost all cells
/// (paper: 79.3% on average), though not evenly.

#include "env/env_service.hpp"
#include "bench_util.hpp"
#include "math/kl.hpp"

int main() {
  using namespace atlas;
  const auto opts = common::bench_options();
  bench::banner("Figure 15: discrepancy reduction (1.0 = 100%) over (CPU, UL BW)",
                "paper Fig. 15 — 79.3% average reduction across the grid");

  env::EnvService service;
  const auto real = service.add_real_network();
  const auto calibration = bench::run_stage1(opts, service, real);
  const auto original = service.add_simulator();
  const auto calibrated = service.add_simulator(calibration.best_params, "calibrated");

  const double levels[] = {0.1, 0.3, 0.5, 0.7, 0.9};
  common::Table t({"UL BW \\ CPU", "10%", "30%", "50%", "70%", "90%"});
  double total = 0.0;
  int cells = 0;
  for (double bw : levels) {
    std::vector<std::string> row{common::fmt_pct(bw, 0)};
    for (double cpu : levels) {
      env::SliceConfig config;
      config.bandwidth_ul = bw * 50.0;
      config.cpu_ratio = cpu;
      auto wl = bench::workload(opts, 25.0);
      const auto lat_real = bench::run_episode(service, real, config, wl).latencies_ms;
      wl.seed = opts.seed + 51;
      const auto lat_orig = bench::run_episode(service, original, config, wl).latencies_ms;
      const auto lat_cal = bench::run_episode(service, calibrated, config, wl).latencies_ms;
      double reduction = 0.0;
      if (!lat_real.empty() && !lat_orig.empty() && !lat_cal.empty()) {
        const double kl_orig = math::kl_divergence(lat_real, lat_orig);
        const double kl_cal = math::kl_divergence(lat_real, lat_cal);
        reduction = kl_orig > 1e-9 ? 1.0 - kl_cal / kl_orig : 0.0;
      }
      total += reduction;
      ++cells;
      row.push_back(common::fmt(reduction, 2));
    }
    t.add_row(row);
  }
  bench::emit(t, opts);
  std::cout << "Average reduction: " << common::fmt_pct(total / cells)
            << " (paper: 79.3%)\n";
  return 0;
}
