/// Figs. 25-26 — Online regrets under dynamic user traffic (2-4) with
/// Y = 500 ms: ours achieves the lowest usage and QoE regret almost
/// everywhere; DLDA trades QoE for usage at traffic 4.

#include "env/env_service.hpp"
#include "atlas/oracle.hpp"
#include "baselines/dlda.hpp"
#include "baselines/gp_baseline.hpp"
#include "baselines/virtual_edge.hpp"
#include "bench_util.hpp"

int main() {
  using namespace atlas;
  const auto opts = common::bench_options();
  bench::banner("Figures 25-26: regrets under user traffic 2-4 (Y = 500 ms)",
                "paper Figs. 25-26 — ours lowest on both axes for almost all traffic");

  env::EnvService service;
  const auto real = service.add_real_network();
  // Oracle-calibrated simulator keeps this sweep tractable; the full-stage
  // variant is bench_fig20_21.
  const auto augmented = service.add_simulator(env::oracle_calibration(), "augmented");
  const auto original = service.add_simulator(env::SimParams::defaults(), "original");
  app::Sla sla;
  sla.latency_threshold_ms = 500.0;

  common::Table qoe_t({"user traffic", "Ours", "DLDA", "VirtualEdge", "Baseline"});
  common::Table usage_t({"user traffic", "Ours", "DLDA", "VirtualEdge", "Baseline"});

  for (int traffic : {2, 3, 4}) {
    auto wl = bench::workload(opts, 20.0, traffic);
    const auto oracle = core::find_optimal_config(
        service, real, sla, wl, opts.iters(80, 30),
        opts.seed + static_cast<std::uint64_t>(traffic));

    // Atlas.
    auto s2 = bench::stage2_options(opts);
    s2.iterations = opts.iters(90, 20);
    s2.sla = sla;
    s2.workload = wl;
    core::OfflineTrainer trainer(service, augmented, s2);
    const auto offline = trainer.train();
    auto s3 = bench::stage3_options(opts);
    s3.sla = sla;
    s3.workload = wl;
    core::OnlineLearner learner(&offline.policy, service, augmented, real, s3);
    const auto atlas_regret = core::compute_regret(learner.learn().history, oracle);

    // DLDA.
    baselines::DldaOptions dlda_opts;
    dlda_opts.grid_per_dim = 3;
    dlda_opts.online_iterations = s3.iterations;
    dlda_opts.sla = sla;
    dlda_opts.workload = wl;
    dlda_opts.seed = opts.seed + 31 + static_cast<std::uint64_t>(traffic);
    baselines::Dlda dlda(service, original, dlda_opts);
    dlda.train_offline();
    const auto dlda_trace = dlda.learn_online(real);
    const auto dlda_regret = core::compute_regret(dlda_trace.usage, dlda_trace.qoe, oracle);

    // VirtualEdge.
    baselines::VirtualEdgeOptions ve_opts;
    ve_opts.iterations = s3.iterations;
    ve_opts.sla = sla;
    ve_opts.workload = wl;
    ve_opts.seed = opts.seed + 41 + static_cast<std::uint64_t>(traffic);
    const auto ve_trace = baselines::VirtualEdge(service, real, ve_opts).learn();
    const auto ve_regret = core::compute_regret(ve_trace.usage, ve_trace.qoe, oracle);

    // Baseline.
    baselines::GpBaselineOptions base_opts;
    base_opts.iterations = s3.iterations;
    base_opts.sla = sla;
    base_opts.workload = wl;
    base_opts.seed = opts.seed + 51 + static_cast<std::uint64_t>(traffic);
    const auto base_trace = baselines::GpBaseline(service, real, base_opts).learn();
    const auto base_regret = core::compute_regret(base_trace.usage, base_trace.qoe, oracle);

    qoe_t.add_row({std::to_string(traffic), common::fmt(atlas_regret.avg_qoe_regret, 3),
                   common::fmt(dlda_regret.avg_qoe_regret, 3),
                   common::fmt(ve_regret.avg_qoe_regret, 3),
                   common::fmt(base_regret.avg_qoe_regret, 3)});
    usage_t.add_row({std::to_string(traffic),
                     common::fmt(atlas_regret.avg_usage_regret * 100.0, 2),
                     common::fmt(dlda_regret.avg_usage_regret * 100.0, 2),
                     common::fmt(ve_regret.avg_usage_regret * 100.0, 2),
                     common::fmt(base_regret.avg_usage_regret * 100.0, 2)});
  }
  std::cout << "Average QoE regret (Fig. 25):\n";
  bench::emit(qoe_t, opts);
  std::cout << "Average usage regret %% (Fig. 26):\n";
  bench::emit(usage_t, opts);
  return 0;
}
