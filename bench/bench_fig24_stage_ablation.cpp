/// Fig. 24 — Impact of individual Atlas stages: remove stage 1 (train on the
/// original simulator), stage 2 (no offline policy), or stage 3 (apply the
/// offline optimum without online learning).

#include "env/env_service.hpp"
#include "atlas/oracle.hpp"
#include "atlas/pipeline.hpp"
#include "bench_util.hpp"

int main() {
  using namespace atlas;
  const auto opts = common::bench_options();
  bench::banner("Figure 24: pipeline ablation (no stage 1 / 2 / 3)",
                "paper Fig. 24 — removing any stage hurts usage, QoE, or both");

  env::EnvService service;
  const auto real = service.add_real_network();

  auto base_options = [&] {
    core::PipelineOptions po;
    po.stage1 = bench::stage1_options(opts);
    po.stage1.iterations = opts.iters(60, 15);
    po.stage2 = bench::stage2_options(opts);
    po.stage2.iterations = opts.iters(90, 20);
    po.stage3 = bench::stage3_options(opts);
    return po;
  };

  common::Table t({"pipeline", "avg usage", "avg QoE", "QoE<0.9 rate"});
  auto run_variant = [&](const std::string& name, bool s1, bool s2, bool s3) {
    auto po = base_options();
    po.run_stage1 = s1;
    po.run_stage2 = s2;
    po.run_stage3 = s3;
    core::AtlasPipeline pipeline(service, real, po);
    const auto result = pipeline.run();
    double usage = 0.0;
    double qoe = 0.0;
    double violations = 0.0;
    const auto& hist = result.online.history;
    for (const auto& h : hist) {
      usage += h.usage / static_cast<double>(hist.size());
      qoe += h.qoe_real / static_cast<double>(hist.size());
      if (h.qoe_real < 0.9) violations += 1.0 / static_cast<double>(hist.size());
    }
    t.add_row({name, common::fmt_pct(usage), common::fmt(qoe), common::fmt_pct(violations)});
  };
  run_variant("Ours (all stages)", true, true, true);
  run_variant("No stage 1", false, true, true);
  run_variant("No stage 2", true, false, true);
  run_variant("No stage 3", true, true, false);
  bench::emit(t, opts);
  return 0;
}
