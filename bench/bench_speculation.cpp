// bench_speculation: does optimistic episode prefetching buy wall-clock?
//
// Runs the SAME stage-2 offline BO training with speculation off and on
// (speculate_top_k > 0), on a fresh EnvService each time, in two scenarios:
//
//   local         — the simulator executes in-process, so episodes COMPETE
//                   with the acquisition scan for this host's cores. On a
//                   wide host the prefetched episode hides behind the scan
//                   tail; on a 1-core host there is no idle capacity and
//                   this row honestly reports the overhead bound instead.
//   farm_emulated — the simulator sits behind a deterministic fixed service
//                   delay (the fault-injection subsystem's delay rule),
//                   emulating the deployment speculation exists for: episodes
//                   dispatched to farm workers whose latency is WAIT, not
//                   local CPU. The scan proceeds while the speculated episode
//                   "travels", so the commit finds it finished or in flight.
//
// Each scenario reports wall-clock per BO iteration for both modes plus the
// prefetch accuracy that paid for it: launched / hits / cancelled / wasted,
// hit rate (hits per launch), and commit coverage (fraction of committed BO
// queries whose episode was already speculated mid-scan). All four runs are
// FNV-hashed and compared: speculation must be bit-invisible in the trained
// policy or the comparison is void (`bit_identical`, asserted by CI).
//
// Writes BENCH_speculation.json (override with ATLAS_BENCH_OUT). --smoke is
// the CI preset: a small deterministic run whose farm-emulated hit rate the
// perf-smoke job gates at >= 0.5.

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "env/fault_injection.hpp"

namespace {

struct Fnv {
  std::uint64_t h = 1469598103934665603ULL;
  void add_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  void add_double(double d) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    add_u64(bits);
  }
  void add_vec(const atlas::math::Vec& v) {
    add_u64(v.size());
    for (double x : v) add_double(x);
  }
};

std::uint64_t hash_offline(const atlas::core::OfflineResult& result) {
  Fnv f;
  f.add_vec(result.policy.best_config.to_vec());
  f.add_double(result.policy.best_usage);
  f.add_double(result.policy.best_qoe);
  f.add_double(result.policy.final_lambda);
  f.add_u64(result.history.size());
  for (const auto& step : result.history) {
    f.add_vec(step.config.to_vec());
    f.add_double(step.usage);
    f.add_double(step.qoe);
    f.add_double(step.lambda);
  }
  return f.h;
}

struct ModeResult {
  std::size_t top_k = 0;
  double wall_s = 0.0;
  double wall_per_iter_ms = 0.0;
  std::uint64_t episodes = 0;
  atlas::env::SpeculationView speculation;
  std::uint64_t result_hash = 0;
  /// BO-phase commits (scan winners actually submitted): the coverage
  /// denominator. Init iterations never speculate — no scan to rank.
  std::uint64_t commits = 0;

  double commit_coverage() const {
    return commits == 0 ? 0.0
                        : static_cast<double>(speculation.hits) / static_cast<double>(commits);
  }
};

ModeResult run_mode(const atlas::core::OfflineOptions& base, std::size_t top_k,
                    std::size_t threads, double farm_delay_ms) {
  atlas::env::EnvService service(atlas::env::EnvServiceOptions{.threads = threads});
  atlas::env::BackendId sim;
  std::shared_ptr<atlas::env::FaultInjector> injector;
  if (farm_delay_ms > 0.0) {
    // Deterministic fixed delay on every episode: a farm worker's dispatch +
    // queue + remote execution as the client experiences it, with the local
    // CPU left free for the scan. Same machinery the degradation bench uses.
    const auto plan = atlas::env::FaultPlan::parse(
        "delay=1.0:" + std::to_string(farm_delay_ms) + "ms", /*seed=*/1);
    injector = std::make_shared<atlas::env::FaultInjector>(plan);
    auto inner = std::make_shared<atlas::env::LocalBackend>(
        std::make_shared<atlas::env::Simulator>(atlas::env::SimParams::defaults()),
        "farm-emulated-sim", atlas::env::BackendKind::kOffline);
    sim = service.register_backend(
        std::make_shared<atlas::env::FaultInjectingBackend>(std::move(inner), injector));
  } else {
    sim = service.add_simulator();
  }
  atlas::core::OfflineOptions options = base;
  options.speculate_top_k = top_k;
  atlas::core::OfflineTrainer trainer(service, sim, options);

  const auto start = std::chrono::steady_clock::now();
  const auto result = trainer.train();
  ModeResult m;
  m.top_k = top_k;
  m.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  m.wall_per_iter_ms = m.wall_s * 1e3 / static_cast<double>(options.iterations);
  m.result_hash = hash_offline(result);
  m.commits = static_cast<std::uint64_t>(options.iterations - options.init_iterations) *
              options.parallel;
  const auto stats = service.stats();
  m.speculation = stats.speculation;
  for (const auto& b : stats.backends) m.episodes += b.episodes;
  return m;
}

std::string compiler_string() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." + std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

std::string build_type() {
#if defined(NDEBUG)
  return "Release";
#else
  return "Debug";
#endif
}

void add_mode_row(atlas::common::Table& table, const std::string& scenario, const char* mode,
                  const ModeResult& m) {
  if (m.top_k == 0) {
    table.add_row({scenario, mode, atlas::common::fmt(m.wall_s),
                   atlas::common::fmt(m.wall_per_iter_ms, 1), std::to_string(m.episodes), "-",
                   "-", "-", "-", "-", "-"});
    return;
  }
  table.add_row({scenario, mode, atlas::common::fmt(m.wall_s),
                 atlas::common::fmt(m.wall_per_iter_ms, 1), std::to_string(m.episodes),
                 std::to_string(m.speculation.launched), std::to_string(m.speculation.hits),
                 std::to_string(m.speculation.cancelled), std::to_string(m.speculation.wasted),
                 atlas::common::fmt(m.speculation.hit_rate(), 2),
                 atlas::common::fmt(m.commit_coverage(), 2)});
}

void emit_mode_json(std::ofstream& out, const char* name, const ModeResult& m, bool last) {
  out << "    \"" << name << "\": {\"wall_s\": " << m.wall_s
      << ", \"wall_per_iteration_ms\": " << m.wall_per_iter_ms
      << ", \"episodes\": " << m.episodes;
  if (m.top_k > 0) {
    out << ", \"launched\": " << m.speculation.launched << ", \"hits\": " << m.speculation.hits
        << ", \"cancelled\": " << m.speculation.cancelled
        << ", \"wasted\": " << m.speculation.wasted
        << ", \"hit_rate\": " << m.speculation.hit_rate()
        << ", \"commit_coverage\": " << m.commit_coverage();
  }
  out << "}" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const auto opts = atlas::common::bench_options();
  bench::banner("Speculative episode prefetching (stage-2 wall clock, on vs off)",
                "optimistic BO: top-K acquisition candidates run while the scan finishes");

  // A single BO slot per iteration makes the episode fully serial with the
  // acquisition scan when speculation is off, so the on-mode's overlap — the
  // committed episode already in flight since a mid-scan checkpoint — shows
  // up directly as wall clock per iteration.
  atlas::core::OfflineOptions base;
  base.parallel = 1;
  base.seed = opts.seed + 1;
  base.seed_plan = bench::seed_plan_options(opts);
  base.bnn.sizes = {8, 24, 24, 1};
  base.train_epochs = 2;
  // k = 1: speculate only the scan leader at each checkpoint. Each commit can
  // hit at most one launch, so hit rate ~ coverage / k — depth beyond 1 buys
  // earlier prefetch starts at the price of accuracy, and the accuracy gate
  // is about the ranking being RIGHT, not wide.
  const std::size_t top_k = 1;
  // The overlap saving is bounded by the scan tail after the speculation
  // checkpoint, so the scenario only discriminates when the acquisition scan
  // and the (emulated) episode take comparable time: candidates is sized so
  // the scan runs a few ms, matching farm_delay_ms.
  double farm_delay_ms = 1.2;
  if (smoke) {
    base.iterations = 14;
    base.init_iterations = 3;
    base.candidates = 3000;
    base.workload = bench::workload(opts, 10.0);
  } else {
    base.iterations = opts.iters(40, 14);
    base.init_iterations = opts.iters(8, 3);
    base.candidates = opts.iters(5000, 3000);
    base.workload = bench::workload(opts, 20.0);
    farm_delay_ms = 1.8;
  }
  const std::size_t threads = 4;

  const ModeResult local_off = run_mode(base, 0, threads, 0.0);
  const ModeResult local_on = run_mode(base, top_k, threads, 0.0);
  const ModeResult farm_off = run_mode(base, 0, threads, farm_delay_ms);
  const ModeResult farm_on = run_mode(base, top_k, threads, farm_delay_ms);
  // The delay decorates serving, not the episode: all four runs must agree.
  const bool bit_identical = local_off.result_hash == local_on.result_hash &&
                             local_off.result_hash == farm_off.result_hash &&
                             local_off.result_hash == farm_on.result_hash;
  const auto speedup = [](const ModeResult& off, const ModeResult& on) {
    return on.wall_s <= 0.0 ? 0.0 : off.wall_s / on.wall_s;
  };

  atlas::common::Table table({"scenario", "mode", "wall s", "ms/iter", "episodes", "launched",
                              "hits", "cancelled", "wasted", "hit rate", "coverage"});
  add_mode_row(table, "local", "off", local_off);
  add_mode_row(table, "local", "on", local_on);
  const std::string farm_name = "farm (" + atlas::common::fmt(farm_delay_ms, 0) + "ms episode)";
  add_mode_row(table, farm_name, "off", farm_off);
  add_mode_row(table, farm_name, "on", farm_on);
  bench::emit(table, opts);
  std::cout << "local speedup " << atlas::common::fmt(speedup(local_off, local_on), 2)
            << "x, farm-emulated speedup " << atlas::common::fmt(speedup(farm_off, farm_on), 2)
            << "x, results " << (bit_identical ? "bit-identical" : "DIVERGED") << "\n";

  const std::string out_path =
      bench::bench_output_path("BENCH_speculation.json", "ATLAS_BENCH_OUT");
  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"speculation\",\n  \"mode\": \"" << (smoke ? "smoke" : "full")
      << "\",\n"
      << "  \"machine\": {\"cores\": " << std::thread::hardware_concurrency()
      << ", \"compiler\": \"" << compiler_string() << "\", \"build_type\": \"" << build_type()
      << "\", \"bench_scale\": " << opts.scale << "},\n"
      << "  \"config\": {\"iterations\": " << base.iterations
      << ", \"init_iterations\": " << base.init_iterations << ", \"parallel\": " << base.parallel
      << ", \"candidates\": " << base.candidates
      << ", \"episode_s\": " << base.workload.duration_ms / 1e3
      << ", \"service_threads\": " << threads << ", \"top_k\": " << top_k
      << ", \"farm_delay_ms\": " << farm_delay_ms << "},\n"
      << "  \"local\": {\n";
  emit_mode_json(out, "off", local_off, /*last=*/false);
  emit_mode_json(out, "on", local_on, /*last=*/false);
  out << "    \"speedup\": " << speedup(local_off, local_on) << "\n  },\n"
      << "  \"farm_emulated\": {\n";
  emit_mode_json(out, "off", farm_off, /*last=*/false);
  emit_mode_json(out, "on", farm_on, /*last=*/false);
  out << "    \"speedup\": " << speedup(farm_off, farm_on) << "\n  },\n"
      << "  \"bit_identical\": " << (bit_identical ? "true" : "false") << "\n}\n";
  std::cout << "wrote " << out_path << "\n";

  if (!bit_identical) {
    std::cerr << "bench_speculation: speculation changed the trained policy\n";
    return 1;
  }
  return 0;
}
