/// Design-choice ablations called out in DESIGN.md (not a paper figure):
///  (a) KL estimator: smoothed histogram vs k-NN — do they rank calibrations
///      the same way?
///  (b) Candidate sampler: i.i.d. uniform vs scrambled Halton at equal count.
///  (c) BNN prior: analytic-KL Gaussian vs Blundell's scale mixture (MC).

#include "env/env_service.hpp"
#include "atlas/calibrator.hpp"
#include "bench_util.hpp"
#include "math/kl.hpp"

int main() {
  using namespace atlas;
  const auto opts = common::bench_options();
  bench::banner("Design-choice ablations (repo-specific, see DESIGN.md)",
                "KL estimator agreement; uniform vs Halton candidates; BNN priors");

  env::EnvService service;
  const auto real = service.add_real_network();

  // --- (a) KL estimator agreement -------------------------------------------
  {
    const auto original = service.add_simulator(env::SimParams::defaults(), "original");
    const auto calibrated = service.add_simulator(env::oracle_calibration(), "calibrated");
    auto wl = bench::workload(opts, 30.0);
    const auto lat_real = bench::run_episode(service, real, env::SliceConfig{}, wl).latencies_ms;
    wl.seed = opts.seed + 61;
    const auto lat_orig =
        bench::run_episode(service, original, env::SliceConfig{}, wl).latencies_ms;
    const auto lat_cal =
        bench::run_episode(service, calibrated, env::SliceConfig{}, wl).latencies_ms;
    common::Table t({"estimator", "KL(real || original)", "KL(real || calibrated)",
                     "same ordering"});
    const double h_orig = math::kl_divergence(lat_real, lat_orig);
    const double h_cal = math::kl_divergence(lat_real, lat_cal);
    const double k_orig = math::kl_knn_1d(lat_real, lat_orig);
    const double k_cal = math::kl_knn_1d(lat_real, lat_cal);
    t.add_row({"smoothed histogram", common::fmt(h_orig, 3), common::fmt(h_cal, 3), "-"});
    t.add_row({"k-NN (k=5)", common::fmt(k_orig, 3), common::fmt(k_cal, 3),
               (h_orig > h_cal) == (k_orig > k_cal) ? "yes" : "NO"});
    std::cout << "(a) KL estimator cross-check:\n";
    bench::emit(t, opts);
  }

  // --- (b) candidate sampler -------------------------------------------------
  {
    common::Table t({"sampler", "best weighted discrepancy", "best KL"});
    for (auto sampler : {core::CandidateSampler::kUniform, core::CandidateSampler::kHalton}) {
      auto o = bench::stage1_options(opts);
      o.iterations = opts.iters(50, 12);
      o.sampler = sampler;
      o.seed = opts.seed + (sampler == core::CandidateSampler::kHalton ? 2 : 1);
      core::SimCalibrator calibrator(service, real, o);
      const auto result = calibrator.calibrate();
      t.add_row({sampler == core::CandidateSampler::kHalton ? "scrambled Halton" : "uniform",
                 common::fmt(result.best_weighted, 3), common::fmt(result.best_kl, 3)});
    }
    std::cout << "(b) Thompson-sampling candidate stream:\n";
    bench::emit(t, opts);
  }

  // --- (c) BNN prior -----------------------------------------------------------
  {
    common::Table t({"prior", "best weighted discrepancy", "final-iteration avg"});
    for (auto prior : {nn::BnnPrior::kGaussianAnalytic, nn::BnnPrior::kScaleMixtureMc}) {
      auto o = bench::stage1_options(opts);
      o.iterations = opts.iters(50, 12);
      o.bnn.sizes = {7, 48, 48, 1};
      o.bnn.noise_sigma = 0.1;
      o.bnn.prior = prior;
      o.seed = opts.seed + 5;
      core::SimCalibrator calibrator(service, real, o);
      const auto result = calibrator.calibrate();
      t.add_row({prior == nn::BnnPrior::kGaussianAnalytic ? "Gaussian (analytic KL)"
                                                          : "scale mixture (MC)",
                 common::fmt(result.best_weighted, 3),
                 common::fmt(result.avg_weighted_per_iter.back(), 3)});
    }
    std::cout << "(c) Bayes-by-Backprop complexity-cost formulation:\n";
    bench::emit(t, opts);
  }
  return 0;
}
