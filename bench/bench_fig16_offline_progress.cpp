/// Fig. 16 — Stage-2 training progress: average resource usage falls while
/// average QoE holds above the requirement; both converge.

#include "env/env_service.hpp"
#include "bench_util.hpp"

int main() {
  using namespace atlas;
  const auto opts = common::bench_options();
  bench::banner("Figure 16: offline training progress (avg usage & avg QoE)",
                "paper Fig. 16 — usage decreases while QoE >= 0.9; both converge");

  env::EnvService service;
  const auto real = service.add_real_network();
  const auto calibration = bench::run_stage1(opts, service, real);
  const auto augmented = service.add_simulator(calibration.best_params, "augmented");

  core::OfflineTrainer trainer(service, augmented, bench::stage2_options(opts));
  const auto result = trainer.train();

  common::Table t({"iteration", "avg resource usage", "avg QoE", "lambda"});
  const std::size_t n = result.trace.avg_usage.size();
  for (std::size_t i = 0; i < n; i += std::max<std::size_t>(1, n / 12)) {
    t.add_row({std::to_string(i), common::fmt_pct(result.trace.avg_usage[i]),
               common::fmt(result.trace.avg_qoe[i]), common::fmt(result.trace.lambda[i])});
  }
  bench::emit(t, opts);

  common::Table best({"metric", "ours", "paper"});
  best.add_row({"best policy usage", common::fmt_pct(result.policy.best_usage), "19.81%"});
  best.add_row({"best policy QoE", common::fmt(result.policy.best_qoe), "0.905"});
  bench::emit(best, opts);
  return 0;
}
