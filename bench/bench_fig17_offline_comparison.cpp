/// Fig. 17 — Best offline policy: QoE vs resource usage for ours (BNN+PTS),
/// GP-EI, GP-PI, GP-UCB and DLDA. Paper: ours 0.905 QoE @ 19.81% usage;
/// DLDA 0.98 @ 26.87%; GP variants >= 0.92 @ up to 37.62%.

#include "env/env_service.hpp"
#include "baselines/dlda.hpp"
#include "bench_util.hpp"

int main() {
  using namespace atlas;
  const auto opts = common::bench_options();
  bench::banner("Figure 17: offline policies, QoE vs resource usage",
                "paper Fig. 17 — ours 0.905@19.8%; DLDA 0.98@26.9%; GP up to 37.6%");

  env::EnvService service;
  const auto augmented = service.add_simulator(env::oracle_calibration(), "augmented");
  const auto wl = bench::workload(opts, 20.0);

  // Validated QoE of a chosen config (fresh seeds, a couple of episodes).
  auto validate = [&](const env::SliceConfig& config) {
    double acc = 0.0;
    for (int e = 0; e < 2; ++e) {
      auto w = wl;
      w.seed = opts.seed + 900 + e;
      acc += bench::run_episode(service, augmented, config, w).qoe(300.0) / 2.0;
    }
    return acc;
  };

  common::Table t({"method", "resource usage", "QoE", "paper usage", "paper QoE"});

  auto run_surrogate = [&](core::OfflineSurrogate s, const std::string& name,
                           const std::string& paper_usage, const std::string& paper_qoe) {
    auto o = bench::stage2_options(opts);
    o.surrogate = s;
    // GP variants get the same ITERATION budget. (Matching episode counts
    // instead would need hundreds of sequential GP refits whose O(n^3)
    // hyperparameter search turns quartic — and only flatters the GPs.)
    core::OfflineTrainer trainer(service, augmented, o);
    const auto result = trainer.train();
    t.add_row({name, common::fmt_pct(result.policy.best_usage),
               common::fmt(validate(result.policy.best_config)), paper_usage, paper_qoe});
  };

  run_surrogate(core::OfflineSurrogate::kBnnPts, "Ours", "19.81%", "0.905");
  run_surrogate(core::OfflineSurrogate::kGpEi, "GP-EI", "<=37.62%", ">=0.92");
  run_surrogate(core::OfflineSurrogate::kGpPi, "GP-PI", "<=37.62%", ">=0.92");
  run_surrogate(core::OfflineSurrogate::kGpUcb, "GP-UCB", "<=37.62%", ">=0.92");

  // DLDA on the same augmented simulator.
  baselines::DldaOptions dlda_opts;
  dlda_opts.grid_per_dim = 4;
  dlda_opts.workload = wl;
  dlda_opts.seed = opts.seed + 7;
  baselines::Dlda dlda(service, augmented, dlda_opts);
  dlda.train_offline();
  math::Rng rng(opts.seed);
  const auto dlda_config = dlda.select_offline(rng);
  t.add_row({"DLDA", common::fmt_pct(dlda_config.resource_usage()),
             common::fmt(validate(dlda_config)), "26.87%", "0.98"});

  bench::emit(t, opts);
  return 0;
}
