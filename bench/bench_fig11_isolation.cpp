/// Fig. 11 — Slice latency under extra mobile users: end-to-end performance
/// isolation keeps the slice's latency flat no matter how many background
/// users attach and stream.

#include "env/env_service.hpp"
#include "bench_util.hpp"

int main() {
  using namespace atlas;
  const auto opts = common::bench_options();
  bench::banner("Figure 11: slice latency under extra mobile users",
                "paper Fig. 11 — latency stable for 0-2 extra users (isolation)");

  env::EnvService service;
  const auto real = service.add_real_network();
  env::SliceConfig config;
  config.bandwidth_ul = 20;
  config.bandwidth_dl = 20;
  config.backhaul_mbps = 50;
  config.cpu_ratio = 1.0;

  common::Table t({"extra users", "slice mean latency (ms)", "std (ms)", "QoE(300ms)"});
  for (int extra = 0; extra <= 2; ++extra) {
    auto wl = bench::workload(opts, 40.0);
    wl.extra_users = extra;
    const auto result = bench::run_episode(service, real, config, wl);
    const auto s = result.latency_summary();
    t.add_row({std::to_string(extra), common::fmt(s.mean, 0), common::fmt(s.stddev, 0),
               common::fmt(result.qoe(300.0))});
  }
  bench::emit(t, opts);
  return 0;
}
