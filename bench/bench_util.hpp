#pragma once

/// Shared plumbing for the per-figure bench binaries. Every binary prints the
/// paper's rows/series as aligned tables, with the paper-reported value
/// alongside where applicable. Budgets scale with ATLAS_BENCH_SCALE
/// (default 1 = CI-fast; >= 4 approaches the paper's budgets).

#include <cstdlib>
#include <iostream>
#include <string>

#include "atlas/calibrator.hpp"
#include "atlas/offline_trainer.hpp"
#include "atlas/online_learner.hpp"
#include "common/log.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "env/env_service.hpp"

namespace bench {

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "==============================================================\n"
            << title << "\n(" << paper_ref << ")\n"
            << "==============================================================\n";
}

/// Where a bench writes its BENCH_*.json artifact. Resolution order:
///   1. `override_env` (e.g. ATLAS_BENCH_OUT), if set and non-empty — the
///      per-bench escape hatch CI uses to relocate one artifact;
///   2. ATLAS_BENCH_OUT_DIR/<default_name>, if the directory knob is set —
///      relocates EVERY bench artifact at once;
///   3. `default_name` in the working directory.
inline std::string bench_output_path(const std::string& default_name,
                                     const char* override_env = nullptr) {
  if (override_env != nullptr) {
    const char* value = std::getenv(override_env);
    if (value != nullptr && *value != '\0') return value;
  }
  const char* dir = std::getenv("ATLAS_BENCH_OUT_DIR");
  if (dir != nullptr && *dir != '\0') return std::string(dir) + "/" + default_name;
  return default_name;
}

inline void emit(const atlas::common::Table& table, const atlas::common::BenchOptions& opts) {
  table.print(std::cout);
  if (opts.csv) {
    std::cout << "--- csv ---\n";
    table.print_csv(std::cout);
  }
  std::cout << std::endl;
}

/// Default workload for evaluation episodes: traffic 1 at 1 m, episode
/// duration scaled from the given base seconds.
inline atlas::env::Workload workload(const atlas::common::BenchOptions& opts,
                                     double base_seconds = 20.0, int traffic = 1) {
  atlas::env::Workload wl;
  wl.traffic = traffic;
  wl.duration_ms = opts.episode_seconds(base_seconds) * 1e3;
  wl.seed = opts.seed;
  return wl;
}

/// Seed-plan options from the environment knobs (ATLAS_SEED_POLICY,
/// ATLAS_CRN_REPLICATES, ATLAS_CRN_ROTATION) — see env/seed_plan.hpp. An
/// unknown policy string falls back to the default (fresh), loudly.
inline atlas::env::SeedPlanOptions seed_plan_options(const atlas::common::BenchOptions& opts) {
  atlas::env::SeedPlanOptions sp;
  if (const auto policy = atlas::env::parse_seed_policy(opts.seed_policy)) {
    sp.policy = *policy;
  } else {
    atlas::common::log_warn("unknown ATLAS_SEED_POLICY '", opts.seed_policy,
                            "' (want fresh|crn|crn_rotating); using fresh");
  }
  sp.replicates = opts.crn_replicates;
  sp.rotation_period = opts.crn_rotation;
  return sp;
}

/// Stage-1 budget preset (paper: 500 iterations x 16 parallel, 60 s episodes).
inline atlas::core::CalibrationOptions stage1_options(
    const atlas::common::BenchOptions& opts) {
  atlas::core::CalibrationOptions o;
  o.iterations = opts.iters(100, 20);
  o.init_iterations = opts.iters(20, 6);
  o.parallel = 8;
  o.candidates = opts.iters(800, 200);
  o.workload = workload(opts, 15.0);
  o.seed = opts.seed;
  o.seed_plan = seed_plan_options(opts);
  return o;
}

/// Stage-2 budget preset (paper: 1000 iterations).
inline atlas::core::OfflineOptions stage2_options(const atlas::common::BenchOptions& opts) {
  atlas::core::OfflineOptions o;
  o.iterations = opts.iters(140, 30);
  o.init_iterations = opts.iters(30, 8);
  o.parallel = 8;
  o.candidates = opts.iters(1200, 300);
  o.workload = workload(opts, 15.0);
  o.seed = opts.seed + 1;
  o.seed_plan = seed_plan_options(opts);
  return o;
}

/// Stage-3 budget preset (paper: 100 online iterations, N = 20).
inline atlas::core::OnlineOptions stage3_options(const atlas::common::BenchOptions& opts) {
  atlas::core::OnlineOptions o;
  o.iterations = opts.iters(60, 15);
  o.inner_updates = opts.iters(12, 4);
  o.candidates = opts.iters(1200, 300);
  o.workload = workload(opts, 20.0);
  o.seed = opts.seed + 2;
  o.seed_plan = seed_plan_options(opts);
  // The paper clips beta at B = 10 against residual sigmas of a few
  // hundredths; our shorter episodes carry ~0.03-0.05 QoE sampling noise, so
  // the equivalent conservatism needs a tighter clip and a matched GP noise
  // floor (B and rho are tenant-adjustable by design, §6.2).
  o.clip_b = 2.5;
  o.gp.noise_variance = 2e-3;
  return o;
}

/// One episode of `backend` under `config`, through the service.
inline atlas::env::EpisodeResult run_episode(atlas::env::EnvService& service,
                                             atlas::env::BackendId backend,
                                             const atlas::env::SliceConfig& config,
                                             const atlas::env::Workload& wl) {
  return service.run(backend, config, wl);
}

/// Run stage 1 once with the preset budget; several benches need the
/// calibrated parameters as their starting point. `real` is the metered
/// backend of `service`.
inline atlas::core::CalibrationResult run_stage1(const atlas::common::BenchOptions& opts,
                                                 atlas::env::EnvService& service,
                                                 atlas::env::BackendId real) {
  atlas::core::SimCalibrator calibrator(service, real, stage1_options(opts));
  return calibrator.calibrate();
}

}  // namespace bench
