/// Fig. 2 — End-to-end latency CDF under one slice user, simulator vs system.
/// The paper reports the system's average latency 25.2% above the simulator's.

#include "env/env_service.hpp"
#include "bench_util.hpp"
#include "math/stats.hpp"

int main() {
  using namespace atlas;
  const auto opts = common::bench_options();
  bench::banner("Figure 2: latency CDF under one slice user",
                "paper Fig. 2 — system mean is +25.2% vs simulator");

  env::EnvService service;
  const auto sim = service.add_simulator();
  const auto real = service.add_real_network();
  const auto wl = bench::workload(opts, 60.0, /*traffic=*/1);
  const auto rs = bench::run_episode(service, sim, env::SliceConfig{}, wl);
  const auto rr = bench::run_episode(service, real, env::SliceConfig{}, wl);

  common::Table t({"latency (ms)", "CDF simulator", "CDF system"});
  for (double x = 50.0; x <= 500.0; x += 50.0) {
    t.add_row({common::fmt(x, 0), common::fmt(math::empirical_cdf_at(rs.latencies_ms, x)),
               common::fmt(math::empirical_cdf_at(rr.latencies_ms, x))});
  }
  bench::emit(t, opts);

  const auto ss = rs.latency_summary();
  const auto sr = rr.latency_summary();
  common::Table m({"metric", "simulator", "system", "gap"});
  m.add_row({"mean latency (ms)", common::fmt(ss.mean, 1), common::fmt(sr.mean, 1),
             common::fmt_pct(sr.mean / ss.mean - 1.0) + " (paper: +25.2%)"});
  m.add_row({"std (ms)", common::fmt(ss.stddev, 1), common::fmt(sr.stddev, 1), "-"});
  bench::emit(m, opts);
  return 0;
}
