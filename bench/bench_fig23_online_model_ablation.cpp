/// Fig. 23 — Online approximation-function ablation: Ours (GP residual) vs
/// BNN residual, BNN-Cont'd, and no offline acceleration. Paper: BNN raises
/// usage/QoE regret by 107.6%/96.5%; BNN-Cont'd's QoE regret soars; no
/// offline acceleration raises usage regret by 63.5%.

#include "env/env_service.hpp"
#include "atlas/oracle.hpp"
#include "bench_util.hpp"

int main() {
  using namespace atlas;
  const auto opts = common::bench_options();
  bench::banner("Figure 23: online models (GP vs BNN vs BNN-Cont'd vs no offline acc.)",
                "paper Fig. 23 — GP residual + offline acceleration wins");

  env::EnvService service;
  const auto real = service.add_real_network();
  const auto augmented = service.add_simulator(env::oracle_calibration(), "augmented");

  const auto online_wl = bench::workload(opts, 20.0);
  const auto oracle = core::find_optimal_config(service, real, atlas::app::Sla{}, online_wl,
                                                opts.iters(100, 40), opts.seed + 23);

  common::Table t({"online model", "avg usage regret (%)", "avg QoE regret"});
  auto run_variant = [&](const std::string& name, core::OnlineModel model,
                         bool offline_accel) {
    // BNN-Cont'd mutates the offline policy's network: give each variant its
    // own freshly trained policy.
    core::OfflineTrainer trainer(service, augmented, bench::stage2_options(opts));
    const auto offline = trainer.train();
    auto o = bench::stage3_options(opts);
    o.model = model;
    o.offline_acceleration = offline_accel;
    o.workload = online_wl;
    core::OnlineLearner learner(&offline.policy, service, augmented, real, o);
    const auto regret = core::compute_regret(learner.learn().history, oracle);
    t.add_row({name, common::fmt(regret.avg_usage_regret * 100.0, 2),
               common::fmt(regret.avg_qoe_regret, 3)});
  };
  run_variant("Ours (GP residual)", core::OnlineModel::kGpResidual, true);
  run_variant("BNN residual", core::OnlineModel::kBnnResidual, true);
  run_variant("BNN-Cont'd", core::OnlineModel::kBnnContinued, true);
  run_variant("No Offline Acc.", core::OnlineModel::kGpResidual, false);
  bench::emit(t, opts);
  return 0;
}
