/// Fig. 8 + Table 4 — Stage-1 searching progress (ours vs the GP-based
/// approach) and the best simulation parameters found. The paper: original
/// KL 1.38; GP reaches 0.31 @ distance 0.16; ours 0.26 @ 0.12 (-24.5% avg
/// weighted discrepancy vs GP).

#include "env/env_service.hpp"
#include "bench_util.hpp"

int main() {
  using namespace atlas;
  const auto opts = common::bench_options();
  bench::banner("Figure 8 + Table 4: stage-1 parameter search, ours (BNN+PTS) vs GP",
                "paper — original 1.38; GP 0.31/0.16; ours 0.26/0.12");

  env::EnvService service;
  const auto real = service.add_real_network();

  auto ours_opts = bench::stage1_options(opts);
  core::SimCalibrator ours(service, real, ours_opts);
  const auto ours_result = ours.calibrate();

  auto gp_opts = bench::stage1_options(opts);
  gp_opts.surrogate = core::CalibratorSurrogate::kGpEi;
  core::SimCalibrator gp(service, real, gp_opts);
  const auto gp_result = gp.calibrate();

  // --- Fig. 8: searching progress ------------------------------------------
  common::Table progress({"iteration", "GP avg weighted", "Ours avg weighted"});
  const std::size_t n = ours_result.avg_weighted_per_iter.size();
  for (std::size_t i = 0; i < n; i += std::max<std::size_t>(1, n / 10)) {
    progress.add_row({std::to_string(i),
                      common::fmt(gp_result.avg_weighted_per_iter[std::min(
                          i, gp_result.avg_weighted_per_iter.size() - 1)]),
                      common::fmt(ours_result.avg_weighted_per_iter[i])});
  }
  std::cout << "Searching progress (Fig. 8):\n";
  bench::emit(progress, opts);

  // --- Table 4: best parameters ---------------------------------------------
  auto param_row = [](const std::string& name, const env::SimParams& p, double kl,
                      double dist) {
    std::string vec = "[";
    const auto v = p.to_vec();
    for (std::size_t i = 0; i < v.size(); ++i) {
      vec += atlas::common::fmt(v[i], 2) + (i + 1 < v.size() ? ", " : "]");
    }
    return std::vector<std::string>{name, atlas::common::fmt(kl, 2),
                                    atlas::common::fmt(dist, 2), vec};
  };
  common::Table best({"method", "discrepancy", "param distance", "best simulation parameters"});
  best.add_row(param_row("Original Simulator", env::SimParams::defaults(),
                         ours_result.original_kl, 0.0));
  best.add_row(
      param_row("Aug. Simulator, GP", gp_result.best_params, gp_result.best_kl,
                gp_result.best_distance));
  best.add_row(param_row("Aug. Simulator, Ours", ours_result.best_params, ours_result.best_kl,
                         ours_result.best_distance));
  std::cout << "Best simulation parameters (Table 4):\n";
  bench::emit(best, opts);

  const double reduction = 1.0 - ours_result.best_kl / ours_result.original_kl;
  std::cout << "Discrepancy reduction vs original: " << common::fmt_pct(reduction)
            << " (paper: 81.2%)\n";
  return 0;
}
