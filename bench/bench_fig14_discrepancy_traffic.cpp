/// Fig. 14 — Discrepancy reduction under different user traffic: parameters
/// calibrated ONLY at traffic 1 still reduce discrepancy at traffic 2-4
/// (shared patterns), but unevenly — residual discrepancy remains.

#include "env/env_service.hpp"
#include "bench_util.hpp"
#include "math/kl.hpp"

int main() {
  using namespace atlas;
  const auto opts = common::bench_options();
  bench::banner("Figure 14: sim-to-real discrepancy under user traffic, original vs ours",
                "paper Fig. 14 — reductions of 81/57/44/62% at traffic 1-4");

  env::EnvService service;
  const auto real = service.add_real_network();
  const auto calibration = bench::run_stage1(opts, service, real);  // calibrated at traffic 1
  const auto original = service.add_simulator();
  const auto calibrated = service.add_simulator(calibration.best_params, "calibrated");

  common::Table t({"user traffic", "orig. simulator", "ours", "reduction"});
  for (int traffic = 1; traffic <= 4; ++traffic) {
    auto wl = bench::workload(opts, 40.0, traffic);
    const auto lat_real = bench::run_episode(service, real, env::SliceConfig{}, wl).latencies_ms;
    wl.seed = opts.seed + 41;
    const auto lat_orig =
        bench::run_episode(service, original, env::SliceConfig{}, wl).latencies_ms;
    const auto lat_cal =
        bench::run_episode(service, calibrated, env::SliceConfig{}, wl).latencies_ms;
    const double kl_orig = math::kl_divergence(lat_real, lat_orig);
    const double kl_cal = math::kl_divergence(lat_real, lat_cal);
    t.add_row({std::to_string(traffic), common::fmt(kl_orig, 2), common::fmt(kl_cal, 2),
               common::fmt_pct(1.0 - kl_cal / kl_orig)});
  }
  bench::emit(t, opts);
  return 0;
}
