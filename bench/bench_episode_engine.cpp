// Episode-engine throughput bench: episodes/sec of the innermost loop every
// Atlas stage fans out over (offline BO training, online learning, and every
// per-figure bench all reduce to thousands of run_episode calls).
//
// Workloads cover the axes that stress different parts of the engine:
//   - short vs long episodes        (event-queue + fixed-cadence stepper cost)
//   - traces off vs on              (per-frame bookkeeping)
//   - 0/4/16/64/256 background UEs  (SoA batch sweep vs per-UE scheduler)
//   - real profile with mobility    (fading + random-walk stepper)
//
// Writes BENCH_episode_engine.json (override with ATLAS_BENCH_OUT) so CI can
// track the perf trajectory PR over PR. Each scenario carries a
// `baseline_ratio` against the pre-SoA-tier numbers committed with PR 6
// (null for scenarios that postdate that baseline), and the artifact records
// the machine context (cores, compiler, build flavor) so cross-host numbers
// are never compared as if they were same-host.

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "env/episode.hpp"
#include "env/profile.hpp"

namespace {

struct Scenario {
  std::string name;
  bool real_profile = false;
  double duration_s = 60.0;
  bool traces = false;
  int extra_users = 0;
  bool random_walk = false;
  int traffic = 2;
  /// episodes/sec committed BEFORE the vectorized background tier (PR 6,
  /// same scale=2 protocol). 0 = no pre-tier baseline exists.
  double baseline_eps = 0.0;
};

struct Measurement {
  std::string name;
  std::size_t episodes = 0;
  double seconds = 0.0;
  double eps = 0.0;
  std::size_t frames = 0;
  double baseline_eps = 0.0;
  double baseline_ratio = 0.0;  ///< eps / baseline_eps (0 = no baseline).
};

Measurement run_scenario(const Scenario& sc, double scale) {
  const atlas::env::NetworkProfile profile =
      sc.real_profile ? atlas::env::real_network_profile() : atlas::env::simulator_profile();
  atlas::env::SliceConfig config;
  if (sc.extra_users > 0) {
    // Leave PRBs for the background slice so its UEs actually transmit —
    // otherwise the scenario degenerates to fading bookkeeping.
    config.bandwidth_ul = 30;
    config.bandwidth_dl = 30;
  }
  atlas::env::Workload wl;
  wl.traffic = sc.traffic;
  wl.duration_ms = sc.duration_s * 1e3;
  wl.collect_traces = sc.traces;
  wl.extra_users = sc.extra_users;
  wl.random_walk = sc.random_walk;

  // Warm up allocators/caches with one episode, then run for a minimum wall
  // time AND a minimum episode count so short scenarios still average well.
  wl.seed = 1;
  auto warm = atlas::env::run_episode(profile, config, wl);
  const double min_seconds = 1.0 * scale;
  const std::size_t min_episodes = 3;
  Measurement m;
  m.name = sc.name;
  m.frames = warm.frames_completed;
  m.baseline_eps = sc.baseline_eps;
  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  while (elapsed < min_seconds || m.episodes < min_episodes) {
    wl.seed = 100 + m.episodes;  // fresh seed per episode: no memoization anywhere
    const auto result = atlas::env::run_episode(profile, config, wl);
    if (result.frames_completed == 0) std::abort();  // engine regression guard
    ++m.episodes;
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  }
  m.seconds = elapsed;
  m.eps = static_cast<double>(m.episodes) / elapsed;
  if (m.baseline_eps > 0.0) m.baseline_ratio = m.eps / m.baseline_eps;
  return m;
}

std::string compiler_string() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." + std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

std::string build_type() {
#if defined(NDEBUG)
  return "Release";
#else
  return "Debug";
#endif
}

bool simd_enabled() {
#if defined(ATLAS_UE_BATCH_SIMD) && defined(__AVX2__)
  return true;
#else
  return false;
#endif
}

}  // namespace

int main() {
  const auto opts = atlas::common::bench_options();
  bench::banner("Episode-engine throughput (episodes/sec)",
                "engine hot path: DES + MAC/PHY + transport + edge");

  const std::vector<Scenario> scenarios = {
      {"sim_short_10s", false, 10.0, false, 0, false, 2, 382.687},
      {"sim_long_60s", false, 60.0, false, 0, false, 2, 64.7723},
      {"sim_long_60s_traces", false, 60.0, true, 0, false, 2, 65.3231},
      {"sim_long_60s_bg4", false, 60.0, false, 4, false, 2, 21.2947},
      {"sim_long_60s_bg16", false, 60.0, false, 16, false, 2, 9.83251},
      {"sim_long_60s_bg64", false, 60.0, false, 64, false, 2, 0.0},
      {"sim_long_60s_bg256", false, 60.0, false, 256, false, 2, 0.0},
      {"real_long_60s_mobility", true, 60.0, false, 0, true, 2, 37.8155},
  };

  std::vector<Measurement> results;
  atlas::common::Table table(
      {"scenario", "episodes", "wall s", "episodes/s", "frames/ep", "vs baseline"});
  for (const auto& sc : scenarios) {
    const Measurement m = run_scenario(sc, opts.scale);
    table.add_row({m.name, std::to_string(m.episodes), atlas::common::fmt(m.seconds),
                   atlas::common::fmt(m.eps, 1), std::to_string(m.frames),
                   m.baseline_ratio > 0.0 ? atlas::common::fmt(m.baseline_ratio, 2) + "x" : "-"});
    results.push_back(m);
  }
  bench::emit(table, opts);

  const std::string out_path =
      bench::bench_output_path("BENCH_episode_engine.json", "ATLAS_BENCH_OUT");
  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"episode_engine\",\n  \"unit\": \"episodes_per_second\",\n"
      << "  \"machine\": {\"cores\": " << std::thread::hardware_concurrency()
      << ", \"compiler\": \"" << compiler_string() << "\", \"build_type\": \"" << build_type()
      << "\", \"ue_batch_simd\": " << (simd_enabled() ? "true" : "false")
      << ", \"bench_scale\": " << opts.scale << "},\n"
      << "  \"baseline\": \"pre-SoA background tier (PR 6 artifact, same protocol)\",\n"
      << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& m = results[i];
    out << "    {\"name\": \"" << m.name << "\", \"episodes\": " << m.episodes
        << ", \"wall_seconds\": " << m.seconds << ", \"episodes_per_second\": " << m.eps
        << ", \"frames_per_episode\": " << m.frames << ", \"baseline_eps\": ";
    if (m.baseline_eps > 0.0) {
      out << m.baseline_eps << ", \"baseline_ratio\": " << m.baseline_ratio;
    } else {
      out << "null, \"baseline_ratio\": null";
    }
    out << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
