/// Fig. 19 — Average resource usage under different latency thresholds Y:
/// ours stays below DLDA everywhere; the gap shrinks as Y loosens (the
/// 6 UL / 3 DL PRB connectivity floor already satisfies loose SLAs).

#include "env/env_service.hpp"
#include "baselines/dlda.hpp"
#include "bench_util.hpp"

int main() {
  using namespace atlas;
  const auto opts = common::bench_options();
  bench::banner("Figure 19: avg usage vs latency threshold Y",
                "paper Fig. 19 — ours < DLDA; gap shrinks as Y grows");

  env::EnvService service;
  const auto augmented = service.add_simulator(env::oracle_calibration(), "augmented");
  const auto wl = bench::workload(opts, 15.0);

  baselines::DldaOptions dlda_opts;
  dlda_opts.grid_per_dim = 4;
  dlda_opts.workload = wl;
  dlda_opts.seed = opts.seed + 9;
  baselines::Dlda dlda(service, augmented, dlda_opts);
  dlda.train_offline();

  common::Table t({"threshold Y (ms)", "ours usage", "ours QoE", "DLDA usage", "DLDA QoE"});
  for (double y : {300.0, 400.0, 500.0}) {
    auto o = bench::stage2_options(opts);
    o.iterations = opts.iters(90, 20);
    o.sla.latency_threshold_ms = y;
    core::OfflineTrainer trainer(service, augmented, o);
    const auto result = trainer.train();

    // DLDA's teacher was trained at Y=300 QoE labels; per the paper we
    // rebuild its dataset per threshold. To stay light, re-select only.
    baselines::DldaOptions per_y = dlda_opts;
    per_y.sla.latency_threshold_ms = y;
    baselines::Dlda dlda_y(service, augmented, per_y);
    dlda_y.train_offline();
    math::Rng rng(opts.seed + static_cast<std::uint64_t>(y));
    const auto dlda_config = dlda_y.select_offline(rng);

    auto validate = [&](const env::SliceConfig& c) {
      auto w = wl;
      w.seed = opts.seed + 700 + static_cast<std::uint64_t>(y);
      return bench::run_episode(service, augmented, c, w).qoe(y);
    };
    t.add_row({common::fmt(y, 0), common::fmt_pct(result.policy.best_usage),
               common::fmt(validate(result.policy.best_config)),
               common::fmt_pct(dlda_config.resource_usage()),
               common::fmt(validate(dlda_config))});
  }
  bench::emit(t, opts);
  return 0;
}
