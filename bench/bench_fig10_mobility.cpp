/// Fig. 10 — Sim-to-real discrepancy under user mobility: discrepancy rises
/// with the user-eNB distance (the real pathloss exponent has no Table 3
/// counterpart), worst under random-walk mobility.

#include "env/env_service.hpp"
#include "bench_util.hpp"
#include "math/kl.hpp"

int main() {
  using namespace atlas;
  const auto opts = common::bench_options();
  bench::banner("Figure 10: sim-to-real discrepancy under user mobility",
                "paper Fig. 10 — rises with distance; random walk worst");

  env::EnvService service;
  const auto real = service.add_real_network();
  const auto calibration = bench::run_stage1(opts, service, real);
  const auto sim = service.add_simulator(calibration.best_params, "calibrated");

  common::Table t({"user-BS distance (m)", "sim-to-real discrepancy"});
  auto measure = [&](double distance, bool random_walk, const std::string& label) {
    auto wl = bench::workload(opts, 40.0);
    wl.distance_m = distance;
    wl.random_walk = random_walk;
    const auto lat_real = bench::run_episode(service, real, env::SliceConfig{}, wl).latencies_ms;
    wl.seed = opts.seed + 31;
    const auto lat_sim = bench::run_episode(service, sim, env::SliceConfig{}, wl).latencies_ms;
    double kl = 10.0;
    if (!lat_real.empty() && !lat_sim.empty()) {
      kl = math::kl_divergence(lat_real, lat_sim);
    }
    t.add_row({label, common::fmt(kl, 2)});
  };
  for (double d : {1.0, 3.0, 5.0, 7.0, 10.0}) {
    measure(d, false, common::fmt(d, 0));
  }
  measure(4.0, true, "random");
  bench::emit(t, opts);
  return 0;
}
