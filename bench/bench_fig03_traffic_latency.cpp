/// Fig. 3 — End-to-end latency statistics under user traffic 1-4: the
/// sim-to-real gap (mean and variance) widens as traffic grows.

#include "env/env_service.hpp"
#include "bench_util.hpp"

int main() {
  using namespace atlas;
  const auto opts = common::bench_options();
  bench::banner("Figure 3: latency vs user traffic",
                "paper Fig. 3 — gap grows with traffic; system reaches ~800 ms at 4");

  env::EnvService service;
  const auto sim = service.add_simulator();
  const auto real = service.add_real_network();
  common::Table t({"user traffic", "sim mean (ms)", "sim std", "system mean (ms)", "system std",
                   "mean gap"});
  for (int traffic = 1; traffic <= 4; ++traffic) {
    auto wl = bench::workload(opts, 60.0, traffic);
    const auto ss = bench::run_episode(service, sim, env::SliceConfig{}, wl).latency_summary();
    const auto sr = bench::run_episode(service, real, env::SliceConfig{}, wl).latency_summary();
    t.add_row({std::to_string(traffic), common::fmt(ss.mean, 0), common::fmt(ss.stddev, 0),
               common::fmt(sr.mean, 0), common::fmt(sr.stddev, 0),
               common::fmt_pct(sr.mean / ss.mean - 1.0)});
  }
  bench::emit(t, opts);
  return 0;
}
