/// Fig. 18 — Offline Pareto boundary under different availability
/// requirements E: ours dominates DLDA and GP-EI in (usage, QoE).

#include "env/env_service.hpp"
#include "baselines/dlda.hpp"
#include "bench_util.hpp"

int main() {
  using namespace atlas;
  const auto opts = common::bench_options();
  bench::banner("Figure 18: Pareto boundary under availability E",
                "paper Fig. 18 — ours dominates; DLDA jumps 0.33 -> 0.89 (coarse grid)");

  env::EnvService service;
  const auto augmented = service.add_simulator(env::oracle_calibration(), "augmented");
  const auto wl = bench::workload(opts, 15.0);

  // DLDA's teacher is availability-independent: train once, select per E.
  baselines::DldaOptions dlda_opts;
  dlda_opts.grid_per_dim = 4;
  dlda_opts.workload = wl;
  dlda_opts.seed = opts.seed + 3;
  baselines::Dlda dlda(service, augmented, dlda_opts);
  dlda.train_offline();

  common::Table t({"E", "ours usage", "ours QoE", "GP-EI usage", "GP-EI QoE", "DLDA usage",
                   "DLDA QoE"});
  for (double e : {0.5, 0.7, 0.85, 0.95}) {
    auto ours_opts = bench::stage2_options(opts);
    ours_opts.iterations = opts.iters(80, 20);
    ours_opts.sla.availability = e;
    core::OfflineTrainer ours(service, augmented, ours_opts);
    const auto ours_result = ours.train();

    auto gp_opts = ours_opts;
    gp_opts.surrogate = core::OfflineSurrogate::kGpEi;
    gp_opts.iterations = opts.iters(160, 40);
    core::OfflineTrainer gp(service, augmented, gp_opts);
    const auto gp_result = gp.train();

    math::Rng rng(opts.seed + static_cast<std::uint64_t>(e * 100));
    // Re-select from dlda's teacher under the new requirement E by sweeping
    // candidates against its predicted QoE.
    const auto dlda_config = [&] {
      env::SliceConfig best = env::SliceConfig{};
      double best_usage = 10.0;
      const auto space = env::SliceConfig::space();
      for (int i = 0; i < 3000; ++i) {
        const auto cand = env::SliceConfig::from_vec(space.sample(rng));
        if (dlda.predict_qoe(cand) >= e && cand.resource_usage() < best_usage) {
          best_usage = cand.resource_usage();
          best = cand;
        }
      }
      return best;
    }();

    auto validate = [&](const env::SliceConfig& c) {
      auto w = wl;
      w.seed = opts.seed + 500 + static_cast<std::uint64_t>(e * 10);
      return bench::run_episode(service, augmented, c, w).qoe(300.0);
    };
    t.add_row({common::fmt(e, 2), common::fmt_pct(ours_result.policy.best_usage),
               common::fmt(validate(ours_result.policy.best_config)),
               common::fmt_pct(gp_result.policy.best_usage),
               common::fmt(validate(gp_result.policy.best_config)),
               common::fmt_pct(dlda_config.resource_usage()),
               common::fmt(validate(dlda_config))});
  }
  bench::emit(t, opts);
  return 0;
}
