/// Microbenchmarks (google-benchmark) — the analogue of the paper's §7.3
/// compute-cost profile (22.27 s / 27.23 s / 16.99 s per stage iteration on
/// their desktop): per-component costs of the episode simulator, surrogates,
/// and discrepancy measurement.

#include <benchmark/benchmark.h>

#include "env/env_service.hpp"
#include "gp/gaussian_process.hpp"
#include "math/kl.hpp"
#include "math/linalg.hpp"
#include "math/rng.hpp"
#include "nn/bnn.hpp"
#include "nn/optim.hpp"

using namespace atlas;

static void BM_Episode60s(benchmark::State& state) {
  env::EnvService service(env::EnvServiceOptions{.threads = 1});
  const auto sim = service.add_simulator();
  env::EnvQuery q;
  q.backend = sim;
  q.workload.duration_ms = 60000.0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    q.workload.seed = ++seed;  // fresh seed: no cache hits, pure episode cost
    benchmark::DoNotOptimize(service.run(q));
  }
}
BENCHMARK(BM_Episode60s)->Unit(benchmark::kMillisecond);

static void BM_EpisodeTraffic4(benchmark::State& state) {
  env::EnvService service(env::EnvServiceOptions{.threads = 1});
  const auto real = service.add_real_network();
  env::EnvQuery q;
  q.backend = real;
  q.workload.duration_ms = 60000.0;
  q.workload.traffic = 4;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    q.workload.seed = ++seed;
    benchmark::DoNotOptimize(service.run(q));
  }
}
BENCHMARK(BM_EpisodeTraffic4)->Unit(benchmark::kMillisecond);

static void BM_EnvServiceCacheHit(benchmark::State& state) {
  // Pure service overhead: key construction + lookup for a memoized episode.
  env::EnvService service(env::EnvServiceOptions{.threads = 1});
  const auto sim = service.add_simulator();
  env::EnvQuery q;
  q.backend = sim;
  q.workload.duration_ms = 10000.0;
  q.workload.seed = 3;
  (void)service.run(q);  // warm
  for (auto _ : state) benchmark::DoNotOptimize(service.run(q));
}
BENCHMARK(BM_EnvServiceCacheHit);

static void BM_GpFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  math::Rng rng(2);
  math::Matrix x(n, 6);
  math::Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 6; ++j) x(i, j) = rng.uniform(0, 1);
    y[i] = rng.uniform(0, 1);
  }
  gp::GaussianProcess gp;
  for (auto _ : state) {
    gp.fit(x, y);
    benchmark::DoNotOptimize(gp.log_marginal_likelihood());
  }
}
BENCHMARK(BM_GpFit)->Arg(50)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);

static void BM_GpPredict(benchmark::State& state) {
  math::Rng rng(3);
  math::Matrix x(100, 6);
  math::Vec y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t j = 0; j < 6; ++j) x(i, j) = rng.uniform(0, 1);
    y[i] = rng.uniform(0, 1);
  }
  gp::GaussianProcess gp;
  gp.fit(x, y);
  math::Vec q(6, 0.5);
  for (auto _ : state) benchmark::DoNotOptimize(gp.predict(q));
}
BENCHMARK(BM_GpPredict);

static void BM_BnnTrainEpoch(benchmark::State& state) {
  math::Rng rng(4);
  nn::BnnConfig cfg;
  cfg.sizes = {8, 64, 64, 1};
  nn::Bnn bnn(cfg, rng);
  nn::Adadelta opt(1.0);
  const std::size_t n = 512;
  math::Matrix x(n, 8);
  math::Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 8; ++j) x(i, j) = rng.uniform(0, 1);
    y[i] = rng.uniform(0, 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bnn.train(x, y, 1, 64, opt, nullptr, rng));
  }
}
BENCHMARK(BM_BnnTrainEpoch)->Unit(benchmark::kMillisecond);

static void BM_BnnThompsonScore2k(benchmark::State& state) {
  math::Rng rng(5);
  nn::BnnConfig cfg;
  cfg.sizes = {8, 64, 64, 1};
  nn::Bnn bnn(cfg, rng);
  math::Matrix candidates(2000, 8);
  for (std::size_t i = 0; i < 2000; ++i) {
    for (std::size_t j = 0; j < 8; ++j) candidates(i, j) = rng.uniform(0, 1);
  }
  for (auto _ : state) {
    const auto draw = bnn.thompson(rng);
    benchmark::DoNotOptimize(draw.predict_batch(candidates));
  }
}
BENCHMARK(BM_BnnThompsonScore2k)->Unit(benchmark::kMillisecond);

static void BM_KlDivergence(benchmark::State& state) {
  math::Rng rng(6);
  math::Vec p(500);
  math::Vec q(500);
  for (auto& v : p) v = rng.normal(170, 45);
  for (auto& v : q) v = rng.normal(120, 32);
  for (auto _ : state) benchmark::DoNotOptimize(math::kl_divergence(p, q));
}
BENCHMARK(BM_KlDivergence);

static void BM_Cholesky(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  math::Rng rng(7);
  math::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
  }
  math::Matrix spd = math::matmul(a, a.transposed());
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  for (auto _ : state) benchmark::DoNotOptimize(math::cholesky(spd));
}
BENCHMARK(BM_Cholesky)->Arg(64)->Arg(128)->Arg(256);

BENCHMARK_MAIN();
