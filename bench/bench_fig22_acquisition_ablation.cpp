/// Fig. 22 — Footprint of Atlas's online stage under different acquisition
/// functions (PI, EI, GP-UCB, ours/cRGP-UCB): the conservative acquisition
/// explores lower-usage actions while staying near the QoE requirement.

#include "env/env_service.hpp"
#include "atlas/oracle.hpp"
#include "bench_util.hpp"

int main() {
  using namespace atlas;
  const auto opts = common::bench_options();
  bench::banner("Figure 22: online footprint under acquisition functions",
                "paper Fig. 22 — ours beats PI/EI; GP-UCB close but uses more resources");

  env::EnvService service;
  const auto real = service.add_real_network();
  const auto augmented = service.add_simulator(env::oracle_calibration(), "augmented");
  core::OfflineTrainer trainer(service, augmented, bench::stage2_options(opts));
  const auto offline = trainer.train();

  struct Entry {
    std::string name;
    bo::AcquisitionKind kind;
  };
  const std::vector<Entry> entries{{"PI", bo::AcquisitionKind::kPi},
                                   {"EI", bo::AcquisitionKind::kEi},
                                   {"GP-UCB", bo::AcquisitionKind::kGpUcb},
                                   {"Ours (cRGP-UCB)", bo::AcquisitionKind::kCrgpUcb}};

  common::Table t({"acquisition", "avg usage", "avg QoE", "QoE<0.9 rate", "min usage@QoE>=0.9"});
  for (const auto& entry : entries) {
    auto o = bench::stage3_options(opts);
    o.acquisition = entry.kind;
    core::OnlineLearner learner(&offline.policy, service, augmented, real, o);
    const auto run = learner.learn();
    double usage = 0.0;
    double qoe = 0.0;
    double violations = 0.0;
    double best_feasible = 1.0;
    for (const auto& h : run.history) {
      usage += h.usage / static_cast<double>(run.history.size());
      qoe += h.qoe_real / static_cast<double>(run.history.size());
      if (h.qoe_real < 0.9) violations += 1.0 / static_cast<double>(run.history.size());
      if (h.qoe_real >= 0.9) best_feasible = std::min(best_feasible, h.usage);
    }
    t.add_row({entry.name, common::fmt_pct(usage), common::fmt(qoe),
               common::fmt_pct(violations), common::fmt_pct(best_feasible)});
  }
  bench::emit(t, opts);
  return 0;
}
