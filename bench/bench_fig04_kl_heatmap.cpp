/// Fig. 4 — Heatmap of KL-divergence between system and simulator latency
/// distributions over (CPU usage, UL bandwidth usage): the discrepancy is
/// non-trivial and UNEVEN across resource configurations.

#include "env/env_service.hpp"
#include "bench_util.hpp"
#include "math/kl.hpp"

int main() {
  using namespace atlas;
  const auto opts = common::bench_options();
  bench::banner("Figure 4: KL-divergence heatmap over (CPU, UL bandwidth) usage",
                "paper Fig. 4 — KL exceeds 10 in some cells; uneven across the grid");

  env::EnvService service;
  const auto sim = service.add_simulator();
  const auto real = service.add_real_network();
  const double levels[] = {0.1, 0.3, 0.5, 0.7, 0.9};

  common::Table t({"UL BW \\ CPU", "10%", "30%", "50%", "70%", "90%"});
  double max_kl = 0.0;
  double min_kl = 1e18;
  for (double bw : levels) {
    std::vector<std::string> row{common::fmt_pct(bw, 0)};
    for (double cpu : levels) {
      env::SliceConfig config;
      config.bandwidth_ul = bw * 50.0;
      config.cpu_ratio = cpu;
      auto wl = bench::workload(opts, 30.0);
      const auto lat_sim = bench::run_episode(service, sim, config, wl).latencies_ms;
      wl.seed = opts.seed + 101;
      const auto lat_real = bench::run_episode(service, real, config, wl).latencies_ms;
      double kl = 0.0;
      if (!lat_sim.empty() && !lat_real.empty()) {
        kl = math::kl_divergence(lat_real, lat_sim);
      }
      max_kl = std::max(max_kl, kl);
      min_kl = std::min(min_kl, kl);
      row.push_back(common::fmt(kl, 2));
    }
    t.add_row(row);
  }
  bench::emit(t, opts);
  std::cout << "KL range across the grid: [" << common::fmt(min_kl, 2) << ", "
            << common::fmt(max_kl, 2) << "] — uneven, as in the paper.\n";
  return 0;
}
