/// Episode-RPC overhead bench — what does putting an episode behind the
/// wire cost? Three layers, bottom up: (1) raw codec encode+decode of a
/// realistic EpisodeResult, (2) full request/response round-trips over the
/// in-process loopback transport, (3) the same over real TCP sockets on
/// 127.0.0.1. Against episode wall-times of tens of milliseconds, the RPC
/// tax should be noise — this bench keeps it honest.

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "env/env_service.hpp"
#include "bench_util.hpp"
#include "rpc/codec.hpp"
#include "rpc/remote_backend.hpp"
#include "rpc/server.hpp"
#include "rpc/transport.hpp"

int main() {
  using namespace atlas;
  using clock = std::chrono::steady_clock;
  const auto opts = common::bench_options();
  bench::banner("episode-RPC: codec + transport overhead",
                "remote episodes must cost network, not CPU");

  const auto ms_since = [](clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(clock::now() - t0).count();
  };

  // A realistic result: one 60 s episode completes a few thousand frames.
  env::EpisodeResult sample;
  for (int i = 0; i < 4000; ++i) sample.latencies_ms.push_back(20.0 + 0.01 * i);
  sample.frames_completed = sample.latencies_ms.size();
  sample.ul_tb_total = 120000;
  sample.dl_tb_total = 90000;

  common::Table t({"layer", "op", "ops/s", "us/op"});

  {  // codec only
    const std::size_t iters = opts.iters(20000, 1000);
    const auto t0 = clock::now();
    std::size_t sink = 0;
    for (std::size_t i = 0; i < iters; ++i) {
      const auto frame = rpc::encode_result(i, sample);
      rpc::WireReader reader(frame);
      (void)rpc::decode_header(reader);
      sink += rpc::decode_result_body(reader).latencies_ms.size();
    }
    const double ms = ms_since(t0);
    if (sink == 0) std::cout << "";  // keep the decode loop observable
    t.add_row({"codec", "encode+decode 4k-latency result",
               common::fmt(1000.0 * static_cast<double>(iters) / ms, 0),
               common::fmt(1000.0 * ms / static_cast<double>(iters), 1)});
  }

  // Round-trip layers share a tiny-episode worker so the measured time is
  // dominated by RPC plumbing, not simulation.
  env::EnvService worker(env::EnvServiceOptions{.threads = 2, .cache_capacity = 0});
  worker.add_simulator();
  env::EnvQuery tiny;
  tiny.workload.duration_ms = 200.0;

  const auto round_trips = [&](rpc::RemoteBackend& backend, std::size_t iters) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
      tiny.workload.seed = i + 1;
      (void)backend.execute(tiny);
    }
    return ms_since(t0);
  };

  rpc::EpisodeRpcServer server(worker, rpc::RpcServerOptions{.port = 0});
  const std::size_t iters = opts.iters(300, 20);

  {  // loopback transport
    std::vector<std::thread> serve_threads;
    std::vector<std::shared_ptr<rpc::Transport>> ends;
    rpc::RemoteBackendOptions ro;
    ro.name = "loopback";
    ro.transport_factory = [&] {
      auto [client_end, server_end] = rpc::make_loopback_pair();
      std::shared_ptr<rpc::Transport> remote{std::move(server_end)};
      ends.push_back(remote);
      serve_threads.emplace_back([&server, remote] { server.serve(*remote); });
      return std::move(client_end);
    };
    {
      rpc::RemoteBackend backend(ro);
      const double ms = round_trips(backend, iters);
      t.add_row({"loopback", "episode round-trip",
                 common::fmt(1000.0 * static_cast<double>(iters) / ms, 0),
                 common::fmt(1000.0 * ms / static_cast<double>(iters), 1)});
    }
    for (auto& e : ends) e->close();
    for (auto& th : serve_threads) th.join();
  }

  {  // TCP on 127.0.0.1
    rpc::RemoteBackendOptions ro;
    ro.host = "127.0.0.1";
    ro.port = server.port();
    ro.name = "tcp";
    rpc::RemoteBackend backend(ro);
    const double ms = round_trips(backend, iters);
    t.add_row({"tcp 127.0.0.1", "episode round-trip",
               common::fmt(1000.0 * static_cast<double>(iters) / ms, 0),
               common::fmt(1000.0 * ms / static_cast<double>(iters), 1)});
  }

  t.print(std::cout);
  server.stop();
  return 0;
}
