/// Fig. 9 — Latency CDF under the best simulation parameters found by each
/// method: the calibrated simulators hug the system's CDF; the GP-based one
/// shows a longer tail.

#include "env/env_service.hpp"
#include "bench_util.hpp"
#include "math/stats.hpp"

int main() {
  using namespace atlas;
  const auto opts = common::bench_options();
  bench::banner("Figure 9: latency CDF under calibrated simulation parameters",
                "paper Fig. 9 — ours matches the system CDF; GP has a longer tail");

  env::EnvService service;
  const auto real = service.add_real_network();

  auto ours_opts = bench::stage1_options(opts);
  const auto ours = core::SimCalibrator(service, real, ours_opts).calibrate();
  auto gp_opts = bench::stage1_options(opts);
  gp_opts.surrogate = core::CalibratorSurrogate::kGpEi;
  const auto gp = core::SimCalibrator(service, real, gp_opts).calibrate();

  const auto sim_ours = service.add_simulator(ours.best_params, "sim-ours");
  const auto sim_gp = service.add_simulator(gp.best_params, "sim-gp");
  const auto wl = bench::workload(opts, 60.0);
  const auto lat_real = bench::run_episode(service, real, env::SliceConfig{}, wl).latencies_ms;
  const auto lat_ours =
      bench::run_episode(service, sim_ours, env::SliceConfig{}, wl).latencies_ms;
  const auto lat_gp = bench::run_episode(service, sim_gp, env::SliceConfig{}, wl).latencies_ms;

  common::Table t({"latency (ms)", "CDF simulator-GP", "CDF system", "CDF simulator-ours"});
  for (double x = 100.0; x <= 600.0; x += 50.0) {
    t.add_row({common::fmt(x, 0), common::fmt(math::empirical_cdf_at(lat_gp, x)),
               common::fmt(math::empirical_cdf_at(lat_real, x)),
               common::fmt(math::empirical_cdf_at(lat_ours, x))});
  }
  bench::emit(t, opts);
  return 0;
}
