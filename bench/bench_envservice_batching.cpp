/// EnvService microbench — batched vs sequential environment-query
/// throughput. The paper's stages issue up to 16 parallel simulator queries
/// per Thompson-sampling iteration; this bench shows what the service's
/// batching buys at 1/4/8/16 workers, what its memoization buys on a
/// repeated batch (hit rate 1.0 -> no episodes at all), and what the CRN
/// seed plan buys iteration-over-iteration (BENCH_crn_reuse.json).

#include <chrono>
#include <cstdlib>
#include <fstream>

#include "env/env_service.hpp"
#include "env/seed_plan.hpp"
#include "math/rng.hpp"
#include "bench_util.hpp"

int main() {
  using namespace atlas;
  using clock = std::chrono::steady_clock;
  const auto opts = common::bench_options();
  bench::banner("EnvService: batched vs sequential query throughput",
                "service-level analogue of paper Fig. 13's parallel queries");

  const std::size_t batch_size = 32;
  const auto wl = bench::workload(opts, 4.0);

  auto make_batch = [&](env::BackendId sim, std::uint64_t seed_base) {
    std::vector<env::EnvQuery> batch(batch_size);
    for (std::size_t i = 0; i < batch_size; ++i) {
      batch[i].backend = sim;
      batch[i].workload = wl;
      batch[i].workload.seed = seed_base + i;  // distinct seeds: no cache hits
    }
    return batch;
  };
  auto ms_since = [](clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(clock::now() - t0).count();
  };

  // Sequential reference: the old world, one blocking run() after another.
  double sequential_ms = 0.0;
  {
    env::EnvServiceOptions so;
    so.threads = 1;
    env::EnvService service(so);
    const auto sim = service.add_simulator();
    const auto batch = make_batch(sim, opts.seed * 1000);
    const auto t0 = clock::now();
    for (const auto& q : batch) (void)service.run(q);
    sequential_ms = ms_since(t0);
  }

  common::Table t({"workers", "batch wall (ms)", "episodes/s", "speedup vs sequential"});
  for (std::size_t workers : {1u, 4u, 8u, 16u}) {
    env::EnvServiceOptions so;
    so.threads = workers;
    env::EnvService service(so);
    const auto sim = service.add_simulator();
    const auto batch = make_batch(sim, opts.seed * 1000);

    const auto t0 = clock::now();
    const auto results = service.run_batch(batch);
    const double batch_ms = ms_since(t0);

    t.add_row({std::to_string(workers), common::fmt(batch_ms, 1),
               common::fmt(static_cast<double>(results.size()) / (batch_ms / 1e3), 1),
               common::fmt(sequential_ms / batch_ms, 2) + "x"});
  }
  bench::emit(t, opts);

  // Memoization: replay the identical batch — every query is a cache hit.
  {
    env::EnvServiceOptions so;
    so.threads = 8;
    env::EnvService service(so);
    const auto sim = service.add_simulator();
    const auto batch = make_batch(sim, opts.seed * 1000);
    (void)service.run_batch(batch);  // warm the cache

    const auto t0 = clock::now();
    (void)service.run_batch(batch);
    const double cached_ms = ms_since(t0);

    const auto stats = service.backend_stats(sim);
    common::Table c({"metric", "value"});
    c.add_row({"cached batch wall (ms)", common::fmt(cached_ms, 3)});
    c.add_row({"cache hits / queries", std::to_string(stats.cache_hits) + " / " +
                                           std::to_string(stats.queries)});
    c.add_row({"episodes actually run", std::to_string(stats.episodes)});
    std::cout << "Replaying the identical batch (memoization):\n";
    bench::emit(c, opts);
  }

  // Duplicate-heavy batch: the same key repeated inside ONE batch. Pre-PR,
  // duplicates raced past the memo table and every copy executed; with
  // single-flight they coalesce onto one episode per unique key. The
  // dedup-off run (capacity 0 disables the memo AND in-flight tables)
  // reproduces the execute-every-duplicate behavior for comparison.
  {
    const std::size_t unique = 4;
    const std::size_t dup_batch = batch_size;  // 32 queries, 8 copies of each key
    auto make_dup_batch = [&](env::BackendId sim) {
      std::vector<env::EnvQuery> batch(dup_batch);
      for (std::size_t i = 0; i < dup_batch; ++i) {
        batch[i].backend = sim;
        batch[i].workload = wl;
        batch[i].workload.seed = opts.seed * 2000 + (i % unique);
      }
      return batch;
    };

    auto time_run = [&](bool dedup) {
      env::EnvServiceOptions so;
      so.threads = 8;
      if (!dedup) so.cache_capacity = 0;
      env::EnvService service(so);
      const auto sim = service.add_simulator();
      const auto batch = make_dup_batch(sim);
      const auto t0 = clock::now();
      (void)service.run_batch(batch);
      const double ms = ms_since(t0);
      return std::make_pair(ms, service.backend_stats(sim).episodes);
    };

    const auto [naive_ms, naive_episodes] = time_run(false);
    const auto [dedup_ms, dedup_episodes] = time_run(true);

    common::Table d({"mode", "batch wall (ms)", "episodes run", "speedup"});
    d.add_row({"execute every duplicate", common::fmt(naive_ms, 1),
               std::to_string(naive_episodes), "1.00x"});
    d.add_row({"single-flight dedup", common::fmt(dedup_ms, 1),
               std::to_string(dedup_episodes),
               common::fmt(naive_ms / dedup_ms, 2) + "x"});
    std::cout << "Duplicate-heavy batch (" << dup_batch << " queries, " << unique
              << " unique keys):\n";
    bench::emit(d, opts);
  }

  // Sharded contention: every query is a cache HIT, so the memo-table lock is
  // the entire cost. One stripe serializes all workers on one mutex; 16
  // stripes let hits on different keys proceed independently (the win grows
  // with physical cores).
  {
    const std::size_t keys = 64;
    const std::size_t hits = 4096;
    auto time_hits = [&](std::size_t shards) {
      env::EnvServiceOptions so;
      so.threads = 8;
      so.cache_shards = shards;
      env::EnvService service(so);
      const auto sim = service.add_simulator();
      std::vector<env::EnvQuery> warm(keys);
      for (std::size_t i = 0; i < keys; ++i) {
        warm[i].backend = sim;
        warm[i].workload = wl;
        warm[i].workload.seed = opts.seed * 3000 + i;
      }
      (void)service.run_batch(warm);  // populate the cache

      std::vector<env::EnvQuery> storm(hits);
      for (std::size_t i = 0; i < hits; ++i) storm[i] = warm[i % keys];
      const auto t0 = clock::now();
      (void)service.run_batch(storm);
      return std::make_pair(ms_since(t0), service.cache_shard_count());
    };

    common::Table s({"cache stripes", "hit storm wall (ms)", "hits/s"});
    for (std::size_t shards : {1u, 16u}) {
      const auto [storm_ms, actual] = time_hits(shards);
      s.add_row({std::to_string(actual), common::fmt(storm_ms, 2),
                 common::fmt(static_cast<double>(hits) / (storm_ms / 1e3), 0)});
    }
    std::cout << "Cache-hit storm (" << hits << " hits over " << keys
              << " keys, 8 workers):\n";
    bench::emit(s, opts);
  }

  // CRN reuse, iteration over iteration: a stage-2-shaped loop where each
  // BO iteration re-scores a pool of incumbent configurations and explores a
  // few new ones. Under the `fresh` policy every query draws a new seed, so
  // the memo table never pays off during training; under `crn` a revisited
  // incumbent replays a seed the table already holds and costs nothing.
  // Writes BENCH_crn_reuse.json (override with ATLAS_BENCH_CRN_OUT) so the
  // hit-rate trajectory is tracked like BENCH_episode_engine.json.
  {
    const std::size_t iterations = opts.iters(12, 6);
    const std::size_t batch = 8;
    const std::size_t pool_size = 10;
    const std::size_t explore_per_iter = 2;  // 6 of 8 queries revisit the pool

    struct PolicyRun {
      const char* name = "";
      double wall_ms = 0.0;
      env::BackendStats stats;
    };
    auto run_policy = [&](env::SeedPolicy policy) {
      env::EnvServiceOptions so;
      so.threads = 8;
      env::EnvService service(so);
      const auto sim = service.add_simulator();
      env::SeedPlanOptions plan_options;
      plan_options.policy = policy;
      plan_options.replicates = 1;  // one common seed: the purest pairing
      const env::SeedStream seeds =
          env::SeedPlan(opts.seed, plan_options).stream(env::SeedDomain::kStage2Query, batch);

      math::Rng pick(opts.seed * 77);  // deterministic candidate choices
      auto config_at = [](std::size_t idx) {
        env::SliceConfig c;
        c.bandwidth_ul = 10.0 + 2.0 * static_cast<double>(idx % 32);
        c.bandwidth_dl = c.bandwidth_ul;
        return c;
      };

      const auto t0 = clock::now();
      std::size_t next_explorer = 1000;  // explorer configs are one-shot
      for (std::size_t iter = 0; iter < iterations; ++iter) {
        std::vector<env::EnvQuery> queries(batch);
        for (std::size_t q = 0; q < batch; ++q) {
          const bool explore = q >= batch - explore_per_iter;
          const std::size_t idx =
              explore ? next_explorer++
                      : static_cast<std::size_t>(pick.uniform_int(0, pool_size - 1));
          queries[q].backend = sim;
          queries[q].config = config_at(idx);
          queries[q].workload = wl;
          seeds.apply(queries[q], iter, q);
        }
        (void)service.run_batch(queries);
      }
      PolicyRun run;
      run.name = env::seed_policy_name(policy);
      run.wall_ms = ms_since(t0);
      run.stats = service.backend_stats(sim);
      return run;
    };

    const PolicyRun fresh = run_policy(env::SeedPolicy::kFresh);
    const PolicyRun crn = run_policy(env::SeedPolicy::kCrn);

    auto hit_rate = [](const env::BackendStats& s) {
      const auto lookups = s.cache_hits + s.cache_misses;
      return lookups == 0 ? 0.0 : static_cast<double>(s.cache_hits) / static_cast<double>(lookups);
    };
    common::Table t2({"seed policy", "queries", "episodes", "crn hits", "hit rate",
                      "wall (ms)", "episodes saved"});
    for (const PolicyRun* run : {&fresh, &crn}) {
      const auto saved = fresh.stats.episodes - run->stats.episodes;
      t2.add_row({run->name, std::to_string(run->stats.queries),
                  std::to_string(run->stats.episodes), std::to_string(run->stats.crn_hits),
                  common::fmt(hit_rate(run->stats), 3), common::fmt(run->wall_ms, 1),
                  common::fmt(100.0 * static_cast<double>(saved) /
                                  static_cast<double>(fresh.stats.episodes),
                              1) + "%"});
    }
    std::cout << "CRN seed reuse across " << iterations << " iterations (" << batch
              << " queries each, " << explore_per_iter << " explorers):\n";
    bench::emit(t2, opts);

    const std::string out_path =
        bench::bench_output_path("BENCH_crn_reuse.json", "ATLAS_BENCH_CRN_OUT");
    std::ofstream out(out_path);
    out << "{\n  \"bench\": \"crn_reuse\",\n  \"unit\": \"episodes\",\n"
        << "  \"iterations\": " << iterations << ",\n  \"batch\": " << batch << ",\n"
        << "  \"policies\": [\n";
    bool first = true;
    for (const PolicyRun* run : {&fresh, &crn}) {
      if (!first) out << ",\n";
      first = false;
      out << "    {\"policy\": \"" << run->name << "\", \"queries\": " << run->stats.queries
          << ", \"episodes\": " << run->stats.episodes
          << ", \"crn_hits\": " << run->stats.crn_hits
          << ", \"hit_rate\": " << hit_rate(run->stats)
          << ", \"wall_ms\": " << run->wall_ms << "}";
    }
    out << "\n  ]\n}\n";
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}
