/// EnvService microbench — batched vs sequential environment-query
/// throughput. The paper's stages issue up to 16 parallel simulator queries
/// per Thompson-sampling iteration; this bench shows what the service's
/// batching buys at 1/4/8/16 workers, and what its memoization buys on a
/// repeated batch (hit rate 1.0 -> no episodes at all).

#include <chrono>

#include "bench_util.hpp"

int main() {
  using namespace atlas;
  using clock = std::chrono::steady_clock;
  const auto opts = common::bench_options();
  bench::banner("EnvService: batched vs sequential query throughput",
                "service-level analogue of paper Fig. 13's parallel queries");

  const std::size_t batch_size = 32;
  const auto wl = bench::workload(opts, 4.0);

  auto make_batch = [&](env::BackendId sim, std::uint64_t seed_base) {
    std::vector<env::EnvQuery> batch(batch_size);
    for (std::size_t i = 0; i < batch_size; ++i) {
      batch[i].backend = sim;
      batch[i].workload = wl;
      batch[i].workload.seed = seed_base + i;  // distinct seeds: no cache hits
    }
    return batch;
  };
  auto ms_since = [](clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(clock::now() - t0).count();
  };

  // Sequential reference: the old world, one blocking run() after another.
  double sequential_ms = 0.0;
  {
    env::EnvServiceOptions so;
    so.threads = 1;
    env::EnvService service(so);
    const auto sim = service.add_simulator();
    const auto batch = make_batch(sim, opts.seed * 1000);
    const auto t0 = clock::now();
    for (const auto& q : batch) (void)service.run(q);
    sequential_ms = ms_since(t0);
  }

  common::Table t({"workers", "batch wall (ms)", "episodes/s", "speedup vs sequential"});
  for (std::size_t workers : {1u, 4u, 8u, 16u}) {
    env::EnvServiceOptions so;
    so.threads = workers;
    env::EnvService service(so);
    const auto sim = service.add_simulator();
    const auto batch = make_batch(sim, opts.seed * 1000);

    const auto t0 = clock::now();
    const auto results = service.run_batch(batch);
    const double batch_ms = ms_since(t0);

    t.add_row({std::to_string(workers), common::fmt(batch_ms, 1),
               common::fmt(static_cast<double>(results.size()) / (batch_ms / 1e3), 1),
               common::fmt(sequential_ms / batch_ms, 2) + "x"});
  }
  bench::emit(t, opts);

  // Memoization: replay the identical batch — every query is a cache hit.
  {
    env::EnvServiceOptions so;
    so.threads = 8;
    env::EnvService service(so);
    const auto sim = service.add_simulator();
    const auto batch = make_batch(sim, opts.seed * 1000);
    (void)service.run_batch(batch);  // warm the cache

    const auto t0 = clock::now();
    (void)service.run_batch(batch);
    const double cached_ms = ms_since(t0);

    const auto stats = service.backend_stats(sim);
    common::Table c({"metric", "value"});
    c.add_row({"cached batch wall (ms)", common::fmt(cached_ms, 3)});
    c.add_row({"cache hits / queries", std::to_string(stats.cache_hits) + " / " +
                                           std::to_string(stats.queries)});
    c.add_row({"episodes actually run", std::to_string(stats.episodes)});
    std::cout << "Replaying the identical batch (memoization):\n";
    bench::emit(c, opts);
  }
  return 0;
}
