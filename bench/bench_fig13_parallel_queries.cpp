/// Fig. 13 — Stage-1 searching progress under different numbers of parallel
/// Thompson-sampling queries: more parallelism converges lower and steadier.

#include "env/env_service.hpp"
#include "bench_util.hpp"

int main() {
  using namespace atlas;
  const auto opts = common::bench_options();
  bench::banner("Figure 13: stage-1 search with parallel = 1, 2, 4, 8, 16",
                "paper Fig. 13 — more parallel queries -> lower discrepancy");

  env::EnvService service;
  const auto real = service.add_real_network();

  const std::vector<std::size_t> parallels{1, 2, 4, 8, 16};
  std::vector<core::CalibrationResult> results;
  for (std::size_t p : parallels) {
    auto o = bench::stage1_options(opts);
    o.parallel = p;
    o.iterations = opts.iters(50, 12);
    o.init_iterations = opts.iters(12, 4);
    o.seed = opts.seed + p;
    core::SimCalibrator calibrator(service, real, o);
    results.push_back(calibrator.calibrate());
  }

  common::Table t({"iteration", "P=1", "P=2", "P=4", "P=8", "P=16"});
  const std::size_t n = results[0].avg_weighted_per_iter.size();
  for (std::size_t i = 0; i < n; i += std::max<std::size_t>(1, n / 8)) {
    std::vector<std::string> row{std::to_string(i)};
    for (const auto& r : results) {
      row.push_back(common::fmt(
          r.avg_weighted_per_iter[std::min(i, r.avg_weighted_per_iter.size() - 1)], 2));
    }
    t.add_row(row);
  }
  bench::emit(t, opts);

  common::Table best({"parallel", "best weighted discrepancy"});
  for (std::size_t i = 0; i < parallels.size(); ++i) {
    best.add_row({std::to_string(parallels[i]), common::fmt(results[i].best_weighted, 3)});
  }
  bench::emit(best, opts);
  return 0;
}
