// atlas_loadgen: open-loop (Poisson-arrival) load generator for the serving
// stack. Drives an EnvClient — an in-process ShardRouter, a remote episode
// worker, or both — at a sweep of offered QPS points with a realistic query
// mix (CRN revisits, metered online queries, trace-heavy episodes, fresh
// exploration), measures coordinated-omission-free latency quantiles, finds
// the saturation rate, and writes BENCH_serving.json.
//
// Usage:
//   atlas_loadgen [--topology inproc|remote|both] [--host H] [--port N]
//                 [--workers N] [--qps Q1,Q2,...] [--sweep-start Q]
//                 [--sweep-factor F] [--sweep-max-steps N] [--duration S]
//                 [--clients N] [--threads N] [--shards N]
//                 [--cache-capacity N] [--mix-revisit F] [--mix-online F]
//                 [--mix-trace F] [--episode-ms MS] [--incumbents N]
//                 [--speculate K] [--seed N] [--out PATH] [--smoke] [--quiet]
//
//   --topology        Which serving stacks to drive (default inproc; remote
//                     and both need --port of a running atlas_episode_worker
//                     OR --workers >= 2 to self-host a farm).
//   --workers         Remote episode workers to drive (default 1 = the single
//                     direct RemoteBackend path). With N >= 2 the remote
//                     topology becomes a FarmController-managed farm: an
//                     external --port worker counts as worker 0 and the rest
//                     are self-hosted in-process episode-RPC servers on
//                     ephemeral loopback ports; per-worker throughput is
//                     reported in the JSON `workers` array.
//   --qps             Explicit offered-rate points; otherwise a geometric
//                     sweep from --sweep-start (default 50) by --sweep-factor
//                     (default 2) up to --sweep-max-steps (default 6) points,
//                     stopping one point after saturation.
//   --duration        Seconds of offered load per point (default 2).
//   --clients         Generator client threads per point (default 32).
//   --threads         Service pool threads (0 = hardware default).
//   --shards          In-process ShardRouter shards (default 2).
//   --mix-*           Query-mix fractions (defaults: 0.45 revisit,
//                     0.05 online, 0.10 trace; the rest fresh).
//   --episode-ms      Simulated episode duration per query (default 40).
//   --extra-users     Background-slice UEs per episode (default 0): stresses
//                     the vectorized SoA background tier behind the serving
//                     layers instead of foreground-only episodes.
//   --speculate       Speculative prefetch depth K (default 0 = off): before
//                     each load point, up to 4K of its CRN revisit episodes
//                     are prefetched through a SpeculationPlanner as
//                     kSpeculative queries, so the point's revisits land on a
//                     warm memo table. Per-point hit/cancelled/wasted
//                     accounting rides along in the JSON `speculation` block.
//   --smoke           CI preset: tiny duration/episodes, two fixed points.
//   --out             Output path (default BENCH_serving.json; also
//                     ATLAS_BENCH_SERVING_OUT / ATLAS_BENCH_OUT_DIR).
//
// Degradation mode (--fault-plan): instead of the QPS sweep, self-host a
// farm of --workers episode workers, wrap --faulty-fraction of them in a
// FaultInjectingBackend driven by the (seeded, deterministic) FaultPlan, and
// run the SAME load plan twice — fault-free and faulted — writing
// BENCH_degradation.json with goodput, shed rate, hedge-win rate, breaker
// trips, and latency quantiles for both, plus the goodput ratio. Hedging and
// circuit breakers are enabled for both runs so the comparison measures the
// overload machinery, not its absence.
//
//   --fault-plan       FaultPlan spec, e.g. 'delay=0.35:40ms,error=0.08,
//                      hang=0.02:800ms' (grammar: kind=prob[:dur][@after]).
//   --faulty-fraction  Fraction of workers wrapped in the injector
//                      (default 0.25, rounded up to at least one worker).
//   --rpc-timeout-ms   Per-episode RPC deadline in this mode (default 250).
//   --hedge-ms         Hedge fallback delay before RTTs are learned
//                      (default 25).
//   --shed-watermark   Router-side queue-depth shed watermark (default 512;
//                      0 disables shedding).
//   --deadline-ms      Stamp this deadline budget on every query (default 0
//                      = none).
//   --wall-limit       Hard wall-clock guard per load point in seconds
//                      (default: 10x the horizon + 20; a hung worker aborts
//                      the point instead of stalling the sweep).
//
// Exit status: 0 on success, 1 when a topology cannot be driven (e.g. the
// worker is unreachable), 2 on usage errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "env/env_service.hpp"
#include "env/environment.hpp"
#include "env/farm_controller.hpp"
#include "env/fault_injection.hpp"
#include "env/loadgen.hpp"
#include "env/shard_router.hpp"
#include "env/speculation.hpp"
#include "rpc/remote_backend.hpp"
#include "rpc/server.hpp"
#include "rpc/worker_control.hpp"
#include "telemetry/report.hpp"

namespace {

struct LoadgenOptions {
  std::string topology = "inproc";
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::vector<double> qps;  ///< Explicit points; empty = geometric sweep.
  double sweep_start = 50.0;
  double sweep_factor = 2.0;
  std::size_t sweep_max_steps = 6;
  double duration_s = 2.0;
  std::size_t clients = 32;
  std::size_t workers = 1;
  std::size_t threads = 0;
  std::size_t shards = 2;
  std::size_t cache_capacity = 65536;
  atlas::env::LoadMix mix;
  double episode_ms = 40.0;
  int extra_users = 0;
  std::size_t speculate = 0;  ///< Prefetch depth K (0 = no speculation).
  std::size_t incumbents = 16;
  std::uint64_t seed = 7;
  std::string out;
  bool smoke = false;
  bool quiet = false;
  // Degradation mode (--fault-plan).
  std::string fault_plan;
  double faulty_fraction = 0.25;
  double rpc_timeout_ms = 250.0;
  double hedge_ms = 25.0;
  std::size_t shed_watermark = 512;
  double deadline_ms = 0.0;
  double wall_limit_s = 0.0;  ///< 0 = derive from the horizon.
};

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s [--topology inproc|remote|both] [--host H] [--port N]\n"
               "          [--workers N] [--qps Q1,Q2,...] [--sweep-start Q]\n"
               "          [--sweep-factor F] [--sweep-max-steps N] [--duration S]\n"
               "          [--clients N] [--threads N] [--shards N] [--cache-capacity N]\n"
               "          [--mix-revisit F] [--mix-online F] [--mix-trace F]\n"
               "          [--episode-ms MS] [--extra-users N] [--speculate K]\n"
               "          [--incumbents N] [--seed N] [--out PATH]\n"
               "          [--smoke] [--quiet]\n"
               "          [--fault-plan SPEC] [--faulty-fraction F] [--rpc-timeout-ms MS]\n"
               "          [--hedge-ms MS] [--shed-watermark N] [--deadline-ms MS]\n"
               "          [--wall-limit S]\n",
               argv0);
}

[[noreturn]] void usage_error(const char* argv0, const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", argv0, message.c_str());
  print_usage(stderr, argv0);
  std::exit(2);
}

double parse_double(const char* argv0, const std::string& flag, const char* value) {
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0' || parsed < 0.0) {
    usage_error(argv0, flag + " expects a non-negative number, got '" + value + "'");
  }
  return parsed;
}

std::vector<double> parse_qps_list(const char* argv0, const char* value) {
  std::vector<double> points;
  std::string token;
  for (const char* p = value;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) {
        points.push_back(parse_double(argv0, "--qps", token.c_str()));
        token.clear();
      }
      if (*p == '\0') break;
    } else {
      token.push_back(*p);
    }
  }
  if (points.empty()) usage_error(argv0, "--qps expects at least one rate");
  return points;
}

LoadgenOptions parse_args(int argc, char** argv) {
  LoadgenOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_error(argv[0], flag + " expects a value");
      return argv[++i];
    };
    if (flag == "--topology") {
      options.topology = next();
      if (options.topology != "inproc" && options.topology != "remote" &&
          options.topology != "both") {
        usage_error(argv[0], "--topology must be inproc, remote, or both");
      }
    } else if (flag == "--host") {
      options.host = next();
    } else if (flag == "--port") {
      options.port = static_cast<std::uint16_t>(parse_double(argv[0], flag, next()));
    } else if (flag == "--qps") {
      options.qps = parse_qps_list(argv[0], next());
    } else if (flag == "--sweep-start") {
      options.sweep_start = parse_double(argv[0], flag, next());
    } else if (flag == "--sweep-factor") {
      options.sweep_factor = parse_double(argv[0], flag, next());
    } else if (flag == "--sweep-max-steps") {
      options.sweep_max_steps = static_cast<std::size_t>(parse_double(argv[0], flag, next()));
    } else if (flag == "--duration") {
      options.duration_s = parse_double(argv[0], flag, next());
    } else if (flag == "--clients") {
      options.clients = static_cast<std::size_t>(parse_double(argv[0], flag, next()));
    } else if (flag == "--workers") {
      options.workers = static_cast<std::size_t>(parse_double(argv[0], flag, next()));
    } else if (flag == "--threads") {
      options.threads = static_cast<std::size_t>(parse_double(argv[0], flag, next()));
    } else if (flag == "--shards") {
      options.shards = static_cast<std::size_t>(parse_double(argv[0], flag, next()));
    } else if (flag == "--cache-capacity") {
      options.cache_capacity = static_cast<std::size_t>(parse_double(argv[0], flag, next()));
    } else if (flag == "--mix-revisit") {
      options.mix.revisit = parse_double(argv[0], flag, next());
    } else if (flag == "--mix-online") {
      options.mix.online = parse_double(argv[0], flag, next());
    } else if (flag == "--mix-trace") {
      options.mix.trace = parse_double(argv[0], flag, next());
    } else if (flag == "--episode-ms") {
      options.episode_ms = parse_double(argv[0], flag, next());
    } else if (flag == "--extra-users") {
      options.extra_users = static_cast<int>(parse_double(argv[0], flag, next()));
    } else if (flag == "--speculate") {
      options.speculate = static_cast<std::size_t>(parse_double(argv[0], flag, next()));
    } else if (flag == "--incumbents") {
      options.incumbents = static_cast<std::size_t>(parse_double(argv[0], flag, next()));
    } else if (flag == "--seed") {
      options.seed = static_cast<std::uint64_t>(parse_double(argv[0], flag, next()));
    } else if (flag == "--out") {
      options.out = next();
    } else if (flag == "--fault-plan") {
      options.fault_plan = next();
    } else if (flag == "--faulty-fraction") {
      options.faulty_fraction = parse_double(argv[0], flag, next());
      if (options.faulty_fraction > 1.0) usage_error(argv[0], "--faulty-fraction must be <= 1");
    } else if (flag == "--rpc-timeout-ms") {
      options.rpc_timeout_ms = parse_double(argv[0], flag, next());
    } else if (flag == "--hedge-ms") {
      options.hedge_ms = parse_double(argv[0], flag, next());
    } else if (flag == "--shed-watermark") {
      options.shed_watermark = static_cast<std::size_t>(parse_double(argv[0], flag, next()));
    } else if (flag == "--deadline-ms") {
      options.deadline_ms = parse_double(argv[0], flag, next());
    } else if (flag == "--wall-limit") {
      options.wall_limit_s = parse_double(argv[0], flag, next());
    } else if (flag == "--smoke") {
      options.smoke = true;
    } else if (flag == "--quiet") {
      options.quiet = true;
    } else if (flag == "--help" || flag == "-h") {
      print_usage(stdout, argv[0]);
      std::exit(0);
    } else {
      usage_error(argv[0], "unknown flag '" + flag + "'");
    }
  }
  if (options.smoke) {
    // CI preset: two fixed points, short horizon, cheap episodes — the whole
    // run (both topologies) finishes in a few seconds while still exercising
    // sweep, mix, saturation detection, and the JSON schema.
    if (options.qps.empty()) options.qps = {50.0, 200.0};
    options.duration_s = 0.4;
    options.episode_ms = 5.0;
    options.clients = std::min<std::size_t>(options.clients, 16);
  }
  if (options.workers == 0) usage_error(argv[0], "--workers must be >= 1");
  if (!options.fault_plan.empty() && options.workers < 2) {
    options.workers = 4;  // degradation mode needs a farm to fail over within
  }
  if ((options.topology == "remote" || options.topology == "both") && options.port == 0 &&
      options.workers < 2) {
    usage_error(argv[0], "--topology " + options.topology +
                             " needs --port of a running atlas_episode_worker"
                             " (or --workers >= 2 to self-host a farm)");
  }
  if (options.shards == 0) usage_error(argv[0], "--shards must be >= 1");
  return options;
}

struct PointRow {
  atlas::env::LoadPlan plan;
  atlas::env::LoadPointResult result;
  atlas::env::SpeculationView speculation;  ///< active only with --speculate
};

struct WorkerRow {
  std::string address;
  atlas::env::WorkerHealth health;
  bool has_stats = false;
  atlas::env::EnvServiceStats stats;
};

struct TopologyReport {
  std::string name;
  std::vector<PointRow> points;
  double saturation_qps = 0.0;  ///< Highest achieved rate observed.
  bool saturated = false;       ///< A point fell short of its offered rate.
  atlas::env::EnvServiceStats final_stats;
  bool has_worker_stats = false;
  atlas::env::EnvServiceStats worker_stats;
  std::vector<WorkerRow> workers;  ///< Farm topology: one row per worker.
};

/// Offered rates to drive: explicit --qps, or a geometric sweep that stops
/// one point after saturation (the caller breaks out).
std::vector<double> sweep_points(const LoadgenOptions& options) {
  if (!options.qps.empty()) return options.qps;
  std::vector<double> points;
  double q = options.sweep_start;
  for (std::size_t i = 0; i < options.sweep_max_steps; ++i) {
    points.push_back(q);
    q *= options.sweep_factor;
  }
  return points;
}

double episodes_per_sec(const PointRow& row) {
  std::uint64_t episodes = 0;
  for (const auto& backend : row.result.stats.backends) episodes += backend.episodes;
  return row.result.wall_s <= 0.0 ? 0.0
                                  : static_cast<double>(episodes) / row.result.wall_s;
}

TopologyReport drive(const LoadgenOptions& options, const std::string& name,
                     atlas::env::EnvClient& client, atlas::env::BackendId offline,
                     atlas::env::BackendId online, bool has_online,
                     atlas::rpc::RemoteBackend* remote) {
  TopologyReport report;
  report.name = name;

  atlas::env::LoadPlanOptions plan_options;
  plan_options.mix = options.mix;
  plan_options.duration_s = options.duration_s;
  plan_options.episode_ms = options.episode_ms;
  plan_options.extra_users = options.extra_users;
  plan_options.incumbents = options.incumbents;
  plan_options.offline_backend = offline;
  plan_options.online_backend = online;
  plan_options.has_online = has_online;

  atlas::env::LoadRunOptions run_options;
  run_options.workers = options.clients;

  const std::vector<double> points = sweep_points(options);
  for (std::size_t i = 0; i < points.size(); ++i) {
    plan_options.qps = points[i];
    // Distinct seed per point: a point must not replay the previous point's
    // fresh seeds (which would be warm in the cache and flatter the latency).
    plan_options.seed = options.seed + i * 101;
    PointRow row;
    row.plan = atlas::env::build_load_plan(plan_options);
    // --speculate K: prefetch the point's CRN revisit working set (the part
    // of the plan a planner CAN predict) as kSpeculative queries before the
    // open-loop clock starts; each prefetched episode the point actually
    // replays settles as a hit, abandoned ones as warm cache entries.
    std::unique_ptr<atlas::env::SpeculationPlanner> prefetch;
    if (options.speculate > 0) {
      prefetch = std::make_unique<atlas::env::SpeculationPlanner>(
          client, atlas::env::SpeculationOptions{.top_k = options.speculate});
      for (const atlas::env::LoadEvent& event : row.plan.events) {
        if (event.kind != atlas::env::LoadKind::kRevisit) continue;
        if (prefetch->budget() == 0) break;
        if (prefetch->speculate(event.query)) prefetch->note_commit(event.query);
      }
    }
    row.result = atlas::env::run_load_point(client, row.plan, run_options);
    if (prefetch) {
      prefetch->close_iteration();
      row.speculation = prefetch->view();
    }

    // Compare against the rate the Poisson draw actually REALIZED, not the
    // nominal one: a horizon short enough to draw 15% under its mean must not
    // read as the service falling behind.
    const double realized_qps =
        static_cast<double>(row.result.scheduled) / row.plan.horizon_s;
    const bool point_saturated =
        row.result.failed > 0 || row.result.achieved_qps < 0.9 * realized_qps;
    report.saturation_qps = std::max(report.saturation_qps, row.result.achieved_qps);
    if (!options.quiet) {
      std::printf("[%s] offered %8.1f qps -> achieved %8.1f qps  p50 %7.2f ms  "
                  "p99 %7.2f ms  p999 %7.2f ms  (%zu queries, %zu failed)%s\n",
                  name.c_str(), row.result.offered_qps, row.result.achieved_qps,
                  row.result.latency_ns.quantile(0.50) / 1e6,
                  row.result.latency_ns.quantile(0.99) / 1e6,
                  row.result.latency_ns.quantile(0.999) / 1e6, row.result.completed,
                  row.result.failed, point_saturated ? "  [saturated]" : "");
      std::fflush(stdout);
    }
    report.points.push_back(std::move(row));
    if (point_saturated && options.qps.empty()) {
      report.saturated = true;
      break;  // auto sweep: one saturated point is the answer; stop pushing
    }
    report.saturated = report.saturated || point_saturated;
  }

  report.final_stats = client.stats();
  if (remote != nullptr) {
    try {
      report.worker_stats = remote->fetch_worker_stats();
      report.has_worker_stats = true;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "atlas_loadgen: worker stats scrape failed: %s\n", e.what());
    }
  }
  if (!options.quiet) {
    report.final_stats.summary().print(std::cout);
    std::cout << std::endl;
  }
  return report;
}

TopologyReport drive_inproc(const LoadgenOptions& options) {
  atlas::env::EnvServiceOptions service_options;
  service_options.threads = options.threads;
  service_options.cache_capacity = options.cache_capacity;
  atlas::env::ShardRouter router(options.shards, service_options);
  const atlas::env::BackendId sim = router.add_simulator();
  const atlas::env::BackendId real = router.add_real_network();
  return drive(options, "inproc", router, sim, real, /*has_online=*/true, nullptr);
}

TopologyReport drive_remote(const LoadgenOptions& options) {
  // The client mirrors a router node in front of a worker farm: a local
  // EnvService (own memo cache — revisits hit HERE, misses ride the RPC) with
  // the worker's simulator as its offline backend and a local testbed
  // surrogate as the metered one.
  atlas::env::EnvServiceOptions service_options;
  service_options.threads = options.threads;
  service_options.cache_capacity = options.cache_capacity;
  atlas::env::EnvService service(service_options);

  atlas::rpc::RemoteBackendOptions remote_options;
  remote_options.host = options.host;
  remote_options.port = options.port;
  remote_options.name = "worker-sim";
  remote_options.remote_backend = 0;
  auto remote = std::make_shared<atlas::rpc::RemoteBackend>(remote_options);
  const atlas::env::BackendId sim = service.register_backend(remote);
  const atlas::env::BackendId real = service.add_real_network();
  return drive(options, "remote-loopback", service, sim, real, /*has_online=*/true,
               remote.get());
}

TopologyReport drive_farm(const LoadgenOptions& options) {
  // Multi-worker serving path: --workers episode-RPC workers behind one
  // FarmController-managed ShardRouter. An external --port worker counts as
  // worker 0; the rest are self-hosted in this process on ephemeral loopback
  // ports (real TCP, real codec — only the host boundary is missing). All
  // workers announce the same default simulator, so they collapse into ONE
  // FailoverBackend and the controller round-robins episodes across them.
  struct InprocWorker {
    std::unique_ptr<atlas::env::EnvService> service;
    std::unique_ptr<atlas::rpc::EpisodeRpcServer> server;
  };
  std::vector<InprocWorker> hosted;
  std::vector<std::shared_ptr<atlas::rpc::RemoteWorkerControl>> controls;

  if (options.port != 0) {
    atlas::rpc::RemoteWorkerOptions control;
    control.host = options.host;
    control.port = options.port;
    controls.push_back(std::make_shared<atlas::rpc::RemoteWorkerControl>(control));
  }
  while (controls.size() < options.workers) {
    InprocWorker worker;
    atlas::env::EnvServiceOptions service_options;
    service_options.threads = options.threads;
    service_options.cache_capacity = options.cache_capacity;
    worker.service = std::make_unique<atlas::env::EnvService>(service_options);
    worker.service->add_simulator(atlas::env::SimParams::defaults(), "sim-0");
    worker.server = std::make_unique<atlas::rpc::EpisodeRpcServer>(*worker.service);
    // Same digest as atlas_episode_worker's default simulator, so an external
    // --port worker and the self-hosted ones share one FailoverBackend.
    worker.server->set_backend_digest(0, atlas::env::params_digest(
                                             atlas::env::SimParams::defaults()));
    atlas::rpc::RemoteWorkerOptions control;
    control.port = worker.server->port();
    controls.push_back(std::make_shared<atlas::rpc::RemoteWorkerControl>(control));
    hosted.push_back(std::move(worker));
  }

  atlas::env::EnvServiceOptions router_options;
  router_options.threads = options.threads;
  router_options.cache_capacity = options.cache_capacity;
  atlas::env::ShardRouter router(options.shards, router_options);

  atlas::env::FarmController controller(router);
  for (const auto& control : controls) controller.add_worker(control);
  // The shared simulator's global id: first offline backend worker 0 hosts.
  atlas::env::BackendId sim = 0;
  bool found = false;
  for (const atlas::env::BackendId id : controller.worker_backends(0)) {
    if (router.backend_kind(id) == atlas::env::BackendKind::kOffline) {
      sim = id;
      found = true;
      break;
    }
  }
  if (!found) throw std::runtime_error("farm worker 0 announced no offline backend");
  const atlas::env::BackendId real = router.add_real_network();

  controller.start();  // heartbeat sweeps run for the whole drive
  TopologyReport report = drive(options, "farm", router, sim, real,
                                /*has_online=*/true, nullptr);
  controller.stop();

  // Per-worker view: a final heartbeat (load gauges + episode count) plus the
  // worker's own stats snapshot, so the JSON shows how evenly the farm
  // saturated — not just the aggregate.
  for (const auto& control : controls) {
    WorkerRow row;
    row.address = control->address();
    try {
      row.health = control->heartbeat();
      row.stats = control->worker_stats();
      row.has_stats = true;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "atlas_loadgen: worker %s scrape failed: %s\n",
                   row.address.c_str(), e.what());
    }
    report.workers.push_back(std::move(row));
  }
  return report;
}

void write_point_json(atlas::telemetry::JsonWriter& json, const PointRow& row) {
  json.begin_object();
  json.field("offered_qps", row.result.offered_qps);
  json.field("achieved_qps", row.result.achieved_qps);
  json.field("scheduled", static_cast<std::uint64_t>(row.result.scheduled));
  json.field("completed", static_cast<std::uint64_t>(row.result.completed));
  json.field("failed", static_cast<std::uint64_t>(row.result.failed));
  json.field("wall_s", row.result.wall_s);
  json.field("episodes_per_sec", episodes_per_sec(row));
  json.field("cache_hit_rate", row.result.stats.hit_rate());
  json.field("crn_hit_rate", row.result.stats.crn_hit_rate());
  if (row.speculation.active) {
    json.key("speculation");
    json.begin_object();
    json.field("launched", row.speculation.launched);
    json.field("hits", row.speculation.hits);
    json.field("cancelled", row.speculation.cancelled);
    json.field("wasted", row.speculation.wasted);
    json.field("hit_rate", row.speculation.hit_rate());
    json.end_object();
  }
  json.key("mix");
  json.begin_object();
  json.field("revisit", static_cast<std::uint64_t>(row.plan.revisits));
  json.field("online", static_cast<std::uint64_t>(row.plan.online));
  json.field("trace", static_cast<std::uint64_t>(row.plan.traces));
  json.field("fresh", static_cast<std::uint64_t>(row.plan.fresh));
  json.end_object();
  json.key("latency_ms");
  atlas::telemetry::write_histogram_json(json, row.result.latency_ns, 1e6);
  json.end_object();
}

void write_topology_json(atlas::telemetry::JsonWriter& json, const TopologyReport& report) {
  json.begin_object();
  json.field("topology", report.name);
  json.field("saturated", report.saturated);
  json.field("saturation_qps", report.saturation_qps);
  json.key("points");
  json.begin_array();
  for (const PointRow& row : report.points) write_point_json(json, row);
  json.end_array();
  json.key("query_latency_ms");
  atlas::telemetry::write_histogram_json(json, report.final_stats.query_latency_ns, 1e6);
  if (report.final_stats.farm.active) {
    const atlas::env::FarmView& farm = report.final_stats.farm;
    json.key("farm");
    json.begin_object();
    json.field("workers", farm.workers);
    json.field("workers_serving", farm.workers_serving);
    json.field("workers_suspect", farm.workers_suspect);
    json.field("workers_joined", farm.workers_joined);
    json.field("workers_lost", farm.workers_lost);
    json.field("workers_drained", farm.workers_drained);
    json.field("heartbeats_missed", farm.heartbeats_missed);
    json.field("episodes_redispatched", farm.episodes_redispatched);
    json.field("memo_entries_migrated", farm.memo_entries_migrated);
    json.field("backends_migrated", farm.backends_migrated);
    json.end_object();
  }
  if (!report.workers.empty()) {
    // Per-worker saturation: how evenly episode execution spread.
    double wall_s = 0.0;
    for (const PointRow& row : report.points) wall_s += row.result.wall_s;
    json.key("workers");
    json.begin_array();
    for (const WorkerRow& row : report.workers) {
      json.begin_object();
      json.field("address", row.address);
      json.field("episodes", row.health.episodes);
      json.field("episodes_per_sec",
                 wall_s <= 0.0 ? 0.0 : static_cast<double>(row.health.episodes) / wall_s);
      json.field("outstanding", row.health.outstanding);
      json.field("cache_entries", row.health.cache_entries);
      if (row.has_stats) {
        json.field("queries", row.stats.total_queries());
        json.field("cache_hit_rate", row.stats.hit_rate());
        json.key("rpc_service_ms");
        atlas::telemetry::write_histogram_json(json, row.stats.rpc_service_ns, 1e6);
      }
      json.end_object();
    }
    json.end_array();
  }
  if (report.has_worker_stats) {
    json.key("worker");
    json.begin_object();
    json.field("queries", report.worker_stats.total_queries());
    json.field("cache_hit_rate", report.worker_stats.hit_rate());
    json.key("rpc_service_ms");
    atlas::telemetry::write_histogram_json(json, report.worker_stats.rpc_service_ns, 1e6);
    json.end_object();
  }
  json.end_object();
}

// ---- degradation mode (--fault-plan) ----------------------------------------

struct DegradationSide {
  atlas::env::LoadPlan plan;
  atlas::env::LoadPointResult result;
  atlas::env::EnvServiceStats final_stats;  ///< Absolute router stats at the end.
  atlas::env::FaultCounters faults;         ///< Zero on the clean side.
  std::size_t faulty_workers = 0;

  double goodput_qps() const {
    return result.wall_s <= 0.0 ? 0.0
                                : static_cast<double>(result.completed) / result.wall_s;
  }
};

/// Build a self-hosted farm (the last `faulty` workers wrapped in the
/// injector when `plan` is set), replay one load point against it, and tear
/// it down. Identical construction on both sides — only the injector differs
/// — so the clean side IS the faulted side's control.
DegradationSide run_degradation_side(const LoadgenOptions& options,
                                     const atlas::env::FaultPlan* plan) {
  namespace env = atlas::env;
  namespace rpc = atlas::rpc;

  std::shared_ptr<env::FaultInjector> injector;
  DegradationSide side;
  if (plan != nullptr) {
    injector = std::make_shared<env::FaultInjector>(*plan);
    side.faulty_workers = std::max<std::size_t>(
        1, static_cast<std::size_t>(options.faulty_fraction *
                                        static_cast<double>(options.workers) +
                                    0.5));
  }

  struct InprocWorker {
    std::unique_ptr<env::EnvService> service;
    std::unique_ptr<rpc::EpisodeRpcServer> server;
  };
  std::vector<InprocWorker> hosted;
  std::vector<std::shared_ptr<rpc::RemoteWorkerControl>> controls;
  for (std::size_t w = 0; w < options.workers; ++w) {
    InprocWorker worker;
    env::EnvServiceOptions service_options;
    service_options.threads = options.threads;
    service_options.cache_capacity = options.cache_capacity;
    worker.service = std::make_unique<env::EnvService>(service_options);
    const bool faulty = injector && w >= options.workers - side.faulty_workers;
    if (faulty) {
      // Same simulator as add_simulator would build, decorated with the
      // injector. The decorator forwards name/kind/cost/accepts, so the
      // announce — and the farm's equivalence key — is indistinguishable
      // from a healthy worker's.
      auto inner = std::make_shared<env::LocalBackend>(
          std::make_shared<env::Simulator>(env::SimParams::defaults()), "sim-0",
          env::BackendKind::kOffline);
      worker.service->register_backend(
          std::make_shared<env::FaultInjectingBackend>(std::move(inner), injector));
    } else {
      worker.service->add_simulator(env::SimParams::defaults(), "sim-0");
    }
    worker.server = std::make_unique<rpc::EpisodeRpcServer>(*worker.service);
    worker.server->set_backend_digest(0, env::params_digest(env::SimParams::defaults()));
    rpc::RemoteWorkerOptions control;
    control.port = worker.server->port();
    control.timeout_ms = options.rpc_timeout_ms;
    controls.push_back(std::make_shared<rpc::RemoteWorkerControl>(control));
    hosted.push_back(std::move(worker));
  }

  env::EnvServiceOptions router_options;
  router_options.threads = options.threads;
  router_options.cache_capacity = options.cache_capacity;
  router_options.shed_watermark = options.shed_watermark;
  env::ShardRouter router(options.shards, router_options);

  env::FarmControllerOptions farm_options;
  farm_options.hedge.enabled = true;
  farm_options.hedge.fallback_delay_ms = options.hedge_ms;
  env::FarmController controller(router, farm_options);
  for (const auto& control : controls) controller.add_worker(control);

  env::BackendId sim = 0;
  bool found = false;
  for (const env::BackendId id : controller.worker_backends(0)) {
    if (router.backend_kind(id) == env::BackendKind::kOffline) {
      sim = id;
      found = true;
      break;
    }
  }
  if (!found) throw std::runtime_error("degradation farm announced no offline backend");

  env::LoadPlanOptions plan_options;
  plan_options.qps = options.qps.empty() ? 150.0 : options.qps.front();
  plan_options.mix = options.mix;
  plan_options.mix.online = 0.0;  // one shared offline backend; faults hit it
  plan_options.duration_s = options.duration_s;
  plan_options.episode_ms = options.episode_ms;
  plan_options.extra_users = options.extra_users;
  plan_options.incumbents = options.incumbents;
  plan_options.offline_backend = sim;
  plan_options.seed = options.seed;  // SAME plan both sides — paired comparison
  side.plan = env::build_load_plan(plan_options);
  if (options.deadline_ms > 0.0) {
    for (env::LoadEvent& event : side.plan.events) {
      event.query.deadline_ms = options.deadline_ms;
    }
  }

  env::LoadRunOptions run_options;
  run_options.workers = options.clients;
  run_options.wall_limit_s = options.wall_limit_s > 0.0
                                 ? options.wall_limit_s
                                 : options.duration_s * 10.0 + 20.0;
  if (injector) {
    run_options.on_abort = [injector] { injector->release_hangs(); };
  }

  controller.start();
  side.result = env::run_load_point(router, side.plan, run_options);
  // Unpark any still-sleeping injected hangs BEFORE teardown: the worker
  // services join their pools in their destructors.
  if (injector) {
    injector->release_hangs();
    side.faults = injector->counters();
  }
  controller.stop();
  side.final_stats = router.stats();
  return side;
}

void write_degradation_side_json(atlas::telemetry::JsonWriter& json,
                                 const DegradationSide& side) {
  const atlas::env::LoadPointResult& r = side.result;
  json.begin_object();
  json.field("goodput_qps", side.goodput_qps());
  json.field("scheduled", static_cast<std::uint64_t>(r.scheduled));
  json.field("completed", static_cast<std::uint64_t>(r.completed));
  json.field("failed", static_cast<std::uint64_t>(r.failed));
  json.field("rejected", static_cast<std::uint64_t>(r.rejected));
  json.field("aborted", r.aborted);
  json.field("wall_s", r.wall_s);
  json.field("shed_rate", r.scheduled == 0 ? 0.0
                                           : static_cast<double>(r.rejected) /
                                                 static_cast<double>(r.scheduled));
  json.field("p50_ms", r.latency_ns.quantile(0.50) / 1e6);
  json.field("p99_ms", r.latency_ns.quantile(0.99) / 1e6);
  json.field("p999_ms", r.latency_ns.quantile(0.999) / 1e6);
  json.field("shed_total", side.final_stats.shed_total);
  json.field("deadline_rejected", side.final_stats.deadline_rejected);
  const atlas::env::FarmView& farm = side.final_stats.farm;
  json.field("hedges", farm.hedges);
  json.field("hedge_wins", farm.hedge_wins);
  json.field("hedge_win_rate", farm.hedges == 0 ? 0.0
                                                : static_cast<double>(farm.hedge_wins) /
                                                      static_cast<double>(farm.hedges));
  json.field("breaker_trips", farm.breaker_trips);
  json.field("reconnects", farm.reconnects);
  json.field("episodes_redispatched", farm.episodes_redispatched);
  if (side.faults.total() > 0 || side.faulty_workers > 0) {
    json.key("faults_injected");
    json.begin_object();
    json.field("drops", side.faults.drops);
    json.field("delays", side.faults.delays);
    json.field("errors", side.faults.errors);
    json.field("hangs", side.faults.hangs);
    json.field("corruptions", side.faults.corruptions);
    json.end_object();
  }
  json.key("latency_ms");
  atlas::telemetry::write_histogram_json(json, r.latency_ns, 1e6);
  json.end_object();
}

int run_degradation(const LoadgenOptions& options) {
  const atlas::env::FaultPlan plan =
      atlas::env::FaultPlan::parse(options.fault_plan, options.seed);
  if (plan.empty()) {
    std::fprintf(stderr, "atlas_loadgen: --fault-plan parsed to no rules\n");
    return 2;
  }

  DegradationSide clean;
  DegradationSide faulted;
  try {
    clean = run_degradation_side(options, nullptr);
    if (!options.quiet) {
      std::printf("[degradation/clean]   goodput %8.1f qps  p99 %7.2f ms  "
                  "(%zu ok, %zu failed, %zu shed)\n",
                  clean.goodput_qps(), clean.result.latency_ns.quantile(0.99) / 1e6,
                  clean.result.completed, clean.result.failed, clean.result.rejected);
      std::fflush(stdout);
    }
    faulted = run_degradation_side(options, &plan);
    if (!options.quiet) {
      const atlas::env::FarmView& farm = faulted.final_stats.farm;
      std::printf("[degradation/faulted] goodput %8.1f qps  p99 %7.2f ms  "
                  "(%zu ok, %zu failed, %zu shed; %llu hedges, %llu wins, "
                  "%llu breaker trips)\n",
                  faulted.goodput_qps(), faulted.result.latency_ns.quantile(0.99) / 1e6,
                  faulted.result.completed, faulted.result.failed, faulted.result.rejected,
                  static_cast<unsigned long long>(farm.hedges),
                  static_cast<unsigned long long>(farm.hedge_wins),
                  static_cast<unsigned long long>(farm.breaker_trips));
      std::fflush(stdout);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "atlas_loadgen: fatal: %s\n", e.what());
    return 1;
  }

  const double ratio = clean.goodput_qps() <= 0.0
                           ? 0.0
                           : faulted.goodput_qps() / clean.goodput_qps();
  const std::string out_path =
      options.out.empty()
          ? bench::bench_output_path("BENCH_degradation.json", "ATLAS_BENCH_DEGRADATION_OUT")
          : options.out;
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "atlas_loadgen: cannot write %s\n", out_path.c_str());
    return 1;
  }
  atlas::telemetry::JsonWriter json(out);
  json.begin_object();
  json.field("bench", "degradation");
  json.field("seed", options.seed);
  json.field("fault_plan", plan.to_string());
  json.field("workers", static_cast<std::uint64_t>(options.workers));
  json.field("faulty_workers", static_cast<std::uint64_t>(faulted.faulty_workers));
  json.field("offered_qps", clean.result.offered_qps);
  json.field("duration_s", options.duration_s);
  json.field("rpc_timeout_ms", options.rpc_timeout_ms);
  json.field("hedge_ms", options.hedge_ms);
  json.field("shed_watermark", static_cast<std::uint64_t>(options.shed_watermark));
  json.field("deadline_ms", options.deadline_ms);
  json.key("clean");
  write_degradation_side_json(json, clean);
  json.key("faulted");
  write_degradation_side_json(json, faulted);
  json.field("goodput_ratio", ratio);
  json.end_object();
  out << "\n";
  if (!options.quiet) {
    std::printf("atlas_loadgen: goodput ratio %.3f (faulted/clean); wrote %s\n", ratio,
                out_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const LoadgenOptions options = parse_args(argc, argv);
  if (!options.fault_plan.empty()) return run_degradation(options);

  std::vector<TopologyReport> reports;
  try {
    if (options.topology == "inproc" || options.topology == "both") {
      reports.push_back(drive_inproc(options));
    }
    if (options.topology == "remote" || options.topology == "both") {
      reports.push_back(options.workers >= 2 ? drive_farm(options) : drive_remote(options));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "atlas_loadgen: fatal: %s\n", e.what());
    return 1;
  }

  const std::string out_path = options.out.empty()
                                   ? bench::bench_output_path("BENCH_serving.json",
                                                              "ATLAS_BENCH_SERVING_OUT")
                                   : options.out;
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "atlas_loadgen: cannot write %s\n", out_path.c_str());
    return 1;
  }
  atlas::telemetry::JsonWriter json(out);
  json.begin_object();
  json.field("bench", "serving");
  json.field("seed", options.seed);
  json.field("duration_s", options.duration_s);
  json.field("episode_ms", options.episode_ms);
  json.field("extra_users", static_cast<std::int64_t>(options.extra_users));
  json.field("clients", static_cast<std::uint64_t>(options.clients));
  json.field("workers", static_cast<std::uint64_t>(options.workers));
  json.key("topologies");
  json.begin_array();
  for (const TopologyReport& report : reports) write_topology_json(json, report);
  json.end_array();
  json.end_object();
  out << "\n";
  if (!options.quiet) std::printf("atlas_loadgen: wrote %s\n", out_path.c_str());
  return 0;
}
