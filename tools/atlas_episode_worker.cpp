// atlas_episode_worker: hosts an EnvService behind the episode-RPC so a
// ShardRouter on another host can mix this worker's backends with local ones
// transparently (same BackendId handle, same bit-identical results).
//
// Usage:
//   atlas_episode_worker [--port N] [--port-file PATH] [--threads N]
//                        [--cache-capacity N] [--simulators N]
//                        [--real-networks N] [--drain-timeout-ms N] [--quiet]
//
//   --port N            TCP port on 127.0.0.1 (default 0 = ephemeral; the
//                       chosen port is printed and written to --port-file).
//   --port-file PATH    Write the bound port to PATH (atomic rename), so a
//                       spawning parent can poll for readiness.
//   --threads N         EnvService worker threads (0 = hardware default).
//   --cache-capacity N  Episode memo entries (0 disables worker-side cache).
//   --simulators N      Register N default-parameter simulators as worker
//                       backend ids 0..N-1 (default 1). Stage-1 queries
//                       carry per-query SimParams overrides, so one default
//                       simulator serves a whole calibration sweep.
//   --real-networks N   Register N testbed surrogates after the simulators.
//   --shed-watermark N  Queue-depth admission watermark: past N outstanding
//                       queries, speculative offline work is shed with a
//                       typed rejection; past 2N everything offline sheds
//                       (default 0 = never shed).
//   --drain-timeout-ms N  On SIGINT/SIGTERM, wait up to N ms for in-flight
//                       episodes to finish and flush before closing
//                       connections (default 5000; 0 = hard close).
//   --quiet             Suppress the startup banner (the port line is
//                       always printed: parents parse it).
//
// Exit status: 0 clean shutdown, 1 startup failure (bind/port-file, with a
// diagnostic on stderr), 2 usage error.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "env/env_service.hpp"
#include "rpc/codec.hpp"
#include "rpc/server.hpp"

namespace {

struct WorkerOptions {
  std::uint16_t port = 0;
  std::string port_file;
  std::size_t threads = 0;
  std::size_t cache_capacity = 65536;
  int simulators = 1;
  int real_networks = 0;
  std::size_t shed_watermark = 0;
  std::uint32_t drain_timeout_ms = 5000;
  bool quiet = false;
};

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s [--port N] [--port-file PATH] [--threads N] [--cache-capacity N] "
               "[--simulators N] [--real-networks N] [--shed-watermark N] "
               "[--drain-timeout-ms N] [--quiet]\n",
               argv0);
}

[[noreturn]] void usage_error(const char* argv0, const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", argv0, message.c_str());
  print_usage(stderr, argv0);
  std::exit(2);
}

long parse_long(const char* argv0, const std::string& flag, const char* value) {
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 0) {
    usage_error(argv0, flag + " expects a non-negative integer, got '" + value + "'");
  }
  return parsed;
}

WorkerOptions parse_args(int argc, char** argv) {
  WorkerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_error(argv[0], flag + " expects a value");
      return argv[++i];
    };
    if (flag == "--port") {
      const long port = parse_long(argv[0], flag, next());
      if (port > 65535) usage_error(argv[0], "--port must be <= 65535");
      options.port = static_cast<std::uint16_t>(port);
    } else if (flag == "--port-file") {
      options.port_file = next();
    } else if (flag == "--threads") {
      options.threads = static_cast<std::size_t>(parse_long(argv[0], flag, next()));
    } else if (flag == "--cache-capacity") {
      options.cache_capacity = static_cast<std::size_t>(parse_long(argv[0], flag, next()));
    } else if (flag == "--simulators") {
      options.simulators = static_cast<int>(parse_long(argv[0], flag, next()));
    } else if (flag == "--real-networks") {
      options.real_networks = static_cast<int>(parse_long(argv[0], flag, next()));
    } else if (flag == "--shed-watermark") {
      options.shed_watermark = static_cast<std::size_t>(parse_long(argv[0], flag, next()));
    } else if (flag == "--drain-timeout-ms") {
      options.drain_timeout_ms = static_cast<std::uint32_t>(parse_long(argv[0], flag, next()));
    } else if (flag == "--quiet") {
      options.quiet = true;
    } else if (flag == "--help" || flag == "-h") {
      print_usage(stdout, argv[0]);
      std::exit(0);
    } else {
      usage_error(argv[0], "unknown flag '" + flag + "'");
    }
  }
  if (options.simulators + options.real_networks == 0) {
    usage_error(argv[0], "at least one backend is required");
  }
  return options;
}

/// Startup failure that should exit(1) with a diagnostic, not a silent abort.
struct StartupError : std::runtime_error {
  using std::runtime_error::runtime_error;
};


void write_port_file(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    throw StartupError("cannot write port file " + tmp + ": " + std::strerror(errno));
  }
  std::fprintf(f, "%u\n", static_cast<unsigned>(port));
  std::fclose(f);
  // Atomic publish: a polling parent never reads a half-written file.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw StartupError("cannot rename " + tmp + " to " + path + ": " + std::strerror(errno));
  }
}

int run_worker(const WorkerOptions& options) {
  // Block the shutdown signals BEFORE any thread spawns, so every thread
  // inherits the mask and sigwait below is the only consumer.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  atlas::env::EnvServiceOptions service_options;
  service_options.threads = options.threads;
  service_options.cache_capacity = options.cache_capacity;
  service_options.shed_watermark = options.shed_watermark;
  atlas::env::EnvService service(service_options);
  for (int i = 0; i < options.simulators; ++i) {
    service.add_simulator(atlas::env::SimParams::defaults(), "sim-" + std::to_string(i));
  }
  for (int i = 0; i < options.real_networks; ++i) {
    service.add_real_network("real-" + std::to_string(i));
  }

  atlas::rpc::RpcServerOptions server_options;
  server_options.port = options.port;
  server_options.drain_timeout_ms = options.drain_timeout_ms;
  atlas::rpc::EpisodeRpcServer server(service, server_options);
  // Announce the placement fingerprint (wire v4): same flags -> same digest
  // -> a FarmController groups this worker's simulators with its peers'.
  for (int i = 0; i < options.simulators; ++i) {
    server.set_backend_digest(static_cast<atlas::env::BackendId>(i),
                              atlas::env::params_digest(atlas::env::SimParams::defaults()));
  }

  if (!options.quiet) {
    std::printf("atlas_episode_worker: %d simulator(s), %d real-network backend(s), "
                "%zu thread(s), cache %zu\n",
                options.simulators, options.real_networks, service.threads(),
                options.cache_capacity);
  }
  // The port line is the machine-readable readiness signal; always printed.
  std::printf("atlas_episode_worker listening on 127.0.0.1:%u (wire v%u)\n",
              static_cast<unsigned>(server.port()),
              static_cast<unsigned>(atlas::rpc::kWireVersion));
  std::fflush(stdout);
  if (!options.port_file.empty()) write_port_file(options.port_file, server.port());

  int sig = 0;
  sigwait(&sigs, &sig);
  if (!options.quiet) {
    std::printf("atlas_episode_worker: %s received, draining in-flight episodes\n",
                strsignal(sig));
    std::fflush(stdout);
  }
  // stop() drains dispatched episodes (bounded by --drain-timeout-ms) before
  // closing connections, so accepted work becomes responses, not timeouts.
  server.stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const WorkerOptions options = parse_args(argc, argv);
  try {
    return run_worker(options);
  } catch (const std::exception& e) {
    // A worker that cannot start (port already bound, unwritable port file)
    // must say so and exit non-zero — a spawning parent polls the port file
    // and would otherwise wait forever on a silently-dead child.
    std::fprintf(stderr, "atlas_episode_worker: fatal: %s\n", e.what());
    return 1;
  }
}
