#include "net/edge.hpp"

#include <algorithm>
#include <cmath>

namespace atlas::net {

namespace {
/// docker's cpu quota cannot be set to a true zero; `docker update --cpus`
/// with tiny values still schedules the container occasionally.
constexpr double kMinCpuRatio = 0.02;
}  // namespace

double ComputeModel::sample(double cpu_ratio, atlas::math::Rng& rng) const {
  double base = rng.truncated_normal(mean_ms, std_ms, min_ms, max_ms);
  if (tail_prob > 0.0 && rng.bernoulli(tail_prob)) {
    base += rng.exponential(tail_mean_ms);
  }
  const double effective = std::pow(std::max(cpu_ratio, kMinCpuRatio), cpu_exponent);
  return (base + overhead_ms) / effective;
}

ComputeQueue::ComputeQueue(ComputeModel model, double cpu_ratio)
    : model_(model), cpu_ratio_(std::max(cpu_ratio, kMinCpuRatio)) {}

double ComputeQueue::process(double now, atlas::math::Rng& rng) {
  return process_traced(now, rng).done;
}

ServiceSpan ComputeQueue::process_traced(double now, atlas::math::Rng& rng) {
  ServiceSpan span;
  span.start = std::max(now, busy_until_);
  busy_until_ = span.start + model_.sample(cpu_ratio_, rng);
  span.done = busy_until_;
  ++processed_;
  return span;
}

}  // namespace atlas::net
