#include "net/backhaul.hpp"

#include <algorithm>

namespace atlas::net {

namespace {
/// Residual rate when the meter is configured at (or below) zero: real
/// OpenFlow meters quantize and cannot fully stall the port.
constexpr double kMinRateMbps = 0.1;
}  // namespace

TransportLink::TransportLink(double rate_mbps, double delay_ms, TransportJitter jitter)
    : rate_mbps_(std::max(rate_mbps, kMinRateMbps)), delay_ms_(delay_ms), jitter_(jitter) {}

double TransportLink::send(double now, double bits, atlas::math::Rng& rng) {
  const double start = std::max(now, busy_until_);
  // rate in Mbps == bits per microsecond == 1e3 bits per ms.
  const double tx_ms = bits / (rate_mbps_ * 1e3);
  busy_until_ = start + tx_ms;
  return busy_until_ + delay_ms_ + jitter_.sample(bits, rng);
}

}  // namespace atlas::net
