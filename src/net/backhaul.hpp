#pragma once

#include "math/rng.hpp"

namespace atlas::net {

/// Jitter model for a transport hop. The simulator runs with jitter disabled
/// (NS-3's p2p link is deterministic); the real network adds a base extra
/// delay plus an exponential tail, modelling SDN-switch queuing behind cross
/// traffic — one of the "real-only" mechanisms parameter calibration can
/// compensate in mean but not in distribution (DESIGN.md §4).
struct TransportJitter {
  double base_extra_ms = 0.0;  ///< Constant extra per-packet delay.
  double exp_mean_ms = 0.0;    ///< Mean of the exponential tail (0 = off).
  double per_mbit_ms = 0.0;    ///< Size-dependent store-and-forward cost
                               ///< (GTP encapsulation + switch processing);
                               ///< negligible for pings, ~8 ms for frames.

  double sample(double bits, atlas::math::Rng& rng) const {
    double extra = base_extra_ms + per_mbit_ms * bits / 1e6;
    if (exp_mean_ms > 0.0) extra += rng.exponential(exp_mean_ms);
    return extra;
  }
};

/// One direction of the slice's metered transport path: an OpenFlow-meter
/// style rate limiter (slice backhaul bandwidth, Table 2) in front of a
/// propagation delay. Frames serialize FIFO at the metered rate; `send`
/// returns the arrival time at the far end.
class TransportLink {
 public:
  /// `rate_mbps` <= 0 models a fully-throttled meter: the link still moves
  /// data, but at a residual trickle (meters cannot drop to true zero).
  TransportLink(double rate_mbps, double delay_ms, TransportJitter jitter = {});

  /// Enqueue `bits` at time `now`; returns the arrival time.
  double send(double now, double bits, atlas::math::Rng& rng);

  /// Effective meter rate (after any headroom adjustment).
  double rate_mbps() const noexcept { return rate_mbps_; }
  double busy_until() const noexcept { return busy_until_; }

 private:
  double rate_mbps_;
  double delay_ms_;
  TransportJitter jitter_;
  double busy_until_ = 0.0;
};

/// SPGW-U style forwarding hop: a fixed per-packet processing delay. Each
/// slice owns an isolated SPGW-U container in the paper's prototype; we keep
/// one instance per slice per direction.
class CoreHop {
 public:
  explicit CoreHop(double processing_ms) : processing_ms_(processing_ms) {}
  double forward(double now) const { return now + processing_ms_; }
  double processing_ms() const noexcept { return processing_ms_; }

 private:
  double processing_ms_;
};

}  // namespace atlas::net
