#pragma once

#include <cstddef>

#include "math/rng.hpp"

namespace atlas::net {

/// Service-time model of the edge application (ORB feature extraction in the
/// paper, §7.1): truncated-normal base compute time scaled by the docker
/// CPU ratio, plus a constant overhead (containerization cost in the real
/// network; a Table 3 calibration knob in the simulator).
struct ComputeModel {
  double mean_ms = 81.0;    ///< Paper §7.2: N(81 ms, 35 ms) measured.
  double std_ms = 35.0;
  double min_ms = 10.0;
  double max_ms = 400.0;
  double overhead_ms = 0.0; ///< Additive per-frame overhead (before scaling).
  double tail_prob = 0.0;   ///< Probability of a scheduling stall (real only):
  double tail_mean_ms = 0.0;///< ...adds Exp(tail_mean) to the service time.
  double cpu_exponent = 1.0;///< Effective CPU = cpu_ratio^exponent. Real
                            ///< cgroup CFS quotas under-deliver at fractional
                            ///< shares (throttling bubbles), so the real
                            ///< network uses > 1; identical at cpu_ratio = 1.

  double sample(double cpu_ratio, atlas::math::Rng& rng) const;
};

/// Start/finish pair for one serviced frame (tracing support).
struct ServiceSpan {
  double start = 0.0;
  double done = 0.0;
};

/// FIFO single-server compute queue for one slice's edge container
/// (docker `--cpus` style isolation: the slice only competes with itself).
class ComputeQueue {
 public:
  ComputeQueue(ComputeModel model, double cpu_ratio);

  /// Enqueue a frame arriving at `now`; returns its service-completion time.
  double process(double now, atlas::math::Rng& rng);

  /// Like process(), but also reports when service began (queueing split).
  ServiceSpan process_traced(double now, atlas::math::Rng& rng);

  std::size_t processed() const noexcept { return processed_; }
  double busy_until() const noexcept { return busy_until_; }
  double cpu_ratio() const noexcept { return cpu_ratio_; }

 private:
  ComputeModel model_;
  double cpu_ratio_;
  double busy_until_ = 0.0;
  std::size_t processed_ = 0;
};

}  // namespace atlas::net
