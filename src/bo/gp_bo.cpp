#include "bo/gp_bo.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace atlas::bo {

using atlas::math::Matrix;
using atlas::math::Rng;
using atlas::math::Vec;

GpBoMinimizer::GpBoMinimizer(BoxSpace space, GpBoOptions options)
    : space_(std::move(space)), options_(options), surrogate_(options.gp) {}

void GpBoMinimizer::refit() {
  if (!dirty_ || y_.empty()) return;
  surrogate_.fit(x_norm_, y_);
  dirty_ = false;
}

Vec GpBoMinimizer::ask(Rng& rng) {
  if (observations() < options_.init_samples) return space_.sample(rng);
  refit();
  const std::size_t n_cand = std::max<std::size_t>(8, options_.candidates);
  const Matrix cand = space_.sample_batch(n_cand, rng);
  const std::size_t iter = observations() + 1;

  double best_util = -std::numeric_limits<double>::infinity();
  std::size_t best_idx = 0;
  const double incumbent = result_.best_y;
  // beta draws shared across the candidate set: one acquisition per iteration.
  double beta = options_.ucb_beta;
  if (options_.acquisition == AcquisitionKind::kGpUcb) {
    beta = gp_ucb_beta(iter, n_cand, options_.delta);
  } else if (options_.acquisition == AcquisitionKind::kCrgpUcb) {
    beta = crgp_ucb_beta(iter, options_.crgp_rho, options_.crgp_clip, rng);
  }
  for (std::size_t i = 0; i < n_cand; ++i) {
    const Vec xn = space_.normalize(cand.row(i));
    const auto post = surrogate_.predict(xn);
    double util = 0.0;
    switch (options_.acquisition) {
      case AcquisitionKind::kEi:
        util = expected_improvement(post.mean, post.std, incumbent, options_.xi);
        break;
      case AcquisitionKind::kPi:
        util = probability_of_improvement(post.mean, post.std, incumbent, options_.xi);
        break;
      case AcquisitionKind::kUcb:
      case AcquisitionKind::kGpUcb:
      case AcquisitionKind::kCrgpUcb:
        // Minimization: maximize the negated lower confidence bound.
        util = -lower_confidence_bound(post.mean, post.std, beta);
        break;
      case AcquisitionKind::kThompson:
        // Independent posterior draw per candidate (lightweight TS for GPs).
        util = -(post.mean + post.std * rng.normal());
        break;
    }
    if (util > best_util) {
      best_util = util;
      best_idx = i;
    }
  }
  return cand.row(best_idx);
}

void GpBoMinimizer::tell(const Vec& x, double y) {
  if (x.size() != space_.dim()) throw std::invalid_argument("GpBoMinimizer::tell: dim mismatch");
  const Vec xn = space_.normalize(space_.clamp(x));
  Matrix grown(x_norm_.rows() + 1, space_.dim());
  for (std::size_t r = 0; r < x_norm_.rows(); ++r) grown.set_row(r, x_norm_.row(r));
  grown.set_row(x_norm_.rows(), xn);
  x_norm_ = std::move(grown);
  y_.push_back(y);
  dirty_ = true;

  if (result_.history.empty() || y < result_.best_y) {
    result_.best_y = y;
    result_.best_x = x;
  }
  result_.history.push_back({x, y});
}

GpBoResult GpBoMinimizer::minimize(const std::function<double(const Vec&)>& fn,
                                   std::size_t iters, Rng& rng) {
  for (std::size_t i = 0; i < iters; ++i) {
    const Vec x = ask(rng);
    tell(x, fn(x));
  }
  return result_;
}

}  // namespace atlas::bo
