#pragma once

#include <cstddef>

#include "math/rng.hpp"

namespace atlas::bo {

/// Acquisition families evaluated in this project (paper Figs. 5, 8, 17, 22).
enum class AcquisitionKind { kEi, kPi, kUcb, kGpUcb, kCrgpUcb, kThompson };

/// Standard normal pdf / cdf, shared by EI and PI.
double normal_pdf(double z);
double normal_cdf(double z);

/// Expected improvement for MINIMIZATION: E[max(best - f, 0)] under
/// f ~ N(mean, std^2). `xi` is the usual exploration offset.
double expected_improvement(double mean, double std, double best, double xi = 0.0);

/// Probability of improvement for minimization: P(f < best - xi).
double probability_of_improvement(double mean, double std, double best, double xi = 0.0);

/// Lower confidence bound for minimization: mean - sqrt(beta) * std.
/// (For maximization problems callers use the symmetric UCB.)
double lower_confidence_bound(double mean, double std, double beta);
double upper_confidence_bound(double mean, double std, double beta);

/// The theoretical GP-UCB schedule of Srinivas et al. (2009) for finite
/// candidate sets: beta_n = 2 log(|D| n^2 pi^2 / (6 delta)). Grows ~ log n and
/// is deliberately large — the over-exploration Atlas's Fig. 22 illustrates.
double gp_ucb_beta(std::size_t n, std::size_t candidates, double delta = 0.1);

/// Randomized GP-UCB (Berk et al. 2020) hyperparameter: beta_n ~ Gamma(kappa_n, rho)
/// with kappa_n = log((n^2 + 1) / sqrt(2 pi)) / log(1 + rho / 2)   (paper Eq. 13).
/// `n` is the online iteration index (>= 1).
double rgp_ucb_beta(std::size_t n, double rho, atlas::math::Rng& rng);

/// Atlas's clipped randomized GP-UCB: sample rgp_ucb_beta and clip to [0, B]
/// (conservative exploration, §6.2; B = 10 in the evaluation).
double crgp_ucb_beta(std::size_t n, double rho, double clip_b, atlas::math::Rng& rng);

}  // namespace atlas::bo
