#pragma once

#include <functional>
#include <vector>

#include "bo/acquisition.hpp"
#include "bo/space.hpp"
#include "gp/gaussian_process.hpp"
#include "math/matrix.hpp"
#include "math/rng.hpp"

namespace atlas::bo {

/// Options for the generic GP-based Bayesian-optimization minimizer.
struct GpBoOptions {
  AcquisitionKind acquisition = AcquisitionKind::kEi;
  std::size_t init_samples = 8;   ///< Pure-exploration warmup queries.
  std::size_t candidates = 2000;  ///< Random candidates scored per iteration.
  double xi = 0.0;                ///< EI/PI exploration offset.
  double ucb_beta = 4.0;          ///< Fixed beta for kUcb.
  double delta = 0.1;             ///< Confidence for kGpUcb's schedule.
  double crgp_rho = 0.1;          ///< Scaling parameter for kCrgpUcb.
  double crgp_clip = 10.0;        ///< Clip bound B for kCrgpUcb.
  gp::GpConfig gp;                ///< Surrogate configuration.
};

/// One evaluated query.
struct GpBoStep {
  atlas::math::Vec x;
  double y = 0.0;
};

/// Running result of a minimization.
struct GpBoResult {
  atlas::math::Vec best_x;
  double best_y = 0.0;
  std::vector<GpBoStep> history;
};

/// Generic single-objective minimizer over a BoxSpace with a GP surrogate —
/// the classic BO loop the paper uses as its "GP-based approach" in Stage 1
/// (Fig. 8) and as the online "Baseline" (GP + EI, §8). Exposes an ask/tell
/// interface so callers controlling expensive objectives (simulator episodes,
/// real-network queries) can drive the loop and parallelism themselves.
class GpBoMinimizer {
 public:
  GpBoMinimizer(BoxSpace space, GpBoOptions options = {});

  /// Next query point (raw coordinates).
  atlas::math::Vec ask(atlas::math::Rng& rng);

  /// Report an observed objective value for `x`.
  void tell(const atlas::math::Vec& x, double y);

  /// Number of observations so far.
  std::size_t observations() const noexcept { return result_.history.size(); }

  const GpBoResult& result() const noexcept { return result_; }
  const BoxSpace& space() const noexcept { return space_; }

  /// Convenience driver: `iters` sequential ask/evaluate/tell rounds.
  GpBoResult minimize(const std::function<double(const atlas::math::Vec&)>& fn,
                      std::size_t iters, atlas::math::Rng& rng);

 private:
  void refit();

  BoxSpace space_;
  GpBoOptions options_;
  gp::GaussianProcess surrogate_;
  bool dirty_ = true;
  atlas::math::Matrix x_norm_;  ///< Normalized observations (rows).
  atlas::math::Vec y_;
  GpBoResult result_;
};

}  // namespace atlas::bo
