#pragma once

#include <cstddef>
#include <vector>

#include "math/matrix.hpp"

namespace atlas::bo {

/// Ranked tracker of the K lowest-score candidates an acquisition scan has
/// seen so far. Built for the speculative episode prefetcher: the scan that
/// used to keep only the running argmin now keeps a short ranked list, so a
/// SpeculationPlanner can launch episodes for the likely winners while the
/// scan is still running.
///
/// Bit-identity contract: insertion uses STRICT inequality, so among equal
/// scores the earliest-offered candidate stays ranked first. best() is
/// therefore exactly the candidate a plain `if (score < best)` running-argmin
/// loop would have selected — pinned by golden_stage_test, which requires the
/// TopK-refactored scans to reproduce the historical argmin/argmax choices
/// bit-for-bit. Maximizing scans offer the negated utility.
class TopK {
 public:
  struct Entry {
    math::Vec x;
    double score = 0.0;
  };

  explicit TopK(std::size_t k) : k_(k == 0 ? 1 : k) {}

  /// Consider one candidate. O(K) — K is tiny (prefetch depth).
  void offer(const math::Vec& x, double score) {
    if (ranked_.size() == k_ && !(score < ranked_.back().score)) return;
    // First slot whose score the newcomer strictly beats: equal scores keep
    // their earlier-offered position (first-wins, matching the old argmin).
    std::size_t pos = ranked_.size();
    while (pos > 0 && score < ranked_[pos - 1].score) --pos;
    ranked_.insert(ranked_.begin() + static_cast<std::ptrdiff_t>(pos), Entry{x, score});
    if (ranked_.size() > k_) ranked_.pop_back();
  }

  bool empty() const { return ranked_.empty(); }
  std::size_t size() const { return ranked_.size(); }
  std::size_t capacity() const { return k_; }

  /// The running argmin (identical to the pre-TopK scan result).
  const math::Vec& best() const { return ranked_.front().x; }
  double best_score() const { return ranked_.front().score; }

  /// All tracked candidates, best first.
  const std::vector<Entry>& ranked() const { return ranked_; }

 private:
  std::size_t k_;
  std::vector<Entry> ranked_;  ///< Ascending score, at most k_ entries.
};

}  // namespace atlas::bo
