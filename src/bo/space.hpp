#pragma once

#include <string>
#include <vector>

#include "math/matrix.hpp"
#include "math/rng.hpp"

namespace atlas::bo {

/// Axis-aligned box of named continuous parameters, the shared search-space
/// abstraction for Table 2 (configuration actions) and Table 3 (simulation
/// parameters).
///
/// Surrogates always see *normalized* coordinates in [0,1]^d: both the BNN
/// and the GP are scale-sensitive, and the raw ranges span 3 orders of
/// magnitude (PRBs vs CPU ratio).
class BoxSpace {
 public:
  BoxSpace() = default;
  BoxSpace(std::vector<std::string> names, atlas::math::Vec lo, atlas::math::Vec hi);

  std::size_t dim() const noexcept { return lo_.size(); }
  const std::vector<std::string>& names() const noexcept { return names_; }
  const atlas::math::Vec& lower() const noexcept { return lo_; }
  const atlas::math::Vec& upper() const noexcept { return hi_; }

  /// Clamp a raw point into the box.
  atlas::math::Vec clamp(atlas::math::Vec x) const;
  /// Map raw -> [0,1]^d.
  atlas::math::Vec normalize(const atlas::math::Vec& x) const;
  /// Map [0,1]^d -> raw.
  atlas::math::Vec denormalize(const atlas::math::Vec& u) const;

  /// Uniform raw sample.
  atlas::math::Vec sample(atlas::math::Rng& rng) const;
  /// `n` uniform raw samples as matrix rows.
  atlas::math::Matrix sample_batch(std::size_t n, atlas::math::Rng& rng) const;

  /// Uniform raw sample restricted to the L2 ball |normalize(x)-normalize(c)| <= radius
  /// (rejection; used for the Stage-1 constraint Eq. 2). Falls back to the
  /// nearest boundary point after `max_tries`.
  atlas::math::Vec sample_in_ball(const atlas::math::Vec& center, double radius,
                                  atlas::math::Rng& rng, int max_tries = 64) const;

  /// Range-normalized L2 distance divided by sqrt(d): the "parameter
  /// distance" |x - x_hat|_2 of Eq. 2 in comparable units (see DESIGN.md §4).
  double distance(const atlas::math::Vec& a, const atlas::math::Vec& b) const;

 private:
  std::vector<std::string> names_;
  atlas::math::Vec lo_, hi_;
};

}  // namespace atlas::bo
