#include "bo/space.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace atlas::bo {

using atlas::math::Matrix;
using atlas::math::Rng;
using atlas::math::Vec;

BoxSpace::BoxSpace(std::vector<std::string> names, Vec lo, Vec hi)
    : names_(std::move(names)), lo_(std::move(lo)), hi_(std::move(hi)) {
  if (lo_.size() != hi_.size() || names_.size() != lo_.size()) {
    throw std::invalid_argument("BoxSpace: inconsistent sizes");
  }
  for (std::size_t i = 0; i < lo_.size(); ++i) {
    if (hi_[i] <= lo_[i]) throw std::invalid_argument("BoxSpace: empty dimension " + names_[i]);
  }
}

Vec BoxSpace::clamp(Vec x) const {
  if (x.size() != dim()) throw std::invalid_argument("BoxSpace::clamp: dim mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::clamp(x[i], lo_[i], hi_[i]);
  return x;
}

Vec BoxSpace::normalize(const Vec& x) const {
  if (x.size() != dim()) throw std::invalid_argument("BoxSpace::normalize: dim mismatch");
  Vec u(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) u[i] = (x[i] - lo_[i]) / (hi_[i] - lo_[i]);
  return u;
}

Vec BoxSpace::denormalize(const Vec& u) const {
  if (u.size() != dim()) throw std::invalid_argument("BoxSpace::denormalize: dim mismatch");
  Vec x(u.size());
  for (std::size_t i = 0; i < u.size(); ++i) x[i] = lo_[i] + u[i] * (hi_[i] - lo_[i]);
  return x;
}

Vec BoxSpace::sample(Rng& rng) const { return rng.uniform_vec(lo_, hi_); }

Matrix BoxSpace::sample_batch(std::size_t n, Rng& rng) const {
  Matrix out(n, dim());
  for (std::size_t i = 0; i < n; ++i) out.set_row(i, sample(rng));
  return out;
}

Vec BoxSpace::sample_in_ball(const Vec& center, double radius, Rng& rng, int max_tries) const {
  const Vec c = normalize(clamp(center));
  for (int t = 0; t < max_tries; ++t) {
    const Vec x = sample(rng);
    if (distance(x, center) <= radius) return x;
  }
  // Fall back: random direction from the center, scaled inside the ball.
  Vec u(dim());
  double norm = 0.0;
  for (auto& v : u) {
    v = rng.normal();
    norm += v * v;
  }
  norm = std::sqrt(std::max(norm, 1e-12));
  const double scale = radius * std::sqrt(static_cast<double>(dim())) * rng.uniform();
  Vec out(dim());
  for (std::size_t i = 0; i < dim(); ++i) {
    out[i] = std::clamp(c[i] + u[i] / norm * scale, 0.0, 1.0);
  }
  return denormalize(out);
}

double BoxSpace::distance(const Vec& a, const Vec& b) const {
  const Vec ua = normalize(a);
  const Vec ub = normalize(b);
  return std::sqrt(atlas::math::squared_distance(ua, ub) / static_cast<double>(dim()));
}

}  // namespace atlas::bo
