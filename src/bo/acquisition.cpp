#include "bo/acquisition.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace atlas::bo {

double normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / 2.50662827463100050242;  // sqrt(2*pi)
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / 1.41421356237309504880); }

double expected_improvement(double mean, double std, double best, double xi) {
  if (std <= 0.0) return std::max(0.0, best - xi - mean);
  const double z = (best - xi - mean) / std;
  return (best - xi - mean) * normal_cdf(z) + std * normal_pdf(z);
}

double probability_of_improvement(double mean, double std, double best, double xi) {
  if (std <= 0.0) return mean < best - xi ? 1.0 : 0.0;
  return normal_cdf((best - xi - mean) / std);
}

double lower_confidence_bound(double mean, double std, double beta) {
  return mean - std::sqrt(std::max(0.0, beta)) * std;
}

double upper_confidence_bound(double mean, double std, double beta) {
  return mean + std::sqrt(std::max(0.0, beta)) * std;
}

double gp_ucb_beta(std::size_t n, std::size_t candidates, double delta) {
  n = std::max<std::size_t>(1, n);
  candidates = std::max<std::size_t>(1, candidates);
  const double pi2 = 9.86960440108935861883;
  return 2.0 * std::log(static_cast<double>(candidates) * static_cast<double>(n) *
                        static_cast<double>(n) * pi2 / (6.0 * delta));
}

double rgp_ucb_beta(std::size_t n, double rho, atlas::math::Rng& rng) {
  if (rho <= 0.0) throw std::invalid_argument("rgp_ucb_beta: rho must be > 0");
  n = std::max<std::size_t>(1, n);
  const double n2 = static_cast<double>(n) * static_cast<double>(n);
  const double kappa =
      std::log((n2 + 1.0) / 2.50662827463100050242) / std::log(1.0 + rho / 2.0);
  // Gamma(shape kappa, scale rho), as in Berk et al.'s randomized GP-UCB.
  return rng.gamma(std::max(kappa, 1e-3), rho);
}

double crgp_ucb_beta(std::size_t n, double rho, double clip_b, atlas::math::Rng& rng) {
  return std::clamp(rgp_ucb_beta(n, rho, rng), 0.0, clip_b);
}

}  // namespace atlas::bo
