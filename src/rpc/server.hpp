#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "env/env_service.hpp"
#include "rpc/transport.hpp"
#include "telemetry/histogram.hpp"

namespace atlas::rpc {

struct RpcServerOptions {
  std::uint16_t port = 0;  ///< TCP port on 127.0.0.1; 0 = ephemeral (see port()).
  /// How long stop() waits for dispatched episodes to finish (and their
  /// responses to flush) before closing connections anyway. 0 = no grace:
  /// legacy hard-close behavior.
  std::uint32_t drain_timeout_ms = 5000;
  /// Free-form build identifier advertised in the kHello announce.
  std::string build = "atlas-episode-worker";
};

/// Hosts an `EnvService` behind the episode-RPC: each query frame is
/// dispatched onto the service's pool (so one connection pipelines many
/// concurrent episodes) and answered with a result or error frame tagged by
/// the request id — responses may be reordered; the client's multiplexer
/// matches them back up. This is the worker side of `RemoteBackend` and the
/// core of the `atlas_episode_worker` binary.
class EpisodeRpcServer {
 public:
  /// Binds 127.0.0.1:port and starts accepting. `service` must outlive the
  /// server.
  EpisodeRpcServer(env::EnvService& service, RpcServerOptions options = {});
  ~EpisodeRpcServer();

  EpisodeRpcServer(const EpisodeRpcServer&) = delete;
  EpisodeRpcServer& operator=(const EpisodeRpcServer&) = delete;

  /// Actual bound port (resolves an ephemeral request).
  std::uint16_t port() const noexcept { return listener_.port(); }

  /// Stop accepting, drain in-flight episodes (bounded by
  /// `drain_timeout_ms`), then close every connection and join all threads.
  /// Idempotent; also run by the destructor.
  void stop();

  /// Serve one already-connected transport until the peer closes (blocking).
  /// The accept loop uses this per connection; tests call it directly with a
  /// loopback endpoint to exercise the full RPC path without sockets.
  void serve(Transport& transport);

  /// Server-side service time (decode done -> response encoded) of every
  /// episode answered so far; exported to clients via kStatsRequest.
  telemetry::HistogramData service_time() const { return service_time_.snapshot(); }

  // ---- farm control plane (wire v4) ----------------------------------------

  /// What this worker tells a controller on kHello: build, wire version,
  /// pool size, cache capacity, and every registered backend with its
  /// placement digest (see set_backend_digest).
  env::WorkerAnnounce announce() const;

  /// Record the parameterization fingerprint for a backend (the worker binary
  /// digests its SimParams at startup; runtime installs carry their own).
  /// Backends without a digest announce 0 — equivalent only to other
  /// digest-0 backends of the same kind.
  void set_backend_digest(env::BackendId id, std::uint64_t digest);

  /// Queries dropped (pre-execution or pre-response) by kCancel frames.
  std::uint64_t cancelled_total() const noexcept {
    return cancelled_total_.load(std::memory_order_relaxed);
  }
  /// Backends pushed into the registry at runtime via kInstallBackend.
  std::uint64_t installs_total() const noexcept {
    return installs_total_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    std::unique_ptr<Transport> transport;
    std::thread thread;
    std::atomic<bool> finished{false};  ///< serve() returned; safe to reap.
  };

  void accept_loop();
  std::uint64_t backend_digest(env::BackendId id) const;
  env::InstallResult handle_install(const env::BackendInstallRequest& request);

  env::EnvService& service_;
  RpcServerOptions options_;
  TcpListener listener_;
  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
  bool stopped_ = false;  ///< Guarded by connections_mutex_.
  std::thread acceptor_;

  telemetry::Histogram service_time_;
  mutable std::mutex digests_mutex_;
  std::vector<std::uint64_t> digests_;  ///< Indexed by BackendId; 0 = unset.
  std::atomic<std::uint64_t> cancelled_total_{0};
  std::atomic<std::uint64_t> installs_total_{0};
  /// Episodes dispatched onto the pool whose responses have not been written
  /// yet, across ALL connections — what stop() waits on before hard-closing.
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  std::int64_t in_flight_ = 0;  ///< Guarded by drain_mutex_.
};

}  // namespace atlas::rpc
