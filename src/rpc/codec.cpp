#include "rpc/codec.hpp"

#include <bit>
#include <cstring>
#include <limits>

namespace atlas::rpc {

// ---- WireWriter -------------------------------------------------------------

void WireWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void WireWriter::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void WireWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void WireWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

// ---- WireReader -------------------------------------------------------------

void WireReader::need(std::size_t n) const {
  if (pos_ + n > bytes_.size()) {
    throw CodecError("rpc codec: truncated frame (needed " + std::to_string(n) + " bytes, " +
                     std::to_string(bytes_.size() - pos_) + " left)");
  }
}

std::uint8_t WireReader::u8() {
  need(1);
  return bytes_[pos_++];
}

std::uint16_t WireReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(bytes_[pos_]) |
                    static_cast<std::uint16_t>(bytes_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

double WireReader::f64() { return std::bit_cast<double>(u64()); }

bool WireReader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) throw CodecError("rpc codec: bad boolean byte");
  return v == 1;
}

std::string WireReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
  pos_ += n;
  return s;
}

void WireReader::expect_done() const {
  if (pos_ != bytes_.size()) {
    throw CodecError("rpc codec: " + std::to_string(bytes_.size() - pos_) +
                     " trailing bytes after message body");
  }
}

// ---- message bodies ---------------------------------------------------------

namespace {

void put_header(WireWriter& w, MsgType type, std::uint64_t request_id) {
  w.u32(kWireMagic);
  w.u16(kWireVersion);
  w.u16(static_cast<std::uint16_t>(type));
  w.u64(request_id);
}

void put_slice_config(WireWriter& w, const env::SliceConfig& c) {
  w.f64(c.bandwidth_ul);
  w.f64(c.bandwidth_dl);
  w.f64(c.mcs_offset_ul);
  w.f64(c.mcs_offset_dl);
  w.f64(c.backhaul_mbps);
  w.f64(c.cpu_ratio);
}

env::SliceConfig get_slice_config(WireReader& r) {
  env::SliceConfig c;
  c.bandwidth_ul = r.f64();
  c.bandwidth_dl = r.f64();
  c.mcs_offset_ul = r.f64();
  c.mcs_offset_dl = r.f64();
  c.backhaul_mbps = r.f64();
  c.cpu_ratio = r.f64();
  return c;
}

void put_workload(WireWriter& w, const env::Workload& wl) {
  w.i32(wl.traffic);
  w.f64(wl.duration_ms);
  w.f64(wl.distance_m);
  w.boolean(wl.random_walk);
  w.i32(wl.extra_users);
  w.boolean(wl.collect_traces);
  w.u64(wl.seed);
}

env::Workload get_workload(WireReader& r) {
  env::Workload wl;
  wl.traffic = r.i32();
  wl.duration_ms = r.f64();
  wl.distance_m = r.f64();
  wl.random_walk = r.boolean();
  wl.extra_users = r.i32();
  wl.collect_traces = r.boolean();
  wl.seed = r.u64();
  return wl;
}

void put_sim_params(WireWriter& w, const env::SimParams& p) {
  w.f64(p.baseline_loss_db);
  w.f64(p.enb_noise_figure_db);
  w.f64(p.ue_noise_figure_db);
  w.f64(p.backhaul_bw_mbps);
  w.f64(p.backhaul_delay_ms);
  w.f64(p.compute_time_ms);
  w.f64(p.loading_time_ms);
}

env::SimParams get_sim_params(WireReader& r) {
  env::SimParams p;
  p.baseline_loss_db = r.f64();
  p.enb_noise_figure_db = r.f64();
  p.ue_noise_figure_db = r.f64();
  p.backhaul_bw_mbps = r.f64();
  p.backhaul_delay_ms = r.f64();
  p.compute_time_ms = r.f64();
  p.loading_time_ms = r.f64();
  return p;
}

void put_trace(WireWriter& w, const env::FrameTrace& t) {
  w.u64(t.id);
  w.f64(t.created_ms);
  w.f64(t.sent_ms);
  w.f64(t.ul_done_ms);
  w.f64(t.edge_in_ms);
  w.f64(t.compute_start_ms);
  w.f64(t.compute_done_ms);
  w.f64(t.enb_dl_ms);
  w.f64(t.completed_ms);
}

env::FrameTrace get_trace(WireReader& r) {
  env::FrameTrace t;
  t.id = r.u64();
  t.created_ms = r.f64();
  t.sent_ms = r.f64();
  t.ul_done_ms = r.f64();
  t.edge_in_ms = r.f64();
  t.compute_start_ms = r.f64();
  t.compute_done_ms = r.f64();
  t.enb_dl_ms = r.f64();
  t.completed_ms = r.f64();
  return t;
}

/// Element-count sanity bound: a count whose decoded size would exceed the
/// frame cap is corruption, not data (prevents giant allocations from a
/// flipped length byte).
std::size_t checked_count(std::uint64_t n, std::size_t element_bytes, const char* what) {
  if (n > kMaxFrameBytes / element_bytes) {
    throw CodecError(std::string("rpc codec: implausible ") + what + " count " +
                     std::to_string(n));
  }
  return static_cast<std::size_t>(n);
}

/// Sparse histogram: u32 occupied-bucket count | (u32 index, u64 count)* |
/// u64 sum. Merges bit-exactly (bucket counts are integers).
void put_histogram(WireWriter& w, const telemetry::HistogramData& h) {
  const auto& counts = h.counts();
  std::uint32_t occupied = 0;
  for (std::uint64_t c : counts) occupied += c != 0 ? 1 : 0;
  w.u32(occupied);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    w.u32(static_cast<std::uint32_t>(i));
    w.u64(counts[i]);
  }
  w.u64(h.sum());
}

telemetry::HistogramData get_histogram(WireReader& r) {
  const std::size_t occupied = checked_count(r.u32(), 12, "histogram bucket");
  if (occupied == 0) {
    if (r.u64() != 0) throw CodecError("rpc codec: empty histogram with nonzero sum");
    return {};
  }
  std::vector<std::uint64_t> counts(telemetry::kBucketCount, 0);
  for (std::size_t i = 0; i < occupied; ++i) {
    const std::uint32_t index = r.u32();
    if (index >= telemetry::kBucketCount) {
      throw CodecError("rpc codec: histogram bucket index out of range");
    }
    counts[index] = r.u64();
  }
  return telemetry::HistogramData::from_counts(std::move(counts), r.u64());
}

void put_backend_stats(WireWriter& w, const env::BackendStats& b) {
  w.str(b.name);
  w.u8(b.kind == env::BackendKind::kOnline ? 1 : 0);
  w.u64(b.queries);
  w.u64(b.cache_hits);
  w.u64(b.cache_misses);
  w.u64(b.crn_hits);
  w.u64(b.episodes);
  w.f64(b.cost_hint);
  w.u64(b.rpc_retries);
  w.u64(b.rpc_failures);
  put_histogram(w, b.rpc_rtt_ns);
}

env::BackendStats get_backend_stats(WireReader& r) {
  env::BackendStats b;
  b.name = r.str();
  b.kind = r.u8() == 1 ? env::BackendKind::kOnline : env::BackendKind::kOffline;
  b.queries = r.u64();
  b.cache_hits = r.u64();
  b.cache_misses = r.u64();
  b.crn_hits = r.u64();
  b.episodes = r.u64();
  b.cost_hint = r.f64();
  b.rpc_retries = r.u64();
  b.rpc_failures = r.u64();
  b.rpc_rtt_ns = get_histogram(r);
  return b;
}

}  // namespace

std::vector<std::uint8_t> encode_query(std::uint64_t request_id, const env::EnvQuery& query) {
  WireWriter w;
  put_header(w, MsgType::kQuery, request_id);
  w.u32(query.backend);
  put_slice_config(w, query.config);
  put_workload(w, query.workload);
  w.boolean(query.sim_params.has_value());
  if (query.sim_params) put_sim_params(w, *query.sim_params);
  w.boolean(query.crn);
  return w.take();
}

std::vector<std::uint8_t> encode_result(std::uint64_t request_id,
                                        const env::EpisodeResult& result) {
  WireWriter w;
  put_header(w, MsgType::kResult, request_id);
  w.u64(result.latencies_ms.size());
  for (double v : result.latencies_ms) w.f64(v);
  w.u64(result.frames_completed);
  w.i32(result.ul_tb_total);
  w.i32(result.ul_tb_err);
  w.i32(result.dl_tb_total);
  w.i32(result.dl_tb_err);
  w.u64(result.traces.size());
  for (const auto& t : result.traces) put_trace(w, t);
  return w.take();
}

std::vector<std::uint8_t> encode_error(std::uint64_t request_id, const std::string& message) {
  WireWriter w;
  put_header(w, MsgType::kError, request_id);
  w.str(message);
  return w.take();
}

std::vector<std::uint8_t> encode_stats_request(std::uint64_t request_id) {
  WireWriter w;
  put_header(w, MsgType::kStatsRequest, request_id);
  return w.take();
}

std::vector<std::uint8_t> encode_stats_snapshot(std::uint64_t request_id,
                                                const env::EnvServiceStats& stats) {
  WireWriter w;
  put_header(w, MsgType::kStatsSnapshot, request_id);
  w.u32(static_cast<std::uint32_t>(stats.backends.size()));
  for (const auto& backend : stats.backends) put_backend_stats(w, backend);
  w.u64(stats.offline_queries);
  w.u64(stats.online_queries);
  w.u64(stats.cache_hits);
  w.u64(stats.cache_misses);
  w.u64(stats.crn_hits);
  put_histogram(w, stats.query_latency_ns);
  put_histogram(w, stats.queue_depth);
  put_histogram(w, stats.rpc_service_ns);
  return w.take();
}

FrameHeader decode_header(WireReader& reader) {
  const std::uint32_t magic = reader.u32();
  if (magic != kWireMagic) {
    throw CodecError("rpc codec: bad frame magic");
  }
  const std::uint16_t version = reader.u16();
  if (version != kWireVersion) {
    throw CodecError("rpc codec: wire version mismatch (got " + std::to_string(version) +
                     ", speak " + std::to_string(kWireVersion) + ")");
  }
  const std::uint16_t type = reader.u16();
  if (type < static_cast<std::uint16_t>(MsgType::kQuery) ||
      type > static_cast<std::uint16_t>(MsgType::kStatsSnapshot)) {
    throw CodecError("rpc codec: unknown message type " + std::to_string(type));
  }
  FrameHeader header;
  header.type = static_cast<MsgType>(type);
  header.request_id = reader.u64();
  return header;
}

env::EnvQuery decode_query_body(WireReader& reader) {
  env::EnvQuery query;
  query.backend = reader.u32();
  query.config = get_slice_config(reader);
  query.workload = get_workload(reader);
  if (reader.boolean()) query.sim_params = get_sim_params(reader);
  query.crn = reader.boolean();
  reader.expect_done();
  return query;
}

env::EpisodeResult decode_result_body(WireReader& reader) {
  env::EpisodeResult result;
  const std::size_t latencies = checked_count(reader.u64(), sizeof(double), "latency");
  result.latencies_ms.reserve(latencies);
  for (std::size_t i = 0; i < latencies; ++i) result.latencies_ms.push_back(reader.f64());
  result.frames_completed = static_cast<std::size_t>(reader.u64());
  result.ul_tb_total = reader.i32();
  result.ul_tb_err = reader.i32();
  result.dl_tb_total = reader.i32();
  result.dl_tb_err = reader.i32();
  const std::size_t traces = checked_count(reader.u64(), sizeof(env::FrameTrace), "trace");
  result.traces.reserve(traces);
  for (std::size_t i = 0; i < traces; ++i) result.traces.push_back(get_trace(reader));
  reader.expect_done();
  return result;
}

std::string decode_error_body(WireReader& reader) {
  std::string message = reader.str();
  reader.expect_done();
  return message;
}

env::EnvServiceStats decode_stats_snapshot_body(WireReader& reader) {
  env::EnvServiceStats stats;
  const std::size_t backends = checked_count(reader.u32(), 64, "backend stats");
  stats.backends.reserve(backends);
  for (std::size_t i = 0; i < backends; ++i) stats.backends.push_back(get_backend_stats(reader));
  stats.offline_queries = reader.u64();
  stats.online_queries = reader.u64();
  stats.cache_hits = reader.u64();
  stats.cache_misses = reader.u64();
  stats.crn_hits = reader.u64();
  stats.query_latency_ns = get_histogram(reader);
  stats.queue_depth = get_histogram(reader);
  stats.rpc_service_ns = get_histogram(reader);
  reader.expect_done();
  return stats;
}

}  // namespace atlas::rpc
