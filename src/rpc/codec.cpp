#include "rpc/codec.hpp"

#include <bit>
#include <cstring>
#include <limits>

namespace atlas::rpc {

// ---- WireWriter -------------------------------------------------------------

void WireWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void WireWriter::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void WireWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void WireWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

// ---- WireReader -------------------------------------------------------------

void WireReader::need(std::size_t n) const {
  if (pos_ + n > bytes_.size()) {
    throw CodecError("rpc codec: truncated frame (needed " + std::to_string(n) + " bytes, " +
                     std::to_string(bytes_.size() - pos_) + " left)");
  }
}

std::uint8_t WireReader::u8() {
  need(1);
  return bytes_[pos_++];
}

std::uint16_t WireReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(bytes_[pos_]) |
                    static_cast<std::uint16_t>(bytes_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

double WireReader::f64() { return std::bit_cast<double>(u64()); }

bool WireReader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) throw CodecError("rpc codec: bad boolean byte");
  return v == 1;
}

std::string WireReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
  pos_ += n;
  return s;
}

void WireReader::expect_done() const {
  if (pos_ != bytes_.size()) {
    throw CodecError("rpc codec: " + std::to_string(bytes_.size() - pos_) +
                     " trailing bytes after message body");
  }
}

// ---- message bodies ---------------------------------------------------------

namespace {

void put_header(WireWriter& w, MsgType type, std::uint64_t request_id) {
  w.u32(kWireMagic);
  w.u16(kWireVersion);
  w.u16(static_cast<std::uint16_t>(type));
  w.u64(request_id);
}

void put_slice_config(WireWriter& w, const env::SliceConfig& c) {
  w.f64(c.bandwidth_ul);
  w.f64(c.bandwidth_dl);
  w.f64(c.mcs_offset_ul);
  w.f64(c.mcs_offset_dl);
  w.f64(c.backhaul_mbps);
  w.f64(c.cpu_ratio);
}

env::SliceConfig get_slice_config(WireReader& r) {
  env::SliceConfig c;
  c.bandwidth_ul = r.f64();
  c.bandwidth_dl = r.f64();
  c.mcs_offset_ul = r.f64();
  c.mcs_offset_dl = r.f64();
  c.backhaul_mbps = r.f64();
  c.cpu_ratio = r.f64();
  return c;
}

void put_workload(WireWriter& w, const env::Workload& wl) {
  w.i32(wl.traffic);
  w.f64(wl.duration_ms);
  w.f64(wl.distance_m);
  w.boolean(wl.random_walk);
  w.i32(wl.extra_users);
  w.boolean(wl.collect_traces);
  w.u64(wl.seed);
}

env::Workload get_workload(WireReader& r) {
  env::Workload wl;
  wl.traffic = r.i32();
  wl.duration_ms = r.f64();
  wl.distance_m = r.f64();
  wl.random_walk = r.boolean();
  wl.extra_users = r.i32();
  wl.collect_traces = r.boolean();
  wl.seed = r.u64();
  return wl;
}

void put_sim_params(WireWriter& w, const env::SimParams& p) {
  w.f64(p.baseline_loss_db);
  w.f64(p.enb_noise_figure_db);
  w.f64(p.ue_noise_figure_db);
  w.f64(p.backhaul_bw_mbps);
  w.f64(p.backhaul_delay_ms);
  w.f64(p.compute_time_ms);
  w.f64(p.loading_time_ms);
}

env::SimParams get_sim_params(WireReader& r) {
  env::SimParams p;
  p.baseline_loss_db = r.f64();
  p.enb_noise_figure_db = r.f64();
  p.ue_noise_figure_db = r.f64();
  p.backhaul_bw_mbps = r.f64();
  p.backhaul_delay_ms = r.f64();
  p.compute_time_ms = r.f64();
  p.loading_time_ms = r.f64();
  return p;
}

void put_trace(WireWriter& w, const env::FrameTrace& t) {
  w.u64(t.id);
  w.f64(t.created_ms);
  w.f64(t.sent_ms);
  w.f64(t.ul_done_ms);
  w.f64(t.edge_in_ms);
  w.f64(t.compute_start_ms);
  w.f64(t.compute_done_ms);
  w.f64(t.enb_dl_ms);
  w.f64(t.completed_ms);
}

env::FrameTrace get_trace(WireReader& r) {
  env::FrameTrace t;
  t.id = r.u64();
  t.created_ms = r.f64();
  t.sent_ms = r.f64();
  t.ul_done_ms = r.f64();
  t.edge_in_ms = r.f64();
  t.compute_start_ms = r.f64();
  t.compute_done_ms = r.f64();
  t.enb_dl_ms = r.f64();
  t.completed_ms = r.f64();
  return t;
}

/// Element-count sanity bound: a count whose decoded size would exceed the
/// frame cap is corruption, not data (prevents giant allocations from a
/// flipped length byte).
std::size_t checked_count(std::uint64_t n, std::size_t element_bytes, const char* what) {
  if (n > kMaxFrameBytes / element_bytes) {
    throw CodecError(std::string("rpc codec: implausible ") + what + " count " +
                     std::to_string(n));
  }
  return static_cast<std::size_t>(n);
}

}  // namespace

std::vector<std::uint8_t> encode_query(std::uint64_t request_id, const env::EnvQuery& query) {
  WireWriter w;
  put_header(w, MsgType::kQuery, request_id);
  w.u32(query.backend);
  put_slice_config(w, query.config);
  put_workload(w, query.workload);
  w.boolean(query.sim_params.has_value());
  if (query.sim_params) put_sim_params(w, *query.sim_params);
  w.boolean(query.crn);
  return w.take();
}

std::vector<std::uint8_t> encode_result(std::uint64_t request_id,
                                        const env::EpisodeResult& result) {
  WireWriter w;
  put_header(w, MsgType::kResult, request_id);
  w.u64(result.latencies_ms.size());
  for (double v : result.latencies_ms) w.f64(v);
  w.u64(result.frames_completed);
  w.i32(result.ul_tb_total);
  w.i32(result.ul_tb_err);
  w.i32(result.dl_tb_total);
  w.i32(result.dl_tb_err);
  w.u64(result.traces.size());
  for (const auto& t : result.traces) put_trace(w, t);
  return w.take();
}

std::vector<std::uint8_t> encode_error(std::uint64_t request_id, const std::string& message) {
  WireWriter w;
  put_header(w, MsgType::kError, request_id);
  w.str(message);
  return w.take();
}

FrameHeader decode_header(WireReader& reader) {
  const std::uint32_t magic = reader.u32();
  if (magic != kWireMagic) {
    throw CodecError("rpc codec: bad frame magic");
  }
  const std::uint16_t version = reader.u16();
  if (version != kWireVersion) {
    throw CodecError("rpc codec: wire version mismatch (got " + std::to_string(version) +
                     ", speak " + std::to_string(kWireVersion) + ")");
  }
  const std::uint16_t type = reader.u16();
  if (type < static_cast<std::uint16_t>(MsgType::kQuery) ||
      type > static_cast<std::uint16_t>(MsgType::kError)) {
    throw CodecError("rpc codec: unknown message type " + std::to_string(type));
  }
  FrameHeader header;
  header.type = static_cast<MsgType>(type);
  header.request_id = reader.u64();
  return header;
}

env::EnvQuery decode_query_body(WireReader& reader) {
  env::EnvQuery query;
  query.backend = reader.u32();
  query.config = get_slice_config(reader);
  query.workload = get_workload(reader);
  if (reader.boolean()) query.sim_params = get_sim_params(reader);
  query.crn = reader.boolean();
  reader.expect_done();
  return query;
}

env::EpisodeResult decode_result_body(WireReader& reader) {
  env::EpisodeResult result;
  const std::size_t latencies = checked_count(reader.u64(), sizeof(double), "latency");
  result.latencies_ms.reserve(latencies);
  for (std::size_t i = 0; i < latencies; ++i) result.latencies_ms.push_back(reader.f64());
  result.frames_completed = static_cast<std::size_t>(reader.u64());
  result.ul_tb_total = reader.i32();
  result.ul_tb_err = reader.i32();
  result.dl_tb_total = reader.i32();
  result.dl_tb_err = reader.i32();
  const std::size_t traces = checked_count(reader.u64(), sizeof(env::FrameTrace), "trace");
  result.traces.reserve(traces);
  for (std::size_t i = 0; i < traces; ++i) result.traces.push_back(get_trace(reader));
  reader.expect_done();
  return result;
}

std::string decode_error_body(WireReader& reader) {
  std::string message = reader.str();
  reader.expect_done();
  return message;
}

}  // namespace atlas::rpc
