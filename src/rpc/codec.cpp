#include "rpc/codec.hpp"

#include <bit>
#include <cstring>
#include <limits>

namespace atlas::rpc {

// ---- WireWriter -------------------------------------------------------------

void WireWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void WireWriter::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void WireWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void WireWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

// ---- WireReader -------------------------------------------------------------

void WireReader::need(std::size_t n) const {
  if (pos_ + n > bytes_.size()) {
    throw CodecError("rpc codec: truncated frame (needed " + std::to_string(n) + " bytes, " +
                     std::to_string(bytes_.size() - pos_) + " left)");
  }
}

std::uint8_t WireReader::u8() {
  need(1);
  return bytes_[pos_++];
}

std::uint16_t WireReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(bytes_[pos_]) |
                    static_cast<std::uint16_t>(bytes_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

double WireReader::f64() { return std::bit_cast<double>(u64()); }

bool WireReader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) throw CodecError("rpc codec: bad boolean byte");
  return v == 1;
}

std::string WireReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
  pos_ += n;
  return s;
}

void WireReader::expect_done() const {
  if (pos_ != bytes_.size()) {
    throw CodecError("rpc codec: " + std::to_string(bytes_.size() - pos_) +
                     " trailing bytes after message body");
  }
}

// ---- message bodies ---------------------------------------------------------

namespace {

void put_header(WireWriter& w, MsgType type, std::uint64_t request_id,
                std::uint16_t version = kWireVersion) {
  w.u32(kWireMagic);
  w.u16(version);
  w.u16(static_cast<std::uint16_t>(type));
  w.u64(request_id);
}

void put_slice_config(WireWriter& w, const env::SliceConfig& c) {
  w.f64(c.bandwidth_ul);
  w.f64(c.bandwidth_dl);
  w.f64(c.mcs_offset_ul);
  w.f64(c.mcs_offset_dl);
  w.f64(c.backhaul_mbps);
  w.f64(c.cpu_ratio);
}

env::SliceConfig get_slice_config(WireReader& r) {
  env::SliceConfig c;
  c.bandwidth_ul = r.f64();
  c.bandwidth_dl = r.f64();
  c.mcs_offset_ul = r.f64();
  c.mcs_offset_dl = r.f64();
  c.backhaul_mbps = r.f64();
  c.cpu_ratio = r.f64();
  return c;
}

void put_workload(WireWriter& w, const env::Workload& wl) {
  w.i32(wl.traffic);
  w.f64(wl.duration_ms);
  w.f64(wl.distance_m);
  w.boolean(wl.random_walk);
  w.i32(wl.extra_users);
  w.boolean(wl.collect_traces);
  w.u64(wl.seed);
}

env::Workload get_workload(WireReader& r) {
  env::Workload wl;
  wl.traffic = r.i32();
  wl.duration_ms = r.f64();
  wl.distance_m = r.f64();
  wl.random_walk = r.boolean();
  wl.extra_users = r.i32();
  wl.collect_traces = r.boolean();
  wl.seed = r.u64();
  return wl;
}

void put_sim_params(WireWriter& w, const env::SimParams& p) {
  w.f64(p.baseline_loss_db);
  w.f64(p.enb_noise_figure_db);
  w.f64(p.ue_noise_figure_db);
  w.f64(p.backhaul_bw_mbps);
  w.f64(p.backhaul_delay_ms);
  w.f64(p.compute_time_ms);
  w.f64(p.loading_time_ms);
}

env::SimParams get_sim_params(WireReader& r) {
  env::SimParams p;
  p.baseline_loss_db = r.f64();
  p.enb_noise_figure_db = r.f64();
  p.ue_noise_figure_db = r.f64();
  p.backhaul_bw_mbps = r.f64();
  p.backhaul_delay_ms = r.f64();
  p.compute_time_ms = r.f64();
  p.loading_time_ms = r.f64();
  return p;
}

void put_trace(WireWriter& w, const env::FrameTrace& t) {
  w.u64(t.id);
  w.f64(t.created_ms);
  w.f64(t.sent_ms);
  w.f64(t.ul_done_ms);
  w.f64(t.edge_in_ms);
  w.f64(t.compute_start_ms);
  w.f64(t.compute_done_ms);
  w.f64(t.enb_dl_ms);
  w.f64(t.completed_ms);
}

env::FrameTrace get_trace(WireReader& r) {
  env::FrameTrace t;
  t.id = r.u64();
  t.created_ms = r.f64();
  t.sent_ms = r.f64();
  t.ul_done_ms = r.f64();
  t.edge_in_ms = r.f64();
  t.compute_start_ms = r.f64();
  t.compute_done_ms = r.f64();
  t.enb_dl_ms = r.f64();
  t.completed_ms = r.f64();
  return t;
}

/// Element-count sanity bound: a count whose decoded size would exceed the
/// frame cap is corruption, not data (prevents giant allocations from a
/// flipped length byte).
std::size_t checked_count(std::uint64_t n, std::size_t element_bytes, const char* what) {
  if (n > kMaxFrameBytes / element_bytes) {
    throw CodecError(std::string("rpc codec: implausible ") + what + " count " +
                     std::to_string(n));
  }
  return static_cast<std::size_t>(n);
}

/// Sparse histogram: u32 occupied-bucket count | (u32 index, u64 count)* |
/// u64 sum. Merges bit-exactly (bucket counts are integers).
void put_histogram(WireWriter& w, const telemetry::HistogramData& h) {
  const auto& counts = h.counts();
  std::uint32_t occupied = 0;
  for (std::uint64_t c : counts) occupied += c != 0 ? 1 : 0;
  w.u32(occupied);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    w.u32(static_cast<std::uint32_t>(i));
    w.u64(counts[i]);
  }
  w.u64(h.sum());
}

telemetry::HistogramData get_histogram(WireReader& r) {
  const std::size_t occupied = checked_count(r.u32(), 12, "histogram bucket");
  if (occupied == 0) {
    if (r.u64() != 0) throw CodecError("rpc codec: empty histogram with nonzero sum");
    return {};
  }
  std::vector<std::uint64_t> counts(telemetry::kBucketCount, 0);
  for (std::size_t i = 0; i < occupied; ++i) {
    const std::uint32_t index = r.u32();
    if (index >= telemetry::kBucketCount) {
      throw CodecError("rpc codec: histogram bucket index out of range");
    }
    counts[index] = r.u64();
  }
  return telemetry::HistogramData::from_counts(std::move(counts), r.u64());
}

/// EpisodeResult body, shared by kResult frames and memo-entry snapshots —
/// one layout so a migrated memo entry round-trips exactly like a served one.
void put_result_body(WireWriter& w, const env::EpisodeResult& result) {
  w.u64(result.latencies_ms.size());
  for (double v : result.latencies_ms) w.f64(v);
  w.u64(result.frames_completed);
  w.i32(result.ul_tb_total);
  w.i32(result.ul_tb_err);
  w.i32(result.dl_tb_total);
  w.i32(result.dl_tb_err);
  w.u64(result.traces.size());
  for (const auto& t : result.traces) put_trace(w, t);
}

env::EpisodeResult get_result_body(WireReader& r) {
  env::EpisodeResult result;
  const std::size_t latencies = checked_count(r.u64(), sizeof(double), "latency");
  result.latencies_ms.reserve(latencies);
  for (std::size_t i = 0; i < latencies; ++i) result.latencies_ms.push_back(r.f64());
  result.frames_completed = static_cast<std::size_t>(r.u64());
  result.ul_tb_total = r.i32();
  result.ul_tb_err = r.i32();
  result.dl_tb_total = r.i32();
  result.dl_tb_err = r.i32();
  const std::size_t traces = checked_count(r.u64(), sizeof(env::FrameTrace), "trace");
  result.traces.reserve(traces);
  for (std::size_t i = 0; i < traces; ++i) result.traces.push_back(get_trace(r));
  return result;
}

void put_backend_info(WireWriter& w, const env::WorkerBackendInfo& info) {
  w.str(info.name);
  w.u8(info.kind == env::BackendKind::kOnline ? 1 : 0);
  w.f64(info.cost_hint);
  w.boolean(info.accepts_sim_params);
  w.u64(info.params_digest);
}

env::WorkerBackendInfo get_backend_info(WireReader& r) {
  env::WorkerBackendInfo info;
  info.name = r.str();
  info.kind = r.u8() == 1 ? env::BackendKind::kOnline : env::BackendKind::kOffline;
  info.cost_hint = r.f64();
  info.accepts_sim_params = r.boolean();
  info.params_digest = r.u64();
  return info;
}

void put_memo_entry(WireWriter& w, const env::MemoEntrySnapshot& entry) {
  w.u64(entry.key.size());
  for (double v : entry.key) w.f64(v);
  w.f64(entry.cost);
  put_result_body(w, entry.result);
}

env::MemoEntrySnapshot get_memo_entry(WireReader& r) {
  env::MemoEntrySnapshot entry;
  const std::size_t key_len = checked_count(r.u64(), sizeof(double), "memo key");
  entry.key.reserve(key_len);
  for (std::size_t i = 0; i < key_len; ++i) entry.key.push_back(r.f64());
  entry.cost = r.f64();
  entry.result = get_result_body(r);
  return entry;
}

void put_memo_list(WireWriter& w, const std::vector<env::MemoEntrySnapshot>& memo) {
  w.u64(memo.size());
  for (const auto& entry : memo) put_memo_entry(w, entry);
}

std::vector<env::MemoEntrySnapshot> get_memo_list(WireReader& r) {
  // Element floor: key length + cost + result scalar block.
  const std::size_t n = checked_count(r.u64(), 64, "memo entry");
  std::vector<env::MemoEntrySnapshot> memo;
  memo.reserve(n);
  for (std::size_t i = 0; i < n; ++i) memo.push_back(get_memo_entry(r));
  return memo;
}

void put_backend_stats(WireWriter& w, const env::BackendStats& b, std::uint16_t version) {
  w.str(b.name);
  w.u8(b.kind == env::BackendKind::kOnline ? 1 : 0);
  w.u64(b.queries);
  w.u64(b.cache_hits);
  w.u64(b.cache_misses);
  w.u64(b.crn_hits);
  w.u64(b.episodes);
  w.f64(b.cost_hint);
  w.u64(b.rpc_retries);
  w.u64(b.rpc_failures);
  put_histogram(w, b.rpc_rtt_ns);
  if (version >= 5) {
    w.u64(b.shedded);
    w.u64(b.deadline_rejected);
    w.u64(b.rpc_reconnects);
  }
}

env::BackendStats get_backend_stats(WireReader& r, std::uint16_t version) {
  env::BackendStats b;
  b.name = r.str();
  b.kind = r.u8() == 1 ? env::BackendKind::kOnline : env::BackendKind::kOffline;
  b.queries = r.u64();
  b.cache_hits = r.u64();
  b.cache_misses = r.u64();
  b.crn_hits = r.u64();
  b.episodes = r.u64();
  b.cost_hint = r.f64();
  b.rpc_retries = r.u64();
  b.rpc_failures = r.u64();
  b.rpc_rtt_ns = get_histogram(r);
  if (version >= 5) {
    b.shedded = r.u64();
    b.deadline_rejected = r.u64();
    b.rpc_reconnects = r.u64();
  }
  return b;
}

env::RejectReason get_reject_reason(WireReader& r) {
  const std::uint8_t raw = r.u8();
  if (raw > static_cast<std::uint8_t>(env::RejectReason::kDeadlineExceeded)) {
    throw CodecError("rpc codec: bad reject reason " + std::to_string(raw));
  }
  return static_cast<env::RejectReason>(raw);
}

}  // namespace

std::vector<std::uint8_t> encode_query(std::uint64_t request_id, const env::EnvQuery& query,
                                       std::uint16_t version) {
  WireWriter w;
  put_header(w, MsgType::kQuery, request_id, version);
  w.u32(query.backend);
  put_slice_config(w, query.config);
  put_workload(w, query.workload);
  w.boolean(query.sim_params.has_value());
  if (query.sim_params) put_sim_params(w, *query.sim_params);
  w.boolean(query.crn);
  if (version >= 5) {
    w.f64(query.deadline_ms);
    w.u8(static_cast<std::uint8_t>(query.priority));
  }
  return w.take();
}

std::vector<std::uint8_t> encode_result(std::uint64_t request_id,
                                        const env::EpisodeResult& result,
                                        std::uint16_t version) {
  WireWriter w;
  put_header(w, MsgType::kResult, request_id, version);
  put_result_body(w, result);
  // Rejection rides only on served results, never in memo snapshots — a
  // rejected query produced no episode, so nothing of it is ever memoized.
  if (version >= 5) w.u8(static_cast<std::uint8_t>(result.rejected));
  return w.take();
}

std::vector<std::uint8_t> encode_error(std::uint64_t request_id, const std::string& message,
                                       std::uint16_t version) {
  WireWriter w;
  put_header(w, MsgType::kError, request_id, version);
  w.str(message);
  return w.take();
}

std::vector<std::uint8_t> encode_stats_request(std::uint64_t request_id, std::uint16_t version) {
  WireWriter w;
  put_header(w, MsgType::kStatsRequest, request_id, version);
  return w.take();
}

std::vector<std::uint8_t> encode_stats_snapshot(std::uint64_t request_id,
                                                const env::EnvServiceStats& stats,
                                                std::uint16_t version) {
  WireWriter w;
  put_header(w, MsgType::kStatsSnapshot, request_id, version);
  w.u32(static_cast<std::uint32_t>(stats.backends.size()));
  for (const auto& backend : stats.backends) put_backend_stats(w, backend, version);
  w.u64(stats.offline_queries);
  w.u64(stats.online_queries);
  w.u64(stats.cache_hits);
  w.u64(stats.cache_misses);
  w.u64(stats.crn_hits);
  put_histogram(w, stats.query_latency_ns);
  put_histogram(w, stats.queue_depth);
  put_histogram(w, stats.rpc_service_ns);
  if (version >= 5) {
    w.u64(stats.shed_total);
    w.u64(stats.deadline_rejected);
  }
  return w.take();
}

FrameHeader decode_header(WireReader& reader) {
  const std::uint32_t magic = reader.u32();
  if (magic != kWireMagic) {
    throw CodecError("rpc codec: bad frame magic");
  }
  const std::uint16_t version = reader.u16();
  if (version < kMinWireVersion || version > kWireVersion) {
    throw CodecError("rpc codec: wire version mismatch (got " + std::to_string(version) +
                     ", speak " + std::to_string(kMinWireVersion) + ".." +
                     std::to_string(kWireVersion) + ")");
  }
  const std::uint16_t type = reader.u16();
  if (type < static_cast<std::uint16_t>(MsgType::kQuery) ||
      type > static_cast<std::uint16_t>(MsgType::kCancel)) {
    throw CodecError("rpc codec: unknown message type " + std::to_string(type));
  }
  if (type >= kFirstV4MsgType && version < 4) {
    throw CodecError("rpc codec: v4 message type " + std::to_string(type) +
                     " on a v" + std::to_string(version) + " frame");
  }
  FrameHeader header;
  header.type = static_cast<MsgType>(type);
  header.request_id = reader.u64();
  header.version = version;
  return header;
}

env::EnvQuery decode_query_body(WireReader& reader, std::uint16_t version) {
  env::EnvQuery query;
  query.backend = reader.u32();
  query.config = get_slice_config(reader);
  query.workload = get_workload(reader);
  if (reader.boolean()) query.sim_params = get_sim_params(reader);
  query.crn = reader.boolean();
  if (version >= 5) {
    query.deadline_ms = reader.f64();
    const std::uint8_t priority = reader.u8();
    if (priority > static_cast<std::uint8_t>(env::QueryPriority::kNormal)) {
      throw CodecError("rpc codec: bad query priority " + std::to_string(priority));
    }
    query.priority = static_cast<env::QueryPriority>(priority);
  }
  reader.expect_done();
  return query;
}

env::EpisodeResult decode_result_body(WireReader& reader, std::uint16_t version) {
  env::EpisodeResult result = get_result_body(reader);
  if (version >= 5) result.rejected = get_reject_reason(reader);
  reader.expect_done();
  return result;
}

std::string decode_error_body(WireReader& reader) {
  std::string message = reader.str();
  reader.expect_done();
  return message;
}

std::vector<std::uint8_t> encode_hello(std::uint64_t request_id) {
  WireWriter w;
  put_header(w, MsgType::kHello, request_id);
  return w.take();
}

std::vector<std::uint8_t> encode_announce(std::uint64_t request_id,
                                          const env::WorkerAnnounce& announce) {
  WireWriter w;
  put_header(w, MsgType::kAnnounce, request_id);
  w.str(announce.build);
  w.u16(announce.wire_version);
  w.u32(announce.threads);
  w.u64(announce.cache_capacity);
  w.u32(static_cast<std::uint32_t>(announce.backends.size()));
  for (const auto& backend : announce.backends) put_backend_info(w, backend);
  return w.take();
}

std::vector<std::uint8_t> encode_heartbeat(std::uint64_t request_id) {
  WireWriter w;
  put_header(w, MsgType::kHeartbeat, request_id);
  return w.take();
}

std::vector<std::uint8_t> encode_heartbeat_ack(std::uint64_t request_id,
                                               const env::WorkerHealth& health) {
  WireWriter w;
  put_header(w, MsgType::kHeartbeatAck, request_id);
  w.u64(health.outstanding);
  w.u64(health.cache_entries);
  w.u64(health.episodes);
  return w.take();
}

std::vector<std::uint8_t> encode_memo_export(std::uint64_t request_id, env::BackendId backend) {
  WireWriter w;
  put_header(w, MsgType::kMemoExport, request_id);
  w.u32(backend);
  return w.take();
}

std::vector<std::uint8_t> encode_memo_snapshot(std::uint64_t request_id,
                                               const std::vector<env::MemoEntrySnapshot>& memo) {
  WireWriter w;
  put_header(w, MsgType::kMemoSnapshot, request_id);
  put_memo_list(w, memo);
  return w.take();
}

std::vector<std::uint8_t> encode_install_backend(std::uint64_t request_id,
                                                 const env::BackendInstallRequest& request) {
  WireWriter w;
  put_header(w, MsgType::kInstallBackend, request_id);
  w.i32(request.target_backend);
  put_backend_info(w, request.descriptor);
  w.boolean(request.sim_params.has_value());
  if (request.sim_params) put_sim_params(w, *request.sim_params);
  put_memo_list(w, request.memo);
  return w.take();
}

std::vector<std::uint8_t> encode_install_ack(std::uint64_t request_id,
                                             const env::InstallResult& result) {
  WireWriter w;
  put_header(w, MsgType::kInstallAck, request_id);
  w.u32(result.backend);
  w.u64(result.imported);
  return w.take();
}

std::vector<std::uint8_t> encode_cancel(std::uint64_t request_id) {
  WireWriter w;
  put_header(w, MsgType::kCancel, request_id);
  return w.take();
}

env::WorkerAnnounce decode_announce_body(WireReader& reader) {
  env::WorkerAnnounce announce;
  announce.build = reader.str();
  announce.wire_version = reader.u16();
  announce.threads = reader.u32();
  announce.cache_capacity = reader.u64();
  const std::size_t backends = checked_count(reader.u32(), 32, "announced backend");
  announce.backends.reserve(backends);
  for (std::size_t i = 0; i < backends; ++i) announce.backends.push_back(get_backend_info(reader));
  reader.expect_done();
  return announce;
}

env::WorkerHealth decode_heartbeat_ack_body(WireReader& reader) {
  env::WorkerHealth health;
  health.outstanding = reader.u64();
  health.cache_entries = reader.u64();
  health.episodes = reader.u64();
  reader.expect_done();
  return health;
}

env::BackendId decode_memo_export_body(WireReader& reader) {
  const env::BackendId backend = reader.u32();
  reader.expect_done();
  return backend;
}

std::vector<env::MemoEntrySnapshot> decode_memo_snapshot_body(WireReader& reader) {
  std::vector<env::MemoEntrySnapshot> memo = get_memo_list(reader);
  reader.expect_done();
  return memo;
}

env::BackendInstallRequest decode_install_backend_body(WireReader& reader) {
  env::BackendInstallRequest request;
  request.target_backend = reader.i32();
  request.descriptor = get_backend_info(reader);
  if (reader.boolean()) request.sim_params = get_sim_params(reader);
  request.memo = get_memo_list(reader);
  reader.expect_done();
  return request;
}

env::InstallResult decode_install_ack_body(WireReader& reader) {
  env::InstallResult result;
  result.backend = reader.u32();
  result.imported = reader.u64();
  reader.expect_done();
  return result;
}

env::EnvServiceStats decode_stats_snapshot_body(WireReader& reader, std::uint16_t version) {
  env::EnvServiceStats stats;
  const std::size_t backends = checked_count(reader.u32(), 64, "backend stats");
  stats.backends.reserve(backends);
  for (std::size_t i = 0; i < backends; ++i) {
    stats.backends.push_back(get_backend_stats(reader, version));
  }
  stats.offline_queries = reader.u64();
  stats.online_queries = reader.u64();
  stats.cache_hits = reader.u64();
  stats.cache_misses = reader.u64();
  stats.crn_hits = reader.u64();
  stats.query_latency_ns = get_histogram(reader);
  stats.queue_depth = get_histogram(reader);
  stats.rpc_service_ns = get_histogram(reader);
  if (version >= 5) {
    stats.shed_total = reader.u64();
    stats.deadline_rejected = reader.u64();
  }
  reader.expect_done();
  return stats;
}

}  // namespace atlas::rpc
