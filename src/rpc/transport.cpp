#include "rpc/transport.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <thread>

#include "rpc/codec.hpp"  // kMaxFrameBytes

namespace atlas::rpc {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

/// send(2) the whole buffer, riding out EINTR/partial writes. MSG_NOSIGNAL:
/// a vanished peer must surface as EPIPE (TransportError), not SIGPIPE.
void write_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t wrote = ::send(fd, data, n, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw_errno("rpc transport: write failed");
    }
    data += wrote;
    n -= static_cast<std::size_t>(wrote);
  }
}

/// read(2) exactly n bytes. Returns false on EOF at offset 0 (clean close);
/// throws on EOF mid-buffer (truncated frame) or on errors.
bool read_exact(int fd, std::uint8_t* data, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, data + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("rpc transport: read failed");
    }
    if (r == 0) {
      if (got == 0) return false;
      throw TransportError("rpc transport: connection closed mid-frame (truncated)");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void encode_len(std::uint8_t out[4], std::uint32_t n) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(n >> (8 * i));
}

std::uint32_t decode_len(const std::uint8_t in[4]) {
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i) n |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  return n;
}

}  // namespace

// ---- TcpTransport -----------------------------------------------------------

TcpTransport::TcpTransport(int fd) : fd_(fd) {
  // Frames are small request/response units; Nagle would add 40 ms stalls.
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpTransport::~TcpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<TcpTransport> TcpTransport::connect(const std::string& host,
                                                    std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &res) != 0 || res == nullptr) {
    throw TransportError("rpc transport: cannot resolve " + host);
  }
  int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(res);
    throw_errno("rpc transport: socket failed");
  }
  if (::connect(fd, res->ai_addr, res->ai_addrlen) != 0) {
    const int saved = errno;
    ::close(fd);
    ::freeaddrinfo(res);
    errno = saved;
    throw_errno("rpc transport: connect to " + host + ":" + service + " failed");
  }
  ::freeaddrinfo(res);
  return std::make_unique<TcpTransport>(fd);
}

void TcpTransport::send(std::span<const std::uint8_t> frame) {
  if (frame.size() > kMaxFrameBytes) {
    throw TransportError("rpc transport: frame exceeds kMaxFrameBytes");
  }
  std::uint8_t prefix[4];
  encode_len(prefix, static_cast<std::uint32_t>(frame.size()));
  std::scoped_lock lock(send_mutex_);
  write_all(fd_, prefix, sizeof(prefix));
  write_all(fd_, frame.data(), frame.size());
}

bool TcpTransport::recv(std::vector<std::uint8_t>& frame) {
  std::uint8_t prefix[4];
  if (!read_exact(fd_, prefix, sizeof(prefix))) return false;
  const std::uint32_t n = decode_len(prefix);
  if (n > kMaxFrameBytes) {
    throw TransportError("rpc transport: implausible frame length " + std::to_string(n) +
                         " (corrupted stream?)");
  }
  frame.resize(n);
  if (!read_exact(fd_, frame.data(), n)) {
    throw TransportError("rpc transport: connection closed mid-frame (truncated)");
  }
  return true;
}

void TcpTransport::close() {
  // shutdown (not close) so a concurrent blocked recv wakes with EOF instead
  // of racing a reused fd; the destructor releases the descriptor.
  ::shutdown(fd_, SHUT_RDWR);
}

// ---- TcpListener ------------------------------------------------------------

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("rpc listener: socket failed");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("rpc listener: bind to 127.0.0.1:" + std::to_string(port) + " failed");
  }
  if (::listen(fd_, SOMAXCONN) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("rpc listener: listen failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("rpc listener: getsockname failed");
  }
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<TcpTransport> TcpListener::accept() {
  for (;;) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) return std::make_unique<TcpTransport>(client);
    // Only a dead listener ends the accept loop (EBADF/EINVAL/ENOTSOCK after
    // close()). Everything else — aborted handshakes, fd exhaustion, the
    // pending-network errors accept(2) documents as retryable (ENETDOWN,
    // EHOSTUNREACH, ...) — is transient for a long-running worker: back off
    // briefly (except for the instant peer-gave-up cases) and keep serving.
    if (errno == EBADF || errno == EINVAL || errno == ENOTSOCK) return nullptr;
    if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) continue;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void TcpListener::close() { ::shutdown(fd_, SHUT_RDWR); }

// ---- loopback ---------------------------------------------------------------

namespace {

/// Two directional frame queues; endpoint `side` receives from queues[side]
/// and sends into queues[1 - side].
struct LoopbackState {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::vector<std::uint8_t>> queues[2];
  bool closed[2] = {false, false};  ///< closed[i]: endpoint i called close().
};

class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(std::shared_ptr<LoopbackState> state, int side)
      : state_(std::move(state)), side_(side) {}
  ~LoopbackTransport() override { close(); }

  void send(std::span<const std::uint8_t> frame) override {
    std::scoped_lock lock(state_->mutex);
    if (state_->closed[side_] || state_->closed[1 - side_]) {
      throw TransportError("rpc loopback: channel closed");
    }
    state_->queues[1 - side_].emplace_back(frame.begin(), frame.end());
    state_->cv.notify_all();
  }

  bool recv(std::vector<std::uint8_t>& frame) override {
    std::unique_lock lock(state_->mutex);
    state_->cv.wait(lock, [&] {
      return !state_->queues[side_].empty() || state_->closed[side_] ||
             state_->closed[1 - side_];
    });
    // Drain queued frames before reporting EOF, like a real socket.
    if (!state_->queues[side_].empty()) {
      frame = std::move(state_->queues[side_].front());
      state_->queues[side_].pop_front();
      return true;
    }
    return false;
  }

  void close() override {
    std::scoped_lock lock(state_->mutex);
    state_->closed[side_] = true;
    state_->cv.notify_all();
  }

 private:
  std::shared_ptr<LoopbackState> state_;
  int side_;
};

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>> make_loopback_pair() {
  auto state = std::make_shared<LoopbackState>();
  return {std::make_unique<LoopbackTransport>(state, 0),
          std::make_unique<LoopbackTransport>(state, 1)};
}

}  // namespace atlas::rpc
