#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace atlas::rpc {

/// Transport-layer failure: connect refused, peer reset, truncated frame,
/// implausible length prefix. Distinct from CodecError (malformed payload)
/// so the client can retry transport faults but not semantic ones.
struct TransportError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// A bidirectional, frame-oriented byte channel. `send` delivers one whole
/// frame payload atomically with respect to other senders (internally
/// locked); `recv` blocks for the next frame. Implementations: TCP with a
/// u32 length prefix on the wire, and an in-process loopback pair for tests.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Send one frame. Throws TransportError when the channel is down.
  virtual void send(std::span<const std::uint8_t> frame) = 0;

  /// Receive the next frame into `frame`. Returns false on clean shutdown
  /// (peer closed); throws TransportError on a truncated/poisoned stream.
  virtual bool recv(std::vector<std::uint8_t>& frame) = 0;

  /// Shut the channel down; wakes any blocked recv (which then returns
  /// false). Safe to call from any thread, repeatedly.
  virtual void close() = 0;
};

/// Length-prefixed framing over a connected TCP socket:
///
///   u32 payload_bytes (little-endian) | payload
///
/// A prefix beyond kMaxFrameBytes poisons the stream (TransportError) —
/// garbage lengths must not become allocations.
class TcpTransport final : public Transport {
 public:
  /// Adopt an already-connected socket fd (from TcpListener::accept).
  explicit TcpTransport(int fd);
  ~TcpTransport() override;

  /// Connect to host:port (numeric IPv4 or a resolvable name).
  static std::unique_ptr<TcpTransport> connect(const std::string& host, std::uint16_t port);

  void send(std::span<const std::uint8_t> frame) override;
  bool recv(std::vector<std::uint8_t>& frame) override;
  void close() override;

 private:
  int fd_ = -1;
  std::mutex send_mutex_;  ///< One frame on the wire at a time.
};

/// Listening socket bound to 127.0.0.1; port 0 picks an ephemeral port
/// (read it back via port()).
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Block for the next connection; nullptr once close() was called.
  std::unique_ptr<TcpTransport> accept();
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// In-process channel pair: frames sent on one endpoint arrive at the other.
/// Used by tests (single-flight over RPC without sockets) and by the
/// loopback bench. Either endpoint's close() EOFs the peer after any queued
/// frames drain.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>> make_loopback_pair();

}  // namespace atlas::rpc
