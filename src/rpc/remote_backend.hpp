#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include <chrono>
#include <vector>

#include "env/backend.hpp"
#include "env/client.hpp"
#include "env/farm_types.hpp"
#include "rpc/transport.hpp"
#include "telemetry/histogram.hpp"

namespace atlas::rpc {

enum class MsgType : std::uint16_t;  // rpc/codec.hpp

struct RemoteBackendOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Name under which the backend reports in BackendStats.
  std::string name = "remote";
  /// How the OWNING service meters queries to this backend. A remote
  /// simulator farm is kOffline (cacheable client-side); a remote testbed
  /// is kOnline (every query is a metered real interaction).
  env::BackendKind kind = env::BackendKind::kOffline;
  /// Backend id inside the WORKER's EnvService that queries are rewritten
  /// to (a worker registers its backends 0..N-1 at startup).
  env::BackendId remote_backend = 0;
  /// Per-query deadline. A request that misses it is abandoned (a late
  /// response is dropped by the multiplexer, and a best-effort kCancel tells
  /// the worker to skip the episode if still queued) and retried.
  double timeout_ms = 30000.0;
  /// Deadline for control-plane round-trips (hello / heartbeat / stats /
  /// memo export / install). Much shorter than an episode: these answer on
  /// the worker's read thread, so a slow answer means a sick worker.
  double control_timeout_ms = 5000.0;
  /// Reconnect backoff: FAILED connect attempts (the transport factory
  /// throwing) are spaced out exponentially with deterministic jitter, so a
  /// dead worker is not hammered in lockstep from every shard. A successful
  /// connect resets the schedule; dropping a live connection (worker
  /// restarted) still reconnects immediately on the next attempt.
  double backoff_base_ms = 10.0;
  double backoff_cap_ms = 2000.0;
  /// Additional attempts after the first, for timeouts and transport faults.
  /// Worker-reported errors (bad query) are NOT retried — they are
  /// deterministic. Offline episodes retry safely: results are
  /// deterministic per seed, and a cacheable retry coalesces onto its
  /// still-running twin via the worker's single-flight (a worker running
  /// with caching disabled, or a collect_traces query, may compute the
  /// episode twice — identical result, wasted cycles, never wrong). A
  /// kOnline backend is at-most-once: after the query is on the wire, any
  /// fault fails with RpcError instead of re-running a metered live
  /// interaction the worker may already have executed. Connect/send
  /// failures (query never reached the worker) retry for both kinds.
  int max_retries = 2;
  /// Relative recomputation cost fed to cost-aware cache eviction. Remote
  /// episodes pay serialization + network + a farm's queue; keep them
  /// memoized long after same-priced-as-free simulator entries are gone.
  double cost_hint = 1000.0;
  /// Whether per-query SimParams overrides are forwarded (the worker-side
  /// backend still validates); Stage 1 against a remote simulator needs it.
  bool accepts_sim_params = true;
  /// Test seam: build the connection from something other than TCP (e.g. a
  /// loopback endpoint served by an in-process EpisodeRpcServer). Called on
  /// (re)connect; must return a fresh transport or throw TransportError.
  std::function<std::unique_ptr<Transport>()> transport_factory;
};

/// Client-side health view of one remote worker, surfaced instead of burying
/// failures in retry counters; the FarmController reads this (plus heartbeat
/// round-trips) to decide suspect/dead transitions.
struct RemoteLiveness {
  bool connected = false;                  ///< a live multiplexed connection exists
  std::uint64_t consecutive_timeouts = 0;  ///< deadline misses since the last success
  std::uint64_t consecutive_connect_failures = 0;
  std::uint64_t rpc_failures = 0;
  /// Milliseconds since the last successful round-trip (episode, stats, or
  /// heartbeat); negative when nothing has succeeded yet.
  double since_last_success_ms = -1.0;
};

/// An episode-RPC worker behind the `EnvBackend` contract: `execute`
/// serializes the query (bit-identical wire codec), sends it over a
/// multiplexed connection, and blocks for the tagged response. Many service
/// pool threads call `execute` concurrently; all share one connection whose
/// reader thread demultiplexes responses by request id.
///
/// Failures surface two ways: counters (`rpc_retries` / `rpc_failures`,
/// visible in `BackendStats` via `fill_stats`) and, once retries are
/// exhausted, an `RpcError` thrown to the caller.
class RemoteBackend final : public env::EnvBackend {
 public:
  explicit RemoteBackend(RemoteBackendOptions options);
  ~RemoteBackend() override;

  env::EpisodeResult execute(const env::EnvQuery& query) const override;
  /// Hedge-aware execute: polls `cancel` while parked on the RPC future and,
  /// when it fires, abandons the request (forget + best-effort kCancel to the
  /// worker) and throws env::EpisodeCancelled — the losing half of a hedged
  /// dispatch stops consuming a connection slot within milliseconds.
  env::EpisodeResult execute_cancellable(const env::EnvQuery& query,
                                         const env::CancelToken& cancel) const override;
  env::BackendKind kind() const noexcept override { return options_.kind; }
  const std::string& name() const noexcept override { return options_.name; }
  double cost_hint() const noexcept override { return options_.cost_hint; }
  bool accepts_sim_params() const noexcept override { return options_.accepts_sim_params; }
  void fill_stats(env::BackendStats& stats) const override;
  void reset_stats() const noexcept override {
    retries_.store(0, std::memory_order_relaxed);
    failures_.store(0, std::memory_order_relaxed);
    reconnects_.store(0, std::memory_order_relaxed);
    rtt_.reset();
  }

  std::uint64_t rpc_retries() const noexcept {
    return retries_.load(std::memory_order_relaxed);
  }
  std::uint64_t rpc_failures() const noexcept {
    return failures_.load(std::memory_order_relaxed);
  }
  /// Successful connection re-establishments (connects after the first one),
  /// whatever dropped the previous stream: worker restart, transport fault,
  /// or a poisoned frame. Surfaced as BackendStats::rpc_reconnects.
  std::uint64_t rpc_reconnects() const noexcept {
    return reconnects_.load(std::memory_order_relaxed);
  }

  /// Round-trip latency (send -> decoded result) of every successful episode
  /// RPC; also exported through `fill_stats` as `BackendStats::rpc_rtt_ns`.
  telemetry::HistogramData rpc_rtt() const { return rtt_.snapshot(); }

  /// Scrape the WORKER's own serving stats (per-backend counters + service
  /// telemetry) over the live connection — the farm-wide view a router
  /// cannot compute from client-side counters alone. Throws RpcError on
  /// timeout or a worker that predates wire v3.
  env::EnvServiceStats fetch_worker_stats() const;

  // ---- farm control plane (wire v4; all throw RpcError on failure) ----------

  /// Ask the worker who it is: build, wire version, capacity, backends.
  env::WorkerAnnounce hello() const;
  /// One liveness round-trip; a success also refreshes `liveness()`.
  env::WorkerHealth heartbeat() const;
  /// Pull the worker's memo entries for one WORKER-side backend id.
  std::vector<env::MemoEntrySnapshot> export_memo(env::BackendId remote_backend) const;
  /// Push a backend (and/or memo snapshot) into the worker's registry.
  env::InstallResult install_backend(const env::BackendInstallRequest& request) const;

  /// Current health view; cheap (atomics only), callable from any thread.
  RemoteLiveness liveness() const;

 private:
  class MuxConnection;

  /// Current connection, (re)built lazily under conn_mutex_. A dead
  /// connection (reader saw EOF/fault) is dropped and rebuilt on the next
  /// attempt; repeated CONNECT failures back off exponentially with jitter.
  std::shared_ptr<MuxConnection> connection() const;
  void drop_connection(const std::shared_ptr<MuxConnection>& dead) const;
  std::chrono::nanoseconds backoff_delay(std::uint64_t failures) const;
  /// One control-plane request/response: sends `frame` (built for a fresh
  /// request id), waits `control_timeout_ms`, validates the response type,
  /// and returns the raw response frame positioned for body decoding.
  std::vector<std::uint8_t> control_roundtrip(
      const std::function<std::vector<std::uint8_t>(std::uint64_t)>& encode, MsgType expect,
      const char* what) const;
  void note_success() const;
  /// Shared body of execute / execute_cancellable (`cancel` may be null).
  env::EpisodeResult execute_impl(const env::EnvQuery& query,
                                  const env::CancelToken* cancel) const;

  RemoteBackendOptions options_;
  mutable std::mutex conn_mutex_;
  mutable std::shared_ptr<MuxConnection> conn_;
  /// Backoff schedule, guarded by conn_mutex_.
  mutable std::uint64_t connect_failures_ = 0;
  mutable std::chrono::steady_clock::time_point next_connect_attempt_{};
  mutable bool ever_connected_ = false;  ///< guarded by conn_mutex_
  mutable std::atomic<std::uint64_t> next_request_id_{0};
  mutable std::atomic<std::uint64_t> retries_{0};
  mutable std::atomic<std::uint64_t> failures_{0};
  mutable std::atomic<std::uint64_t> reconnects_{0};
  mutable std::atomic<std::uint64_t> consecutive_timeouts_{0};
  mutable std::atomic<std::uint64_t> connect_failure_streak_{0};
  /// steady_clock nanos of the last successful round-trip; -1 = never.
  mutable std::atomic<std::int64_t> last_success_ns_{-1};
  mutable telemetry::Histogram rtt_;
};

}  // namespace atlas::rpc
