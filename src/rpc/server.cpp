#include "rpc/server.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <utility>

#include "rpc/codec.hpp"

namespace atlas::rpc {

EpisodeRpcServer::EpisodeRpcServer(env::EnvService& service, RpcServerOptions options)
    : service_(service), options_(options), listener_(options.port) {
  acceptor_ = std::thread([this] { accept_loop(); });
}

EpisodeRpcServer::~EpisodeRpcServer() { stop(); }

void EpisodeRpcServer::accept_loop() {
  for (;;) {
    auto transport = listener_.accept();
    if (transport == nullptr) return;  // listener closed: shutting down
    std::scoped_lock lock(connections_mutex_);
    if (stopped_) return;  // raced with stop(): drop the late connection
    // Reap connections whose serve loop already finished — a long-running
    // worker sees arbitrarily many reconnects (clients retry on faults), and
    // each dead thread would otherwise hold its stack until stop().
    std::erase_if(connections_, [](const std::unique_ptr<Connection>& c) {
      if (!c->finished.load(std::memory_order_acquire)) return false;
      if (c->thread.joinable()) c->thread.join();
      return true;
    });
    auto connection = std::make_unique<Connection>();
    Connection* conn = connection.get();
    conn->transport = std::move(transport);
    conn->thread = std::thread([this, conn] {
      serve(*conn->transport);
      conn->finished.store(true, std::memory_order_release);
    });
    connections_.push_back(std::move(connection));
  }
}

void EpisodeRpcServer::serve(Transport& transport) {
  // Responses from concurrently-executing episodes interleave on this
  // connection; each write is one frame, serialized by the write mutex and
  // matched up client-side by request id.
  std::mutex write_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t outstanding = 0;  // guarded by done_mutex

  const auto write_frame = [&](const std::vector<std::uint8_t>& frame) {
    try {
      std::scoped_lock lock(write_mutex);
      transport.send(frame);
    } catch (const TransportError&) {
      // Peer vanished mid-response; the read loop will notice EOF.
    }
  };

  std::vector<std::uint8_t> frame;
  for (;;) {
    bool got = false;
    try {
      got = transport.recv(frame);
    } catch (const TransportError&) {
      break;  // poisoned stream: drop the connection
    }
    if (!got) break;  // clean EOF

    std::uint64_t request_id = 0;
    env::EnvQuery query;
    try {
      WireReader reader(frame);
      const FrameHeader header = decode_header(reader);
      request_id = header.request_id;
      if (header.type == MsgType::kStatsRequest) {
        // Answered inline on the read thread: a stats scrape must not queue
        // behind episodes (it is how operators see WHY the queue is long).
        reader.expect_done();
        env::EnvServiceStats stats = service_.stats();
        stats.rpc_service_ns = service_time_.snapshot();
        write_frame(encode_stats_snapshot(request_id, stats));
        continue;
      }
      if (header.type != MsgType::kQuery) {
        throw CodecError("episode-rpc server: expected a query frame");
      }
      query = decode_query_body(reader);
    } catch (const std::exception& e) {
      write_frame(encode_error(request_id, e.what()));
      continue;
    }

    {
      std::scoped_lock lock(done_mutex);
      ++outstanding;
    }
    {
      std::scoped_lock lock(drain_mutex_);
      ++in_flight_;
    }
    // Dispatch onto the service pool so one connection can pipeline as many
    // concurrent episodes as the worker has cores; the future is tracked via
    // the outstanding counter instead (the response IS the result channel).
    try {
      service_.pool().submit(
        [this, &write_frame, &done_mutex, &done_cv, &outstanding, request_id,
         q = std::move(query)] {
          const auto start = std::chrono::steady_clock::now();
          std::vector<std::uint8_t> response;
          try {
            response = encode_result(request_id, service_.run(q));
            if (response.size() > kMaxFrameBytes) {
              // The client must learn WHY there is no result — a silently
              // dropped oversized frame reads as a timeout and gets retried.
              response = encode_error(
                  request_id, "episode result too large for one frame (" +
                                  std::to_string(response.size()) + " bytes > " +
                                  std::to_string(kMaxFrameBytes) + "); shorten the episode");
            }
          } catch (const std::exception& e) {
            response = encode_error(request_id, e.what());
          }
          const auto elapsed = std::chrono::steady_clock::now() - start;
          service_time_.record(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
          write_frame(response);
          {
            // Notify UNDER the lock: serve() destroys done_cv the moment the
            // final wait sees outstanding == 0, so the notify must complete
            // before that waiter can reacquire the mutex and return.
            std::scoped_lock lock(done_mutex);
            --outstanding;
            done_cv.notify_all();
          }
          {
            std::scoped_lock lock(drain_mutex_);
            --in_flight_;
            drain_cv_.notify_all();
          }
        });
    } catch (...) {
      // Enqueue failed (bad_alloc): the task's decrement will never run; a
      // leaked increment would hang the final wait (and stop()'s join).
      {
        std::scoped_lock lock(done_mutex);
        --outstanding;
      }
      {
        std::scoped_lock lock(drain_mutex_);
        --in_flight_;
        drain_cv_.notify_all();
      }
      write_frame(encode_error(request_id, "worker failed to enqueue the episode"));
    }
  }

  // The read loop is done, but dispatched episodes still reference this
  // frame's locals; wait them out before returning.
  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return outstanding == 0; });
}

void EpisodeRpcServer::stop() {
  {
    std::scoped_lock lock(connections_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  listener_.close();
  if (acceptor_.joinable()) acceptor_.join();
  // Graceful drain: episodes already dispatched get to finish and FLUSH their
  // responses before we yank the connections — a worker asked to shut down
  // mid-batch should not turn accepted work into client-side timeouts. The
  // wait is bounded: a wedged episode must not make stop() hang forever.
  {
    std::unique_lock lock(drain_mutex_);
    drain_cv_.wait_for(lock, std::chrono::milliseconds(options_.drain_timeout_ms),
                       [&] { return in_flight_ == 0; });
  }
  // After the acceptor is joined no new connections can appear; close every
  // transport (wakes its serve loop) and join the connection threads.
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::scoped_lock lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (auto& conn : connections) conn->transport->close();
  for (auto& conn : connections) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

}  // namespace atlas::rpc
