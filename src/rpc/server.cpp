#include "rpc/server.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <unordered_set>
#include <utility>

#include "rpc/codec.hpp"

namespace atlas::rpc {

namespace {

/// Cancel bookkeeping cap per connection: ids of requests whose client gave
/// up. A bounded set — a client that cancels thousands of still-unanswered
/// requests on one connection is reconnecting anyway.
constexpr std::size_t kMaxCancelledIds = 4096;

}  // namespace

EpisodeRpcServer::EpisodeRpcServer(env::EnvService& service, RpcServerOptions options)
    : service_(service), options_(options), listener_(options.port) {
  acceptor_ = std::thread([this] { accept_loop(); });
}

EpisodeRpcServer::~EpisodeRpcServer() { stop(); }

void EpisodeRpcServer::accept_loop() {
  for (;;) {
    auto transport = listener_.accept();
    if (transport == nullptr) return;  // listener closed: shutting down
    std::scoped_lock lock(connections_mutex_);
    if (stopped_) return;  // raced with stop(): drop the late connection
    // Reap connections whose serve loop already finished — a long-running
    // worker sees arbitrarily many reconnects (clients retry on faults), and
    // each dead thread would otherwise hold its stack until stop().
    std::erase_if(connections_, [](const std::unique_ptr<Connection>& c) {
      if (!c->finished.load(std::memory_order_acquire)) return false;
      if (c->thread.joinable()) c->thread.join();
      return true;
    });
    auto connection = std::make_unique<Connection>();
    Connection* conn = connection.get();
    conn->transport = std::move(transport);
    conn->thread = std::thread([this, conn] {
      serve(*conn->transport);
      conn->finished.store(true, std::memory_order_release);
    });
    connections_.push_back(std::move(connection));
  }
}

void EpisodeRpcServer::serve(Transport& transport) {
  // Responses from concurrently-executing episodes interleave on this
  // connection; each write is one frame, serialized by the write mutex and
  // matched up client-side by request id.
  std::mutex write_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t outstanding = 0;  // guarded by done_mutex

  const auto write_frame = [&](const std::vector<std::uint8_t>& frame) {
    try {
      std::scoped_lock lock(write_mutex);
      transport.send(frame);
    } catch (const TransportError&) {
      // Peer vanished mid-response; the read loop will notice EOF.
    }
  };

  // Best-effort cancellation state for THIS connection: request ids whose
  // client gave up. Checked when a query task starts and again before its
  // response is written; a cancelled id gets no reply at all.
  std::mutex cancel_mutex;
  std::unordered_set<std::uint64_t> cancelled;
  const auto is_cancelled = [&](std::uint64_t id) {
    std::scoped_lock lock(cancel_mutex);
    return cancelled.count(id) != 0;
  };

  std::vector<std::uint8_t> frame;
  for (;;) {
    bool got = false;
    try {
      got = transport.recv(frame);
    } catch (const TransportError&) {
      break;  // poisoned stream: drop the connection
    }
    if (!got) break;  // clean EOF

    std::uint64_t request_id = 0;
    std::uint16_t version = kWireVersion;
    env::EnvQuery query;
    try {
      WireReader reader(frame);
      const FrameHeader header = decode_header(reader);
      request_id = header.request_id;
      // Replies are stamped with the REQUESTER's version, so a v3 peer keeps
      // decoding everything it asked for against this v4 server.
      version = header.version;
      switch (header.type) {
        case MsgType::kStatsRequest: {
          // Answered inline on the read thread: a stats scrape must not queue
          // behind episodes (it is how operators see WHY the queue is long).
          reader.expect_done();
          env::EnvServiceStats stats = service_.stats();
          stats.rpc_service_ns = service_time_.snapshot();
          write_frame(encode_stats_snapshot(request_id, stats, version));
          continue;
        }
        case MsgType::kHello: {
          reader.expect_done();
          write_frame(encode_announce(request_id, announce()));
          continue;
        }
        case MsgType::kHeartbeat: {
          reader.expect_done();
          env::WorkerHealth health;
          health.outstanding = service_.outstanding_queries();
          health.cache_entries = service_.cache_size();
          for (const auto& backend : service_.stats().backends) {
            health.episodes += backend.episodes;
          }
          write_frame(encode_heartbeat_ack(request_id, health));
          continue;
        }
        case MsgType::kMemoExport: {
          const env::BackendId backend = decode_memo_export_body(reader);
          auto memo = service_.export_memo(backend);
          auto snapshot = encode_memo_snapshot(request_id, memo);
          // Migration is an optimization: a snapshot too big for one frame
          // ships its warmest-hashing half rather than failing the drain
          // (dropped entries are just recomputed on the new shard).
          while (snapshot.size() > kMaxFrameBytes && !memo.empty()) {
            memo.resize(memo.size() / 2);
            snapshot = encode_memo_snapshot(request_id, memo);
          }
          write_frame(snapshot);
          continue;
        }
        case MsgType::kInstallBackend: {
          const env::BackendInstallRequest request = decode_install_backend_body(reader);
          write_frame(encode_install_ack(request_id, handle_install(request)));
          continue;
        }
        case MsgType::kCancel: {
          reader.expect_done();
          {
            std::scoped_lock lock(cancel_mutex);
            if (cancelled.size() >= kMaxCancelledIds) cancelled.clear();
            cancelled.insert(request_id);
          }
          cancelled_total_.fetch_add(1, std::memory_order_relaxed);
          continue;  // fire-and-forget: cancel frames are never answered
        }
        case MsgType::kQuery:
          query = decode_query_body(reader, header.version);
          break;
        default:
          throw CodecError("episode-rpc server: unexpected message type " +
                           std::to_string(static_cast<std::uint16_t>(header.type)));
      }
    } catch (const std::exception& e) {
      write_frame(encode_error(request_id, e.what(), version));
      continue;
    }

    {
      std::scoped_lock lock(done_mutex);
      ++outstanding;
    }
    {
      std::scoped_lock lock(drain_mutex_);
      ++in_flight_;
    }
    // Dispatch onto the service pool so one connection can pipeline as many
    // concurrent episodes as the worker has cores; the future is tracked via
    // the outstanding counter instead (the response IS the result channel).
    const auto dispatched = std::chrono::steady_clock::now();
    try {
      service_.pool().submit(
        [this, &write_frame, &is_cancelled, &done_mutex, &done_cv, &outstanding, request_id,
         version, dispatched, q = std::move(query)]() mutable {
          if (!is_cancelled(request_id)) {
            const auto start = std::chrono::steady_clock::now();
            std::vector<std::uint8_t> response;
            try {
              // The deadline budget started ticking when the frame was
              // decoded; spend the pool-queue wait against it so an
              // already-dead query is dropped HERE instead of burning a
              // worker thread on an answer nobody is waiting for.
              bool expired = false;
              if (q.deadline_ms > 0.0) {
                const double waited_ms =
                    std::chrono::duration<double, std::milli>(start - dispatched).count();
                const double remaining = q.deadline_ms - waited_ms;
                if (remaining <= 0.0) {
                  expired = true;
                } else {
                  q.deadline_ms = remaining;
                }
              }
              env::EpisodeResult result;
              if (expired) {
                result.rejected = env::RejectReason::kDeadlineExceeded;
              } else {
                result = service_.run(q);
              }
              if (result.is_rejected() && version < 5) {
                // Pre-v5 peers have no rejection field; fail loudly instead
                // of handing them an empty "successful" episode.
                response = encode_error(request_id,
                                        std::string("query rejected by worker: ") +
                                            env::to_string(result.rejected),
                                        version);
              } else {
                response = encode_result(request_id, result, version);
              }
              if (response.size() > kMaxFrameBytes) {
                // The client must learn WHY there is no result — a silently
                // dropped oversized frame reads as a timeout and gets retried.
                response = encode_error(
                    request_id, "episode result too large for one frame (" +
                                    std::to_string(response.size()) + " bytes > " +
                                    std::to_string(kMaxFrameBytes) + "); shorten the episode",
                    version);
              }
            } catch (const std::exception& e) {
              response = encode_error(request_id, e.what(), version);
            }
            const auto elapsed = std::chrono::steady_clock::now() - start;
            service_time_.record(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
            // A cancel that landed while the episode ran means the client
            // stopped listening for this id: suppress the response too.
            if (!is_cancelled(request_id)) write_frame(response);
          }
          {
            // Notify UNDER the lock: serve() destroys done_cv the moment the
            // final wait sees outstanding == 0, so the notify must complete
            // before that waiter can reacquire the mutex and return.
            std::scoped_lock lock(done_mutex);
            --outstanding;
            done_cv.notify_all();
          }
          {
            std::scoped_lock lock(drain_mutex_);
            --in_flight_;
            drain_cv_.notify_all();
          }
        });
    } catch (...) {
      // Enqueue failed (bad_alloc): the task's decrement will never run; a
      // leaked increment would hang the final wait (and stop()'s join).
      {
        std::scoped_lock lock(done_mutex);
        --outstanding;
      }
      {
        std::scoped_lock lock(drain_mutex_);
        --in_flight_;
        drain_cv_.notify_all();
      }
      write_frame(encode_error(request_id, "worker failed to enqueue the episode", version));
    }
  }

  // The read loop is done, but dispatched episodes still reference this
  // frame's locals; wait them out before returning.
  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return outstanding == 0; });
}

env::WorkerAnnounce EpisodeRpcServer::announce() const {
  env::WorkerAnnounce announce;
  announce.build = options_.build;
  announce.wire_version = kWireVersion;
  announce.threads = static_cast<std::uint32_t>(service_.threads());
  announce.cache_capacity = service_.cache_capacity();
  const std::size_t n = service_.backend_count();
  announce.backends.reserve(n);
  for (std::size_t id = 0; id < n; ++id) {
    const auto backend_id = static_cast<env::BackendId>(id);
    env::WorkerBackendInfo info;
    info.name = service_.backend_name(backend_id);
    info.kind = service_.backend_kind(backend_id);
    info.cost_hint = service_.backend_cost_hint(backend_id);
    info.accepts_sim_params = service_.backend_accepts_sim_params(backend_id);
    info.params_digest = backend_digest(backend_id);
    announce.backends.push_back(std::move(info));
  }
  return announce;
}

void EpisodeRpcServer::set_backend_digest(env::BackendId id, std::uint64_t digest) {
  std::scoped_lock lock(digests_mutex_);
  if (digests_.size() <= id) digests_.resize(id + 1, 0);
  digests_[id] = digest;
}

std::uint64_t EpisodeRpcServer::backend_digest(env::BackendId id) const {
  std::scoped_lock lock(digests_mutex_);
  return id < digests_.size() ? digests_[id] : 0;
}

env::InstallResult EpisodeRpcServer::handle_install(const env::BackendInstallRequest& request) {
  env::InstallResult result;
  if (request.target_backend >= 0) {
    // Memo-merge into a backend this worker already hosts.
    result.backend = static_cast<env::BackendId>(request.target_backend);
    result.imported = service_.import_memo(result.backend, request.memo);
    return result;
  }
  // Fresh registration from the descriptor. Only backend shapes a worker can
  // construct from data are installable: parameterized simulators and the
  // real-network surrogate. Anything else must be wired at worker startup.
  const auto& d = request.descriptor;
  if (d.kind == env::BackendKind::kOffline && d.accepts_sim_params) {
    result.backend = service_.add_simulator(
        request.sim_params.value_or(env::SimParams::defaults()), d.name);
  } else if (d.kind == env::BackendKind::kOnline && !d.accepts_sim_params) {
    result.backend = service_.add_real_network(d.name);
  } else {
    throw RpcError("episode-rpc server: backend '" + d.name +
                   "' is not installable from a descriptor");
  }
  set_backend_digest(result.backend, d.params_digest);
  installs_total_.fetch_add(1, std::memory_order_relaxed);
  result.imported = service_.import_memo(result.backend, request.memo);
  return result;
}

void EpisodeRpcServer::stop() {
  {
    std::scoped_lock lock(connections_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  listener_.close();
  if (acceptor_.joinable()) acceptor_.join();
  // Graceful drain: episodes already dispatched get to finish and FLUSH their
  // responses before we yank the connections — a worker asked to shut down
  // mid-batch should not turn accepted work into client-side timeouts. The
  // wait is bounded: a wedged episode must not make stop() hang forever.
  {
    std::unique_lock lock(drain_mutex_);
    drain_cv_.wait_for(lock, std::chrono::milliseconds(options_.drain_timeout_ms),
                       [&] { return in_flight_ == 0; });
  }
  // After the acceptor is joined no new connections can appear; close every
  // transport (wakes its serve loop) and join the connection threads.
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::scoped_lock lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (auto& conn : connections) conn->transport->close();
  for (auto& conn : connections) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

}  // namespace atlas::rpc
