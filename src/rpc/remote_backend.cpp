#include "rpc/remote_backend.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <thread>
#include <unordered_map>
#include <utility>

#include "rpc/codec.hpp"

namespace atlas::rpc {

/// One connection shared by every concurrent execute(): senders tag requests
/// with a fresh id and park on a promise; the reader thread routes each
/// response frame to its promise. When the stream dies, every parked sender
/// is failed over to the retry loop.
class RemoteBackend::MuxConnection {
 public:
  explicit MuxConnection(std::unique_ptr<Transport> transport)
      : transport_(std::move(transport)) {
    reader_ = std::thread([this] { read_loop(); });
  }

  ~MuxConnection() {
    transport_->close();
    if (reader_.joinable()) reader_.join();
  }

  bool dead() const noexcept { return dead_.load(std::memory_order_acquire); }

  /// Register the pending slot, then put the frame on the wire.
  std::future<std::vector<std::uint8_t>> send_request(std::uint64_t request_id,
                                                      const std::vector<std::uint8_t>& frame) {
    std::future<std::vector<std::uint8_t>> future;
    {
      std::scoped_lock lock(mutex_);
      if (dead_.load(std::memory_order_acquire)) {
        throw TransportError("rpc client: connection is down");
      }
      auto [it, inserted] = pending_.try_emplace(request_id);
      future = it->second.get_future();
    }
    try {
      transport_->send(frame);
    } catch (...) {
      forget(request_id);
      throw;
    }
    return future;
  }

  /// Abandon a timed-out request; a late response frame is dropped.
  void forget(std::uint64_t request_id) {
    std::scoped_lock lock(mutex_);
    pending_.erase(request_id);
  }

 private:
  void read_loop() {
    std::vector<std::uint8_t> frame;
    for (;;) {
      bool got = false;
      try {
        got = transport_->recv(frame);
      } catch (const TransportError&) {
        got = false;
      }
      if (!got) break;
      std::uint64_t request_id = 0;
      try {
        WireReader reader(frame);
        request_id = decode_header(reader).request_id;
      } catch (const CodecError&) {
        break;  // garbage on the stream: poison the connection
      }
      std::promise<std::vector<std::uint8_t>> promise;
      bool found = false;
      {
        std::scoped_lock lock(mutex_);
        auto it = pending_.find(request_id);
        if (it != pending_.end()) {
          promise = std::move(it->second);
          pending_.erase(it);
          found = true;
        }
      }
      if (found) promise.set_value(std::move(frame));
      // else: response to an abandoned (timed-out) request — dropped.
      frame.clear();
    }
    // EOF or fault: fail everyone still parked so they can retry/reconnect.
    dead_.store(true, std::memory_order_release);
    std::unordered_map<std::uint64_t, std::promise<std::vector<std::uint8_t>>> orphans;
    {
      std::scoped_lock lock(mutex_);
      orphans.swap(pending_);
    }
    for (auto& [id, promise] : orphans) {
      promise.set_exception(
          std::make_exception_ptr(TransportError("rpc client: connection lost")));
    }
  }

  std::unique_ptr<Transport> transport_;
  std::thread reader_;
  std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::promise<std::vector<std::uint8_t>>> pending_;
  std::atomic<bool> dead_{false};
};

RemoteBackend::RemoteBackend(RemoteBackendOptions options) : options_(std::move(options)) {
  if (!options_.transport_factory) {
    options_.transport_factory = [host = options_.host, port = options_.port] {
      return TcpTransport::connect(host, port);
    };
  }
}

RemoteBackend::~RemoteBackend() = default;

std::shared_ptr<RemoteBackend::MuxConnection> RemoteBackend::connection() const {
  std::scoped_lock lock(conn_mutex_);
  if (conn_ == nullptr || conn_->dead()) {
    conn_ = std::make_shared<MuxConnection>(options_.transport_factory());
  }
  return conn_;
}

void RemoteBackend::drop_connection(const std::shared_ptr<MuxConnection>& dead) const {
  std::scoped_lock lock(conn_mutex_);
  if (conn_ == dead) conn_ = nullptr;
}

void RemoteBackend::fill_stats(env::BackendStats& stats) const {
  stats.rpc_retries = rpc_retries();
  stats.rpc_failures = rpc_failures();
  stats.rpc_rtt_ns = rtt_.snapshot();
}

env::EnvServiceStats RemoteBackend::fetch_worker_stats() const {
  const auto timeout =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::duration<double, std::milli>(options_.timeout_ms));
  std::shared_ptr<MuxConnection> conn;
  try {
    conn = connection();
    const std::uint64_t request_id =
        next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    auto future = conn->send_request(request_id, encode_stats_request(request_id));
    if (future.wait_for(timeout) != std::future_status::ready) {
      conn->forget(request_id);
      throw RpcError("remote backend '" + options_.name + "': stats request timed out after " +
                     std::to_string(options_.timeout_ms) + " ms");
    }
    std::vector<std::uint8_t> frame = future.get();
    WireReader reader(frame);
    const FrameHeader header = decode_header(reader);
    if (header.type == MsgType::kError) {
      throw RpcError("remote backend '" + options_.name +
                     "': worker error: " + decode_error_body(reader));
    }
    if (header.type != MsgType::kStatsSnapshot) {
      throw CodecError("rpc client: unexpected stats response type");
    }
    return decode_stats_snapshot_body(reader);
  } catch (const TransportError& e) {
    if (conn != nullptr) drop_connection(conn);
    throw RpcError("remote backend '" + options_.name + "': stats request failed: " + e.what());
  } catch (const CodecError& e) {
    if (conn != nullptr) drop_connection(conn);
    throw RpcError("remote backend '" + options_.name + "': stats request failed: " + e.what());
  }
}

env::EpisodeResult RemoteBackend::execute(const env::EnvQuery& query) const {
  // The worker has its own backend address space.
  env::EnvQuery remote_query = query;
  remote_query.backend = options_.remote_backend;

  const auto timeout =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::duration<double, std::milli>(options_.timeout_ms));
  const int attempts = 1 + std::max(0, options_.max_retries);
  std::string last_fault = "no attempt made";

  // At-most-once for metered backends: once a query is on the wire the
  // worker may be executing (or have executed) a REAL interaction — retrying
  // it would duplicate live SLA exposure while the client meters one
  // episode. Offline episodes retry freely: deterministic per seed, and at
  // worst (caching disabled worker, collect_traces query) a retry recomputes
  // the identical result.
  const bool metered = options_.kind == env::BackendKind::kOnline;
  const auto metered_abort = [&](const std::string& fault) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    throw RpcError("remote backend '" + options_.name + "': " + fault +
                   " after the query was sent; not retrying a metered episode (it may "
                   "have executed on the worker)");
  };

  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) retries_.fetch_add(1, std::memory_order_relaxed);
    std::shared_ptr<MuxConnection> conn;
    bool sent = false;
    try {
      conn = connection();
      const std::uint64_t request_id =
          next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
      const auto rtt_start = std::chrono::steady_clock::now();
      auto future = conn->send_request(request_id, encode_query(request_id, remote_query));
      sent = true;
      if (future.wait_for(timeout) != std::future_status::ready) {
        conn->forget(request_id);
        last_fault = "timed out after " + std::to_string(options_.timeout_ms) + " ms";
        if (metered) metered_abort(last_fault);
        continue;
      }
      std::vector<std::uint8_t> frame = future.get();  // throws TransportError if conn died
      WireReader reader(frame);
      const FrameHeader header = decode_header(reader);
      if (header.type == MsgType::kError) {
        // Deterministic worker-side rejection (bad backend id, invalid
        // sim_params): retrying cannot help.
        failures_.fetch_add(1, std::memory_order_relaxed);
        throw RpcError("remote backend '" + options_.name +
                       "': worker error: " + decode_error_body(reader));
      }
      if (header.type != MsgType::kResult) {
        throw CodecError("rpc client: unexpected response type");
      }
      env::EpisodeResult result = decode_result_body(reader);
      const auto rtt = std::chrono::steady_clock::now() - rtt_start;
      rtt_.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(rtt).count()));
      return result;
    } catch (const TransportError& e) {
      if (conn != nullptr) drop_connection(conn);
      last_fault = e.what();
      // Connect/send failures never reached the worker: always retryable.
      if (sent && metered) metered_abort(last_fault);
      continue;
    } catch (const CodecError& e) {
      // A malformed response is a poisoned stream: drop and retry fresh.
      if (conn != nullptr) drop_connection(conn);
      last_fault = e.what();
      if (sent && metered) metered_abort(last_fault);
      continue;
    }
  }

  failures_.fetch_add(1, std::memory_order_relaxed);
  throw RpcError("remote backend '" + options_.name + "' (" + options_.host + ":" +
                 std::to_string(options_.port) + "): " + std::to_string(attempts) +
                 " attempts failed; last: " + last_fault);
}

}  // namespace atlas::rpc
