#include "rpc/remote_backend.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <future>
#include <thread>
#include <unordered_map>
#include <utility>

#include "rpc/codec.hpp"

namespace atlas::rpc {

/// One connection shared by every concurrent execute(): senders tag requests
/// with a fresh id and park on a promise; the reader thread routes each
/// response frame to its promise. When the stream dies, every parked sender
/// is failed over to the retry loop.
class RemoteBackend::MuxConnection {
 public:
  explicit MuxConnection(std::unique_ptr<Transport> transport)
      : transport_(std::move(transport)) {
    reader_ = std::thread([this] { read_loop(); });
  }

  ~MuxConnection() {
    transport_->close();
    if (reader_.joinable()) reader_.join();
  }

  bool dead() const noexcept { return dead_.load(std::memory_order_acquire); }

  /// Register the pending slot, then put the frame on the wire.
  std::future<std::vector<std::uint8_t>> send_request(std::uint64_t request_id,
                                                      const std::vector<std::uint8_t>& frame) {
    std::future<std::vector<std::uint8_t>> future;
    {
      std::scoped_lock lock(mutex_);
      if (dead_.load(std::memory_order_acquire)) {
        throw TransportError("rpc client: connection is down");
      }
      auto [it, inserted] = pending_.try_emplace(request_id);
      future = it->second.get_future();
    }
    try {
      transport_->send(frame);
    } catch (...) {
      forget(request_id);
      throw;
    }
    return future;
  }

  /// Abandon a timed-out request; a late response frame is dropped.
  void forget(std::uint64_t request_id) {
    std::scoped_lock lock(mutex_);
    pending_.erase(request_id);
  }

  /// Fire-and-forget frame (kCancel): no pending slot, no response expected.
  void send_oneway(const std::vector<std::uint8_t>& frame) { transport_->send(frame); }

 private:
  void read_loop() {
    std::vector<std::uint8_t> frame;
    for (;;) {
      bool got = false;
      try {
        got = transport_->recv(frame);
      } catch (const TransportError&) {
        got = false;
      }
      if (!got) break;
      std::uint64_t request_id = 0;
      try {
        WireReader reader(frame);
        request_id = decode_header(reader).request_id;
      } catch (const CodecError&) {
        break;  // garbage on the stream: poison the connection
      }
      std::promise<std::vector<std::uint8_t>> promise;
      bool found = false;
      {
        std::scoped_lock lock(mutex_);
        auto it = pending_.find(request_id);
        if (it != pending_.end()) {
          promise = std::move(it->second);
          pending_.erase(it);
          found = true;
        }
      }
      if (found) promise.set_value(std::move(frame));
      // else: response to an abandoned (timed-out) request — dropped.
      frame.clear();
    }
    // EOF or fault: fail everyone still parked so they can retry/reconnect.
    dead_.store(true, std::memory_order_release);
    std::unordered_map<std::uint64_t, std::promise<std::vector<std::uint8_t>>> orphans;
    {
      std::scoped_lock lock(mutex_);
      orphans.swap(pending_);
    }
    for (auto& [id, promise] : orphans) {
      promise.set_exception(
          std::make_exception_ptr(TransportError("rpc client: connection lost")));
    }
  }

  std::unique_ptr<Transport> transport_;
  std::thread reader_;
  std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::promise<std::vector<std::uint8_t>>> pending_;
  std::atomic<bool> dead_{false};
};

RemoteBackend::RemoteBackend(RemoteBackendOptions options) : options_(std::move(options)) {
  if (!options_.transport_factory) {
    options_.transport_factory = [host = options_.host, port = options_.port] {
      return TcpTransport::connect(host, port);
    };
  }
}

RemoteBackend::~RemoteBackend() = default;

std::chrono::nanoseconds RemoteBackend::backoff_delay(std::uint64_t failures) const {
  // Exponential: base * 2^(failures-1), capped.
  double delay_ms = options_.backoff_base_ms;
  for (std::uint64_t i = 1; i < failures && delay_ms < options_.backoff_cap_ms; ++i) {
    delay_ms *= 2.0;
  }
  delay_ms = std::min(delay_ms, options_.backoff_cap_ms);
  // Deterministic jitter in [0.5, 1.0): splitmix over (name, attempt), so
  // shards watching the same dead worker desynchronize without a global RNG
  // (and tests stay reproducible).
  std::uint64_t x = std::hash<std::string>{}(options_.name) ^ (failures * 0x9e3779b97f4a7c15ULL);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  const double jitter = 0.5 + 0.5 * (static_cast<double>(x >> 11) * 0x1.0p-53);
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double, std::milli>(delay_ms * jitter));
}

std::shared_ptr<RemoteBackend::MuxConnection> RemoteBackend::connection() const {
  std::unique_lock lock(conn_mutex_);
  for (;;) {
    if (conn_ != nullptr && !conn_->dead()) return conn_;
    if (connect_failures_ > 0) {
      const auto now = std::chrono::steady_clock::now();
      if (now < next_connect_attempt_) {
        // Hold off this thread WITHOUT holding the connection lock; whoever
        // wakes first (re)connects, everyone else finds the fresh conn_.
        const auto wait = next_connect_attempt_ - now;
        lock.unlock();
        std::this_thread::sleep_for(wait);
        lock.lock();
        continue;
      }
    }
    try {
      conn_ = std::make_shared<MuxConnection>(options_.transport_factory());
    } catch (...) {
      ++connect_failures_;
      connect_failure_streak_.store(connect_failures_, std::memory_order_relaxed);
      next_connect_attempt_ = std::chrono::steady_clock::now() + backoff_delay(connect_failures_);
      throw;
    }
    connect_failures_ = 0;
    connect_failure_streak_.store(0, std::memory_order_relaxed);
    if (ever_connected_) {
      reconnects_.fetch_add(1, std::memory_order_relaxed);
    } else {
      ever_connected_ = true;
    }
    return conn_;
  }
}

void RemoteBackend::drop_connection(const std::shared_ptr<MuxConnection>& dead) const {
  std::scoped_lock lock(conn_mutex_);
  if (conn_ == dead) conn_ = nullptr;
}

void RemoteBackend::fill_stats(env::BackendStats& stats) const {
  stats.rpc_retries = rpc_retries();
  stats.rpc_failures = rpc_failures();
  stats.rpc_reconnects = rpc_reconnects();
  stats.rpc_rtt_ns = rtt_.snapshot();
}

void RemoteBackend::note_success() const {
  consecutive_timeouts_.store(0, std::memory_order_relaxed);
  last_success_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count(),
      std::memory_order_relaxed);
}

RemoteLiveness RemoteBackend::liveness() const {
  RemoteLiveness view;
  {
    std::scoped_lock lock(conn_mutex_);
    view.connected = conn_ != nullptr && !conn_->dead();
  }
  view.consecutive_timeouts = consecutive_timeouts_.load(std::memory_order_relaxed);
  view.consecutive_connect_failures = connect_failure_streak_.load(std::memory_order_relaxed);
  view.rpc_failures = failures_.load(std::memory_order_relaxed);
  const std::int64_t last = last_success_ns_.load(std::memory_order_relaxed);
  if (last >= 0) {
    const auto now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count();
    view.since_last_success_ms = static_cast<double>(now - last) / 1e6;
  }
  return view;
}

std::vector<std::uint8_t> RemoteBackend::control_roundtrip(
    const std::function<std::vector<std::uint8_t>(std::uint64_t)>& encode, MsgType expect,
    const char* what) const {
  const auto timeout = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::duration<double, std::milli>(options_.control_timeout_ms));
  std::shared_ptr<MuxConnection> conn;
  try {
    conn = connection();
    const std::uint64_t request_id =
        next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    auto future = conn->send_request(request_id, encode(request_id));
    if (future.wait_for(timeout) != std::future_status::ready) {
      conn->forget(request_id);
      consecutive_timeouts_.fetch_add(1, std::memory_order_relaxed);
      throw RpcError("remote backend '" + options_.name + "': " + what +
                     " timed out after " + std::to_string(options_.control_timeout_ms) + " ms");
    }
    std::vector<std::uint8_t> frame = future.get();
    WireReader reader(frame);
    const FrameHeader header = decode_header(reader);
    if (header.type == MsgType::kError) {
      throw RpcError("remote backend '" + options_.name +
                     "': worker error: " + decode_error_body(reader));
    }
    if (header.type != expect) {
      throw CodecError(std::string("rpc client: unexpected ") + what + " response type");
    }
    note_success();
    return frame;
  } catch (const TransportError& e) {
    if (conn != nullptr) drop_connection(conn);
    throw RpcError("remote backend '" + options_.name + "': " + what + " failed: " + e.what());
  } catch (const CodecError& e) {
    if (conn != nullptr) drop_connection(conn);
    throw RpcError("remote backend '" + options_.name + "': " + what + " failed: " + e.what());
  }
}

env::EnvServiceStats RemoteBackend::fetch_worker_stats() const {
  const auto frame = control_roundtrip(
      [](std::uint64_t id) { return encode_stats_request(id); }, MsgType::kStatsSnapshot,
      "stats request");
  WireReader reader(frame);
  const FrameHeader header = decode_header(reader);
  return decode_stats_snapshot_body(reader, header.version);
}

env::WorkerAnnounce RemoteBackend::hello() const {
  const auto frame = control_roundtrip([](std::uint64_t id) { return encode_hello(id); },
                                       MsgType::kAnnounce, "hello");
  WireReader reader(frame);
  (void)decode_header(reader);
  return decode_announce_body(reader);
}

env::WorkerHealth RemoteBackend::heartbeat() const {
  const auto frame = control_roundtrip([](std::uint64_t id) { return encode_heartbeat(id); },
                                       MsgType::kHeartbeatAck, "heartbeat");
  WireReader reader(frame);
  (void)decode_header(reader);
  return decode_heartbeat_ack_body(reader);
}

std::vector<env::MemoEntrySnapshot> RemoteBackend::export_memo(
    env::BackendId remote_backend) const {
  const auto frame = control_roundtrip(
      [remote_backend](std::uint64_t id) { return encode_memo_export(id, remote_backend); },
      MsgType::kMemoSnapshot, "memo export");
  WireReader reader(frame);
  (void)decode_header(reader);
  return decode_memo_snapshot_body(reader);
}

env::InstallResult RemoteBackend::install_backend(
    const env::BackendInstallRequest& request) const {
  const auto frame = control_roundtrip(
      [&request](std::uint64_t id) { return encode_install_backend(id, request); },
      MsgType::kInstallAck, "backend install");
  WireReader reader(frame);
  (void)decode_header(reader);
  return decode_install_ack_body(reader);
}

env::EpisodeResult RemoteBackend::execute(const env::EnvQuery& query) const {
  return execute_impl(query, nullptr);
}

env::EpisodeResult RemoteBackend::execute_cancellable(const env::EnvQuery& query,
                                                      const env::CancelToken& cancel) const {
  return execute_impl(query, &cancel);
}

env::EpisodeResult RemoteBackend::execute_impl(const env::EnvQuery& query,
                                               const env::CancelToken* cancel) const {
  // The worker has its own backend address space.
  env::EnvQuery remote_query = query;
  remote_query.backend = options_.remote_backend;

  const auto started = std::chrono::steady_clock::now();
  // Remaining deadline budget in ms (negative = no deadline). Measured from
  // execute entry, so retries and backoff spend the SAME budget the caller's
  // service started charging at admission.
  const auto remaining_budget_ms = [&]() -> double {
    if (query.deadline_ms <= 0.0) return -1.0;
    const double elapsed = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - started)
                               .count();
    return query.deadline_ms - elapsed;
  };
  const auto deadline_rejection = [] {
    env::EpisodeResult rejected;
    rejected.rejected = env::RejectReason::kDeadlineExceeded;
    return rejected;
  };

  const int attempts = 1 + std::max(0, options_.max_retries);
  std::string last_fault = "no attempt made";

  // At-most-once for metered backends: once a query is on the wire the
  // worker may be executing (or have executed) a REAL interaction — retrying
  // it would duplicate live SLA exposure while the client meters one
  // episode. Offline episodes retry freely: deterministic per seed, and at
  // worst (caching disabled worker, collect_traces query) a retry recomputes
  // the identical result.
  const bool metered = options_.kind == env::BackendKind::kOnline;
  const auto metered_abort = [&](const std::string& fault) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    throw RpcError("remote backend '" + options_.name + "': " + fault +
                   " after the query was sent; not retrying a metered episode (it may "
                   "have executed on the worker)");
  };

  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) retries_.fetch_add(1, std::memory_order_relaxed);
    if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
      throw env::EpisodeCancelled();
    }
    // Per-attempt wait: the configured timeout, capped by whatever deadline
    // budget is left. An exhausted budget is a typed rejection, not a fault.
    double budget_ms = remaining_budget_ms();
    if (query.deadline_ms > 0.0 && budget_ms <= 0.0) return deadline_rejection();
    double wait_ms = options_.timeout_ms;
    bool deadline_capped = budget_ms >= 0.0 && budget_ms < wait_ms;
    if (deadline_capped) wait_ms = budget_ms;
    std::shared_ptr<MuxConnection> conn;
    bool sent = false;
    try {
      conn = connection();
      // Re-measure the budget AFTER connection(): reconnect backoff can sleep
      // for seconds, and on the wire deadline_ms = 0 means "no deadline" — so
      // a budget that expired (or reached exactly 0) while we were connecting
      // must be rejected here, never encoded as the unlimited sentinel or as
      // a stale pre-backoff value the worker would trust.
      if (query.deadline_ms > 0.0) {
        budget_ms = remaining_budget_ms();
        if (budget_ms <= 0.0) return deadline_rejection();
        if (budget_ms < wait_ms) {
          wait_ms = budget_ms;
          deadline_capped = true;
        }
      }
      remote_query.deadline_ms = budget_ms >= 0.0 ? budget_ms : 0.0;
      const std::uint64_t request_id =
          next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
      const auto rtt_start = std::chrono::steady_clock::now();
      auto future = conn->send_request(request_id, encode_query(request_id, remote_query));
      sent = true;
      // Park on the future, but in short slices when a cancel token is
      // watching: a hedging loser must free its connection slot promptly, not
      // after a full episode timeout.
      const auto wait_deadline =
          rtt_start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                          std::chrono::duration<double, std::milli>(wait_ms));
      constexpr std::chrono::steady_clock::duration kCancelPollSlice =
          std::chrono::milliseconds(2);
      std::future_status status = std::future_status::timeout;
      for (;;) {
        if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
          conn->forget(request_id);
          try {
            conn->send_oneway(encode_cancel(request_id));
          } catch (const TransportError&) {
            // The read loop will notice the dead stream.
          }
          throw env::EpisodeCancelled();
        }
        const auto now = std::chrono::steady_clock::now();
        if (now >= wait_deadline) break;
        auto slice = wait_deadline - now;
        if (cancel != nullptr && slice > kCancelPollSlice) slice = kCancelPollSlice;
        status = future.wait_for(slice);
        if (status == std::future_status::ready) break;
      }
      if (status != std::future_status::ready) {
        conn->forget(request_id);
        // Best-effort cancel: if the episode is still queued worker-side,
        // skip it (and its now-pointless response) instead of computing for
        // a client that stopped listening.
        try {
          conn->send_oneway(encode_cancel(request_id));
        } catch (const TransportError&) {
          // The read loop will notice the dead stream.
        }
        if (deadline_capped && remaining_budget_ms() <= 0.0) {
          // The DEADLINE elapsed, not the RPC timeout: the worker was never
          // given its full window, so this is the caller's budget running
          // out — a typed rejection, not a worker health signal.
          return deadline_rejection();
        }
        consecutive_timeouts_.fetch_add(1, std::memory_order_relaxed);
        last_fault = "timed out after " + std::to_string(options_.timeout_ms) + " ms";
        if (metered) metered_abort(last_fault);
        continue;
      }
      std::vector<std::uint8_t> frame = future.get();  // throws TransportError if conn died
      WireReader reader(frame);
      const FrameHeader header = decode_header(reader);
      if (header.type == MsgType::kError) {
        // Deterministic worker-side rejection (bad backend id, invalid
        // sim_params): retrying cannot help.
        failures_.fetch_add(1, std::memory_order_relaxed);
        throw RpcError("remote backend '" + options_.name +
                       "': worker error: " + decode_error_body(reader));
      }
      if (header.type != MsgType::kResult) {
        throw CodecError("rpc client: unexpected response type");
      }
      env::EpisodeResult result = decode_result_body(reader, header.version);
      const auto rtt = std::chrono::steady_clock::now() - rtt_start;
      rtt_.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(rtt).count()));
      note_success();
      return result;
    } catch (const TransportError& e) {
      if (conn != nullptr) drop_connection(conn);
      last_fault = e.what();
      // Connect/send failures never reached the worker: always retryable.
      if (sent && metered) metered_abort(last_fault);
      continue;
    } catch (const CodecError& e) {
      // A malformed response is a poisoned stream: drop and retry fresh.
      if (conn != nullptr) drop_connection(conn);
      last_fault = e.what();
      if (sent && metered) metered_abort(last_fault);
      continue;
    }
  }

  failures_.fetch_add(1, std::memory_order_relaxed);
  throw RpcError("remote backend '" + options_.name + "' (" + options_.host + ":" +
                 std::to_string(options_.port) + "): " + std::to_string(attempts) +
                 " attempts failed; last: " + last_fault);
}

}  // namespace atlas::rpc
