#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "env/backend.hpp"
#include "env/client.hpp"

namespace atlas::rpc {

/// Episode-RPC wire format, version 1.
///
/// Every frame payload is:
///
///   u32 magic ("ATLS") | u16 version | u16 type | u64 request_id | body
///
/// with all integers little-endian and all doubles encoded as their raw
/// IEEE-754 bit pattern (u64), so an `EnvQuery`/`EpisodeResult` round-trips
/// BIT-IDENTICALLY — the property that makes a remote episode
/// interchangeable with a local one under the service's memoization.
/// Transports add their own length prefix (see transport.hpp); the codec
/// only sees complete payloads.
///
/// Versioning: `kWireVersion` is bumped on any layout change; decoders
/// reject frames whose magic or version does not match exactly (a worker
/// and client from different builds fail loudly instead of misreading).
inline constexpr std::uint32_t kWireMagic = 0x41544c53u;  // "ATLS"
/// v2: EnvQuery carries the `crn` tag (common-random-numbers plan marker), so
/// worker-side caches attribute cross-iteration reuse from remote clients.
/// v3: stats-snapshot messages (kStatsRequest/kStatsSnapshot) export a
/// worker's full EnvServiceStats — per-backend counters plus the serving
/// telemetry histograms (query latency, queue depth, RPC service time) — so
/// a router aggregates farm-wide telemetry without scraping worker stdout.
inline constexpr std::uint16_t kWireVersion = 3;

/// Upper bound on one frame payload; a length prefix beyond this is treated
/// as a corrupted stream, not an allocation request.
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

enum class MsgType : std::uint16_t {
  kQuery = 1,          ///< client -> worker: run one EnvQuery
  kResult = 2,         ///< worker -> client: the EpisodeResult
  kError = 3,          ///< worker -> client: execution/decode failed (message string)
  kStatsRequest = 4,   ///< client -> worker: export your stats snapshot (empty body)
  kStatsSnapshot = 5,  ///< worker -> client: EnvServiceStats incl. telemetry histograms
};

/// Malformed frame: bad magic/version/type, truncated body, trailing bytes.
struct CodecError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Remote episode failed: transport exhausted its retries, the query timed
/// out, or the worker answered with an error frame.
struct RpcError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// ---- byte-level primitives --------------------------------------------------

class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s);

  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64();
  bool boolean();
  std::string str();

  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  /// Reject trailing garbage: a well-formed frame is consumed exactly.
  void expect_done() const;

 private:
  void need(std::size_t n) const;
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

// ---- messages ---------------------------------------------------------------

struct FrameHeader {
  MsgType type = MsgType::kQuery;
  std::uint64_t request_id = 0;
};

/// `query.backend` carries the WORKER-side backend id (the client rewrites
/// its own id before encoding).
std::vector<std::uint8_t> encode_query(std::uint64_t request_id, const env::EnvQuery& query);
std::vector<std::uint8_t> encode_result(std::uint64_t request_id,
                                        const env::EpisodeResult& result);
std::vector<std::uint8_t> encode_error(std::uint64_t request_id, const std::string& message);
std::vector<std::uint8_t> encode_stats_request(std::uint64_t request_id);
/// Histograms ride as sparse (bucket index, count) pairs — an idle worker's
/// snapshot is a few hundred bytes, not kBucketCount * 8.
std::vector<std::uint8_t> encode_stats_snapshot(std::uint64_t request_id,
                                                const env::EnvServiceStats& stats);

/// Validates magic + version and returns {type, request_id}; the reader is
/// left positioned at the body. Throws CodecError on any mismatch.
FrameHeader decode_header(WireReader& reader);

/// Body decoders; each consumes the reader fully (CodecError otherwise).
env::EnvQuery decode_query_body(WireReader& reader);
env::EpisodeResult decode_result_body(WireReader& reader);
std::string decode_error_body(WireReader& reader);
env::EnvServiceStats decode_stats_snapshot_body(WireReader& reader);

}  // namespace atlas::rpc
