#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "env/backend.hpp"
#include "env/client.hpp"
#include "env/farm_types.hpp"

namespace atlas::rpc {

/// Episode-RPC wire format, version 1.
///
/// Every frame payload is:
///
///   u32 magic ("ATLS") | u16 version | u16 type | u64 request_id | body
///
/// with all integers little-endian and all doubles encoded as their raw
/// IEEE-754 bit pattern (u64), so an `EnvQuery`/`EpisodeResult` round-trips
/// BIT-IDENTICALLY — the property that makes a remote episode
/// interchangeable with a local one under the service's memoization.
/// Transports add their own length prefix (see transport.hpp); the codec
/// only sees complete payloads.
///
/// Versioning: `kWireVersion` is bumped on any layout change; decoders
/// accept the contiguous range [kMinWireVersion, kWireVersion] and reject
/// everything else (a worker and client from incompatible builds fail loudly
/// instead of misreading). All v3 message bodies are byte-identical in v4 —
/// a v3 peer keeps working against a v4 server, it just cannot speak the
/// farm-control messages — so replies echo the REQUESTER's version and
/// v4-only message types are rejected when stamped with a v3 header.
inline constexpr std::uint32_t kWireMagic = 0x41544c53u;  // "ATLS"
/// v2: EnvQuery carries the `crn` tag (common-random-numbers plan marker), so
/// worker-side caches attribute cross-iteration reuse from remote clients.
/// v3: stats-snapshot messages (kStatsRequest/kStatsSnapshot) export a
/// worker's full EnvServiceStats — per-backend counters plus the serving
/// telemetry histograms (query latency, queue depth, RPC service time) — so
/// a router aggregates farm-wide telemetry without scraping worker stdout.
/// v4: farm control plane — worker register/announce (kHello/kAnnounce),
/// heartbeat (kHeartbeat/kHeartbeatAck), memo-table migration
/// (kMemoExport/kMemoSnapshot), runtime backend install
/// (kInstallBackend/kInstallAck), and best-effort episode cancel (kCancel).
/// v5: overload protection — kQuery carries the deadline budget (f64 ms) and
/// shed priority (u8), kResult carries the typed RejectReason (u8), and the
/// stats snapshot appends per-backend shed/deadline/reconnect counters plus
/// the service-level shed totals. No new message types: a v<=4 peer encodes
/// and decodes the shorter bodies as before (deadline/priority/rejection
/// default to "none" on decode), so the compatibility window only grows.
inline constexpr std::uint16_t kWireVersion = 5;
/// Oldest version this build still decodes. v3/v4 bodies are strict prefixes
/// of v5, so the compatibility window is free to keep.
inline constexpr std::uint16_t kMinWireVersion = 3;

/// Upper bound on one frame payload; a length prefix beyond this is treated
/// as a corrupted stream, not an allocation request.
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

enum class MsgType : std::uint16_t {
  kQuery = 1,          ///< client -> worker: run one EnvQuery
  kResult = 2,         ///< worker -> client: the EpisodeResult
  kError = 3,          ///< worker -> client: execution/decode failed (message string)
  kStatsRequest = 4,   ///< client -> worker: export your stats snapshot (empty body)
  kStatsSnapshot = 5,  ///< worker -> client: EnvServiceStats incl. telemetry histograms
  // --- v4: farm control plane -----------------------------------------------
  kHello = 6,           ///< controller -> worker: who are you? (empty body)
  kAnnounce = 7,        ///< worker -> controller: WorkerAnnounce (capacity + backends)
  kHeartbeat = 8,       ///< controller -> worker: are you alive? (empty body)
  kHeartbeatAck = 9,    ///< worker -> controller: WorkerHealth gauges
  kMemoExport = 10,     ///< controller -> worker: export memo entries for one backend (u32 id)
  kMemoSnapshot = 11,   ///< worker -> controller: MemoEntrySnapshot list
  kInstallBackend = 12, ///< controller -> worker: BackendInstallRequest (backend + memo push)
  kInstallAck = 13,     ///< worker -> controller: InstallResult
  kCancel = 14,         ///< client -> worker: drop the named request if still queued (no reply)
};

/// First message type that only exists at wire v4; a v3-stamped frame
/// carrying one of these is a protocol violation, not a decodable message.
inline constexpr std::uint16_t kFirstV4MsgType = 6;

/// Malformed frame: bad magic/version/type, truncated body, trailing bytes.
struct CodecError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Remote episode failed: transport exhausted its retries, the query timed
/// out, or the worker answered with an error frame.
struct RpcError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// ---- byte-level primitives --------------------------------------------------

class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s);

  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64();
  bool boolean();
  std::string str();

  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  /// Reject trailing garbage: a well-formed frame is consumed exactly.
  void expect_done() const;

 private:
  void need(std::size_t n) const;
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

// ---- messages ---------------------------------------------------------------

struct FrameHeader {
  MsgType type = MsgType::kQuery;
  std::uint64_t request_id = 0;
  /// Version the SENDER stamped on the frame — servers echo it back so a v3
  /// client round-trips entirely at v3 against a v4 worker.
  std::uint16_t version = kWireVersion;
};

/// Every encoder takes the wire version to stamp on the frame (defaulting to
/// this build's); servers pass the requester's version so replies decode on
/// old peers. Bodies shared with v3 are encoded identically at either
/// version.
///
/// `query.backend` carries the WORKER-side backend id (the client rewrites
/// its own id before encoding).
std::vector<std::uint8_t> encode_query(std::uint64_t request_id, const env::EnvQuery& query,
                                       std::uint16_t version = kWireVersion);
std::vector<std::uint8_t> encode_result(std::uint64_t request_id,
                                        const env::EpisodeResult& result,
                                        std::uint16_t version = kWireVersion);
std::vector<std::uint8_t> encode_error(std::uint64_t request_id, const std::string& message,
                                       std::uint16_t version = kWireVersion);
std::vector<std::uint8_t> encode_stats_request(std::uint64_t request_id,
                                               std::uint16_t version = kWireVersion);
/// Histograms ride as sparse (bucket index, count) pairs — an idle worker's
/// snapshot is a few hundred bytes, not kBucketCount * 8.
std::vector<std::uint8_t> encode_stats_snapshot(std::uint64_t request_id,
                                                const env::EnvServiceStats& stats,
                                                std::uint16_t version = kWireVersion);

// ---- v4 farm-control messages (always stamped v4) ---------------------------

std::vector<std::uint8_t> encode_hello(std::uint64_t request_id);
std::vector<std::uint8_t> encode_announce(std::uint64_t request_id,
                                          const env::WorkerAnnounce& announce);
std::vector<std::uint8_t> encode_heartbeat(std::uint64_t request_id);
std::vector<std::uint8_t> encode_heartbeat_ack(std::uint64_t request_id,
                                               const env::WorkerHealth& health);
std::vector<std::uint8_t> encode_memo_export(std::uint64_t request_id, env::BackendId backend);
std::vector<std::uint8_t> encode_memo_snapshot(std::uint64_t request_id,
                                               const std::vector<env::MemoEntrySnapshot>& memo);
std::vector<std::uint8_t> encode_install_backend(std::uint64_t request_id,
                                                 const env::BackendInstallRequest& request);
std::vector<std::uint8_t> encode_install_ack(std::uint64_t request_id,
                                             const env::InstallResult& result);
std::vector<std::uint8_t> encode_cancel(std::uint64_t request_id);

/// Validates magic + version (any version in [kMinWireVersion, kWireVersion];
/// v4-only message types additionally require a v4 stamp) and returns
/// {type, request_id, version}; the reader is left positioned at the body.
/// Throws CodecError on any mismatch.
FrameHeader decode_header(WireReader& reader);

/// Body decoders; each consumes the reader fully (CodecError otherwise).
/// Bodies that grew at v5 take the FRAME's version (from decode_header) so a
/// v3/v4 peer's shorter body decodes with the new fields defaulted.
env::EnvQuery decode_query_body(WireReader& reader, std::uint16_t version = kWireVersion);
env::EpisodeResult decode_result_body(WireReader& reader,
                                      std::uint16_t version = kWireVersion);
std::string decode_error_body(WireReader& reader);
env::EnvServiceStats decode_stats_snapshot_body(WireReader& reader,
                                                std::uint16_t version = kWireVersion);
env::WorkerAnnounce decode_announce_body(WireReader& reader);
env::WorkerHealth decode_heartbeat_ack_body(WireReader& reader);
env::BackendId decode_memo_export_body(WireReader& reader);
std::vector<env::MemoEntrySnapshot> decode_memo_snapshot_body(WireReader& reader);
env::BackendInstallRequest decode_install_backend_body(WireReader& reader);
env::InstallResult decode_install_ack_body(WireReader& reader);

}  // namespace atlas::rpc
