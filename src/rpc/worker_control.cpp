#include "rpc/worker_control.hpp"

#include <utility>

namespace atlas::rpc {

namespace {

RemoteBackendOptions base_options(const RemoteWorkerOptions& options) {
  RemoteBackendOptions backend;
  backend.host = options.host;
  backend.port = options.port;
  backend.timeout_ms = options.timeout_ms;
  backend.control_timeout_ms = options.control_timeout_ms;
  backend.max_retries = options.max_retries;
  backend.transport_factory = options.transport_factory;
  return backend;
}

}  // namespace

RemoteWorkerControl::RemoteWorkerControl(RemoteWorkerOptions options)
    : options_(std::move(options)),
      address_(options_.host + ":" + std::to_string(options_.port)) {
  RemoteBackendOptions control = base_options(options_);
  control.name = "control@" + address_;
  control_ = std::make_shared<RemoteBackend>(std::move(control));
}

std::shared_ptr<const env::EnvBackend> RemoteWorkerControl::make_backend(
    const env::WorkerBackendInfo& info, env::BackendId remote_backend) {
  RemoteBackendOptions backend = base_options(options_);
  backend.name = info.name + "@" + address_;
  backend.kind = info.kind;
  backend.remote_backend = remote_backend;
  backend.cost_hint = info.cost_hint;
  backend.accepts_sim_params = info.accepts_sim_params;
  return std::make_shared<RemoteBackend>(std::move(backend));
}

}  // namespace atlas::rpc
