#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "env/farm_controller.hpp"
#include "rpc/remote_backend.hpp"
#include "rpc/transport.hpp"

namespace atlas::rpc {

struct RemoteWorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Per-episode deadline for data-plane backends built via make_backend.
  double timeout_ms = 30000.0;
  /// Deadline for hello / heartbeat / memo-export / install round-trips.
  double control_timeout_ms = 5000.0;
  int max_retries = 2;
  /// Test seam shared by the control connection AND every data-plane
  /// backend: loopback endpoints instead of TCP (see RemoteBackendOptions).
  std::function<std::unique_ptr<Transport>()> transport_factory;
};

/// The wire-v4 adapter putting one remote episode worker behind the
/// transport-agnostic `env::WorkerControl` contract the FarmController
/// drives. Control traffic (hello / heartbeat / memo export / install) rides
/// a dedicated RemoteBackend connection, so a worker drowning in episodes
/// still answers heartbeats from its read thread; each announced backend
/// gets its own data-plane RemoteBackend via make_backend.
class RemoteWorkerControl final : public env::WorkerControl {
 public:
  explicit RemoteWorkerControl(RemoteWorkerOptions options);

  const std::string& address() const noexcept override { return address_; }

  env::WorkerAnnounce hello() override { return control_->hello(); }
  env::WorkerHealth heartbeat() override { return control_->heartbeat(); }
  std::vector<env::MemoEntrySnapshot> export_memo(env::BackendId remote_backend) override {
    return control_->export_memo(remote_backend);
  }
  env::InstallResult install_backend(const env::BackendInstallRequest& request) override {
    return control_->install_backend(request);
  }

  std::shared_ptr<const env::EnvBackend> make_backend(const env::WorkerBackendInfo& info,
                                                      env::BackendId remote_backend) override;

  /// Client-side health of the control connection (reconnect backoff state,
  /// consecutive timeouts) — what heartbeat() failures look like from here.
  RemoteLiveness liveness() const { return control_->liveness(); }

  /// Scrape the worker's OWN serving stats (per-backend counters + service
  /// telemetry) — the wire-v3 stats snapshot, for per-worker reporting.
  env::EnvServiceStats worker_stats() const { return control_->fetch_worker_stats(); }

 private:
  RemoteWorkerOptions options_;
  std::string address_;
  std::shared_ptr<RemoteBackend> control_;
};

}  // namespace atlas::rpc
