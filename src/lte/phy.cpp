#include "lte/phy.hpp"

#include <cmath>

namespace atlas::lte {

namespace {

constexpr double kThermalNoiseDbmHz = -174.0;

}  // namespace

double pathloss_db(double distance_m, double baseline_loss_db, double exponent) {
  const double d = std::max(distance_m, 0.1);
  return baseline_loss_db + 10.0 * exponent * std::log10(d);
}

double noise_interference_floor_db(const LinkBudget& budget) {
  const double noise_dbm =
      kThermalNoiseDbmHz + 10.0 * std::log10(kPrbBandwidthHz) + budget.noise_figure_db;
  // Noise + interference combined in linear domain.
  const double floor_mw =
      std::pow(10.0, noise_dbm / 10.0) + std::pow(10.0, budget.interference_dbm / 10.0);
  return 10.0 * std::log10(floor_mw);
}

double sinr_db(const LinkBudget& budget, double distance_m, double fading_db) {
  return sinr_db_cached(
      budget, pathloss_db(distance_m, budget.baseline_loss_db, budget.pathloss_exponent),
      noise_interference_floor_db(budget), fading_db);
}

}  // namespace atlas::lte
