#include "lte/phy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace atlas::lte {

namespace {

// 3GPP TS 36.213-style efficiency ladder (QPSK -> 16QAM -> 64QAM).
constexpr double kEfficiency[kMaxMcs + 1] = {
    0.15, 0.19, 0.23, 0.31, 0.38, 0.49, 0.60, 0.74, 0.88, 1.03,
    1.18, 1.33, 1.48, 1.70, 1.91, 2.16, 2.41, 2.57, 2.73, 3.03,
    3.32, 3.61, 3.90, 4.21, 4.52, 4.82, 5.12, 5.33, 5.55};

constexpr double kThermalNoiseDbmHz = -174.0;

}  // namespace

double mcs_efficiency(int mcs) {
  if (mcs < 0 || mcs > kMaxMcs) throw std::invalid_argument("mcs_efficiency: mcs out of range");
  return kEfficiency[mcs];
}

double mcs_sinr_threshold_db(int mcs) {
  if (mcs < 0 || mcs > kMaxMcs) {
    throw std::invalid_argument("mcs_sinr_threshold_db: mcs out of range");
  }
  // Linearized waterfall positions: MCS 0 decodes around -7 dB, MCS 28 needs
  // about 22.4 dB — the usual AWGN link-abstraction slope of ~1.05 dB/MCS.
  return -7.0 + 1.05 * static_cast<double>(mcs);
}

double tbs_bits(int mcs, int prbs, double overhead) {
  if (prbs < 0) throw std::invalid_argument("tbs_bits: negative PRBs");
  if (prbs == 0) return 0.0;
  return mcs_efficiency(mcs) * kPrbBandwidthHz * (kTtiMs / 1000.0) *
         static_cast<double>(prbs) * overhead;
}

double bler(int mcs, double sinr_db, double steepness) {
  const double margin = sinr_db - mcs_sinr_threshold_db(mcs);
  return 1.0 / (1.0 + std::exp(steepness * margin));
}

int select_mcs(double sinr_db, double margin_db, int mcs_offset, int cap) {
  cap = std::clamp(cap, 0, kMaxMcs);
  int mcs = 0;
  for (int m = cap; m >= 0; --m) {
    if (mcs_sinr_threshold_db(m) + margin_db <= sinr_db) {
      mcs = m;
      break;
    }
  }
  return std::max(0, mcs - std::max(0, mcs_offset));
}

double pathloss_db(double distance_m, double baseline_loss_db, double exponent) {
  const double d = std::max(distance_m, 0.1);
  return baseline_loss_db + 10.0 * exponent * std::log10(d);
}

double sinr_db(const LinkBudget& budget, double distance_m, double fading_db) {
  const double rx_dbm =
      budget.tx_psd_dbm_per_prb -
      pathloss_db(distance_m, budget.baseline_loss_db, budget.pathloss_exponent) + fading_db;
  const double noise_dbm =
      kThermalNoiseDbmHz + 10.0 * std::log10(kPrbBandwidthHz) + budget.noise_figure_db;
  // Noise + interference combined in linear domain.
  const double floor_mw =
      std::pow(10.0, noise_dbm / 10.0) + std::pow(10.0, budget.interference_dbm / 10.0);
  const double sinr = rx_dbm - 10.0 * std::log10(floor_mw);
  return std::min(sinr, budget.sinr_cap_db);
}

FadingProcess::FadingProcess(double sigma_db, double rho)
    : sigma_db_(sigma_db), rho_(std::clamp(rho, 0.0, 0.9999)) {}

double FadingProcess::step(atlas::math::Rng& rng) {
  if (!enabled()) return 0.0;
  value_ = rho_ * value_ + sigma_db_ * std::sqrt(1.0 - rho_ * rho_) * rng.normal();
  return value_;
}

}  // namespace atlas::lte
