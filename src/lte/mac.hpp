#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "lte/phy.hpp"
#include "math/rng.hpp"

namespace atlas::lte {

/// A unit of data awaiting radio transmission (an application frame on the
/// uplink, a result on the downlink). Identified by the application frame id.
struct RadioSdu {
  std::uint64_t id = 0;
  double bits_remaining = 0.0;
};

/// Byte queue feeding one direction of one UE's radio link (RLC-style).
///
/// Uplink queues model the LTE scheduling-request cycle: data arriving into
/// an *empty* queue only becomes schedulable after an access delay (SR
/// periodicity + grant processing), which is what makes small-packet RTTs
/// tens of milliseconds on real LTE (paper Table 1's 34 ms ping).
class RadioQueue {
 public:
  /// Enqueue an SDU at `now`; if the queue was empty, data becomes
  /// schedulable at now + access_delay_ms.
  void push(std::uint64_t id, double bits, double now, double access_delay_ms);

  /// Full-buffer mode: the queue always has data (throughput probes).
  void set_full_buffer(bool on) noexcept { full_buffer_ = on; }
  bool full_buffer() const noexcept { return full_buffer_; }

  bool has_data(double now) const noexcept;
  double queued_bits() const noexcept;

  /// Remove up to `bits` from the head; returns ids of fully-drained SDUs.
  std::vector<std::uint64_t> drain(double bits);

 private:
  std::deque<RadioSdu> sdus_;
  double schedulable_at_ = 0.0;
  bool full_buffer_ = false;
};

/// Result of one TTI of one UE in one direction.
struct TtiOutcome {
  double delivered_bits = 0.0;
  int tb_total = 0;  ///< Transport blocks attempted.
  int tb_err = 0;    ///< Transport blocks errored (HARQ retransmission).
  int mcs = 0;
  double sinr_db = 0.0;
  std::vector<std::uint64_t> completed;  ///< SDUs fully delivered this TTI.
};

/// Per-direction radio parameters shared by all UEs of a deployment.
struct RadioParams {
  LinkBudget budget;
  int mcs_cap = kMaxMcs;
  double la_margin_db = 3.5;   ///< Link-adaptation backoff (~3.7e-3 BLER).
  double tbs_overhead = 0.75;  ///< PHY capacity fraction carried by the TB.
  int harq_rtt_ttis = 1;       ///< TTIs until an errored TB is retransmitted
                               ///< (1 = next TTI; the real stack needs ~8).
};

/// One UE's radio state: position, a (reciprocal) fast-fading process, and
/// UL/DL queues. The episode runner steps fading once per TTI and asks the
/// scheduler to run each direction.
///
/// `cqi_lag_ttis` models outdated channel-state reporting: link adaptation
/// picks the MCS from the fading value `cqi_lag_ttis` TTIs ago while the
/// block error is rolled on the *current* fading — the mechanism behind the
/// real network's elevated packet error rates in the paper's Table 1.
class UeRadio {
 public:
  UeRadio(RadioParams ul, RadioParams dl, double distance_m, double fading_sigma_db,
          double fading_rho, int cqi_lag_ttis = 0);

  void step_fading(atlas::math::Rng& rng);
  void set_distance(double d) noexcept { distance_m_ = d; }
  double distance() const noexcept { return distance_m_; }

  RadioQueue& ul_queue() noexcept { return ul_queue_; }
  RadioQueue& dl_queue() noexcept { return dl_queue_; }

  /// Run one TTI in one direction on `prbs` granted PRBs with the slice's
  /// MCS offset. No-op (all-zero outcome) if the queue has no schedulable
  /// data or prbs == 0.
  TtiOutcome run_tti(bool uplink, double now, int prbs, int mcs_offset,
                     atlas::math::Rng& rng);

 private:
  double cqi_fading_db() const noexcept;

  RadioParams ul_params_, dl_params_;
  double distance_m_;
  FadingProcess fading_;
  int cqi_lag_ttis_;
  std::deque<double> fading_history_;
  RadioQueue ul_queue_, dl_queue_;
  double ul_blocked_until_ = 0.0;  ///< HARQ round-trip gate after a TB error.
  double dl_blocked_until_ = 0.0;
};

/// A slice's radio share for the per-TTI scheduler.
struct SliceRadioShare {
  int prb_cap_ul = kTotalPrbs;
  int prb_cap_dl = kTotalPrbs;
  int mcs_offset_ul = 0;
  int mcs_offset_dl = 0;
  std::vector<UeRadio*> ues;
};

/// Aggregate of one direction over one TTI across all slices.
struct DirectionTti {
  double delivered_bits = 0.0;
  int tb_total = 0;
  int tb_err = 0;
  std::vector<std::pair<UeRadio*, std::vector<std::uint64_t>>> completed;
};

/// Run one TTI for one direction across slices. Each slice receives at most
/// its PRB cap (performance isolation, as enforced by FlexRAN in the paper's
/// prototype); within a slice, PRBs split evenly among UEs with schedulable
/// data. Total grants never exceed kTotalPrbs (slices are served in order).
DirectionTti run_direction_tti(std::vector<SliceRadioShare>& slices, bool uplink, double now,
                               atlas::math::Rng& rng);

}  // namespace atlas::lte
