#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "lte/phy.hpp"
#include "math/rng.hpp"

namespace atlas::lte {

/// A unit of data awaiting radio transmission (an application frame on the
/// uplink, a result on the downlink). Identified by the application frame id.
struct RadioSdu {
  std::uint64_t id = 0;
  double bits_remaining = 0.0;
};

/// Byte queue feeding one direction of one UE's radio link (RLC-style).
///
/// Uplink queues model the LTE scheduling-request cycle: data arriving into
/// an *empty* queue only becomes schedulable after an access delay (SR
/// periodicity + grant processing), which is what makes small-packet RTTs
/// tens of milliseconds on real LTE (paper Table 1's 34 ms ping).
class RadioQueue {
 public:
  /// Enqueue an SDU at `now`; if the queue was empty, data becomes
  /// schedulable at now + access_delay_ms.
  void push(std::uint64_t id, double bits, double now, double access_delay_ms);

  /// Full-buffer mode: the queue always has data (throughput probes).
  void set_full_buffer(bool on) noexcept { full_buffer_ = on; }
  bool full_buffer() const noexcept { return full_buffer_; }

  /// Inline: the scheduler polls every UE in every direction every TTI.
  bool has_data(double now) const noexcept {
    if (full_buffer_) return true;
    return !sdus_.empty() && now >= schedulable_at_;
  }

  /// Total queued bits. O(1): maintained incrementally in push/drain (the
  /// scheduler asks every busy TTI; summing the deque was O(n) per TTI).
  /// Debug builds assert the running total against the recomputed sum.
  double queued_bits() const noexcept { return queued_bits_; }

  /// Remove up to `bits` from the head; appends ids of fully-drained SDUs to
  /// `done` (caller-owned, reused across TTIs — no allocation here).
  void drain_into(double bits, std::vector<std::uint64_t>& done);

  /// Convenience wrapper allocating the result (tests / cold paths).
  std::vector<std::uint64_t> drain(double bits);

 private:
  std::deque<RadioSdu> sdus_;
  double queued_bits_ = 0.0;
  double schedulable_at_ = 0.0;
  bool full_buffer_ = false;
};

/// Scalar result of one TTI of one UE in one direction (the hot-path
/// variant: completed-SDU ids go into a caller-owned buffer instead).
struct TtiStats {
  double delivered_bits = 0.0;
  int tb_total = 0;  ///< Transport blocks attempted.
  int tb_err = 0;    ///< Transport blocks errored (HARQ retransmission).
  int mcs = 0;
  double sinr_db = 0.0;
};

/// Result of one TTI of one UE in one direction, with completions attached
/// (allocating convenience form used by tests).
struct TtiOutcome : TtiStats {
  std::vector<std::uint64_t> completed;  ///< SDUs fully delivered this TTI.
};

/// Per-direction radio parameters shared by all UEs of a deployment.
struct RadioParams {
  LinkBudget budget;
  int mcs_cap = kMaxMcs;
  double la_margin_db = 3.5;   ///< Link-adaptation backoff (~3.7e-3 BLER).
  double tbs_overhead = 0.75;  ///< PHY capacity fraction carried by the TB.
  int harq_rtt_ttis = 1;       ///< TTIs until an errored TB is retransmitted
                               ///< (1 = next TTI; the real stack needs ~8).
};

/// One UE's radio state: position, a (reciprocal) fast-fading process, and
/// UL/DL queues. The episode runner steps fading once per TTI and asks the
/// scheduler to run each direction.
///
/// `cqi_lag_ttis` models outdated channel-state reporting: link adaptation
/// picks the MCS from the fading value `cqi_lag_ttis` TTIs ago while the
/// block error is rolled on the *current* fading — the mechanism behind the
/// real network's elevated packet error rates in the paper's Table 1.
///
/// Link-budget caching: the pathloss and noise-floor terms of the per-TTI
/// SINR only change on set_distance (mobility cadence, 100 ms) or never
/// (budget is fixed at construction), so they are precomputed per direction
/// instead of paying log10/pow every TTI. A one-entry BLER memo per
/// direction likewise skips the logistic exp() whenever (mcs, sinr) repeats
/// — every TTI when fading is disabled (the simulator profile).
class UeRadio {
 public:
  UeRadio(RadioParams ul, RadioParams dl, double distance_m, double fading_sigma_db,
          double fading_rho, int cqi_lag_ttis = 0);

  /// Inline: stepped for every UE every TTI; with fading disabled (the
  /// simulator profile) this must cost a branch, not two calls.
  void step_fading(atlas::math::Rng& rng) {
    fading_.step(rng);
    if (cqi_lag_ttis_ > 0) {
      // Ring buffer of the last lag+1 values: same contents and same "oldest
      // first" semantics as the deque it replaces, without per-TTI deque ops.
      const std::size_t cap = fading_history_.size();
      if (fh_count_ < cap) {
        fading_history_[fh_count_++] = fading_.value();
      } else {
        fading_history_[fh_head_] = fading_.value();
        if (++fh_head_ == cap) fh_head_ = 0;
      }
    }
  }
  void set_distance(double d) noexcept;
  double distance() const noexcept { return distance_m_; }

  RadioQueue& ul_queue() noexcept { return ul_queue_; }
  RadioQueue& dl_queue() noexcept { return dl_queue_; }
  const RadioQueue& ul_queue() const noexcept { return ul_queue_; }
  const RadioQueue& dl_queue() const noexcept { return dl_queue_; }

  /// Run one TTI in one direction on `prbs` granted PRBs with the slice's
  /// MCS offset; fully-delivered SDU ids are appended to `completed`
  /// (caller-owned, reused across TTIs). No-op (all-zero outcome) if the
  /// queue has no schedulable data or prbs == 0.
  TtiStats run_tti_into(bool uplink, double now, int prbs, int mcs_offset,
                        atlas::math::Rng& rng, std::vector<std::uint64_t>& completed);

  /// Allocating convenience form of run_tti_into (tests / cold paths).
  TtiOutcome run_tti(bool uplink, double now, int prbs, int mcs_offset,
                     atlas::math::Rng& rng);

 private:
  double cqi_fading_db() const noexcept {
    if (cqi_lag_ttis_ == 0 || fh_count_ == 0) return fading_.value();
    return fading_history_[fh_count_ < fading_history_.size() ? 0 : fh_head_];
  }
  void refresh_link_cache() noexcept;

  /// Distance/budget terms of sinr_db, precomputed per direction.
  struct LinkCache {
    double pathloss_db = 0.0;
    double floor_db = 0.0;
  };
  /// One-entry memo of the full per-TTI link computation (SINR, MCS, TB
  /// size, BLER) keyed on its only per-TTI inputs: the two fading values and
  /// the grant. Budget and margin are fixed per UE; distance invalidates via
  /// set_distance. A steady-state UE (fading disabled, stable grant — every
  /// background full-buffer UE on the simulator profile) hits every TTI and
  /// pays one compare + one Bernoulli draw instead of the whole chain.
  struct TtiMemo {
    bool valid = false;
    double cqi_fading = 0.0;
    double fading = 0.0;
    int prbs = -1;
    int offset = 0;
    int mcs = 0;
    double sinr_db = 0.0;
    double tb = 0.0;
    double p = 0.0;
  };

  RadioParams ul_params_, dl_params_;
  double distance_m_;
  FadingProcess fading_;
  int cqi_lag_ttis_;
  std::vector<double> fading_history_;  ///< Ring buffer of the last lag+1 values.
  std::size_t fh_head_ = 0;             ///< Index of the oldest entry once full.
  std::size_t fh_count_ = 0;
  RadioQueue ul_queue_, dl_queue_;
  LinkCache ul_link_cache_, dl_link_cache_;
  TtiMemo ul_memo_, dl_memo_;
  double ul_blocked_until_ = 0.0;  ///< HARQ round-trip gate after a TB error.
  double dl_blocked_until_ = 0.0;
};

/// A slice's radio share for the per-TTI scheduler.
struct SliceRadioShare {
  int prb_cap_ul = kTotalPrbs;
  int prb_cap_dl = kTotalPrbs;
  int mcs_offset_ul = 0;
  int mcs_offset_dl = 0;
  std::vector<UeRadio*> ues;
};

/// Reusable per-episode working set of the TTI scheduler: the active-UE set,
/// the flat completed-SDU id buffer, and the per-UE spans into it all live
/// here, so steady-state TTIs perform no allocation at all. One instance per
/// episode (or per thread); cleared and refilled by each run_direction_tti.
struct TtiScratch {
  /// `ids[begin .. begin+count)` are the SDUs `ue` completed this TTI.
  struct CompletedSpan {
    UeRadio* ue = nullptr;
    std::uint32_t begin = 0;
    std::uint32_t count = 0;
  };

  double delivered_bits = 0.0;
  int tb_total = 0;
  int tb_err = 0;
  std::vector<std::uint64_t> ids;
  std::vector<CompletedSpan> completed;
  std::vector<UeRadio*> active;  ///< Per-slice working set; transient.

  void reset() noexcept {
    delivered_bits = 0.0;
    tb_total = 0;
    tb_err = 0;
    ids.clear();
    completed.clear();
    active.clear();
  }
};

/// Aggregate of one direction over one TTI across all slices (allocating
/// convenience form used by tests).
struct DirectionTti {
  double delivered_bits = 0.0;
  int tb_total = 0;
  int tb_err = 0;
  std::vector<std::pair<UeRadio*, std::vector<std::uint64_t>>> completed;
};

/// True when any UE in any slice has schedulable data for `uplink` at `now`.
/// Inline idle fast-path: most TTIs of a frame-based workload have nothing
/// queued (SR wait, frame gaps), and when this returns false a
/// run_direction_tti call would be a complete no-op — no RNG draws, no
/// counters, no completions — so callers skip it entirely.
inline bool direction_has_active_ue(const std::vector<SliceRadioShare>& slices, bool uplink,
                                    double now) noexcept {
  for (const auto& slice : slices) {
    for (const UeRadio* ue : slice.ues) {
      const RadioQueue& q = uplink ? ue->ul_queue() : ue->dl_queue();
      if (q.has_data(now)) return true;
    }
  }
  return false;
}

/// Run one TTI for one direction across slices into `scratch` (reset first).
/// Each slice receives at most its PRB cap (performance isolation, as
/// enforced by FlexRAN in the paper's prototype); within a slice, PRBs split
/// evenly among UEs with schedulable data. Total grants never exceed
/// kTotalPrbs (slices are served in order).
void run_direction_tti(std::vector<SliceRadioShare>& slices, bool uplink, double now,
                       atlas::math::Rng& rng, TtiScratch& scratch);

/// Allocating convenience form of the above (tests / cold paths).
DirectionTti run_direction_tti(std::vector<SliceRadioShare>& slices, bool uplink, double now,
                               atlas::math::Rng& rng);

}  // namespace atlas::lte
