#pragma once

#include <cstddef>
#include <cstdint>

#include "common/arena.hpp"
#include "lte/mac.hpp"
#include "lte/phy.hpp"
#include "math/rng.hpp"

namespace atlas::lte {

/// Aggregate outcome of one batched TTI sweep (the SoA analogue of summing
/// TtiStats over every background UE).
struct BatchTtiStats {
  double delivered_bits = 0.0;
  int tb_total = 0;  ///< Transport blocks attempted this TTI.
  int tb_err = 0;    ///< Transport blocks errored (HARQ retransmission).
};

/// Structure-of-arrays batch of background full-buffer downlink UEs.
///
/// The episode engine splits UEs into two tiers: the foreground slice UE
/// keeps the exact per-UE DES path (UeRadio), while background UEs — always
/// the "YouTube-style" full-buffer downlink population, whose only coupling
/// to the foreground is PRB contention and the shared RNG stream — live
/// here as contiguous per-field arrays (fading state, pathloss terms,
/// cached TB size / BLER, HARQ gates). One run_dl_tti call sweeps the whole
/// population with flat auto-vectorizable loops instead of N virtual-ish
/// per-UE calls, and one step_fading call advances every AR(1) process.
///
/// Determinism contract (golden-hash pinned): the batch consumes the shared
/// episode Rng in EXACTLY the scalar engine's order —
///   * step_fading draws one normal innovation per UE, ascending UE index,
///     and only when fading is enabled (sigma > 0);
///   * run_dl_tti draws one Bernoulli uniform per GRANTED, non-HARQ-blocked
///     UE, ascending UE index (UEs past the PRB budget or inside a HARQ
///     round trip draw nothing, exactly like the scalar scheduler).
/// Because MCS selection / TB sizing / BLER are pure functions of (fading,
/// grant, offset), the batch may cache them under a coarser batch-level
/// validity rule than UeRadio's per-UE memo without changing any result.
///
/// Storage comes from a common::Arena (per-worker episode arena): every
/// array is one bump allocation, nothing touches the global allocator, and
/// the whole batch is reclaimed by the episode's ArenaScope. UeBatch is
/// trivially destructible by construction — it owns no memory.
class UeBatch {
 public:
  /// An empty batch (no arena needed; all sweeps are no-ops).
  UeBatch() = default;

  /// `count` UEs at `distance_m` under the downlink parameters `dl`.
  /// Fading/CQI semantics match UeRadio: sigma_db <= 0 disables fading,
  /// `cqi_lag_ttis` > 0 makes link adaptation read the fading value from
  /// that many TTIs ago while BLER rolls on the current one.
  UeBatch(common::Arena& arena, std::size_t count, const RadioParams& dl,
          double distance_m, double fading_sigma_db, double fading_rho,
          int cqi_lag_ttis);

  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  /// Advance every UE's fading process one TTI. Draw order: UE 0, 1, ... —
  /// the same order the scalar engine stepped its background vector in.
  /// Inline no-op on the static channel (simulator profile: no fading, no
  /// CQI history): called every TTI, so the disabled case costs a branch.
  void step_fading(atlas::math::Rng& rng) {
    if (count_ == 0 || (!fading_enabled_ && cqi_lag_ == 0)) return;
    step_fading_impl(rng);
  }

  /// One downlink TTI for the whole batch on `budget_prbs` PRBs split
  /// evenly (first budget % count UEs get the +1 remainder, matching the
  /// scalar scheduler; with budget < count only the first `budget` UEs are
  /// granted at all). Overwrites `out`.
  void run_dl_tti(double now, int budget_prbs, int mcs_offset,
                  atlas::math::Rng& rng, BatchTtiStats& out);

  // ---- per-UE inspection (tests / diagnostics; not on the hot path) ------
  double fading_db(std::size_t i) const noexcept { return fading_value_[i]; }
  double distance(std::size_t i) const noexcept { return distance_m_[i]; }
  /// Move one UE (invalidates the cached link terms, like UeRadio).
  void set_distance(std::size_t i, double d) noexcept;
  double blocked_until(std::size_t i) const noexcept { return blocked_until_[i]; }

 private:
  void step_fading_impl(atlas::math::Rng& rng);
  double cqi_fading(std::size_t i) const noexcept;
  void refresh_link(int per_ue, int extra, int granted, int mcs_offset);

  std::size_t count_ = 0;
  RadioParams params_;        ///< Downlink parameters, shared by the batch.
  double floor_db_ = 0.0;     ///< Noise+interference floor (budget-fixed).
  double fading_rho_ = 0.0;
  double innovation_scale_ = 0.0;  ///< sigma * sqrt(1 - rho^2), hoisted.
  bool fading_enabled_ = false;
  int cqi_lag_ = 0;

  // ---- SoA state (arena-backed, length count_ unless noted) --------------
  double* distance_m_ = nullptr;
  double* pathloss_db_ = nullptr;
  double* fading_value_ = nullptr;
  double* innovation_ = nullptr;     ///< Scratch: this TTI's normal draws.
  double* cqi_hist_ = nullptr;       ///< (cqi_lag_+1) rows x count_ ring.
  double* blocked_until_ = nullptr;  ///< Per-UE HARQ round-trip gate.
  double* tb_bits_ = nullptr;        ///< Cached TB size per UE.
  double* bler_p_ = nullptr;         ///< Cached block-error probability.
  /// Cached integer Bernoulli threshold: ceil(bler_p * 2^53). With k the 53
  /// high bits of one raw RNG draw, `k < threshold` is EXACTLY `uniform() <
  /// p` (uniform() is k * 2^-53 and the power-of-two scalings are lossless),
  /// replacing the int->double convert + FP compare per UE per TTI with an
  /// integer compare.
  std::uint64_t* bler_threshold_ = nullptr;
  std::uint64_t* draw53_ = nullptr;  ///< Scratch: this TTI's 53-bit draws.

  std::size_t hist_head_ = 0;  ///< Oldest row once the ring is full.
  std::size_t hist_count_ = 0;
  double max_blocked_until_ = 0.0;  ///< Fast-path gate: no UE blocked before.

  // Batch-level cache validity for tb_bits_/bler_p_: inputs are the grant
  // layout, the slice offset, and (when enabled) the per-TTI fading values.
  bool link_valid_ = false;
  int memo_per_ue_ = -1;
  int memo_extra_ = -1;
  int memo_offset_ = 0;
};

}  // namespace atlas::lte
