#include "lte/mac.hpp"

#include <algorithm>

namespace atlas::lte {

void RadioQueue::push(std::uint64_t id, double bits, double now, double access_delay_ms) {
  if (sdus_.empty() && !full_buffer_) {
    schedulable_at_ = now + access_delay_ms;
  }
  sdus_.push_back({id, bits});
}

bool RadioQueue::has_data(double now) const noexcept {
  if (full_buffer_) return true;
  return !sdus_.empty() && now >= schedulable_at_;
}

double RadioQueue::queued_bits() const noexcept {
  double acc = 0.0;
  for (const auto& s : sdus_) acc += s.bits_remaining;
  return acc;
}

std::vector<std::uint64_t> RadioQueue::drain(double bits) {
  std::vector<std::uint64_t> done;
  while (bits > 0.0 && !sdus_.empty()) {
    RadioSdu& head = sdus_.front();
    if (head.bits_remaining > bits) {
      head.bits_remaining -= bits;
      bits = 0.0;
    } else {
      bits -= head.bits_remaining;
      done.push_back(head.id);
      sdus_.pop_front();
    }
  }
  return done;
}

UeRadio::UeRadio(RadioParams ul, RadioParams dl, double distance_m, double fading_sigma_db,
                 double fading_rho, int cqi_lag_ttis)
    : ul_params_(ul),
      dl_params_(dl),
      distance_m_(distance_m),
      fading_(fading_sigma_db, fading_rho),
      cqi_lag_ttis_(std::max(0, cqi_lag_ttis)) {}

void UeRadio::step_fading(atlas::math::Rng& rng) {
  fading_.step(rng);
  if (cqi_lag_ttis_ > 0) {
    fading_history_.push_back(fading_.value());
    while (fading_history_.size() > static_cast<std::size_t>(cqi_lag_ttis_) + 1) {
      fading_history_.pop_front();
    }
  }
}

double UeRadio::cqi_fading_db() const noexcept {
  if (cqi_lag_ttis_ == 0 || fading_history_.empty()) return fading_.value();
  return fading_history_.front();
}

TtiOutcome UeRadio::run_tti(bool uplink, double now, int prbs, int mcs_offset,
                            atlas::math::Rng& rng) {
  TtiOutcome out;
  if (prbs <= 0) return out;
  RadioQueue& queue = uplink ? ul_queue_ : dl_queue_;
  if (!queue.has_data(now)) return out;
  double& blocked_until = uplink ? ul_blocked_until_ : dl_blocked_until_;
  if (now < blocked_until) return out;
  const RadioParams& params = uplink ? ul_params_ : dl_params_;

  // Link adaptation sees the (possibly stale) reported channel; the actual
  // block error is drawn from the instantaneous channel.
  const double reported_sinr = sinr_db(params.budget, distance_m_, cqi_fading_db());
  out.sinr_db = sinr_db(params.budget, distance_m_, fading_.value());
  out.mcs = select_mcs(reported_sinr, params.la_margin_db, mcs_offset, params.mcs_cap);
  const double tb = tbs_bits(out.mcs, prbs, params.tbs_overhead);
  out.tb_total = 1;
  if (rng.bernoulli(bler(out.mcs, out.sinr_db))) {
    // HARQ: the transport block is lost; the data stays queued and is
    // retransmitted after the HARQ round trip (no soft combining modeled).
    out.tb_err = 1;
    blocked_until = now + static_cast<double>(params.harq_rtt_ttis) * kTtiMs;
    return out;
  }
  if (queue.full_buffer()) {
    out.delivered_bits = tb;
    return out;
  }
  const double queued = queue.queued_bits();
  out.delivered_bits = std::min(tb, queued);
  out.completed = queue.drain(tb);
  return out;
}

DirectionTti run_direction_tti(std::vector<SliceRadioShare>& slices, bool uplink, double now,
                               atlas::math::Rng& rng) {
  DirectionTti agg;
  int remaining = kTotalPrbs;
  for (auto& slice : slices) {
    if (remaining <= 0) break;
    const int cap = uplink ? slice.prb_cap_ul : slice.prb_cap_dl;
    const int offset = uplink ? slice.mcs_offset_ul : slice.mcs_offset_dl;
    int budget = std::min(cap, remaining);
    if (budget <= 0) continue;

    std::vector<UeRadio*> active;
    for (UeRadio* ue : slice.ues) {
      RadioQueue& q = uplink ? ue->ul_queue() : ue->dl_queue();
      if (q.has_data(now)) active.push_back(ue);
    }
    if (active.empty()) continue;

    const int per_ue = budget / static_cast<int>(active.size());
    int extra = budget % static_cast<int>(active.size());
    int used = 0;
    for (UeRadio* ue : active) {
      int grant = per_ue + (extra > 0 ? 1 : 0);
      if (extra > 0) --extra;
      if (grant <= 0) continue;
      TtiOutcome out = ue->run_tti(uplink, now, grant, offset, rng);
      agg.delivered_bits += out.delivered_bits;
      agg.tb_total += out.tb_total;
      agg.tb_err += out.tb_err;
      if (!out.completed.empty()) {
        agg.completed.emplace_back(ue, std::move(out.completed));
      }
      used += grant;
    }
    remaining -= used;
  }
  return agg;
}

}  // namespace atlas::lte
