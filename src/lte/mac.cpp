#include "lte/mac.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace atlas::lte {

namespace {

#ifndef NDEBUG
/// Recompute the queue total the pre-optimization way. The incremental total
/// subtracts drained amounts instead of re-summing, so it can differ from
/// the fresh sum by accumulated rounding — but only in the last ULPs.
double recomputed_bits(const std::deque<RadioSdu>& sdus) {
  double acc = 0.0;
  for (const auto& s : sdus) acc += s.bits_remaining;
  return acc;
}
#endif

}  // namespace

void RadioQueue::push(std::uint64_t id, double bits, double now, double access_delay_ms) {
  if (sdus_.empty() && !full_buffer_) {
    schedulable_at_ = now + access_delay_ms;
  }
  sdus_.push_back({id, bits});
  queued_bits_ += bits;
  assert(std::abs(queued_bits_ - recomputed_bits(sdus_)) <=
         1e-6 * (1.0 + std::abs(queued_bits_)));
}

void RadioQueue::drain_into(double bits, std::vector<std::uint64_t>& done) {
  while (bits > 0.0 && !sdus_.empty()) {
    RadioSdu& head = sdus_.front();
    if (head.bits_remaining > bits) {
      head.bits_remaining -= bits;
      queued_bits_ -= bits;
      bits = 0.0;
    } else {
      bits -= head.bits_remaining;
      queued_bits_ -= head.bits_remaining;
      done.push_back(head.id);
      sdus_.pop_front();
    }
  }
  if (sdus_.empty()) queued_bits_ = 0.0;  // forget residual rounding at empty
  assert(std::abs(queued_bits_ - recomputed_bits(sdus_)) <=
         1e-6 * (1.0 + std::abs(queued_bits_)));
}

std::vector<std::uint64_t> RadioQueue::drain(double bits) {
  std::vector<std::uint64_t> done;
  drain_into(bits, done);
  return done;
}

UeRadio::UeRadio(RadioParams ul, RadioParams dl, double distance_m, double fading_sigma_db,
                 double fading_rho, int cqi_lag_ttis)
    : ul_params_(ul),
      dl_params_(dl),
      distance_m_(distance_m),
      fading_(fading_sigma_db, fading_rho),
      cqi_lag_ttis_(std::max(0, cqi_lag_ttis)) {
  if (cqi_lag_ttis_ > 0) {
    fading_history_.resize(static_cast<std::size_t>(cqi_lag_ttis_) + 1);
  }
  ul_link_cache_.floor_db = noise_interference_floor_db(ul_params_.budget);
  dl_link_cache_.floor_db = noise_interference_floor_db(dl_params_.budget);
  refresh_link_cache();
}

void UeRadio::set_distance(double d) noexcept {
  distance_m_ = d;
  refresh_link_cache();
}

void UeRadio::refresh_link_cache() noexcept {
  ul_link_cache_.pathloss_db = pathloss_db(distance_m_, ul_params_.budget.baseline_loss_db,
                                           ul_params_.budget.pathloss_exponent);
  dl_link_cache_.pathloss_db = pathloss_db(distance_m_, dl_params_.budget.baseline_loss_db,
                                           dl_params_.budget.pathloss_exponent);
  ul_memo_.valid = false;  // SINR inputs changed; recompute on next TTI
  dl_memo_.valid = false;
}

TtiStats UeRadio::run_tti_into(bool uplink, double now, int prbs, int mcs_offset,
                               atlas::math::Rng& rng, std::vector<std::uint64_t>& completed) {
  TtiStats out;
  if (prbs <= 0) return out;
  RadioQueue& queue = uplink ? ul_queue_ : dl_queue_;
  if (!queue.has_data(now)) return out;
  double& blocked_until = uplink ? ul_blocked_until_ : dl_blocked_until_;
  if (now < blocked_until) return out;
  const RadioParams& params = uplink ? ul_params_ : dl_params_;
  const LinkCache& cache = uplink ? ul_link_cache_ : dl_link_cache_;
  TtiMemo& memo = uplink ? ul_memo_ : dl_memo_;

  const double cqi_fading = cqi_fading_db();
  const double inst_fading = fading_.value();
  if (!memo.valid || memo.cqi_fading != cqi_fading || memo.fading != inst_fading ||
      memo.prbs != prbs || memo.offset != mcs_offset) {
    memo.valid = true;
    memo.cqi_fading = cqi_fading;
    memo.fading = inst_fading;
    memo.prbs = prbs;
    memo.offset = mcs_offset;
    // Link adaptation sees the (possibly stale) reported channel; the actual
    // block error is drawn from the instantaneous channel.
    const double reported_sinr =
        sinr_db_cached(params.budget, cache.pathloss_db, cache.floor_db, cqi_fading);
    memo.sinr_db = sinr_db_cached(params.budget, cache.pathloss_db, cache.floor_db, inst_fading);
    memo.mcs = select_mcs(reported_sinr, params.la_margin_db, mcs_offset, params.mcs_cap);
    memo.tb = tbs_bits(memo.mcs, prbs, params.tbs_overhead);
    memo.p = bler(memo.mcs, memo.sinr_db);
  }
  out.sinr_db = memo.sinr_db;
  out.mcs = memo.mcs;
  const double tb = memo.tb;
  out.tb_total = 1;
  if (rng.bernoulli(memo.p)) {
    // HARQ: the transport block is lost; the data stays queued and is
    // retransmitted after the HARQ round trip (no soft combining modeled).
    out.tb_err = 1;
    blocked_until = now + static_cast<double>(params.harq_rtt_ttis) * kTtiMs;
    return out;
  }
  if (queue.full_buffer()) {
    out.delivered_bits = tb;
    return out;
  }
  const double queued = queue.queued_bits();
  out.delivered_bits = std::min(tb, queued);
  queue.drain_into(tb, completed);
  return out;
}

TtiOutcome UeRadio::run_tti(bool uplink, double now, int prbs, int mcs_offset,
                            atlas::math::Rng& rng) {
  TtiOutcome out;
  static_cast<TtiStats&>(out) = run_tti_into(uplink, now, prbs, mcs_offset, rng, out.completed);
  return out;
}

void run_direction_tti(std::vector<SliceRadioShare>& slices, bool uplink, double now,
                       atlas::math::Rng& rng, TtiScratch& scratch) {
  scratch.reset();
  int remaining = kTotalPrbs;
  for (auto& slice : slices) {
    if (remaining <= 0) break;
    const int cap = uplink ? slice.prb_cap_ul : slice.prb_cap_dl;
    const int offset = uplink ? slice.mcs_offset_ul : slice.mcs_offset_dl;
    int budget = std::min(cap, remaining);
    if (budget <= 0) continue;

    scratch.active.clear();
    for (UeRadio* ue : slice.ues) {
      RadioQueue& q = uplink ? ue->ul_queue() : ue->dl_queue();
      if (q.has_data(now)) scratch.active.push_back(ue);
    }
    if (scratch.active.empty()) continue;

    const int per_ue = budget / static_cast<int>(scratch.active.size());
    int extra = budget % static_cast<int>(scratch.active.size());
    int used = 0;
    for (UeRadio* ue : scratch.active) {
      int grant = per_ue + (extra > 0 ? 1 : 0);
      if (extra > 0) --extra;
      if (grant <= 0) continue;
      const std::size_t before = scratch.ids.size();
      const TtiStats out = ue->run_tti_into(uplink, now, grant, offset, rng, scratch.ids);
      scratch.delivered_bits += out.delivered_bits;
      scratch.tb_total += out.tb_total;
      scratch.tb_err += out.tb_err;
      if (scratch.ids.size() > before) {
        scratch.completed.push_back({ue, static_cast<std::uint32_t>(before),
                                     static_cast<std::uint32_t>(scratch.ids.size() - before)});
      }
      used += grant;
    }
    remaining -= used;
  }
}

DirectionTti run_direction_tti(std::vector<SliceRadioShare>& slices, bool uplink, double now,
                               atlas::math::Rng& rng) {
  TtiScratch scratch;
  run_direction_tti(slices, uplink, now, rng, scratch);
  DirectionTti agg;
  agg.delivered_bits = scratch.delivered_bits;
  agg.tb_total = scratch.tb_total;
  agg.tb_err = scratch.tb_err;
  agg.completed.reserve(scratch.completed.size());
  for (const auto& span : scratch.completed) {
    agg.completed.emplace_back(
        span.ue, std::vector<std::uint64_t>(scratch.ids.begin() + span.begin,
                                            scratch.ids.begin() + span.begin + span.count));
  }
  return agg;
}

}  // namespace atlas::lte
