#pragma once

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "math/rng.hpp"

namespace atlas::lte {

/// 10 MHz LTE numerology used throughout (50 PRBs, 1 ms TTI) — matching the
/// paper's band-7 eNB (§7.1).
inline constexpr int kTotalPrbs = 50;
inline constexpr double kTtiMs = 1.0;
inline constexpr double kPrbBandwidthHz = 180e3;
inline constexpr int kMaxMcs = 28;

namespace detail {
/// 3GPP TS 36.213-style efficiency ladder (QPSK -> 16QAM -> 64QAM),
/// bits/s/Hz for MCS 0..28.
inline constexpr double kMcsEfficiency[kMaxMcs + 1] = {
    0.15, 0.19, 0.23, 0.31, 0.38, 0.49, 0.60, 0.74, 0.88, 1.03,
    1.18, 1.33, 1.48, 1.70, 1.91, 2.16, 2.41, 2.57, 2.73, 3.03,
    3.32, 3.61, 3.90, 4.21, 4.52, 4.82, 5.12, 5.33, 5.55};
}  // namespace detail

// The per-TTI MAC/PHY functions below are defined inline: the scheduler
// evaluates them for every active UE every millisecond of simulated time,
// and the episode engine's throughput is bounded by exactly this arithmetic.

/// Spectral efficiency (bits/s/Hz) for MCS 0..28, following the 3GPP 36.213
/// 64-QAM CQI/MCS efficiency ladder.
inline double mcs_efficiency(int mcs) {
  if (mcs < 0 || mcs > kMaxMcs) throw std::invalid_argument("mcs_efficiency: mcs out of range");
  return detail::kMcsEfficiency[mcs];
}

/// SINR (dB) needed to run MCS `mcs` at the ~10% BLER operating point of the
/// AWGN waterfall below. Approximately linear in MCS, as in link-level LTE
/// abstractions (Ikuno et al. 2010).
inline double mcs_sinr_threshold_db(int mcs) {
  if (mcs < 0 || mcs > kMaxMcs) {
    throw std::invalid_argument("mcs_sinr_threshold_db: mcs out of range");
  }
  // Linearized waterfall positions: MCS 0 decodes around -7 dB, MCS 28 needs
  // about 22.4 dB — the usual AWGN link-abstraction slope of ~1.05 dB/MCS.
  return -7.0 + 1.05 * static_cast<double>(mcs);
}

/// Transport block size in BITS for one TTI on `prbs` PRBs at MCS `mcs`.
/// Includes the control/reference-symbol overhead derate `overhead`
/// (fraction of PHY capacity left for the transport block).
inline double tbs_bits(int mcs, int prbs, double overhead = 0.75) {
  if (prbs < 0) throw std::invalid_argument("tbs_bits: negative PRBs");
  if (prbs == 0) return 0.0;
  return mcs_efficiency(mcs) * kPrbBandwidthHz * (kTtiMs / 1000.0) *
         static_cast<double>(prbs) * overhead;
}

/// AWGN block-error probability of MCS `mcs` at SINR `sinr_db`: logistic
/// waterfall centred on the MCS threshold. At threshold + 3.5 dB (our default
/// link-adaptation margin) this gives ~3.7e-3, reproducing the sim-side PER
/// magnitudes of the paper's Table 1.
inline double bler(int mcs, double sinr_db, double steepness = 1.6) {
  const double margin = sinr_db - mcs_sinr_threshold_db(mcs);
  return 1.0 / (1.0 + std::exp(steepness * margin));
}

/// Link adaptation: the largest MCS (capped at `cap`) whose threshold +
/// `margin_db` fits under `sinr_db`, minus the slice's `mcs_offset`
/// (Table 2's reliability knob), floored at 0.
inline int select_mcs(double sinr_db, double margin_db, int mcs_offset, int cap) {
  cap = std::clamp(cap, 0, kMaxMcs);
  // Closed form of the linear waterfall: the ladder is threshold(m) =
  // -7 + 1.05 m, so the largest feasible MCS is floor((sinr - margin + 7) /
  // 1.05). The floating floor can land one step off at exact threshold
  // boundaries, so the estimate is corrected against the scan's exact
  // predicate — at most one step in either direction — keeping the result
  // bit-identical to the original linear search at ~O(1) cost.
  const double est = (sinr_db - margin_db + 7.0) / 1.05;
  int m;
  if (est >= static_cast<double>(cap)) {
    m = cap;
  } else if (est < 0.0) {
    m = 0;
  } else {
    m = static_cast<int>(est);
  }
  while (m < cap && mcs_sinr_threshold_db(m + 1) + margin_db <= sinr_db) ++m;
  while (m > 0 && mcs_sinr_threshold_db(m) + margin_db > sinr_db) --m;
  return std::max(0, m - std::max(0, mcs_offset));
}

/// Log-distance pathloss: PL(d) = baseline_loss + 10 * exponent * log10(d / 1 m).
/// `baseline_loss_db` defaults to NS-3's LogDistancePropagationLossModel
/// ReferenceLoss (38.57 dB, paper Table 4).
double pathloss_db(double distance_m, double baseline_loss_db, double exponent);

/// One direction's link-budget parameters.
///
/// Transmit power is expressed as a per-PRB power spectral density: LTE
/// PUSCH power control targets (approximately) constant PSD, and the eNB
/// splits PDSCH power evenly over the carrier, so per-PRB SINR does not
/// depend on the grant size in either direction.
struct LinkBudget {
  double tx_psd_dbm_per_prb = -57.0;  ///< Transmit power per PRB (180 kHz).
  double baseline_loss_db = 38.57;    ///< Reference pathloss at 1 m.
  double pathloss_exponent = 3.0;     ///< NS-3 LogDistance default.
  double noise_figure_db = 5.0;       ///< Receiver noise figure.
  double interference_dbm = -200.0;   ///< Per-PRB interference floor (off by default).
  double sinr_cap_db = 32.0;          ///< Hardware EVM ceiling.
};

/// Per-PRB SINR (dB) at distance `distance_m` with instantaneous fading
/// offset `fading_db` (0 when the profile models no fast fading — the NS-3
/// configuration in §7.2).
double sinr_db(const LinkBudget& budget, double distance_m, double fading_db);

/// The noise + interference floor term of sinr_db (dB). Depends only on the
/// budget, so callers evaluating SINR every TTI cache it per link.
double noise_interference_floor_db(const LinkBudget& budget);

/// sinr_db() from precomputed pathloss and floor terms. Bit-identical to
/// sinr_db() (same expressions in the same order); sinr_db() is implemented
/// on top of this, and UeRadio invalidates its cached terms only on
/// set_distance — the mobility cadence (100 ms), not the TTI cadence (1 ms).
inline double sinr_db_cached(const LinkBudget& budget, double pathloss_db, double floor_db,
                             double fading_db) {
  const double rx_dbm = budget.tx_psd_dbm_per_prb - pathloss_db + fading_db;
  const double sinr = rx_dbm - floor_db;
  return std::min(sinr, budget.sinr_cap_db);
}

/// First-order autoregressive fast-fading process in dB (real-network-only
/// mechanism; see DESIGN.md §4). value() is N(0, sigma^2) marginally with
/// per-TTI correlation `rho`.
class FadingProcess {
 public:
  FadingProcess(double sigma_db, double rho)
      : sigma_db_(sigma_db),
        rho_(std::clamp(rho, 0.0, 0.9999)),
        innovation_scale_(sigma_db * std::sqrt(1.0 - rho_ * rho_)) {}

  /// Advance one TTI and return the new fading value (dB). Inline: stepped
  /// for every UE every TTI, and the disabled (simulator) case must cost a
  /// branch, not a call. The innovation scale sigma * sqrt(1 - rho^2) is
  /// hoisted to construction (it used to cost a sqrt per TTI per UE).
  double step(atlas::math::Rng& rng) {
    if (!enabled()) return 0.0;
    value_ = rho_ * value_ + innovation_scale_ * rng.normal();
    return value_;
  }
  double value() const noexcept { return value_; }
  bool enabled() const noexcept { return sigma_db_ > 0.0; }

 private:
  double sigma_db_;
  double rho_;
  double innovation_scale_;
  double value_ = 0.0;
};

}  // namespace atlas::lte
