#pragma once

#include "math/rng.hpp"

namespace atlas::lte {

/// 10 MHz LTE numerology used throughout (50 PRBs, 1 ms TTI) — matching the
/// paper's band-7 eNB (§7.1).
inline constexpr int kTotalPrbs = 50;
inline constexpr double kTtiMs = 1.0;
inline constexpr double kPrbBandwidthHz = 180e3;
inline constexpr int kMaxMcs = 28;

/// Spectral efficiency (bits/s/Hz) for MCS 0..28, following the 3GPP 36.213
/// 64-QAM CQI/MCS efficiency ladder.
double mcs_efficiency(int mcs);

/// SINR (dB) needed to run MCS `mcs` at the ~10% BLER operating point of the
/// AWGN waterfall below. Approximately linear in MCS, as in link-level LTE
/// abstractions (Ikuno et al. 2010).
double mcs_sinr_threshold_db(int mcs);

/// Transport block size in BITS for one TTI on `prbs` PRBs at MCS `mcs`.
/// Includes the control/reference-symbol overhead derate `overhead`
/// (fraction of PHY capacity left for the transport block).
double tbs_bits(int mcs, int prbs, double overhead = 0.75);

/// AWGN block-error probability of MCS `mcs` at SINR `sinr_db`: logistic
/// waterfall centred on the MCS threshold. At threshold + 3.5 dB (our default
/// link-adaptation margin) this gives ~3.7e-3, reproducing the sim-side PER
/// magnitudes of the paper's Table 1.
double bler(int mcs, double sinr_db, double steepness = 1.6);

/// Link adaptation: the largest MCS (capped at `cap`) whose threshold +
/// `margin_db` fits under `sinr_db`, minus the slice's `mcs_offset`
/// (Table 2's reliability knob), floored at 0.
int select_mcs(double sinr_db, double margin_db, int mcs_offset, int cap);

/// Log-distance pathloss: PL(d) = baseline_loss + 10 * exponent * log10(d / 1 m).
/// `baseline_loss_db` defaults to NS-3's LogDistancePropagationLossModel
/// ReferenceLoss (38.57 dB, paper Table 4).
double pathloss_db(double distance_m, double baseline_loss_db, double exponent);

/// One direction's link-budget parameters.
///
/// Transmit power is expressed as a per-PRB power spectral density: LTE
/// PUSCH power control targets (approximately) constant PSD, and the eNB
/// splits PDSCH power evenly over the carrier, so per-PRB SINR does not
/// depend on the grant size in either direction.
struct LinkBudget {
  double tx_psd_dbm_per_prb = -57.0;  ///< Transmit power per PRB (180 kHz).
  double baseline_loss_db = 38.57;    ///< Reference pathloss at 1 m.
  double pathloss_exponent = 3.0;     ///< NS-3 LogDistance default.
  double noise_figure_db = 5.0;       ///< Receiver noise figure.
  double interference_dbm = -200.0;   ///< Per-PRB interference floor (off by default).
  double sinr_cap_db = 32.0;          ///< Hardware EVM ceiling.
};

/// Per-PRB SINR (dB) at distance `distance_m` with instantaneous fading
/// offset `fading_db` (0 when the profile models no fast fading — the NS-3
/// configuration in §7.2).
double sinr_db(const LinkBudget& budget, double distance_m, double fading_db);

/// First-order autoregressive fast-fading process in dB (real-network-only
/// mechanism; see DESIGN.md §4). value() is N(0, sigma^2) marginally with
/// per-TTI correlation `rho`.
class FadingProcess {
 public:
  FadingProcess(double sigma_db, double rho);

  /// Advance one TTI and return the new fading value (dB).
  double step(atlas::math::Rng& rng);
  double value() const noexcept { return value_; }
  bool enabled() const noexcept { return sigma_db_ > 0.0; }

 private:
  double sigma_db_;
  double rho_;
  double value_ = 0.0;
};

}  // namespace atlas::lte
