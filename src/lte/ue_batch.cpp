#include "lte/ue_batch.hpp"

#include <algorithm>

#if defined(ATLAS_UE_BATCH_SIMD) && defined(__AVX2__)
#include <immintrin.h>
#endif

namespace atlas::lte {

using atlas::math::Rng;

UeBatch::UeBatch(common::Arena& arena, std::size_t count, const RadioParams& dl,
                 double distance_m, double fading_sigma_db, double fading_rho,
                 int cqi_lag_ttis)
    : count_(count),
      params_(dl),
      floor_db_(noise_interference_floor_db(dl.budget)),
      fading_rho_(std::clamp(fading_rho, 0.0, 0.9999)),
      fading_enabled_(fading_sigma_db > 0.0),
      cqi_lag_(std::max(0, cqi_lag_ttis)) {
  // Same innovation-scale hoist as FadingProcess (and the same clamped rho),
  // so the AR(1) update below is expression-identical to the scalar step.
  innovation_scale_ = fading_sigma_db * std::sqrt(1.0 - fading_rho_ * fading_rho_);
  if (count_ == 0) return;
  distance_m_ = arena.allocate_array<double>(count_);
  pathloss_db_ = arena.allocate_array<double>(count_);
  fading_value_ = arena.allocate_array<double>(count_);
  innovation_ = arena.allocate_array<double>(count_);
  blocked_until_ = arena.allocate_array<double>(count_);
  tb_bits_ = arena.allocate_array<double>(count_);
  bler_p_ = arena.allocate_array<double>(count_);
  bler_threshold_ = arena.allocate_array<std::uint64_t>(count_);
  draw53_ = arena.allocate_array<std::uint64_t>(count_);
  if (cqi_lag_ > 0) {
    cqi_hist_ = arena.allocate_array<double>(count_ * (static_cast<std::size_t>(cqi_lag_) + 1));
  }
  const double pl =
      pathloss_db(distance_m, dl.budget.baseline_loss_db, dl.budget.pathloss_exponent);
  for (std::size_t i = 0; i < count_; ++i) {
    distance_m_[i] = distance_m;
    pathloss_db_[i] = pl;
    fading_value_[i] = 0.0;
    blocked_until_[i] = 0.0;
    tb_bits_[i] = 0.0;
    bler_p_[i] = 0.0;
    bler_threshold_[i] = 0;
  }
}

void UeBatch::set_distance(std::size_t i, double d) noexcept {
  distance_m_[i] = d;
  pathloss_db_[i] =
      pathloss_db(d, params_.budget.baseline_loss_db, params_.budget.pathloss_exponent);
  link_valid_ = false;
}

double UeBatch::cqi_fading(std::size_t i) const noexcept {
  // Mirrors UeRadio::cqi_fading_db: before the ring fills, the oldest value
  // is row 0; afterwards it is the row at hist_head_.
  if (cqi_lag_ == 0 || hist_count_ == 0) return fading_value_[i];
  const std::size_t rows = static_cast<std::size_t>(cqi_lag_) + 1;
  const std::size_t row = hist_count_ < rows ? 0 : hist_head_;
  return cqi_hist_[row * count_ + i];
}

void UeBatch::step_fading_impl(Rng& rng) {
  if (fading_enabled_) {
    // DOCUMENTED DRAW ORDER: one normal innovation per UE, UE 0 first —
    // identical to the scalar engine's `for (ue : background) step_fading`.
    // The draws are inherently sequential (one xoshiro stream); the state
    // update below is the flat, vectorizable part.
    for (std::size_t i = 0; i < count_; ++i) innovation_[i] = rng.normal();
    double* v = fading_value_;
    const double* innov = innovation_;
    const double rho = fading_rho_;
    const double scale = innovation_scale_;
    for (std::size_t i = 0; i < count_; ++i) {
      // Same expression shape as FadingProcess::step (mul + mul + add), so
      // any FP-contraction policy treats both paths identically.
      v[i] = rho * v[i] + scale * innov[i];
    }
    link_valid_ = false;
  }
  if (cqi_lag_ > 0) {
    const std::size_t rows = static_cast<std::size_t>(cqi_lag_) + 1;
    std::size_t row;
    if (hist_count_ < rows) {
      row = hist_count_++;
    } else {
      row = hist_head_;
      if (++hist_head_ == rows) hist_head_ = 0;
    }
    std::copy(fading_value_, fading_value_ + count_, cqi_hist_ + row * count_);
  }
}

void UeBatch::refresh_link(int per_ue, int extra, int granted, int mcs_offset) {
  // The full SINR -> MCS -> TBS -> BLER chain, per granted UE, through the
  // same inline phy.hpp kernels as UeRadio — pure functions of the inputs,
  // so caching them at batch scope cannot change any value the sweep sees.
  for (int i = 0; i < granted; ++i) {
    const int prbs = per_ue + (i < extra ? 1 : 0);
    const double reported =
        sinr_db_cached(params_.budget, pathloss_db_[i], floor_db_, cqi_fading(i));
    const double inst =
        sinr_db_cached(params_.budget, pathloss_db_[i], floor_db_, fading_value_[i]);
    const int mcs = select_mcs(reported, params_.la_margin_db, mcs_offset, params_.mcs_cap);
    tb_bits_[i] = tbs_bits(mcs, prbs, params_.tbs_overhead);
    bler_p_[i] = bler(mcs, inst);
    // k < ceil(p * 2^53) over the 53 draw bits == uniform() < p, exactly
    // (see bler_threshold_'s declaration). p * 2^53 never rounds: a
    // power-of-two scale only shifts the exponent.
    bler_threshold_[i] = static_cast<std::uint64_t>(std::ceil(bler_p_[i] * 0x1.0p53));
  }
  link_valid_ = true;
  memo_per_ue_ = per_ue;
  memo_extra_ = extra;
  memo_offset_ = mcs_offset;
}

void UeBatch::run_dl_tti(double now, int budget_prbs, int mcs_offset, Rng& rng,
                         BatchTtiStats& out) {
  out = BatchTtiStats{};
  if (count_ == 0 || budget_prbs <= 0) return;
  const int n = static_cast<int>(count_);
  const int per_ue = budget_prbs / n;
  const int extra = budget_prbs % n;
  // With fewer PRBs than UEs only the first `extra` UEs receive a grant;
  // the rest are skipped outright (no TB, no draw), like the scalar
  // scheduler's `if (grant <= 0) continue`.
  const int granted = per_ue > 0 ? n : extra;
  if (granted == 0) return;

  // Steady state (fading disabled, same grant layout and offset as last
  // TTI — every background UE on the simulator profile) reuses the cached
  // TB/BLER arrays; the TTI then costs one uniform draw + compare per UE.
  if (!(link_valid_ && !fading_enabled_ && per_ue == memo_per_ue_ &&
        extra == memo_extra_ && mcs_offset == memo_offset_)) {
    refresh_link(per_ue, extra, granted, mcs_offset);
  }

  const double* p = bler_p_;
  const double* tb = tb_bits_;
  const std::uint64_t* thr = bler_threshold_;
  if (now >= max_blocked_until_) {
    // Fast path: no UE is inside a HARQ round trip, so every granted UE
    // draws exactly one uniform, ascending index (DOCUMENTED DRAW ORDER).
    // The draw IS rng.uniform()'s raw 53 bits; `k < thr` is bit-equivalent
    // to `uniform() < p` (see bler_threshold_), so the whole Bernoulli
    // sweep is one serial RNG chain plus integer compares.
    int errs = 0;
#if defined(ATLAS_UE_BATCH_SIMD) && defined(__AVX2__)
    // Explicit SIMD for the compare half of the sweep: draws are filled by
    // the (inherently serial) RNG first, then compared 4-wide. Both values
    // are < 2^53, so the signed 64-bit compare is exact; comparisons carry
    // no rounding, so this is bit-equivalent under every FP policy (which
    // is why the FP loops elsewhere stay with the auto-vectorizer).
    for (int i = 0; i < granted; ++i) draw53_[i] = rng.next_u64() >> 11;
    int i = 0;
    for (; i + 4 <= granted; i += 4) {
      const __m256i k = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(draw53_ + i));
      const __m256i t = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(thr + i));
      const int mask =
          _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(t, k)));
      errs += __builtin_popcount(static_cast<unsigned>(mask));
    }
    for (; i < granted; ++i) errs += draw53_[i] < thr[i] ? 1 : 0;
#else
    for (int i = 0; i < granted; ++i) {
      const std::uint64_t k = rng.next_u64() >> 11;
      draw53_[i] = k;
      errs += k < thr[i] ? 1 : 0;
    }
#endif
    out.tb_total = granted;
    out.tb_err = errs;

    if (errs == 0) {
      // All delivered: left-to-right sum, the scalar accumulation order.
      double delivered = 0.0;
      for (int i = 0; i < granted; ++i) delivered += tb[i];
      out.delivered_bits = delivered;
      return;
    }
    // Errored TBs gate their UE for the HARQ round trip; delivered bits
    // keep the scalar left-to-right accumulation (skipped terms are the
    // skipped UEs, exactly as in the scalar walk).
    const double until = now + static_cast<double>(params_.harq_rtt_ttis) * kTtiMs;
    double delivered = 0.0;
    for (int i = 0; i < granted; ++i) {
      if (draw53_[i] < thr[i]) {
        blocked_until_[i] = until;
      } else {
        delivered += tb[i];
      }
    }
    out.delivered_bits = delivered;
    max_blocked_until_ = std::max(max_blocked_until_, until);
    return;
  }

  // Slow path (some UE mid-HARQ, e.g. the real profile's 3-TTI round
  // trip): per-UE walk that skips blocked UEs without drawing — the draw
  // order is still "granted, unblocked UEs, ascending index".
  for (int i = 0; i < granted; ++i) {
    if (now < blocked_until_[i]) continue;
    ++out.tb_total;
    if (rng.uniform() < p[i]) {
      ++out.tb_err;
      const double until = now + static_cast<double>(params_.harq_rtt_ttis) * kTtiMs;
      blocked_until_[i] = until;
      max_blocked_until_ = std::max(max_blocked_until_, until);
    } else {
      out.delivered_bits += tb[i];
    }
  }
}

}  // namespace atlas::lte
