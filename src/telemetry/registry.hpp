#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/counter.hpp"
#include "telemetry/histogram.hpp"

namespace atlas::telemetry {

/// One component's metrics at a point in time, sorted by name. The currency
/// of the report writer (telemetry/report.hpp) and of cross-shard/host
/// aggregation.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, HistogramData>> histograms;

  /// Sum same-named metrics from `other` into this snapshot (metrics only in
  /// `other` are appended); used to roll per-shard/per-worker snapshots into
  /// one serving report.
  void merge(const MetricsSnapshot& other);

  /// Pointer to a named histogram, nullptr when absent.
  const HistogramData* histogram(const std::string& name) const noexcept;
  /// Value of a named counter, 0 when absent.
  std::uint64_t counter(const std::string& name) const noexcept;
};

/// Named-metric registry: a component creates its counters/histograms once
/// (by name, under a mutex) and keeps the returned references for the hot
/// path — recording never touches the registry again. References stay valid
/// for the registry's lifetime. `snapshot()` reads every metric with relaxed
/// loads; it is safe against concurrent recorders.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Create-or-get; the reference is stable until the registry dies.
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;
  /// Zero every metric (the metrics themselves stay registered).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
};

}  // namespace atlas::telemetry
