#include "telemetry/registry.hpp"

#include <algorithm>

namespace atlas::telemetry {

namespace {

template <typename Metric>
Metric& find_or_create(std::vector<std::pair<std::string, std::unique_ptr<Metric>>>& metrics,
                       const std::string& name) {
  for (auto& [metric_name, metric] : metrics) {
    if (metric_name == name) return *metric;
  }
  metrics.emplace_back(name, std::make_unique<Metric>());
  return *metrics.back().second;
}

}  // namespace

Counter& MetricRegistry::counter(const std::string& name) {
  std::scoped_lock lock(mutex_);
  return find_or_create(counters_, name);
}

Histogram& MetricRegistry::histogram(const std::string& name) {
  std::scoped_lock lock(mutex_);
  return find_or_create(histograms_, name);
}

MetricsSnapshot MetricRegistry::snapshot() const {
  MetricsSnapshot snap;
  {
    std::scoped_lock lock(mutex_);
    snap.counters.reserve(counters_.size());
    for (const auto& [name, counter] : counters_) {
      snap.counters.emplace_back(name, counter->value());
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_) {
      snap.histograms.emplace_back(name, histogram->snapshot());
    }
  }
  const auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void MetricRegistry::reset() {
  std::scoped_lock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    auto it = std::find_if(counters.begin(), counters.end(),
                           [&](const auto& c) { return c.first == name; });
    if (it == counters.end()) {
      counters.emplace_back(name, value);
    } else {
      it->second += value;
    }
  }
  for (const auto& [name, data] : other.histograms) {
    auto it = std::find_if(histograms.begin(), histograms.end(),
                           [&](const auto& h) { return h.first == name; });
    if (it == histograms.end()) {
      histograms.emplace_back(name, data);
    } else {
      it->second.merge(data);
    }
  }
}

const HistogramData* MetricsSnapshot::histogram(const std::string& name) const noexcept {
  for (const auto& [metric_name, data] : histograms) {
    if (metric_name == name) return &data;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const noexcept {
  for (const auto& [metric_name, value] : counters) {
    if (metric_name == name) return value;
  }
  return 0;
}

}  // namespace atlas::telemetry
