#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "telemetry/registry.hpp"

namespace atlas::telemetry {

/// Minimal streaming JSON writer: tracks nesting and comma placement so the
/// BENCH_*.json emitters stop hand-interleaving separators. Strings are
/// escaped; doubles print with enough digits to round-trip. Not a general
/// serializer — exactly what the telemetry reports and bench outputs need.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key for the next value inside an object.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }

  /// key + value in one call.
  template <typename T>
  JsonWriter& field(const std::string& name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

 private:
  void separate();

  std::ostream& os_;
  std::vector<bool> needs_comma_;  ///< Per open scope.
  bool after_key_ = false;
};

/// Serialize one histogram as an object with count/mean/min/max and the
/// serving quantiles (p50/p90/p99/p999), values scaled by `unit_divisor`
/// (1e6 turns recorded nanoseconds into milliseconds).
void write_histogram_json(JsonWriter& json, const HistogramData& histogram,
                          double unit_divisor = 1.0);

/// Full snapshot report: {"counters": {...}, "histograms": {name: {...}}}.
/// Histograms whose names end in "_ns" are additionally reported in
/// milliseconds (suffix "_ms") for human consumption.
void write_report(std::ostream& os, const MetricsSnapshot& snapshot);

}  // namespace atlas::telemetry
