#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace atlas::telemetry {

/// Fixed-bucket log-scale histogram for always-on serving telemetry
/// (HdrHistogram-style layout). Values are non-negative integers — the
/// serving stack records nanoseconds, but the layout is unit-agnostic
/// (queue depths use it too).
///
/// Bucket layout: values below 2^kSubBucketBits land in one exact linear
/// bucket each; above that, every octave [2^k, 2^{k+1}) splits into
/// 2^kSubBucketBits equal sub-buckets, so the relative quantile error is
/// bounded by 2^-kSubBucketBits (~3.1%) at any magnitude. Values beyond
/// kMaxTrackable saturate into the last bucket. The whole table is
/// statically sized: recording is one index computation plus one relaxed
/// atomic increment — no allocation, no locks, mergeable across
/// threads/shards/hosts by summing counts.
inline constexpr int kSubBucketBits = 5;
inline constexpr std::uint64_t kSubBuckets = 1ull << kSubBucketBits;  // 32
/// Octave groups above the linear region. 36 octaves over nanoseconds track
/// latencies up to 2^41 ns (~37 minutes) before saturating.
inline constexpr int kOctaves = 36;
inline constexpr std::size_t kBucketCount =
    static_cast<std::size_t>(kSubBuckets) * (1 + kOctaves);
inline constexpr std::uint64_t kMaxTrackable = (kSubBuckets << kOctaves) - 1;

/// Bucket owning `value`; total over [0, kBucketCount).
std::size_t bucket_index(std::uint64_t value) noexcept;
/// Largest value mapping to bucket `index` (its quantile representative):
/// for any recorded v, v <= upper_bound(bucket_index(v)) <= v * (1 + 2^-5).
std::uint64_t bucket_upper_bound(std::size_t index) noexcept;

/// Plain (non-atomic) histogram state: the snapshot/merge/report currency.
/// Value-semantic so it can ride inside stats structs, cross the episode-RPC
/// wire, and be differenced for per-phase interval accounting. Storage is
/// allocated lazily on first record/merge, so an unused histogram inside a
/// stats snapshot costs one empty vector.
class HistogramData {
 public:
  void record(std::uint64_t value, std::uint64_t count = 1);

  /// Add another histogram's samples into this one (shard/host aggregation).
  void merge(const HistogramData& other);
  /// Remove an earlier snapshot's samples (interval deltas: counts are
  /// monotonic, so now - start is this phase's distribution).
  void subtract(const HistogramData& other);

  std::uint64_t count() const noexcept { return total_; }
  bool empty() const noexcept { return total_ == 0; }
  /// Mean of the recorded values (0 when empty).
  double mean() const noexcept {
    return total_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(total_);
  }
  std::uint64_t sum() const noexcept { return sum_; }

  /// Quantile q in [0, 1]: the upper bound of the bucket where the cumulative
  /// count first reaches ceil(q * count) — never below the true sample
  /// quantile and at most one sub-bucket width (2^-5 relative) above it.
  /// Returns 0 when empty.
  std::uint64_t quantile(double q) const noexcept;

  /// Lower bound of the first / upper bound of the last occupied bucket.
  std::uint64_t min() const noexcept;
  std::uint64_t max() const noexcept;

  const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }
  /// Rebuild from wire/merge primitives; `counts` may be shorter than
  /// kBucketCount (missing tail buckets are zero).
  static HistogramData from_counts(std::vector<std::uint64_t> counts, std::uint64_t sum);

 private:
  void ensure_allocated();

  std::vector<std::uint64_t> counts_;  ///< Empty or kBucketCount entries.
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
};

/// Concurrent recording front-end: a fixed array of relaxed atomics. Safe for
/// any number of writer threads; `snapshot()` is approximate under concurrent
/// writes (each bucket individually exact) which is the usual monitoring
/// contract. ~9 KB per instance, preallocated — the record path touches two
/// cache lines and never allocates.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t value) noexcept {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  HistogramData snapshot() const;
  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

}  // namespace atlas::telemetry
