#include "telemetry/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace atlas::telemetry {

std::size_t bucket_index(std::uint64_t value) noexcept {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  if (value > kMaxTrackable) value = kMaxTrackable;
  const int msb = 63 - std::countl_zero(value);  // >= kSubBucketBits
  const int shift = msb - kSubBucketBits;
  const std::size_t octave = static_cast<std::size_t>(shift);  // 0-based group
  const std::size_t sub = static_cast<std::size_t>((value >> shift) - kSubBuckets);
  return kSubBuckets + octave * kSubBuckets + sub;
}

std::uint64_t bucket_upper_bound(std::size_t index) noexcept {
  if (index < kSubBuckets) return static_cast<std::uint64_t>(index);
  if (index >= kBucketCount) index = kBucketCount - 1;
  const std::size_t rel = index - kSubBuckets;
  const int shift = static_cast<int>(rel / kSubBuckets);
  const std::uint64_t sub = rel % kSubBuckets;
  return ((kSubBuckets + sub + 1) << shift) - 1;
}

void HistogramData::ensure_allocated() {
  if (counts_.empty()) counts_.assign(kBucketCount, 0);
}

void HistogramData::record(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  ensure_allocated();
  counts_[bucket_index(value)] += count;
  total_ += count;
  sum_ += value * count;
}

void HistogramData::merge(const HistogramData& other) {
  if (other.total_ == 0) return;
  ensure_allocated();
  const std::size_t n = std::min(counts_.size(), other.counts_.size());
  for (std::size_t i = 0; i < n; ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  sum_ += other.sum_;
}

void HistogramData::subtract(const HistogramData& other) {
  if (other.total_ == 0) return;
  ensure_allocated();
  const std::size_t n = std::min(counts_.size(), other.counts_.size());
  for (std::size_t i = 0; i < n; ++i) {
    counts_[i] -= std::min(counts_[i], other.counts_[i]);
  }
  total_ -= std::min(total_, other.total_);
  sum_ -= std::min(sum_, other.sum_);
}

std::uint64_t HistogramData::quantile(double q) const noexcept {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the order statistic: ceil(q * n), clamped to [1, n] — the same
  // rule a sorted-vector reference uses, so the only divergence is bucket
  // resolution.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(total_)) + 0.0));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) return bucket_upper_bound(i);
  }
  return bucket_upper_bound(kBucketCount - 1);
}

std::uint64_t HistogramData::min() const noexcept {
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] != 0) {
      // Lower bound of bucket i: one past the previous bucket's upper bound.
      return i == 0 ? 0 : bucket_upper_bound(i - 1) + 1;
    }
  }
  return 0;
}

std::uint64_t HistogramData::max() const noexcept {
  for (std::size_t i = counts_.size(); i-- > 0;) {
    if (counts_[i] != 0) return bucket_upper_bound(i);
  }
  return 0;
}

HistogramData HistogramData::from_counts(std::vector<std::uint64_t> counts,
                                         std::uint64_t sum) {
  HistogramData data;
  if (counts.empty()) return data;
  counts.resize(kBucketCount, 0);
  data.counts_ = std::move(counts);
  data.sum_ = sum;
  data.total_ = 0;
  for (std::uint64_t c : data.counts_) data.total_ += c;
  if (data.total_ == 0) {
    data.counts_.clear();
    data.sum_ = 0;
  }
  return data;
}

HistogramData Histogram::snapshot() const {
  std::vector<std::uint64_t> counts(kBucketCount, 0);
  bool any = false;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    any = any || counts[i] != 0;
  }
  if (!any) return HistogramData{};
  return HistogramData::from_counts(std::move(counts), sum_.load(std::memory_order_relaxed));
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

}  // namespace atlas::telemetry
