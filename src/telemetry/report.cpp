#include "telemetry/report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace atlas::telemetry {

namespace {

void write_escaped(std::ostream& os, const std::string& v) {
  os << '"';
  for (char c : v) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) os_ << ", ";
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  os_ << "{";
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  needs_comma_.pop_back();
  os_ << "}";
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  os_ << "[";
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  needs_comma_.pop_back();
  os_ << "]";
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  separate();
  write_escaped(os_, name);
  os_ << ": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separate();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no NaN/Inf
    return *this;
  }
  // Shortest representation that still round-trips to the same double.
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separate();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  separate();
  write_escaped(os_, v);
  return *this;
}

void write_histogram_json(JsonWriter& json, const HistogramData& histogram,
                          double unit_divisor) {
  const auto scaled = [&](std::uint64_t v) {
    return static_cast<double>(v) / unit_divisor;
  };
  json.begin_object()
      .field("count", histogram.count())
      .field("mean", histogram.mean() / unit_divisor)
      .field("min", scaled(histogram.min()))
      .field("p50", scaled(histogram.quantile(0.50)))
      .field("p90", scaled(histogram.quantile(0.90)))
      .field("p99", scaled(histogram.quantile(0.99)))
      .field("p999", scaled(histogram.quantile(0.999)))
      .field("max", scaled(histogram.max()))
      .end_object();
}

void write_report(std::ostream& os, const MetricsSnapshot& snapshot) {
  JsonWriter json(os);
  json.begin_object();
  json.key("counters").begin_object();
  for (const auto& [name, value] : snapshot.counters) json.field(name, value);
  json.end_object();
  json.key("histograms").begin_object();
  for (const auto& [name, histogram] : snapshot.histograms) {
    const bool nanos = name.size() > 3 && name.compare(name.size() - 3, 3, "_ns") == 0;
    json.key(nanos ? name.substr(0, name.size() - 3) + "_ms" : name);
    write_histogram_json(json, histogram, nanos ? 1e6 : 1.0);
  }
  json.end_object();
  json.end_object();
  os << "\n";
}

}  // namespace atlas::telemetry
