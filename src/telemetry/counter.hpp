#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace atlas::telemetry {

/// Lock-free event counter striped across per-thread lanes. Each recording
/// thread is assigned one cache-line-padded lane on first use (round-robin;
/// beyond kLanes threads, lanes are shared but stay uncontended in the
/// common few-writers case), so the hot path is one relaxed fetch_add on a
/// line no other thread is hammering. Reads (`value`) sum the lanes — merge
/// happens only at snapshot time, never on the record path.
class Counter {
 public:
  static constexpr std::size_t kLanes = 16;

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    lanes_[lane_index()].value.fetch_add(n, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Lane& lane : lanes_) total += lane.value.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (Lane& lane : lanes_) lane.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Lane {
    std::atomic<std::uint64_t> value{0};
  };

  static std::size_t lane_index() noexcept {
    // One process-wide round-robin assignment: every thread keeps the same
    // lane for every Counter, so a service's worker threads spread across
    // lanes without any per-counter registration.
    static std::atomic<std::size_t> next_lane{0};
    thread_local const std::size_t lane =
        next_lane.fetch_add(1, std::memory_order_relaxed) % kLanes;
    return lane;
  }

  std::array<Lane, kLanes> lanes_{};
};

}  // namespace atlas::telemetry
