#pragma once

#include <optional>
#include <vector>

#include "atlas/offline_trainer.hpp"
#include "bo/acquisition.hpp"
#include "gp/gaussian_process.hpp"

namespace atlas::core {

/// What the online model learns (paper Fig. 23 ablation):
///  - kGpResidual:   Atlas — a GP learns only the sim-to-real QoE difference
///                   G(psi) (Eq. 12).
///  - kBnnResidual:  a fresh BNN learns the residual (sample-inefficient).
///  - kBnnContinued: keep training the offline BNN on real QoE directly.
///  - kGpWhole:      a GP learns the whole QoE with no offline model
///                   (the "No stage 2" pipeline ablation of Fig. 24).
enum class OnlineModel { kGpResidual, kBnnResidual, kBnnContinued, kGpWhole };

/// Options for the online learning stage (paper §6, Alg. 3).
struct OnlineOptions {
  std::size_t iterations = 100;   ///< Online interactions (paper: 100).
  std::size_t inner_updates = 20; ///< N multiplier updates per online step via
                                  ///< the augmented simulator (paper: 20).
  std::size_t candidates = 2000;  ///< Actions scored per selection.
  double epsilon = 0.1;           ///< Dual step size.
  double rho = 0.1;               ///< cRGP-UCB scaling parameter (paper §8).
  double clip_b = 10.0;           ///< cRGP-UCB clip bound B (paper §8).
  bo::AcquisitionKind acquisition = bo::AcquisitionKind::kCrgpUcb;
  OnlineModel model = OnlineModel::kGpResidual;
  bool offline_acceleration = true;  ///< Eq. 15 inner updates (Fig. 23 ablation).

  app::Sla sla;
  env::Workload workload;
  gp::GpConfig gp;                 ///< Residual-GP configuration (Matern 2.5).
  std::uint64_t seed = 3;

  /// Episode-seed sequencing (env/seed_plan.hpp). Applies to the SIMULATOR
  /// streams only (residual observations, offline-acceleration inner
  /// updates); the metered real-network stream cannot replay randomness and
  /// is always sequenced fresh.
  env::SeedPlanOptions seed_plan;

  /// Speculative episode prefetching (env/speculation.hpp): the final
  /// action-selection scan speculates the NEXT iteration's simulator
  /// residual episode (its seed is a pure function of the plan) for the
  /// current top-K candidates. The metered real network is NEVER speculated
  /// against — only free simulator capacity. 0 disables; stage results are
  /// bit-identical either way.
  std::size_t speculate_top_k = 0;
};

/// One online interaction.
struct OnlineStep {
  env::SliceConfig config;
  double usage = 0.0;
  double qoe_real = 0.0;
  double qoe_sim = 0.0;   ///< Simulator QoE at the same action (residual obs).
  double lambda = 0.0;
  double beta = 0.0;      ///< Exploration weight drawn this step.
};

/// Stage-3 output: the interaction trace (regrets are computed against an
/// oracle by atlas/oracle.hpp).
struct OnlineResult {
  std::vector<OnlineStep> history;
  double final_lambda = 0.0;
};

/// Stage 3 — safe online learning in the real network (paper §6): a Gaussian
/// process learns only the sim-to-real QoE difference on top of the offline
/// BNN, configurations are selected by a conservative clipped randomized
/// GP-UCB acquisition, and the dual multiplier is updated offline against the
/// augmented simulator between online interactions.
class OnlineLearner {
 public:
  /// `policy` may be null only for OnlineModel::kGpWhole ("no stage 2").
  /// `simulator` names the augmented offline backend used for residual
  /// observations and offline acceleration; `real` names the metered live
  /// network. Every real query is accounted by the service as SLA exposure.
  OnlineLearner(const OfflinePolicy* policy, env::EnvClient& service,
                env::BackendId simulator, env::BackendId real, OnlineOptions options);

  OnlineResult learn();

 private:
  double offline_qoe_estimate(const math::Vec& config_norm) const;

  const OfflinePolicy* policy_;
  env::EnvClient& service_;
  env::BackendId simulator_;
  env::BackendId real_;
  OnlineOptions options_;
  bo::BoxSpace space_;
};

}  // namespace atlas::core
