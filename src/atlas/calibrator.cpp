#include "atlas/calibrator.hpp"

#include <algorithm>
#include <limits>

#include "bo/acquisition.hpp"
#include "bo/gp_bo.hpp"
#include "common/log.hpp"
#include "math/halton.hpp"
#include "nn/optim.hpp"

namespace atlas::core {

using atlas::math::Matrix;
using atlas::math::Rng;
using atlas::math::Vec;

SimCalibrator::SimCalibrator(env::EnvClient& service, env::BackendId real,
                             CalibrationOptions options)
    : service_(service),
      real_(real),
      sim_(service.add_simulator(env::SimParams::defaults(), "stage1-sim")),
      options_(std::move(options)),
      space_(env::SimParams::space()) {
  if (options_.bnn.sizes.empty()) {
    options_.bnn.sizes = {space_.dim(), 64, 64, 1};
    options_.bnn.noise_sigma = 0.1;
  }
  d_real_ = collect_real_latencies();
}

Vec SimCalibrator::collect_real_latencies() const {
  // The online collection D_r: slice performance logged from the deployed
  // configuration (full resources), exactly the paper's minimal-effort
  // logging assumption (§4.1, footnote 3). Metered by the service as online
  // interactions — an online seed domain, so the plan sequences it fresh
  // regardless of the CRN policy.
  const env::SeedStream seeds = env::SeedPlan(options_.seed, options_.seed_plan)
                                    .stream(env::SeedDomain::kStage1RealCollectOnline, 1);
  Vec all;
  for (std::size_t e = 0; e < std::max<std::size_t>(1, options_.real_episodes); ++e) {
    env::Workload wl = options_.workload;
    wl.seed = seeds.seed(e, 0);
    const auto result = service_.run(real_, env::SliceConfig{}, wl);
    all.insert(all.end(), result.latencies_ms.begin(), result.latencies_ms.end());
  }
  return all;
}

double SimCalibrator::discrepancy_from(const env::EpisodeResult& episode) const {
  if (episode.latencies_ms.empty()) return math::kl_discrete({1.0}, {1.0}) + 10.0;
  return math::kl_divergence(d_real_, episode.latencies_ms, options_.kl);
}

double SimCalibrator::discrepancy_of(const env::SimParams& params, std::uint64_t seed) const {
  env::EnvQuery q;
  q.backend = sim_;
  q.workload = options_.workload;
  q.workload.seed = seed;
  q.sim_params = params;
  return discrepancy_from(service_.run(q));
}

CalibrationResult SimCalibrator::calibrate() {
  Rng rng(options_.seed);
  const env::SeedPlan plan(options_.seed, options_.seed_plan);
  const env::SimParams original = env::SimParams::defaults();
  const Vec x_hat = original.to_vec();
  // Continual recalibration searches around the previous optimum; the
  // explainability constraint of Eq. 2 stays anchored at x_hat.
  const Vec center =
      options_.search_center ? options_.search_center->to_vec() : x_hat;

  math::HaltonSequence halton(space_.dim(), rng);
  auto sample_candidate = [&](Rng& r) {
    if (options_.sampler == CandidateSampler::kHalton) {
      // Low-discrepancy draw mapped into the box; rejection keeps it inside
      // the parameter ball (falls back to a uniform ball sample).
      for (int t = 0; t < 16; ++t) {
        const Vec x = space_.denormalize(halton.next());
        if (space_.distance(x, center) <= options_.ball_radius) return x;
      }
    }
    return space_.sample_in_ball(center, options_.ball_radius, r);
  };

  CalibrationResult result;
  result.original_kl =
      discrepancy_of(original, plan.episode_seed(env::SeedDomain::kStage1Reference, 0, 0, 1));

  // Training set in normalized coordinates; targets are raw KL values.
  std::vector<Vec> xs_norm;
  Vec ys;

  nn::Bnn bnn(options_.bnn, rng);
  nn::Adadelta opt(1.0);
  nn::StepLr sched(opt, 1, 0.999);

  bo::GpBoOptions gp_opts;
  gp_opts.acquisition = bo::AcquisitionKind::kEi;
  gp_opts.init_samples = options_.init_iterations;
  gp_opts.candidates = options_.candidates;
  bo::GpBoMinimizer gp_bo(space_, gp_opts);

  const bool use_gp = options_.surrogate == CalibratorSurrogate::kGpEi;
  const std::size_t batch = use_gp ? 1 : std::max<std::size_t>(1, options_.parallel);

  double best_weighted = std::numeric_limits<double>::infinity();

  // Under `fresh` the stream reproduces the historical
  // `seed * 104729 + query_counter` sequence (every iteration consumed
  // exactly `batch` seeds); under CRN the block repeats per iteration.
  const env::SeedStream seeds = plan.stream(env::SeedDomain::kStage1Query, batch);

  auto evaluate_batch = [&](const std::vector<Vec>& queries, std::size_t iter) {
    std::vector<env::EnvQuery> batch_q(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      batch_q[i].backend = sim_;
      batch_q[i].workload = options_.workload;
      seeds.apply(batch_q[i], iter, i);
      batch_q[i].sim_params = env::SimParams::from_vec(queries[i]);
    }
    const auto episodes = service_.run_batch(batch_q);
    std::vector<double> kls(queries.size(), 0.0);
    for (std::size_t i = 0; i < episodes.size(); ++i) kls[i] = discrepancy_from(episodes[i]);
    return kls;
  };

  for (std::size_t iter = 0; iter < options_.iterations; ++iter) {
    // ---- Select this iteration's queries -----------------------------------
    std::vector<Vec> queries;
    if (use_gp) {
      queries.push_back(gp_bo.observations() < options_.init_iterations
                            ? sample_candidate(rng)
                            : space_.clamp(gp_bo.ask(rng)));
    } else if (iter < options_.init_iterations) {
      for (std::size_t q = 0; q < batch; ++q) {
        queries.push_back(sample_candidate(rng));
      }
    } else {
      // Parallel Thompson sampling: each parallel query draws ONE frozen
      // network from the BNN posterior and minimizes the weighted
      // discrepancy estimate over a fresh candidate set (Alg. 1, lines 3-5).
      for (std::size_t q = 0; q < batch; ++q) {
        const nn::BnnSample draw = bnn.thompson(rng);
        Vec best_x;
        double best_util = std::numeric_limits<double>::infinity();
        for (std::size_t c = 0; c < options_.candidates; ++c) {
          const Vec x = sample_candidate(rng);
          const double est_kl = draw.predict(space_.normalize(x));
          const double util = est_kl + options_.alpha * space_.distance(x, x_hat);
          if (util < best_util) {
            best_util = util;
            best_x = x;
          }
        }
        queries.push_back(best_x);
      }
    }

    // ---- Query the simulator (offline, parallel) ---------------------------
    const std::vector<double> kls = evaluate_batch(queries, iter);

    // ---- Record + bookkeeping ----------------------------------------------
    double iter_weighted = 0.0;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      CalibrationStep step;
      step.params = env::SimParams::from_vec(queries[q]);
      step.kl = kls[q];
      step.distance = space_.distance(queries[q], x_hat);
      step.weighted = step.kl + options_.alpha * step.distance;
      iter_weighted += step.weighted;
      if (step.weighted < best_weighted) {
        best_weighted = step.weighted;
        result.best_params = step.params;
        result.best_kl = step.kl;
        result.best_distance = step.distance;
        result.best_weighted = step.weighted;
      }
      result.history.push_back(step);
      xs_norm.push_back(space_.normalize(queries[q]));
      ys.push_back(kls[q]);
      if (use_gp) gp_bo.tell(queries[q], kls[q]);
    }
    result.avg_weighted_per_iter.push_back(iter_weighted /
                                           static_cast<double>(queries.size()));

    // ---- Update the surrogate ----------------------------------------------
    if (!use_gp) {
      Matrix x(xs_norm.size(), space_.dim());
      for (std::size_t r = 0; r < xs_norm.size(); ++r) x.set_row(r, xs_norm[r]);
      bnn.train(x, ys, options_.train_epochs, 64, opt, &sched, rng);
    }
    if ((iter + 1) % 25 == 0) {
      common::log_info("stage1 iter ", iter + 1, "/", options_.iterations,
                       " best weighted=", result.best_weighted, " kl=", result.best_kl,
                       " dist=", result.best_distance);
    }
  }
  return result;
}

}  // namespace atlas::core
