#pragma once

#include <memory>
#include <vector>

#include "app/qoe.hpp"
#include "bo/acquisition.hpp"
#include "bo/space.hpp"
#include "env/client.hpp"
#include "env/seed_plan.hpp"
#include "math/rng.hpp"
#include "nn/bnn.hpp"

namespace atlas::core {

/// Surrogate / acquisition used for offline policy training. kBnnPts is
/// Atlas; the GP variants are the paper's Fig. 17 comparison points.
enum class OfflineSurrogate { kBnnPts, kGpEi, kGpPi, kGpUcb };

/// Options for the offline training stage (paper §5, Alg. 2).
struct OfflineOptions {
  std::size_t iterations = 150;      ///< Optimization iterations (paper: 1000).
  std::size_t init_iterations = 25;  ///< Pure exploration (paper: 100).
  std::size_t parallel = 8;          ///< Parallel queries (paper: 16).
  std::size_t candidates = 2000;     ///< Actions sampled per TS draw (paper: 10k+).
  double epsilon = 0.1;              ///< Dual step size (paper §8).
  OfflineSurrogate surrogate = OfflineSurrogate::kBnnPts;

  app::Sla sla;           ///< Y (latency threshold) and E (availability).
  env::Workload workload; ///< Configuration-interval workload.

  nn::BnnConfig bnn;            ///< QoE surrogate; sized on demand.
  std::size_t train_epochs = 6; ///< BNN epochs per iteration.
  std::uint64_t seed = 2;

  /// Episode-seed sequencing across iterations (env/seed_plan.hpp). The
  /// default `fresh` policy reproduces the historical unique-seed counters
  /// bit-identically; `crn` / `crn_rotating` reuse seeds across iterations
  /// for paired comparisons and cross-iteration memo reuse.
  env::SeedPlanOptions seed_plan;

  /// Speculative episode prefetching (env/speculation.hpp): while the
  /// acquisition scan still runs, the current top-K candidates' episodes are
  /// submitted as kSpeculative queries under the same seed plan, so the
  /// committed configuration is usually already (being) memoized when the
  /// iteration closes. 0 disables. Stage results are bit-identical either
  /// way (golden_stage_test pins both) — speculation only changes WHEN
  /// episodes run, never which results BO consumes.
  std::size_t speculate_top_k = 0;

  /// Experience replay (paper §10, Adaptability): (configuration, QoE)
  /// transitions from a previous training run seed the surrogate's dataset
  /// before any new simulator query — e.g., after a configuration-space or
  /// infrastructure change, the old buffer accelerates re-training.
  std::vector<std::pair<env::SliceConfig, double>> replay;
};

/// One evaluated configuration query.
struct OfflineStep {
  env::SliceConfig config;
  double usage = 0.0;
  double qoe = 0.0;
  double lambda = 0.0;
};

/// The trained offline policy: the BNN estimate of the simulator QoE
/// Q_s(state, Y, a) plus the incumbent configuration and the final dual
/// multiplier — everything Stage 3 needs as its starting point (§5.2).
struct OfflinePolicy {
  std::shared_ptr<nn::Bnn> qoe_model;
  app::Sla sla;
  int traffic = 1;
  env::SliceConfig best_config;
  double best_usage = 1.0;
  double best_qoe = 0.0;
  double final_lambda = 0.0;

  /// Surrogate input layout: [traffic/4, Y/600 ms, a normalized (6)].
  static math::Vec input(int traffic, double threshold_ms, const math::Vec& config_norm);

  /// Offline QoE estimate Q_s(a) in [0, 1] at this policy's (traffic, Y).
  double predict_qoe(const env::SliceConfig& config) const;
};

/// Per-iteration training trace (Fig. 16's two curves).
struct OfflineTrace {
  std::vector<double> avg_usage;
  std::vector<double> avg_qoe;
  std::vector<double> lambda;
};

/// Stage-2 output.
struct OfflineResult {
  OfflinePolicy policy;
  std::vector<OfflineStep> history;
  OfflineTrace trace;
};

/// Stage 2 — offline policy training in the augmented simulator (paper §5):
/// constrained Bayesian optimization of the configuration action minimizing
/// resource usage subject to Pr(QoE >= E), relaxed by the adaptive
/// Lagrangian L = F(a) - lambda (Q_s(a) - E) with dual updates (Eqs. 8-9).
class OfflineTrainer {
 public:
  /// `simulator` names the (augmented) offline backend inside `service`;
  /// parallel QoE queries run batched through the service.
  OfflineTrainer(env::EnvClient& service, env::BackendId simulator, OfflineOptions options);

  OfflineResult train();

 private:
  env::EnvClient& service_;
  env::BackendId simulator_;
  OfflineOptions options_;
  bo::BoxSpace space_;
};

}  // namespace atlas::core
