#pragma once

#include <optional>
#include <vector>

#include "bo/space.hpp"
#include "env/client.hpp"
#include "env/seed_plan.hpp"
#include "math/kl.hpp"
#include "math/rng.hpp"
#include "nn/bnn.hpp"

namespace atlas::core {

/// Which surrogate drives the Stage-1 search: Atlas's BNN with parallel
/// Thompson sampling, or the paper's "GP-based approach" comparison point
/// (GP surrogate, expected improvement, sequential queries).
enum class CalibratorSurrogate { kBnnPts, kGpEi };

/// How Thompson-sampling candidates are drawn: i.i.d. uniform (the paper's
/// "randomly sample tens of thousands"), or a scrambled-Halton
/// low-discrepancy stream (design-choice ablation; covers the box more
/// evenly at equal candidate count).
enum class CandidateSampler { kUniform, kHalton };

/// Options for the learning-based-simulator stage (paper §4, Alg. 1).
struct CalibrationOptions {
  std::size_t iterations = 200;       ///< Optimization iterations (paper: 500).
  std::size_t init_iterations = 30;   ///< Pure-exploration warmup (paper: 100).
  std::size_t parallel = 8;           ///< Parallel queries per iteration (paper: 16).
  std::size_t candidates = 1500;      ///< TS candidate pool (paper: tens of thousands).
  double alpha = 2.0;                 ///< Weight of the parameter distance (§4.2).
  double ball_radius = 0.5;           ///< H of Eq. 2 (normalized parameter distance).
  CalibratorSurrogate surrogate = CalibratorSurrogate::kBnnPts;
  CandidateSampler sampler = CandidateSampler::kUniform;

  /// Continual recalibration (paper §10, Scalability): when the
  /// infrastructure changes, restart the search from the PREVIOUS optimum —
  /// candidates are drawn around this center while the parameter distance of
  /// Eq. 2 stays anchored at the specification defaults x_hat.
  std::optional<env::SimParams> search_center;

  std::size_t real_episodes = 2;      ///< Episodes logged into D_r.
  env::Workload workload;             ///< Scenario of the online collection.
  math::KlOptions kl;                 ///< Discrepancy measurement layout.

  nn::BnnConfig bnn;                  ///< Stage-1 surrogate; sized on demand.
  std::size_t train_epochs = 6;       ///< BNN epochs per iteration.
  std::uint64_t seed = 1;

  /// Episode-seed sequencing across iterations (env/seed_plan.hpp); `fresh`
  /// is bit-identical to the historical counters, CRN policies reuse seeds
  /// across iterations (paired discrepancy estimates + memo reuse). The
  /// online collection D_r is metered and always sequenced fresh.
  env::SeedPlanOptions seed_plan;
};

/// One evaluated simulation-parameter query.
struct CalibrationStep {
  env::SimParams params;
  double kl = 0.0;
  double distance = 0.0;
  double weighted = 0.0;  ///< kl + alpha * distance.
};

/// Output of Stage 1.
struct CalibrationResult {
  env::SimParams best_params;
  double best_kl = 0.0;
  double best_distance = 0.0;
  double best_weighted = 0.0;
  double original_kl = 0.0;  ///< Discrepancy of the spec-default simulator.
  std::vector<CalibrationStep> history;          ///< Every query, in order.
  std::vector<double> avg_weighted_per_iter;     ///< Fig. 8 / Fig. 13 series.
};

/// Stage 1 — the learning-based simulator (paper §4): Bayesian optimization
/// over the Table 3 simulation parameters minimizing the weighted sim-to-real
/// discrepancy KL[D_r || D_s(x)] + alpha * |x - x_hat|_2 subject to the
/// parameter ball of Eq. 2.
class SimCalibrator {
 public:
  /// `real` names the metered backend inside `service` that provides the
  /// online collection D_r. Simulator evaluations run batched through the
  /// service against a private offline backend with per-query Table 3
  /// parameter overrides (and profit from its memoization + accounting).
  SimCalibrator(env::EnvClient& service, env::BackendId real, CalibrationOptions options);

  /// Run the search (Alg. 1) and return the calibration.
  CalibrationResult calibrate();

  /// Evaluate the sim-to-real discrepancy of a given parameter vector under
  /// this calibrator's D_r (used by benches for heatmaps / sweeps).
  double discrepancy_of(const env::SimParams& params, std::uint64_t seed) const;

 private:
  math::Vec collect_real_latencies() const;
  double discrepancy_from(const env::EpisodeResult& episode) const;

  env::EnvClient& service_;
  env::BackendId real_;
  env::BackendId sim_;  ///< Private offline backend for parameter queries.
  CalibrationOptions options_;
  bo::BoxSpace space_;
  math::Vec d_real_;  ///< Cached online collection.
};

}  // namespace atlas::core
