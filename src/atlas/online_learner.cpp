#include "atlas/online_learner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "bo/top_k.hpp"
#include "common/log.hpp"
#include "env/speculation.hpp"
#include "nn/optim.hpp"

namespace atlas::core {

using atlas::math::Matrix;
using atlas::math::Rng;
using atlas::math::Vec;

OnlineLearner::OnlineLearner(const OfflinePolicy* policy, env::EnvClient& service,
                             env::BackendId simulator, env::BackendId real,
                             OnlineOptions options)
    : policy_(policy),
      service_(service),
      simulator_(simulator),
      real_(real),
      options_(std::move(options)),
      space_(env::SliceConfig::space()) {
  if (policy_ == nullptr && options_.model != OnlineModel::kGpWhole) {
    throw std::invalid_argument("OnlineLearner: an offline policy is required unless kGpWhole");
  }
}

double OnlineLearner::offline_qoe_estimate(const Vec& config_norm) const {
  if (policy_ == nullptr) return 0.0;  // kGpWhole: the online model carries everything
  const Vec in = OfflinePolicy::input(options_.workload.traffic,
                                      options_.sla.latency_threshold_ms, config_norm);
  return std::clamp(policy_->qoe_model->predict_at_mean(in), 0.0, 1.0);
}

OnlineResult OnlineLearner::learn() {
  Rng rng(options_.seed);
  OnlineResult result;

  // Residual models. The GP regresses the QoE difference G (Eq. 12); the BNN
  // variants exist for the Fig. 23 ablation.
  gp::GaussianProcess residual_gp(options_.gp);
  std::optional<nn::Bnn> residual_bnn;
  nn::Adadelta bnn_opt(1.0);
  if (options_.model == OnlineModel::kBnnResidual) {
    nn::BnnConfig cfg;
    cfg.sizes = {space_.dim(), 48, 48, 1};
    cfg.noise_sigma = 0.07;
    residual_bnn.emplace(cfg, rng);
  }
  // kBnnContinued keeps training the offline model itself; we fine-tune a
  // shared reference (the policy's Bnn is shared_ptr-owned, so mutating is
  // visible to our estimates — intended for this ablation).

  std::vector<Vec> obs_x;  // normalized configs of online observations
  Vec obs_g;               // residual targets (or whole QoE for kGpWhole,
                           // or real QoE for kBnnContinued)

  // Posterior of the online model at a normalized config.
  auto residual_posterior = [&](const Vec& xn) -> gp::Posterior {
    gp::Posterior p;
    switch (options_.model) {
      case OnlineModel::kGpResidual:
      case OnlineModel::kGpWhole:
        if (residual_gp.fitted()) {
          p = residual_gp.predict(xn);
        } else {
          p.mean = options_.model == OnlineModel::kGpWhole ? 0.5 : 0.0;
          p.std = 0.3;
        }
        break;
      case OnlineModel::kBnnResidual: {
        const auto ms = residual_bnn->predict(xn, 8, rng);
        p.mean = ms.mean;
        p.std = obs_x.empty() ? 0.3 : ms.std;
        break;
      }
      case OnlineModel::kBnnContinued:
        // The fine-tuned offline BNN already predicts the full QoE; there is
        // no separate residual, so its epistemic spread plays sigma's role.
        p.mean = 0.0;
        p.std = 0.05;
        break;
    }
    return p;
  };

  // Combined QoE estimate Q(a) = Q_s(a) + G(a) (Eq. 12).
  auto combined_qoe = [&](const Vec& xn) {
    const double qs = offline_qoe_estimate(xn);
    const auto g = residual_posterior(xn);
    return std::clamp(qs + g.mean, 0.0, 1.0);
  };

  double lambda = policy_ != nullptr ? policy_->final_lambda : 1.0;

  // The very first online action is the offline optimum when available (§8.3).
  Vec next_config = policy_ != nullptr ? policy_->best_config.to_vec() : space_.sample(rng);

  // Seed planning: the metered real stream is always fresh; the simulator
  // stream (one residual episode + N inner-update episodes per iteration)
  // follows the plan's policy. Under `fresh` it reproduces the historical
  // pre-incremented `seed * 32452843 + n` counter bit-identically.
  const env::SeedPlan plan(options_.seed, options_.seed_plan);
  const bool accelerated = options_.offline_acceleration && options_.inner_updates > 0;
  const std::size_t sim_reps = 1 + (accelerated ? options_.inner_updates : 0);
  const env::SeedStream real_seeds = plan.stream(env::SeedDomain::kStage3RealOnline, 1);
  const env::SeedStream sim_seeds = plan.stream(env::SeedDomain::kStage3Sim, sim_reps);

  // Speculative prefetching: the next iteration's simulator RESIDUAL episode
  // (iter + 1, slot 0) is fully determined by the seed plan, so the final
  // selection scan can prefetch it for the likely winners while this
  // iteration is still thinking. Only the free simulator is speculated
  // against — a speculative query on the metered real network would spend
  // real SLA exposure on a guess.
  std::unique_ptr<env::SpeculationPlanner> prefetch;
  if (options_.speculate_top_k > 0) {
    prefetch = std::make_unique<env::SpeculationPlanner>(
        service_, env::SpeculationOptions{.top_k = options_.speculate_top_k});
  }
  auto sim_query_for = [&](const Vec& config_raw, std::size_t iter) {
    env::EnvQuery q;
    q.backend = simulator_;
    q.config = env::SliceConfig::from_vec(config_raw);
    q.workload = options_.workload;
    sim_seeds.apply(q, iter, 0);
    return q;
  };

  for (std::size_t iter = 0; iter < options_.iterations; ++iter) {
    // ---- Apply the configuration to the real network -----------------------
    // The metered real-network episode and the simulator residual episode are
    // independent queries on different backends: submit both and overlap them
    // instead of serializing two blocking measure_qoe calls.
    const env::SliceConfig config = env::SliceConfig::from_vec(next_config);
    env::EnvQuery real_q;
    real_q.backend = real_;
    real_q.config = config;
    real_q.workload = options_.workload;
    real_seeds.apply(real_q, iter, 0);

    // ---- Residual observation (one offline simulator episode) --------------
    env::EnvQuery sim_q = sim_query_for(next_config, iter);
    if (prefetch) prefetch->note_commit(sim_q);  // speculated last iteration?

    auto real_handle = service_.submit(std::move(real_q));
    auto sim_handle = service_.submit(std::move(sim_q));
    const double qoe_real = real_handle.get().qoe(options_.sla.latency_threshold_ms);
    const double qoe_sim = sim_handle.get().qoe(options_.sla.latency_threshold_ms);
    // The committed residual episode is harvested: settle last iteration's
    // speculations (cancel mispredictions still queued, bucket the rest).
    if (prefetch) prefetch->close_iteration();

    OnlineStep step;
    step.config = config;
    step.usage = config.resource_usage();
    step.qoe_real = qoe_real;
    step.qoe_sim = qoe_sim;
    step.lambda = lambda;

    // ---- Update the online model --------------------------------------------
    const Vec xn = space_.normalize(space_.clamp(next_config));
    obs_x.push_back(xn);
    switch (options_.model) {
      case OnlineModel::kGpResidual: {
        const double offline_est = offline_qoe_estimate(xn);
        obs_g.push_back(qoe_real - offline_est);
        break;
      }
      case OnlineModel::kGpWhole:
        obs_g.push_back(qoe_real);
        break;
      case OnlineModel::kBnnResidual:
        obs_g.push_back(qoe_real - offline_qoe_estimate(xn));
        break;
      case OnlineModel::kBnnContinued:
        obs_g.push_back(qoe_real);
        break;
    }
    {
      Matrix x(obs_x.size(), space_.dim());
      for (std::size_t r = 0; r < obs_x.size(); ++r) x.set_row(r, obs_x[r]);
      switch (options_.model) {
        case OnlineModel::kGpResidual:
        case OnlineModel::kGpWhole:
          residual_gp.fit(x, obs_g);
          break;
        case OnlineModel::kBnnResidual:
          residual_bnn->train(x, obs_g, 40, 16, bnn_opt, nullptr, rng);
          break;
        case OnlineModel::kBnnContinued: {
          // Fine-tune the offline BNN on the online (state, Y, a) -> QoE pairs.
          Matrix xi(obs_x.size(), 2 + space_.dim());
          for (std::size_t r = 0; r < obs_x.size(); ++r) {
            xi.set_row(r, OfflinePolicy::input(options_.workload.traffic,
                                               options_.sla.latency_threshold_ms, obs_x[r]));
          }
          policy_->qoe_model->train(xi, obs_g, 20, 16, bnn_opt, nullptr, rng);
          break;
        }
      }
    }

    // ---- Multiplier updates --------------------------------------------------
    if (accelerated) {
      // Offline acceleration (Eq. 15): N inner dual updates, each driven by an
      // actual augmented-simulator query at the currently-greedy action.
      for (std::size_t n = 0; n < options_.inner_updates; ++n) {
        Vec greedy;
        double best_l = std::numeric_limits<double>::infinity();
        for (std::size_t c = 0; c < options_.candidates / 4; ++c) {
          const Vec a = space_.sample(rng);
          const Vec an = space_.normalize(a);
          const double q = combined_qoe(an);
          const double l = env::SliceConfig::from_vec(a).resource_usage() -
                           lambda * (q - options_.sla.availability);
          if (l < best_l) {
            best_l = l;
            greedy = a;
          }
        }
        env::EnvQuery inner_q;
        inner_q.backend = simulator_;
        inner_q.config = env::SliceConfig::from_vec(greedy);
        inner_q.workload = options_.workload;
        sim_seeds.apply(inner_q, iter, 1 + n);  // slot 0 was the residual episode
        const double qs = service_.measure_qoe(inner_q, options_.sla.latency_threshold_ms);
        const auto g = residual_posterior(space_.normalize(greedy));
        const double q_est = std::clamp(qs + g.mean, 0.0, 1.0);
        lambda = std::max(0.0, lambda - options_.epsilon * (q_est - options_.sla.availability));
      }
    } else {
      // Single online update (the "No Offline Acc." ablation).
      lambda = std::max(0.0, lambda - options_.epsilon * (qoe_real - options_.sla.availability));
    }

    // ---- Select the next online action --------------------------------------
    double beta = 0.0;
    switch (options_.acquisition) {
      case bo::AcquisitionKind::kCrgpUcb:
        beta = bo::crgp_ucb_beta(iter + 1, options_.rho, options_.clip_b, rng);
        break;
      case bo::AcquisitionKind::kGpUcb:
        beta = bo::gp_ucb_beta(iter + 1, options_.candidates);
        break;
      case bo::AcquisitionKind::kUcb:
        beta = 4.0;
        break;
      default:
        break;
    }
    step.beta = beta;

    // Incumbent Lagrangian value for EI/PI.
    double incumbent = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < result.history.size(); ++i) {
      const auto& h = result.history[i];
      incumbent = std::min(incumbent,
                           h.usage - lambda * (h.qoe_real - options_.sla.availability));
    }
    incumbent = std::min(incumbent,
                         step.usage - lambda * (qoe_real - options_.sla.availability));

    // Ranked top-K scan (bo/top_k.hpp): offer(-util) keeps best() identical
    // to the old running strict-> argmax; the ranking feeds speculation of
    // the next iteration's residual episode at the mid-scan checkpoints.
    bo::TopK top(std::max<std::size_t>(1, options_.speculate_top_k));
    const bool spec_this_iter = prefetch != nullptr && iter + 1 < options_.iterations;
    const std::size_t check_half = options_.candidates / 2;
    const std::size_t check_late = options_.candidates - options_.candidates / 20;
    auto speculate_top = [&] {
      for (const auto& entry : top.ranked()) {
        if (prefetch->budget() == 0) break;
        prefetch->speculate(sim_query_for(entry.x, iter + 1));
      }
    };
    for (std::size_t c = 0; c < options_.candidates; ++c) {
      const Vec a = space_.sample(rng);
      const Vec an = space_.normalize(a);
      const double usage = env::SliceConfig::from_vec(a).resource_usage();
      const double qs = offline_qoe_estimate(an);
      const auto g = residual_posterior(an);
      double util = 0.0;
      switch (options_.acquisition) {
        case bo::AcquisitionKind::kEi: {
          const double mean_l = usage - lambda * (std::clamp(qs + g.mean, 0.0, 1.0) -
                                                  options_.sla.availability);
          util = bo::expected_improvement(mean_l, lambda * g.std, incumbent);
          break;
        }
        case bo::AcquisitionKind::kPi: {
          const double mean_l = usage - lambda * (std::clamp(qs + g.mean, 0.0, 1.0) -
                                                  options_.sla.availability);
          util = bo::probability_of_improvement(mean_l, lambda * g.std, incumbent);
          break;
        }
        default: {
          // UCB family (ours): optimistic QoE bound, clipped into [0, 1]
          // (paper §6.2: mu + sqrt(beta) sigma with Eq. 12's combined model).
          const double q_ucb =
              std::clamp(qs + g.mean + std::sqrt(std::max(0.0, beta)) * g.std, 0.0, 1.0);
          util = -(usage - lambda * (q_ucb - options_.sla.availability));
          break;
        }
      }
      top.offer(a, -util);
      if (spec_this_iter && (c + 1 == check_half || c + 1 == check_late)) speculate_top();
    }
    next_config = top.best();

    result.history.push_back(step);
    if ((iter + 1) % 20 == 0) {
      common::log_info("stage3 iter ", iter + 1, "/", options_.iterations,
                       " qoe=", qoe_real, " usage=", step.usage, " lambda=", lambda);
    }
  }
  result.final_lambda = lambda;
  return result;
}

}  // namespace atlas::core
