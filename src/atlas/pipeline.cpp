#include "atlas/pipeline.hpp"

#include "common/log.hpp"

namespace atlas::core {

AtlasPipeline::AtlasPipeline(env::EnvClient& service, env::BackendId real,
                             PipelineOptions options)
    : service_(service), real_(real), options_(std::move(options)) {
  if (options_.seed_plan) {
    options_.stage1.seed_plan = *options_.seed_plan;
    options_.stage2.seed_plan = *options_.seed_plan;
    options_.stage3.seed_plan = *options_.seed_plan;
  }
  if (options_.speculate_top_k) {
    options_.stage2.speculate_top_k = *options_.speculate_top_k;
    options_.stage3.speculate_top_k = *options_.speculate_top_k;
  }
}

namespace {

/// Counters accumulated since `start` — so re-running a pipeline on a shared
/// (long-lived) service reports this run's queries, not the service's
/// lifetime totals.
env::EnvServiceStats stats_since(const env::EnvServiceStats& start,
                                 env::EnvServiceStats now) {
  for (std::size_t i = 0; i < start.backends.size() && i < now.backends.size(); ++i) {
    now.backends[i].queries -= start.backends[i].queries;
    now.backends[i].cache_hits -= start.backends[i].cache_hits;
    now.backends[i].cache_misses -= start.backends[i].cache_misses;
    now.backends[i].crn_hits -= start.backends[i].crn_hits;
    now.backends[i].episodes -= start.backends[i].episodes;
    now.backends[i].shedded -= start.backends[i].shedded;
    now.backends[i].deadline_rejected -= start.backends[i].deadline_rejected;
    now.backends[i].cancelled -= start.backends[i].cancelled;
    now.backends[i].rpc_retries -= start.backends[i].rpc_retries;
    now.backends[i].rpc_failures -= start.backends[i].rpc_failures;
    now.backends[i].rpc_rtt_ns.subtract(start.backends[i].rpc_rtt_ns);
  }
  now.offline_queries -= start.offline_queries;
  now.online_queries -= start.online_queries;
  now.cache_hits -= start.cache_hits;
  now.cache_misses -= start.cache_misses;
  now.crn_hits -= start.crn_hits;
  now.shed_total -= start.shed_total;
  now.deadline_rejected -= start.deadline_rejected;
  now.cancelled_total -= start.cancelled_total;
  now.speculation.launched -= start.speculation.launched;
  now.speculation.hits -= start.speculation.hits;
  now.speculation.cancelled -= start.speculation.cancelled;
  now.speculation.wasted -= start.speculation.wasted;
  // Histogram buckets are monotonic counters too: the difference is this
  // phase's latency/queue-depth distribution.
  now.query_latency_ns.subtract(start.query_latency_ns);
  now.queue_depth.subtract(start.queue_depth);
  now.rpc_service_ns.subtract(start.rpc_service_ns);
  return now;
}

}  // namespace

PipelineResult AtlasPipeline::run(const PipelineCallback& progress) {
  PipelineResult result;
  const env::EnvServiceStats start_stats = service_.stats();

  auto emit = [&](PipelineStage stage, bool finished, bool skipped) {
    if (!progress) return;
    PipelineProgress event;
    event.stage = stage;
    event.finished = finished;
    event.skipped = skipped;
    event.env_stats = stats_since(start_stats, service_.stats());
    progress(event);
  };
  auto stage_scope = [&](PipelineStage stage, bool enabled, auto&& body) {
    if (!enabled) {
      emit(stage, /*finished=*/true, /*skipped=*/true);
      return;
    }
    emit(stage, /*finished=*/false, /*skipped=*/false);
    body();
    emit(stage, /*finished=*/true, /*skipped=*/false);
  };

  // ---- Stage 1: learning-based simulator -----------------------------------
  env::SimParams sim_params = env::SimParams::defaults();
  stage_scope(PipelineStage::kCalibration, options_.run_stage1, [&] {
    SimCalibrator calibrator(service_, real_, options_.stage1);
    result.calibration = calibrator.calibrate();
    sim_params = result.calibration.best_params;
    common::log_info("pipeline: stage 1 done, kl ", result.calibration.original_kl, " -> ",
                     result.calibration.best_kl);
  });
  const env::BackendId augmented = service_.add_simulator(sim_params, "augmented-sim");

  // ---- Stage 2: offline training --------------------------------------------
  const OfflinePolicy* policy = nullptr;
  stage_scope(PipelineStage::kOfflineTraining, options_.run_stage2, [&] {
    OfflineTrainer trainer(service_, augmented, options_.stage2);
    result.offline = trainer.train();
    policy = &result.offline.policy;
    common::log_info("pipeline: stage 2 done, best usage ", result.offline.policy.best_usage,
                     " qoe ", result.offline.policy.best_qoe);
  });

  // ---- Stage 3: online learning ---------------------------------------------
  OnlineOptions stage3 = options_.stage3;
  if (!options_.run_stage2) stage3.model = OnlineModel::kGpWhole;
  if (options_.run_stage3) {
    stage_scope(PipelineStage::kOnlineLearning, true, [&] {
      OnlineLearner learner(policy, service_, augmented, real_, stage3);
      result.online = learner.learn();
    });
  } else {
    // "No stage 3": keep applying the offline optimum and just observe.
    // These observations are still metered real interactions, so the skipped
    // event is emitted AFTER the loop — its env_stats include the exposure.
    if (policy != nullptr) {
      const env::SeedStream seeds = env::SeedPlan(stage3.seed, stage3.seed_plan)
                                        .stream(env::SeedDomain::kStage3RealOnline, 1);
      for (std::size_t i = 0; i < stage3.iterations; ++i) {
        env::Workload wl = stage3.workload;
        wl.seed = seeds.seed(i, 0);
        OnlineStep step;
        step.config = policy->best_config;
        step.usage = policy->best_config.resource_usage();
        step.qoe_real =
            service_.measure_qoe(real_, policy->best_config, wl, stage3.sla.latency_threshold_ms);
        step.qoe_sim = policy->best_qoe;
        result.online.history.push_back(step);
      }
    }
    emit(PipelineStage::kOnlineLearning, /*finished=*/true, /*skipped=*/true);
  }

  result.env_stats = stats_since(start_stats, service_.stats());
  return result;
}

}  // namespace atlas::core
