#include "atlas/pipeline.hpp"

#include "common/log.hpp"

namespace atlas::core {

AtlasPipeline::AtlasPipeline(const env::NetworkEnvironment& real, PipelineOptions options,
                             common::ThreadPool* pool)
    : real_(real), options_(std::move(options)), pool_(pool) {}

PipelineResult AtlasPipeline::run() {
  PipelineResult result;

  // ---- Stage 1: learning-based simulator -----------------------------------
  env::SimParams sim_params = env::SimParams::defaults();
  if (options_.run_stage1) {
    SimCalibrator calibrator(real_, options_.stage1, pool_);
    result.calibration = calibrator.calibrate();
    sim_params = result.calibration.best_params;
    common::log_info("pipeline: stage 1 done, kl ", result.calibration.original_kl, " -> ",
                     result.calibration.best_kl);
  }
  env::Simulator augmented(sim_params);

  // ---- Stage 2: offline training --------------------------------------------
  const OfflinePolicy* policy = nullptr;
  if (options_.run_stage2) {
    OfflineTrainer trainer(augmented, options_.stage2, pool_);
    result.offline = trainer.train();
    policy = &result.offline.policy;
    common::log_info("pipeline: stage 2 done, best usage ", result.offline.policy.best_usage,
                     " qoe ", result.offline.policy.best_qoe);
  }

  // ---- Stage 3: online learning ---------------------------------------------
  OnlineOptions stage3 = options_.stage3;
  if (!options_.run_stage2) stage3.model = OnlineModel::kGpWhole;
  if (options_.run_stage3) {
    OnlineLearner learner(policy, augmented, real_, stage3);
    result.online = learner.learn();
  } else if (policy != nullptr) {
    // "No stage 3": keep applying the offline optimum and just observe.
    for (std::size_t i = 0; i < stage3.iterations; ++i) {
      env::Workload wl = stage3.workload;
      wl.seed = stage3.seed * 49979687 + i;
      OnlineStep step;
      step.config = policy->best_config;
      step.usage = policy->best_config.resource_usage();
      step.qoe_real = real_.measure_qoe(policy->best_config, wl, stage3.sla.latency_threshold_ms);
      step.qoe_sim = policy->best_qoe;
      result.online.history.push_back(step);
    }
  }
  return result;
}

}  // namespace atlas::core
