#pragma once

#include <functional>
#include <optional>

#include "atlas/calibrator.hpp"
#include "atlas/offline_trainer.hpp"
#include "atlas/online_learner.hpp"

namespace atlas::core {

/// End-to-end Atlas configuration: one knob block per stage.
struct PipelineOptions {
  CalibrationOptions stage1;
  OfflineOptions stage2;
  OnlineOptions stage3;
  bool run_stage1 = true;  ///< false = offline-train on the ORIGINAL simulator
                           ///< ("No stage 1" ablation, Fig. 24).
  bool run_stage2 = true;  ///< false = online learning learns the whole QoE
                           ///< ("No stage 2" ablation, Fig. 24).
  bool run_stage3 = true;  ///< false = apply the offline optimum unchanged
                           ///< ("No stage 3" ablation, Fig. 24).

  /// One knob for the whole run: when set, overrides every stage's
  /// `seed_plan` (policy + CRN replicate count + rotation period — see
  /// env/seed_plan.hpp). Unset: each stage block keeps its own setting
  /// (default `fresh`, the historical bit-identical sequencing).
  std::optional<env::SeedPlanOptions> seed_plan;

  /// One knob for speculative episode prefetching (env/speculation.hpp):
  /// when set, overrides stage 2's and stage 3's `speculate_top_k` (stage 1
  /// has no acquisition scan to prefetch from). Unset: each stage block
  /// keeps its own setting (default 0 = off).
  std::optional<std::size_t> speculate_top_k;
};

/// Combined output of a full pipeline run.
struct PipelineResult {
  CalibrationResult calibration;  ///< Empty history if stage 1 skipped.
  OfflineResult offline;          ///< Empty history if stage 2 skipped.
  OnlineResult online;
  env::EnvServiceStats env_stats;  ///< Final per-backend query/cache accounting.
};

/// The pipeline's three stages, in execution order.
enum class PipelineStage { kCalibration, kOfflineTraining, kOnlineLearning };

/// One progress event: each enabled stage emits a starting event
/// (`finished == false`) and a completion event (`finished == true`);
/// disabled stages emit a single `skipped` event. `env_stats` snapshots the
/// service counters at the event, so callers can watch SLA exposure and
/// cache efficiency accumulate per stage instead of staring at one
/// monolithic blocking run().
struct PipelineProgress {
  PipelineStage stage = PipelineStage::kCalibration;
  bool finished = false;
  bool skipped = false;
  env::EnvServiceStats env_stats;
};

using PipelineCallback = std::function<void(const PipelineProgress&)>;

/// The integrated three-stage Atlas system (paper §3): calibrate the
/// simulator against the real network's online collection, train the
/// configuration policy offline in the augmented simulator, then learn
/// safely online. Ablation flags reproduce the paper's Fig. 24. All
/// environment queries flow through the EnvService, which owns the
/// parallelism, memoization, and the per-backend query accounting reported
/// in PipelineResult::env_stats.
class AtlasPipeline {
 public:
  /// `real` names the metered backend inside `service`.
  AtlasPipeline(env::EnvClient& service, env::BackendId real, PipelineOptions options);

  /// Run the enabled stages and return every trace. `progress` (optional)
  /// receives per-stage start/finish/skip events. Stats (in events and in
  /// PipelineResult::env_stats) count THIS run's queries only, so pipelines
  /// sharing a long-lived service report clean per-run accounting. Each run
  /// registers its own stage-1/augmented simulator backends with the
  /// service (registry entries are small and append-only).
  PipelineResult run(const PipelineCallback& progress = {});

 private:
  env::EnvClient& service_;
  env::BackendId real_;
  PipelineOptions options_;
};

}  // namespace atlas::core
