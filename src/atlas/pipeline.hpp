#pragma once

#include "atlas/calibrator.hpp"
#include "atlas/offline_trainer.hpp"
#include "atlas/online_learner.hpp"

namespace atlas::core {

/// End-to-end Atlas configuration: one knob block per stage.
struct PipelineOptions {
  CalibrationOptions stage1;
  OfflineOptions stage2;
  OnlineOptions stage3;
  bool run_stage1 = true;  ///< false = offline-train on the ORIGINAL simulator
                           ///< ("No stage 1" ablation, Fig. 24).
  bool run_stage2 = true;  ///< false = online learning learns the whole QoE
                           ///< ("No stage 2" ablation, Fig. 24).
  bool run_stage3 = true;  ///< false = apply the offline optimum unchanged
                           ///< ("No stage 3" ablation, Fig. 24).
};

/// Combined output of a full pipeline run.
struct PipelineResult {
  CalibrationResult calibration;  ///< Empty history if stage 1 skipped.
  OfflineResult offline;          ///< Empty history if stage 2 skipped.
  OnlineResult online;
};

/// The integrated three-stage Atlas system (paper §3): calibrate the
/// simulator against the real network's online collection, train the
/// configuration policy offline in the augmented simulator, then learn
/// safely online. Ablation flags reproduce the paper's Fig. 24.
class AtlasPipeline {
 public:
  AtlasPipeline(const env::NetworkEnvironment& real, PipelineOptions options,
                common::ThreadPool* pool = nullptr);

  /// Run the enabled stages and return every trace.
  PipelineResult run();

 private:
  const env::NetworkEnvironment& real_;
  PipelineOptions options_;
  common::ThreadPool* pool_;
};

}  // namespace atlas::core
