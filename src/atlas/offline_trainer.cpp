#include "atlas/offline_trainer.hpp"

#include <algorithm>
#include <limits>
#include <memory>

#include "bo/top_k.hpp"
#include "common/log.hpp"
#include "env/speculation.hpp"
#include "gp/gaussian_process.hpp"
#include "nn/optim.hpp"

namespace atlas::core {

using atlas::math::Matrix;
using atlas::math::Rng;
using atlas::math::Vec;

math::Vec OfflinePolicy::input(int traffic, double threshold_ms, const Vec& config_norm) {
  Vec x;
  x.reserve(2 + config_norm.size());
  x.push_back(static_cast<double>(traffic) / 4.0);
  x.push_back(threshold_ms / 600.0);
  x.insert(x.end(), config_norm.begin(), config_norm.end());
  return x;
}

double OfflinePolicy::predict_qoe(const env::SliceConfig& config) const {
  const auto space = env::SliceConfig::space();
  const Vec in = input(traffic, sla.latency_threshold_ms, space.normalize(config.to_vec()));
  return std::clamp(qoe_model->predict_at_mean(in), 0.0, 1.0);
}

OfflineTrainer::OfflineTrainer(env::EnvClient& service, env::BackendId simulator,
                               OfflineOptions options)
    : service_(service),
      simulator_(simulator),
      options_(std::move(options)),
      space_(env::SliceConfig::space()) {
  if (options_.bnn.sizes.empty()) {
    options_.bnn.sizes = {2 + space_.dim(), 64, 64, 1};
    options_.bnn.noise_sigma = 0.07;  // QoE estimates carry ~0.02-0.05 sampling noise
  }
}

OfflineResult OfflineTrainer::train() {
  Rng rng(options_.seed);
  OfflineResult result;
  result.policy.sla = options_.sla;
  result.policy.traffic = options_.workload.traffic;

  auto bnn = std::make_shared<nn::Bnn>(options_.bnn, rng);
  nn::Adadelta opt(1.0);
  nn::StepLr sched(opt, 1, 0.999);
  gp::GaussianProcess gp;  // used by the GP surrogate variants

  std::vector<Vec> xs;  // surrogate inputs
  Vec ys;               // measured QoE

  const bool use_gp = options_.surrogate != OfflineSurrogate::kBnnPts;

  // Experience replay: previous transitions pre-seed the dataset (§10).
  for (const auto& [config, qoe] : options_.replay) {
    xs.push_back(OfflinePolicy::input(options_.workload.traffic,
                                      options_.sla.latency_threshold_ms,
                                      space_.normalize(config.clamped().to_vec())));
    ys.push_back(qoe);
  }
  const std::size_t batch = use_gp ? 1 : std::max<std::size_t>(1, options_.parallel);

  double lambda = 0.0;
  double best_score = std::numeric_limits<double>::infinity();

  // Seed planning (env/seed_plan.hpp): under `fresh` the stream reproduces
  // the historical `seed * 15485863 + query_counter` sequence bit-identically
  // (iteration * batch + slot); under CRN policies the same seed block
  // returns every iteration, pairing QoE comparisons across iterations and
  // letting revisited configurations hit the service memo table.
  const env::SeedStream seeds =
      env::SeedPlan(options_.seed, options_.seed_plan)
          .stream(env::SeedDomain::kStage2Query, batch);

  auto surrogate_input = [&](const Vec& config_raw) {
    return OfflinePolicy::input(options_.workload.traffic, options_.sla.latency_threshold_ms,
                                space_.normalize(config_raw));
  };

  // Speculative prefetching (optimistic BO): mid-scan, the current top-K
  // candidates' episodes are launched as kSpeculative queries under the SAME
  // seed plan the committed query will use, so the commit usually coalesces
  // onto an in-flight episode or hits the memo table outright. The planner
  // never touches `rng`, so selection stays bit-identical with it on or off.
  std::unique_ptr<env::SpeculationPlanner> prefetch;
  if (options_.speculate_top_k > 0) {
    prefetch = std::make_unique<env::SpeculationPlanner>(
        service_, env::SpeculationOptions{.top_k = options_.speculate_top_k});
  }

  // Overlapped querying: each selected configuration is submitted the moment
  // it is chosen, so episode execution on the service pool overlaps the
  // remaining acquisition work (Thompson draws, candidate scans) instead of
  // blocking on a whole-batch run_batch after selection finishes.
  std::vector<env::QueryHandle> handles;
  auto make_query = [&](const Vec& config_raw, std::size_t iter, std::size_t slot) {
    env::EnvQuery q;
    q.backend = simulator_;
    q.config = env::SliceConfig::from_vec(config_raw);
    q.workload = options_.workload;
    seeds.apply(q, iter, slot);
    return q;
  };
  auto submit_query = [&](const Vec& config_raw, std::size_t iter, std::size_t slot) {
    env::EnvQuery q = make_query(config_raw, iter, slot);
    if (prefetch) prefetch->note_commit(q);
    handles.push_back(service_.submit(std::move(q)));
  };
  // Mid-scan checkpoints: speculate once the ranking is half settled and
  // again near the end (a late-scan overtake re-speculates the new leader;
  // the displaced one just warms the cache).
  auto speculate_top = [&](const bo::TopK& top, std::size_t iter, std::size_t slot) {
    if (!prefetch) return;
    for (const auto& entry : top.ranked()) {
      if (prefetch->budget() == 0) break;
      prefetch->speculate(make_query(entry.x, iter, slot));
    }
  };
  const std::size_t check_half = options_.candidates / 2;
  const std::size_t check_late = options_.candidates - options_.candidates / 20;

  for (std::size_t iter = 0; iter < options_.iterations; ++iter) {
    // ---- Select queries -----------------------------------------------------
    std::vector<Vec> queries;
    if (iter < options_.init_iterations) {
      for (std::size_t q = 0; q < batch; ++q) {
        queries.push_back(space_.sample(rng));
        submit_query(queries.back(), iter, q);
      }
    } else if (!use_gp) {
      // Parallel Thompson sampling over the BNN QoE model: minimize the
      // Lagrangian L = F(a) - lambda (Qhat(a) - E) per draw (Alg. 2).
      for (std::size_t q = 0; q < batch; ++q) {
        const nn::BnnSample draw = bnn->thompson(rng);
        // Ranked top-K (bo/top_k.hpp): best() is bit-identical to the old
        // running strict-< argmin; the rest of the ranking feeds speculation.
        bo::TopK top(std::max<std::size_t>(1, options_.speculate_top_k));
        for (std::size_t c = 0; c < options_.candidates; ++c) {
          const Vec a = space_.sample(rng);
          const double q_hat = std::clamp(draw.predict(surrogate_input(a)), 0.0, 1.0);
          const double usage = env::SliceConfig::from_vec(a).resource_usage();
          const double lagrangian = usage - lambda * (q_hat - options_.sla.availability);
          top.offer(a, lagrangian);
          if (c + 1 == check_half || c + 1 == check_late) speculate_top(top, iter, q);
        }
        queries.push_back(top.best());
        submit_query(top.best(), iter, q);  // episode q runs while draw q+1 scans candidates
      }
    } else {
      // GP surrogate over QoE; acquisition evaluated on the Lagrangian whose
      // only random part is lambda * Q (so sigma_L = lambda * sigma_Q).
      Matrix x(xs.size(), xs.empty() ? 0 : xs[0].size());
      for (std::size_t r = 0; r < xs.size(); ++r) x.set_row(r, xs[r]);
      gp.fit(x, ys);
      double incumbent = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < xs.size(); ++i) {
        const double usage =
            env::SliceConfig::from_vec(space_.denormalize(
                                           Vec(xs[i].begin() + 2, xs[i].end())))
                .resource_usage();
        incumbent = std::min(incumbent, usage - lambda * (ys[i] - options_.sla.availability));
      }
      // Maximizing scan: offer(-util) keeps best() bit-identical to the old
      // running strict-> argmax (first-wins on ties in both).
      bo::TopK top(std::max<std::size_t>(1, options_.speculate_top_k));
      const double beta = bo::gp_ucb_beta(iter + 1, options_.candidates);
      for (std::size_t c = 0; c < options_.candidates; ++c) {
        const Vec a = space_.sample(rng);
        const auto post = gp.predict(surrogate_input(a));
        const double usage = env::SliceConfig::from_vec(a).resource_usage();
        const double mean_l = usage - lambda * (post.mean - options_.sla.availability);
        const double std_l = lambda * post.std;
        double util = 0.0;
        switch (options_.surrogate) {
          case OfflineSurrogate::kGpEi:
            util = bo::expected_improvement(mean_l, std_l, incumbent);
            break;
          case OfflineSurrogate::kGpPi:
            util = bo::probability_of_improvement(mean_l, std_l, incumbent);
            break;
          default:
            util = -bo::lower_confidence_bound(mean_l, std_l, beta);
            break;
        }
        top.offer(a, -util);
        if (c + 1 == check_half || c + 1 == check_late) speculate_top(top, iter, 0);
      }
      queries.push_back(top.best());
      submit_query(top.best(), iter, 0);
    }

    // ---- Harvest the augmented-simulator episodes (submitted above) ---------
    std::vector<double> qoes(handles.size());
    for (std::size_t q = 0; q < handles.size(); ++q) {
      qoes[q] = handles[q].get().qoe(options_.sla.latency_threshold_ms);
    }
    handles.clear();
    // Iteration closed: cancel still-queued mispredictions, settle the
    // hit/cancelled/wasted buckets (completed mispredictions stay memoized
    // as warm cache entries for later revisits).
    if (prefetch) prefetch->close_iteration();

    // ---- Record, update dual multiplier, track incumbent --------------------
    double iter_usage = 0.0;
    double iter_qoe = 0.0;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      OfflineStep step;
      step.config = env::SliceConfig::from_vec(queries[q]);
      step.usage = step.config.resource_usage();
      step.qoe = qoes[q];
      step.lambda = lambda;
      iter_usage += step.usage;
      iter_qoe += step.qoe;
      result.history.push_back(step);
      xs.push_back(surrogate_input(queries[q]));
      ys.push_back(qoes[q]);
      // Incumbent: feasible configurations ranked by usage; infeasible ones
      // by constraint violation (so early iterations still carry a policy).
      const double score = step.qoe >= options_.sla.availability
                               ? step.usage
                               : 1.0 + (options_.sla.availability - step.qoe);
      if (score < best_score) {
        best_score = score;
        result.policy.best_config = step.config;
        result.policy.best_usage = step.usage;
        result.policy.best_qoe = step.qoe;
      }
    }
    iter_usage /= static_cast<double>(queries.size());
    iter_qoe /= static_cast<double>(queries.size());
    result.trace.avg_usage.push_back(iter_usage);
    result.trace.avg_qoe.push_back(iter_qoe);

    // Dual update from the batch average (Alg. 2, Eq. 9).
    lambda = std::max(0.0, lambda - options_.epsilon * (iter_qoe - options_.sla.availability));
    result.trace.lambda.push_back(lambda);

    // ---- Update the surrogate ------------------------------------------------
    if (!use_gp) {
      Matrix x(xs.size(), xs[0].size());
      for (std::size_t r = 0; r < xs.size(); ++r) x.set_row(r, xs[r]);
      bnn->train(x, ys, options_.train_epochs, 64, opt, &sched, rng);
    }
    if ((iter + 1) % 25 == 0) {
      common::log_info("stage2 iter ", iter + 1, "/", options_.iterations,
                       " lambda=", lambda, " best usage=", result.policy.best_usage,
                       " qoe=", result.policy.best_qoe);
    }
  }

  result.policy.qoe_model = bnn;
  result.policy.final_lambda = lambda;
  return result;
}

}  // namespace atlas::core
