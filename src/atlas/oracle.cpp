#include "atlas/oracle.hpp"

#include <algorithm>
#include <limits>

#include "common/log.hpp"
#include "math/rng.hpp"

namespace atlas::core {

using atlas::math::Rng;
using atlas::math::Vec;

namespace {

double validated_qoe(env::EnvClient& service, env::BackendId target,
                     const env::SliceConfig& config, const app::Sla& sla,
                     const env::Workload& workload, std::uint64_t seed,
                     std::size_t episodes) {
  episodes = std::max<std::size_t>(1, episodes);
  std::vector<env::EnvQuery> batch(episodes);
  for (std::size_t e = 0; e < episodes; ++e) {
    batch[e].backend = target;
    batch[e].config = config;
    batch[e].workload = workload;
    batch[e].workload.seed = seed + e * 613;
  }
  const auto qoes = service.measure_qoe_batch(batch, sla.latency_threshold_ms);
  double acc = 0.0;
  for (double q : qoes) acc += q;
  return acc / static_cast<double>(episodes);
}

}  // namespace

OracleOptimum find_optimal_config(env::EnvClient& service, env::BackendId target,
                                  const app::Sla& sla, const env::Workload& workload,
                                  std::size_t budget, std::uint64_t seed,
                                  std::size_t validation_episodes) {
  Rng rng(seed * 2654435761ULL + 1);
  const auto space = env::SliceConfig::space();
  OracleOptimum best;
  best.config = env::SliceConfig{};  // full resources: always a feasible fallback
  best.usage = best.config.resource_usage();
  best.qoe =
      validated_qoe(service, target, best.config, sla, workload, seed, validation_episodes);

  auto consider = [&](const env::SliceConfig& cand) {
    const double usage = cand.resource_usage();
    if (usage >= best.usage) return;  // cannot improve; skip the expensive QoE
    const double qoe =
        validated_qoe(service, target, cand, sla, workload, seed + 17, validation_episodes);
    if (qoe >= sla.availability) {
      best.config = cand;
      best.usage = usage;
      best.qoe = qoe;
    }
  };

  // Phase 1: global random exploration.
  const std::size_t explore = std::max<std::size_t>(8, budget / 2);
  for (std::size_t i = 0; i < explore; ++i) {
    consider(env::SliceConfig::from_vec(space.sample(rng)).clamped());
  }
  // Phase 2: local refinement around the incumbent with shrinking radius.
  const std::size_t refine = budget - std::min(budget, explore);
  double radius = 0.25;
  for (std::size_t i = 0; i < refine; ++i) {
    const Vec center = space.normalize(best.config.to_vec());
    Vec u(center.size());
    for (std::size_t d = 0; d < u.size(); ++d) {
      u[d] = std::clamp(center[d] + rng.normal(0.0, radius), 0.0, 1.0);
    }
    consider(env::SliceConfig::from_vec(space.denormalize(u)).clamped());
    radius = std::max(0.04, radius * 0.985);
  }
  common::log_info("oracle phi*: usage=", best.usage, " qoe=", best.qoe);
  return best;
}

RegretTrace compute_regret(const std::vector<double>& usage, const std::vector<double>& qoe,
                           const OracleOptimum& oracle) {
  RegretTrace trace;
  double gu = 0.0;
  double gp = 0.0;
  for (std::size_t i = 0; i < usage.size(); ++i) {
    gu += usage[i] - oracle.usage;
    gp += std::max(oracle.qoe - qoe[i], 0.0);
    trace.cumulative_usage.push_back(gu);
    trace.cumulative_qoe.push_back(gp);
  }
  const double n = static_cast<double>(std::max<std::size_t>(1, usage.size()));
  trace.avg_usage_regret = gu / n;
  trace.avg_qoe_regret = gp / n;
  return trace;
}

RegretTrace compute_regret(const std::vector<OnlineStep>& history, const OracleOptimum& oracle) {
  std::vector<double> usage;
  std::vector<double> qoe;
  usage.reserve(history.size());
  qoe.reserve(history.size());
  for (const auto& h : history) {
    usage.push_back(h.usage);
    qoe.push_back(h.qoe_real);
  }
  return compute_regret(usage, qoe, oracle);
}

}  // namespace atlas::core
