#pragma once

#include <vector>

#include "app/qoe.hpp"
#include "atlas/online_learner.hpp"
#include "env/client.hpp"

namespace atlas::core {

/// The reference optimum phi* used purely for regret ACCOUNTING (Eqs. 10-11).
/// Like the paper, it is obtained by an extensive search directly against
/// the target environment; it is never given to the learners.
struct OracleOptimum {
  env::SliceConfig config;
  double usage = 1.0;  ///< F(phi*).
  double qoe = 0.0;    ///< Q(phi*) averaged over validation episodes.
};

/// Search for the minimum-usage configuration meeting the SLA on the
/// `target` backend of `service`. Random exploration + local refinement
/// around the best feasible point; QoE of candidates is averaged over
/// `validation_episodes` seeds (batched through the service).
OracleOptimum find_optimal_config(env::EnvClient& service, env::BackendId target,
                                  const app::Sla& sla, const env::Workload& workload,
                                  std::size_t budget, std::uint64_t seed,
                                  std::size_t validation_episodes = 3);

/// Cumulative regrets of an online trace against phi* (paper Eqs. 10-11):
///   g_u(n) = sum_j (F(phi_j) - F(phi*))
///   g_p(n) = sum_j max(Q(phi*) - Q(phi_j), 0)
struct RegretTrace {
  std::vector<double> cumulative_usage;  ///< g_u after each iteration.
  std::vector<double> cumulative_qoe;    ///< g_p after each iteration.
  double avg_usage_regret = 0.0;         ///< g_u(n) / n  (Table 5's "%": x100).
  double avg_qoe_regret = 0.0;           ///< g_p(n) / n.
};

RegretTrace compute_regret(const std::vector<OnlineStep>& history, const OracleOptimum& oracle);

/// Regret from plain (usage, qoe) pairs — used for baseline methods that do
/// not produce OnlineStep records.
RegretTrace compute_regret(const std::vector<double>& usage, const std::vector<double>& qoe,
                           const OracleOptimum& oracle);

}  // namespace atlas::core
