#pragma once

#include <cstddef>

#include "gp/kernel.hpp"
#include "math/matrix.hpp"
#include "math/rng.hpp"

namespace atlas::gp {

/// Posterior mean / standard deviation of the latent function at a point.
struct Posterior {
  double mean = 0.0;
  double std = 0.0;
};

/// Configuration mirroring the knobs the paper sets on sklearn's
/// GaussianProcessRegressor: Matérn ν=2.5 kernel and target normalization
/// ("values are normalized by removing the mean and scaling to
/// unit-variance", §7.3).
struct GpConfig {
  KernelKind kernel = KernelKind::kMatern52;
  double initial_length_scale = 1.0;  ///< Starting (or fixed) length scale.
  double initial_variance = 1.0;      ///< Starting (or fixed) signal variance.
  double noise_variance = 1e-4;  ///< Observation noise added to the Gram diagonal.
  bool normalize_y = true;
  bool optimize_hyperparams = true;
  std::size_t restarts = 8;          ///< Random restarts for hyperparameter search.
  double length_scale_min = 1e-2;    ///< Log-uniform search bounds.
  double length_scale_max = 1e2;
  double variance_min = 1e-3;
  double variance_max = 1e3;
  std::uint64_t hyper_seed = 17;     ///< Hyper-search is deterministic per fit.
};

/// Exact Gaussian-process regression with Cholesky factorization.
///
/// Used by Atlas Stage 3 to learn only the sim-to-real QoE difference G(ψ)
/// (paper Eq. 12) — the online sample count stays in the hundreds, where the
/// O(n^3) exact solve is trivially fast.
class GaussianProcess {
 public:
  explicit GaussianProcess(GpConfig config = {});

  /// Fit on rows of `x` and targets `y`. Optimizes (length_scale, variance)
  /// by maximizing the log marginal likelihood if configured, then
  /// factorizes. Refits from scratch each call.
  void fit(const atlas::math::Matrix& x, const atlas::math::Vec& y);

  /// Whether fit() has been called with at least one sample.
  bool fitted() const noexcept { return x_.rows() > 0; }
  std::size_t size() const noexcept { return x_.rows(); }

  /// Posterior at a point (prior if unfitted: mean 0 in normalized space,
  /// std = prior amplitude).
  Posterior predict(const atlas::math::Vec& xs) const;

  /// Batch posterior over rows of `xs`.
  std::vector<Posterior> predict_batch(const atlas::math::Matrix& xs) const;

  /// Log marginal likelihood of the current fit (normalized-y space).
  double log_marginal_likelihood() const noexcept { return lml_; }

  /// Kernel after hyperparameter optimization.
  const Kernel& kernel() const noexcept { return kernel_; }

 private:
  double lml_for(const Kernel& k, const atlas::math::Matrix& x,
                 const atlas::math::Vec& y_norm) const;
  void factorize(const atlas::math::Matrix& x, const atlas::math::Vec& y_norm);

  GpConfig config_;
  Kernel kernel_;
  atlas::math::Matrix x_;
  atlas::math::Vec alpha_;  ///< K^{-1} y (normalized space).
  atlas::math::Matrix chol_;
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
  double lml_ = 0.0;
};

}  // namespace atlas::gp
