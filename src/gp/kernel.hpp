#pragma once

#include "math/matrix.hpp"

namespace atlas::gp {

/// Stationary covariance families. The paper's online GP uses Matérn ν=2.5
/// (sklearn's `Matern(nu=2.5)`), "a generalization of the RBF kernel" (§7.3);
/// the others are provided for ablations and tests.
enum class KernelKind { kRbf, kMatern12, kMatern32, kMatern52 };

/// Isotropic kernel k(a,b) = variance * g(|a-b| / length_scale).
struct Kernel {
  KernelKind kind = KernelKind::kMatern52;
  double variance = 1.0;      ///< Signal variance (amplitude^2).
  double length_scale = 1.0;  ///< Isotropic length scale.

  /// Evaluate k(a, b).
  double operator()(const atlas::math::Vec& a, const atlas::math::Vec& b) const;

  /// Evaluate from a precomputed Euclidean distance r = |a-b|.
  double at_distance(double r) const;
};

/// Gram matrix K(X, X) (symmetric).
atlas::math::Matrix gram(const Kernel& k, const atlas::math::Matrix& x);

/// Cross-covariance vector k(X, x*) against all rows of X.
atlas::math::Vec cross(const Kernel& k, const atlas::math::Matrix& x, const atlas::math::Vec& xs);

}  // namespace atlas::gp
