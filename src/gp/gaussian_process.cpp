#include "gp/gaussian_process.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "math/linalg.hpp"
#include "math/stats.hpp"

namespace atlas::gp {

using atlas::math::Matrix;
using atlas::math::Vec;

GaussianProcess::GaussianProcess(GpConfig config) : config_(config) {
  kernel_.kind = config_.kernel;
  kernel_.length_scale = config_.initial_length_scale;
  kernel_.variance = config_.initial_variance;
}

void GaussianProcess::fit(const Matrix& x, const Vec& y) {
  if (x.rows() != y.size()) throw std::invalid_argument("GaussianProcess::fit: size mismatch");
  if (x.rows() == 0) throw std::invalid_argument("GaussianProcess::fit: empty dataset");
  x_ = x;

  // Normalize targets (sklearn's normalize_y).
  Vec y_norm = y;
  if (config_.normalize_y) {
    const auto s = atlas::math::summarize(y);
    y_mean_ = s.mean;
    y_std_ = s.stddev > 1e-12 ? s.stddev : 1.0;
  } else {
    y_mean_ = 0.0;
    y_std_ = 1.0;
  }
  for (auto& v : y_norm) v = (v - y_mean_) / y_std_;

  if (config_.optimize_hyperparams && x.rows() >= 3) {
    // Multi-start log-uniform random search followed by a shrinking
    // coordinate refinement — derivative-free, deterministic per seed.
    atlas::math::Rng rng(config_.hyper_seed);
    Kernel best = kernel_;
    // Heuristic initialization: median pairwise distance.
    {
      Vec dists;
      const std::size_t cap = std::min<std::size_t>(x.rows(), 64);
      for (std::size_t i = 0; i < cap; ++i) {
        for (std::size_t j = 0; j < i; ++j) {
          dists.push_back(std::sqrt(atlas::math::squared_distance(x.row(i), x.row(j))));
        }
      }
      if (!dists.empty()) {
        const double med = atlas::math::quantile(dists, 0.5);
        if (med > 0.0) best.length_scale = std::clamp(med, config_.length_scale_min,
                                                      config_.length_scale_max);
      }
    }
    best.variance = 1.0;
    double best_lml = lml_for(best, x, y_norm);
    for (std::size_t r = 0; r < config_.restarts; ++r) {
      Kernel cand = kernel_;
      cand.length_scale = std::exp(rng.uniform(std::log(config_.length_scale_min),
                                               std::log(config_.length_scale_max)));
      cand.variance =
          std::exp(rng.uniform(std::log(config_.variance_min), std::log(config_.variance_max)));
      const double lml = lml_for(cand, x, y_norm);
      if (lml > best_lml) {
        best_lml = lml;
        best = cand;
      }
    }
    // Coordinate refinement in log-space.
    double step = 0.5;
    for (int round = 0; round < 12; ++round) {
      bool improved = false;
      for (int coord = 0; coord < 2; ++coord) {
        for (double dir : {+1.0, -1.0}) {
          Kernel cand = best;
          if (coord == 0) {
            cand.length_scale = std::clamp(best.length_scale * std::exp(dir * step),
                                           config_.length_scale_min, config_.length_scale_max);
          } else {
            cand.variance = std::clamp(best.variance * std::exp(dir * step),
                                       config_.variance_min, config_.variance_max);
          }
          const double lml = lml_for(cand, x, y_norm);
          if (lml > best_lml) {
            best_lml = lml;
            best = cand;
            improved = true;
          }
        }
      }
      if (!improved) step *= 0.5;
      if (step < 1e-3) break;
    }
    kernel_ = best;
  }
  factorize(x, y_norm);
}

double GaussianProcess::lml_for(const Kernel& k, const Matrix& x, const Vec& y_norm) const {
  Matrix gram_matrix = gram(k, x);
  for (std::size_t i = 0; i < gram_matrix.rows(); ++i) {
    gram_matrix(i, i) += config_.noise_variance;
  }
  Matrix chol;
  try {
    chol = atlas::math::cholesky_jittered(gram_matrix);
  } catch (const std::runtime_error&) {
    return -std::numeric_limits<double>::infinity();
  }
  const Vec alpha = atlas::math::cholesky_solve(chol, y_norm);
  const double fit_term = -0.5 * atlas::math::dot(y_norm, alpha);
  const double det_term = -0.5 * atlas::math::log_det_from_cholesky(chol);
  const double norm_term =
      -0.5 * static_cast<double>(x.rows()) * std::log(2.0 * 3.14159265358979323846);
  return fit_term + det_term + norm_term;
}

void GaussianProcess::factorize(const Matrix& x, const Vec& y_norm) {
  Matrix gram_matrix = gram(kernel_, x);
  for (std::size_t i = 0; i < gram_matrix.rows(); ++i) {
    gram_matrix(i, i) += config_.noise_variance;
  }
  chol_ = atlas::math::cholesky_jittered(gram_matrix);
  alpha_ = atlas::math::cholesky_solve(chol_, y_norm);
  lml_ = -0.5 * atlas::math::dot(y_norm, alpha_) -
         0.5 * atlas::math::log_det_from_cholesky(chol_) -
         0.5 * static_cast<double>(x.rows()) * std::log(2.0 * 3.14159265358979323846);
}

Posterior GaussianProcess::predict(const Vec& xs) const {
  Posterior p;
  if (!fitted()) {
    // Prior: zero mean, amplitude std (denormalization is identity here).
    p.mean = y_mean_;
    p.std = std::sqrt(kernel_.variance) * y_std_;
    return p;
  }
  const Vec ks = cross(kernel_, x_, xs);
  const double mean_norm = atlas::math::dot(ks, alpha_);
  const Vec v = atlas::math::solve_lower(chol_, ks);
  const double var_norm =
      std::max(0.0, kernel_.at_distance(0.0) - atlas::math::dot(v, v));
  p.mean = mean_norm * y_std_ + y_mean_;
  p.std = std::sqrt(var_norm) * y_std_;
  return p;
}

std::vector<Posterior> GaussianProcess::predict_batch(const Matrix& xs) const {
  std::vector<Posterior> out;
  out.reserve(xs.rows());
  for (std::size_t i = 0; i < xs.rows(); ++i) out.push_back(predict(xs.row(i)));
  return out;
}

}  // namespace atlas::gp
