#include "gp/kernel.hpp"

#include <cmath>

namespace atlas::gp {

using atlas::math::Matrix;
using atlas::math::Vec;

double Kernel::at_distance(double r) const {
  const double s = r / length_scale;
  switch (kind) {
    case KernelKind::kRbf:
      return variance * std::exp(-0.5 * s * s);
    case KernelKind::kMatern12:
      return variance * std::exp(-s);
    case KernelKind::kMatern32: {
      const double t = std::sqrt(3.0) * s;
      return variance * (1.0 + t) * std::exp(-t);
    }
    case KernelKind::kMatern52: {
      const double t = std::sqrt(5.0) * s;
      return variance * (1.0 + t + t * t / 3.0) * std::exp(-t);
    }
  }
  return 0.0;
}

double Kernel::operator()(const Vec& a, const Vec& b) const {
  return at_distance(std::sqrt(atlas::math::squared_distance(a, b)));
}

Matrix gram(const Kernel& k, const Matrix& x) {
  const std::size_t n = x.rows();
  Matrix g(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    g(i, i) = k.at_distance(0.0);
    for (std::size_t j = 0; j < i; ++j) {
      const double r = std::sqrt(atlas::math::squared_distance(x.row(i), x.row(j)));
      const double v = k.at_distance(r);
      g(i, j) = v;
      g(j, i) = v;
    }
  }
  return g;
}

Vec cross(const Kernel& k, const Matrix& x, const Vec& xs) {
  Vec out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    out[i] = k.at_distance(std::sqrt(atlas::math::squared_distance(x.row(i), xs)));
  }
  return out;
}

}  // namespace atlas::gp
