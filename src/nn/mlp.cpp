#include "nn/mlp.hpp"

#include <cmath>
#include <stdexcept>

namespace atlas::nn {

using atlas::math::Matrix;
using atlas::math::Rng;
using atlas::math::Vec;

double init_scale(std::size_t fan_in) {
  return std::sqrt(2.0 / static_cast<double>(fan_in == 0 ? 1 : fan_in));
}

DenseLayer::DenseLayer(std::size_t in, std::size_t out, Rng& rng)
    : w_(out, in), gw_(out, in), b_(out, 0.0), gb_(out, 0.0) {
  const double scale = init_scale(in);
  for (std::size_t r = 0; r < out; ++r) {
    for (std::size_t c = 0; c < in; ++c) w_(r, c) = rng.normal(0.0, scale);
  }
}

Matrix DenseLayer::forward(const Matrix& x) {
  cached_input_ = x;
  return forward_const(x);
}

Matrix DenseLayer::forward_const(const Matrix& x) const {
  if (x.cols() != w_.cols()) throw std::invalid_argument("DenseLayer: input dim mismatch");
  Matrix y(x.rows(), w_.rows());
  for (std::size_t n = 0; n < x.rows(); ++n) {
    const double* xrow = x.data() + n * x.cols();
    double* yrow = y.data() + n * y.cols();
    for (std::size_t o = 0; o < w_.rows(); ++o) {
      const double* wrow = w_.data() + o * w_.cols();
      double acc = b_[o];
      for (std::size_t i = 0; i < w_.cols(); ++i) acc += wrow[i] * xrow[i];
      yrow[o] = acc;
    }
  }
  return y;
}

Matrix DenseLayer::backward(const Matrix& dy) {
  if (dy.rows() != cached_input_.rows() || dy.cols() != w_.rows()) {
    throw std::invalid_argument("DenseLayer::backward: shape mismatch");
  }
  const Matrix& x = cached_input_;
  // dW += dY^T X ; db += column sums of dY ; dX = dY W.
  for (std::size_t n = 0; n < dy.rows(); ++n) {
    const double* dyrow = dy.data() + n * dy.cols();
    const double* xrow = x.data() + n * x.cols();
    for (std::size_t o = 0; o < dy.cols(); ++o) {
      const double g = dyrow[o];
      if (g == 0.0) continue;
      gb_[o] += g;
      double* gwrow = gw_.data() + o * gw_.cols();
      for (std::size_t i = 0; i < x.cols(); ++i) gwrow[i] += g * xrow[i];
    }
  }
  Matrix dx(x.rows(), x.cols(), 0.0);
  for (std::size_t n = 0; n < dy.rows(); ++n) {
    const double* dyrow = dy.data() + n * dy.cols();
    double* dxrow = dx.data() + n * dx.cols();
    for (std::size_t o = 0; o < dy.cols(); ++o) {
      const double g = dyrow[o];
      if (g == 0.0) continue;
      const double* wrow = w_.data() + o * w_.cols();
      for (std::size_t i = 0; i < dx.cols(); ++i) dxrow[i] += g * wrow[i];
    }
  }
  return dx;
}

void DenseLayer::zero_grad() {
  gw_ *= 0.0;
  for (auto& g : gb_) g = 0.0;
}

void DenseLayer::collect_params(std::vector<ParamView>& out) {
  out.push_back({w_.data(), gw_.data(), w_.rows() * w_.cols()});
  out.push_back({b_.data(), gb_.data(), b_.size()});
}

Mlp::Mlp(const std::vector<std::size_t>& sizes, Rng& rng) {
  if (sizes.size() < 2) throw std::invalid_argument("Mlp: need at least input and output sizes");
  layers_.reserve(sizes.size() - 1);
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
    layers_.emplace_back(sizes[i], sizes[i + 1], rng);
  }
  relu_masks_.resize(layers_.size());
}

std::size_t Mlp::input_dim() const noexcept { return layers_.front().in_features(); }
std::size_t Mlp::output_dim() const noexcept { return layers_.back().out_features(); }

Matrix Mlp::forward(const Matrix& x) {
  Matrix h = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    h = layers_[l].forward(h);
    if (l + 1 < layers_.size()) {
      // ReLU + mask cache.
      Matrix mask(h.rows(), h.cols());
      for (std::size_t i = 0; i < h.rows(); ++i) {
        for (std::size_t j = 0; j < h.cols(); ++j) {
          const bool on = h(i, j) > 0.0;
          mask(i, j) = on ? 1.0 : 0.0;
          if (!on) h(i, j) = 0.0;
        }
      }
      relu_masks_[l] = std::move(mask);
    }
  }
  return h;
}

Matrix Mlp::forward_const(const Matrix& x) const {
  Matrix h = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    h = layers_[l].forward_const(h);
    if (l + 1 < layers_.size()) {
      for (std::size_t i = 0; i < h.rows(); ++i) {
        for (std::size_t j = 0; j < h.cols(); ++j) {
          if (h(i, j) < 0.0) h(i, j) = 0.0;
        }
      }
    }
  }
  return h;
}

double Mlp::predict_scalar(const Vec& x) const {
  Matrix in(1, x.size());
  in.set_row(0, x);
  const Matrix out = forward_const(in);
  if (out.cols() != 1) throw std::logic_error("predict_scalar: output dim != 1");
  return out(0, 0);
}

void Mlp::backward(const Matrix& dy) {
  Matrix grad = dy;
  for (std::size_t li = layers_.size(); li-- > 0;) {
    if (li + 1 < layers_.size()) {
      const Matrix& mask = relu_masks_[li];
      for (std::size_t i = 0; i < grad.rows(); ++i) {
        for (std::size_t j = 0; j < grad.cols(); ++j) grad(i, j) *= mask(i, j);
      }
    }
    grad = layers_[li].backward(grad);
  }
}

void Mlp::zero_grad() {
  for (auto& l : layers_) l.zero_grad();
}

std::vector<ParamView> Mlp::params() {
  std::vector<ParamView> out;
  for (auto& l : layers_) l.collect_params(out);
  return out;
}

double Mlp::train_epoch_mse(const Matrix& x, const Vec& y, Optimizer& opt,
                            std::size_t batch_size, Rng& rng) {
  if (x.rows() != y.size()) throw std::invalid_argument("train_epoch_mse: size mismatch");
  if (x.rows() == 0) return 0.0;
  const auto order = rng.permutation(x.rows());
  const auto params_list = params();
  double total_loss = 0.0;
  std::size_t batches = 0;
  for (std::size_t start = 0; start < order.size(); start += batch_size) {
    const std::size_t n = std::min(batch_size, order.size() - start);
    Matrix xb(n, x.cols());
    Vec yb(n);
    for (std::size_t i = 0; i < n; ++i) {
      xb.set_row(i, x.row(order[start + i]));
      yb[i] = y[order[start + i]];
    }
    zero_grad();
    const Matrix out = forward(xb);
    Matrix dloss(n, 1);
    double loss = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double err = out(i, 0) - yb[i];
      loss += err * err;
      dloss(i, 0) = 2.0 * err / static_cast<double>(n);
    }
    backward(dloss);
    opt.step(params_list);
    total_loss += loss / static_cast<double>(n);
    ++batches;
  }
  return batches == 0 ? 0.0 : total_loss / static_cast<double>(batches);
}

double Mlp::mse(const Matrix& x, const Vec& y) const {
  if (x.rows() != y.size()) throw std::invalid_argument("mse: size mismatch");
  if (x.rows() == 0) return 0.0;
  const Matrix out = forward_const(x);
  double loss = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double err = out(i, 0) - y[i];
    loss += err * err;
  }
  return loss / static_cast<double>(x.rows());
}

}  // namespace atlas::nn
