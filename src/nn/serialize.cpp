#include "nn/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace atlas::nn {

using atlas::math::Matrix;
using atlas::math::Rng;
using atlas::math::Vec;

namespace {

void write_doubles(std::ostream& os, const double* data, std::size_t n) {
  os << std::setprecision(17);
  for (std::size_t i = 0; i < n; ++i) os << data[i] << (i + 1 == n ? "\n" : " ");
}

void read_doubles(std::istream& is, double* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!(is >> data[i])) throw std::runtime_error("model load: truncated double block");
  }
}

void expect_token(std::istream& is, const std::string& expected) {
  std::string token;
  if (!(is >> token) || token != expected) {
    throw std::runtime_error("model load: expected token '" + expected + "', got '" + token +
                             "'");
  }
}

}  // namespace

void save_mlp(const Mlp& mlp, std::ostream& os) {
  os << "atlas-mlp 1\n";
  os << mlp.layer_count() << "\n";
  for (std::size_t l = 0; l < mlp.layer_count(); ++l) {
    const auto& layer = mlp.layer(l);
    os << layer.out_features() << " " << layer.in_features() << "\n";
    write_doubles(os, layer.weights().data(),
                  layer.weights().rows() * layer.weights().cols());
    write_doubles(os, layer.bias().data(), layer.bias().size());
  }
}

Mlp load_mlp(std::istream& is) {
  expect_token(is, "atlas-mlp");
  expect_token(is, "1");
  std::size_t layers = 0;
  if (!(is >> layers) || layers == 0) throw std::runtime_error("model load: bad layer count");
  std::vector<std::size_t> outs(layers);
  std::vector<std::size_t> ins(layers);
  std::vector<Matrix> weights(layers);
  std::vector<Vec> biases(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    if (!(is >> outs[l] >> ins[l])) throw std::runtime_error("model load: bad layer shape");
    weights[l] = Matrix(outs[l], ins[l]);
    biases[l] = Vec(outs[l]);
    read_doubles(is, weights[l].data(), outs[l] * ins[l]);
    read_doubles(is, biases[l].data(), outs[l]);
  }
  std::vector<std::size_t> sizes;
  sizes.push_back(ins[0]);
  for (std::size_t l = 0; l < layers; ++l) sizes.push_back(outs[l]);
  Rng dummy(0);
  Mlp mlp(sizes, dummy);
  for (std::size_t l = 0; l < layers; ++l) {
    mlp.layer(l).weights() = std::move(weights[l]);
    mlp.layer(l).bias() = std::move(biases[l]);
  }
  return mlp;
}

void Bnn::save(std::ostream& os) const {
  os << "atlas-bnn 1\n";
  os << config_.sizes.size();
  for (auto s : config_.sizes) os << " " << s;
  os << "\n";
  os << (config_.prior == BnnPrior::kGaussianAnalytic ? "gaussian" : "mixture") << " "
     << std::setprecision(17) << config_.prior_sigma << " " << config_.mixture_pi << " "
     << config_.mixture_sigma1 << " " << config_.mixture_sigma2 << " " << config_.noise_sigma
     << " " << config_.kl_scale << " " << config_.init_rho << "\n";
  for (const auto& layer : layers_) {
    write_doubles(os, layer.w_mu.data(), layer.w_mu.rows() * layer.w_mu.cols());
    write_doubles(os, layer.w_rho.data(), layer.w_rho.rows() * layer.w_rho.cols());
    write_doubles(os, layer.b_mu.data(), layer.b_mu.size());
    write_doubles(os, layer.b_rho.data(), layer.b_rho.size());
  }
}

Bnn Bnn::load(std::istream& is) {
  expect_token(is, "atlas-bnn");
  expect_token(is, "1");
  std::size_t dims = 0;
  if (!(is >> dims) || dims < 2) throw std::runtime_error("model load: bad size count");
  BnnConfig config;
  config.sizes.resize(dims);
  for (auto& s : config.sizes) {
    if (!(is >> s)) throw std::runtime_error("model load: bad layer size");
  }
  std::string prior;
  if (!(is >> prior >> config.prior_sigma >> config.mixture_pi >> config.mixture_sigma1 >>
        config.mixture_sigma2 >> config.noise_sigma >> config.kl_scale >> config.init_rho)) {
    throw std::runtime_error("model load: bad config line");
  }
  config.prior = prior == "mixture" ? BnnPrior::kScaleMixtureMc : BnnPrior::kGaussianAnalytic;
  Rng dummy(0);
  Bnn bnn(config, dummy);
  for (auto& layer : bnn.layers_) {
    read_doubles(is, layer.w_mu.data(), layer.w_mu.rows() * layer.w_mu.cols());
    read_doubles(is, layer.w_rho.data(), layer.w_rho.rows() * layer.w_rho.cols());
    read_doubles(is, layer.b_mu.data(), layer.b_mu.size());
    read_doubles(is, layer.b_rho.data(), layer.b_rho.size());
  }
  return bnn;
}

void save_bnn(const Bnn& bnn, std::ostream& os) { bnn.save(os); }
Bnn load_bnn(std::istream& is) { return Bnn::load(is); }

void save_mlp_file(const Mlp& mlp, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_mlp_file: cannot open " + path);
  save_mlp(mlp, os);
}

Mlp load_mlp_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_mlp_file: cannot open " + path);
  return load_mlp(is);
}

void save_bnn_file(const Bnn& bnn, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_bnn_file: cannot open " + path);
  bnn.save(os);
}

Bnn load_bnn_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_bnn_file: cannot open " + path);
  return Bnn::load(is);
}

}  // namespace atlas::nn
