#pragma once

#include <cmath>
#include <cstddef>
#include <iosfwd>
#include <vector>

#include "math/matrix.hpp"
#include "math/rng.hpp"
#include "nn/optim.hpp"

namespace atlas::nn {

/// Prior over BNN weights.
///  - kGaussianAnalytic: N(0, prior_sigma^2); the KL(q||p) term of Eq. 3 has a
///    closed form, giving lower-variance gradients (default).
///  - kScaleMixtureMc: Blundell et al.'s two-Gaussian scale mixture; the
///    complexity cost is estimated per Monte-Carlo sample exactly as in the
///    paper's Eq. 4 (log q(w|θ) − log P(w) − log P(Y|w)).
enum class BnnPrior { kGaussianAnalytic, kScaleMixtureMc };

/// Hyperparameters of the Bayesian neural network.
struct BnnConfig {
  std::vector<std::size_t> sizes;  ///< Layer widths incl. input/output, e.g. {9,64,64,1}.
  BnnPrior prior = BnnPrior::kGaussianAnalytic;
  double prior_sigma = 0.3;    ///< Std of the Gaussian prior.
  double mixture_pi = 0.5;     ///< Scale-mixture weight on the wide component.
  double mixture_sigma1 = 1.0; ///< Wide component std.
  double mixture_sigma2 = std::exp(-6.0);  ///< Narrow component std.
  double noise_sigma = 0.05;   ///< Gaussian likelihood std (observation noise).
  double kl_scale = 0.1;       ///< Weight of the complexity cost (per-dataset).
  double init_rho = -4.0;      ///< Initial rho; sigma = softplus(rho) ≈ 0.018.
};

/// A frozen draw w ~ q(w|θ) of the whole network: a deterministic MLP that can
/// be evaluated concurrently from many threads. This is the object parallel
/// Thompson sampling hands to each parallel query ("infer the BNN only once",
/// §4.2 of the paper).
struct BnnSample {
  std::vector<atlas::math::Matrix> weights;  ///< One (out x in) matrix per layer.
  std::vector<atlas::math::Vec> biases;

  double predict(const atlas::math::Vec& x) const;
  atlas::math::Vec predict_batch(const atlas::math::Matrix& x) const;
};

/// Mean/std pair from Monte-Carlo prediction.
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};

/// Bayesian neural network trained with Bayes-by-Backprop (Blundell et al.
/// 2015): every weight carries a Gaussian variational posterior
/// q(w|θ) = N(mu, softplus(rho)^2) trained via the reparameterization trick.
///
/// Atlas uses the BNN as the scalable surrogate for Bayesian optimization in
/// Stage 1 (simulation-parameter search) and Stage 2 (offline configuration),
/// where Gaussian processes would hit their O(n^3) wall (§4.2).
class Bnn {
 public:
  Bnn(BnnConfig config, atlas::math::Rng& rng);

  const BnnConfig& config() const noexcept { return config_; }
  std::size_t input_dim() const noexcept;

  /// One minibatch step of Bayes-by-Backprop; returns the batch loss
  /// (mean NLL + scaled complexity cost).
  double train_batch(const atlas::math::Matrix& x, const atlas::math::Vec& y,
                     std::size_t dataset_size, Optimizer& opt, atlas::math::Rng& rng,
                     std::size_t mc_samples = 1);

  /// Full training loop: epochs x shuffled minibatches. Returns final epoch
  /// mean loss. `sched` may be nullptr.
  double train(const atlas::math::Matrix& x, const atlas::math::Vec& y, std::size_t epochs,
               std::size_t batch_size, Optimizer& opt, StepLr* sched, atlas::math::Rng& rng,
               std::size_t mc_samples = 1);

  /// Monte-Carlo predictive mean/std at a point (`mc` weight draws).
  MeanStd predict(const atlas::math::Vec& x, std::size_t mc, atlas::math::Rng& rng) const;

  /// Deterministic prediction using the posterior means of all weights.
  double predict_at_mean(const atlas::math::Vec& x) const;

  /// Draw one frozen network w ~ q(w|θ).
  BnnSample thompson(atlas::math::Rng& rng) const;

  /// Current total complexity cost KL[q(w|θ) || P(w)] (analytic prior only).
  double kl_to_prior() const;

  /// Persistence (see nn/serialize.hpp): writes config + variational
  /// parameters; `load` reconstructs a network with identical predictions.
  void save(std::ostream& os) const;
  static Bnn load(std::istream& is);

 private:
  struct Layer {
    atlas::math::Matrix w_mu, w_rho, gw_mu, gw_rho;
    atlas::math::Vec b_mu, b_rho, gb_mu, gb_rho;
    // Per-forward sample state.
    atlas::math::Matrix w, w_eps;
    atlas::math::Vec b, b_eps;
    atlas::math::Matrix cached_input;
    // Scratch for dL/d(sampled w).
    atlas::math::Matrix gw;
    atlas::math::Vec gb;
  };

  void sample_weights(atlas::math::Rng& rng);
  atlas::math::Matrix forward(const atlas::math::Matrix& x);
  void backward(const atlas::math::Matrix& dy);
  /// Route the accumulated dL/dw (likelihood path) into mu/rho gradients.
  void route_sample_grads();
  /// Add the complexity-cost gradients for the current sample.
  void add_prior_grads(double weight);
  void zero_grad();
  std::vector<ParamView> params();

  BnnConfig config_;
  std::vector<Layer> layers_;
  std::vector<atlas::math::Matrix> relu_masks_;
};

}  // namespace atlas::nn
