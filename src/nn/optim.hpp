#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace atlas::nn {

/// Non-owning view over one parameter tensor and its gradient buffer.
/// Networks expose their parameters as a stable list of views; optimizers
/// keep per-parameter state indexed by position in that list.
struct ParamView {
  double* value = nullptr;
  double* grad = nullptr;
  std::size_t size = 0;
};

/// First-order optimizer interface. `step` consumes the accumulated
/// gradients (the caller zeroes them afterwards).
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual void step(const std::vector<ParamView>& params) = 0;

  double learning_rate() const noexcept { return lr_; }
  void set_learning_rate(double lr) noexcept { lr_ = lr; }

 protected:
  explicit Optimizer(double lr) : lr_(lr) {}
  double lr_;
};

/// Plain SGD with optional momentum.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr = 0.01, double momentum = 0.0);
  void step(const std::vector<ParamView>& params) override;

 private:
  double momentum_;
  std::vector<std::vector<double>> velocity_;
};

/// Adam (Kingma & Ba 2015) — used for the deterministic DNNs in the DLDA
/// baseline.
class Adam final : public Optimizer {
 public:
  explicit Adam(double lr = 1e-3, double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8);
  void step(const std::vector<ParamView>& params) override;

 private:
  double beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  std::vector<std::vector<double>> m_, v_;
};

/// Adadelta (Zeiler 2012) — the paper trains its BNNs with Adadelta at the
/// initial learning rate 1.0 (§7.3); `lr` here is the multiplicative factor
/// applied to the Adadelta update, matching PyTorch's semantics.
class Adadelta final : public Optimizer {
 public:
  explicit Adadelta(double lr = 1.0, double rho = 0.9, double eps = 1e-6);
  void step(const std::vector<ParamView>& params) override;

 private:
  double rho_, eps_;
  std::vector<std::vector<double>> accum_grad_, accum_update_;
};

/// StepLR scheduler: every `step_size` calls, multiply the optimizer's
/// learning rate by `gamma`. The paper uses gamma = 0.999 applied per step.
class StepLr {
 public:
  StepLr(Optimizer& opt, std::size_t step_size, double gamma);
  /// Advance one scheduler step (call once per optimizer step or per epoch,
  /// mirroring how the training loop chooses to drive it).
  void step();

 private:
  Optimizer& opt_;
  std::size_t step_size_;
  double gamma_;
  std::size_t count_ = 0;
};

}  // namespace atlas::nn
