#include "nn/optim.hpp"

#include <cmath>

namespace atlas::nn {

namespace {

/// Lazily size per-parameter state to match the view list.
void ensure_state(std::vector<std::vector<double>>& state, const std::vector<ParamView>& params) {
  if (state.size() == params.size()) return;
  state.clear();
  state.reserve(params.size());
  for (const auto& p : params) state.emplace_back(p.size, 0.0);
}

}  // namespace

Sgd::Sgd(double lr, double momentum) : Optimizer(lr), momentum_(momentum) {}

void Sgd::step(const std::vector<ParamView>& params) {
  ensure_state(velocity_, params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    const auto& p = params[i];
    auto& vel = velocity_[i];
    for (std::size_t j = 0; j < p.size; ++j) {
      vel[j] = momentum_ * vel[j] - lr_ * p.grad[j];
      p.value[j] += vel[j];
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : Optimizer(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

void Adam::step(const std::vector<ParamView>& params) {
  ensure_state(m_, params);
  ensure_state(v_, params);
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    const auto& p = params[i];
    auto& m = m_[i];
    auto& v = v_[i];
    for (std::size_t j = 0; j < p.size; ++j) {
      const double g = p.grad[j];
      m[j] = beta1_ * m[j] + (1.0 - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0 - beta2_) * g * g;
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      p.value[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

Adadelta::Adadelta(double lr, double rho, double eps) : Optimizer(lr), rho_(rho), eps_(eps) {}

void Adadelta::step(const std::vector<ParamView>& params) {
  ensure_state(accum_grad_, params);
  ensure_state(accum_update_, params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    const auto& p = params[i];
    auto& eg = accum_grad_[i];
    auto& eu = accum_update_[i];
    for (std::size_t j = 0; j < p.size; ++j) {
      const double g = p.grad[j];
      eg[j] = rho_ * eg[j] + (1.0 - rho_) * g * g;
      const double update = -std::sqrt(eu[j] + eps_) / std::sqrt(eg[j] + eps_) * g;
      eu[j] = rho_ * eu[j] + (1.0 - rho_) * update * update;
      p.value[j] += lr_ * update;
    }
  }
}

StepLr::StepLr(Optimizer& opt, std::size_t step_size, double gamma)
    : opt_(opt), step_size_(step_size == 0 ? 1 : step_size), gamma_(gamma) {}

void StepLr::step() {
  ++count_;
  if (count_ % step_size_ == 0) {
    opt_.set_learning_rate(opt_.learning_rate() * gamma_);
  }
}

}  // namespace atlas::nn
