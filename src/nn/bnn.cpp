#include "nn/bnn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/mlp.hpp"

namespace atlas::nn {

using atlas::math::Matrix;
using atlas::math::Rng;
using atlas::math::Vec;

namespace {

double softplus(double x) { return x > 30.0 ? x : std::log1p(std::exp(x)); }
double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

double log_normal_pdf(double x, double mu, double sigma) {
  const double z = (x - mu) / sigma;
  return -0.5 * z * z - std::log(sigma) - 0.918938533204672742;  // log(sqrt(2*pi))
}

}  // namespace

double BnnSample::predict(const Vec& x) const {
  Vec h = x;
  for (std::size_t l = 0; l < weights.size(); ++l) {
    const Matrix& w = weights[l];
    Vec next(w.rows());
    for (std::size_t o = 0; o < w.rows(); ++o) {
      const double* wrow = w.data() + o * w.cols();
      double acc = biases[l][o];
      for (std::size_t i = 0; i < w.cols(); ++i) acc += wrow[i] * h[i];
      next[o] = (l + 1 < weights.size() && acc < 0.0) ? 0.0 : acc;
    }
    h = std::move(next);
  }
  return h[0];
}

Vec BnnSample::predict_batch(const Matrix& x) const {
  Vec out(x.rows());
  Matrix h = x;
  for (std::size_t l = 0; l < weights.size(); ++l) {
    const Matrix& w = weights[l];
    Matrix next(h.rows(), w.rows());
    const bool relu = l + 1 < weights.size();
    for (std::size_t n = 0; n < h.rows(); ++n) {
      const double* hrow = h.data() + n * h.cols();
      double* nrow = next.data() + n * next.cols();
      for (std::size_t o = 0; o < w.rows(); ++o) {
        const double* wrow = w.data() + o * w.cols();
        double acc = biases[l][o];
        for (std::size_t i = 0; i < w.cols(); ++i) acc += wrow[i] * hrow[i];
        nrow[o] = (relu && acc < 0.0) ? 0.0 : acc;
      }
    }
    h = std::move(next);
  }
  for (std::size_t n = 0; n < h.rows(); ++n) out[n] = h(n, 0);
  return out;
}

Bnn::Bnn(BnnConfig config, Rng& rng) : config_(std::move(config)) {
  if (config_.sizes.size() < 2) throw std::invalid_argument("Bnn: need >= 2 layer sizes");
  if (config_.sizes.back() != 1) throw std::invalid_argument("Bnn: output dim must be 1");
  layers_.resize(config_.sizes.size() - 1);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const std::size_t in = config_.sizes[l];
    const std::size_t out = config_.sizes[l + 1];
    Layer& layer = layers_[l];
    layer.w_mu = Matrix(out, in);
    layer.w_rho = Matrix(out, in, config_.init_rho);
    layer.gw_mu = Matrix(out, in);
    layer.gw_rho = Matrix(out, in);
    layer.b_mu = Vec(out, 0.0);
    layer.b_rho = Vec(out, config_.init_rho);
    layer.gb_mu = Vec(out, 0.0);
    layer.gb_rho = Vec(out, 0.0);
    layer.gw = Matrix(out, in);
    layer.gb = Vec(out, 0.0);
    const double scale = init_scale(in);
    for (std::size_t r = 0; r < out; ++r) {
      for (std::size_t c = 0; c < in; ++c) layer.w_mu(r, c) = rng.normal(0.0, scale);
    }
  }
  relu_masks_.resize(layers_.size());
}

std::size_t Bnn::input_dim() const noexcept { return config_.sizes.front(); }

void Bnn::sample_weights(Rng& rng) {
  for (auto& layer : layers_) {
    const std::size_t out = layer.w_mu.rows();
    const std::size_t in = layer.w_mu.cols();
    layer.w = Matrix(out, in);
    layer.w_eps = Matrix(out, in);
    layer.b = Vec(out);
    layer.b_eps = Vec(out);
    for (std::size_t r = 0; r < out; ++r) {
      for (std::size_t c = 0; c < in; ++c) {
        const double eps = rng.normal();
        layer.w_eps(r, c) = eps;
        layer.w(r, c) = layer.w_mu(r, c) + softplus(layer.w_rho(r, c)) * eps;
      }
      const double eps = rng.normal();
      layer.b_eps[r] = eps;
      layer.b[r] = layer.b_mu[r] + softplus(layer.b_rho[r]) * eps;
    }
  }
}

Matrix Bnn::forward(const Matrix& x) {
  Matrix h = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    Layer& layer = layers_[l];
    layer.cached_input = h;
    Matrix y(h.rows(), layer.w.rows());
    for (std::size_t n = 0; n < h.rows(); ++n) {
      const double* hrow = h.data() + n * h.cols();
      double* yrow = y.data() + n * y.cols();
      for (std::size_t o = 0; o < layer.w.rows(); ++o) {
        const double* wrow = layer.w.data() + o * layer.w.cols();
        double acc = layer.b[o];
        for (std::size_t i = 0; i < layer.w.cols(); ++i) acc += wrow[i] * hrow[i];
        yrow[o] = acc;
      }
    }
    if (l + 1 < layers_.size()) {
      Matrix mask(y.rows(), y.cols());
      for (std::size_t i = 0; i < y.rows(); ++i) {
        for (std::size_t j = 0; j < y.cols(); ++j) {
          const bool on = y(i, j) > 0.0;
          mask(i, j) = on ? 1.0 : 0.0;
          if (!on) y(i, j) = 0.0;
        }
      }
      relu_masks_[l] = std::move(mask);
    }
    h = std::move(y);
  }
  return h;
}

void Bnn::backward(const Matrix& dy) {
  Matrix grad = dy;
  for (std::size_t li = layers_.size(); li-- > 0;) {
    if (li + 1 < layers_.size()) {
      const Matrix& mask = relu_masks_[li];
      for (std::size_t i = 0; i < grad.rows(); ++i) {
        for (std::size_t j = 0; j < grad.cols(); ++j) grad(i, j) *= mask(i, j);
      }
    }
    Layer& layer = layers_[li];
    const Matrix& x = layer.cached_input;
    // Accumulate dL/dw_sample and dL/db_sample; compute dL/dx.
    for (std::size_t n = 0; n < grad.rows(); ++n) {
      const double* grow = grad.data() + n * grad.cols();
      const double* xrow = x.data() + n * x.cols();
      for (std::size_t o = 0; o < grad.cols(); ++o) {
        const double g = grow[o];
        if (g == 0.0) continue;
        layer.gb[o] += g;
        double* gwrow = layer.gw.data() + o * layer.gw.cols();
        for (std::size_t i = 0; i < x.cols(); ++i) gwrow[i] += g * xrow[i];
      }
    }
    Matrix dx(x.rows(), x.cols(), 0.0);
    for (std::size_t n = 0; n < grad.rows(); ++n) {
      const double* grow = grad.data() + n * grad.cols();
      double* dxrow = dx.data() + n * dx.cols();
      for (std::size_t o = 0; o < grad.cols(); ++o) {
        const double g = grow[o];
        if (g == 0.0) continue;
        const double* wrow = layer.w.data() + o * layer.w.cols();
        for (std::size_t i = 0; i < dx.cols(); ++i) dxrow[i] += g * wrow[i];
      }
    }
    grad = std::move(dx);
  }
}

void Bnn::route_sample_grads() {
  // Reparameterization: w = mu + softplus(rho) * eps, so
  // dL/dmu += dL/dw and dL/drho += dL/dw * eps * sigmoid(rho).
  for (auto& layer : layers_) {
    for (std::size_t r = 0; r < layer.w_mu.rows(); ++r) {
      for (std::size_t c = 0; c < layer.w_mu.cols(); ++c) {
        const double g = layer.gw(r, c);
        layer.gw_mu(r, c) += g;
        layer.gw_rho(r, c) += g * layer.w_eps(r, c) * sigmoid(layer.w_rho(r, c));
      }
      const double g = layer.gb[r];
      layer.gb_mu[r] += g;
      layer.gb_rho[r] += g * layer.b_eps[r] * sigmoid(layer.b_rho[r]);
    }
    // Consume the scratch gradients.
    layer.gw *= 0.0;
    for (auto& v : layer.gb) v = 0.0;
  }
}

void Bnn::add_prior_grads(double weight) {
  if (weight == 0.0) return;
  const double sp2 = config_.prior_sigma * config_.prior_sigma;
  auto add_analytic = [&](double mu, double rho, double& gmu, double& grho) {
    const double sigma = softplus(rho);
    gmu += weight * mu / sp2;
    grho += weight * (-1.0 / sigma + sigma / sp2) * sigmoid(rho);
  };
  auto add_mixture = [&](double mu, double rho, double w_sampled, double eps, double& gmu,
                         double& grho) {
    const double sigma = softplus(rho);
    // Responsibility-weighted gradient of log P(w) for the scale mixture.
    const double l1 = log_normal_pdf(w_sampled, 0.0, config_.mixture_sigma1);
    const double l2 = log_normal_pdf(w_sampled, 0.0, config_.mixture_sigma2);
    const double m = std::max(l1, l2);
    const double p1 = config_.mixture_pi * std::exp(l1 - m);
    const double p2 = (1.0 - config_.mixture_pi) * std::exp(l2 - m);
    const double r1 = p1 / (p1 + p2);
    const double dlogp_dw = -w_sampled * (r1 / (config_.mixture_sigma1 * config_.mixture_sigma1) +
                                          (1.0 - r1) /
                                              (config_.mixture_sigma2 * config_.mixture_sigma2));
    // f = log q(w|theta) - log P(w). Gradients per Bayes-by-Backprop:
    //   d f / d mu  = -dlogp/dw            (the log q terms cancel)
    //   d f / d rho = [(-(w-mu)/s^2 - dlogp/dw) * eps + (-1/s + (w-mu)^2/s^3)] * sigmoid(rho)
    const double dev = w_sampled - mu;
    gmu += weight * (-dlogp_dw);
    grho += weight *
            ((-dev / (sigma * sigma) - dlogp_dw) * eps + (-1.0 / sigma + dev * dev / (sigma * sigma * sigma))) *
            sigmoid(rho);
  };
  for (auto& layer : layers_) {
    for (std::size_t r = 0; r < layer.w_mu.rows(); ++r) {
      for (std::size_t c = 0; c < layer.w_mu.cols(); ++c) {
        if (config_.prior == BnnPrior::kGaussianAnalytic) {
          add_analytic(layer.w_mu(r, c), layer.w_rho(r, c), layer.gw_mu(r, c),
                       layer.gw_rho(r, c));
        } else {
          add_mixture(layer.w_mu(r, c), layer.w_rho(r, c), layer.w(r, c), layer.w_eps(r, c),
                      layer.gw_mu(r, c), layer.gw_rho(r, c));
        }
      }
      if (config_.prior == BnnPrior::kGaussianAnalytic) {
        add_analytic(layer.b_mu[r], layer.b_rho[r], layer.gb_mu[r], layer.gb_rho[r]);
      } else {
        add_mixture(layer.b_mu[r], layer.b_rho[r], layer.b[r], layer.b_eps[r], layer.gb_mu[r],
                    layer.gb_rho[r]);
      }
    }
  }
}

void Bnn::zero_grad() {
  for (auto& layer : layers_) {
    layer.gw_mu *= 0.0;
    layer.gw_rho *= 0.0;
    for (auto& v : layer.gb_mu) v = 0.0;
    for (auto& v : layer.gb_rho) v = 0.0;
    layer.gw *= 0.0;
    for (auto& v : layer.gb) v = 0.0;
  }
}

std::vector<ParamView> Bnn::params() {
  std::vector<ParamView> out;
  for (auto& layer : layers_) {
    out.push_back({layer.w_mu.data(), layer.gw_mu.data(), layer.w_mu.rows() * layer.w_mu.cols()});
    out.push_back(
        {layer.w_rho.data(), layer.gw_rho.data(), layer.w_rho.rows() * layer.w_rho.cols()});
    out.push_back({layer.b_mu.data(), layer.gb_mu.data(), layer.b_mu.size()});
    out.push_back({layer.b_rho.data(), layer.gb_rho.data(), layer.b_rho.size()});
  }
  return out;
}

double Bnn::kl_to_prior() const {
  if (config_.prior != BnnPrior::kGaussianAnalytic) {
    throw std::logic_error("kl_to_prior: analytic KL only defined for the Gaussian prior");
  }
  const double sp = config_.prior_sigma;
  double acc = 0.0;
  auto add = [&](double mu, double rho) {
    const double sigma = softplus(rho);
    acc += std::log(sp / sigma) + (sigma * sigma + mu * mu) / (2.0 * sp * sp) - 0.5;
  };
  for (const auto& layer : layers_) {
    for (std::size_t r = 0; r < layer.w_mu.rows(); ++r) {
      for (std::size_t c = 0; c < layer.w_mu.cols(); ++c) add(layer.w_mu(r, c), layer.w_rho(r, c));
      add(layer.b_mu[r], layer.b_rho[r]);
    }
  }
  return acc;
}

double Bnn::train_batch(const Matrix& x, const Vec& y, std::size_t dataset_size, Optimizer& opt,
                        Rng& rng, std::size_t mc_samples) {
  if (x.rows() != y.size() || x.rows() == 0) {
    throw std::invalid_argument("Bnn::train_batch: bad batch");
  }
  mc_samples = std::max<std::size_t>(1, mc_samples);
  const double n = static_cast<double>(x.rows());
  const double sn2 = config_.noise_sigma * config_.noise_sigma;
  const double kl_weight =
      config_.kl_scale / static_cast<double>(std::max<std::size_t>(1, dataset_size));
  zero_grad();
  double total_nll = 0.0;
  for (std::size_t s = 0; s < mc_samples; ++s) {
    sample_weights(rng);
    const Matrix out = forward(x);
    Matrix dnll(x.rows(), 1);
    for (std::size_t i = 0; i < x.rows(); ++i) {
      const double err = out(i, 0) - y[i];
      total_nll += 0.5 * err * err / sn2 / n / static_cast<double>(mc_samples);
      dnll(i, 0) = err / sn2 / n / static_cast<double>(mc_samples);
    }
    backward(dnll);
    route_sample_grads();
    add_prior_grads(kl_weight / static_cast<double>(mc_samples));
  }
  opt.step(params());
  double complexity = 0.0;
  if (config_.prior == BnnPrior::kGaussianAnalytic) complexity = kl_weight * kl_to_prior();
  return total_nll + complexity;
}

double Bnn::train(const Matrix& x, const Vec& y, std::size_t epochs, std::size_t batch_size,
                  Optimizer& opt, StepLr* sched, Rng& rng, std::size_t mc_samples) {
  if (x.rows() != y.size()) throw std::invalid_argument("Bnn::train: size mismatch");
  if (x.rows() == 0) return 0.0;
  batch_size = std::max<std::size_t>(1, std::min(batch_size, x.rows()));
  double last_epoch_loss = 0.0;
  for (std::size_t e = 0; e < epochs; ++e) {
    const auto order = rng.permutation(x.rows());
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size(); start += batch_size) {
      const std::size_t nb = std::min(batch_size, order.size() - start);
      Matrix xb(nb, x.cols());
      Vec yb(nb);
      for (std::size_t i = 0; i < nb; ++i) {
        xb.set_row(i, x.row(order[start + i]));
        yb[i] = y[order[start + i]];
      }
      epoch_loss += train_batch(xb, yb, x.rows(), opt, rng, mc_samples);
      ++batches;
      if (sched != nullptr) sched->step();
    }
    last_epoch_loss = epoch_loss / static_cast<double>(std::max<std::size_t>(1, batches));
  }
  return last_epoch_loss;
}

MeanStd Bnn::predict(const Vec& x, std::size_t mc, Rng& rng) const {
  mc = std::max<std::size_t>(2, mc);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t s = 0; s < mc; ++s) {
    const double v = thompson(rng).predict(x);
    sum += v;
    sum_sq += v * v;
  }
  MeanStd ms;
  ms.mean = sum / static_cast<double>(mc);
  const double var =
      std::max(0.0, sum_sq / static_cast<double>(mc) - ms.mean * ms.mean);
  ms.std = std::sqrt(var);
  return ms;
}

double Bnn::predict_at_mean(const Vec& x) const {
  BnnSample s;
  s.weights.reserve(layers_.size());
  s.biases.reserve(layers_.size());
  for (const auto& layer : layers_) {
    s.weights.push_back(layer.w_mu);
    s.biases.push_back(layer.b_mu);
  }
  return s.predict(x);
}

BnnSample Bnn::thompson(Rng& rng) const {
  BnnSample s;
  s.weights.reserve(layers_.size());
  s.biases.reserve(layers_.size());
  for (const auto& layer : layers_) {
    const std::size_t out = layer.w_mu.rows();
    const std::size_t in = layer.w_mu.cols();
    Matrix w(out, in);
    Vec b(out);
    for (std::size_t r = 0; r < out; ++r) {
      for (std::size_t c = 0; c < in; ++c) {
        w(r, c) = layer.w_mu(r, c) + softplus(layer.w_rho(r, c)) * rng.normal();
      }
      b[r] = layer.b_mu[r] + softplus(layer.b_rho[r]) * rng.normal();
    }
    s.weights.push_back(std::move(w));
    s.biases.push_back(std::move(b));
  }
  return s;
}

}  // namespace atlas::nn
