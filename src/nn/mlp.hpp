#pragma once

#include <cstddef>
#include <vector>

#include "math/matrix.hpp"
#include "math/rng.hpp"
#include "nn/optim.hpp"

namespace atlas::nn {

/// Fully-connected layer y = x W^T + b with manual reverse-mode gradients.
/// Batches are row-major: X is (batch x in), Y is (batch x out).
class DenseLayer {
 public:
  DenseLayer(std::size_t in, std::size_t out, atlas::math::Rng& rng);

  std::size_t in_features() const noexcept { return w_.cols(); }
  std::size_t out_features() const noexcept { return w_.rows(); }

  /// Forward pass; caches the input for backward.
  atlas::math::Matrix forward(const atlas::math::Matrix& x);
  /// Forward pass without caching (inference-only).
  atlas::math::Matrix forward_const(const atlas::math::Matrix& x) const;

  /// Backward pass: accumulates dL/dW and dL/db, returns dL/dX.
  atlas::math::Matrix backward(const atlas::math::Matrix& dy);

  void zero_grad();
  void collect_params(std::vector<ParamView>& out);

  const atlas::math::Matrix& weights() const noexcept { return w_; }
  atlas::math::Matrix& weights() noexcept { return w_; }
  const atlas::math::Vec& bias() const noexcept { return b_; }
  atlas::math::Vec& bias() noexcept { return b_; }

 private:
  atlas::math::Matrix w_, gw_;
  atlas::math::Vec b_, gb_;
  atlas::math::Matrix cached_input_;
};

/// Multi-layer perceptron with ReLU activations between layers and a linear
/// output. This is the deterministic network used by the DLDA baseline and
/// the shared scaffolding under the Bayesian network.
class Mlp {
 public:
  /// `sizes` lists layer widths including input and output,
  /// e.g. {7, 128, 256, 256, 128, 1} for the paper's architecture.
  Mlp(const std::vector<std::size_t>& sizes, atlas::math::Rng& rng);

  std::size_t input_dim() const noexcept;
  std::size_t output_dim() const noexcept;

  /// Forward with caching (training).
  atlas::math::Matrix forward(const atlas::math::Matrix& x);
  /// Inference-only forward.
  atlas::math::Matrix forward_const(const atlas::math::Matrix& x) const;
  /// Convenience single-sample inference (output dim must be 1).
  double predict_scalar(const atlas::math::Vec& x) const;

  /// Backward from dL/d(output); accumulates all layer gradients.
  void backward(const atlas::math::Matrix& dy);

  void zero_grad();
  std::vector<ParamView> params();

  /// One epoch of minibatch MSE training; returns the epoch's mean loss.
  double train_epoch_mse(const atlas::math::Matrix& x, const atlas::math::Vec& y,
                         Optimizer& opt, std::size_t batch_size, atlas::math::Rng& rng);

  /// Mean squared error over a dataset (no training).
  double mse(const atlas::math::Matrix& x, const atlas::math::Vec& y) const;

  /// Layer access (serialization, inspection).
  std::size_t layer_count() const noexcept { return layers_.size(); }
  const DenseLayer& layer(std::size_t i) const { return layers_.at(i); }
  DenseLayer& layer(std::size_t i) { return layers_.at(i); }

 private:
  std::vector<DenseLayer> layers_;
  std::vector<atlas::math::Matrix> relu_masks_;  // cached activation masks
};

/// He-style initialization bound used by both Mlp and Bnn layers.
double init_scale(std::size_t fan_in);

}  // namespace atlas::nn
