#pragma once

#include <iosfwd>
#include <string>

#include "nn/bnn.hpp"
#include "nn/mlp.hpp"

namespace atlas::nn {

/// Plain-text model persistence (the paper's artifact ships trained models
/// alongside the code; this is the equivalent for offline policies and
/// calibrated surrogates). The format is a line-oriented header followed by
/// whitespace-separated doubles in full precision — portable, diffable, and
/// trivially inspectable.
///
/// Round-trip guarantee: save followed by load reproduces predictions
/// bit-exactly (tests enforce this).

/// Serialize / deserialize a deterministic MLP.
void save_mlp(const Mlp& mlp, std::ostream& os);
Mlp load_mlp(std::istream& is);

/// Serialize / deserialize a BNN (variational parameters + config).
void save_bnn(const Bnn& bnn, std::ostream& os);
Bnn load_bnn(std::istream& is);

/// File-path conveniences; throw std::runtime_error on I/O failure.
void save_mlp_file(const Mlp& mlp, const std::string& path);
Mlp load_mlp_file(const std::string& path);
void save_bnn_file(const Bnn& bnn, const std::string& path);
Bnn load_bnn_file(const std::string& path);

}  // namespace atlas::nn
