#include "env/trace.hpp"

namespace atlas::env {

TraceBreakdown summarize_traces(const std::vector<FrameTrace>& traces) {
  TraceBreakdown b;
  if (traces.empty()) return b;
  for (const auto& t : traces) {
    b.loading += t.loading();
    b.uplink += t.uplink();
    b.transport_ul += t.transport_ul();
    b.queueing += t.queueing();
    b.compute += t.compute();
    b.downlink += t.downlink();
    b.total += t.total();
  }
  const auto n = static_cast<double>(traces.size());
  b.loading /= n;
  b.uplink /= n;
  b.transport_ul /= n;
  b.queueing /= n;
  b.compute /= n;
  b.downlink /= n;
  b.total /= n;
  b.frames = traces.size();
  return b;
}

}  // namespace atlas::env
