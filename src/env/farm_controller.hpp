#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "env/backend.hpp"
#include "env/farm_types.hpp"
#include "env/shard_router.hpp"
#include "telemetry/registry.hpp"

namespace atlas::env {

/// Worker lifecycle (README "Farm control plane"):
///
///   joining -> serving <-> suspect -> dead
///                  \-> draining -> dead (graceful, memo migrated)
///
/// `serving` answers heartbeats and takes traffic; `suspect` missed one (or a
/// data-plane fault was reported) and is deprioritized but not abandoned;
/// `dead` is removed from every FailoverBackend. Episodes are deterministic
/// per seed, so anything lost with a worker is safely re-dispatched.
enum class WorkerState : std::uint8_t {
  kJoining = 0,
  kServing = 1,
  kSuspect = 2,
  kDead = 3,
  kDraining = 4,
};

const char* to_string(WorkerState state) noexcept;

/// Control-plane handle to one worker, transport-agnostic: the rpc layer
/// adapts RemoteBackend's wire-v4 round-trips onto this
/// (rpc/worker_control.hpp), and tests drive the controller with in-process
/// fakes. All methods may throw (std::exception) on a sick worker; heartbeat
/// failure IS the liveness signal.
class WorkerControl {
 public:
  virtual ~WorkerControl() = default;

  /// Display address ("host:port" or a fake's label) for logs and tests.
  virtual const std::string& address() const noexcept = 0;

  virtual WorkerAnnounce hello() = 0;
  virtual WorkerHealth heartbeat() = 0;
  virtual std::vector<MemoEntrySnapshot> export_memo(BackendId remote_backend) = 0;
  virtual InstallResult install_backend(const BackendInstallRequest& request) = 0;

  /// Data-plane executor for one of this worker's announced backends
  /// (`remote_backend` = index in the announce). The FarmController wraps
  /// these in FailoverBackends.
  virtual std::shared_ptr<const EnvBackend> make_backend(const WorkerBackendInfo& info,
                                                         BackendId remote_backend) = 0;
};

class FarmController;

/// When to hedge an episode onto a second replica. Disabled by default — the
/// farm behaves exactly as before unless a deployment opts in.
struct HedgePolicy {
  bool enabled = false;
  /// The hedge delay is learned from the replicas' observed rpc_rtt_ns
  /// distribution: once `min_samples` RTTs exist, an attempt that outlives
  /// this quantile of past episodes is probably stuck, and a second attempt
  /// is launched on the next candidate replica (first response wins; the
  /// loser is cancelled via the wire-v4 kCancel).
  double quantile = 0.95;
  std::uint64_t min_samples = 32;
  /// Clamp on the learned delay.
  double min_delay_ms = 1.0;
  double max_delay_ms = 1000.0;
  /// Delay used BEFORE min_samples RTTs exist. 0 = don't hedge until the
  /// distribution is learned; tests and loadgen set it explicitly.
  double fallback_delay_ms = 0.0;
  /// Wall-clock staleness bound on the cached quantile: a delay older than
  /// this is recomputed on the next call even if the call-count cadence has
  /// not rolled over, so a farm that idles across an RTT regime change (e.g.
  /// failover to a slower replica) never hedges on pre-idle numbers.
  double refresh_interval_ms = 1000.0;
};

/// Per-replica circuit breaker: closed -> open (after `failure_threshold`
/// consecutive faults) -> half-open (one probe after `cooldown_ms`) ->
/// closed on success / open again on failure. An open replica is skipped by
/// candidate selection like a dead one (kept only as last resort), so a
/// brown-out worker stops eating a timeout per episode long before the
/// heartbeat machine declares it dead. Breakers only act on faults, so the
/// fault-free path is bit-identical with them enabled.
struct BreakerPolicy {
  bool enabled = true;
  std::uint32_t failure_threshold = 3;
  double cooldown_ms = 250.0;
};

/// Shared farm counters. Owned jointly by the controller, every
/// FailoverBackend, and the router's stats path, so the counts survive the
/// controller's destruction (a final stats() after shutdown still reports
/// the farm's history). The controller back-pointer is nulled in
/// ~FarmController; fault reports after that are counted but change nothing.
class FarmState {
 public:
  std::atomic<std::uint64_t> workers_total{0};
  std::atomic<std::uint64_t> workers_serving{0};
  std::atomic<std::uint64_t> workers_suspect{0};
  std::atomic<std::uint64_t> workers_joined{0};
  std::atomic<std::uint64_t> workers_lost{0};
  std::atomic<std::uint64_t> workers_drained{0};
  std::atomic<std::uint64_t> heartbeats_missed{0};
  std::atomic<std::uint64_t> episodes_redispatched{0};
  std::atomic<std::uint64_t> memo_entries_migrated{0};
  std::atomic<std::uint64_t> backends_migrated{0};
  std::atomic<std::uint64_t> hedges{0};
  std::atomic<std::uint64_t> hedge_wins{0};
  std::atomic<std::uint64_t> breaker_trips{0};

  FarmView view() const;

  /// Data-plane fault escalation from a FailoverBackend: marks the worker
  /// suspect on the (still-live) controller, so placement shuns it before
  /// the next heartbeat sweep confirms or clears the suspicion.
  void report_fault(std::uint32_t worker);

 private:
  friend class FarmController;
  mutable std::mutex controller_mutex_;
  FarmController* controller_ = nullptr;  ///< Guarded by controller_mutex_.
};

/// A replicated EnvBackend: one stable BackendId whose episodes execute on
/// whichever live worker replica answers. Keeping the id (and thus every
/// client-side memo key) stable across worker loss is what makes failover
/// memo-friendly — a re-dispatched episode lands in the same cache slot.
///
/// Replica selection: round-robin over serving replicas; suspect replicas
/// are a fallback, dead ones are skipped. On a replica fault the episode is
/// re-dispatched to the next candidate (deterministic per seed, so the
/// result is identical) and `episodes_redispatched` counts it.
class FailoverBackend final : public EnvBackend {
 public:
  FailoverBackend(WorkerBackendInfo descriptor, std::shared_ptr<FarmState> farm,
                  HedgePolicy hedge = {}, BreakerPolicy breaker = {});

  EpisodeResult execute(const EnvQuery& query) const override;
  BackendKind kind() const noexcept override { return descriptor_.kind; }
  const std::string& name() const noexcept override { return descriptor_.name; }
  double cost_hint() const noexcept override { return descriptor_.cost_hint; }
  bool accepts_sim_params() const noexcept override { return descriptor_.accepts_sim_params; }
  /// Sums replica-level rpc retries/failures/rtt into the snapshot.
  void fill_stats(BackendStats& stats) const override;
  void reset_stats() const override;

  const WorkerBackendInfo& descriptor() const noexcept { return descriptor_; }

  /// Membership, driven by the FarmController. `health` is the worker-level
  /// state cell (WorkerState as int) shared by all replicas on that worker.
  void add_replica(std::shared_ptr<const EnvBackend> backend, std::uint32_t worker,
                   std::shared_ptr<const std::atomic<int>> health);
  void remove_worker(std::uint32_t worker);

  std::size_t replica_count() const;
  std::vector<std::uint32_t> replica_workers() const;

  /// Current hedge delay in ms (<= 0 when hedging is off or not yet armed);
  /// exposed for tests.
  double hedge_delay_ms() const;
  /// Circuit-breaker state of the replica on `worker`: 0 closed, 1 open,
  /// 2 half-open; -1 when no replica for that worker exists.
  int breaker_state(std::uint32_t worker) const;

 private:
  /// Per-replica breaker cell; shared_ptr so replica-list snapshots keep one
  /// stable cell per replica across copy-on-write membership updates.
  struct Breaker {
    std::atomic<std::uint32_t> consecutive_failures{0};
    std::atomic<int> state{0};  ///< 0 closed, 1 open, 2 half-open
    std::atomic<std::int64_t> opened_at_ns{0};
  };
  struct Replica {
    std::shared_ptr<const EnvBackend> backend;
    std::uint32_t worker = 0;
    std::shared_ptr<const std::atomic<int>> health;
    std::shared_ptr<Breaker> breaker;
  };
  using ReplicaList = std::vector<Replica>;

  std::shared_ptr<const ReplicaList> snapshot() const {
    return replicas_.load(std::memory_order_acquire);
  }

  /// Candidate replica indexes in dispatch order: serving (breaker closed)
  /// first, round-robin rotated; then non-dead fallbacks; then, only if that
  /// leaves nothing, everyone (a stale cell beats failing the episode).
  std::vector<std::size_t> candidate_order(const ReplicaList& replicas) const;
  bool breaker_allows(const Replica& replica) const;
  void breaker_success(const Replica& replica) const;
  void breaker_failure(const Replica& replica) const;
  /// Run candidates[0] and, if it outlives the hedge delay, candidates[1]
  /// concurrently; first response wins and the loser is cancelled. Returns
  /// false if every hedged attempt failed (caller falls back to the
  /// remaining candidates); `faulted` reports whether any attempt faulted.
  bool execute_hedged(const EnvQuery& query, const ReplicaList& replicas,
                      const std::vector<std::size_t>& candidates, double hedge_ms,
                      EpisodeResult& result, std::exception_ptr& last, bool& faulted) const;

  WorkerBackendInfo descriptor_;
  std::shared_ptr<FarmState> farm_;
  HedgePolicy hedge_;
  BreakerPolicy breaker_policy_;
  mutable std::mutex mutex_;  ///< Serializes membership writers.
  std::atomic<std::shared_ptr<const ReplicaList>> replicas_;
  mutable std::atomic<std::uint64_t> rr_{0};
  /// Learned hedge delay, refreshed from the replicas' RTT histograms every
  /// kHedgeRefresh executes AND whenever the cached value is older than
  /// hedge_.refresh_interval_ms (<= 0 = not armed).
  mutable std::atomic<std::uint64_t> hedge_calls_{0};
  mutable std::atomic<double> hedge_delay_cache_ms_{0.0};
  /// steady_clock time of the last quantile recompute, in ns since the
  /// clock's epoch (0 = never — the call-count trigger covers the first call).
  mutable std::atomic<std::int64_t> hedge_refreshed_ns_{0};
};

struct FarmControllerOptions {
  /// Heartbeat sweep period of the monitor thread (start()).
  std::uint32_t heartbeat_interval_ms = 250;
  /// Missed heartbeats before a serving worker turns suspect / dead.
  std::uint32_t suspect_after_misses = 1;
  std::uint32_t dead_after_misses = 3;
  /// Tail-latency hedging and per-replica circuit breaking for every
  /// FailoverBackend this controller creates.
  HedgePolicy hedge;
  BreakerPolicy breaker;
  /// Mirror farm counters into this registry as `farm.*` telemetry counters
  /// (e.g. a shard's metrics(), so JSON reports include the farm view).
  telemetry::MetricRegistry* metrics = nullptr;
};

/// The farm's registry and health authority, attached to a ShardRouter.
/// Replaces flags-frozen placement: workers join at runtime (add_worker),
/// their announced backends enter the LIVE BackendId space as FailoverBackend
/// replicas (same equivalence key -> same global id), missed heartbeats
/// demote them suspect -> dead (poll_once / the start() monitor thread), and
/// graceful removal (drain_worker) migrates worker-side memo entries to an
/// equivalent replica before the worker goes.
///
/// Thread-safe; poll_once may be driven manually (tests) or by start().
class FarmController {
 public:
  explicit FarmController(ShardRouter& router, FarmControllerOptions options = {});
  ~FarmController();

  FarmController(const FarmController&) = delete;
  FarmController& operator=(const FarmController&) = delete;

  /// Admit a worker: hello() -> every announced backend either joins the
  /// FailoverBackend with the same equivalence key or registers a fresh one
  /// with the router (new global id). Returns the worker's farm index.
  /// Throws if hello() fails — a worker that cannot announce is not admitted.
  std::uint32_t add_worker(std::shared_ptr<WorkerControl> control);

  /// Graceful removal: export each hosted backend's memo entries and install
  /// them on a serving worker with an equivalent backend (counted in
  /// memo_entries_migrated / backends_migrated), then drop the worker's
  /// replicas. Memo that finds no equivalent home is recomputed on demand.
  void drain_worker(std::uint32_t worker);

  /// One heartbeat sweep over serving/suspect workers. Success clears
  /// suspicion; failure escalates serving -> suspect -> dead per options.
  void poll_once();

  /// Run poll_once every heartbeat_interval_ms on a monitor thread.
  void start();
  void stop();

  WorkerState worker_state(std::uint32_t worker) const;
  std::size_t worker_count() const;
  /// Global BackendIds hosting at least one replica on `worker`.
  std::vector<BackendId> worker_backends(std::uint32_t worker) const;

  std::shared_ptr<const FarmState> state() const noexcept { return state_; }

 private:
  struct Worker {
    std::shared_ptr<WorkerControl> control;
    WorkerState state = WorkerState::kJoining;
    /// Shared with this worker's replicas in every FailoverBackend.
    std::shared_ptr<std::atomic<int>> health;
    WorkerAnnounce announce;
    std::uint32_t missed = 0;
    /// (global FailoverBackend id, worker-local backend id) per hosted backend.
    std::vector<std::pair<BackendId, BackendId>> hosted;
  };

  void set_state_locked(Worker& worker, WorkerState next);
  void mark_dead_locked(std::uint32_t index);
  void report_fault(std::uint32_t worker);  // via FarmState
  void publish_metrics() const;

  friend class FarmState;

  ShardRouter& router_;
  FarmControllerOptions options_;
  std::shared_ptr<FarmState> state_;

  mutable std::mutex mutex_;
  std::vector<Worker> workers_;
  /// equivalence key -> global id of the FailoverBackend absorbing that kind.
  std::unordered_map<std::uint64_t, BackendId> backends_by_key_;
  /// global id -> the FailoverBackend registered under it (membership writes).
  std::unordered_map<BackendId, std::shared_ptr<FailoverBackend>> failover_backends_;

  std::thread monitor_;
  std::condition_variable monitor_cv_;
  bool monitor_stop_ = false;  ///< Guarded by mutex_.
};

}  // namespace atlas::env
